// Flexibility: the paper's Figures 5d–5f scenario — supply and demand
// distributions diverge (clients want big machines, the edge mostly has
// small ones), and client-side flexibility recovers satisfaction.
//
//	go run ./examples/flexibility
package main

import (
	"fmt"

	"decloud"
)

func main() {
	fmt.Println("supply/demand divergence vs satisfaction, by flexibility")
	fmt.Printf("%-6s %-11s %-13s %-13s\n", "skew", "similarity", "inflexible", "flex=0.7")

	for _, skew := range []float64{0, 0.3, 0.6, 0.9} {
		row := make(map[string]float64)
		var similarity float64
		for name, flex := range map[string]float64{"inflexible": 0, "flexible": 0.7} {
			market, sim := decloud.GenerateDivergentMarket(decloud.DivergentMarketConfig{
				Config: decloud.MarketConfig{
					Seed:        11,
					Requests:    150,
					Providers:   130,
					Flexibility: flex,
				},
				Skew: skew,
			})
			out := decloud.RunAuction(market.Requests, market.Offers, decloud.DefaultAuctionConfig())
			row[name] = out.Satisfaction(len(market.Requests))
			similarity = sim
		}
		fmt.Printf("%-6.1f %-11.3f %-13.3f %-13.3f\n", skew, similarity, row["inflexible"], row["flexible"])
	}

	fmt.Println("\nhigher skew = demand concentrated on machine classes the")
	fmt.Println("edge has least of; flexible clients fall back to the next")
	fmt.Println("class down and keep their satisfaction up (paper Fig. 5d).")
}
