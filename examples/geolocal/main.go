// Geolocal: a geographic edge market. Participants are scattered over a
// city; every request carries a locality constraint (the paper's ℓ_r) —
// the service must run within a radius of its users. Tighter radii
// fragment the market into neighborhoods and cost satisfaction.
//
//	go run ./examples/geolocal
package main

import (
	"fmt"

	"decloud"
)

func main() {
	fmt.Println("locality radius vs market outcome (unit-square city)")
	fmt.Printf("%-8s %-9s %-13s %-9s\n", "radius", "clusters", "satisfaction", "welfare")

	for _, radius := range []float64{0, 0.5, 0.25, 0.1, 0.05} {
		market := decloud.GenerateMarket(decloud.MarketConfig{
			Seed:      31,
			Requests:  150,
			Providers: 50,
			GeoRadius: radius,
		})
		out := decloud.RunAuction(market.Requests, market.Offers, decloud.DefaultAuctionConfig())
		label := fmt.Sprintf("%.2f", radius)
		if radius == 0 {
			label = "∞ (any)"
		}
		fmt.Printf("%-8s %-9d %-13.3f %-9.2f\n",
			label, out.Clusters, out.Satisfaction(len(market.Requests)), out.Welfare())
	}

	fmt.Println("\nevery match respects its request's radius; a tight radius")
	fmt.Println("means fewer reachable machines, so satisfaction falls even")
	fmt.Println("though the same total capacity exists city-wide.")
}
