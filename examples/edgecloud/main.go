// Edgecloud: the paper's motivating scenario — latency-sensitive AR and
// IoT workloads matched to heterogeneous edge providers using the full
// bidding language: SGX as a resource, significance weights, time
// windows, and flexibility.
//
//	go run ./examples/edgecloud
package main

import (
	"fmt"

	"decloud"
)

func main() {
	const hour = int64(3600)

	requests := []*decloud.Request{
		{
			// An AR application: needs a trusted enclave (σ=1, strictly
			// required), cares a lot about low latency, less about disk.
			ID: "ar-headset", Client: "alice",
			Resources: decloud.Vector{
				decloud.CPU: 2, decloud.RAM: 4,
				decloud.SGX: 1, decloud.Latency: 0.9,
			},
			Weights: map[decloud.Kind]float64{
				decloud.Latency: 0.9,
				decloud.RAM:     0.3,
			},
			Start: 0, End: 2 * hour, Duration: hour,
			Bid: 0.80, TrueValue: 0.80,
		},
		{
			// An IoT aggregation pipeline: modest resources, runs all day,
			// flexible — accepts 70% of the requested capacity.
			ID: "iot-aggregator", Client: "bob",
			Resources: decloud.Vector{decloud.CPU: 4, decloud.RAM: 8, decloud.Disk: 50},
			Start:     0, End: 8 * hour, Duration: 6 * hour,
			Flexibility: 0.7,
			Bid:         1.20, TrueValue: 1.20,
		},
		{
			// A batch transcoder: big, cheap, time-flexible.
			ID: "transcoder", Client: "carol",
			Resources: decloud.Vector{decloud.CPU: 8, decloud.RAM: 16},
			Start:     0, End: 8 * hour, Duration: 2 * hour,
			Bid: 0.50, TrueValue: 0.50,
		},
		{
			// The marginal job that will set the clearing price.
			ID: "best-effort", Client: "dave",
			Resources: decloud.Vector{decloud.CPU: 1, decloud.RAM: 2},
			Start:     0, End: 8 * hour, Duration: hour,
			Bid: 0.02, TrueValue: 0.02,
		},
	}

	offers := []*decloud.Offer{
		{
			// A 5G base-station cabinet: SGX-capable, very low latency.
			ID: "bs-cabinet", Provider: "metro-telco",
			Resources: decloud.Vector{
				decloud.CPU: 8, decloud.RAM: 16,
				decloud.SGX: 1, decloud.Latency: 1.0, decloud.Disk: 100,
			},
			Start: 0, End: 8 * hour,
			Bid: 0.90, TrueCost: 0.90,
		},
		{
			// A crowdsourced garage server: big but no enclave, no
			// latency guarantee.
			ID: "garage-rig", Provider: "hobbyist",
			Resources: decloud.Vector{decloud.CPU: 16, decloud.RAM: 64, decloud.Disk: 800},
			Start:     0, End: 8 * hour,
			Bid: 0.70, TrueCost: 0.70,
		},
		{
			// A small shop NUC.
			ID: "shop-nuc", Provider: "corner-store",
			Resources: decloud.Vector{decloud.CPU: 4, decloud.RAM: 8, decloud.Disk: 120},
			Start:     0, End: 8 * hour,
			Bid: 0.25, TrueCost: 0.25,
		},
	}

	out := decloud.RunAuction(requests, offers, decloud.DefaultAuctionConfig())

	fmt.Println("edge market allocation:")
	for _, m := range out.Matches {
		fmt.Printf("  %-14s → %-11s granted %-34s pays %.4f\n",
			m.Request.ID, m.Offer.ID, m.Granted.String(), m.Payment)
	}
	for _, id := range out.ReducedRequests {
		fmt.Printf("  %-14s excluded by trade reduction (price setter)\n", id)
	}

	fmt.Println("\nprovider revenues:")
	for _, o := range offers {
		if rev := out.RevenueFor(o.ID); rev > 0 {
			fmt.Printf("  %-11s %.4f (cost %.2f for the full box)\n", o.ID, rev, o.TrueCost)
		}
	}

	// The SGX constraint is hard: verify where the AR app landed.
	if m := out.MatchFor("ar-headset"); m != nil {
		fmt.Printf("\nar-headset runs on %s (SGX present: %v)\n",
			m.Offer.ID, m.Offer.Resources[decloud.SGX] > 0)
	} else {
		fmt.Println("\nar-headset not allocated this round — it can resubmit")
	}
}
