// Quickstart: generate a small trace-driven market, run DeCloud's
// truthful double auction on it, and inspect the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"decloud"
)

func main() {
	// A market of 40 Google-trace-shaped requests against an EC2 M5
	// provider fleet. All bids are truthful: under a DSIC auction that is
	// every participant's dominant strategy.
	market := decloud.GenerateMarket(decloud.MarketConfig{
		Seed:     7,
		Requests: 40,
	})
	fmt.Printf("market: %d requests, %d offers\n\n", len(market.Requests), len(market.Offers))

	out := decloud.RunAuction(market.Requests, market.Offers, decloud.DefaultAuctionConfig())

	fmt.Printf("%-8s %-8s %10s %12s %10s\n", "request", "offer", "payment", "unit price", "phi")
	for _, m := range out.Matches {
		fmt.Printf("%-8s %-8s %10.4f %12.6f %10.4f\n",
			m.Request.ID, m.Offer.ID, m.Payment, m.UnitPrice, m.Fraction)
	}

	fmt.Printf("\nmatched %d/%d requests (satisfaction %.2f)\n",
		out.MatchedRequests(), len(market.Requests), out.Satisfaction(len(market.Requests)))
	fmt.Printf("welfare: %.4f\n", out.Welfare())
	fmt.Printf("payments %.4f == revenues %.4f (strong budget balance)\n",
		out.TotalPayments(), out.TotalRevenues())
	if len(out.ReducedRequests) > 0 {
		fmt.Printf("trade-reduced requests (DSIC cost): %v\n", out.ReducedRequests)
	}

	// Compare with the non-truthful greedy benchmark on the same orders.
	bench := decloud.RunGreedyBenchmark(market.Requests, market.Offers, decloud.DefaultAuctionConfig())
	fmt.Printf("\nnon-truthful benchmark welfare: %.4f (DeCloud achieves %.1f%%)\n",
		bench.Welfare(), 100*out.Welfare()/bench.Welfare())
}
