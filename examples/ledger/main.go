// Ledger: one full round of the two-phase bid exposure protocol
// (Section III of the paper) — sealed bids, a proof-of-work mining race,
// temporary-key reveal, deterministic allocation seeded by the block's
// PoW, independent verification by the other miners, and the smart
// contract accept/deny step with reputation consequences.
//
//	go run ./examples/ledger
package main

import (
	"context"
	"fmt"
	"log"

	"decloud"
)

func main() {
	net := decloud.NewNetwork(3 /* miners */, 12 /* difficulty bits */, decloud.DefaultAuctionConfig())

	// Four participants: three clients (one will be the marginal price
	// setter) and one provider.
	names := []string{"alice", "bob", "zed", "provider"}
	participants := make(map[string]*decloud.Participant, len(names))
	var all []*decloud.Participant
	for _, name := range names {
		p, err := decloud.NewParticipant(nil)
		if err != nil {
			log.Fatal(err)
		}
		participants[name] = p
		all = append(all, p)
		fmt.Printf("%-9s identity %s\n", name, p.ID())
	}

	// Clients seal requests; the provider seals an offer. Nothing about
	// these orders is readable on the network until keys are revealed.
	submit := func(name string, bid float64) {
		r := &decloud.Request{
			ID:        decloud.OrderID("job-" + name),
			Resources: decloud.Vector{decloud.CPU: 2, decloud.RAM: 8},
			Start:     0, End: 3600, Duration: 3600,
			Bid: bid, TrueValue: bid,
		}
		sealedBid, err := participants[name].SubmitRequest(r)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.SubmitBid(sealedBid); err != nil {
			log.Fatal(err)
		}
	}
	submit("alice", 1.00)
	submit("bob", 0.80)
	submit("zed", 0.10) // marginal: will set the price and be excluded

	offer := &decloud.Offer{
		ID:        "edge-box",
		Resources: decloud.Vector{decloud.CPU: 8, decloud.RAM: 32},
		Start:     0, End: 3600,
		Bid: 0.20, TrueCost: 0.20,
	}
	sealedOffer, err := participants["provider"].SubmitOffer(offer)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.SubmitBid(sealedOffer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmempool holds %d sealed bids (contents unreadable)\n", net.MempoolSize())

	// One protocol round: mine → reveal → allocate → verify → append.
	res, err := decloud.RunRound(context.Background(), net, all)
	if err != nil {
		log.Fatal(err)
	}
	block := res.Block
	fmt.Printf("\nblock %d mined by %s (nonce %d, PoW evidence %x...)\n",
		block.Preamble.Height, res.Winner, block.Preamble.Nonce, block.Evidence()[:8])
	fmt.Printf("chain length: %d, verified by all other miners\n", net.Chain().Len())

	fmt.Println("\nallocation on chain:")
	for _, m := range res.Outcome.Matches {
		fmt.Printf("  %-10s → %-9s pays %.4f at unit price %.6f\n",
			m.Request.ID, m.Offer.ID, m.Payment, m.UnitPrice)
	}

	// Clients respond through the smart contract: alice accepts, bob
	// denies (and pays for it in reputation).
	reg := net.Contracts()
	for _, id := range res.Agreements {
		a, err := reg.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		switch a.Record.RequestID {
		case "job-bob":
			provider, err := reg.Deny(id, a.Client())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nbob denies %s — provider %s must resubmit its offer\n", id, provider)
			fmt.Printf("bob's reputation drops to %.2f\n", reg.Reputation().Score(a.Client()))
		default:
			if err := reg.Accept(id, a.Client()); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s accepted by its client (reputation %.2f)\n",
				id, reg.Reputation().Score(a.Client()))
		}
	}
}
