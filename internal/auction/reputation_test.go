package auction

import (
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/reputation"
)

// gatedMarket: alice (good reputation) and mallory (bad) both want the
// picky provider's machine; a cheap setter request and a second
// unrestricted offer complete the market.
func gatedMarket() ([]*bidding.Request, []*bidding.Offer, *reputation.Store) {
	reqs := []*bidding.Request{
		mkReq("r-alice", "alice", 2, 8, 10),
		mkReq("r-mallory", "mallory", 2, 8, 9),
		mkReq("r-setter", "zed", 2, 8, 1),
	}
	picky := mkOff("o-picky", "p1", 8, 32, 2)
	picky.MinReputation = 0.8
	open := mkOff("o-open", "p2", 8, 32, 3)
	rep := reputation.NewStore()
	for i := 0; i < 6; i++ {
		rep.RecordDeny("mallory") // tank mallory's reputation
	}
	return reqs, []*bidding.Offer{picky, open}, rep
}

func TestReputationGateBlocksLowRepClient(t *testing.T) {
	reqs, offs, rep := gatedMarket()
	cfg := DefaultConfig()
	cfg.Evidence = []byte("rep")
	cfg.Reputation = rep
	out := Run(reqs, offs, cfg)

	for _, m := range out.Matches {
		if m.Request.Client == "mallory" && m.Offer.ID == "o-picky" {
			t.Fatalf("low-reputation client placed on a gated offer")
		}
	}
	// Alice meets the threshold and may use either machine.
	if out.MatchFor("r-alice") == nil {
		t.Fatal("high-reputation client should trade")
	}
	// Mallory can still trade on the open machine.
	if m := out.MatchFor("r-mallory"); m != nil && m.Offer.ID != "o-open" {
		t.Fatalf("mallory matched %s, want o-open or nothing", m.Offer.ID)
	}
}

func TestReputationGateIgnoredWithoutSource(t *testing.T) {
	reqs, offs, _ := gatedMarket()
	cfg := DefaultConfig()
	cfg.Evidence = []byte("rep")
	// No reputation source configured: thresholds cannot be evaluated and
	// are not enforced.
	out := Run(reqs, offs, cfg)
	if len(out.Matches) == 0 {
		t.Fatal("market should trade without a reputation source")
	}
}

func TestReputationThresholdValidation(t *testing.T) {
	o := mkOff("o", "p", 8, 32, 1)
	o.MinReputation = 1.5
	if err := o.Validate(); err == nil {
		t.Fatal("threshold above 1 accepted")
	}
	o.MinReputation = -0.1
	if err := o.Validate(); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestReputationRoundTripsOnWire(t *testing.T) {
	o := mkOff("o", "p", 8, 32, 1)
	o.MinReputation = 0.75
	data, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got bidding.Offer
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.MinReputation != 0.75 {
		t.Fatalf("MinReputation lost on the wire: %v", got.MinReputation)
	}
}
