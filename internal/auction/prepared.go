package auction

import (
	"strings"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/match"
	"decloud/internal/miniauction"
	"decloud/internal/par"
)

// PrepassCache carries per-cluster pre-pass economics across successive
// clears of a long-lived order book (internal/book). The pre-pass of a
// cluster is a pure function of its membership, the normalization scale,
// and the static parts of the Config (critical set, capacity model) —
// it does not read the evidence or any cross-cluster state — so a
// cluster whose membership is unchanged since the previous clear can
// reuse its stats verbatim.
//
// The CALLER owns the preconditions: entries are keyed by membership
// only, so the cache must be flushed (Flush) whenever the normalization
// scale changes or an order ID is re-used with different contents —
// internal/book tracks both. Caching is disabled automatically when the
// config carries a reputation source (reputation scores can move
// between blocks) or runs the reference matcher.
//
// The zero value is ready to use.
type PrepassCache struct {
	entries map[string]clusterStats
}

// Flush drops every cached entry.
func (pc *PrepassCache) Flush() {
	if pc != nil {
		pc.entries = nil
	}
}

// cacheable reports whether the pre-pass may be cached under cfg: the
// reputation gate reads ledger state that changes between blocks, and
// the reference matcher exists to exercise the index-free pipeline.
func (pc *PrepassCache) cacheable(cfg Config) bool {
	return pc != nil && cfg.Reputation == nil && !cfg.Match.Reference
}

// prepassSignature is the cache key of a cluster: offer-set identity
// (Cluster.Key, sorted offer IDs) plus the sorted member request IDs.
// Two clusters with equal signatures have identical membership, and the
// pre-pass depends on nothing else once the caller guarantees a stable
// scale and stable order contents per ID.
func prepassSignature(cl *cluster.Cluster) string {
	var sb strings.Builder
	sb.WriteString(cl.Key())
	sb.WriteByte('\x01')
	for i, r := range cl.Requests {
		if i > 0 {
			sb.WriteByte('\x02')
		}
		sb.WriteString(string(r.ID))
	}
	return sb.String()
}

// RunPrepared executes the mechanism's post-clustering pipeline —
// pre-pass economics, mini-auction formation, pricing, trade reduction,
// lotteries, and capacity allocation — over a prebuilt index and
// cluster list. It is the entry point for the incremental order book,
// which maintains ix and clusters across rounds and re-derives only
// what its dirty-tracking proves stale; Run is exactly
// NewIndex + BuildIndex + RunPrepared, so for identical inputs the
// Outcome is byte-identical to the from-scratch path (the booktest
// differential harness enforces this).
//
// reqs and offs must be the exact order sets the index was built from,
// already validated: RunPrepared performs no screening, so the outcome
// carries empty rejection lists unless the caller records rejects
// itself. cache may be nil (no caching).
func RunPrepared(reqs []*bidding.Request, offs []*bidding.Offer, ix *match.Index, clusters []*cluster.Cluster, cfg Config, cache *PrepassCache) *Outcome {
	pt := startPhases(cfg.Obs)
	out := &Outcome{
		Payments: make(map[bidding.OrderID]float64),
		Revenues: make(map[bidding.OrderID]float64),
	}
	pt.lapIndex()
	pt.lapCluster()
	runClustered(out, reqs, offs, ix, clusters, cfg, &pt, cache)
	return out
}

// runClustered is the tail of the mechanism shared by Run and
// RunPrepared: everything downstream of cluster formation. It mutates
// out and drives the phase timer through the prepass and auction laps.
func runClustered(out *Outcome, reqs []*bidding.Request, offs []*bidding.Offer, ix *match.Index, clusters []*cluster.Cluster, cfg Config, pt *phaseTimer, cache *PrepassCache) {
	workers := effectiveWorkers(cfg)
	out.Clusters = len(clusters)

	// Pre-pass every cluster. Each pre-pass allocates the cluster in
	// isolation against fresh capacity and writes only its own slot, so
	// the fan-out is exact; the interval list is then assembled in
	// cluster-index order, as the sequential loop would. With a usable
	// cache, unchanged clusters reuse last round's stats: the cache map
	// is read-only during the fan-out and replaced wholesale afterwards,
	// so vanished clusters are pruned for free.
	econ := econFor(cfg, ix)
	pairOK := pairGate(cfg)
	all := make([]clusterStats, len(clusters))
	useCache := cache.cacheable(cfg)
	var sigs []string
	if useCache {
		sigs = make([]string, len(clusters))
		for i, cl := range clusters {
			sigs[i] = prepassSignature(cl)
		}
	}
	par.ForEach(workers, len(clusters), func(i int) {
		if useCache {
			if st, ok := cache.entries[sigs[i]]; ok {
				all[i] = st
				return
			}
		}
		all[i] = prePass(econ(clusters[i]), pairOK, func() Capacity { return newCapacity(cfg) })
	})
	if useCache {
		next := make(map[string]clusterStats, len(clusters))
		for i := range all {
			next[sigs[i]] = all[i]
		}
		cache.entries = next
	}
	pt.lapPrepass()

	var intervals []miniauction.Interval
	for i := range all {
		if all[i].active {
			intervals = append(intervals, miniauction.Interval{
				ID: i, Lo: all[i].cHatZ, Hi: all[i].vHatZ, Weight: all[i].welfare,
			})
		}
	}
	auctions := miniauction.Form(intervals)
	out.MiniAuctions = len(auctions)

	evidence := cfg.Evidence
	if evidence == nil {
		evidence = []byte("decloud/no-evidence")
	}

	if cfg.Shards > 0 {
		runAuctionsSharded(out, reqs, offs, clusters, auctions, all, cfg, pairOK, evidence, workers)
		pt.lapAuctions()
		pt.finish(out, ix)
		return
	}
	if workers > 1 {
		runAuctionsParallel(out, auctions, all, cfg, pairOK, evidence, workers)
		pt.lapAuctions()
		pt.finish(out, ix)
		return
	}
	st := newBlockState(cfg)
	for ai := range auctions {
		for _, tr := range runMiniAuction(ai, auctions[ai], all, cfg, pairOK, evidence, st) {
			recordMatch(out, tr.ec, tr.a, tr.price)
		}
	}
	finalize(out, st.taken, st.reducedReq, st.reducedOff, st.lottery)
	pt.lapAuctions()
	pt.finish(out, ix)
}
