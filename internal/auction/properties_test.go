package auction

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/match"
	"decloud/internal/miniauction"
	"decloud/internal/resource"
)

// clientUtility computes u_r = v_r − p_r for client-owned requests
// against TRUE values, 0 when unmatched.
func clientUtility(out *Outcome, client bidding.ParticipantID, truth map[bidding.OrderID]float64) float64 {
	var u float64
	for _, m := range out.Matches {
		if m.Request.Client == client {
			u += truth[m.Request.ID] - m.Payment
		}
	}
	return u
}

// providerUtility computes u_o = π_o − c_o·(sold fraction) against TRUE
// costs: the provider's cost is charged proportionally to the capacity
// fraction actually consumed (Eq. 3's φ·c_o term).
func providerUtility(out *Outcome, provider bidding.ParticipantID, truth map[bidding.OrderID]float64) float64 {
	var u float64
	for _, m := range out.Matches {
		if m.Offer.Provider == provider {
			u += m.Payment - m.Fraction*truth[m.Offer.ID]
		}
	}
	return u
}

// homogeneousMarket builds a single-cluster market: identical machine
// shapes and time windows so that only prices differ — the setting in
// which the mechanism must be *exactly* DSIC (it degenerates to SBBA).
func homogeneousMarket(values []float64, costs []float64) ([]*bidding.Request, []*bidding.Offer) {
	reqs := make([]*bidding.Request, len(values))
	for i, v := range values {
		reqs[i] = mkReq(fmt.Sprintf("r%02d", i), fmt.Sprintf("c%02d", i), 4, 16, v)
	}
	offs := make([]*bidding.Offer, len(costs))
	for j, c := range costs {
		offs[j] = mkOff(fmt.Sprintf("o%02d", j), fmt.Sprintf("p%02d", j), 4, 16, c)
	}
	return reqs, offs
}

func truthMaps(reqs []*bidding.Request, offs []*bidding.Offer) (map[bidding.OrderID]float64, map[bidding.OrderID]float64) {
	tv := make(map[bidding.OrderID]float64)
	for _, r := range reqs {
		tv[r.ID] = r.TrueValue
	}
	tc := make(map[bidding.OrderID]float64)
	for _, o := range offs {
		tc[o.ID] = o.TrueCost
	}
	return tv, tc
}

// TestDSICHomogeneousClients: in a single-cluster market no client can
// gain by misreporting its valuation, for a dense grid of deviations.
func TestDSICHomogeneousClients(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	tv, _ := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-test")

	base := Run(reqs, offs, cfg)
	for i := range reqs {
		truthful := clientUtility(base, reqs[i].Client, tv)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneRequests(reqs)
			mod[i].Bid = reqs[i].TrueValue * dev
			out := Run(mod, offs, cfg)
			if u := clientUtility(out, reqs[i].Client, tv); u > truthful+1e-9 {
				t.Fatalf("client %s gains by bidding %v instead of %v: %v > %v",
					reqs[i].Client, mod[i].Bid, reqs[i].TrueValue, u, truthful)
			}
		}
	}
}

// TestDSICHomogeneousProviders: symmetric check for providers.
func TestDSICHomogeneousProviders(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	_, tc := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-test")

	base := Run(reqs, offs, cfg)
	for j := range offs {
		truthful := providerUtility(base, offs[j].Provider, tc)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneOffers(offs)
			mod[j].Bid = offs[j].TrueCost * dev
			out := Run(reqs, mod, cfg)
			if u := providerUtility(out, offs[j].Provider, tc); u > truthful+1e-9 {
				t.Fatalf("provider %s gains by asking %v instead of %v: %v > %v",
					offs[j].Provider, mod[j].Bid, offs[j].TrueCost, u, truthful)
			}
		}
	}
}

// TestApproxDSICRandomMarkets scans heterogeneous random markets for
// profitable unilateral deviations and asserts the mechanism stays inside
// a measured ε-DSIC envelope.
//
// On homogeneous (single-good) markets the mechanism is *exactly* DSIC —
// see the two tests above — matching McAfee/SBBA, whose arguments the
// paper's proof sketch relies on. On fully heterogeneous markets with
// divisible capacity a residual manipulation channel exists that the
// paper does not address: a large offer can be PARTIALLY allocated, so
// raising its reported cost can price marginal requests out of the greedy
// pre-pass and lift v̂_z — raising the clearing price — without the
// deviator ever becoming the excluded price setter (SBBA's atomic-seller
// exclusion does not transfer to partially-used divisible offers).
// Measured on this fixed-seed corpus: ~2.5% of deviations profit, worst
// gain ≈ 9.5 (mean ≈ 0.03). The envelope below is ~25% above the
// measurement so that genuine regressions (e.g. removing the keyed
// randomization) fail loudly.
func TestApproxDSICRandomMarkets(t *testing.T) {
	rnd := rand.New(rand.NewSource(2024))
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-rand")
	var total, violations int
	var worst float64
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		reqs, offs := randomMarket(rnd, 12+rnd.Intn(12), 4+rnd.Intn(5))
		tv, tc := truthMaps(reqs, offs)
		base := Run(reqs, offs, cfg)

		for i := range reqs {
			truthful := clientUtility(base, reqs[i].Client, tv)
			for _, dev := range []float64{0.5, 0.8, 1.25, 2} {
				mod := cloneRequests(reqs)
				mod[i].Bid = reqs[i].TrueValue * dev
				out := Run(mod, offs, cfg)
				gain := clientUtility(out, reqs[i].Client, tv) - truthful
				total++
				if gain > 1e-9 {
					violations++
					if gain > worst {
						worst = gain
					}
				}
			}
		}
		for j := range offs {
			truthful := providerUtility(base, offs[j].Provider, tc)
			for _, dev := range []float64{0.5, 0.8, 1.25, 2} {
				mod := cloneOffers(offs)
				mod[j].Bid = offs[j].TrueCost * dev
				out := Run(reqs, mod, cfg)
				gain := providerUtility(out, offs[j].Provider, tc) - truthful
				total++
				if gain > 1e-9 {
					violations++
					if gain > worst {
						worst = gain
					}
				}
			}
		}
	}
	rate := float64(violations) / float64(total)
	t.Logf("deviations=%d violations=%d rate=%.4f worst=%.3f", total, violations, rate, worst)
	if rate > 0.04 {
		t.Fatalf("ε-DSIC envelope broken: violation rate %.4f > 0.04", rate)
	}
	if worst > 12 {
		t.Fatalf("ε-DSIC envelope broken: worst gain %.3f > 12", worst)
	}
}

// TestDSICHomogeneousStrictMode re-runs the exact DSIC check with
// per-cluster (strict) trade reduction: the ablation variant must be just
// as truthful.
func TestDSICHomogeneousStrictMode(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	tv, tc := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-strict")
	cfg.StrictReduction = true

	base := Run(reqs, offs, cfg)
	for i := range reqs {
		truthful := clientUtility(base, reqs[i].Client, tv)
		for _, dev := range []float64{0.5, 0.9, 1.1, 2} {
			mod := cloneRequests(reqs)
			mod[i].Bid = reqs[i].TrueValue * dev
			out := Run(mod, offs, cfg)
			if u := clientUtility(out, reqs[i].Client, tv); u > truthful+1e-9 {
				t.Fatalf("strict mode: client %s gains by deviating ×%v", reqs[i].Client, dev)
			}
		}
	}
	for j := range offs {
		truthful := providerUtility(base, offs[j].Provider, tc)
		for _, dev := range []float64{0.5, 0.9, 1.1, 2} {
			mod := cloneOffers(offs)
			mod[j].Bid = offs[j].TrueCost * dev
			out := Run(reqs, mod, cfg)
			if u := providerUtility(out, offs[j].Provider, tc); u > truthful+1e-9 {
				t.Fatalf("strict mode: provider %s gains by deviating ×%v", offs[j].Provider, dev)
			}
		}
	}
}

// TestIRRandomMarkets: individual rationality must hold on every random
// market — clients never pay above bid; every trading offer's payment
// covers the bid-cost of the capacity fraction it gives up.
func TestIRRandomMarkets(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	cfg := DefaultConfig()
	cfg.Evidence = []byte("ir-rand")
	for trial := 0; trial < 50; trial++ {
		reqs, offs := randomMarket(rnd, 10+rnd.Intn(40), 3+rnd.Intn(10))
		out := Run(reqs, offs, cfg)
		for _, m := range out.Matches {
			if m.Payment > m.Request.Bid+1e-9 {
				t.Fatalf("trial %d: client IR violated: pays %v > bid %v", trial, m.Payment, m.Request.Bid)
			}
			if m.Payment < 0 {
				t.Fatalf("trial %d: negative payment %v", trial, m.Payment)
			}
		}
		if math.Abs(out.TotalPayments()-out.TotalRevenues()) > 1e-9 {
			t.Fatalf("trial %d: budget imbalance", trial)
		}
	}
}

// TestProviderCostCoverage measures how often a provider's per-match
// payment covers the φ-proportional bid cost. The paper proves coverage
// for the virtual-maximum case (ν = 1); for heterogeneous grants this is
// the empirical analogue and must hold for every match.
func TestProviderCostCoverage(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	cfg := DefaultConfig()
	cfg.Evidence = []byte("cover")
	for trial := 0; trial < 30; trial++ {
		reqs, offs := randomMarket(rnd, 10+rnd.Intn(30), 3+rnd.Intn(8))
		out := Run(reqs, offs, cfg)
		for _, m := range out.Matches {
			costShare := m.Fraction * m.Offer.Bid
			if m.Payment < costShare-1e-9 {
				t.Fatalf("trial %d: match %s→%s payment %v below cost share %v (φ=%v)",
					trial, m.Request.ID, m.Offer.ID, m.Payment, costShare, m.Fraction)
			}
		}
	}
}

// TestFeasibilityRandomMarkets re-verifies every structural constraint of
// the optimization program (Eqs. 5–14) on mechanism outcomes.
func TestFeasibilityRandomMarkets(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	cfg := DefaultConfig()
	cfg.Evidence = []byte("feas")
	for trial := 0; trial < 40; trial++ {
		reqs, offs := randomMarket(rnd, 10+rnd.Intn(50), 3+rnd.Intn(12))
		out := Run(reqs, offs, cfg)
		assertFeasible(t, out, offs)
	}
}

func assertFeasible(t *testing.T, out *Outcome, offs []*bidding.Offer) {
	t.Helper()
	seen := make(map[bidding.OrderID]bool)
	used := make(map[bidding.OrderID]resource.Vector)
	for _, m := range out.Matches {
		if seen[m.Request.ID] {
			t.Fatalf("Const 5 violated: request %s matched twice", m.Request.ID)
		}
		seen[m.Request.ID] = true
		if !bidding.TimeCompatible(m.Request, m.Offer) {
			t.Fatalf("Const 10/11 violated for %s→%s", m.Request.ID, m.Offer.ID)
		}
		for k, g := range m.Granted {
			if g > m.Offer.Resources[k]+1e-9 {
				t.Fatalf("Const 8 violated: grant %v of %s exceeds offer capacity %v",
					g, k, m.Offer.Resources[k])
			}
			if g > m.Request.Resources[k]+1e-9 {
				t.Fatalf("over-grant: %v > requested %v of %s", g, m.Request.Resources[k], k)
			}
			if g < m.Request.Flex()*m.Request.Resources[k]-1e-9 {
				t.Fatalf("flexibility floor violated: %v < %v·%v",
					g, m.Request.Flex(), m.Request.Resources[k])
			}
		}
		if m.Fraction < 0 || m.Fraction > 1+1e-9 {
			t.Fatalf("φ out of range: %v", m.Fraction)
		}
		prev := used[m.Offer.ID]
		if prev == nil {
			prev = make(resource.Vector)
		}
		used[m.Offer.ID] = prev.Add(m.Granted.Scale(float64(m.Request.Duration)))
	}
	for _, o := range offs {
		cap := o.Resources.Scale(float64(o.Window()))
		for k, u := range used[o.ID] {
			if u > cap[k]+1e-6 {
				t.Fatalf("Const 7 violated: offer %s kind %s used %v of %v", o.ID, k, u, cap[k])
			}
		}
	}
}

// TestNoIncentiveToDelaySubmission: ties break toward earlier submission,
// so delaying can only (weakly) hurt.
func TestNoIncentiveToDelaySubmission(t *testing.T) {
	values := []float64{10, 8, 8, 5, 3} // r1 and r2 tie
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	reqs[1].Submitted, reqs[2].Submitted = 5, 10
	tv, _ := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("delay")
	base := Run(reqs, offs, cfg)
	early := clientUtility(base, reqs[1].Client, tv)

	// Delay r2 past r3: utility must not increase.
	mod := cloneRequests(reqs)
	mod[1].Submitted = 99
	out := Run(mod, offs, cfg)
	if u := clientUtility(out, reqs[1].Client, tv); u > early+1e-9 {
		t.Fatalf("delaying submission helped: %v > %v", u, early)
	}
}

func cloneRequests(reqs []*bidding.Request) []*bidding.Request {
	out := make([]*bidding.Request, len(reqs))
	for i, r := range reqs {
		c := *r
		c.Resources = r.Resources.Clone()
		out[i] = &c
	}
	return out
}

func cloneOffers(offs []*bidding.Offer) []*bidding.Offer {
	out := make([]*bidding.Offer, len(offs))
	for i, o := range offs {
		c := *o
		c.Resources = o.Resources.Clone()
		out[i] = &c
	}
	return out
}

// TestDSICHomogeneousParallel re-runs the exact DSIC grid through the
// PARALLEL execution path (Workers = 4). The equivalence harness proves
// parallel outcomes are byte-identical to sequential ones, but this test
// asserts the economic property directly on the parallel path: if the
// component partitioning ever broke in a way that slipped past the
// marshal comparison, truthfulness would be the casualty — so it gets
// its own tripwire.
func TestDSICHomogeneousParallel(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	tv, tc := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-parallel")
	cfg.Workers = 4

	base := Run(reqs, offs, cfg)
	for i := range reqs {
		truthful := clientUtility(base, reqs[i].Client, tv)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneRequests(reqs)
			mod[i].Bid = reqs[i].TrueValue * dev
			out := Run(mod, offs, cfg)
			if u := clientUtility(out, reqs[i].Client, tv); u > truthful+1e-9 {
				t.Fatalf("parallel mode: client %s gains by bidding %v instead of %v: %v > %v",
					reqs[i].Client, mod[i].Bid, reqs[i].TrueValue, u, truthful)
			}
		}
	}
	for j := range offs {
		truthful := providerUtility(base, offs[j].Provider, tc)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneOffers(offs)
			mod[j].Bid = offs[j].TrueCost * dev
			out := Run(reqs, mod, cfg)
			if u := providerUtility(out, offs[j].Provider, tc); u > truthful+1e-9 {
				t.Fatalf("parallel mode: provider %s gains by asking %v instead of %v: %v > %v",
					offs[j].Provider, mod[j].Bid, offs[j].TrueCost, u, truthful)
			}
		}
	}
}

// TestInvariantsParallelRandomMarkets asserts the mechanism's hard
// invariants directly on parallel-path outcomes across random markets:
// individual rationality on both sides, the per-match payment identity
// (Payment = ν·p·duration on BOTH the client and provider ledger — the
// strong budget balance of each mini-auction: the auctioneer keeps
// nothing), and structural feasibility.
func TestInvariantsParallelRandomMarkets(t *testing.T) {
	rnd := rand.New(rand.NewSource(93))
	cfg := DefaultConfig()
	cfg.Evidence = []byte("par-invariants")
	cfg.Workers = 4
	for trial := 0; trial < 40; trial++ {
		reqs, offs := randomMarket(rnd, 10+rnd.Intn(40), 3+rnd.Intn(10))
		out := Run(reqs, offs, cfg)
		revCheck := make(map[bidding.OrderID]float64)
		for _, m := range out.Matches {
			if m.Payment > m.Request.Bid+1e-9 {
				t.Fatalf("trial %d: client IR violated in parallel mode: pays %v > bid %v",
					trial, m.Payment, m.Request.Bid)
			}
			if m.Payment < m.Fraction*m.Offer.Bid-1e-9 {
				t.Fatalf("trial %d: provider IR violated in parallel mode: %v < cost share %v",
					trial, m.Payment, m.Fraction*m.Offer.Bid)
			}
			if want := m.Nu * m.UnitPrice * float64(m.Request.Duration); m.Payment != want {
				t.Fatalf("trial %d: payment identity broken: %v != ν·p·d = %v", trial, m.Payment, want)
			}
			if out.Payments[m.Request.ID] != m.Payment {
				t.Fatalf("trial %d: Payments ledger disagrees with match", trial)
			}
			revCheck[m.Offer.ID] += m.Payment
		}
		for id, want := range revCheck {
			if out.Revenues[id] != want {
				t.Fatalf("trial %d: Revenues ledger drift for %s: %v != %v (mini-auction budget imbalance)",
					trial, id, out.Revenues[id], want)
			}
		}
		if math.Abs(out.TotalPayments()-out.TotalRevenues()) > 1e-9 {
			t.Fatalf("trial %d: block budget imbalance in parallel mode", trial)
		}
		assertFeasible(t, out, offs)
	}
}

// TestSBBAPriceRuleParallel independently replays the pricing stage —
// clustering, pre-passes, interval-tree auction formation, and Eq. 20's
// p = min(v̂_z, ĉ_{z'+1}) — sequentially, then checks that every match
// produced by the PARALLEL path clears at a replayed auction price of
// an auction whose member clusters contain the matched request. This
// pins the price rule itself, not just sequential/parallel agreement:
// a bug that shifted both paths identically would pass the equivalence
// harness but fail here.
func TestSBBAPriceRuleParallel(t *testing.T) {
	rnd := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		reqs, offs := randomMarket(rnd, 12+rnd.Intn(30), 4+rnd.Intn(8))
		cfg := DefaultConfig()
		cfg.Evidence = []byte(fmt.Sprintf("sbba-%d", trial))
		cfg.Workers = 4

		// Sequential replay of the pricing pipeline (mirrors Run up to
		// the point prices are fixed; prices do not depend on the
		// allocation loop).
		scratch := &Outcome{Payments: map[bidding.OrderID]float64{}, Revenues: map[bidding.OrderID]float64{}}
		sreqs, soffs := screen(reqs, offs, scratch)
		scale := match.BlockScale(sreqs, soffs)
		clusters := cluster.Build(sreqs, soffs, scale, cfg.Match)
		pairOK := pairGate(cfg)
		all := make([]clusterStats, len(clusters))
		for i := range clusters {
			all[i] = prePass(ComputeEconomics(clusters[i], cfg.Critical), pairOK, func() Capacity { return newCapacity(cfg) })
		}
		var intervals []miniauction.Interval
		for i := range all {
			if all[i].active {
				intervals = append(intervals, miniauction.Interval{
					ID: i, Lo: all[i].cHatZ, Hi: all[i].vHatZ, Weight: all[i].welfare,
				})
			}
		}
		auctions := miniauction.Form(intervals)

		// Valid clearing prices per request: each auction's Eq. 20 price,
		// attributed to every request of its member clusters.
		valid := make(map[bidding.OrderID]map[float64]bool)
		for _, auc := range auctions {
			p, _, _, ok := auctionPrice(auc, all)
			if !ok {
				continue
			}
			for _, ci := range auc.Clusters {
				for _, er := range all[ci].ec.Requests {
					if valid[er.Request.ID] == nil {
						valid[er.Request.ID] = make(map[float64]bool)
					}
					valid[er.Request.ID][p] = true
				}
			}
		}

		out := Run(reqs, offs, cfg)
		for _, m := range out.Matches {
			if !valid[m.Request.ID][m.UnitPrice] {
				t.Fatalf("trial %d: match %s→%s clears at %v, not an Eq. 20 price of any auction containing it (valid: %v)",
					trial, m.Request.ID, m.Offer.ID, m.UnitPrice, valid[m.Request.ID])
			}
		}
	}
}

// TestDSICHomogeneousExactScheduling completes the config matrix: the
// exact-scheduling capacity model must be just as truthful on the
// single-good setting.
func TestDSICHomogeneousExactScheduling(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	tv, tc := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-exact")
	cfg.ExactScheduling = true

	base := Run(reqs, offs, cfg)
	for i := range reqs {
		truthful := clientUtility(base, reqs[i].Client, tv)
		for _, dev := range []float64{0.5, 0.9, 1.1, 2} {
			mod := cloneRequests(reqs)
			mod[i].Bid = reqs[i].TrueValue * dev
			out := Run(mod, offs, cfg)
			if u := clientUtility(out, reqs[i].Client, tv); u > truthful+1e-9 {
				t.Fatalf("exact mode: client %s gains by deviating ×%v", reqs[i].Client, dev)
			}
		}
	}
	for j := range offs {
		truthful := providerUtility(base, offs[j].Provider, tc)
		for _, dev := range []float64{0.5, 0.9, 1.1, 2} {
			mod := cloneOffers(offs)
			mod[j].Bid = offs[j].TrueCost * dev
			out := Run(reqs, mod, cfg)
			if u := providerUtility(out, offs[j].Provider, tc); u > truthful+1e-9 {
				t.Fatalf("exact mode: provider %s gains by deviating ×%v", offs[j].Provider, dev)
			}
		}
	}
}
