package auction

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"time"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/match"
	"decloud/internal/miniauction"
	"decloud/internal/obs"
	"decloud/internal/par"
	"decloud/internal/resource"
	"decloud/internal/stats"
)

// Config tunes the mechanism.
type Config struct {
	// Match configures the quality-of-match heuristic and best-offer set.
	Match match.Config
	// Critical overrides the base critical resource set K_CR
	// (nil → resource.DefaultCritical()).
	Critical map[resource.Kind]bool
	// Evidence seeds the verifiable randomized exclusion. In ledger mode
	// this is the block's proof-of-work; every verifier derives the same
	// lottery from it. Nil falls back to a fixed label (still
	// deterministic, but not block-bound).
	Evidence []byte
	// Reputation, when set, enforces the provider-side client-reputation
	// thresholds of Section III-B: a request may only be placed on an
	// offer if its client's reputation meets the offer's MinReputation.
	// Reputation scores are public ledger state, independent of bids, so
	// the gate does not affect strategyproofness.
	Reputation ReputationSource
	// ExactScheduling switches capacity accounting from the paper's
	// aggregate resource·time model (Const. 7) to exact interval
	// scheduling: every grant gets a concrete start time and concurrent
	// grants never exceed the machine at any instant. Stricter than the
	// paper; outcomes gain meaningful Match.Start values.
	ExactScheduling bool
	// StrictReduction applies trade reduction per CLUSTER instead of per
	// mini-auction: every cluster's marginal client is excluded from
	// that cluster, not just the auction-wide price setter. This is the
	// conservative reading of the paper's Algorithm 4 and loses
	// considerably more welfare (one client per cluster instead of one
	// per mini-auction) — kept as an ablation of the mini-auction
	// grouping's benefit (Section IV-C: "to minimize the adverse effect
	// of trade reduction ... we group clusters in mini-auctions").
	StrictReduction bool
	// Obs, when set, records mechanism observability: per-phase wall
	// times, structure counts, and welfare per block. It is purely
	// observational — the Outcome is byte-identical with Obs nil or set
	// (the obs determinism guard enforces this), because nothing in the
	// pipeline ever reads a metric back.
	Obs *obs.MechanismMetrics
	// Workers bounds the worker pool that parallelizes the mechanism's
	// independent stages: per-request best-offer scoring, per-cluster
	// pre-passes, and the execution of mini-auctions whose member
	// clusters share no orders (see parallel.go). 0 or 1 runs fully
	// sequentially; DefaultConfig sets runtime.GOMAXPROCS(0). Every
	// worker count produces a byte-identical Outcome — the blockchain
	// verification protocol re-executes allocations on machines with
	// arbitrary core counts, so this invariant is load-bearing and is
	// enforced by the internal/auction/paralleltest harness.
	Workers int
	// Shards, when ≥ 1, routes mini-auction execution through the
	// deterministic order-book partitioner (internal/shard): each
	// order-disjoint component of mini-auctions is hashed — locality
	// cell, time bucket, block digest — to one of Shards shards,
	// components straddling shards spill into a residual clearing
	// round, and shards fan out across the worker pool (sharded.go).
	// Like Workers, the value never changes the Outcome: byte-equality
	// at every K, including against the unsharded path, is enforced by
	// paralleltest.CheckShardedVsMonolithic. 0 (the default) keeps the
	// unsharded execution.
	Shards int
	// ShardObs, when set alongside Shards, records per-shard
	// observability: orders and welfare per shard, spillover, and
	// partition/clear/residual stage latencies. Purely observational,
	// like Obs.
	ShardObs *obs.ShardMetrics
	// Incremental routes block execution through the long-lived order
	// book (internal/book) instead of rebuilding the match index and
	// clusters from scratch every round: unmatched orders carry across
	// epochs, and only book state touched since the previous clear is
	// re-derived. The flag is consensus-critical — every miner of a
	// network must agree on it, because carried orders make successive
	// allocations depend on prior blocks. The mechanism itself
	// (Run/RunPrepared) ignores the flag; it is read by the round loops
	// in miner, p2p, sim, and devnet.
	Incremental bool
	// Metros, when ≥ 2, federates the market geographically: orders are
	// homed to one of Metros metro exchanges by their Location cell
	// (internal/metro), each exchange clears its own order book, and
	// unfillable requests spill to latency-nearest neighbor metros.
	// Like Incremental, the flag is consensus-critical and is ignored
	// by Run/RunPrepared itself — the federation round loops in metro,
	// miner, sim, and devnet read it. 0 or 1 keeps the monolithic
	// market (a single-metro federation is byte-identical to it; see
	// metro/metrotest).
	Metros int
	// Futures configures the two-stage futures/spot market
	// (internal/futures): a reservation stage sells forward contracts up
	// to OverbookRatio × declared supply ahead of each epoch and the
	// spot auction settles only the unreserved remainder plus defaults.
	// Like Incremental and Metros, the knob is consensus-critical and is
	// ignored by Run/RunPrepared itself — the futures exchange and the
	// round loops in sim and loadgen read it. The zero value disables
	// the reservation stage entirely (futures/futurestest proves the
	// disabled exchange byte-identical to plain Run).
	Futures FuturesConfig
}

// FuturesConfig tunes the two-stage futures/spot market. All three
// fields are consensus-critical: every party replaying a reservation
// chain must agree on them.
type FuturesConfig struct {
	// OverbookRatio caps forward sales at this multiple of an offer's
	// declared aggregate capacity (≥ 1.0; values below 1 are read as
	// exactly 1.0, i.e. no overbooking). Selling beyond 1.0 bets on
	// buyer no-shows — reservations that do not fit real capacity at
	// delivery are bumped and the seller pays the penalty.
	OverbookRatio float64
	// PenaltyRate is the fraction of a reservation's payment a breaking
	// party owes its counterparty: defaulting or overbooked-and-bumping
	// sellers pay the buyer, no-show or cancelling buyers pay the
	// seller. Every penalty debited is credited — the flow is budget
	// balanced by construction.
	PenaltyRate float64
	// ReserveHorizon is the number of rounds between reservation and
	// delivery. 0 disables the reservation stage: every order clears
	// spot and the exchange reduces to plain Run.
	ReserveHorizon int
}

// Enabled reports whether the reservation stage runs at all.
func (f FuturesConfig) Enabled() bool { return f.ReserveHorizon > 0 }

// Ratio returns the effective overbooking ratio (floor 1.0).
func (f FuturesConfig) Ratio() float64 {
	if f.OverbookRatio < 1 {
		return 1.0
	}
	return f.OverbookRatio
}

// ReputationSource exposes participant reputations to the mechanism
// (implemented by reputation.Store).
type ReputationSource interface {
	Score(id bidding.ParticipantID) float64
}

// DefaultConfig returns the tuning used in the evaluation. Workers
// defaults to the machine's core count; the outcome does not depend on
// it (paralleltest enforces byte-equality across worker counts).
func DefaultConfig() Config {
	return Config{Match: match.DefaultConfig(), Workers: par.Default()}
}

// effectiveWorkers normalizes Config.Workers: anything below 2 means
// sequential execution.
func effectiveWorkers(cfg Config) int {
	if cfg.Workers < 1 {
		return 1
	}
	return cfg.Workers
}

// econFor picks the per-cluster economics pass for a run: the indexed
// one, except under cfg.Match.Reference, where the map-walking reference
// runs so the equivalence harness exercises a fully index-free pipeline.
func econFor(cfg Config, ix *match.Index) func(*cluster.Cluster) *EconCluster {
	if cfg.Match.Reference {
		return func(cl *cluster.Cluster) *EconCluster { return ComputeEconomics(cl, cfg.Critical) }
	}
	return func(cl *cluster.Cluster) *EconCluster { return ComputeEconomicsIndexed(cl, cfg.Critical, ix) }
}

// pairGate builds the request↔offer admissibility filter from the
// reputation source (nil when no gating applies).
func pairGate(cfg Config) func(EconRequest, EconOffer) bool {
	if cfg.Reputation == nil {
		return nil
	}
	rep := cfg.Reputation
	return func(er EconRequest, eo EconOffer) bool {
		if eo.Offer.MinReputation <= 0 {
			return true
		}
		return rep.Score(er.Request.Client) >= eo.Offer.MinReputation
	}
}

// newCapacity picks the capacity model for a run.
func newCapacity(cfg Config) Capacity {
	if cfg.ExactScheduling {
		return NewIntervalCapacity()
	}
	return NewAggregateCapacity()
}

const eps = 1e-9

// clusterStats caches the per-cluster marginal economics computed by the
// pre-pass, which stay fixed for the rest of the block (Algorithm 1
// determines v̂_z and ĉ_{z'+1} before mini-auctions are formed).
type clusterStats struct {
	ec *EconCluster
	// Marginal economics from the greedy pre-pass.
	vHatZ float64 // v̂_z: lowest allocated normalized valuation
	cHatZ float64 // ĉ_{z'}: highest allocated normalized cost
	// zClient identifies the potential request-side price setter.
	zClient bidding.ParticipantID
	// used marks offers that received an allocation in this cluster's
	// pre-pass; unused lists the rest in ĉ-ascending order. The ĉ_{z'+1}
	// price setter is resolved at the mini-auction level: it must be an
	// offer unused in EVERY member cluster (an offer trading in one
	// cluster but idle in another is not a marginal seller).
	used    map[bidding.OrderID]bool
	unused  []EconOffer
	welfare float64 // bid-based welfare of the pre-pass allocation
	active  bool
}

// prePass greedily allocates the cluster in isolation (fresh capacity) to
// locate the break-even indices z and z′ and estimate the cluster's
// welfare, per Algorithm 1's "allocate r, o ∈ cluster greedily; determine
// v̂_z, ĉ_{z'+1}".
func prePass(ec *EconCluster, pairOK func(EconRequest, EconOffer) bool, fresh func() Capacity) clusterStats {
	st := clusterStats{ec: ec, used: make(map[bidding.OrderID]bool)}
	asg := ec.Pack(fresh(), make(map[bidding.OrderID]bool), nil, nil, pairOK, nil, nil)
	if len(asg) == 0 {
		return st
	}
	st.active = true
	st.vHatZ = math.Inf(1)
	for _, a := range asg {
		if a.Req.VHat < st.vHatZ {
			st.vHatZ = a.Req.VHat
			st.zClient = a.Req.Request.Client
		}
		if a.Off.CHat > st.cHatZ {
			st.cHatZ = a.Off.CHat
		}
		st.used[a.Off.Offer.ID] = true
		st.welfare += a.Req.Request.Bid - Fraction(a.Granted, a.Req.Request, a.Off.Offer)*a.Off.Offer.Bid
	}
	for _, eo := range ec.Offers {
		if !st.used[eo.Offer.ID] {
			st.unused = append(st.unused, eo) // ec.Offers is ĉ-ascending
		}
	}
	return st
}

// Run executes DeCloud's DSIC double auction over one block of orders.
// Invalid orders are rejected (listed in the outcome), never fatal: a
// miner must process whatever the block contains.
//
// With cfg.Workers > 1 the three embarrassingly parallel stages —
// best-offer scoring, cluster pre-passes, and order-disjoint
// mini-auctions — fan out across a bounded worker pool; results are
// merged in canonical order so the Outcome is byte-identical to the
// sequential execution (see parallel.go for the argument).
func Run(requests []*bidding.Request, offers []*bidding.Offer, cfg Config) *Outcome {
	pt := startPhases(cfg.Obs)
	out := &Outcome{
		Payments: make(map[bidding.OrderID]float64),
		Revenues: make(map[bidding.OrderID]float64),
	}
	reqs, offs := screen(requests, offers, out)
	workers := effectiveWorkers(cfg)

	// One index serves the whole block: clustering scans it for best
	// offers, and the economics pre-pass reuses its dense rows and kind
	// masks (ComputeEconomicsIndexed).
	ix := match.NewIndex(reqs, offs, match.BlockScale(reqs, offs))
	pt.lapIndex()
	clusters := cluster.BuildIndex(ix, cfg.Match, workers)
	pt.lapCluster()
	runClustered(out, reqs, offs, ix, clusters, cfg, &pt, nil)
	return out
}

// phaseTimer threads the mechanism's observability through Run: lap
// methods record per-phase wall times, finish records the block's
// structure counts. A zero-value timer (Obs nil) is fully inert — no
// clock reads, no atomics — so the uninstrumented path costs one pointer
// compare per call site.
type phaseTimer struct {
	m     *obs.MechanismMetrics
	start time.Time
	last  time.Time
}

func startPhases(m *obs.MechanismMetrics) phaseTimer {
	if m == nil {
		return phaseTimer{}
	}
	now := time.Now()
	return phaseTimer{m: m, start: now, last: now}
}

func (pt *phaseTimer) lap(h *obs.Histogram) {
	now := time.Now()
	h.Observe(now.Sub(pt.last).Seconds())
	pt.last = now
}

func (pt *phaseTimer) lapIndex() {
	if pt.m != nil {
		pt.lap(pt.m.IndexSeconds)
	}
}

func (pt *phaseTimer) lapCluster() {
	if pt.m != nil {
		pt.lap(pt.m.ClusterSeconds)
	}
}

func (pt *phaseTimer) lapPrepass() {
	if pt.m != nil {
		pt.lap(pt.m.PrepassSeconds)
	}
}

func (pt *phaseTimer) lapAuctions() {
	if pt.m != nil {
		pt.lap(pt.m.AuctionsSeconds)
	}
}

func (pt *phaseTimer) finish(out *Outcome, ix *match.Index) {
	m := pt.m
	if m == nil {
		return
	}
	m.Blocks.Inc()
	m.RunSeconds.Observe(time.Since(pt.start).Seconds())
	m.TopKScans.Add(ix.Scans())
	m.Clusters.Add(int64(out.Clusters))
	m.MiniAuctions.Add(int64(out.MiniAuctions))
	m.Matches.Add(int64(len(out.Matches)))
	m.ReducedRequests.Add(int64(len(out.ReducedRequests)))
	m.ReducedOffers.Add(int64(len(out.ReducedOffers)))
	m.LotteryDropped.Add(int64(len(out.LotteryDropped)))
	m.RejectedOrders.Add(int64(len(out.RejectedRequests) + len(out.RejectedOffers)))
	w := out.BidWelfare()
	m.BidWelfareSum.Add(w)
	m.LastBidWelfare.Set(w)
}

// blockState is the mutable allocation state threaded through the
// mini-auction execution loop: shared offer capacity plus the taken /
// reduction / lottery bookkeeping. Sequential mode threads ONE state
// through every mini-auction; parallel mode gives each order-disjoint
// component of mini-auctions its own state and merges afterwards —
// equivalent because every map is keyed by order ID and components
// share no orders.
type blockState struct {
	tracker    Capacity
	taken      map[bidding.OrderID]bool
	reducedReq map[bidding.OrderID]bool
	reducedOff map[bidding.OrderID]bool
	lottery    map[bidding.OrderID]bool
}

func newBlockState(cfg Config) *blockState {
	return &blockState{
		tracker:    newCapacity(cfg),
		taken:      make(map[bidding.OrderID]bool),
		reducedReq: make(map[bidding.OrderID]bool),
		reducedOff: make(map[bidding.OrderID]bool),
		lottery:    make(map[bidding.OrderID]bool),
	}
}

// trade is one assignment recorded by a mini-auction, awaiting emission
// into the Outcome in canonical (auction-index) order.
type trade struct {
	ec    *EconCluster
	a     Assignment
	price float64
}

// auctionPrice resolves the pooled mini-auction's clearing price per
// Eq. 20: p = min(v̂_z, ĉ_{z'+1}), where v̂_z is the lowest marginal
// valuation across member clusters and ĉ_{z'+1} is the cheapest unused
// offer ABOVE every trading offer of the pool. The "above" filter is
// SBBA's structure: the price-setting seller is the first one outside
// the trade. A cluster-local unused offer cheaper than other clusters'
// trading offers is an artifact of cluster-local capacity, not the
// marginal seller — letting it set the price would push p below trading
// sellers' costs and collapse the pool. ok is false when the pool has
// no finite price (nothing trades).
func auctionPrice(auc miniauction.Auction, all []clusterStats) (p, maxUsedCost float64, usedAnywhere map[bidding.OrderID]bool, ok bool) {
	minVZ := math.Inf(1)
	usedAnywhere = make(map[bidding.OrderID]bool)
	for _, ci := range auc.Clusters {
		st := all[ci]
		if st.vHatZ < minVZ {
			minVZ = st.vHatZ
		}
		if st.cHatZ > maxUsedCost {
			maxUsedCost = st.cHatZ
		}
		for id := range st.used {
			usedAnywhere[id] = true
		}
	}
	// The ĉ_{z'+1} candidate: the cheapest offer that trades in NO
	// member cluster and sits at or above the pool's trading costs —
	// the genuine marginal seller of the pooled auction.
	nextCost := math.Inf(1)
	for _, ci := range auc.Clusters {
		for _, eo := range all[ci].unused {
			if usedAnywhere[eo.Offer.ID] || eo.CHat < maxUsedCost-eps {
				continue
			}
			if eo.CHat < nextCost {
				nextCost = eo.CHat
			}
			break // unused is ĉ-ascending: later entries are pricier
		}
	}
	p = math.Min(minVZ, nextCost)
	return p, maxUsedCost, usedAnywhere, !math.IsInf(p, 1)
}

// runMiniAuction executes one mini-auction — pricing, trade reduction,
// randomized exclusion, and capacity allocation — against the given
// block state, returning the recorded trades in deterministic order.
// ai must be the auction's index in the block-wide auction list: it
// keys the evidence-derived lotteries, so it must not depend on how
// auctions are scheduled across workers.
func runMiniAuction(ai int, auc miniauction.Auction, all []clusterStats, cfg Config, pairOK func(EconRequest, EconOffer) bool, evidence []byte, st *blockState) []trade {
	p, maxUsedCost, usedAnywhere, ok := auctionPrice(auc, all)
	if !ok {
		return nil
	}
	// Every participant whose marginal order set the price is
	// excluded — on ties, both sides (a price setter who kept
	// trading could profitably distort the price). Only genuine
	// price-setter candidates count.
	exclClients := make(map[bidding.ParticipantID]bool)
	exclProviders := make(map[bidding.ParticipantID]bool)
	for _, ci := range auc.Clusters {
		cs := all[ci]
		if cs.active && cs.vHatZ <= p+eps {
			exclClients[cs.zClient] = true
		}
		for _, eo := range cs.unused {
			if usedAnywhere[eo.Offer.ID] || eo.CHat < maxUsedCost-eps {
				continue
			}
			if eo.CHat <= p+eps {
				exclProviders[eo.Offer.Provider] = true
			}
		}
	}

	var trades []trade
	for _, ci := range auc.Clusters {
		cs := all[ci]
		ec := cs.ec
		reqOK := func(er EconRequest) bool {
			if er.VHat < p-eps || exclClients[er.Request.Client] {
				return false
			}
			if cfg.StrictReduction && cs.active && er.Request.Client == cs.zClient {
				return false
			}
			return true
		}
		offOK := func(eo EconOffer) bool {
			return eo.CHat <= p+eps && !exclProviders[eo.Offer.Provider]
		}

		eligible := 0
		for _, er := range ec.Requests {
			if !st.taken[er.Request.ID] && reqOK(er) {
				eligible++
			}
		}
		if eligible == 0 {
			continue
		}
		eligibleOffers := 0
		for _, eo := range ec.Offers {
			if offOK(eo) {
				eligibleOffers++
			}
		}
		if eligibleOffers == 0 {
			continue
		}

		// Offers are tried in a BID-INDEPENDENT order — if which
		// offers get to serve depended on reported costs, an idle
		// provider could underbid its way into the allocation
		// (Section IV-D). With no excess demand we order by machine
		// size ascending (hardware is system-reported, not strategic)
		// so small requests don't fragment the big machines.
		label := fmt.Sprintf("auction:%d/cluster:%s", ai, ec.Cluster.Key())
		offOrder := sizeOrder(evidence, label+"/offers", ec.Offers)

		// Trial pack on copy-on-write state: if every eligible request
		// fits, the deterministic v̂-descending request order is fine.
		// Otherwise Algorithm 4 applies: "randomize the allocation of
		// cluster" — BOTH which requests trade and where they land
		// are drawn from the evidence-keyed lottery, so no marginal
		// participant can bid its way into the capacity-constrained
		// allocation. This randomization is the welfare price of
		// truthfulness the paper measures in Figures 5a–5b.
		//
		// The overlay observes exactly the values a full Clone would, so
		// the trial's assignments equal what a re-pack against the real
		// state would produce; in the full case they are committed
		// directly — same grants, same order, same float mutations as
		// the re-pack the sequential mechanism used to run.
		trialTaken := newTakenOverlay(st.taken)
		full := ec.pack(trialCapacity(st.tracker), trialTaken, reqOK, offOK, pairOK, nil, offOrder)

		var asg []Assignment
		if len(full) == eligible {
			asg = full
			for _, a := range full {
				st.tracker.Commit(a.Req.Request, a.Off.Offer, a.Granted, a.Start)
				st.taken[a.Req.Request.ID] = true
			}
		} else {
			reqIDs := make([]string, len(ec.Requests))
			for i, er := range ec.Requests {
				reqIDs[i] = string(er.Request.ID)
			}
			reqOrder := stats.KeyedOrder(evidence, label+"/requests", reqIDs)
			offIDs := make([]string, len(ec.Offers))
			for i, eo := range ec.Offers {
				offIDs[i] = string(eo.Offer.ID)
			}
			randOff := stats.KeyedOrder(evidence, label+"/offers-lottery", offIDs)
			asg = ec.Pack(st.tracker, st.taken, reqOK, offOK, pairOK, reqOrder, randOff)
			for _, er := range ec.Requests {
				if !st.taken[er.Request.ID] && reqOK(er) {
					st.lottery[er.Request.ID] = true
				}
			}
		}
		for _, a := range asg {
			trades = append(trades, trade{ec: ec, a: a, price: p})
		}
	}

	// Bookkeeping of reduced trades: the price setters' competitive
	// orders that were barred from this auction.
	for _, ci := range auc.Clusters {
		cs := all[ci]
		for _, er := range cs.ec.Requests {
			excluded := exclClients[er.Request.Client] ||
				(cfg.StrictReduction && cs.active && er.Request.Client == cs.zClient)
			if excluded && er.VHat >= p-eps && !st.taken[er.Request.ID] {
				st.reducedReq[er.Request.ID] = true
			}
		}
		for _, eo := range cs.ec.Offers {
			if exclProviders[eo.Offer.Provider] && eo.CHat <= p+eps {
				st.reducedOff[eo.Offer.ID] = true
			}
		}
	}
	return trades
}

// RunGreedy is the paper's non-truthful benchmark: the same clustering
// and greedy allocation pipeline, but without trade reduction or
// randomization — every profitable trade executes, yielding "the best
// possible welfare under greedy allocation" (Section V). Payments are not
// meaningful for the benchmark (it is not strategyproof) and are left 0.
func RunGreedy(requests []*bidding.Request, offers []*bidding.Offer, cfg Config) *Outcome {
	out := &Outcome{
		Payments: make(map[bidding.OrderID]float64),
		Revenues: make(map[bidding.OrderID]float64),
	}
	reqs, offs := screen(requests, offers, out)
	workers := effectiveWorkers(cfg)

	ix := match.NewIndex(reqs, offs, match.BlockScale(reqs, offs))
	clusters := cluster.BuildIndex(ix, cfg.Match, workers)
	out.Clusters = len(clusters)

	type ranked struct {
		ec      *EconCluster
		welfare float64
		active  bool
	}
	econ := econFor(cfg, ix)
	pairOK := pairGate(cfg)
	prePassed := make([]ranked, len(clusters))
	par.ForEach(workers, len(clusters), func(i int) {
		ec := econ(clusters[i])
		st := prePass(ec, pairOK, func() Capacity { return newCapacity(cfg) })
		prePassed[i] = ranked{ec: ec, welfare: st.welfare, active: st.active}
	})
	rankedClusters := make([]ranked, 0, len(clusters))
	for _, rc := range prePassed {
		if rc.active {
			rankedClusters = append(rankedClusters, rc)
		}
	}
	slices.SortFunc(rankedClusters, func(a, b ranked) int {
		switch {
		case a.welfare > b.welfare:
			return -1
		case a.welfare < b.welfare:
			return 1
		}
		// Cluster keys are unique, so ties resolve identically under
		// any sort algorithm.
		return strings.Compare(a.ec.Cluster.Key(), b.ec.Cluster.Key())
	})

	tracker := newCapacity(cfg)
	taken := make(map[bidding.OrderID]bool)
	for _, rc := range rankedClusters {
		for _, a := range rc.ec.Pack(tracker, taken, nil, nil, pairOK, nil, nil) {
			recordMatch(out, rc.ec, a, 0)
		}
	}
	settle(out)
	return out
}

// screen validates orders, returning the accepted ones and recording
// rejections in the outcome.
func screen(requests []*bidding.Request, offers []*bidding.Offer, out *Outcome) ([]*bidding.Request, []*bidding.Offer) {
	reqs := make([]*bidding.Request, 0, len(requests))
	for _, r := range requests {
		if err := r.Validate(); err != nil {
			out.RejectedRequests = append(out.RejectedRequests, r.ID)
			continue
		}
		reqs = append(reqs, r)
	}
	offs := make([]*bidding.Offer, 0, len(offers))
	for _, o := range offers {
		if err := o.Validate(); err != nil {
			out.RejectedOffers = append(out.RejectedOffers, o.ID)
			continue
		}
		offs = append(offs, o)
	}
	return reqs, offs
}

// recordMatch appends one trade to the outcome. Payments and Revenues
// are NOT written here: they are struct-of-arrays state derived from
// Matches, built once at settle time with exact capacity instead of
// growing two maps trade by trade.
func recordMatch(out *Outcome, ec *EconCluster, a Assignment, price float64) {
	r, o := a.Req.Request, a.Off.Offer
	nu := ec.NuOf(a.Granted)
	pay := nu * price * float64(r.Duration)
	out.Matches = append(out.Matches, Match{
		Request:   r,
		Offer:     o,
		Granted:   a.Granted,
		Fraction:  Fraction(a.Granted, r, o),
		Nu:        nu,
		UnitPrice: price,
		Payment:   pay,
		Start:     a.Start,
	})
}

// settle materializes the Payments/Revenues maps from the recorded
// matches. Iteration follows Matches emission order — the order the
// per-trade map writes used to happen in — so the Revenues float
// accumulation is bit-identical to the incremental construction.
func settle(out *Outcome) {
	out.Payments = make(map[bidding.OrderID]float64, len(out.Matches))
	out.Revenues = make(map[bidding.OrderID]float64, len(out.Matches))
	for i := range out.Matches {
		m := &out.Matches[i]
		out.Payments[m.Request.ID] = m.Payment
		out.Revenues[m.Offer.ID] += m.Payment
	}
}

// sizeOrder returns offer indexes sorted by resource magnitude ascending,
// with an evidence-keyed hash breaking ties — fully independent of
// reported costs.
func sizeOrder(evidence []byte, label string, offers []EconOffer) []int {
	ids := make([]string, len(offers))
	for i, eo := range offers {
		ids[i] = string(eo.Offer.ID)
	}
	hashRank := make([]int, len(offers))
	for rank, idx := range stats.KeyedOrder(evidence, label, ids) {
		hashRank[idx] = rank
	}
	// Norm2 allocates (it sorts the vector's kinds); compute it once per
	// offer, not once per comparison.
	norm := make([]float64, len(offers))
	for i, eo := range offers {
		norm[i] = eo.Offer.Resources.Norm2()
	}
	order := make([]int, len(offers))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		na, nb := norm[a], norm[b]
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		}
		// hashRank is a permutation, so this comparator is a total
		// order: the sorted result is unique no matter the algorithm.
		return hashRank[a] - hashRank[b]
	})
	return order
}

// finalize drops reduction/lottery records for orders that did trade in
// a later mini-auction, emits them deterministically sorted, and settles
// the payment/revenue maps from the recorded matches.
func finalize(out *Outcome, taken map[bidding.OrderID]bool, reducedReq, reducedOff, lottery map[bidding.OrderID]bool) {
	usedOffers := make(map[bidding.OrderID]bool, len(out.Matches))
	for i := range out.Matches {
		usedOffers[out.Matches[i].Offer.ID] = true
	}
	out.ReducedRequests = sortedIDs(reducedReq, taken)
	out.ReducedOffers = sortedIDs(reducedOff, usedOffers)
	out.LotteryDropped = sortedIDs(lottery, taken)
	settle(out)
}

func sortedIDs(set map[bidding.OrderID]bool, traded map[bidding.OrderID]bool) []bidding.OrderID {
	var ids []bidding.OrderID
	for id := range set {
		if !traded[id] {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}
