package auction

import (
	"fmt"
	"math/rand"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

func TestIntervalTrackerSchedulesSequentially(t *testing.T) {
	it := NewIntervalCapacity().(*IntervalTracker)
	o := &bidding.Offer{
		ID: "o", Provider: "p",
		Resources: resource.Vector{resource.CPU: 4},
		Start:     0, End: 100, Bid: 1,
	}
	// Two full-machine jobs of 40s each: they must serialize, not overlap.
	mk := func(id string) *bidding.Request {
		return &bidding.Request{
			ID: bidding.OrderID(id), Client: "c-" + bidding.ParticipantID(id),
			Resources: resource.Vector{resource.CPU: 4},
			Start:     0, End: 100, Duration: 40, Bid: 1,
		}
	}
	r1, r2, r3 := mk("r1"), mk("r2"), mk("r3")

	g1, s1, ok := it.TryGrant(r1, o)
	if !ok || s1 != 0 {
		t.Fatalf("first grant: ok=%v start=%d", ok, s1)
	}
	it.Commit(r1, o, g1, s1)

	g2, s2, ok := it.TryGrant(r2, o)
	if !ok {
		t.Fatal("second grant should fit after the first")
	}
	if s2 != 40 {
		t.Fatalf("second start = %d, want 40 (after r1)", s2)
	}
	it.Commit(r2, o, g2, s2)

	// Third 40s job cannot finish by t=100 (would need [80, 120)).
	if _, _, ok := it.TryGrant(r3, o); ok {
		t.Fatal("third full-machine job cannot fit in the window")
	}

	sched := it.ScheduleOf("o")
	if len(sched) != 2 || sched[0] != [2]int64{0, 40} || sched[1] != [2]int64{40, 80} {
		t.Fatalf("schedule = %v", sched)
	}
}

func TestIntervalTrackerConcurrentWhenCapacityAllows(t *testing.T) {
	it := NewIntervalCapacity().(*IntervalTracker)
	o := &bidding.Offer{
		ID: "o", Provider: "p",
		Resources: resource.Vector{resource.CPU: 4},
		Start:     0, End: 100, Bid: 1,
	}
	mk := func(id string, cpu float64) *bidding.Request {
		return &bidding.Request{
			ID: bidding.OrderID(id), Client: "c-" + bidding.ParticipantID(id),
			Resources: resource.Vector{resource.CPU: cpu},
			Start:     0, End: 100, Duration: 100, Bid: 1,
		}
	}
	// Two half-machine jobs run concurrently from t=0.
	for i := 0; i < 2; i++ {
		r := mk(fmt.Sprintf("r%d", i), 2)
		g, s, ok := it.TryGrant(r, o)
		if !ok || s != 0 {
			t.Fatalf("job %d: ok=%v start=%d", i, ok, s)
		}
		it.Commit(r, o, g, s)
	}
	// A third 2-core job cannot fit anywhere (machine full for the whole window).
	if _, _, ok := it.TryGrant(mk("r2", 2), o); ok {
		t.Fatal("machine is saturated; third job must not fit")
	}
}

// The aggregate model's known blind spot: two full-machine jobs, each
// lasting the whole window, CANNOT run on one machine — but two
// half-window jobs whose windows force overlap can slip through the
// aggregate accounting. Exact scheduling must refuse.
func TestExactSchedulingRejectsForcedOverlap(t *testing.T) {
	o := &bidding.Offer{
		ID: "o", Provider: "p",
		Resources: resource.Vector{resource.CPU: 4},
		Start:     0, End: 100, Bid: 1,
	}
	// Both jobs need the full machine for [0, 60) ∩ their windows force
	// them to overlap: r1 must run in [0,60], r2 in [30,90] with d=60 →
	// r2 can only start at exactly 30, overlapping r1 whichever way.
	r1 := &bidding.Request{
		ID: "r1", Client: "a",
		Resources: resource.Vector{resource.CPU: 4},
		Start:     0, End: 60, Duration: 60, Bid: 1,
	}
	r2 := &bidding.Request{
		ID: "r2", Client: "b",
		Resources: resource.Vector{resource.CPU: 4},
		Start:     30, End: 90, Duration: 60, Bid: 1,
	}

	agg := NewAggregateCapacity()
	g, s, ok := agg.TryGrant(r1, o)
	if !ok {
		t.Fatal("aggregate r1")
	}
	agg.Commit(r1, o, g, s)
	if _, _, ok := agg.TryGrant(r2, o); !ok {
		t.Skip("aggregate model happened to reject; nothing to contrast")
	}

	exact := NewIntervalCapacity()
	g, s, ok = exact.TryGrant(r1, o)
	if !ok {
		t.Fatal("exact r1")
	}
	exact.Commit(r1, o, g, s)
	if _, _, ok := exact.TryGrant(r2, o); ok {
		t.Fatal("exact scheduling admitted a physically impossible overlap")
	}
}

func TestExactSchedulingEndToEnd(t *testing.T) {
	market := workloadMulti(t)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("exact")
	cfg.ExactScheduling = true
	out := Run(market.Requests, market.Offers, cfg)
	if len(out.Matches) == 0 {
		t.Fatal("exact scheduling produced no trades")
	}
	// Re-verify: no offer is oversubscribed at any instant. Rebuild the
	// schedule from the matches and sweep.
	type slot struct {
		start, end int64
		res        resource.Vector
	}
	byOffer := map[bidding.OrderID][]slot{}
	for _, m := range out.Matches {
		if m.Start < m.Request.Start || m.Start+m.Request.Duration > m.Request.End {
			t.Fatalf("match %s scheduled outside its window: start=%d", m.Request.ID, m.Start)
		}
		if m.Start < m.Offer.Start || m.Start+m.Request.Duration > m.Offer.End {
			t.Fatalf("match %s scheduled outside the offer window", m.Request.ID)
		}
		byOffer[m.Offer.ID] = append(byOffer[m.Offer.ID], slot{
			start: m.Start, end: m.Start + m.Request.Duration, res: m.Granted,
		})
	}
	for _, m := range out.Matches {
		o := m.Offer
		slots := byOffer[o.ID]
		for _, s := range slots {
			// usage at instant s.start
			usage := make(resource.Vector)
			for _, other := range slots {
				if other.start <= s.start && s.start < other.end {
					usage = usage.Add(other.res)
				}
			}
			for _, k := range usage.Kinds() {
				if usage[k] > o.Resources[k]+1e-6 {
					t.Fatalf("offer %s oversubscribed at t=%d: %v > %v of %s",
						o.ID, s.start, usage[k], o.Resources[k], k)
				}
			}
		}
	}
	// The exact model can only be more conservative than the aggregate one.
	agg := Run(market.Requests, market.Offers, DefaultConfig())
	if len(out.Matches) > len(agg.Matches)+2 {
		t.Fatalf("exact scheduling matched more than aggregate: %d vs %d",
			len(out.Matches), len(agg.Matches))
	}
}

func TestExactSchedulingDeterministic(t *testing.T) {
	run := func() *Outcome {
		reqs, offs := randomMarket(rand.New(rand.NewSource(7)), 40, 8)
		cfg := DefaultConfig()
		cfg.Evidence = []byte("det")
		cfg.ExactScheduling = true
		return Run(reqs, offs, cfg)
	}
	a, b := run(), run()
	if len(a.Matches) != len(b.Matches) {
		t.Fatal("nondeterministic match count under exact scheduling")
	}
	for i := range a.Matches {
		if a.Matches[i].Start != b.Matches[i].Start || a.Matches[i].Payment != b.Matches[i].Payment {
			t.Fatalf("nondeterministic match %d", i)
		}
	}
}
