package auction

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/workload"
)

// mkReq builds a truthful request: Bid == TrueValue.
func mkReq(id string, client string, cpu, ram float64, value float64) *bidding.Request {
	return &bidding.Request{
		ID:     bidding.OrderID(id),
		Client: bidding.ParticipantID(client),
		Resources: resource.Vector{
			resource.CPU: cpu,
			resource.RAM: ram,
		},
		Start: 0, End: 100, Duration: 100,
		Bid: value, TrueValue: value,
	}
}

// mkOff builds a truthful offer: Bid == TrueCost.
func mkOff(id string, provider string, cpu, ram float64, cost float64) *bidding.Offer {
	return &bidding.Offer{
		ID:       bidding.OrderID(id),
		Provider: bidding.ParticipantID(provider),
		Resources: resource.Vector{
			resource.CPU: cpu,
			resource.RAM: ram,
		},
		Start: 0, End: 100,
		Bid: cost, TrueCost: cost,
	}
}

// simpleMarket: several clients wanting the same machine shape, enough
// supply, a clear price gap.
func simpleMarket() ([]*bidding.Request, []*bidding.Offer) {
	reqs := []*bidding.Request{
		mkReq("r1", "alice", 2, 8, 10),
		mkReq("r2", "bob", 2, 8, 9),
		mkReq("r3", "carol", 2, 8, 8),
		mkReq("r4", "dave", 2, 8, 7),
	}
	offs := []*bidding.Offer{
		mkOff("o1", "p1", 8, 32, 4),
		mkOff("o2", "p2", 8, 32, 5),
		mkOff("o3", "p3", 8, 32, 6),
	}
	return reqs, offs
}

func TestRunProducesTrades(t *testing.T) {
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	if len(out.Matches) == 0 {
		t.Fatal("no trades in an obviously profitable market")
	}
	if out.Clusters == 0 || out.MiniAuctions == 0 {
		t.Fatalf("structures missing: clusters=%d auctions=%d", out.Clusters, out.MiniAuctions)
	}
	for _, m := range out.Matches {
		if m.Payment <= 0 {
			t.Fatalf("match %s has non-positive payment %v", m.Request.ID, m.Payment)
		}
		if m.UnitPrice <= 0 {
			t.Fatalf("match %s has non-positive price", m.Request.ID)
		}
	}
}

func TestStrongBudgetBalance(t *testing.T) {
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	if math.Abs(out.TotalPayments()-out.TotalRevenues()) > 1e-9 {
		t.Fatalf("payments %v != revenues %v", out.TotalPayments(), out.TotalRevenues())
	}
	// Revenues map must reconcile with matches.
	var fromMap float64
	for _, v := range out.Revenues {
		fromMap += v
	}
	if math.Abs(fromMap-out.TotalPayments()) > 1e-9 {
		t.Fatalf("revenue map %v != payments %v", fromMap, out.TotalPayments())
	}
}

func TestClientIndividualRationality(t *testing.T) {
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	for _, m := range out.Matches {
		if m.Payment > m.Request.Bid+1e-9 {
			t.Fatalf("client %s pays %v above bid %v", m.Request.Client, m.Payment, m.Request.Bid)
		}
	}
}

func TestProviderIndividualRationality(t *testing.T) {
	// Every trading offer must have ĉ_o ≤ p: its normalized cost is
	// covered by the unit price (the paper's provider-side IR).
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	for _, m := range out.Matches {
		cHat := m.Offer.Bid / float64(m.Offer.Window())
		// ν_o ≤ 1 so ĉ_o ≥ Bid/window; the precise check needs the cluster
		// scale, but p ≥ ĉ_o ≥ Bid/(ν_o·window) ≥ Bid/window.
		if m.UnitPrice < cHat-1e-9 {
			t.Fatalf("offer %s trades below its raw cost rate: p=%v chat>=%v", m.Offer.ID, m.UnitPrice, cHat)
		}
	}
}

func TestRequestMatchedAtMostOnce(t *testing.T) {
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	seen := make(map[bidding.OrderID]bool)
	for _, m := range out.Matches {
		if seen[m.Request.ID] {
			t.Fatalf("request %s matched twice (violates Const. 5)", m.Request.ID)
		}
		seen[m.Request.ID] = true
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	// Many small requests on one machine: aggregated grants must respect
	// resource·time capacity per kind (Const. 7).
	var reqs []*bidding.Request
	for i := 0; i < 12; i++ {
		r := mkReq(fmt.Sprintf("r%02d", i), fmt.Sprintf("c%02d", i), 2, 8, 10)
		r.Duration = 100
		reqs = append(reqs, r)
	}
	offs := []*bidding.Offer{mkOff("o1", "p1", 4, 16, 1)}
	out := Run(reqs, offs, DefaultConfig())

	used := make(map[bidding.OrderID]resource.Vector)
	for _, m := range out.Matches {
		prev := used[m.Offer.ID]
		if prev == nil {
			prev = make(resource.Vector)
		}
		used[m.Offer.ID] = prev.Add(m.Granted.Scale(float64(m.Request.Duration)))
	}
	for _, o := range offs {
		cap := o.Resources.Scale(float64(o.Window()))
		for k, u := range used[o.ID] {
			if u > cap[k]+1e-6 {
				t.Fatalf("offer %s kind %s overcommitted: %v > %v", o.ID, k, u, cap[k])
			}
		}
	}
	// With 4 cores × 100s = 400 core·s and 2-core × 100 s requests, at
	// most 2 can run.
	if len(out.Matches) > 2 {
		t.Fatalf("capacity allows 2 trades, got %d", len(out.Matches))
	}
}

func TestInstantaneousCapacityRespected(t *testing.T) {
	// A request bigger than the machine (instantaneously) must not match,
	// even though resource·time would allow it over a long window.
	r := mkReq("r1", "alice", 8, 8, 100)
	r.Duration = 10 // short duration, [0,100] window
	o := mkOff("o1", "p1", 4, 32, 1)
	out := Run([]*bidding.Request{r}, []*bidding.Offer{o}, DefaultConfig())
	if len(out.Matches) != 0 {
		t.Fatalf("8-core request matched on a 4-core machine: %+v", out.Matches)
	}
}

func TestTimeWindowsRespected(t *testing.T) {
	r := mkReq("r1", "alice", 2, 8, 10)
	r.Start, r.End, r.Duration = 0, 100, 50
	o := mkOff("o1", "p1", 8, 32, 1)
	o.Start, o.End = 25, 200 // starts after the request's window opens
	out := Run([]*bidding.Request{r}, []*bidding.Offer{o}, DefaultConfig())
	if len(out.Matches) != 0 {
		t.Fatal("offer window does not cover request window (Const. 10)")
	}
}

func TestUnprofitableMarketNoTrades(t *testing.T) {
	reqs := []*bidding.Request{mkReq("r1", "alice", 2, 8, 1)}
	offs := []*bidding.Offer{mkOff("o1", "p1", 8, 32, 1000)}
	out := Run(reqs, offs, DefaultConfig())
	if len(out.Matches) != 0 {
		t.Fatalf("trade executed at a loss: %+v", out.Matches)
	}
}

func TestEmptyMarket(t *testing.T) {
	out := Run(nil, nil, DefaultConfig())
	if len(out.Matches) != 0 || out.Clusters != 0 {
		t.Fatalf("empty market produced output: %+v", out)
	}
	if out.Welfare() != 0 || out.TotalPayments() != 0 {
		t.Fatal("empty market has non-zero economics")
	}
}

func TestInvalidOrdersRejectedNotFatal(t *testing.T) {
	bad := &bidding.Request{ID: "bad"} // fails validation
	good := mkReq("r1", "alice", 2, 8, 10)
	// A second, cheaper client acts as the price setter so that "good"
	// can actually trade (a lone pair is always reduced away).
	setter := mkReq("r2", "zed", 2, 8, 2)
	badOff := &bidding.Offer{ID: "badoff"}
	goodOff := mkOff("o1", "p1", 8, 32, 1)
	out := Run([]*bidding.Request{bad, good, setter}, []*bidding.Offer{badOff, goodOff}, DefaultConfig())
	if len(out.RejectedRequests) != 1 || out.RejectedRequests[0] != "bad" {
		t.Fatalf("RejectedRequests = %v", out.RejectedRequests)
	}
	if len(out.RejectedOffers) != 1 || out.RejectedOffers[0] != "badoff" {
		t.Fatalf("RejectedOffers = %v", out.RejectedOffers)
	}
	if len(out.Matches) != 1 {
		t.Fatalf("valid orders should still trade: %d matches", len(out.Matches))
	}
}

func TestDeterministicOutcome(t *testing.T) {
	run := func() *Outcome {
		reqs, offs := randomMarket(rand.New(rand.NewSource(99)), 30, 10)
		cfg := DefaultConfig()
		cfg.Evidence = []byte("block-42")
		return Run(reqs, offs, cfg)
	}
	a, b := run(), run()
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("nondeterministic match count: %d vs %d", len(a.Matches), len(b.Matches))
	}
	for i := range a.Matches {
		ma, mb := a.Matches[i], b.Matches[i]
		if ma.Request.ID != mb.Request.ID || ma.Offer.ID != mb.Offer.ID || ma.Payment != mb.Payment {
			t.Fatalf("nondeterministic match %d: %+v vs %+v", i, ma, mb)
		}
	}
	if math.Abs(a.Welfare()-b.Welfare()) > 1e-12 {
		t.Fatal("nondeterministic welfare")
	}
}

func TestEvidenceChangesLotteryOnly(t *testing.T) {
	// Different evidence may change who wins a lottery but never creates
	// infeasible or unbalanced outcomes.
	reqs, offs := randomMarket(rand.New(rand.NewSource(5)), 40, 8)
	for _, ev := range []string{"block-1", "block-2", "block-3"} {
		cfg := DefaultConfig()
		cfg.Evidence = []byte(ev)
		out := Run(reqs, offs, cfg)
		if math.Abs(out.TotalPayments()-out.TotalRevenues()) > 1e-9 {
			t.Fatalf("budget imbalance under evidence %s", ev)
		}
		for _, m := range out.Matches {
			if m.Payment > m.Request.Bid+1e-9 {
				t.Fatalf("IR violated under evidence %s", ev)
			}
		}
	}
}

func TestTradeReductionExcludesPriceSetter(t *testing.T) {
	// A market where the marginal request sets the price: that client's
	// orders must not trade, and must be recorded as reduced (unless they
	// traded elsewhere).
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	// Find the clearing price(s) and assert no trading request bid below.
	for _, m := range out.Matches {
		vHat := m.Request.Bid / float64(m.Request.Duration) / m.Nu
		_ = vHat // v̂ uses requested-ν; just assert payment sanity here.
		if m.Payment > m.Request.Bid+1e-9 {
			t.Fatal("price setter traded above value")
		}
	}
	// Reduced requests never appear in matches.
	matched := make(map[bidding.OrderID]bool)
	for _, m := range out.Matches {
		matched[m.Request.ID] = true
	}
	for _, id := range out.ReducedRequests {
		if matched[id] {
			t.Fatalf("request %s both reduced and matched", id)
		}
	}
}

func TestFlexibleRequestPartialGrant(t *testing.T) {
	r := mkReq("r1", "alice", 8, 32, 50)
	r.Flexibility = 0.5
	// A low-value request from another client sets the price; a second
	// offer hosts it in the pre-pass so capacity remains for r1.
	setter := mkReq("r2", "zed", 2, 8, 5)
	o := mkOff("o1", "p1", 4, 16, 1) // half of what r1 asked
	o2 := mkOff("o2", "p2", 4, 16, 2)
	out := Run([]*bidding.Request{r, setter}, []*bidding.Offer{o, o2}, DefaultConfig())
	var m *Match
	for i := range out.Matches {
		if out.Matches[i].Request.ID == "r1" {
			m = &out.Matches[i]
		}
	}
	if m == nil {
		t.Fatalf("flexible request should match, matches=%d", len(out.Matches))
	}
	if m.Granted[resource.CPU] != 4 || m.Granted[resource.RAM] != 16 {
		t.Fatalf("granted = %v, want the offer's full size", m.Granted)
	}
	if m.Payment > m.Request.Bid+1e-9 {
		t.Fatal("partial grant must still respect IR")
	}
}

func TestInflexibleRequestNoPartialGrant(t *testing.T) {
	r := mkReq("r1", "alice", 8, 32, 50)
	o := mkOff("o1", "p1", 4, 16, 1)
	out := Run([]*bidding.Request{r}, []*bidding.Offer{o}, DefaultConfig())
	if len(out.Matches) != 0 {
		t.Fatal("inflexible request must get 100% of resources or nothing")
	}
}

func TestGreedyBenchmarkDominatesDeCloudWelfare(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		reqs, offs := randomMarket(rnd, 20+rnd.Intn(40), 5+rnd.Intn(10))
		mech := Run(reqs, offs, DefaultConfig())
		bench := RunGreedy(reqs, offs, DefaultConfig())
		// The benchmark has no reduction, so it should (weakly) dominate
		// in welfare in the typical case. Tiny inversions can occur due
		// to randomized packing, so allow a small tolerance band.
		if mech.Welfare() > bench.Welfare()*1.05+1e-6 {
			t.Fatalf("trial %d: DeCloud welfare %v exceeds benchmark %v by >5%%",
				trial, mech.Welfare(), bench.Welfare())
		}
	}
}

func TestGreedyBenchmarkNoPayments(t *testing.T) {
	reqs, offs := simpleMarket()
	out := RunGreedy(reqs, offs, DefaultConfig())
	if len(out.Matches) == 0 {
		t.Fatal("benchmark should trade")
	}
	if out.TotalPayments() != 0 {
		t.Fatal("benchmark defines no payments")
	}
	if out.Welfare() <= 0 {
		t.Fatalf("benchmark welfare = %v", out.Welfare())
	}
}

func TestOutcomeAccessors(t *testing.T) {
	reqs, offs := simpleMarket()
	out := Run(reqs, offs, DefaultConfig())
	if out.MatchedRequests() != len(out.Matches) {
		t.Fatal("MatchedRequests mismatch")
	}
	if s := out.Satisfaction(len(reqs)); s <= 0 || s > 1 {
		t.Fatalf("Satisfaction = %v", s)
	}
	if out.Satisfaction(0) != 0 {
		t.Fatal("Satisfaction(0) should be 0")
	}
	m := out.Matches[0]
	if out.PaymentFor(m.Request.ID) != m.Payment {
		t.Fatal("PaymentFor mismatch")
	}
	if out.RevenueFor(m.Offer.ID) <= 0 {
		t.Fatal("RevenueFor missing")
	}
	if out.MatchFor(m.Request.ID) == nil {
		t.Fatal("MatchFor missing")
	}
	if out.MatchFor("nope") != nil {
		t.Fatal("MatchFor ghost")
	}
	if r := out.ReducedTradeRate(); r < 0 || r > 1 {
		t.Fatalf("ReducedTradeRate = %v", r)
	}
}

// workloadMulti builds a workload market with multi-request clients.
func workloadMulti(t *testing.T) *workload.Market {
	t.Helper()
	return workload.Generate(workload.Config{Seed: 51, Requests: 60, RequestsPerClient: 3})
}

// randomMarket generates a market of n requests and m providers with
// machine-shaped resources and correlated values/costs.
func randomMarket(rnd *rand.Rand, n, m int) ([]*bidding.Request, []*bidding.Offer) {
	offs := make([]*bidding.Offer, m)
	for j := 0; j < m; j++ {
		cores := float64(int(2) << rnd.Intn(4)) // 2,4,8,16
		ram := cores * 4
		cost := cores * (0.4 + rnd.Float64()*0.2)
		offs[j] = mkOff(fmt.Sprintf("o%03d", j), fmt.Sprintf("p%03d", j), cores, ram, cost)
	}
	reqs := make([]*bidding.Request, n)
	for i := 0; i < n; i++ {
		cores := float64(1 + rnd.Intn(4))
		ram := cores * (2 + rnd.Float64()*4)
		value := cores * (0.3 + rnd.Float64()*1.5)
		r := mkReq(fmt.Sprintf("r%03d", i), fmt.Sprintf("c%03d", i), cores, ram, value)
		r.Duration = int64(20 + rnd.Intn(80))
		reqs[i] = r
	}
	return reqs, offs
}

func TestLocalityConstraintInMechanism(t *testing.T) {
	r := mkReq("r-local", "alice", 2, 8, 10)
	r.Location = bidding.Location{X: 0, Y: 0}
	r.MaxDistance = 5
	setter := mkReq("r-setter", "zed", 2, 8, 1)
	setter.Location = bidding.Location{X: 1, Y: 1}
	setter.MaxDistance = 5

	near := mkOff("o-near", "p1", 8, 32, 2)
	near.Location = bidding.Location{X: 1, Y: 1}
	far := mkOff("o-far", "p2", 8, 32, 1) // cheaper, but 100 away
	far.Location = bidding.Location{X: 100, Y: 0}

	out := Run([]*bidding.Request{r, setter}, []*bidding.Offer{near, far}, DefaultConfig())
	m := out.MatchFor("r-local")
	if m == nil {
		t.Fatal("local request should trade on the nearby machine")
	}
	if m.Offer.ID != "o-near" {
		t.Fatalf("matched %s, violating the locality constraint", m.Offer.ID)
	}
}

// TestClientExclusionCoversAllItsOrders: when a client's marginal request
// sets the price, ALL of that client's requests are barred from the
// mini-auction (Section IV-C), not just the price-setting one.
func TestClientExclusionCoversAllItsOrders(t *testing.T) {
	// zed submits two requests: the low one sets the price; the high one
	// would otherwise trade profitably, but must be excluded too.
	reqs := []*bidding.Request{
		mkReq("r-alice", "alice", 2, 8, 10),
		mkReq("r-zed-hi", "zed", 2, 8, 9),
		mkReq("r-zed-lo", "zed", 2, 8, 1),
	}
	offs := []*bidding.Offer{mkOff("o1", "p1", 8, 32, 1)}
	out := Run(reqs, offs, DefaultConfig())

	if out.MatchFor("r-zed-lo") != nil || out.MatchFor("r-zed-hi") != nil {
		t.Fatal("price setter's sibling order traded")
	}
	if out.MatchFor("r-alice") == nil {
		t.Fatal("alice should trade at zed's price")
	}
	// Both of zed's competitive orders count as reduced.
	reduced := map[bidding.OrderID]bool{}
	for _, id := range out.ReducedRequests {
		reduced[id] = true
	}
	if !reduced["r-zed-hi"] {
		t.Fatalf("sibling order not recorded as reduced: %v", out.ReducedRequests)
	}
}

// TestMultiRequestClientsMarket: whole-market run with shared client
// identities; the audit invariants must hold throughout.
func TestMultiRequestClientsMarket(t *testing.T) {
	market := workloadMulti(t)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("multi")
	out := Run(market.Requests, market.Offers, cfg)
	if len(out.Matches) == 0 {
		t.Fatal("no trades")
	}
	// No client may both set a price (appear in ReducedRequests) and
	// trade another order in the same mini-auction; cross-auction trades
	// are legitimate, so only verify the bookkeeping is consistent.
	matched := map[bidding.OrderID]bool{}
	for _, m := range out.Matches {
		matched[m.Request.ID] = true
	}
	for _, id := range out.ReducedRequests {
		if matched[id] {
			t.Fatalf("order %s both reduced and matched", id)
		}
	}
}
