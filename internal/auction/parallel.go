package auction

import (
	"decloud/internal/bidding"
	"decloud/internal/miniauction"
	"decloud/internal/par"
)

// Parallel mini-auction execution.
//
// Mini-auctions are NOT automatically independent: Algorithm 2's
// intersection clusters let one order appear in several clusters, and a
// cluster on a shared tree prefix appears on several root-to-leaf
// paths. All cross-auction coupling, however, flows through state keyed
// by order ID — the capacity tracker (offer IDs), the taken set
// (request IDs), and the reduction/lottery bookkeeping — so auctions
// whose member clusters share no order can neither observe nor affect
// each other. We therefore partition the auctions into order-disjoint
// components (union-find over order footprints), execute each component
// sequentially in auction-index order against its own blockState, and
// merge: trades are emitted in global auction-index order and the
// bookkeeping maps are unioned (their key sets are disjoint across
// components). Interleaving auctions of disjoint components commutes,
// so this reproduces the sequential execution byte for byte — the
// property internal/auction/paralleltest enforces.

// clusterFootprint lists every order ID a cluster's execution can read
// or write, as strings for miniauction.IndependentGroups. It uses the
// raw cluster membership (a superset of the economics-filtered orders),
// which can only over-merge components, never under-merge.
func clusterFootprint(cs clusterStats) []string {
	cl := cs.ec.Cluster
	ids := make([]string, 0, len(cl.Requests)+len(cl.Offers))
	for _, r := range cl.Requests {
		ids = append(ids, string(r.ID))
	}
	for _, o := range cl.Offers {
		ids = append(ids, string(o.ID))
	}
	return ids
}

// runAuctionsParallel executes the mini-auctions across the worker pool
// and fills in the outcome exactly as the sequential loop would.
func runAuctionsParallel(out *Outcome, auctions []miniauction.Auction, all []clusterStats, cfg Config, pairOK func(EconRequest, EconOffer) bool, evidence []byte, workers int) {
	groups := miniauction.IndependentGroups(auctions, func(ci int) []string {
		return clusterFootprint(all[ci])
	})

	states := make([]*blockState, len(groups))
	tradesByAuction := make([][]trade, len(auctions))
	par.ForEach(workers, len(groups), func(gi int) {
		st := newBlockState(cfg)
		for _, ai := range groups[gi] {
			// Each auction keeps its global index: the evidence-keyed
			// lotteries are labeled by it, so scheduling must not
			// change which lottery an auction draws.
			tradesByAuction[ai] = runMiniAuction(ai, auctions[ai], all, cfg, pairOK, evidence, st)
		}
		states[gi] = st
	})

	// Canonical merge: trades in auction-index order (what the
	// sequential loop emits), bookkeeping maps unioned — key sets are
	// disjoint across components, so union order is immaterial.
	for _, trs := range tradesByAuction {
		for _, tr := range trs {
			recordMatch(out, tr.ec, tr.a, tr.price)
		}
	}
	taken := make(map[bidding.OrderID]bool)
	reducedReq := make(map[bidding.OrderID]bool)
	reducedOff := make(map[bidding.OrderID]bool)
	lottery := make(map[bidding.OrderID]bool)
	for _, st := range states {
		mergeIDs(taken, st.taken)
		mergeIDs(reducedReq, st.reducedReq)
		mergeIDs(reducedOff, st.reducedOff)
		mergeIDs(lottery, st.lottery)
	}
	finalize(out, taken, reducedReq, reducedOff, lottery)
}

func mergeIDs(dst, src map[bidding.OrderID]bool) {
	for id, v := range src {
		if v {
			dst[id] = true
		}
	}
}
