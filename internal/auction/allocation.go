package auction

import (
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Tracker accounts for the remaining capacity of every offer across all
// clusters and mini-auctions of a block. Capacity follows the paper's
// Const. 7 semantics: the commodity is resource·time — an offer provides
// ρ_{o,k} · (t_o⁺ − t_o⁻) units of each kind k, a granted request
// consumes granted_k · d_r, and the sum of allocated fractions per kind
// never exceeds 1. Instantaneous grants are additionally capped at
// ρ_{o,k} (Const. 8).
type Tracker struct {
	remaining map[bidding.OrderID]resource.Vector
}

// NewTracker returns an empty tracker; capacity is materialized lazily
// per offer on first use.
func NewTracker() *Tracker {
	return &Tracker{remaining: make(map[bidding.OrderID]resource.Vector)}
}

// Clone deep-copies the tracker, letting callers trial-pack without
// committing.
func (t *Tracker) Clone() *Tracker {
	c := NewTracker()
	for id, v := range t.remaining {
		c.remaining[id] = v.Clone()
	}
	return c
}

func (t *Tracker) capacity(o *bidding.Offer) resource.Vector {
	if rem, ok := t.remaining[o.ID]; ok {
		return rem
	}
	rem := o.Resources.Scale(float64(o.Window()))
	t.remaining[o.ID] = rem
	return rem
}

// Remaining returns a copy of the offer's remaining resource·time vector.
func (t *Tracker) Remaining(o *bidding.Offer) resource.Vector {
	return t.capacity(o).Clone()
}

// TryGrant computes the resource vector offer o can grant request r right
// now: per requested kind, the minimum of the requested amount, the
// offer's instantaneous capacity, and what the remaining resource·time
// budget supports for d_r. It returns nil when the grant would fall below
// the request's flexibility threshold on any kind, or the windows are
// incompatible. TryGrant does not mutate the tracker.
func (t *Tracker) TryGrant(r *bidding.Request, o *bidding.Offer) resource.Vector {
	if !bidding.TimeCompatible(r, o) || !r.WithinReach(o) {
		return nil
	}
	rem := t.capacity(o)
	flex := r.Flex()
	granted := make(resource.Vector, len(r.Resources))
	dur := float64(r.Duration)
	for k, need := range r.Resources {
		if need <= 0 {
			continue
		}
		g := need
		if inst := o.Resources[k]; inst < g {
			g = inst
		}
		if byTime := rem[k] / dur; byTime < g {
			g = byTime
		}
		if g < need*flex-1e-9 {
			return nil
		}
		granted[k] = g
	}
	if granted.IsZero() {
		return nil
	}
	return granted
}

// Commit deducts a grant from the offer's remaining capacity.
func (t *Tracker) Commit(o *bidding.Offer, granted resource.Vector, duration int64) {
	rem := t.capacity(o)
	t.remaining[o.ID] = rem.Sub(granted.Scale(float64(duration)))
}

// Assignment is one request placed on one offer with a concrete grant.
type Assignment struct {
	Req     EconRequest
	Off     EconOffer
	Granted resource.Vector
	// Start is the scheduled start time (the request's window start
	// under the aggregate model; a concrete slot under exact scheduling).
	Start int64
}

// Pack greedily places the cluster's requests onto its offers.
//
//   - reqOrder lists indexes into ec.Requests in the order to try; nil
//     means natural order (v̂ descending).
//   - offOrder lists indexes into ec.Offers in the order to try; nil
//     means natural order (ĉ ascending). The mechanism's final phase
//     passes a bid-independent random permutation here — the paper's
//     "exclude redundant offers randomly" (Section IV-D): if which offers
//     get to serve depended on the reported cost, an idle provider could
//     underbid its way into the allocation and profit at the clearing
//     price.
//   - reqOK / offOK filter eligibility (nil means all eligible).
//   - pairOK filters request↔offer pairs (nil admits all); the mechanism
//     uses it for the provider-side reputation gate of Section III-B.
//   - taken marks requests already allocated elsewhere in the block; it
//     is updated as requests are placed.
//   - tr supplies shared capacity; successful grants are committed.
//
// A request is placed on the first eligible offer (in offOrder) that is
// profitable for it (v̂_r ≥ ĉ_o) and can grant it within the request's
// flexibility.
func (ec *EconCluster) Pack(
	tr Capacity,
	taken map[bidding.OrderID]bool,
	reqOK func(EconRequest) bool,
	offOK func(EconOffer) bool,
	pairOK func(EconRequest, EconOffer) bool,
	reqOrder []int,
	offOrder []int,
) []Assignment {
	if reqOrder == nil {
		reqOrder = make([]int, len(ec.Requests))
		for i := range reqOrder {
			reqOrder[i] = i
		}
	}
	if offOrder == nil {
		offOrder = make([]int, len(ec.Offers))
		for i := range offOrder {
			offOrder[i] = i
		}
	}
	var out []Assignment
	for _, ri := range reqOrder {
		er := ec.Requests[ri]
		if taken[er.Request.ID] {
			continue
		}
		if reqOK != nil && !reqOK(er) {
			continue
		}
		for _, oi := range offOrder {
			eo := ec.Offers[oi]
			if offOK != nil && !offOK(eo) {
				continue
			}
			if pairOK != nil && !pairOK(er, eo) {
				continue
			}
			if er.VHat < eo.CHat {
				// Unprofitable pairing; with a custom offer order later
				// offers may still be cheaper, so keep scanning.
				continue
			}
			granted, start, ok := tr.TryGrant(er.Request, eo.Offer)
			if !ok {
				continue
			}
			tr.Commit(er.Request, eo.Offer, granted, start)
			taken[er.Request.ID] = true
			out = append(out, Assignment{Req: er, Off: eo, Granted: granted, Start: start})
			break
		}
	}
	return out
}

// Fraction computes φ_{(r,o)} (Eq. 6) for a concrete grant: the time
// share d_r/(t_o⁺−t_o⁻) times the mean granted share over the kinds the
// offer actually provides.
func Fraction(granted resource.Vector, r *bidding.Request, o *bidding.Offer) float64 {
	if o.Window() <= 0 {
		return 0
	}
	// Sorted iteration: φ feeds payments, which verifying miners must
	// reproduce bit-for-bit.
	var sum float64
	var n int
	for _, k := range granted.Kinds() {
		if cap := o.Resources[k]; cap > 0 {
			sum += granted[k] / cap
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(r.Duration) / float64(o.Window()) * sum / float64(n)
}
