package auction

import (
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Tracker accounts for the remaining capacity of every offer across all
// clusters and mini-auctions of a block. Capacity follows the paper's
// Const. 7 semantics: the commodity is resource·time — an offer provides
// ρ_{o,k} · (t_o⁺ − t_o⁻) units of each kind k, a granted request
// consumes granted_k · d_r, and the sum of allocated fractions per kind
// never exceeds 1. Instantaneous grants are additionally capped at
// ρ_{o,k} (Const. 8).
type Tracker struct {
	remaining map[bidding.OrderID]resource.Vector
}

// NewTracker returns an empty tracker; capacity is materialized lazily
// per offer on first use.
func NewTracker() *Tracker {
	return &Tracker{remaining: make(map[bidding.OrderID]resource.Vector)}
}

// Clone deep-copies the tracker, letting callers trial-pack without
// committing.
func (t *Tracker) Clone() *Tracker {
	c := NewTracker()
	for id, v := range t.remaining {
		c.remaining[id] = v.Clone()
	}
	return c
}

func (t *Tracker) capacity(o *bidding.Offer) resource.Vector {
	if rem, ok := t.remaining[o.ID]; ok {
		return rem
	}
	rem := o.Resources.Scale(float64(o.Window()))
	t.remaining[o.ID] = rem
	return rem
}

// Remaining returns a copy of the offer's remaining resource·time vector.
func (t *Tracker) Remaining(o *bidding.Offer) resource.Vector {
	return t.capacity(o).Clone()
}

// TryGrant computes the resource vector offer o can grant request r right
// now: per requested kind, the minimum of the requested amount, the
// offer's instantaneous capacity, and what the remaining resource·time
// budget supports for d_r. It returns nil when the grant would fall below
// the request's flexibility threshold on any kind, or the windows are
// incompatible. TryGrant does not mutate the tracker.
func (t *Tracker) TryGrant(r *bidding.Request, o *bidding.Offer) resource.Vector {
	if !bidding.TimeCompatible(r, o) || !r.WithinReach(o) {
		return nil
	}
	return grantFrom(t.capacity(o), r, o)
}

// grantFrom is the resource math of TryGrant against an explicit
// remaining-capacity vector, shared with the copy-on-write overlay. Two
// passes: the first validates every kind against the flexibility
// threshold without allocating — packing loops probe far more pairs than
// they place, and a failed probe must cost nothing — and only a feasible
// grant builds the result map. Per-kind arithmetic is identical in both
// passes, so the second pass cannot disagree with the first.
func grantFrom(rem resource.Vector, r *bidding.Request, o *bidding.Offer) resource.Vector {
	flex := r.Flex()
	dur := float64(r.Duration)
	positive := false
	for k, need := range r.Resources {
		if need <= 0 {
			continue
		}
		g := need
		if inst := o.Resources[k]; inst < g {
			g = inst
		}
		if byTime := rem[k] / dur; byTime < g {
			g = byTime
		}
		if g < need*flex-1e-9 {
			return nil
		}
		if g > 0 {
			positive = true
		}
	}
	if !positive {
		return nil
	}
	granted := make(resource.Vector, len(r.Resources))
	for k, need := range r.Resources {
		if need <= 0 {
			continue
		}
		g := need
		if inst := o.Resources[k]; inst < g {
			g = inst
		}
		if byTime := rem[k] / dur; byTime < g {
			g = byTime
		}
		granted[k] = g
	}
	return granted
}

// Commit deducts a grant from the offer's remaining capacity, mutating
// the stored vector in place (same multiply/subtract/clamp per component
// as the former rem.Sub(granted.Scale(d)), without the two intermediate
// vectors).
func (t *Tracker) Commit(o *bidding.Offer, granted resource.Vector, duration int64) {
	t.capacity(o).SubScaledInPlace(granted, float64(duration))
}

// overlayTracker is a copy-on-write view of a parent Tracker for trial
// packing: reads fall through to the parent, commits clone only the
// touched offer's vector into the overlay. A trial touches a handful of
// offers; Clone copies every offer materialized block-wide.
type overlayTracker struct {
	parent *Tracker
	delta  map[bidding.OrderID]resource.Vector
}

func (ot *overlayTracker) capacity(o *bidding.Offer) resource.Vector {
	if rem, ok := ot.delta[o.ID]; ok {
		return rem
	}
	return ot.parent.capacity(o)
}

func (ot *overlayTracker) commit(o *bidding.Offer, granted resource.Vector, duration int64) {
	rem, ok := ot.delta[o.ID]
	if !ok {
		rem = ot.parent.capacity(o).Clone()
		ot.delta[o.ID] = rem
	}
	rem.SubScaledInPlace(granted, float64(duration))
}

// Assignment is one request placed on one offer with a concrete grant.
type Assignment struct {
	Req     EconRequest
	Off     EconOffer
	Granted resource.Vector
	// Start is the scheduled start time (the request's window start
	// under the aggregate model; a concrete slot under exact scheduling).
	Start int64
}

// Pack greedily places the cluster's requests onto its offers.
//
//   - reqOrder lists indexes into ec.Requests in the order to try; nil
//     means natural order (v̂ descending).
//   - offOrder lists indexes into ec.Offers in the order to try; nil
//     means natural order (ĉ ascending). The mechanism's final phase
//     passes a bid-independent random permutation here — the paper's
//     "exclude redundant offers randomly" (Section IV-D): if which offers
//     get to serve depended on the reported cost, an idle provider could
//     underbid its way into the allocation and profit at the clearing
//     price.
//   - reqOK / offOK filter eligibility (nil means all eligible).
//   - pairOK filters request↔offer pairs (nil admits all); the mechanism
//     uses it for the provider-side reputation gate of Section III-B.
//   - taken marks requests already allocated elsewhere in the block; it
//     is updated as requests are placed.
//   - tr supplies shared capacity; successful grants are committed.
//
// A request is placed on the first eligible offer (in offOrder) that is
// profitable for it (v̂_r ≥ ĉ_o) and can grant it within the request's
// flexibility.
func (ec *EconCluster) Pack(
	tr Capacity,
	taken map[bidding.OrderID]bool,
	reqOK func(EconRequest) bool,
	offOK func(EconOffer) bool,
	pairOK func(EconRequest, EconOffer) bool,
	reqOrder []int,
	offOrder []int,
) []Assignment {
	return ec.pack(tr, takenMap(taken), reqOK, offOK, pairOK, reqOrder, offOrder)
}

// takenSet abstracts the taken bookkeeping so a trial pack can layer an
// overlay over the block's set without copying it.
type takenSet interface {
	has(bidding.OrderID) bool
	mark(bidding.OrderID)
}

type takenMap map[bidding.OrderID]bool

func (m takenMap) has(id bidding.OrderID) bool { return m[id] }
func (m takenMap) mark(id bidding.OrderID)     { m[id] = true }

// takenOverlay reads through to a base set and keeps writes local.
type takenOverlay struct {
	base  map[bidding.OrderID]bool
	local map[bidding.OrderID]bool
}

func newTakenOverlay(base map[bidding.OrderID]bool) *takenOverlay {
	return &takenOverlay{base: base, local: make(map[bidding.OrderID]bool)}
}

func (t *takenOverlay) has(id bidding.OrderID) bool { return t.local[id] || t.base[id] }
func (t *takenOverlay) mark(id bidding.OrderID)     { t.local[id] = true }

// pack is Pack over a takenSet. A nil reqOrder/offOrder means natural
// order, iterated directly rather than via a materialized identity
// permutation.
func (ec *EconCluster) pack(
	tr Capacity,
	taken takenSet,
	reqOK func(EconRequest) bool,
	offOK func(EconOffer) bool,
	pairOK func(EconRequest, EconOffer) bool,
	reqOrder []int,
	offOrder []int,
) []Assignment {
	nr := len(ec.Requests)
	if reqOrder != nil {
		nr = len(reqOrder)
	}
	no := len(ec.Offers)
	if offOrder != nil {
		no = len(offOrder)
	}
	var out []Assignment
	for i := 0; i < nr; i++ {
		ri := i
		if reqOrder != nil {
			ri = reqOrder[i]
		}
		er := ec.Requests[ri]
		if taken.has(er.Request.ID) {
			continue
		}
		if reqOK != nil && !reqOK(er) {
			continue
		}
		for j := 0; j < no; j++ {
			oi := j
			if offOrder != nil {
				oi = offOrder[j]
			}
			eo := ec.Offers[oi]
			if offOK != nil && !offOK(eo) {
				continue
			}
			if pairOK != nil && !pairOK(er, eo) {
				continue
			}
			if er.VHat < eo.CHat {
				// Unprofitable pairing; with a custom offer order later
				// offers may still be cheaper, so keep scanning.
				continue
			}
			granted, start, ok := tr.TryGrant(er.Request, eo.Offer)
			if !ok {
				continue
			}
			tr.Commit(er.Request, eo.Offer, granted, start)
			taken.mark(er.Request.ID)
			out = append(out, Assignment{Req: er, Off: eo, Granted: granted, Start: start})
			break
		}
	}
	return out
}

// Fraction computes φ_{(r,o)} (Eq. 6) for a concrete grant: the time
// share d_r/(t_o⁺−t_o⁻) times the mean granted share over the kinds the
// offer actually provides.
func Fraction(granted resource.Vector, r *bidding.Request, o *bidding.Offer) float64 {
	if o.Window() <= 0 {
		return 0
	}
	// Sorted iteration: φ feeds payments, which verifying miners must
	// reproduce bit-for-bit.
	var buf [16]resource.Kind
	var sum float64
	var n int
	for _, k := range granted.AppendKinds(buf[:0]) {
		if cap := o.Resources[k]; cap > 0 {
			sum += granted[k] / cap
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(r.Duration) / float64(o.Window()) * sum / float64(n)
}
