package auction

import (
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Match records one executed trade: request r hosted on offer o with a
// concrete resource grant, the mini-auction's unit clearing price p, the
// request's resource share ν, and the resulting payment p_r = ν·p·d_r
// (Eq. 19 scaled by duration).
type Match struct {
	Request   *bidding.Request
	Offer     *bidding.Offer
	Granted   resource.Vector
	Fraction  float64 // φ_{(r,o)} per Eq. 6
	Nu        float64 // ν computed on the granted resources
	UnitPrice float64 // the mini-auction clearing price p
	Payment   float64 // what the client pays = what the provider receives
	// Start is when the container is scheduled to begin: the request's
	// window start under the aggregate capacity model, or a concrete
	// conflict-free slot under Config.ExactScheduling.
	Start int64
}

// Outcome is the result of running the mechanism on one block.
type Outcome struct {
	// Matches lists executed trades in deterministic order.
	Matches []Match
	// Payments maps request ID → client payment.
	Payments map[bidding.OrderID]float64
	// Revenues maps offer ID → provider revenue (Σ of its matches'
	// payments, so strong budget balance holds by construction).
	Revenues map[bidding.OrderID]float64
	// ReducedRequests are requests excluded by trade reduction: orders of
	// a price-setting client that were competitive (v̂ ≥ p) but barred to
	// preserve DSIC, and that found no other trade in the block.
	ReducedRequests []bidding.OrderID
	// ReducedOffers are offers excluded analogously on the provider side.
	ReducedOffers []bidding.OrderID
	// LotteryDropped are competitive requests that lost the randomized
	// exclusion applied when demand exceeds supply at the clearing price.
	LotteryDropped []bidding.OrderID
	// RejectedRequests and RejectedOffers failed validation at intake.
	RejectedRequests []bidding.OrderID
	RejectedOffers   []bidding.OrderID
	// Clusters and MiniAuctions count the structures the mechanism built.
	Clusters     int
	MiniAuctions int
	// ShardStats describes how the block's clearing distributed across
	// shards when Config.Shards routed execution through the
	// partitioner; nil on the unsharded paths. Excluded from the
	// canonical marshaling (and hence from verification byte
	// comparison) because it depends on K while the outcome must not.
	ShardStats *ShardStats `json:"-"`
}

// Welfare returns the realized social welfare Σ (v_r − φ_{(r,o)} c_o)
// computed against the participants' TRUE valuations and costs (Eq. 3).
func (out *Outcome) Welfare() float64 {
	var w float64
	for _, m := range out.Matches {
		w += m.Request.TrueValue - m.Fraction*m.Offer.TrueCost
	}
	return w
}

// BidWelfare returns the welfare computed from reported bids; equal to
// Welfare under truthful bidding.
func (out *Outcome) BidWelfare() float64 {
	var w float64
	for _, m := range out.Matches {
		w += m.Request.Bid - m.Fraction*m.Offer.Bid
	}
	return w
}

// TotalPayments sums all client payments.
func (out *Outcome) TotalPayments() float64 {
	var t float64
	for _, m := range out.Matches {
		t += m.Payment
	}
	return t
}

// TotalRevenues sums all provider revenues; equals TotalPayments exactly
// (strong budget balance).
func (out *Outcome) TotalRevenues() float64 {
	var t float64
	for _, m := range out.Matches {
		t += m.Payment
	}
	return t
}

// MatchedRequests reports how many requests traded.
func (out *Outcome) MatchedRequests() int { return len(out.Matches) }

// Satisfaction is the fraction of submitted requests that were allocated
// (Figures 5d–5e's metric), given the total number submitted.
func (out *Outcome) Satisfaction(totalRequests int) float64 {
	if totalRequests == 0 {
		return 0
	}
	return float64(len(out.Matches)) / float64(totalRequests)
}

// ReducedTradeRate is the fraction of potential trades lost to trade
// reduction (Figure 5c): reduced / (matched + reduced).
func (out *Outcome) ReducedTradeRate() float64 {
	reduced := len(out.ReducedRequests)
	total := len(out.Matches) + reduced
	if total == 0 {
		return 0
	}
	return float64(reduced) / float64(total)
}

// PaymentFor returns the payment of request id (0 when unmatched).
func (out *Outcome) PaymentFor(id bidding.OrderID) float64 { return out.Payments[id] }

// RevenueFor returns the revenue of offer id (0 when unmatched).
func (out *Outcome) RevenueFor(id bidding.OrderID) float64 { return out.Revenues[id] }

// MatchFor returns the match of request id, or nil.
func (out *Outcome) MatchFor(id bidding.OrderID) *Match {
	for i := range out.Matches {
		if out.Matches[i].Request.ID == id {
			return &out.Matches[i]
		}
	}
	return nil
}
