// Package auction implements DeCloud's double auction mechanism A
// (Section IV): the per-cluster economic normalization, the greedy
// in-cluster allocation, the mini-auction grouping, the SBBA-style
// pricing with trade reduction, and block-seeded randomized exclusion.
// The mechanism is DSIC, strongly budget balanced, and individually
// rational; the package also provides the paper's non-truthful greedy
// benchmark (same pipeline without reduction or randomization).
package auction

import (
	"math"
	"math/bits"
	"slices"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/match"
	"decloud/internal/resource"
)

// EconRequest is a request with its cluster-normalized economics:
// ν_r (fraction of the cluster's virtual maximum it consumes) and
// v̂_r = b_r / (ν_r · d_r) (reported valuation per unit resource·time).
type EconRequest struct {
	Request *bidding.Request
	Nu      float64
	VHat    float64
}

// EconOffer is an offer with its cluster-normalized economics:
// ν_o = ‖ρ_o‖₂/‖M_CL‖₂ and ĉ_o = b_o / (ν_o · (t_o⁺ − t_o⁻)).
type EconOffer struct {
	Offer *bidding.Offer
	Nu    float64
	CHat  float64
}

// EconCluster carries a cluster's normalized requests and offers, sorted
// for the McAfee-style ranking: requests by v̂ descending, offers by ĉ
// ascending (ties by submission time, then ID — Section IV-D's tie rule,
// which removes any incentive to delay submission).
type EconCluster struct {
	Cluster  *cluster.Cluster
	Scale    *resource.Scale // the virtual maximum M_CL
	Critical map[resource.Kind]bool
	Requests []EconRequest
	Offers   []EconOffer
}

// ComputeEconomics derives the cluster's common resource types K_CL, the
// virtual maximum M_CL, the critical set K_CR, and the normalized
// valuations and costs of Section IV-C. Orders whose normalization
// degenerates (ν = 0: no common resource with the cluster) are dropped.
func ComputeEconomics(cl *cluster.Cluster, critical map[resource.Kind]bool) *EconCluster {
	// K_CL = (∪_r K_r) ∩ (∪_o K_o).
	reqKinds := make(map[resource.Kind]bool)
	for _, r := range cl.Requests {
		for _, k := range r.Resources.Kinds() {
			reqKinds[k] = true
		}
	}
	offKinds := make(map[resource.Kind]bool)
	for _, o := range cl.Offers {
		for _, k := range o.Resources.Kinds() {
			offKinds[k] = true
		}
	}
	common := make(map[resource.Kind]bool)
	for k := range reqKinds {
		if offKinds[k] {
			common[k] = true
		}
	}

	// M_CL: componentwise maximum over the cluster's offers, restricted
	// to K_CL.
	maxVec := make(resource.Vector)
	for _, o := range cl.Offers {
		for k, q := range o.Resources {
			if common[k] && q > maxVec[k] {
				maxVec[k] = q
			}
		}
	}
	scale := resource.NewScale(maxVec)

	// K_CR: the default critical kinds plus every kind demanded by ALL
	// requests of the cluster.
	crit := make(map[resource.Kind]bool)
	if critical == nil {
		critical = resource.DefaultCritical()
	}
	for k := range critical {
		crit[k] = true
	}
	inAll := make(map[resource.Kind]int)
	for _, r := range cl.Requests {
		for _, k := range r.Resources.Kinds() {
			inAll[k]++
		}
	}
	for k, n := range inAll {
		if n == len(cl.Requests) {
			crit[k] = true
		}
	}

	ec := &EconCluster{Cluster: cl, Scale: scale, Critical: crit}
	for _, o := range cl.Offers {
		nu := scale.Fraction(o.Resources)
		if nu <= 0 || o.Window() <= 0 {
			continue
		}
		ec.Offers = append(ec.Offers, EconOffer{
			Offer: o,
			Nu:    nu,
			CHat:  o.Bid / (nu * float64(o.Window())),
		})
	}
	for _, r := range cl.Requests {
		nu := math.Max(scale.CriticalFraction(r.Resources, crit), scale.Fraction(r.Resources))
		if nu <= 0 || r.Duration <= 0 {
			continue
		}
		ec.Requests = append(ec.Requests, EconRequest{
			Request: r,
			Nu:      nu,
			VHat:    r.Bid / (nu * float64(r.Duration)),
		})
	}
	sortEcon(ec)
	return ec
}

// sortEcon applies Section IV-D's McAfee-style ranking with the
// submission-time tie rule: requests by v̂ descending, offers by ĉ
// ascending.
func sortEcon(ec *EconCluster) {
	// Both comparators are total orders (IDs are unique), so the stable /
	// unstable distinction cannot change the result.
	slices.SortFunc(ec.Requests, func(a, b EconRequest) int {
		switch {
		case a.VHat > b.VHat:
			return -1
		case a.VHat < b.VHat:
			return 1
		}
		switch {
		case a.Request.Submitted < b.Request.Submitted:
			return -1
		case a.Request.Submitted > b.Request.Submitted:
			return 1
		}
		switch {
		case a.Request.ID < b.Request.ID:
			return -1
		case a.Request.ID > b.Request.ID:
			return 1
		}
		return 0
	})
	slices.SortFunc(ec.Offers, func(a, b EconOffer) int {
		switch {
		case a.CHat < b.CHat:
			return -1
		case a.CHat > b.CHat:
			return 1
		}
		switch {
		case a.Offer.Submitted < b.Offer.Submitted:
			return -1
		case a.Offer.Submitted > b.Offer.Submitted:
			return 1
		}
		switch {
		case a.Offer.ID < b.Offer.ID:
			return -1
		case a.Offer.ID > b.Offer.ID:
			return 1
		}
		return 0
	})
}

// ComputeEconomicsIndexed is ComputeEconomics over the block's matching
// index: K_CL, M_CL, and K_CR come from kind-bitmask unions and
// intersections, and the ν sums run over dense rows in ascending kind
// index — the same sorted-kind order resource.Vector.Kinds() yields — so
// every float is bit-identical to the map-walking reference (the block
// outcome is consensus-critical). Masks are MaskWords() words wide —
// wide blocks (> 64 distinct kinds) take the same path, iterating words
// ascending and bits ascending, which is still globally ascending kind
// order. Falls back to ComputeEconomics only when the index is nil or
// does not know the cluster's orders.
func ComputeEconomicsIndexed(cl *cluster.Cluster, critical map[resource.Kind]bool, ix *match.Index) *EconCluster {
	if ix == nil {
		return ComputeEconomics(cl, critical)
	}
	kinds := ix.Kinds()
	nw := ix.MaskWords()
	reqMasks := make([][]uint64, len(cl.Requests))
	reqRows := make([][]float64, len(cl.Requests))
	reqUnion := make([]uint64, nw)
	for i, r := range cl.Requests {
		m, ok := ix.RequestMaskRow(r)
		row, ok2 := ix.RequestRow(r)
		if !ok || !ok2 {
			return ComputeEconomics(cl, critical)
		}
		reqMasks[i], reqRows[i] = m, row
		for w, mw := range m {
			reqUnion[w] |= mw
		}
	}
	offMasks := make([][]uint64, len(cl.Offers))
	offRows := make([][]float64, len(cl.Offers))
	offUnion := make([]uint64, nw)
	for i, o := range cl.Offers {
		m, ok := ix.OfferMaskRow(o)
		row, ok2 := ix.OfferRow(o)
		if !ok || !ok2 {
			return ComputeEconomics(cl, critical)
		}
		offMasks[i], offRows[i] = m, row
		for w, mw := range m {
			offUnion[w] |= mw
		}
	}

	// K_CL = (∪_r K_r) ∩ (∪_o K_o); M_CL = componentwise offer maximum
	// restricted to it. Every common bit has a positive offer quantity,
	// so M_CL is positive exactly on K_CL.
	common := make([]uint64, nw)
	ncommon := 0
	for w := range common {
		common[w] = reqUnion[w] & offUnion[w]
		ncommon += bits.OnesCount64(common[w])
	}
	maxRow := make([]float64, len(kinds))
	for i := range offRows {
		for w := 0; w < nw; w++ {
			base := w * 64
			for m := offMasks[i][w] & common[w]; m != 0; m &= m - 1 {
				k := base + bits.TrailingZeros64(m)
				if q := offRows[i][k]; q > maxRow[k] {
					maxRow[k] = q
				}
			}
		}
	}
	maxVec := make(resource.Vector, ncommon)
	var dsum float64
	for w := 0; w < nw; w++ {
		base := w * 64
		for m := common[w]; m != 0; m &= m - 1 {
			k := base + bits.TrailingZeros64(m)
			maxVec[kinds[k]] = maxRow[k]
			dsum += maxRow[k] * maxRow[k]
		}
	}
	denom := math.Sqrt(dsum) // ‖M_CL‖₂, summed in sorted kind order

	// K_CR: the base critical kinds plus every kind demanded by ALL
	// requests (the AND of the request masks).
	crit := make(map[resource.Kind]bool)
	if critical == nil {
		critical = resource.DefaultCritical()
	}
	for k := range critical {
		crit[k] = true
	}
	if len(reqMasks) > 0 {
		inAll := append([]uint64(nil), reqMasks[0]...)
		for _, m := range reqMasks[1:] {
			for w, mw := range m {
				inAll[w] &= mw
			}
		}
		for w := 0; w < nw; w++ {
			base := w * 64
			for m := inAll[w]; m != 0; m &= m - 1 {
				crit[kinds[base+bits.TrailingZeros64(m)]] = true
			}
		}
	}
	critMask := make([]uint64, nw)
	for i, k := range kinds {
		if crit[k] {
			critMask[i/64] |= 1 << uint(i%64)
		}
	}

	ec := &EconCluster{Cluster: cl, Scale: resource.NewScale(maxVec), Critical: crit}
	// fraction is Scale.Fraction over a dense row: Σ q² over the vector's
	// kinds known to M_CL, ascending bit = sorted kind order.
	fraction := func(vmask []uint64, row []float64) float64 {
		if denom <= 0 {
			return 0
		}
		var sum float64
		for w := 0; w < nw; w++ {
			base := w * 64
			for m := vmask[w] & common[w]; m != 0; m &= m - 1 {
				q := row[base+bits.TrailingZeros64(m)]
				sum += q * q
			}
		}
		f := math.Sqrt(sum) / denom
		if f > 1 {
			f = 1
		}
		return f
	}
	for i, o := range cl.Offers {
		nu := fraction(offMasks[i], offRows[i])
		if nu <= 0 || o.Window() <= 0 {
			continue
		}
		ec.Offers = append(ec.Offers, EconOffer{
			Offer: o,
			Nu:    nu,
			CHat:  o.Bid / (nu * float64(o.Window())),
		})
	}
	for i, r := range cl.Requests {
		// CriticalFraction: max share of any critical kind M_CL knows —
		// a max, so iteration order is immaterial.
		var cf float64
		for w := 0; w < nw; w++ {
			base := w * 64
			for m := critMask[w] & common[w]; m != 0; m &= m - 1 {
				k := base + bits.TrailingZeros64(m)
				if f := reqRows[i][k] / maxRow[k]; f > cf {
					cf = f
				}
			}
		}
		if cf > 1 {
			cf = 1
		}
		nu := math.Max(cf, fraction(reqMasks[i], reqRows[i]))
		if nu <= 0 || r.Duration <= 0 {
			continue
		}
		ec.Requests = append(ec.Requests, EconRequest{
			Request: r,
			Nu:      nu,
			VHat:    r.Bid / (nu * float64(r.Duration)),
		})
	}
	sortEcon(ec)
	return ec
}

// NuOf recomputes ν for an arbitrary granted resource vector against this
// cluster's scale and critical set — used to price partially granted
// (flexible) matches by what the client actually receives.
func (ec *EconCluster) NuOf(granted resource.Vector) float64 {
	return math.Max(ec.Scale.CriticalFraction(granted, ec.Critical), ec.Scale.Fraction(granted))
}
