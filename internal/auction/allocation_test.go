package auction

import (
	"math"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

func trackerOffer() *bidding.Offer {
	return &bidding.Offer{
		ID: "o", Provider: "p",
		Resources: resource.Vector{resource.CPU: 4, resource.RAM: 16},
		Start:     0, End: 100, Bid: 1,
	}
}

func trackerRequest(cpu float64, dur int64) *bidding.Request {
	return &bidding.Request{
		ID: "r", Client: "c",
		Resources: resource.Vector{resource.CPU: cpu, resource.RAM: cpu * 4},
		Start:     0, End: 100, Duration: dur, Bid: 1,
	}
}

func TestTryGrantFullRequest(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer()
	r := trackerRequest(2, 50)
	g := tr.TryGrant(r, o)
	if g == nil || g[resource.CPU] != 2 || g[resource.RAM] != 8 {
		t.Fatalf("grant = %v", g)
	}
}

func TestTryGrantInstantaneousCap(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer()
	r := trackerRequest(8, 10) // more cores than the machine has
	if g := tr.TryGrant(r, o); g != nil {
		t.Fatalf("grant beyond instantaneous capacity: %v", g)
	}
}

func TestTryGrantResourceTimeBudget(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer() // 4 cores × 100 s = 400 core·s
	// First request consumes 2 cores × 100 s = 200 core·s.
	r1 := trackerRequest(2, 100)
	g1 := tr.TryGrant(r1, o)
	if g1 == nil {
		t.Fatal("first grant failed")
	}
	tr.Commit(o, g1, r1.Duration)
	// Second identical request fits exactly into the remaining 200.
	r2 := trackerRequest(2, 100)
	r2.ID = "r2"
	g2 := tr.TryGrant(r2, o)
	if g2 == nil {
		t.Fatal("second grant should fit exactly")
	}
	tr.Commit(o, g2, r2.Duration)
	// Third cannot.
	r3 := trackerRequest(2, 100)
	r3.ID = "r3"
	if g := tr.TryGrant(r3, o); g != nil {
		t.Fatalf("overcommit: %v (remaining %v)", g, tr.Remaining(o))
	}
}

func TestTryGrantFlexPartial(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer()
	r := trackerRequest(2, 100)
	g := tr.TryGrant(r, o)
	tr.Commit(o, g, r.Duration) // 2 cores × 100 s gone, 200 core·s left

	big := trackerRequest(4, 100) // wants 400 core·s, only 200 remain
	big.ID = "big"
	if g := tr.TryGrant(big, o); g != nil {
		t.Fatalf("inflexible partial grant: %v", g)
	}
	big.Flexibility = 0.5 // accepts ≥ 2 cores
	g = tr.TryGrant(big, o)
	if g == nil {
		t.Fatal("flexible request should take the remaining capacity")
	}
	if math.Abs(g[resource.CPU]-2) > 1e-9 {
		t.Fatalf("granted cpu = %v, want 2 (remaining/duration)", g[resource.CPU])
	}
}

func TestTryGrantDoesNotMutate(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer()
	r := trackerRequest(2, 50)
	before := tr.Remaining(o)
	_ = tr.TryGrant(r, o)
	after := tr.Remaining(o)
	if !before.Equal(after) {
		t.Fatalf("TryGrant mutated capacity: %v → %v", before, after)
	}
}

func TestTrackerClone(t *testing.T) {
	tr := NewTracker()
	o := trackerOffer()
	r := trackerRequest(2, 100)
	g := tr.TryGrant(r, o)
	clone := tr.Clone()
	clone.Commit(o, g, r.Duration)
	if !tr.Remaining(o).Equal(o.Resources.Scale(100)) {
		t.Fatal("commit on clone leaked into original")
	}
}

func TestFractionEquation6(t *testing.T) {
	o := trackerOffer() // 4 cpu / 16 ram, window 100
	r := trackerRequest(2, 50)
	g := resource.Vector{resource.CPU: 2, resource.RAM: 8}
	// φ = (50/100) · ((2/4 + 8/16)/2) = 0.5 · 0.5 = 0.25
	if got := Fraction(g, r, o); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Fraction = %v, want 0.25", got)
	}
	// Kinds the offer lacks contribute nothing.
	g2 := resource.Vector{resource.CPU: 2, resource.GPU: 1}
	want := 0.5 * (2.0 / 4) // only the cpu term
	if got := Fraction(g2, r, o); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Fraction = %v, want %v", got, want)
	}
	if Fraction(nil, r, o) != 0 {
		t.Fatal("empty grant should have zero fraction")
	}
}
