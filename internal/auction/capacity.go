package auction

import (
	"slices"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Capacity abstracts how offer capacity is accounted during packing.
// Two models are provided:
//
//   - Tracker (aggregate): the paper's Const. 7 semantics — the commodity
//     is resource·time, with instantaneous caps per grant but no check
//     that concurrent placements fit together at every moment.
//   - IntervalTracker (exact): every grant is scheduled at a concrete
//     start time, and the sum of concurrent grants never exceeds the
//     machine at ANY instant. Stricter than the paper's model; an
//     extension for callers that need physically executable schedules.
type Capacity interface {
	// TryGrant computes the grant offer o can give request r and the
	// start time it would be scheduled at. ok is false when infeasible.
	// TryGrant must not mutate state.
	TryGrant(r *bidding.Request, o *bidding.Offer) (granted resource.Vector, start int64, ok bool)
	// Commit records a grant produced by TryGrant.
	Commit(r *bidding.Request, o *bidding.Offer, granted resource.Vector, start int64)
	// Clone deep-copies the accounting state for trial packing.
	Clone() Capacity
}

// Aggregate Tracker adaptation to the Capacity interface.

// TryGrantAt implements Capacity for the aggregate tracker: grants start
// at the beginning of the request's window.
func (t *Tracker) TryGrantAt(r *bidding.Request, o *bidding.Offer) (resource.Vector, int64, bool) {
	g := t.TryGrant(r, o)
	if g == nil {
		return nil, 0, false
	}
	return g, r.Start, true
}

// trackerCapacity wraps *Tracker as a Capacity.
type trackerCapacity struct{ t *Tracker }

// NewAggregateCapacity returns the paper-faithful resource·time model.
func NewAggregateCapacity() Capacity { return trackerCapacity{t: NewTracker()} }

func (tc trackerCapacity) TryGrant(r *bidding.Request, o *bidding.Offer) (resource.Vector, int64, bool) {
	return tc.t.TryGrantAt(r, o)
}

func (tc trackerCapacity) Commit(r *bidding.Request, o *bidding.Offer, granted resource.Vector, _ int64) {
	tc.t.Commit(o, granted, r.Duration)
}

func (tc trackerCapacity) Clone() Capacity { return trackerCapacity{t: tc.t.Clone()} }

// Overlay returns a copy-on-write trial view of the aggregate tracker:
// reads see the parent's state, commits stay in the overlay.
func (tc trackerCapacity) Overlay() Capacity {
	return overlayCapacity{ot: &overlayTracker{
		parent: tc.t,
		delta:  make(map[bidding.OrderID]resource.Vector),
	}}
}

// trialCapacity returns a capacity suitable for trial packing: a cheap
// copy-on-write overlay when the model supports one, else a full Clone
// (the exact-scheduling tracker keeps the Clone path). Either way the
// trial observes exactly the parent's values and leaves it untouched.
func trialCapacity(c Capacity) Capacity {
	if o, ok := c.(interface{ Overlay() Capacity }); ok {
		return o.Overlay()
	}
	return c.Clone()
}

// overlayCapacity adapts overlayTracker to the Capacity interface.
type overlayCapacity struct{ ot *overlayTracker }

func (oc overlayCapacity) TryGrant(r *bidding.Request, o *bidding.Offer) (resource.Vector, int64, bool) {
	if !bidding.TimeCompatible(r, o) || !r.WithinReach(o) {
		return nil, 0, false
	}
	g := grantFrom(oc.ot.capacity(o), r, o)
	if g == nil {
		return nil, 0, false
	}
	return g, r.Start, true
}

func (oc overlayCapacity) Commit(r *bidding.Request, o *bidding.Offer, granted resource.Vector, _ int64) {
	oc.ot.commit(o, granted, r.Duration)
}

func (oc overlayCapacity) Clone() Capacity {
	c := oc.ot.parent.Clone()
	for id, v := range oc.ot.delta {
		c.remaining[id] = v.Clone()
	}
	return trackerCapacity{t: c}
}

// placement is one scheduled grant on a machine.
type placement struct {
	start, end int64
	res        resource.Vector
}

// IntervalTracker schedules grants at concrete times with exact
// instantaneous capacity accounting per offer.
type IntervalTracker struct {
	placed map[bidding.OrderID][]placement
}

// NewIntervalCapacity returns the exact-scheduling model.
func NewIntervalCapacity() Capacity {
	return &IntervalTracker{placed: make(map[bidding.OrderID][]placement)}
}

// Clone deep-copies the schedule.
func (it *IntervalTracker) Clone() Capacity {
	c := &IntervalTracker{placed: make(map[bidding.OrderID][]placement, len(it.placed))}
	for id, ps := range it.placed {
		c.placed[id] = append([]placement(nil), ps...)
	}
	return c
}

// TryGrant finds the earliest start time in the feasible window at which
// the request fits alongside every already-scheduled grant, instant by
// instant. Candidate start times are the window opening plus the end
// times of existing placements (a classic earliest-fit argument: if any
// feasible start exists, one of these is feasible).
func (it *IntervalTracker) TryGrant(r *bidding.Request, o *bidding.Offer) (resource.Vector, int64, bool) {
	if !bidding.TimeCompatible(r, o) || !r.WithinReach(o) {
		return nil, 0, false
	}
	lo := r.Start
	if o.Start > lo {
		lo = o.Start
	}
	hi := r.End
	if o.End < hi {
		hi = o.End
	}
	latest := hi - r.Duration
	if latest < lo {
		return nil, 0, false
	}

	existing := it.placed[o.ID]
	candidates := []int64{lo}
	for _, p := range existing {
		if p.end >= lo && p.end <= latest {
			candidates = append(candidates, p.end)
		}
	}
	slices.Sort(candidates)

	flex := r.Flex()
	for _, s := range candidates {
		peak := it.peakUsage(existing, s, s+r.Duration)
		granted := make(resource.Vector, len(r.Resources))
		fits := true
		for k, need := range r.Resources {
			if need <= 0 {
				continue
			}
			free := o.Resources[k] - peak[k]
			g := need
			if free < g {
				g = free
			}
			if g < need*flex-1e-9 {
				fits = false
				break
			}
			granted[k] = g
		}
		if fits && !granted.IsZero() {
			return granted, s, true
		}
	}
	return nil, 0, false
}

// peakUsage computes the componentwise maximum concurrent usage of the
// placements over [from, to) by sweeping placement boundaries.
func (it *IntervalTracker) peakUsage(ps []placement, from, to int64) resource.Vector {
	peak := make(resource.Vector)
	// Evaluate usage just after every boundary inside the window, plus
	// the window start itself.
	points := []int64{from}
	for _, p := range ps {
		if p.start > from && p.start < to {
			points = append(points, p.start)
		}
	}
	for _, t := range points {
		usage := make(resource.Vector)
		for _, p := range ps {
			if p.start <= t && t < p.end {
				usage = usage.Add(p.res)
			}
		}
		for _, k := range usage.Kinds() {
			if usage[k] > peak[k] {
				peak[k] = usage[k]
			}
		}
	}
	return peak
}

// Commit schedules the grant.
func (it *IntervalTracker) Commit(r *bidding.Request, o *bidding.Offer, granted resource.Vector, start int64) {
	it.placed[o.ID] = append(it.placed[o.ID], placement{
		start: start,
		end:   start + r.Duration,
		res:   granted.Clone(),
	})
}

// ScheduleOf returns the committed placements on an offer as
// (start, end) pairs, sorted by start — for inspection and tests.
func (it *IntervalTracker) ScheduleOf(offerID bidding.OrderID) [][2]int64 {
	ps := append([]placement(nil), it.placed[offerID]...)
	slices.SortFunc(ps, func(a, b placement) int {
		switch {
		case a.start < b.start:
			return -1
		case a.start > b.start:
			return 1
		}
		return 0
	})
	out := make([][2]int64, len(ps))
	for i, p := range ps {
		out[i] = [2]int64{p.start, p.end}
	}
	return out
}
