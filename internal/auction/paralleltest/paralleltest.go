// Package paralleltest is the determinism-equivalence harness for the
// mechanism's parallel execution mode. DeCloud's verification protocol
// (Section V) has every miner re-execute a block's allocation and
// compare it byte for byte against the proposed body — so the mechanism
// must produce identical Outcomes on every machine, whatever
// Config.Workers is in effect. This package runs the same block
// sequentially and at a sweep of worker counts and asserts the
// canonically marshaled Outcomes are byte-identical; any scheduling
// leak into the allocation (iteration-order dependence, float
// accumulation reordering, lottery-label drift) fails loudly here
// before it can fork a chain.
package paralleltest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
)

// WorkerCounts returns the canonical sweep {2, 4, GOMAXPROCS},
// deduplicated and sorted. The sequential baseline (workers = 0) is
// always run by Check and need not be listed.
func WorkerCounts() []int {
	counts := map[int]bool{2: true, 4: true, runtime.GOMAXPROCS(0): true}
	out := make([]int, 0, len(counts))
	for w := range counts {
		if w > 1 {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// MarshalOutcome renders an Outcome to canonical bytes for comparison:
// encoding/json sorts map keys (Payments, Revenues, resource vectors)
// and Matches/Reduced/Lottery slices carry the mechanism's
// deterministic order, so equal outcomes marshal to equal bytes and
// vice versa.
func MarshalOutcome(out *auction.Outcome) ([]byte, error) {
	return json.Marshal(out)
}

// Check runs the block once sequentially (workers = 0) and once per
// entry of workers, returning an error describing the first divergence
// from the sequential baseline. A nil workers slice means
// WorkerCounts().
func Check(requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	seq := cfg
	seq.Workers = 0
	want, err := MarshalOutcome(auction.Run(requests, offers, seq))
	if err != nil {
		return fmt.Errorf("paralleltest: marshal sequential outcome: %w", err)
	}
	for _, w := range workers {
		cur := cfg
		cur.Workers = w
		got, err := MarshalOutcome(auction.Run(requests, offers, cur))
		if err != nil {
			return fmt.Errorf("paralleltest: marshal workers=%d outcome: %w", w, err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("paralleltest: workers=%d diverges from sequential: %s", w, diffSummary(want, got))
		}
	}
	return nil
}

// Assert is Check wired to a testing.TB.
func Assert(t testing.TB, requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, workers []int) {
	t.Helper()
	if err := Check(requests, offers, cfg, workers); err != nil {
		t.Fatal(err)
	}
}

// CheckIndexedVsNaive proves the indexed matching engine innocuous: the
// block is executed once through the brute-force reference pipeline
// (Config.Match.Reference — per-pair Feasible/Quality scans, map-walking
// economics, no index) and then through the production indexed engine,
// sequentially and at every given worker count. Any divergence — a
// pruned pair the reference accepts, a float that drifted through dense
// re-association, a tie broken differently by top-k selection — shows up
// as a byte difference in the marshaled Outcome. A nil workers slice
// means WorkerCounts().
func CheckIndexedVsNaive(requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, workers []int) error {
	if workers == nil {
		workers = WorkerCounts()
	}
	ref := cfg
	ref.Match.Reference = true
	ref.Workers = 0
	want, err := MarshalOutcome(auction.Run(requests, offers, ref))
	if err != nil {
		return fmt.Errorf("paralleltest: marshal reference outcome: %w", err)
	}
	for _, w := range append([]int{0}, workers...) {
		cur := cfg
		cur.Match.Reference = false
		cur.Workers = w
		got, err := MarshalOutcome(auction.Run(requests, offers, cur))
		if err != nil {
			return fmt.Errorf("paralleltest: marshal indexed workers=%d outcome: %w", w, err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("paralleltest: indexed engine (workers=%d) diverges from naive reference: %s", w, diffSummary(want, got))
		}
	}
	return nil
}

// ShardCounts returns the canonical shard sweep {1, 2, 4, 8}: K=1 runs
// the sharded machinery with a single shard (everything homed, empty
// residual), the rest genuinely partition.
func ShardCounts() []int { return []int{1, 2, 4, 8} }

// CheckShardedVsMonolithic proves the sharded executor innocuous: the
// block is executed once through the pre-shard monolithic path
// (Shards = 0, sequential) and then with every (shards, workers)
// combination of the given sweeps. The partitioner moves whole
// order-disjoint components between shards and the residual round, so
// any divergence — an auction executed against the wrong state, a
// merge order drift, a lottery label depending on shard placement —
// shows up as a byte difference in the marshaled Outcome. Nil sweeps
// mean ShardCounts() and {1, 4}.
func CheckShardedVsMonolithic(requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, shards, workers []int) error {
	if shards == nil {
		shards = ShardCounts()
	}
	if workers == nil {
		workers = []int{1, 4}
	}
	mono := cfg
	mono.Shards = 0
	mono.Workers = 0
	want, err := MarshalOutcome(auction.Run(requests, offers, mono))
	if err != nil {
		return fmt.Errorf("paralleltest: marshal monolithic outcome: %w", err)
	}
	for _, k := range shards {
		for _, w := range workers {
			cur := cfg
			cur.Shards = k
			cur.Workers = w
			out := auction.Run(requests, offers, cur)
			got, err := MarshalOutcome(out)
			if err != nil {
				return fmt.Errorf("paralleltest: marshal shards=%d workers=%d outcome: %w", k, w, err)
			}
			if !bytes.Equal(want, got) {
				return fmt.Errorf("paralleltest: shards=%d workers=%d diverges from monolithic: %s", k, w, diffSummary(want, got))
			}
			if err := checkShardAccounting(out, k); err != nil {
				return fmt.Errorf("paralleltest: shards=%d workers=%d: %w", k, w, err)
			}
		}
	}
	return nil
}

// checkShardAccounting cross-checks the plan statistics the sharded run
// attached to its outcome: per-site order counts must add up to the
// block total (conservation at the aggregate level — the per-order
// invariant lives in the shard package's own tests).
func checkShardAccounting(out *auction.Outcome, k int) error {
	st := out.ShardStats
	if st == nil {
		return fmt.Errorf("sharded run attached no ShardStats")
	}
	if st.Shards != k {
		return fmt.Errorf("ShardStats.Shards = %d, want %d", st.Shards, k)
	}
	if len(st.Orders) != k {
		return fmt.Errorf("ShardStats.Orders has %d entries, want %d", len(st.Orders), k)
	}
	sum := st.ResidualOrders + st.UnclusteredOrders
	for _, n := range st.Orders {
		sum += n
	}
	if sum != st.TotalOrders {
		return fmt.Errorf("order accounting leak: shards+residual+unclustered = %d, total %d", sum, st.TotalOrders)
	}
	return nil
}

// AssertShardedVsMonolithic is CheckShardedVsMonolithic wired to a
// testing.TB.
func AssertShardedVsMonolithic(t testing.TB, requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, shards, workers []int) {
	t.Helper()
	if err := CheckShardedVsMonolithic(requests, offers, cfg, shards, workers); err != nil {
		t.Fatal(err)
	}
}

// AssertIndexedVsNaive is CheckIndexedVsNaive wired to a testing.TB.
func AssertIndexedVsNaive(t testing.TB, requests []*bidding.Request, offers []*bidding.Offer, cfg auction.Config, workers []int) {
	t.Helper()
	if err := CheckIndexedVsNaive(requests, offers, cfg, workers); err != nil {
		t.Fatal(err)
	}
}

// diffSummary locates the first differing byte and quotes a small
// window around it from both sides — enough to identify the drifting
// field without dumping two full outcomes.
func diffSummary(want, got []byte) string {
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	window := func(b []byte) string {
		lo, hi := i-60, i+60
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("lengths %d vs %d, first diff at byte %d:\n  sequential: …%s…\n  parallel:   …%s…",
		len(want), len(got), i, window(want), window(got))
}
