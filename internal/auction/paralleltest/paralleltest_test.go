package paralleltest

import (
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/reputation"
	"decloud/internal/workload"
)

// TestEquivalenceRandomizedMarkets is the acceptance property of the
// parallel mode: across ≥ 50 randomized markets — varying size,
// flexibility, geography, client grouping, and every mechanism config
// axis — the Outcome at workers ∈ {1, 2, 4, GOMAXPROCS} is
// byte-identical to the sequential run. Run it under -race to also
// exercise the memory model, not just the values.
func TestEquivalenceRandomizedMarkets(t *testing.T) {
	counts := append([]int{1}, WorkerCounts()...)
	trials := 56
	if testing.Short() {
		trials = 12
	}
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			wcfg := workload.Config{
				Seed:     int64(1000 + seed),
				Requests: 24 + (seed%5)*18,
			}
			if seed%3 == 1 {
				wcfg.Flexibility = 0.8
			}
			if seed%5 == 2 {
				wcfg.GeoRadius = 0.4
			}
			if seed%7 == 3 {
				wcfg.RequestsPerClient = 3
			}
			m := workload.Generate(wcfg)

			cfg := auction.DefaultConfig()
			cfg.Evidence = []byte(fmt.Sprintf("equiv-evidence-%d", seed))
			switch seed % 4 {
			case 1:
				cfg.ExactScheduling = true
			case 2:
				cfg.StrictReduction = true
			case 3:
				// Reputation-gated variant: some providers demand a
				// minimum client reputation and some clients have a
				// denial history, so the concurrent pre-passes hit the
				// shared reputation store's read path.
				rep := reputation.NewStore()
				for i, o := range m.Offers {
					if i%3 == 0 {
						o.MinReputation = 0.85
					}
				}
				for i, r := range m.Requests {
					if i%4 == 0 {
						rep.RecordDeny(r.Client)
					}
				}
				cfg.Reputation = rep
			}
			Assert(t, m.Requests, m.Offers, cfg, counts)
		})
	}
}

// TestShardedEquivalenceRandomizedMarkets is the acceptance property of
// the sharded executor: across ≥ 50 randomized markets — the same
// size/flexibility/geography/config axes as the worker sweep, on
// disjoint seeds — clearing at K ∈ {1, 2, 4, 8} shards × workers
// {1, 4} is byte-identical to the pre-shard monolithic path, and the
// attached shard statistics conserve every order. Run under -race the
// shard fan-out also exercises the memory model.
func TestShardedEquivalenceRandomizedMarkets(t *testing.T) {
	trials := 56
	if testing.Short() {
		trials = 12
	}
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			wcfg := workload.Config{
				Seed:     int64(9000 + seed),
				Requests: 24 + (seed%5)*18,
			}
			if seed%3 == 1 {
				wcfg.Flexibility = 0.8
			}
			if seed%5 == 2 {
				wcfg.GeoRadius = 0.4
			}
			if seed%7 == 3 {
				wcfg.RequestsPerClient = 3
			}
			m := workload.Generate(wcfg)

			cfg := auction.DefaultConfig()
			cfg.Evidence = []byte(fmt.Sprintf("shard-evidence-%d", seed))
			switch seed % 4 {
			case 1:
				cfg.ExactScheduling = true
			case 2:
				cfg.StrictReduction = true
			case 3:
				rep := reputation.NewStore()
				for i, o := range m.Offers {
					if i%3 == 0 {
						o.MinReputation = 0.85
					}
				}
				for i, r := range m.Requests {
					if i%4 == 0 {
						rep.RecordDeny(r.Client)
					}
				}
				cfg.Reputation = rep
			}
			AssertShardedVsMonolithic(t, m.Requests, m.Offers, cfg, nil, nil)
		})
	}
}

// TestShardedEquivalenceDegenerate points the sharded-vs-monolithic
// oracle at the blocks most likely to trip the partitioner: empty and
// one-sided blocks (no clusters, so everything is unclustered), and a
// block with invalid orders rejected before partitioning.
func TestShardedEquivalenceDegenerate(t *testing.T) {
	m := workload.Generate(workload.Config{Seed: 7, Requests: 20})
	cfg := auction.DefaultConfig()
	cfg.Evidence = []byte("shard-degenerate")

	AssertShardedVsMonolithic(t, nil, nil, cfg, nil, nil)
	AssertShardedVsMonolithic(t, m.Requests, nil, cfg, nil, nil)
	AssertShardedVsMonolithic(t, nil, m.Offers, cfg, nil, nil)

	reqs := append([]*bidding.Request(nil), m.Requests...)
	for i := 0; i < len(reqs); i += 5 {
		bad := *reqs[i]
		bad.Resources = nil
		reqs[i] = &bad
	}
	AssertShardedVsMonolithic(t, reqs, m.Offers, cfg, nil, nil)
}

// TestEquivalenceIndexedVsNaive is the acceptance property of the
// indexed matching engine: across the same ≥ 50 randomized markets as
// the worker sweep, the production pipeline (kind bitmasks, time-bucket
// pruning, bounded top-k, dense economics) produces Outcomes
// byte-identical to the brute-force reference pipeline, at workers
// ∈ {1, 2, 4}. Distinct seed offsets keep the markets disjoint from the
// worker-sweep test so the two properties don't share blind spots.
func TestEquivalenceIndexedVsNaive(t *testing.T) {
	counts := []int{1, 2, 4}
	trials := 56
	if testing.Short() {
		trials = 12
	}
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			wcfg := workload.Config{
				Seed:     int64(5000 + seed),
				Requests: 24 + (seed%5)*18,
			}
			if seed%3 == 1 {
				wcfg.Flexibility = 0.8
			}
			if seed%5 == 2 {
				wcfg.GeoRadius = 0.4
			}
			if seed%7 == 3 {
				wcfg.RequestsPerClient = 3
			}
			m := workload.Generate(wcfg)

			cfg := auction.DefaultConfig()
			cfg.Evidence = []byte(fmt.Sprintf("indexed-evidence-%d", seed))
			switch seed % 4 {
			case 1:
				cfg.ExactScheduling = true
			case 2:
				cfg.StrictReduction = true
			case 3:
				rep := reputation.NewStore()
				for i, o := range m.Offers {
					if i%3 == 0 {
						o.MinReputation = 0.85
					}
				}
				for i, r := range m.Requests {
					if i%4 == 0 {
						rep.RecordDeny(r.Client)
					}
				}
				cfg.Reputation = rep
			}
			AssertIndexedVsNaive(t, m.Requests, m.Offers, cfg, counts)
		})
	}
}

// TestEquivalenceIndexedDegenerate points the indexed-vs-naive oracle at
// the blocks most likely to trip index construction: empty and one-sided
// blocks, and a block with invalid orders the screening pass rejects
// before the index is built.
func TestEquivalenceIndexedDegenerate(t *testing.T) {
	m := workload.Generate(workload.Config{Seed: 7, Requests: 20})
	cfg := auction.DefaultConfig()
	cfg.Evidence = []byte("indexed-degenerate")

	AssertIndexedVsNaive(t, nil, nil, cfg, nil)
	AssertIndexedVsNaive(t, m.Requests, nil, cfg, nil)
	AssertIndexedVsNaive(t, nil, m.Offers, cfg, nil)

	reqs := append([]*bidding.Request(nil), m.Requests...)
	for i := 0; i < len(reqs); i += 5 {
		bad := *reqs[i]
		bad.Resources = nil
		reqs[i] = &bad
	}
	AssertIndexedVsNaive(t, reqs, m.Offers, cfg, nil)
}

// TestEquivalenceDegenerateBlocks covers the edges the randomized sweep
// can miss: empty blocks, one-sided blocks, and blocks containing
// invalid orders that the screening pass must reject identically.
func TestEquivalenceDegenerateBlocks(t *testing.T) {
	m := workload.Generate(workload.Config{Seed: 7, Requests: 20})
	cfg := auction.DefaultConfig()
	cfg.Evidence = []byte("degenerate")

	Assert(t, nil, nil, cfg, nil)
	Assert(t, m.Requests, nil, cfg, nil)
	Assert(t, nil, m.Offers, cfg, nil)

	// Invalidate a slice of orders (empty resources fail validation).
	reqs := append([]*bidding.Request(nil), m.Requests...)
	for i := 0; i < len(reqs); i += 5 {
		bad := *reqs[i]
		bad.Resources = nil
		reqs[i] = &bad
	}
	Assert(t, reqs, m.Offers, cfg, nil)
}

// TestEquivalenceGreedyBenchmark pins the benchmark pipeline too: the
// greedy allocator shares the parallel scoring and pre-pass stages, so
// its outcome must be worker-count-invariant as well.
func TestEquivalenceGreedyBenchmark(t *testing.T) {
	m := workload.Generate(workload.Config{Seed: 11, Requests: 90})
	for _, w := range WorkerCounts() {
		seq := auction.DefaultConfig()
		seq.Workers = 0
		want, err := MarshalOutcome(auction.RunGreedy(m.Requests, m.Offers, seq))
		if err != nil {
			t.Fatal(err)
		}
		cur := seq
		cur.Workers = w
		got, err := MarshalOutcome(auction.RunGreedy(m.Requests, m.Offers, cur))
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("greedy benchmark diverges at workers=%d: %s", w, diffSummary(want, got))
		}
	}
}

// TestCheckDetectsDivergence makes sure the harness itself can fail:
// comparing outcomes of two different blocks must produce a diff, so a
// silently-green harness bug cannot hide a real divergence.
func TestCheckDetectsDivergence(t *testing.T) {
	a := workload.Generate(workload.Config{Seed: 1, Requests: 30})
	b := workload.Generate(workload.Config{Seed: 2, Requests: 30})
	cfg := auction.DefaultConfig()
	outA, err := MarshalOutcome(auction.Run(a.Requests, a.Offers, cfg))
	if err != nil {
		t.Fatal(err)
	}
	outB, err := MarshalOutcome(auction.Run(b.Requests, b.Offers, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if string(outA) == string(outB) {
		t.Fatal("distinct markets marshaled identically — harness cannot detect anything")
	}
	if s := diffSummary(outA, outB); s == "" {
		t.Fatal("empty diff summary for differing outcomes")
	}
}
