package auction

import (
	"time"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/miniauction"
	"decloud/internal/obs"
	"decloud/internal/par"
	"decloud/internal/shard"
)

// Sharded mini-auction execution.
//
// The sharded path generalizes parallel.go: instead of executing every
// order-disjoint component wherever a worker is free, components are
// first assigned to K deterministic shards by shard.Partition (locality
// + time bucket hashed with the block digest), components straddling
// shards spill into a residual round, and each shard — then the
// residual — executes its auctions in global auction-index order
// against its own blockState. Shards and residual are pairwise
// order-disjoint, so the same commutation argument applies: merging
// trades in auction-index order and unioning the disjoint bookkeeping
// maps reproduces the sequential execution byte for byte at any K.
// paralleltest.CheckShardedVsMonolithic enforces exactly this.

// runAuctionsSharded partitions the block's mini-auctions into
// cfg.Shards shards plus a residual, clears them on the worker pool,
// and fills in the outcome exactly as the sequential loop would. The
// returned plan carries the partition's conservation accounting.
func runAuctionsSharded(out *Outcome, reqs []*bidding.Request, offs []*bidding.Offer, clusters []*cluster.Cluster, auctions []miniauction.Auction, all []clusterStats, cfg Config, pairOK func(EconRequest, EconOffer) bool, evidence []byte, workers int) *shard.Plan {
	so := cfg.ShardObs
	partitionStart := shardNow(so)
	plan := shard.Partition(reqs, offs, clusters, auctions, evidence, cfg.Shards)
	if so != nil {
		so.PartitionSeconds.Observe(time.Since(partitionStart).Seconds())
	}

	tradesByAuction := make([][]trade, len(auctions))
	states := make([]*blockState, len(plan.Shards)+1)

	clearStart := shardNow(so)
	par.ForEach(workers, len(plan.Shards), func(si int) {
		st := newBlockState(cfg)
		for _, ai := range plan.Shards[si] {
			// Auctions keep their global index: the evidence-keyed
			// lotteries are labeled by it, so the shard assignment must
			// not change which lottery an auction draws.
			tradesByAuction[ai] = runMiniAuction(ai, auctions[ai], all, cfg, pairOK, evidence, st)
		}
		states[si] = st
	})
	if so != nil {
		so.ClearSeconds.Observe(time.Since(clearStart).Seconds())
	}

	// Residual round: boundary components, whose best-offer structure
	// straddles shards, clear after the fan-out against their own
	// state — order-disjoint from every shard, so position in time is
	// immaterial to the bytes.
	residualStart := shardNow(so)
	rst := newBlockState(cfg)
	for _, ai := range plan.Residual {
		tradesByAuction[ai] = runMiniAuction(ai, auctions[ai], all, cfg, pairOK, evidence, rst)
	}
	states[len(plan.Shards)] = rst
	if so != nil {
		so.ResidualSeconds.Observe(time.Since(residualStart).Seconds())
	}

	// Canonical merge, identical to parallel.go: trades in
	// auction-index order, bookkeeping maps unioned (key sets disjoint
	// across shards and residual).
	for _, trs := range tradesByAuction {
		for _, tr := range trs {
			recordMatch(out, tr.ec, tr.a, tr.price)
		}
	}
	taken := make(map[bidding.OrderID]bool)
	reducedReq := make(map[bidding.OrderID]bool)
	reducedOff := make(map[bidding.OrderID]bool)
	lottery := make(map[bidding.OrderID]bool)
	for _, st := range states {
		mergeIDs(taken, st.taken)
		mergeIDs(reducedReq, st.reducedReq)
		mergeIDs(reducedOff, st.reducedOff)
		mergeIDs(lottery, st.lottery)
	}
	finalize(out, taken, reducedReq, reducedOff, lottery)

	out.ShardStats = shardStats(plan, tradesByAuction)
	observeShards(so, out.ShardStats)
	return plan
}

// ShardStats reports how one block's clearing distributed across
// shards. It rides on the Outcome for observability and tests only —
// the json:"-" tag keeps it out of the canonically marshaled outcome
// bytes that verification compares, because the stats depend on K while
// the outcome must not.
type ShardStats struct {
	// Shards is the configured shard count K.
	Shards int
	// Orders counts the distinct orders homed on each shard.
	Orders []int
	// Welfare is the bid-based welfare cleared by each shard's
	// auctions.
	Welfare []float64
	// ResidualOrders / ResidualAuctions / ResidualWelfare describe the
	// spillover carried into the residual round.
	ResidualOrders   int
	ResidualAuctions int
	ResidualWelfare  float64
	// UnclusteredOrders are screened orders outside every active
	// mini-auction; TotalOrders covers all screened orders.
	UnclusteredOrders int
	TotalOrders       int
	// SpilloverRate is ResidualOrders over clusterable orders.
	SpilloverRate float64
}

// shardStats folds the partition plan and the recorded trades into
// per-shard statistics.
func shardStats(plan *shard.Plan, tradesByAuction [][]trade) *ShardStats {
	st := &ShardStats{
		Shards:            plan.K,
		Orders:            plan.ShardOrders,
		Welfare:           make([]float64, plan.K),
		ResidualOrders:    plan.ResidualOrders,
		ResidualAuctions:  len(plan.Residual),
		UnclusteredOrders: plan.UnclusteredOrders,
		TotalOrders:       plan.TotalOrders,
		SpilloverRate:     plan.SpilloverRate(),
	}
	for si, ais := range plan.Shards {
		for _, ai := range ais {
			st.Welfare[si] += tradesWelfare(tradesByAuction[ai])
		}
	}
	for _, ai := range plan.Residual {
		st.ResidualWelfare += tradesWelfare(tradesByAuction[ai])
	}
	return st
}

// tradesWelfare sums the bid-based welfare of a recorded trade list —
// the same per-match formula Outcome.BidWelfare uses.
func tradesWelfare(trs []trade) float64 {
	var w float64
	for _, tr := range trs {
		w += tr.a.Req.Request.Bid - Fraction(tr.a.Granted, tr.a.Req.Request, tr.a.Off.Offer)*tr.a.Off.Offer.Bid
	}
	return w
}

// observeShards publishes one block's shard statistics to the metrics
// bundle (nil-safe, purely observational).
func observeShards(so *obs.ShardMetrics, st *ShardStats) {
	if so == nil || st == nil {
		return
	}
	so.Blocks.Inc()
	so.ShardCount.Set(float64(st.Shards))
	for si := range st.Orders {
		so.ShardOrders.Observe(float64(st.Orders[si]))
		so.ShardWelfare.Observe(st.Welfare[si])
	}
	so.SpilloverOrders.Add(int64(st.ResidualOrders))
	so.ResidualAuctions.Add(int64(st.ResidualAuctions))
	so.LastSpilloverRate.Set(st.SpilloverRate)
}

// shardNow reads the wall clock only when shard metrics are enabled.
func shardNow(so *obs.ShardMetrics) (t time.Time) {
	if so != nil {
		t = time.Now()
	}
	return
}
