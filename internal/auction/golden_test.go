package auction

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"decloud/internal/workload"
)

// goldenMatch is the pinned shape of one trade.
type goldenMatch struct {
	Request   string  `json:"request"`
	Offer     string  `json:"offer"`
	Payment   float64 `json:"payment"`
	UnitPrice float64 `json:"unit_price"`
}

type goldenOutcome struct {
	Matches      []goldenMatch `json:"matches"`
	Clusters     int           `json:"clusters"`
	MiniAuctions int           `json:"mini_auctions"`
	Welfare      float64       `json:"welfare"`
}

// TestGoldenOutcome pins the byte-level behavior of the mechanism on a
// fixed market. Any change to matching, pricing, normalization, or the
// randomization seeds shows up here FIRST — if the change is intentional,
// regenerate with:
//
//	GOLDEN_UPDATE=1 go test ./internal/auction -run TestGoldenOutcome
//
// This is the same determinism the verifying miners rely on: if this test
// breaks across commits, old chain files stop verifying under the new
// binary.
func TestGoldenOutcome(t *testing.T) {
	market := workload.Generate(workload.Config{Seed: 20260706, Requests: 80})
	cfg := DefaultConfig()
	cfg.Evidence = []byte("golden-block")
	out := Run(market.Requests, market.Offers, cfg)

	got := goldenOutcome{
		Clusters:     out.Clusters,
		MiniAuctions: out.MiniAuctions,
		Welfare:      out.Welfare(),
	}
	for _, m := range out.Matches {
		got.Matches = append(got.Matches, goldenMatch{
			Request:   string(m.Request.ID),
			Offer:     string(m.Offer.ID),
			Payment:   m.Payment,
			UnitPrice: m.UnitPrice,
		})
	}

	path := filepath.Join("testdata", "golden_outcome.json")
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s (%d matches)", path, len(got.Matches))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want goldenOutcome
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.Clusters != want.Clusters || got.MiniAuctions != want.MiniAuctions {
		t.Fatalf("structure drift: clusters %d→%d, auctions %d→%d",
			want.Clusters, got.Clusters, want.MiniAuctions, got.MiniAuctions)
	}
	if got.Welfare != want.Welfare {
		t.Fatalf("welfare drift: %v → %v", want.Welfare, got.Welfare)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("match count drift: %d → %d", len(want.Matches), len(got.Matches))
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Fatalf("match %d drift:\n got %+v\nwant %+v", i, got.Matches[i], want.Matches[i])
		}
	}
}
