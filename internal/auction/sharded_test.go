package auction

import (
	"math"
	"math/rand"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/obs"
	"decloud/internal/workload"
)

// The sharded executor re-routes mini-auctions through the partitioner,
// so the economic properties must be re-proven ON that path — a bug
// that preserved bytes in the equivalence harness's markets but broke
// incentives elsewhere would surface here.

// TestDSICHomogeneousSharded: no client or provider can gain by
// misreporting when clearing runs through the sharded path (K=4 over a
// single-cluster market: everything lands in one shard, exercising the
// partition → clear → merge loop end to end).
func TestDSICHomogeneousSharded(t *testing.T) {
	values := []float64{10, 8, 6, 5, 3}
	costs := []float64{1, 2, 3, 4}
	reqs, offs := homogeneousMarket(values, costs)
	tv, tc := truthMaps(reqs, offs)
	cfg := DefaultConfig()
	cfg.Evidence = []byte("dsic-sharded")
	cfg.Shards = 4
	cfg.Workers = 4

	base := Run(reqs, offs, cfg)
	for i := range reqs {
		truthful := clientUtility(base, reqs[i].Client, tv)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneRequests(reqs)
			mod[i].Bid = reqs[i].TrueValue * dev
			out := Run(mod, offs, cfg)
			if u := clientUtility(out, reqs[i].Client, tv); u > truthful+1e-9 {
				t.Fatalf("sharded mode: client %s gains by bidding %v instead of %v: %v > %v",
					reqs[i].Client, mod[i].Bid, reqs[i].TrueValue, u, truthful)
			}
		}
	}
	for j := range offs {
		truthful := providerUtility(base, offs[j].Provider, tc)
		for _, dev := range []float64{0.1, 0.5, 0.9, 1.1, 1.5, 3, 10} {
			mod := cloneOffers(offs)
			mod[j].Bid = offs[j].TrueCost * dev
			out := Run(reqs, mod, cfg)
			if u := providerUtility(out, offs[j].Provider, tc); u > truthful+1e-9 {
				t.Fatalf("sharded mode: provider %s gains by asking %v instead of %v: %v > %v",
					offs[j].Provider, mod[j].Bid, offs[j].TrueCost, u, truthful)
			}
		}
	}
}

// TestInvariantsShardedRandomMarkets asserts IR, the per-match payment
// identity, strong budget balance, and feasibility directly on
// sharded-path outcomes across random markets and shard counts.
func TestInvariantsShardedRandomMarkets(t *testing.T) {
	rnd := rand.New(rand.NewSource(171))
	for trial := 0; trial < 30; trial++ {
		reqs, offs := randomMarket(rnd, 10+rnd.Intn(40), 3+rnd.Intn(10))
		cfg := DefaultConfig()
		cfg.Evidence = []byte("sharded-invariants")
		cfg.Shards = 1 + trial%8
		cfg.Workers = 1 + trial%4
		out := Run(reqs, offs, cfg)
		revCheck := make(map[bidding.OrderID]float64)
		for _, m := range out.Matches {
			if m.Payment > m.Request.Bid+1e-9 {
				t.Fatalf("trial %d: client IR violated in sharded mode: pays %v > bid %v",
					trial, m.Payment, m.Request.Bid)
			}
			if m.Payment < m.Fraction*m.Offer.Bid-1e-9 {
				t.Fatalf("trial %d: provider IR violated in sharded mode: %v < cost share %v",
					trial, m.Payment, m.Fraction*m.Offer.Bid)
			}
			if want := m.Nu * m.UnitPrice * float64(m.Request.Duration); m.Payment != want {
				t.Fatalf("trial %d: payment identity broken: %v != ν·p·d = %v", trial, m.Payment, want)
			}
			revCheck[m.Offer.ID] += m.Payment
		}
		for id, want := range revCheck {
			if out.Revenues[id] != want {
				t.Fatalf("trial %d: Revenues ledger drift for %s: %v != %v", trial, id, out.Revenues[id], want)
			}
		}
		if math.Abs(out.TotalPayments()-out.TotalRevenues()) > 1e-9 {
			t.Fatalf("trial %d: block budget imbalance in sharded mode", trial)
		}
		assertFeasible(t, out, offs)
	}
}

// TestShardedOutcomeConservation is the outcome-level conservation
// invariant: matched + excluded + carried == submitted, with the three
// sets pairwise disjoint — the sharded executor may move orders between
// shards and the residual, but it must never trade an order twice, drop
// one silently, or both match and exclude one.
func TestShardedOutcomeConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := workload.Generate(workload.Config{Seed: 300 + seed, Requests: 40 + int(seed)*7})
		for _, k := range []int{1, 3, 8} {
			cfg := DefaultConfig()
			cfg.Evidence = []byte{byte(seed), byte(k)}
			cfg.Shards = k
			out := Run(m.Requests, m.Offers, cfg)

			submitted := make(map[bidding.OrderID]bool)
			for _, r := range m.Requests {
				submitted[r.ID] = true
			}
			for _, o := range m.Offers {
				submitted[o.ID] = true
			}

			matched := make(map[bidding.OrderID]bool)
			for _, mt := range out.Matches {
				if matched[mt.Request.ID] {
					t.Fatalf("seed %d K=%d: request %s matched twice", seed, k, mt.Request.ID)
				}
				matched[mt.Request.ID] = true
				matched[mt.Offer.ID] = true // offers may host several requests
			}
			excluded := make(map[bidding.OrderID]bool)
			for _, set := range [][]bidding.OrderID{
				out.ReducedRequests, out.ReducedOffers, out.LotteryDropped,
				out.RejectedRequests, out.RejectedOffers,
			} {
				for _, id := range set {
					if matched[id] {
						t.Fatalf("seed %d K=%d: order %s both matched and excluded", seed, k, id)
					}
					if excluded[id] {
						t.Fatalf("seed %d K=%d: order %s excluded twice", seed, k, id)
					}
					excluded[id] = true
				}
			}
			carried := 0
			for id := range submitted {
				if !matched[id] && !excluded[id] {
					carried++ // unmatched: a resubmitting client would carry it forward
				}
			}
			for id := range matched {
				if !submitted[id] {
					t.Fatalf("seed %d K=%d: matched order %s was never submitted", seed, k, id)
				}
			}
			for id := range excluded {
				if !submitted[id] {
					t.Fatalf("seed %d K=%d: excluded order %s was never submitted", seed, k, id)
				}
			}
			if got := len(matched) + len(excluded) + carried; got != len(submitted) {
				t.Fatalf("seed %d K=%d: matched(%d) + excluded(%d) + carried(%d) = %d != submitted %d",
					seed, k, len(matched), len(excluded), carried, got, len(submitted))
			}

			// Plan-level conservation rides on the outcome.
			st := out.ShardStats
			if st == nil {
				t.Fatalf("seed %d K=%d: no ShardStats on a sharded run", seed, k)
			}
			sum := st.ResidualOrders + st.UnclusteredOrders
			for _, n := range st.Orders {
				sum += n
			}
			if sum != st.TotalOrders {
				t.Fatalf("seed %d K=%d: shard accounting leak: %d != %d", seed, k, sum, st.TotalOrders)
			}
		}
	}
}

// TestShardedObsDeterminism extends the obs determinism guard to the
// shard bundle: outcomes must be byte-identical with ShardObs nil or
// set, and the recorded aggregates must agree with the attached stats.
func TestShardedObsDeterminism(t *testing.T) {
	m := workload.Generate(workload.Config{Seed: 77, Requests: 60})
	cfg := DefaultConfig()
	cfg.Evidence = []byte("sharded-obs")
	cfg.Shards = 4

	bare := Run(m.Requests, m.Offers, cfg)

	reg := obs.NewRegistry()
	cfg.Obs = obs.NewMechanismMetrics(reg)
	cfg.ShardObs = obs.NewShardMetrics(reg)
	instrumented := Run(m.Requests, m.Offers, cfg)

	if len(bare.Matches) != len(instrumented.Matches) || bare.BidWelfare() != instrumented.BidWelfare() {
		t.Fatal("shard metrics perturbed the outcome")
	}
	if got := reg.CounterValue("decloud_shard_blocks_total"); got != 1 {
		t.Fatalf("shard_blocks_total = %d, want 1", got)
	}
	st := instrumented.ShardStats
	if got := reg.CounterValue("decloud_shard_spillover_orders_total"); got != int64(st.ResidualOrders) {
		t.Fatalf("spillover_orders_total = %d, want %d", got, st.ResidualOrders)
	}
	if got := reg.CounterValue("decloud_shard_residual_auctions_total"); got != int64(st.ResidualAuctions) {
		t.Fatalf("residual_auctions_total = %d, want %d", got, st.ResidualAuctions)
	}
	if got := reg.GaugeValue("decloud_shard_count"); got != float64(st.Shards) {
		t.Fatalf("shard_count gauge = %v, want %d", got, st.Shards)
	}
}
