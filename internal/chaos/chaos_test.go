package chaos

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"
)

func digest(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestVerdictsAreDeterministic(t *testing.T) {
	mk := func() *Plan {
		return &Plan{Seed: 42, Probs: Probs{Drop: 0.3, Delay: 0.3, Dup: 0.2}}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		d := digest(fmt.Sprintf("bid-%d", i))
		for attempt := 0; attempt < 4; attempt++ {
			if a.RevealLost(1, attempt, "m0", "p0", d) != b.RevealLost(1, attempt, "m0", "p0", d) {
				t.Fatalf("RevealLost diverged at bid %d attempt %d", i, attempt)
			}
		}
		key := digest(fmt.Sprintf("msg-%d", i))
		sa := a.PlanDelivery("n0", "n1", "reveal", key)
		sb := b.PlanDelivery("n0", "n1", "reveal", key)
		if len(sa) != len(sb) {
			t.Fatalf("PlanDelivery diverged at msg %d: %v vs %v", i, sa, sb)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("PlanDelivery delay diverged at msg %d: %v vs %v", i, sa, sb)
			}
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := &Plan{Seed: 1, Probs: Probs{Drop: 0.5}}
	b := &Plan{Seed: 2, Probs: Probs{Drop: 0.5}}
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		d := digest(fmt.Sprintf("bid-%d", i))
		if a.RevealLost(0, 0, "m", "p", d) == b.RevealLost(0, 0, "m", "p", d) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical verdicts")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	key := digest("k")
	drop := &Plan{Seed: 7, Probs: Probs{Drop: 1}}
	if s := drop.PlanDelivery("a", "b", "x", key); s == nil || len(s) != 0 {
		t.Fatalf("Drop=1 schedule = %v, want empty", s)
	}
	delay := &Plan{Seed: 7, Probs: Probs{Delay: 1}, Step: time.Millisecond}
	if s := delay.PlanDelivery("a", "b", "x", key); len(s) != 1 || s[0] <= 0 {
		t.Fatalf("Delay=1 schedule = %v, want one positive delay", s)
	}
	dup := &Plan{Seed: 7, Probs: Probs{Dup: 1}}
	if s := dup.PlanDelivery("a", "b", "x", key); len(s) != 2 || s[0] != 0 || s[1] <= 0 {
		t.Fatalf("Dup=1 schedule = %v, want immediate copy plus a delayed one", s)
	}
	clean := &Plan{Seed: 7}
	if s := clean.PlanDelivery("a", "b", "x", key); s != nil {
		t.Fatalf("zero-prob plan returned %v, want nil (deliver normally)", s)
	}
}

func TestTypeProbsOverride(t *testing.T) {
	p := &Plan{
		Seed:      3,
		Probs:     Probs{Drop: 1},
		TypeProbs: map[string]Probs{"block": {}},
	}
	if s := p.PlanDelivery("a", "b", "reveal", digest("k")); len(s) != 0 {
		t.Fatalf("default probs not applied: %v", s)
	}
	if s := p.PlanDelivery("a", "b", "block", digest("k")); s != nil {
		t.Fatalf("override not applied: %v", s)
	}
}

func TestPartitionWindowsAndSymmetry(t *testing.T) {
	p := &Plan{
		Partitions: []Partition{{
			Window: Window{From: 1, Until: 3},
			GroupA: []string{"a"},
			GroupB: []string{"b", "c"},
		}},
	}
	if p.Partitioned(0, "a", "b") || p.Partitioned(3, "a", "b") {
		t.Fatal("partition active outside its window")
	}
	if !p.Partitioned(1, "a", "b") || !p.Partitioned(2, "c", "a") {
		t.Fatal("partition inactive inside its window (or asymmetric)")
	}
	if p.Partitioned(1, "b", "c") {
		t.Fatal("same-side nodes partitioned")
	}
	if s := p.PlanDelivery("x", "y", "t", digest("k")); s != nil {
		t.Fatalf("unrelated nodes faulted: %v", s)
	}
	p.SetNow(1)
	if s := p.PlanDelivery("a", "b", "t", digest("k")); len(s) != 0 {
		t.Fatalf("partitioned delivery not dropped: %v", s)
	}
}

func TestCrashWindows(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Window: Window{From: 0, Until: 2}, Node: "m1"}}}
	if !p.Crashed(0, "m1") || !p.Crashed(1, "m1") {
		t.Fatal("crash window not honored")
	}
	if p.Crashed(2, "m1") || p.Crashed(0, "m2") {
		t.Fatal("crash leaks outside window or node")
	}
	// A crashed node neither sends nor receives.
	if s := p.PlanDelivery("m1", "x", "t", digest("k")); len(s) != 0 {
		t.Fatal("crashed receiver still delivered")
	}
	if s := p.PlanDelivery("x", "m1", "t", digest("k")); len(s) != 0 {
		t.Fatal("crashed sender's message still delivered")
	}
	if !p.RevealLost(1, 0, "m0", "m1", digest("bid")) {
		t.Fatal("crashed sender's reveal still arrived")
	}
}

func TestBlockedRevealsAlwaysLost(t *testing.T) {
	d := digest("bid")
	p := &Plan{BlockedReveals: map[[32]byte]bool{d: true}}
	for attempt := 0; attempt < 5; attempt++ {
		if !p.RevealLost(0, attempt, "m", "p", d) {
			t.Fatalf("blocked reveal delivered on attempt %d", attempt)
		}
	}
	if p.RevealLost(0, 0, "m", "p", digest("other")) {
		t.Fatal("unblocked reveal lost by a fault-free plan")
	}
}

func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if p.RevealLost(0, 0, "m", "p", digest("d")) || p.Crashed(0, "m") || p.Partitioned(0, "a", "b") {
		t.Fatal("nil plan injected a fault")
	}
	if s := p.PlanDelivery("a", "b", "t", digest("k")); s != nil {
		t.Fatalf("nil plan returned schedule %v", s)
	}
	if p.Now() != 0 {
		t.Fatal("nil plan clock nonzero")
	}
}

func TestClock(t *testing.T) {
	p := &Plan{}
	if p.Now() != 0 {
		t.Fatal("fresh clock nonzero")
	}
	p.SetNow(5)
	if p.Now() != 5 {
		t.Fatal("SetNow lost")
	}
	if p.Advance() != 6 || p.Now() != 6 {
		t.Fatal("Advance broken")
	}
}

func TestSoakPlanStableAndVaried(t *testing.T) {
	nodes := []string{"m0", "m1", "m2"}
	a, b := SoakPlan(9, nodes), SoakPlan(9, nodes)
	if a.Probs != b.Probs || len(a.Partitions) != len(b.Partitions) || len(a.Crashes) != len(b.Crashes) {
		t.Fatal("SoakPlan not stable for one seed")
	}
	withPartition, withCrash := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		p := SoakPlan(seed, nodes)
		if p.Probs.Drop < 0.1 || p.Probs.Drop > 0.5 {
			t.Fatalf("seed %d: drop prob %v out of band", seed, p.Probs.Drop)
		}
		if len(p.Partitions) > 0 {
			withPartition++
		}
		if len(p.Crashes) > 0 {
			withCrash++
		}
	}
	if withPartition == 0 || withCrash == 0 {
		t.Fatalf("soak sweep never drew a partition (%d) or crash (%d)", withPartition, withCrash)
	}
}
