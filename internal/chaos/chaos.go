// Package chaos provides deterministic fault injection for the two-phase
// bid exposure protocol. A Plan is a seeded schedule of transport faults —
// message drops, delays, duplicates (and, through delays, reorders),
// origin-based partitions, and crash-restart windows — that both the
// in-process miner network and the TCP gossip layer consult before
// delivering a message. Every decision is drawn from SHA-256 of the plan
// seed and the message's identity, never from wall-clock time or call
// order, so the same seed injects exactly the same faults on every run:
// chaos tests stay reproducible, and the protocol's deterministic
// exclusion rule (unrevealed bids are dropped identically on every honest
// node) can be asserted byte for byte.
package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"decloud/internal/stats"
)

// Probs are per-message fault probabilities. Drop, Delay, and Dup are
// mutually exclusive outcomes of one draw, so Drop+Delay+Dup must not
// exceed 1; the remainder is clean immediate delivery.
type Probs struct {
	Drop  float64
	Delay float64
	Dup   float64
	// MaxDelaySteps bounds the delay drawn for a delayed or duplicated
	// message, in steps (default 4). The in-process transport reads steps
	// as retry attempts; the TCP transport multiplies by Plan.Step.
	MaxDelaySteps int
}

// Window is a half-open interval [From, Until) of logical time. The
// in-process network uses round numbers; the TCP layer uses the plan's
// explicit clock (SetNow/Advance).
type Window struct {
	From, Until int64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t int64) bool { return t >= w.From && t < w.Until }

// Partition severs GroupA from GroupB while its window is active.
// Partitions are origin-based: a message is blocked when its originator
// and the delivering node sit on opposite sides, regardless of the gossip
// path it took — a stronger cut than a link partition, and a deterministic
// one.
type Partition struct {
	Window
	GroupA, GroupB []string
}

// Crash takes a node fully offline for its window: everything it sends is
// lost and everything addressed to it is dropped. When the window closes
// the node is back (crash-restart); catching up with the chain is the
// protocol's job, not the plan's.
type Crash struct {
	Window
	Node string
}

// Plan is a seeded fault schedule. The zero value injects nothing; a nil
// *Plan is always safe to query. Plans are safe for concurrent use: all
// schedule fields are read-only after construction and the logical clock
// is atomic.
type Plan struct {
	Seed int64
	// Probs applies to every message without a TypeProbs override.
	Probs Probs
	// TypeProbs overrides Probs per wire message type (e.g. faults on
	// "reveal" gossip only, leaving "block" and "vote" reliable).
	TypeProbs map[string]Probs
	// Step converts delay steps to wall time on the TCP transport
	// (default 5ms).
	Step time.Duration
	// Partitions and Crashes are active during their windows.
	Partitions []Partition
	Crashes    []Crash
	// BlockedReveals lists bid digests whose key reveals never arrive, on
	// any attempt — the hook chaos tests use to replay a previous run's
	// exclusion set against a fault-free network. Excluded from JSON (the
	// key type has no text form) so a Plan's schedule can ship across
	// process boundaries — the devnet orchestrator serializes plans into
	// the config files of the node processes it spawns.
	BlockedReveals map[[32]byte]bool `json:"-"`

	now atomic.Int64
}

// Now returns the plan's logical clock (the TCP transport's notion of
// time; the in-process network passes round numbers explicitly).
func (p *Plan) Now() int64 {
	if p == nil {
		return 0
	}
	return p.now.Load()
}

// SetNow moves the logical clock, activating or expiring windows.
func (p *Plan) SetNow(t int64) { p.now.Store(t) }

// Advance steps the logical clock forward by one and returns the new time.
func (p *Plan) Advance() int64 { return p.now.Add(1) }

// rand derives the deterministic generator for one labeled decision.
func (p *Plan) rand(label string) *rand.Rand {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(p.Seed))
	return stats.SubRand(seed[:], "chaos/"+label)
}

// Crashed reports whether node is inside a crash window at time t.
func (p *Plan) Crashed(t int64, node string) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Node == node && c.Contains(t) {
			return true
		}
	}
	return false
}

// Partitioned reports whether a and b sit on opposite sides of an active
// partition at time t. The relation is symmetric.
func (p *Plan) Partitioned(t int64, a, b string) bool {
	if p == nil {
		return false
	}
	for _, cut := range p.Partitions {
		if !cut.Contains(t) {
			continue
		}
		if (member(cut.GroupA, a) && member(cut.GroupB, b)) ||
			(member(cut.GroupA, b) && member(cut.GroupB, a)) {
			return true
		}
	}
	return false
}

func member(group []string, name string) bool {
	for _, g := range group {
		if g == name {
			return true
		}
	}
	return false
}

// RevealLost decides whether the key reveal for digest is lost in transit
// on the given delivery attempt of the given round — the in-process
// transport's fault hook. The probability draw is keyed by (seed, round,
// attempt, digest) only, never by the producer, so the excluded set is
// identical no matter which miner wins the production race. Partition
// verdicts do consult the producer: under proof-of-stake the leader is
// deterministic, so partition-based exclusion stays reproducible there.
func (p *Plan) RevealLost(round int64, attempt int, producer, sender string, digest [32]byte) bool {
	if p == nil {
		return false
	}
	if p.BlockedReveals[digest] {
		return true
	}
	if p.Crashed(round, sender) || p.Partitioned(round, producer, sender) {
		return true
	}
	pr := p.Probs.Drop
	if tp, ok := p.TypeProbs["reveal"]; ok {
		pr = tp.Drop
	}
	if pr <= 0 {
		return false
	}
	label := fmt.Sprintf("reveal/%d/%d/%x", round, attempt, digest)
	return p.rand(label).Float64() < pr
}

// PlanDelivery is the TCP gossip fault hook; it satisfies p2p.FaultPlan
// without importing that package. It is consulted once per unique message
// a node sees (node is the delivering endpoint, from the message's
// originator) and returns the delivery schedule: nil means deliver
// normally, an empty schedule drops the message at this node, and each
// entry otherwise is one local delivery after that delay (the first entry
// also gates the relay; extra entries are duplicate deliveries).
func (p *Plan) PlanDelivery(node, from, msgType string, key [32]byte) []time.Duration {
	if p == nil {
		return nil
	}
	t := p.Now()
	if p.Crashed(t, node) || p.Crashed(t, from) || p.Partitioned(t, node, from) {
		return []time.Duration{}
	}
	probs := p.Probs
	if tp, ok := p.TypeProbs[msgType]; ok {
		probs = tp
	}
	if probs.Drop <= 0 && probs.Delay <= 0 && probs.Dup <= 0 {
		return nil
	}
	rnd := p.rand(fmt.Sprintf("p2p/%s/%s/%s/%x", node, from, msgType, key))
	u := rnd.Float64()
	step := p.Step
	if step <= 0 {
		step = 5 * time.Millisecond
	}
	maxSteps := probs.MaxDelaySteps
	if maxSteps <= 0 {
		maxSteps = 4
	}
	delay := func() time.Duration { return time.Duration(1+rnd.Intn(maxSteps)) * step }
	switch {
	case u < probs.Drop:
		return []time.Duration{}
	case u < probs.Drop+probs.Delay:
		return []time.Duration{delay()}
	case u < probs.Drop+probs.Delay+probs.Dup:
		return []time.Duration{0, delay()}
	}
	return nil
}

// SoakPlan derives a varied fault schedule from a seed for soak testing:
// drop/delay/duplicate rates are swept across seeds, and roughly a third
// of the schedules add a partition or a crash-restart window over the
// given node names. The same (seed, nodes) always yields the same plan.
func SoakPlan(seed int64, nodes []string) *Plan {
	p := &Plan{Seed: seed}
	rnd := p.rand("soak-plan")
	p.Probs = Probs{
		Drop:          0.1 + 0.4*rnd.Float64(),
		Delay:         0.3 * rnd.Float64(),
		Dup:           0.2 * rnd.Float64(),
		MaxDelaySteps: 1 + rnd.Intn(4),
	}
	if len(nodes) > 1 && rnd.Float64() < 0.3 {
		cut := 1 + rnd.Intn(len(nodes)-1)
		p.Partitions = append(p.Partitions, Partition{
			Window: Window{From: 0, Until: 1 + int64(rnd.Intn(3))},
			GroupA: append([]string(nil), nodes[:cut]...),
			GroupB: append([]string(nil), nodes[cut:]...),
		})
	}
	if len(nodes) > 0 && rnd.Float64() < 0.3 {
		p.Crashes = append(p.Crashes, Crash{
			Window: Window{From: 0, Until: 1 + int64(rnd.Intn(2))},
			Node:   nodes[rnd.Intn(len(nodes))],
		})
	}
	return p
}
