// Package reputation implements the reputation system DeCloud relies on
// for post-allocation accountability (Sections III-B and VI): clients
// accrue a penalty for successive rejections of suggested allocations,
// and providers may require a minimum client reputation.
package reputation

import (
	"sort"
	"sync"

	"decloud/internal/bidding"
)

// Scores live in [0, 1]. New participants start at Initial; accepting an
// allocation restores reputation slowly; denying one costs increasingly
// more as the denial streak grows ("a reputational penalty for successive
// rejections", Section III-B).
const (
	Initial      = 1.0
	acceptReward = 0.05
	denyBase     = 0.9 // first denial multiplies the score by this
	denyStep     = 0.1 // each successive denial compounds the factor
)

type entry struct {
	score      float64
	denyStreak int
	accepts    int
	denies     int
}

// Store tracks participant reputations. Safe for concurrent use; the
// zero value is not usable — call NewStore.
type Store struct {
	mu      sync.RWMutex
	entries map[bidding.ParticipantID]*entry
}

// NewStore returns an empty reputation store.
func NewStore() *Store {
	return &Store{entries: make(map[bidding.ParticipantID]*entry)}
}

func (s *Store) get(id bidding.ParticipantID) *entry {
	e, ok := s.entries[id]
	if !ok {
		e = &entry{score: Initial}
		s.entries[id] = e
	}
	return e
}

// Score returns the participant's reputation (Initial when unknown).
func (s *Store) Score(id bidding.ParticipantID) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.entries[id]; ok {
		return e.score
	}
	return Initial
}

// Meets reports whether the participant's reputation is at least the
// threshold — the check providers apply before serving a client.
func (s *Store) Meets(id bidding.ParticipantID, threshold float64) bool {
	return s.Score(id) >= threshold
}

// RecordAccept rewards an accepted allocation: the denial streak resets
// and the score recovers, capped at 1.
func (s *Store) RecordAccept(id bidding.ParticipantID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.get(id)
	e.accepts++
	e.denyStreak = 0
	e.score += acceptReward
	if e.score > 1 {
		e.score = 1
	}
}

// RecordDeny penalizes a denied allocation. The multiplicative penalty
// deepens with the streak: one denial is cheap, habitual denial collapses
// the score.
func (s *Store) RecordDeny(id bidding.ParticipantID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.get(id)
	e.denies++
	e.denyStreak++
	factor := denyBase - denyStep*float64(e.denyStreak-1)
	if factor < 0 {
		factor = 0
	}
	e.score *= factor
}

// Stats reports a participant's accept/deny counts.
func (s *Store) Stats(id bidding.ParticipantID) (accepts, denies int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.entries[id]; ok {
		return e.accepts, e.denies
	}
	return 0, 0
}

// Snapshot returns all known scores, sorted by participant ID.
func (s *Store) Snapshot() []ParticipantScore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ParticipantScore, 0, len(s.entries))
	for id, e := range s.entries {
		out = append(out, ParticipantScore{ID: id, Score: e.score})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ParticipantScore is one row of a reputation snapshot.
type ParticipantScore struct {
	ID    bidding.ParticipantID
	Score float64
}
