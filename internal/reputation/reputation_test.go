package reputation

import (
	"sync"
	"testing"
)

func TestInitialScore(t *testing.T) {
	s := NewStore()
	if got := s.Score("newcomer"); got != Initial {
		t.Fatalf("Score = %v, want %v", got, Initial)
	}
	if !s.Meets("newcomer", 0.9) {
		t.Fatal("newcomer should meet a 0.9 threshold")
	}
}

func TestDenyPenaltyCompounds(t *testing.T) {
	s := NewStore()
	s.RecordDeny("flaky")
	first := s.Score("flaky")
	if first >= Initial {
		t.Fatalf("denial should cost reputation: %v", first)
	}
	s.RecordDeny("flaky")
	second := s.Score("flaky")
	// Successive denials must cost proportionally more: the second drop
	// factor (0.8) is harsher than the first (0.9).
	if second/first > first/Initial {
		t.Fatalf("penalty not compounding: %v → %v", first, second)
	}
	// A long streak floors at zero, never negative.
	for i := 0; i < 20; i++ {
		s.RecordDeny("flaky")
	}
	if got := s.Score("flaky"); got < 0 {
		t.Fatalf("score went negative: %v", got)
	}
}

func TestAcceptResetsStreakAndRecovers(t *testing.T) {
	s := NewStore()
	s.RecordDeny("client")
	s.RecordDeny("client")
	low := s.Score("client")
	s.RecordAccept("client")
	if got := s.Score("client"); got <= low {
		t.Fatal("accept should recover reputation")
	}
	// After an accept, the next deny is a first-in-streak (mild) penalty.
	before := s.Score("client")
	s.RecordDeny("client")
	after := s.Score("client")
	if ratio := after / before; ratio < 0.89 || ratio > 0.91 {
		t.Fatalf("streak did not reset: drop factor %v, want 0.9", ratio)
	}
}

func TestScoreCappedAtOne(t *testing.T) {
	s := NewStore()
	for i := 0; i < 50; i++ {
		s.RecordAccept("good")
	}
	if got := s.Score("good"); got > 1 {
		t.Fatalf("score above 1: %v", got)
	}
}

func TestMeetsThreshold(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.RecordDeny("bad")
	}
	if s.Meets("bad", 0.9) {
		t.Fatal("serial denier should fail a 0.9 threshold")
	}
	if !s.Meets("bad", 0) {
		t.Fatal("zero threshold always met")
	}
}

func TestStats(t *testing.T) {
	s := NewStore()
	s.RecordAccept("x")
	s.RecordAccept("x")
	s.RecordDeny("x")
	a, d := s.Stats("x")
	if a != 2 || d != 1 {
		t.Fatalf("Stats = %d/%d", a, d)
	}
	a, d = s.Stats("unknown")
	if a != 0 || d != 0 {
		t.Fatal("unknown participant should have zero stats")
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := NewStore()
	s.RecordAccept("zeta")
	s.RecordDeny("alpha")
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].ID != "alpha" || snap[1].ID != "zeta" {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if n%2 == 0 {
					s.RecordAccept("shared")
				} else {
					s.RecordDeny("shared")
				}
				_ = s.Score("shared")
			}
		}(i)
	}
	wg.Wait()
	a, d := s.Stats("shared")
	if a != 400 || d != 400 {
		t.Fatalf("lost updates: %d/%d", a, d)
	}
}
