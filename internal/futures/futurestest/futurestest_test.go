package futurestest

import (
	"fmt"
	"math"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/futures"
)

// enabledConfig is the harness's standard treatment config: overbooked
// reservation stage, two-round horizon.
func enabledConfig(workers, shards int) auction.Config {
	cfg := auction.DefaultConfig()
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.Futures = auction.FuturesConfig{
		OverbookRatio:  1.5,
		PenaltyRate:    0.2,
		ReserveHorizon: 2,
	}
	return cfg
}

// TestDisabledIdentityAcrossSeeds is the harness's core guarantee: with
// OverbookRatio=1.0 and ReserveHorizon=0 the exchange is byte-identical
// to plain auction.Run across 50 randomized markets, at worker counts
// {1,4} (run under -race in CI).
func TestDisabledIdentityAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := NewTrace(seed, 36, 3)
		for _, workers := range []int{1, 4} {
			cfg := auction.DefaultConfig()
			cfg.Workers = workers
			if err := CheckDisabledIdentity(cfg, tr); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
		}
	}
}

// TestReplayDeterminism: worker and shard counts of the spot stage must
// not move a single byte of the exchange's observable behavior —
// outcomes, chain head, conservation counters, or live sets.
func TestReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11, 27} {
		tr := NewTrace(seed, 48, 4)
		base, err := Replay(enabledConfig(1, 0), tr, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{0, 4} {
				got, err := Replay(enabledConfig(workers, shards), tr, nil)
				if err != nil {
					t.Fatalf("seed %d workers %d shards %d: %v", seed, workers, shards, err)
				}
				if err := base.Equal(got); err != nil {
					t.Fatalf("seed %d workers %d shards %d: %v", seed, workers, shards, err)
				}
			}
		}
	}
}

// TestReplayConservesAndSettles: over a seed sweep the enabled exchange
// exercises every lifecycle branch, conserves orders (checked per round
// inside Replay), settles everything by the end of the drain, and keeps
// the penalty budget balanced to the cent.
func TestReplayConservesAndSettles(t *testing.T) {
	var agg futures.Stats
	for seed := int64(0); seed < 12; seed++ {
		tr := NewTrace(seed, 48, 4)
		res, err := Replay(enabledConfig(1, 0), tr, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LiveRequests != 0 || res.LiveOffers != 0 {
			t.Fatalf("seed %d: drain left live orders: %d requests, %d offers",
				seed, res.LiveRequests, res.LiveOffers)
		}
		if res.Stats.PenaltiesCollected != res.Stats.PenaltiesCredited {
			t.Fatalf("seed %d: penalty budget unbalanced: %g vs %g",
				seed, res.Stats.PenaltiesCollected, res.Stats.PenaltiesCredited)
		}
		agg.Reservations += res.Stats.Reservations
		agg.Delivered += res.Stats.Delivered
		agg.NoShows += res.Stats.NoShows
		agg.SellerDefaults += res.Stats.SellerDefaults
		agg.SpotMatched += res.Stats.SpotMatched
		agg.Cancels += res.Stats.Cancels
	}
	if agg.Reservations == 0 {
		t.Fatal("seed sweep never made a reservation")
	}
	if agg.Delivered == 0 {
		t.Fatal("seed sweep never delivered a reservation")
	}
	if agg.NoShows == 0 {
		t.Fatal("seed sweep never exercised a buyer no-show")
	}
	if agg.SellerDefaults == 0 {
		t.Fatal("seed sweep never exercised a seller default")
	}
	if agg.SpotMatched == 0 {
		t.Fatal("seed sweep never matched a spot order")
	}
}

// reservationUtility returns the buyer's utility from one reservation
// round under certain delivery (no shocks, no overbooking): true value
// minus payment if reserved, zero otherwise. trueValue is passed
// explicitly because the misreport run rewrites only the Bid.
func reservationUtility(made []*futures.Reservation, id bidding.OrderID, trueValue float64) float64 {
	for _, r := range made {
		if r.Request.ID == id {
			return trueValue - r.Payment
		}
	}
	return 0
}

// runReserveOnly clears one forward-only reservation round and returns
// the contracts made. OverbookRatio is 1.0 and no verdicts are set, so
// every contract here delivers with certainty — reservation-time utility
// IS final utility.
func runReserveOnly(reqs []*bidding.Request, offs []*bidding.Offer) []*futures.Reservation {
	cfg := auction.DefaultConfig()
	cfg.Futures = auction.FuturesConfig{
		OverbookRatio:  1.0,
		PenaltyRate:    0.2,
		ReserveHorizon: 1,
	}
	ex := futures.New(cfg)
	return ex.Reserve(futures.RoundInput{FwdRequests: reqs, FwdOffers: offs})
}

// TestBuyerReservationTruthfulness: across randomized forward markets,
// no sampled misreport (under- or over-bidding by up to 2x) earns any
// buyer more than bidding its true value. The uniform price floor never
// reads the buyer's own bid, so a report only moves priority and the
// trade/no-trade margin — audited here empirically over the deviation
// grid.
func TestBuyerReservationTruthfulness(t *testing.T) {
	factors := []float64{0.5, 0.8, 0.95, 1.1, 1.5, 2.0}
	for seed := int64(0); seed < 16; seed++ {
		tr := NewTrace(seed, 24, 1)
		reqs, offs := tr.Rounds[0].FwdRequests, tr.Rounds[0].FwdOffers
		if len(reqs) == 0 || len(offs) == 0 {
			continue
		}
		truthful := runReserveOnly(reqs, offs)
		for ti, target := range reqs {
			baseline := reservationUtility(truthful, target.ID, target.TrueValue)
			if baseline < -1e-9 {
				t.Fatalf("seed %d: truthful bidding gave %s negative utility %g",
					seed, target.ID, baseline)
			}
			for _, f := range factors {
				misreport := make([]*bidding.Request, len(reqs))
				copy(misreport, reqs)
				lie := *target
				lie.Bid = target.TrueValue * f
				misreport[ti] = &lie
				made := runReserveOnly(misreport, offs)
				if got := reservationUtility(made, target.ID, target.TrueValue); got > baseline+1e-9 {
					t.Fatalf("seed %d: %s profits from bidding %.2gx true value: utility %g > truthful %g",
						seed, target.ID, f, got, baseline)
				}
			}
		}
	}
}

// TestIndividualRationality: every contract the reservation stage makes
// prices inside [seller's unit cost, buyer's unit value] — no truthful
// non-defaulting participant ever trades at a loss — and after a full
// replay, only contract-breakers carry a negative penalty balance.
func TestIndividualRationality(t *testing.T) {
	for _, seed := range []int64{1, 5, 9, 13} {
		tr := NewTrace(seed, 48, 4)
		cfg := enabledConfig(1, 0)
		ex := futures.New(cfg)
		breakers := make(map[bidding.ParticipantID]bool)
		for i, in := range tr.Rounds {
			res := ex.Run(in)
			for _, r := range res.Reserved {
				v := r.Request.Bid / futures.RequestLoad(r.Request)
				c := r.Offer.Bid / futures.OfferCapacity(r.Offer)
				if r.UnitPrice < c-1e-9 || r.UnitPrice > v+1e-9 {
					t.Fatalf("seed %d round %d: contract %s/%s priced %g outside [ĉ=%g, v̂=%g]",
						seed, i, r.Request.ID, r.Offer.ID, r.UnitPrice, c, v)
				}
				if r.Payment > r.Request.Bid+1e-9 {
					t.Fatalf("seed %d round %d: %s pays %g above its bid %g",
						seed, i, r.Request.ID, r.Payment, r.Request.Bid)
				}
			}
			if d := res.Delivery; d != nil {
				for _, r := range d.NoShows {
					breakers[r.Request.Client] = true
				}
				for _, r := range d.Defaults {
					breakers[r.Offer.Provider] = true
				}
				for _, r := range d.Bumped {
					breakers[r.Offer.Provider] = true
				}
			}
		}
		for i := 0; i < cfg.Futures.ReserveHorizon; i++ {
			res := ex.Run(futures.RoundInput{
				Evidence: []byte(fmt.Sprintf("ir-%d-drain-%d", seed, i)),
			})
			if d := res.Delivery; d != nil {
				for _, r := range d.NoShows {
					breakers[r.Request.Client] = true
				}
				for _, r := range d.Defaults {
					breakers[r.Offer.Provider] = true
				}
				for _, r := range d.Bumped {
					breakers[r.Offer.Provider] = true
				}
			}
		}
		// Collect every participant the trace mentions and audit balances.
		parties := make(map[bidding.ParticipantID]bool)
		for _, in := range tr.Rounds {
			for _, r := range append(append([]*bidding.Request{}, in.FwdRequests...), in.SpotRequests...) {
				parties[r.Client] = true
			}
			for _, o := range append(append([]*bidding.Offer{}, in.FwdOffers...), in.SpotOffers...) {
				parties[o.Provider] = true
			}
		}
		var net float64
		for p := range parties {
			bal := ex.PenaltyBalance(p)
			net += bal
			if bal < -1e-9 && !breakers[p] {
				t.Fatalf("seed %d: non-breaker %s has negative penalty balance %g", seed, p, bal)
			}
		}
		if math.Abs(net) > 1e-6 {
			t.Fatalf("seed %d: net penalty balance %g, want 0", seed, net)
		}
	}
}

// TestCancelFlowsThroughReplay: a cancelled reservation pays its
// penalty, frees its capacity, and the conservation identity still
// closes (Replay checks it per round).
func TestCancelFlowsThroughReplay(t *testing.T) {
	tr := NewTrace(7, 48, 3)
	cfg := enabledConfig(1, 0)
	ex := futures.New(cfg)
	cancelled := 0
	for _, in := range tr.Rounds {
		res := ex.Run(in)
		// Cancel the first contract made each round, before it comes due.
		if len(res.Reserved) > 0 {
			id := res.Reserved[0].Request.ID
			if err := ex.Cancel(id); err != nil {
				t.Fatalf("cancel %s: %v", id, err)
			}
			if err := ex.Cancel(id); err == nil {
				t.Fatalf("double-cancel of %s succeeded", id)
			}
			cancelled++
		}
		if err := ex.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cfg.Futures.ReserveHorizon; i++ {
		ex.Run(futures.RoundInput{Evidence: []byte(fmt.Sprintf("cancel-drain-%d", i))})
	}
	if err := ex.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if cancelled == 0 || st.Cancels != int64(cancelled) {
		t.Fatalf("cancels recorded %d, want %d (nonzero)", st.Cancels, cancelled)
	}
	if st.PenaltiesCollected <= 0 {
		t.Fatal("cancels moved no penalty")
	}
}
