// Package futurestest is the differential harness of the two-stage
// futures/spot market (internal/futures), mirroring metrotest one
// subsystem over: seeded multi-round two-stage traces replay through a
// futures.Exchange and through reference models, and every divergence
// is an error.
//
// Three guarantees are enforced:
//
//  1. Disabled identity — with the reservation stage off
//     (ReserveHorizon = 0, OverbookRatio = 1.0) and every order routed
//     spot, each round's Spot outcome must be byte-identical to plain
//     auction.Run over the same orders, config, and evidence.
//  2. Worker/shard independence — the spot stage's parallel fan-out
//     must not change a single outcome byte, a chain head, or a
//     conservation counter at any worker or shard count.
//  3. Conservation — after every round: submitted == rejected +
//     delivered + spot-matched + defaulted + expired + live on the
//     request side, the offer-side analogue, and penalty budget
//     balance (checked by the exchange itself, re-checked here after
//     a full drain when live must be zero).
package futurestest

import (
	"bytes"
	"fmt"
	"math/rand"

	"decloud/internal/auction"
	"decloud/internal/auction/paralleltest"
	"decloud/internal/bidding"
	"decloud/internal/futures"
	"decloud/internal/workload"
)

// Trace is a seeded multi-round two-stage arrival sequence: every order
// appears exactly once, pre-split into the forward and spot stages with
// the divergence verdicts attached.
type Trace struct {
	Seed   int64
	Rounds []futures.RoundInput
}

// NewTrace generates a deterministic trace of roughly n orders split
// across the given number of rounds by a seeded shuffle. The market
// shape varies with the seed — flexibility, forward split, and the
// demand/supply shock rates all sweep with it — so a seed range covers
// calm and divergent regimes alike.
func NewTrace(seed int64, n, rounds int) *Trace {
	if rounds < 1 {
		rounds = 1
	}
	m := workload.Generate(workload.Config{
		Seed:        seed,
		Requests:    n,
		Flexibility: float64(seed%4) * 0.25,
	})
	tm := workload.SplitTwoStage(m, seed,
		0.3+float64(seed%5)*0.1, // forward split 0.3–0.7
		float64(seed%4)*0.1,     // demand shock 0–0.3
		float64(seed%3)*0.1,     // supply shock 0–0.2
	)
	rng := rand.New(rand.NewSource(seed ^ 0x66757475)) // "futu"
	rng.Shuffle(len(tm.Fwd.Requests), func(i, j int) {
		tm.Fwd.Requests[i], tm.Fwd.Requests[j] = tm.Fwd.Requests[j], tm.Fwd.Requests[i]
	})
	rng.Shuffle(len(tm.Spot.Requests), func(i, j int) {
		tm.Spot.Requests[i], tm.Spot.Requests[j] = tm.Spot.Requests[j], tm.Spot.Requests[i]
	})
	tr := &Trace{Seed: seed, Rounds: make([]futures.RoundInput, rounds)}
	for i := range tr.Rounds {
		tr.Rounds[i].Evidence = []byte(fmt.Sprintf("futurestest-%d-%d", seed, i))
		// The verdict maps are keyed by order ID, so sharing the full
		// split verdicts across rounds is sound: each round's Reserve
		// only looks up its own submissions.
		tr.Rounds[i].NoShows = tm.NoShows
		tr.Rounds[i].Defaults = tm.Defaults
	}
	for i, r := range tm.Fwd.Requests {
		tr.Rounds[i%rounds].FwdRequests = append(tr.Rounds[i%rounds].FwdRequests, r)
	}
	for i, o := range tm.Fwd.Offers {
		tr.Rounds[i%rounds].FwdOffers = append(tr.Rounds[i%rounds].FwdOffers, o)
	}
	for i, r := range tm.Spot.Requests {
		tr.Rounds[i%rounds].SpotRequests = append(tr.Rounds[i%rounds].SpotRequests, r)
	}
	for i, o := range tm.Spot.Offers {
		tr.Rounds[i%rounds].SpotOffers = append(tr.Rounds[i%rounds].SpotOffers, o)
	}
	return tr
}

// Result is one replay's observable behavior: the canonical encoding of
// every round's spot outcome (trace rounds plus the drain rounds that
// settle trailing reservations), the final chain head, the final
// conservation counters, and the final live counts. Two replays of the
// same trace under configs that must not change behavior (worker or
// shard count) must produce equal Results.
type Result struct {
	OutcomeJSON              [][]byte
	Head                     [32]byte
	Stats                    futures.Stats
	LiveRequests, LiveOffers int64
}

// Equal reports whether two results are byte-identical.
func (r *Result) Equal(o *Result) error {
	if len(r.OutcomeJSON) != len(o.OutcomeJSON) {
		return fmt.Errorf("round counts differ: %d vs %d", len(r.OutcomeJSON), len(o.OutcomeJSON))
	}
	for i := range r.OutcomeJSON {
		if !bytes.Equal(r.OutcomeJSON[i], o.OutcomeJSON[i]) {
			return fmt.Errorf("round %d: spot outcomes differ:\n%s\nvs\n%s",
				i, r.OutcomeJSON[i], o.OutcomeJSON[i])
		}
	}
	if r.Head != o.Head {
		return fmt.Errorf("chain heads differ: %x vs %x", r.Head, o.Head)
	}
	if r.Stats != o.Stats {
		return fmt.Errorf("stats differ: %+v vs %+v", r.Stats, o.Stats)
	}
	if r.LiveRequests != o.LiveRequests || r.LiveOffers != o.LiveOffers {
		return fmt.Errorf("live counts differ: (%d,%d) vs (%d,%d)",
			r.LiveRequests, r.LiveOffers, o.LiveRequests, o.LiveOffers)
	}
	return nil
}

// Replay runs a trace through a fresh exchange under cfg, checking
// conservation after every round, then drains ReserveHorizon empty
// rounds so every trailing reservation settles before the final state
// is captured. When audit is non-nil it is called once per round
// (including drain rounds) with the round's full result — the
// property-test hook.
func Replay(cfg auction.Config, tr *Trace, audit func(round int, res *futures.RoundResult) error) (*Result, error) {
	ex := futures.New(cfg)
	out := &Result{}
	step := func(round int, in futures.RoundInput) error {
		res := ex.Run(in)
		enc, err := paralleltest.MarshalOutcome(res.Spot)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		out.OutcomeJSON = append(out.OutcomeJSON, enc)
		if audit != nil {
			if err := audit(round, res); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
		}
		if err := ex.CheckConservation(); err != nil {
			return fmt.Errorf("after round %d: %w", round, err)
		}
		return nil
	}
	for i, in := range tr.Rounds {
		if err := step(i, in); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Futures.ReserveHorizon; i++ {
		in := futures.RoundInput{
			Evidence: []byte(fmt.Sprintf("futurestest-%d-drain-%d", tr.Seed, i)),
		}
		if err := step(len(tr.Rounds)+i, in); err != nil {
			return nil, err
		}
	}
	out.Head = ex.Head()
	out.Stats = ex.Stats()
	out.LiveRequests, out.LiveOffers = ex.Live()
	return out, nil
}

// CheckDisabledIdentity replays a trace with the reservation stage
// DISABLED (ReserveHorizon = 0, OverbookRatio = 1.0) and every order —
// forward and spot alike — routed through the spot slots. Each round's
// Spot outcome must be byte-identical to plain auction.Run over the
// same orders, config, and evidence: the delta-settlement path is a
// strict superset of the spot mechanism, never a perturbation of it.
func CheckDisabledIdentity(cfg auction.Config, tr *Trace) error {
	cfg.Futures = auction.FuturesConfig{OverbookRatio: 1.0}
	ex := futures.New(cfg)
	for i, in := range tr.Rounds {
		// Route BOTH stages through the spot slots: with the stage
		// disabled, forward submissions would be rejected as misroutings
		// — the identity is about spot behavior, not intake policing.
		reqs := append(append([]*bidding.Request{}, in.FwdRequests...), in.SpotRequests...)
		offs := append(append([]*bidding.Offer{}, in.FwdOffers...), in.SpotOffers...)
		res := ex.Run(futures.RoundInput{
			SpotRequests: reqs,
			SpotOffers:   offs,
			Evidence:     in.Evidence,
		})
		if len(res.Reserved) != 0 || res.Delivery != nil {
			return fmt.Errorf("round %d: disabled stage produced futures activity: %d reserved, delivery %v",
				i, len(res.Reserved), res.Delivery != nil)
		}
		gotJSON, err := paralleltest.MarshalOutcome(res.Spot)
		if err != nil {
			return err
		}
		acfg := cfg
		acfg.Evidence = in.Evidence
		plain := auction.Run(reqs, offs, acfg)
		wantJSON, err := paralleltest.MarshalOutcome(plain)
		if err != nil {
			return err
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			return fmt.Errorf("round %d: disabled exchange diverges from plain auction.Run:\nexchange %s\nplain    %s",
				i, gotJSON, wantJSON)
		}
		if err := ex.CheckConservation(); err != nil {
			return fmt.Errorf("after round %d: %w", i, err)
		}
	}
	st := ex.Stats()
	if st.Reservations != 0 || st.PenaltiesCollected != 0 || st.PenaltiesCredited != 0 {
		return fmt.Errorf("disabled stage moved futures state: %+v", st)
	}
	if liveR, liveO := ex.Live(); liveR != 0 || liveO != 0 {
		return fmt.Errorf("disabled stage left live orders: %d requests, %d offers", liveR, liveO)
	}
	return nil
}
