// Package futures implements the two-stage futures/spot market: a
// reservation stage sells forward contracts for delivery ReserveHorizon
// rounds ahead — up to OverbookRatio × an offer's declared aggregate
// capacity — and the existing spot mechanism (auction.Run) settles only
// the unreserved remainder plus the fallout of broken reservations.
//
// The scenario follows "Effective Two-Stage Double Auction for Dynamic
// Resource Provision over Edge Networks via Overbooking" (PAPERS.md):
// selling beyond declared capacity bets on demand divergence between
// reservation and delivery. Buyers that no-show and sellers whose
// capacity fails to materialize pay penalty fees to their counterparty;
// in ledger mode those breaks additionally flow through the contract
// registry's deny path, so reputation prices forward reliability.
//
// Determinism invariants (enforced by futures/futurestest):
//   - With the stage disabled (ReserveHorizon = 0) a Round is
//     byte-identical to plain auction.Run over the same orders.
//   - The reservation stage is a pure function of (config, submitted
//     orders, verdicts): price-priority with lexicographic ID
//     tie-breaks, no map iteration reaches an outcome, no clock and no
//     unkeyed randomness is ever read.
//   - Every state transition folds into a SHA-256 hash chain (Head), so
//     two replicas that processed the same rounds agree byte-for-byte.
package futures

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Status is the lifecycle state of a reservation.
type Status int

// Reservation lifecycle. Pending → Delivered | NoShow | Defaulted |
// Bumped | Cancelled. Only Delivered moves money at the reserved price;
// every other terminal state moves a penalty from the breaking party to
// its counterparty.
const (
	// Pending awaits its delivery round.
	Pending Status = iota
	// Delivered executed: the buyer pays Payment, the seller hosts.
	Delivered
	// NoShow: the buyer vanished before delivery (demand shock). The
	// buyer pays the penalty; the freed capacity serves other
	// reservations or the spot market.
	NoShow
	// Defaulted: the seller's capacity never materialized (supply
	// shock). The seller pays the penalty; the buyer's request retries
	// in the same round's spot market.
	Defaulted
	// Bumped: the seller materialized but had oversold — the
	// reservation lost the price-priority re-admission into real
	// capacity. The seller pays the penalty; the buyer retries spot.
	Bumped
	// Cancelled: the buyer backed out before delivery. The buyer pays
	// the penalty; the capacity is released for the spot remainder.
	Cancelled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Delivered:
		return "delivered"
	case NoShow:
		return "noshow"
	case Defaulted:
		return "defaulted"
	case Bumped:
		return "bumped"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Reservation is one forward contract: request r hosted on offer o at
// delivery round DueRound, at a unit price fixed when the contract was
// made. Payment = UnitPrice × Load and moves only on delivery.
type Reservation struct {
	Request   *bidding.Request
	Offer     *bidding.Offer
	UnitPrice float64 // price per resource·time unit
	Load      float64 // aggregate resource·time units reserved
	Payment   float64 // UnitPrice × Load
	MadeRound int64
	DueRound  int64
	Status    Status
	// NoShowVerdict and DefaultVerdict are the divergence verdicts
	// attached at reservation time (the workload knows which orders
	// will survive to delivery) and applied only at the delivery round.
	NoShowVerdict  bool
	DefaultVerdict bool

	fo *fwdOffer // capacity bookkeeping back-pointer
}

// fwdOffer tracks one forward offer's sold capacity until delivery.
type fwdOffer struct {
	offer     *bidding.Offer
	defaulted bool
	reserved  resource.Vector // aggregate resource·time reserved per kind
	res       []*Reservation  // in reservation order
}

// fwdRequest is a forward request that holds no reservation (no feasible
// offer, capacity-excluded, or priced out) and therefore shows up — if
// its buyer shows up at all — in its delivery round's spot market.
type fwdRequest struct {
	req    *bidding.Request
	noShow bool
}

// Stats holds the exchange's cumulative conservation counters. Every
// submitted order ends in exactly one terminal bucket (or is still
// live); CheckConservation enforces the identity after every round.
type Stats struct {
	Rounds int64

	// Request fates.
	SubmittedRequests int64 // forward + native spot requests accepted for processing
	RejectedRequests  int64 // failed validation (forward intake or spot intake)
	Delivered         int64 // executed via a delivered reservation
	SpotMatched       int64 // matched in a spot round (native or retried)
	DefaultedRequests int64 // terminal buyer-side breaks: no-shows + cancels
	Expired           int64 // cleared a spot round unmatched

	// Offer fates.
	SubmittedOffers    int64 // forward + native spot offers accepted for processing
	RejectedOffers     int64
	DefaultedOffers    int64 // forward offers whose capacity never materialized
	MaterializedOffers int64 // entered a spot round (native or forward remainder)

	// Reservation events (not fates — a bumped request's fate is decided
	// by its spot retry).
	Reservations   int64 // forward contracts made
	NoShows        int64 // reservations broken by the buyer
	SellerDefaults int64 // reservations broken by a defaulting seller
	Bumps          int64 // reservations broken by overbooking at delivery
	Cancels        int64 // reservations cancelled by the buyer pre-delivery
	PricedOut      int64 // assignments dropped by the uniform price floor

	// Penalty flow, cumulative. Budget balance (Collected == Credited)
	// holds by construction and is property-tested.
	PenaltiesCollected float64
	PenaltiesCredited  float64
}

// Delivery is the settlement of every reservation due in one round.
type Delivery struct {
	Round      int64
	Delivered  []*Reservation
	NoShows    []*Reservation
	Defaults   []*Reservation
	Bumped     []*Reservation
	Unreserved int // forward requests that held no reservation and showed up
	// RetryRequests are the requests of broken reservations (seller
	// default, bump) plus surviving unreserved forwards — the spot
	// market clears them alongside the round's native spot orders.
	RetryRequests []*bidding.Request
	// RemainderOffers are the due forward offers' unreserved capacity,
	// scaled per kind; a fully unreserved offer passes through as the
	// original pointer.
	RemainderOffers []*bidding.Offer
	// PenaltyCollected/Credited are this delivery's penalty flow.
	PenaltyCollected float64
	PenaltyCredited  float64
}

// RoundInput is one round's submissions, pre-split into the forward
// (reservation) and spot stages. Verdict maps carry the demand
// divergence: NoShows marks forward requests whose buyer will not
// appear at delivery, Defaults marks forward offers whose capacity will
// not materialize. Both are applied at the delivery round only.
type RoundInput struct {
	FwdRequests  []*bidding.Request
	FwdOffers    []*bidding.Offer
	SpotRequests []*bidding.Request
	SpotOffers   []*bidding.Offer
	NoShows      map[bidding.OrderID]bool
	Defaults     map[bidding.OrderID]bool
	// Evidence seeds the spot mechanism's randomized exclusion, exactly
	// as auction.Config.Evidence does.
	Evidence []byte
}

// RoundResult is one full two-stage round.
type RoundResult struct {
	Round    int64
	Reserved []*Reservation // forward contracts made this round
	Delivery *Delivery      // settlements due this round (nil if none were due)
	Spot     *auction.Outcome
	// Utilization is the round's realized utilization: delivered
	// resource·time (reservations + spot matches) over the aggregate
	// capacity that actually materialized this round (non-defaulted due
	// forward offers at full declared capacity + native spot offers).
	// 0 when no capacity materialized.
	Utilization float64
	// PenaltyCollected/Credited are the round's penalty flow (delivery
	// breaks + cancels recorded since the previous round).
	PenaltyCollected float64
	PenaltyCredited  float64
}

// Exchange is the futures market state: pending forward contracts keyed
// by delivery round, per-offer sold-capacity bookkeeping, cumulative
// conservation counters, and the hash-chained head. Not safe for
// concurrent use.
type Exchange struct {
	cfg   auction.Config
	fut   auction.FuturesConfig
	round int64
	head  [32]byte

	dueRes map[int64][]*Reservation
	dueOff map[int64][]*fwdOffer
	dueReq map[int64][]*fwdRequest
	byReq  map[bidding.OrderID]*Reservation

	// retryIDs marks request IDs the current round's spot stage received
	// from the delivery path, so RecordSpot does not double-count them
	// as fresh submissions.
	retryIDs map[bidding.OrderID]bool
	// remainderIDs marks forward-offer remainders in the spot stage for
	// the same reason.
	remainderIDs map[bidding.OrderID]bool
	// pendingCancelCollected/Credited accumulate penalty flow from
	// Cancel calls between rounds; folded into the next RoundResult.
	pendingCancelCollected float64
	pendingCancelCredited  float64

	// penalties is the net penalty balance per participant
	// (credits − debits); Σ over all parties is 0 by construction.
	penalties map[bidding.ParticipantID]float64

	stats Stats
}

// New builds an exchange. cfg.Futures configures the reservation stage;
// the rest of cfg tunes the spot mechanism exactly as auction.Run does.
func New(cfg auction.Config) *Exchange {
	return &Exchange{
		cfg:       cfg,
		fut:       cfg.Futures,
		dueRes:    make(map[int64][]*Reservation),
		dueOff:    make(map[int64][]*fwdOffer),
		dueReq:    make(map[int64][]*fwdRequest),
		byReq:     make(map[bidding.OrderID]*Reservation),
		penalties: make(map[bidding.ParticipantID]float64),
	}
}

// Round returns the next round number to be executed.
func (ex *Exchange) Round() int64 { return ex.round }

// Head returns the hash-chained state head.
func (ex *Exchange) Head() [32]byte { return ex.head }

// Stats returns a copy of the cumulative counters.
func (ex *Exchange) Stats() Stats { return ex.stats }

// PenaltyBalance returns a participant's net penalty flow
// (credits received − penalties paid).
func (ex *Exchange) PenaltyBalance(id bidding.ParticipantID) float64 {
	return ex.penalties[id]
}

// unitLoad returns the aggregate resource·time a request consumes:
// Σ_k r.Resources[k] × Duration, summed in sorted kind order so the
// float result is deterministic.
func unitLoad(r *bidding.Request) float64 {
	var sum float64
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		sum += r.Resources[k]
	}
	return sum * float64(r.Duration)
}

// offerCapacity returns the aggregate resource·time an offer declares:
// Σ_k o.Resources[k] × Window.
func offerCapacity(o *bidding.Offer) float64 {
	var sum float64
	var buf [8]resource.Kind
	for _, k := range o.Resources.AppendKinds(buf[:0]) {
		sum += o.Resources[k]
	}
	return sum * float64(o.Window())
}

// unitValue is v̂_r in reservation terms: bid per resource·time unit.
func unitValue(r *bidding.Request) float64 { return r.Bid / unitLoad(r) }

// unitCost is ĉ_o: the offer's asking price per resource·time unit.
func unitCost(o *bidding.Offer) float64 { return o.Bid / offerCapacity(o) }

// Reserve clears the round's forward stage: a deterministic
// price-priority allocation of forward requests onto forward offers for
// delivery ReserveHorizon rounds ahead, with aggregate capacity sold up
// to OverbookRatio × declared. Pricing is uniform-floor: every contract
// pays max(ĉ of its offer, the highest v̂ among capacity-excluded
// requests), which keeps the buyer side truthful — a bid moves priority
// and the trade/no-trade margin, never the price paid below the floor.
// Assignments whose floor exceeds the buyer's own v̂ are dropped
// (individual rationality), joining the unreserved pool that shows up
// in the delivery round's spot market.
//
// Invalid orders are rejected; with the stage disabled every forward
// order is rejected as a misrouting (callers must send orders spot).
func (ex *Exchange) Reserve(in RoundInput) []*Reservation {
	if !ex.fut.Enabled() || (len(in.FwdRequests) == 0 && len(in.FwdOffers) == 0) {
		return nil
	}
	due := ex.round + int64(ex.fut.ReserveHorizon)
	ratio := ex.fut.Ratio()

	// Intake: validate, then sort offers by (ĉ asc, ID) and requests by
	// (v̂ desc, ID) — price priority with deterministic tie-breaks.
	var fos []*fwdOffer
	for _, o := range in.FwdOffers {
		ex.stats.SubmittedOffers++
		if o.Validate() != nil {
			ex.stats.RejectedOffers++
			continue
		}
		fos = append(fos, &fwdOffer{
			offer:     o,
			defaulted: in.Defaults[o.ID],
			reserved:  resource.Vector{},
		})
	}
	sort.Slice(fos, func(i, j int) bool {
		ci, cj := unitCost(fos[i].offer), unitCost(fos[j].offer)
		if ci != cj {
			return ci < cj
		}
		return fos[i].offer.ID < fos[j].offer.ID
	})
	var reqs []*bidding.Request
	for _, r := range in.FwdRequests {
		ex.stats.SubmittedRequests++
		if r.Validate() != nil {
			ex.stats.RejectedRequests++
			continue
		}
		reqs = append(reqs, r)
	}
	sort.Slice(reqs, func(i, j int) bool {
		vi, vj := unitValue(reqs[i]), unitValue(reqs[j])
		if vi != vj {
			return vi > vj
		}
		return reqs[i].ID < reqs[j].ID
	})

	// Greedy placement in priority order: each request lands on the
	// cheapest compatible offer with overbookable room left. A request
	// that found a compatible offer but no room is capacity-excluded;
	// the highest such v̂ becomes the uniform price floor.
	type placement struct {
		r  *bidding.Request
		fo *fwdOffer
	}
	var placed []placement
	var unplaced []*bidding.Request
	var excludedHigh float64
	for _, r := range reqs {
		v := unitValue(r)
		var target *fwdOffer
		sawFull := false
		for _, fo := range fos {
			o := fo.offer
			if !bidding.TimeCompatible(r, o) || !r.WithinReach(o) {
				continue
			}
			if !o.Resources.Covers(r.Resources) {
				continue // a single grant never exceeds the machine
			}
			if ex.cfg.Reputation != nil && o.MinReputation > 0 &&
				ex.cfg.Reputation.Score(r.Client) < o.MinReputation {
				continue
			}
			if v < unitCost(o) {
				break // offers are ĉ-ascending: no profitable offer remains
			}
			if !fitsOverbooked(fo, r, ratio) {
				sawFull = true
				continue
			}
			target = fo
			break
		}
		if target == nil {
			if sawFull && v > excludedHigh {
				excludedHigh = v
			}
			unplaced = append(unplaced, r)
			continue
		}
		reserveLoad(target, r)
		placed = append(placed, placement{r: r, fo: target})
	}

	// Price and commit. The floor never reads the buyer's own bid; a
	// floor above the buyer's v̂ kills the marginal contract instead of
	// charging beyond the bid.
	var made []*Reservation
	for _, p := range placed {
		price := unitCost(p.fo.offer)
		if excludedHigh > price {
			price = excludedHigh
		}
		if price > unitValue(p.r) {
			releaseLoad(p.fo, p.r)
			ex.stats.PricedOut++
			unplaced = append(unplaced, p.r)
			continue
		}
		load := unitLoad(p.r)
		res := &Reservation{
			Request:        p.r,
			Offer:          p.fo.offer,
			UnitPrice:      price,
			Load:           load,
			Payment:        price * load,
			MadeRound:      ex.round,
			DueRound:       due,
			Status:         Pending,
			NoShowVerdict:  in.NoShows[p.r.ID],
			DefaultVerdict: p.fo.defaulted,
			fo:             p.fo,
		}
		p.fo.res = append(p.fo.res, res)
		ex.byReq[p.r.ID] = res
		ex.dueRes[due] = append(ex.dueRes[due], res)
		made = append(made, res)
		ex.stats.Reservations++
	}
	for _, fo := range fos {
		ex.dueOff[due] = append(ex.dueOff[due], fo)
	}
	// unplaced preserves priority order, which is deterministic; re-sort
	// by ID so delivery-round retry order is independent of the pricing
	// pass's internal ordering.
	sort.Slice(unplaced, func(i, j int) bool { return unplaced[i].ID < unplaced[j].ID })
	for _, r := range unplaced {
		ex.dueReq[due] = append(ex.dueReq[due], &fwdRequest{req: r, noShow: in.NoShows[r.ID]})
	}
	return made
}

// fitsOverbooked reports whether r's aggregate load still fits offer
// fo's remaining overbookable capacity on every kind.
func fitsOverbooked(fo *fwdOffer, r *bidding.Request, ratio float64) bool {
	window := float64(fo.offer.Window())
	dur := float64(r.Duration)
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		if fo.reserved[k]+r.Resources[k]*dur > ratio*fo.offer.Resources[k]*window {
			return false
		}
	}
	return true
}

func reserveLoad(fo *fwdOffer, r *bidding.Request) {
	dur := float64(r.Duration)
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		fo.reserved[k] += r.Resources[k] * dur
	}
}

func releaseLoad(fo *fwdOffer, r *bidding.Request) {
	dur := float64(r.Duration)
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		fo.reserved[k] -= r.Resources[k] * dur
		if fo.reserved[k] < 0 {
			fo.reserved[k] = 0
		}
	}
}

// Cancel backs the buyer out of a pending reservation: the buyer pays
// the penalty, the capacity is released, and the contract is terminal.
func (ex *Exchange) Cancel(requestID bidding.OrderID) error {
	res, ok := ex.byReq[requestID]
	if !ok || res.Status != Pending {
		return fmt.Errorf("futures: no pending reservation for request %s", requestID)
	}
	res.Status = Cancelled
	releaseLoad(res.fo, res.Request)
	delete(ex.byReq, requestID)
	pen := ex.fut.PenaltyRate * res.Payment
	ex.payPenalty(res.Request.Client, res.Offer.Provider, pen)
	ex.pendingCancelCollected += pen
	ex.pendingCancelCredited += pen
	ex.stats.Cancels++
	ex.stats.DefaultedRequests++
	return nil
}

// payPenalty moves pen from debtor to creditor in the balance map and
// the cumulative counters.
func (ex *Exchange) payPenalty(debtor, creditor bidding.ParticipantID, pen float64) {
	ex.penalties[debtor] -= pen
	ex.penalties[creditor] += pen
	ex.stats.PenaltiesCollected += pen
	ex.stats.PenaltiesCredited += pen
}

// Deliver settles every reservation due at the current round: seller
// defaults fail all their contracts, no-show buyers forfeit theirs, and
// the survivors re-enter real (1.0×) capacity in price-priority order —
// the overflow of an overbooked offer is bumped. Broken-contract
// requests and surviving unreserved forwards retry in this round's spot
// market; unreserved offer capacity joins it as remainder offers.
func (ex *Exchange) Deliver() *Delivery {
	fos := ex.dueOff[ex.round]
	frs := ex.dueReq[ex.round]
	if len(fos) == 0 && len(frs) == 0 && len(ex.dueRes[ex.round]) == 0 {
		return nil
	}
	delete(ex.dueOff, ex.round)
	delete(ex.dueReq, ex.round)
	delete(ex.dueRes, ex.round)
	d := &Delivery{Round: ex.round}
	penalty := func(debtor, creditor bidding.ParticipantID, res *Reservation) {
		pen := ex.fut.PenaltyRate * res.Payment
		ex.payPenalty(debtor, creditor, pen)
		d.PenaltyCollected += pen
		d.PenaltyCredited += pen
	}
	for _, fo := range fos {
		// Partition the offer's contracts; cancelled ones are already
		// terminal and hold no capacity.
		var live []*Reservation
		for _, res := range fo.res {
			if res.Status != Pending {
				continue
			}
			delete(ex.byReq, res.Request.ID)
			switch {
			case fo.defaulted:
				res.Status = Defaulted
				penalty(res.Offer.Provider, res.Request.Client, res)
				ex.stats.SellerDefaults++
				d.Defaults = append(d.Defaults, res)
				if !res.NoShowVerdict {
					d.RetryRequests = append(d.RetryRequests, res.Request)
				} else {
					ex.stats.DefaultedRequests++
					ex.stats.NoShows++
				}
			case res.NoShowVerdict:
				res.Status = NoShow
				penalty(res.Request.Client, res.Offer.Provider, res)
				ex.stats.NoShows++
				ex.stats.DefaultedRequests++
				d.NoShows = append(d.NoShows, res)
			default:
				live = append(live, res)
			}
		}
		if fo.defaulted {
			ex.stats.DefaultedOffers++
			continue // the capacity never materialized: nothing enters spot
		}
		// Re-admit survivors into REAL capacity in price priority
		// (v̂ desc, ID) — the order they were reserved in is already
		// priority order within this offer, but no-shows freed room, so
		// recompute the packing from zero.
		sort.Slice(live, func(i, j int) bool {
			vi, vj := unitValue(live[i].Request), unitValue(live[j].Request)
			if vi != vj {
				return vi > vj
			}
			return live[i].Request.ID < live[j].Request.ID
		})
		realUsed := resource.Vector{}
		window := float64(fo.offer.Window())
		for _, res := range live {
			if fits(realUsed, res.Request, fo.offer, window) {
				addLoad(realUsed, res.Request)
				res.Status = Delivered
				ex.stats.Delivered++
				d.Delivered = append(d.Delivered, res)
			} else {
				res.Status = Bumped
				penalty(res.Offer.Provider, res.Request.Client, res)
				ex.stats.Bumps++
				d.Bumped = append(d.Bumped, res)
				d.RetryRequests = append(d.RetryRequests, res.Request)
			}
		}
		ex.stats.MaterializedOffers++
		if rem := remainderOffer(fo.offer, realUsed, window); rem != nil {
			d.RemainderOffers = append(d.RemainderOffers, rem)
		}
	}
	for _, fr := range frs {
		d.Unreserved++
		if fr.noShow {
			ex.stats.DefaultedRequests++
			ex.stats.NoShows++
			continue
		}
		d.RetryRequests = append(d.RetryRequests, fr.req)
	}
	// Deterministic spot intake order for the retries: by ID.
	sort.Slice(d.RetryRequests, func(i, j int) bool {
		return d.RetryRequests[i].ID < d.RetryRequests[j].ID
	})
	return d
}

func fits(used resource.Vector, r *bidding.Request, o *bidding.Offer, window float64) bool {
	dur := float64(r.Duration)
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		if used[k]+r.Resources[k]*dur > o.Resources[k]*window {
			return false
		}
	}
	return true
}

func addLoad(used resource.Vector, r *bidding.Request) {
	dur := float64(r.Duration)
	var buf [8]resource.Kind
	for _, k := range r.Resources.AppendKinds(buf[:0]) {
		used[k] += r.Resources[k] * dur
	}
}

// remainderOffer scales the offer's declared vector down to the
// capacity its delivered reservations left over. A fully unreserved
// offer is passed through as the ORIGINAL pointer — the delta
// settlement must not perturb untouched orders. nil when nothing
// meaningful remains.
func remainderOffer(o *bidding.Offer, used resource.Vector, window float64) *bidding.Offer {
	if used.IsZero() {
		return o
	}
	rem := resource.Vector{}
	var buf [8]resource.Kind
	for _, k := range o.Resources.AppendKinds(buf[:0]) {
		left := o.Resources[k] - used[k]/window
		if left > 0 {
			rem[k] = left
		}
	}
	if rem.IsZero() {
		return nil
	}
	fresh := *o
	fresh.Resources = rem
	// The asking price shrinks with the capacity, keeping ĉ constant:
	// the provider's marginal cost per unit does not change because
	// part of the machine is reserved.
	fresh.Bid = o.Bid * (offerCapacity(&fresh) / offerCapacity(o))
	fresh.TrueCost = o.TrueCost * (offerCapacity(&fresh) / offerCapacity(o))
	return &fresh
}

// SpotMarket composes the round's spot inputs: native spot orders plus
// the delivery fallout. With the stage disabled this is the identity on
// the native orders — the same pointers, in the same order.
func (ex *Exchange) SpotMarket(d *Delivery, spotR []*bidding.Request, spotO []*bidding.Offer) ([]*bidding.Request, []*bidding.Offer) {
	ex.retryIDs = nil
	ex.remainderIDs = nil
	if d == nil {
		return spotR, spotO
	}
	reqs := spotR
	offs := spotO
	if len(d.RetryRequests) > 0 {
		ex.retryIDs = make(map[bidding.OrderID]bool, len(d.RetryRequests))
		reqs = append(append([]*bidding.Request{}, spotR...), d.RetryRequests...)
		for _, r := range d.RetryRequests {
			ex.retryIDs[r.ID] = true
		}
	}
	if len(d.RemainderOffers) > 0 {
		ex.remainderIDs = make(map[bidding.OrderID]bool, len(d.RemainderOffers))
		offs = append(append([]*bidding.Offer{}, spotO...), d.RemainderOffers...)
		for _, o := range d.RemainderOffers {
			ex.remainderIDs[o.ID] = true
		}
	}
	return reqs, offs
}

// RecordSpot folds a committed spot outcome into the fate counters and
// the hash chain, and advances the round. reqs/offs must be exactly
// what the spot stage cleared (the slices SpotMarket returned).
func (ex *Exchange) RecordSpot(res *RoundResult, out *auction.Outcome, reqs []*bidding.Request, offs []*bidding.Offer) {
	rejectedR := make(map[bidding.OrderID]bool, len(out.RejectedRequests))
	for _, id := range out.RejectedRequests {
		rejectedR[id] = true
	}
	rejectedO := make(map[bidding.OrderID]bool, len(out.RejectedOffers))
	for _, id := range out.RejectedOffers {
		rejectedO[id] = true
	}
	matched := make(map[bidding.OrderID]bool, len(out.Matches))
	for i := range out.Matches {
		matched[out.Matches[i].Request.ID] = true
	}
	for _, r := range reqs {
		retry := ex.retryIDs[r.ID]
		if !retry {
			ex.stats.SubmittedRequests++
		}
		switch {
		case matched[r.ID]:
			ex.stats.SpotMatched++
		case rejectedR[r.ID] && !retry:
			ex.stats.RejectedRequests++
		default:
			ex.stats.Expired++
		}
	}
	for _, o := range offs {
		if ex.remainderIDs[o.ID] {
			continue // counted Materialized at delivery
		}
		ex.stats.SubmittedOffers++
		if rejectedO[o.ID] {
			ex.stats.RejectedOffers++
		} else {
			ex.stats.MaterializedOffers++
		}
	}
	ex.retryIDs = nil
	ex.remainderIDs = nil
	ex.stats.Rounds++

	res.Spot = out
	res.PenaltyCollected += ex.pendingCancelCollected
	res.PenaltyCredited += ex.pendingCancelCredited
	ex.pendingCancelCollected, ex.pendingCancelCredited = 0, 0
	if res.Delivery != nil {
		res.PenaltyCollected += res.Delivery.PenaltyCollected
		res.PenaltyCredited += res.Delivery.PenaltyCredited
	}
	res.Utilization = ex.utilization(res, out, offs)
	ex.chain(res, out)
	ex.round++
}

// utilization computes realized utilization for the round: matched
// resource·time over materialized capacity. Materialized capacity is
// every offer the spot stage saw (remainders count at their FULL
// declared capacity via the delivered load they already host) — i.e.
// non-defaulted supply present this round.
func (ex *Exchange) utilization(res *RoundResult, out *auction.Outcome, offs []*bidding.Offer) float64 {
	var capacity, used float64
	for _, o := range offs {
		capacity += offerCapacity(o)
	}
	if res.Delivery != nil {
		// Delivered reservations occupy capacity the remainder offers no
		// longer declare; add both sides back.
		for _, r := range res.Delivery.Delivered {
			capacity += r.Load
			used += r.Load
		}
	}
	for i := range out.Matches {
		m := &out.Matches[i]
		var buf [8]resource.Kind
		dur := float64(m.Request.Duration)
		for _, k := range m.Granted.AppendKinds(buf[:0]) {
			used += m.Granted[k] * dur
		}
	}
	if capacity <= 0 {
		return 0
	}
	return used / capacity
}

// Run executes one full two-stage round in-process: reserve → deliver →
// spot (auction.Run) → record. With the reservation stage disabled and
// all orders routed spot, the result's Spot outcome is byte-identical
// to plain auction.Run over the same orders — the futurestest identity.
func (ex *Exchange) Run(in RoundInput) *RoundResult {
	res := &RoundResult{Round: ex.round}
	res.Reserved = ex.Reserve(in)
	res.Delivery = ex.Deliver()
	reqs, offs := ex.SpotMarket(res.Delivery, in.SpotRequests, in.SpotOffers)
	acfg := ex.cfg
	acfg.Evidence = in.Evidence
	out := auction.Run(reqs, offs, acfg)
	ex.RecordSpot(res, out, reqs, offs)
	return res
}

// Live returns the count of pending reservations plus unreserved
// forward requests awaiting their delivery round.
func (ex *Exchange) Live() (requests, offers int64) {
	for _, list := range ex.dueRes {
		for _, r := range list {
			if r.Status == Pending {
				requests++
			}
		}
	}
	for _, list := range ex.dueReq {
		requests += int64(len(list))
	}
	for _, list := range ex.dueOff {
		offers += int64(len(list))
	}
	return requests, offers
}

// CheckConservation audits the exchange's conservation identity:
//
//	submitted == rejected + delivered + spot-matched + defaulted +
//	             expired + live
//
// on the request side, and the offer-side analogue, plus penalty budget
// balance. An error here means an order fell through the lifecycle.
func (ex *Exchange) CheckConservation() error {
	liveR, liveO := ex.Live()
	s := ex.stats
	gotR := s.RejectedRequests + s.Delivered + s.SpotMatched +
		s.DefaultedRequests + s.Expired + liveR
	if gotR != s.SubmittedRequests {
		return fmt.Errorf("futures: request conservation broken: rejected %d + delivered %d + spot %d + defaulted %d + expired %d + live %d = %d, want submitted %d",
			s.RejectedRequests, s.Delivered, s.SpotMatched, s.DefaultedRequests, s.Expired, liveR, gotR, s.SubmittedRequests)
	}
	gotO := s.RejectedOffers + s.DefaultedOffers + s.MaterializedOffers + liveO
	if gotO != s.SubmittedOffers {
		return fmt.Errorf("futures: offer conservation broken: rejected %d + defaulted %d + materialized %d + live %d = %d, want submitted %d",
			s.RejectedOffers, s.DefaultedOffers, s.MaterializedOffers, liveO, gotO, s.SubmittedOffers)
	}
	if s.PenaltiesCollected != s.PenaltiesCredited {
		return fmt.Errorf("futures: penalty flow unbalanced: collected %.9g, credited %.9g",
			s.PenaltiesCollected, s.PenaltiesCredited)
	}
	var net float64
	for _, v := range ex.penalties {
		net += v
	}
	if net > 1e-6 || net < -1e-6 {
		return fmt.Errorf("futures: net penalty balance %.9g, want 0", net)
	}
	return nil
}

// chain folds the round transition into the hash-chained head: the
// round number, every contract made, every settlement verdict, the
// canonical spot outcome bytes, and the penalty flow.
func (ex *Exchange) chain(res *RoundResult, out *auction.Outcome) {
	var b strings.Builder
	fmt.Fprintf(&b, "round %d\n", res.Round)
	for _, r := range res.Reserved {
		fmt.Fprintf(&b, "reserve %s %s %.9g %.9g %v %v\n",
			r.Request.ID, r.Offer.ID, r.UnitPrice, r.Payment, r.NoShowVerdict, r.DefaultVerdict)
	}
	if d := res.Delivery; d != nil {
		for _, set := range [][]*Reservation{d.Delivered, d.NoShows, d.Defaults, d.Bumped} {
			for _, r := range set {
				fmt.Fprintf(&b, "settle %s %s\n", r.Request.ID, r.Status)
			}
		}
	}
	spotBytes, err := json.Marshal(out)
	if err != nil {
		// The outcome is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("futures: marshal outcome: %v", err))
	}
	spotSum := sha256.Sum256(spotBytes)
	fmt.Fprintf(&b, "spot %x\n", spotSum)
	fmt.Fprintf(&b, "penalty %.9g %.9g\n", res.PenaltyCollected, res.PenaltyCredited)
	h := sha256.New()
	h.Write(ex.head[:])
	h.Write([]byte(b.String()))
	copy(ex.head[:], h.Sum(nil))
}

// RequestLoad exposes the aggregate resource·time a request consumes —
// the unit the reservation stage prices in.
func RequestLoad(r *bidding.Request) float64 { return unitLoad(r) }

// OfferCapacity exposes the aggregate resource·time an offer declares.
func OfferCapacity(o *bidding.Offer) float64 { return offerCapacity(o) }

// GrantedLoad is the resource·time a spot match actually occupies.
func GrantedLoad(m *auction.Match) float64 {
	var sum float64
	var buf [8]resource.Kind
	for _, k := range m.Granted.AppendKinds(buf[:0]) {
		sum += m.Granted[k]
	}
	return sum * float64(m.Request.Duration)
}

// DeliveredWelfare is the true-value welfare the delivery realized:
// Σ over delivered reservations of TrueValue minus the share of the
// offer's true cost the reservation's load occupies.
func (d *Delivery) DeliveredWelfare() float64 {
	if d == nil {
		return 0
	}
	var w float64
	for _, res := range d.Delivered {
		w += res.Request.TrueValue - res.Offer.TrueCost*(res.Load/offerCapacity(res.Offer))
	}
	return w
}

// DeliveredPayments sums the payments the delivery moved.
func (d *Delivery) DeliveredPayments() float64 {
	if d == nil {
		return 0
	}
	var p float64
	for _, res := range d.Delivered {
		p += res.Payment
	}
	return p
}
