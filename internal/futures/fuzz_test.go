package futures

import (
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/workload"
)

// fuzzOp is one decoded lifecycle operation: either a full two-stage
// round over a slice of the base market (with verdict bits), or a
// cancel of a previously made reservation.
type fuzzOp struct {
	cancel   bool
	sel      byte // round: selection start / cancel: reservation index
	bits     byte // round: verdict + width bits
	evidence string
}

// decodeFuzzOps parses raw fuzz data into a bounded op log: 3 bytes per
// op, at most 24 ops.
func decodeFuzzOps(data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+2 < len(data) && len(ops) < 24; i += 3 {
		ops = append(ops, fuzzOp{
			cancel:   data[i]%4 == 3,
			sel:      data[i+1],
			bits:     data[i+2],
			evidence: fmt.Sprintf("fuzz-%d", len(ops)),
		})
	}
	return ops
}

// applyFuzzOps replays an op log on a fresh exchange over the shared
// base market, namespacing every submitted order by op index so the
// exchange never sees a duplicate ID. When check is non-nil it runs
// after every op (the live run audits conservation; the oracle run
// skips it). Returns the exchange for final-state comparison.
func applyFuzzOps(base *workload.Market, ops []fuzzOp, check func(op int, ex *Exchange) error) (*Exchange, error) {
	cfg := auction.DefaultConfig()
	cfg.Futures = auction.FuturesConfig{
		OverbookRatio:  1.5,
		PenaltyRate:    0.2,
		ReserveHorizon: 2,
	}
	ex := New(cfg)
	var reserved []bidding.OrderID // reservation request IDs, in creation order
	for i, op := range ops {
		if op.cancel {
			if len(reserved) > 0 {
				// Ignore the error: cancelling an already-settled contract
				// must be a no-op, and both runs see the same sequence.
				_ = ex.Cancel(reserved[int(op.sel)%len(reserved)])
			}
		} else {
			in := RoundInput{
				NoShows:  make(map[bidding.OrderID]bool),
				Defaults: make(map[bidding.OrderID]bool),
				Evidence: []byte(op.evidence),
			}
			nR, nO := len(base.Requests), len(base.Offers)
			fwdN := int(op.bits%4) + 1
			spotN := int(op.bits / 4 % 4)
			start := int(op.sel)
			for j := 0; j < fwdN; j++ {
				r := cloneRequest(base.Requests[(start+j)%nR], i, "f")
				if op.sel>>(j%8)&1 == 1 {
					in.NoShows[r.ID] = true
				}
				in.FwdRequests = append(in.FwdRequests, r)
			}
			for j := 0; j < fwdN; j++ {
				o := cloneOffer(base.Offers[(start+j)%nO], i, "f")
				if op.bits>>(6+j%2)&1 == 1 {
					in.Defaults[o.ID] = true
				}
				in.FwdOffers = append(in.FwdOffers, o)
			}
			for j := 0; j < spotN; j++ {
				in.SpotRequests = append(in.SpotRequests, cloneRequest(base.Requests[(start+fwdN+j)%nR], i, "s"))
				in.SpotOffers = append(in.SpotOffers, cloneOffer(base.Offers[(start+fwdN+j)%nO], i, "s"))
			}
			res := ex.Run(in)
			for _, r := range res.Reserved {
				reserved = append(reserved, r.Request.ID)
			}
		}
		if check != nil {
			if err := check(i, ex); err != nil {
				return nil, err
			}
		}
	}
	return ex, nil
}

func cloneRequest(r *bidding.Request, op int, stage string) *bidding.Request {
	fresh := *r
	fresh.Resources = r.Resources.Clone()
	fresh.ID = bidding.OrderID(fmt.Sprintf("%s#%s%d", r.ID, stage, op))
	return &fresh
}

func cloneOffer(o *bidding.Offer, op int, stage string) *bidding.Offer {
	fresh := *o
	fresh.Resources = o.Resources.Clone()
	fresh.ID = bidding.OrderID(fmt.Sprintf("%s#%s%d", o.ID, stage, op))
	return &fresh
}

// FuzzReservationLifecycle drives arbitrary reserve/deliver/default/
// cancel sequences against the exchange, checks the conservation
// identity after every operation, and then replays the exact op log on
// a rebuilt-from-scratch exchange: the chain head, the cumulative
// counters, and the live sets must agree byte for byte — the exchange's
// state is a pure function of its op log.
func FuzzReservationLifecycle(f *testing.F) {
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{0, 3, 0xff, 3, 0, 0, 0, 7, 0x55, 1, 9, 0xc3})
	f.Add([]byte{2, 100, 0x6a, 3, 1, 0, 3, 200, 0, 1, 50, 0x91, 0, 0, 0})
	base := workload.Generate(workload.Config{Seed: 7, Requests: 24})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data)
		if len(ops) == 0 {
			return
		}
		live, err := applyFuzzOps(base, ops, func(op int, ex *Exchange) error {
			if err := ex.CheckConservation(); err != nil {
				return fmt.Errorf("after op %d: %w", op, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := applyFuzzOps(base, ops, nil)
		if err != nil {
			t.Fatal(err)
		}
		if live.Head() != oracle.Head() {
			t.Fatalf("rebuild diverged: head %x vs %x", live.Head(), oracle.Head())
		}
		if live.Stats() != oracle.Stats() {
			t.Fatalf("rebuild diverged: stats %+v vs %+v", live.Stats(), oracle.Stats())
		}
		lr, lo := live.Live()
		or, oo := oracle.Live()
		if lr != or || lo != oo {
			t.Fatalf("rebuild diverged: live (%d,%d) vs (%d,%d)", lr, lo, or, oo)
		}
	})
}
