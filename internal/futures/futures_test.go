package futures

import (
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/workload"
)

// freq builds a CPU-only request: qty cores for dur time units anywhere
// in [start, end), bidding bid for the whole duration (truthfully).
func freq(id, client string, qty float64, start, end, dur int64, bid float64) *bidding.Request {
	return &bidding.Request{
		ID:        bidding.OrderID(id),
		Client:    bidding.ParticipantID(client),
		Resources: resource.Vector{resource.CPU: qty},
		Start:     start,
		End:       end,
		Duration:  dur,
		Bid:       bid,
		TrueValue: bid,
	}
}

// foff builds a CPU-only offer: qty cores over [start, end) asking bid
// for the full window.
func foff(id, provider string, qty float64, start, end int64, bid float64) *bidding.Offer {
	return &bidding.Offer{
		ID:        bidding.OrderID(id),
		Provider:  bidding.ParticipantID(provider),
		Resources: resource.Vector{resource.CPU: qty},
		Start:     start,
		End:       end,
		Bid:       bid,
		TrueCost:  bid,
	}
}

func futCfg(ratio float64, horizon int) auction.Config {
	cfg := auction.DefaultConfig()
	cfg.Futures = auction.FuturesConfig{
		OverbookRatio:  ratio,
		PenaltyRate:    0.25,
		ReserveHorizon: horizon,
	}
	return cfg
}

// TestReserveUniformPriceFloor: with room for one of two requests, the
// winner pays the loser's unit value — the classic capacity-excluded
// floor — not its own bid and not the seller's ask.
func TestReserveUniformPriceFloor(t *testing.T) {
	ex := New(futCfg(1.0, 1))
	// Offer: 1 core × 10 time units = capacity 10, ask 10 → ĉ = 1.
	// Both requests want the full 10 resource·time; only one fits.
	made := ex.Reserve(RoundInput{
		FwdRequests: []*bidding.Request{
			freq("r-hi", "c1", 1, 0, 10, 10, 40), // v̂ = 4
			freq("r-lo", "c2", 1, 0, 10, 10, 30), // v̂ = 3
		},
		FwdOffers: []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
	})
	if len(made) != 1 {
		t.Fatalf("reservations made = %d, want 1", len(made))
	}
	r := made[0]
	if r.Request.ID != "r-hi" {
		t.Fatalf("winner = %s, want r-hi", r.Request.ID)
	}
	if r.UnitPrice != 3 {
		t.Fatalf("unit price = %g, want the excluded v̂ 3", r.UnitPrice)
	}
	if r.Payment != 30 {
		t.Fatalf("payment = %g, want 30", r.Payment)
	}
}

// TestReservePricedOut: when the floor exceeds a placed request's own
// unit value, its contract is dropped rather than priced beyond the bid
// — individual rationality beats trade volume.
func TestReservePricedOut(t *testing.T) {
	ex := New(futCfg(1.0, 1))
	// Offer capacity 10. r-top (load 6, v̂ 5) reserves; r-big (load 6,
	// v̂ 4.5) no longer fits → capacity-excluded, floor 4.5; r-small
	// (load 4, v̂ 4) fits the remainder but the floor exceeds its v̂.
	made := ex.Reserve(RoundInput{
		FwdRequests: []*bidding.Request{
			freq("r-top", "c1", 1, 0, 10, 6, 30),   // v̂ 5.0: reserved
			freq("r-big", "c2", 1, 0, 10, 6, 27),   // v̂ 4.5: excluded → floor
			freq("r-small", "c3", 1, 0, 10, 4, 16), // v̂ 4.0 < floor: priced out
		},
		FwdOffers: []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
	})
	if len(made) != 1 || made[0].Request.ID != "r-top" {
		t.Fatalf("made = %v, want only r-top", made)
	}
	if made[0].UnitPrice != 4.5 {
		t.Fatalf("unit price = %g, want floor 4.5", made[0].UnitPrice)
	}
	if got := ex.Stats().PricedOut; got != 1 {
		t.Fatalf("priced-out = %d, want 1 (r-small)", got)
	}
}

// TestDeliverOverbookBump: selling 2x capacity and having every buyer
// show up forces a bump at delivery — the lower-priority contract pays
// the seller's penalty to the buyer and the request retries spot.
func TestDeliverOverbookBump(t *testing.T) {
	ex := New(futCfg(2.0, 1))
	first := ex.Run(RoundInput{
		FwdRequests: []*bidding.Request{
			freq("r-a", "c1", 1, 0, 10, 10, 40),
			freq("r-b", "c2", 1, 0, 10, 10, 30),
		},
		FwdOffers: []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
		Evidence:  []byte("bump-reserve"),
	})
	if len(first.Reserved) != 2 {
		t.Fatalf("overbooked reservations = %d, want 2", len(first.Reserved))
	}
	res := ex.Run(RoundInput{Evidence: []byte("bump-round")})
	d := res.Delivery
	if d == nil {
		t.Fatal("no delivery at the due round")
	}
	if len(d.Delivered) != 1 || d.Delivered[0].Request.ID != "r-a" {
		t.Fatalf("delivered = %v, want r-a only", d.Delivered)
	}
	if len(d.Bumped) != 1 || d.Bumped[0].Request.ID != "r-b" {
		t.Fatalf("bumped = %v, want r-b", d.Bumped)
	}
	if len(d.RetryRequests) != 1 || d.RetryRequests[0].ID != "r-b" {
		t.Fatalf("retries = %v, want r-b", d.RetryRequests)
	}
	// The seller pays the bump penalty to the bumped buyer.
	pen := 0.25 * d.Bumped[0].Payment
	if got := ex.PenaltyBalance("c2"); got != pen {
		t.Fatalf("bumped buyer credit = %g, want %g", got, pen)
	}
	if got := ex.PenaltyBalance("p1"); got != -pen {
		t.Fatalf("seller debit = %g, want %g", got, -pen)
	}
	if err := ex.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestDeliverSellerDefault: a defaulted offer fails all its contracts,
// pays each buyer the penalty, and none of its capacity enters spot.
func TestDeliverSellerDefault(t *testing.T) {
	ex := New(futCfg(1.0, 1))
	ex.Run(RoundInput{
		FwdRequests: []*bidding.Request{freq("r-a", "c1", 1, 0, 10, 10, 40)},
		FwdOffers:   []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
		Defaults:    map[bidding.OrderID]bool{"o1": true},
		Evidence:    []byte("default-reserve"),
	})
	res := ex.Run(RoundInput{Evidence: []byte("default-round")})
	d := res.Delivery
	if d == nil || len(d.Defaults) != 1 {
		t.Fatalf("delivery = %+v, want one default", d)
	}
	if len(d.RemainderOffers) != 0 {
		t.Fatalf("defaulted capacity entered spot: %v", d.RemainderOffers)
	}
	if len(d.RetryRequests) != 1 || d.RetryRequests[0].ID != "r-a" {
		t.Fatalf("retries = %v, want r-a", d.RetryRequests)
	}
	if got := ex.PenaltyBalance("p1"); got >= 0 {
		t.Fatalf("defaulting seller balance = %g, want negative", got)
	}
	if err := ex.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRemainderOfferKeepsUnitCost: partially reserved capacity re-enters
// the spot market scaled down, with the ask shrunk proportionally so the
// provider's unit cost ĉ is unchanged.
func TestRemainderOfferKeepsUnitCost(t *testing.T) {
	ex := New(futCfg(1.0, 1))
	// Offer 2 cores × 10 = capacity 20; the reservation takes 10.
	first := ex.Run(RoundInput{
		FwdRequests: []*bidding.Request{freq("r-a", "c1", 1, 0, 10, 10, 40)},
		FwdOffers:   []*bidding.Offer{foff("o1", "p1", 2, 0, 10, 30)},
		Evidence:    []byte("remainder-reserve"),
	})
	if len(first.Reserved) != 1 {
		t.Fatalf("reservations = %d, want 1", len(first.Reserved))
	}
	res := ex.Run(RoundInput{Evidence: []byte("remainder-round")})
	d := res.Delivery
	if d == nil || len(d.RemainderOffers) != 1 {
		t.Fatalf("delivery = %+v, want one remainder offer", d)
	}
	rem := d.RemainderOffers[0]
	if rem == first.Reserved[0].Offer {
		t.Fatal("partially used offer passed through as the original pointer")
	}
	if got := rem.Resources[resource.CPU]; got != 1 {
		t.Fatalf("remainder cores = %g, want 1", got)
	}
	origC := 30.0 / 20.0
	if got := rem.Bid / OfferCapacity(rem); got != origC {
		t.Fatalf("remainder ĉ = %g, want %g", got, origC)
	}
}

// TestDisabledStageRejectsForwardOrders: with ReserveHorizon=0, forward
// submissions are misroutings — counted rejected, never reserved.
func TestDisabledStageRejectsForwardOrders(t *testing.T) {
	cfg := auction.DefaultConfig()
	ex := New(cfg)
	made := ex.Reserve(RoundInput{
		FwdRequests: []*bidding.Request{freq("r-a", "c1", 1, 0, 10, 10, 40)},
		FwdOffers:   []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
	})
	if made != nil {
		t.Fatalf("disabled stage made reservations: %v", made)
	}
	if liveR, liveO := ex.Live(); liveR != 0 || liveO != 0 {
		t.Fatalf("disabled stage holds live orders: %d/%d", liveR, liveO)
	}
}

// TestNoShowFreesCapacityForLowerPriority: an overbooked offer whose
// top-priority buyer no-shows delivers the lower-priority contract into
// the freed real capacity instead of bumping it.
func TestNoShowFreesCapacityForLowerPriority(t *testing.T) {
	ex := New(futCfg(2.0, 1))
	ex.Run(RoundInput{
		FwdRequests: []*bidding.Request{
			freq("r-a", "c1", 1, 0, 10, 10, 40),
			freq("r-b", "c2", 1, 0, 10, 10, 30),
		},
		FwdOffers: []*bidding.Offer{foff("o1", "p1", 1, 0, 10, 10)},
		NoShows:   map[bidding.OrderID]bool{"r-a": true},
		Evidence:  []byte("noshow-reserve"),
	})
	res := ex.Run(RoundInput{Evidence: []byte("noshow-round")})
	d := res.Delivery
	if d == nil {
		t.Fatal("no delivery")
	}
	if len(d.NoShows) != 1 || d.NoShows[0].Request.ID != "r-a" {
		t.Fatalf("no-shows = %v, want r-a", d.NoShows)
	}
	if len(d.Delivered) != 1 || d.Delivered[0].Request.ID != "r-b" {
		t.Fatalf("delivered = %v, want r-b into the freed capacity", d.Delivered)
	}
	if len(d.Bumped) != 0 {
		t.Fatalf("bumped = %v, want none", d.Bumped)
	}
	if err := ex.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTwoStage1000 measures one full two-stage round over a
// 1000-request market with a 50% forward split — the headline number for
// the reservation stage's overhead relative to plain clearing.
func BenchmarkTwoStage1000(b *testing.B) {
	m := workload.Generate(workload.Config{Seed: 42, Requests: 1000})
	tm := workload.SplitTwoStage(m, 42, 0.5, 0.1, 0.1)
	cfg := futCfg(1.5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := New(cfg)
		ex.Run(RoundInput{
			FwdRequests:  tm.Fwd.Requests,
			FwdOffers:    tm.Fwd.Offers,
			SpotRequests: tm.Spot.Requests,
			SpotOffers:   tm.Spot.Offers,
			NoShows:      tm.NoShows,
			Defaults:     tm.Defaults,
			Evidence:     []byte(fmt.Sprintf("bench-%d", i)),
		})
		ex.Run(RoundInput{Evidence: []byte("bench-drain")})
	}
}
