package workload

import (
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/metro"
)

// TestStreamDeterminism: the same seed yields the same emission sequence,
// order for order; a different seed diverges.
func TestStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{Seed: 42, Clients: 4, EpochOrders: 64}
	a := NewStream(cfg).Emit(500)
	b := NewStream(cfg).Emit(500)
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("emission %d diverged: %s vs %s", i, a[i].ID(), b[i].ID())
		}
		switch {
		case a[i].Request != nil:
			ar, br := a[i].Request, b[i].Request
			if br == nil || ar.Bid != br.Bid || ar.Start != br.Start || ar.End != br.End ||
				ar.Duration != br.Duration || ar.Submitted != br.Submitted ||
				ar.Resources["cpu"] != br.Resources["cpu"] {
				t.Fatalf("emission %d request diverged", i)
			}
		case a[i].Offer != nil:
			ao, bo := a[i].Offer, b[i].Offer
			if bo == nil || ao.Bid != bo.Bid || ao.Start != bo.Start || ao.End != bo.End {
				t.Fatalf("emission %d offer diverged", i)
			}
		}
	}
	c := NewStream(StreamConfig{Seed: 43, Clients: 4, EpochOrders: 64}).Emit(500)
	same := 0
	for i := range a {
		if a[i].Request != nil && c[i].Request != nil && a[i].Request.Bid == c[i].Request.Bid {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestStreamInterleavingIndependence: client c's j-th order is identical
// whether emissions round-robin over all clients or drain one client at
// a time via NextFor.
func TestStreamInterleavingIndependence(t *testing.T) {
	cfg := StreamConfig{Seed: 7, Clients: 3, EpochOrders: 30}
	rr := NewStream(cfg)
	perClient := make(map[int][]StreamOrder)
	for _, so := range rr.Emit(300) {
		perClient[so.Client] = append(perClient[so.Client], so)
	}
	solo := NewStream(cfg)
	for c := 0; c < 3; c++ {
		for j, want := range perClient[c] {
			got := solo.NextFor(c)
			if got.ID() != want.ID() {
				t.Fatalf("client %d emission %d: NextFor %s, round-robin %s", c, j, got.ID(), want.ID())
			}
		}
	}
}

// TestStreamEpochStructure: every order's window nests inside its epoch,
// offers lead each epoch, and emitted orders validate.
func TestStreamEpochStructure(t *testing.T) {
	cfg := StreamConfig{Seed: 3, Clients: 4, EpochOrders: 40, EpochSec: 600}
	orders := NewStream(cfg).Emit(400)
	offers, requests := 0, 0
	for i, so := range orders {
		epoch := int64(i) / int64(cfg.EpochOrders)
		lo, hi := epoch*cfg.EpochSec, (epoch+1)*cfg.EpochSec
		switch {
		case so.Offer != nil:
			offers++
			if err := so.Offer.Validate(); err != nil {
				t.Fatalf("offer %d invalid: %v", i, err)
			}
			if so.Offer.Start != lo || so.Offer.End != hi {
				t.Fatalf("offer %d window [%d,%d] escapes epoch [%d,%d]", i, so.Offer.Start, so.Offer.End, lo, hi)
			}
		case so.Request != nil:
			requests++
			if err := so.Request.Validate(); err != nil {
				t.Fatalf("request %d invalid: %v", i, err)
			}
			if so.Request.Start < lo || so.Request.End > hi {
				t.Fatalf("request %d window [%d,%d] escapes epoch [%d,%d]", i, so.Request.Start, so.Request.End, lo, hi)
			}
			if so.Request.Bid <= 0 || so.Request.Duration <= 0 {
				t.Fatalf("request %d degenerate: bid=%v dur=%d", i, so.Request.Bid, so.Request.Duration)
			}
		default:
			t.Fatalf("emission %d is neither request nor offer", i)
		}
		// Offers lead: within an epoch, no offer may follow a request.
		if so.Offer != nil && i%cfg.EpochOrders >= 10 {
			t.Fatalf("offer at in-epoch position %d; offers must lead the epoch", i%cfg.EpochOrders)
		}
	}
	if offers == 0 || requests == 0 {
		t.Fatalf("degenerate mix: %d offers, %d requests", offers, requests)
	}
	wantOffers := 400 / 40 * 10 // 0.25 × 40 per epoch × 10 epochs
	if offers != wantOffers {
		t.Fatalf("offer count %d, want %d", offers, wantOffers)
	}
}

// TestStreamStartEpoch: StartEpoch shifts windows and Submitted stamps
// without changing the per-client draw sequence.
func TestStreamStartEpoch(t *testing.T) {
	base := NewStream(StreamConfig{Seed: 9, Clients: 2, EpochOrders: 20, EpochSec: 100}).Emit(40)
	shift := NewStream(StreamConfig{Seed: 9, Clients: 2, EpochOrders: 20, EpochSec: 100, StartEpoch: 5}).Emit(40)
	for i := range base {
		var b0, s0, e0, e1 int64
		if base[i].Offer != nil {
			b0, e0 = base[i].Offer.Start, base[i].Offer.End
			s0, e1 = shift[i].Offer.Start, shift[i].Offer.End
		} else {
			b0, e0 = base[i].Request.Start, base[i].Request.End
			s0, e1 = shift[i].Request.Start, shift[i].Request.End
		}
		if s0 != b0+500 || e1 != e0+500 {
			t.Fatalf("emission %d: shifted window [%d,%d], want [%d,%d]", i, s0, e1, b0+500, e0+500)
		}
	}
}

// TestStreamMarketClears: a collected stream market clears through the
// real mechanism with a healthy match rate — the structural guarantee
// the load generator depends on.
func TestStreamMarketClears(t *testing.T) {
	m := CollectMarket(NewStream(StreamConfig{Seed: 1, EpochOrders: 128}), 2000)
	if len(m.Requests)+len(m.Offers) != 2000 {
		t.Fatalf("collected %d+%d orders, want 2000", len(m.Requests), len(m.Offers))
	}
	cfg := auction.DefaultConfig()
	cfg.Evidence = []byte("stream-test")
	out := auction.Run(m.Requests, m.Offers, cfg)
	if got := len(out.Matches); got < len(m.Requests)/4 {
		t.Fatalf("only %d matches for %d requests; stream market does not clear", got, len(m.Requests))
	}
}

// TestStreamGeoLocations: with GeoRadius set, every order carries its
// client's fixed home location, requests get the radius as their
// locality constraint, and the clients spread over the unit square.
func TestStreamGeoLocations(t *testing.T) {
	cfg := StreamConfig{Seed: 9, Clients: 6, EpochOrders: 48, GeoRadius: 0.4}
	s := NewStream(cfg)
	homes := make(map[int]struct{ x, y float64 })
	for _, so := range s.Emit(400) {
		var x, y float64
		switch {
		case so.Request != nil:
			x, y = so.Request.Location.X, so.Request.Location.Y
			if so.Request.MaxDistance != 0.4 {
				t.Fatalf("request MaxDistance = %v, want 0.4", so.Request.MaxDistance)
			}
		case so.Offer != nil:
			x, y = so.Offer.Location.X, so.Offer.Location.Y
		}
		if x < 0 || x > 1 || y < 0 || y > 1 {
			t.Fatalf("location (%v, %v) outside unit square", x, y)
		}
		if h, ok := homes[so.Client]; ok {
			if h.x != x || h.y != y {
				t.Fatalf("client %d moved: (%v,%v) vs (%v,%v)", so.Client, h.x, h.y, x, y)
			}
		} else {
			homes[so.Client] = struct{ x, y float64 }{x, y}
		}
	}
	distinct := make(map[[2]float64]bool)
	for _, h := range homes {
		distinct[[2]float64{h.x, h.y}] = true
	}
	if len(distinct) < 2 {
		t.Fatal("all clients share one home location")
	}
	// Geo emission must not disturb the non-geo sequence semantics:
	// the same config replays identically.
	a := NewStream(cfg).Emit(100)
	b := NewStream(cfg).Emit(100)
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("geo stream not deterministic at %d", i)
		}
	}
}

// TestStreamMetroMix: with GeoMetros and a skewed mix, client homes land
// on their target metros and the arrival mass follows the weights.
func TestStreamMetroMix(t *testing.T) {
	cfg := StreamConfig{
		Seed: 5, Clients: 32, EpochOrders: 64,
		GeoRadius: 0.5, GeoMetros: 4, GeoMix: []float64{6, 2, 1, 1},
	}
	s := NewStream(cfg)
	perMetro := make([]int, 4)
	for _, so := range s.Emit(640) {
		var loc bidding.Location
		if so.Request != nil {
			loc = so.Request.Location
		} else {
			loc = so.Offer.Location
		}
		perMetro[metro.Home(loc, metro.DefaultCellSize, 4)]++
	}
	total := 0
	for _, n := range perMetro {
		total += n
	}
	if total != 640 {
		t.Fatalf("order mass lost: %d", total)
	}
	// Metro 0 carries weight 6 of 10: it must dominate every other metro.
	for m := 1; m < 4; m++ {
		if perMetro[0] <= perMetro[m] {
			t.Fatalf("mix not skewed: perMetro = %v", perMetro)
		}
	}
}

// TestStreamFuturesTagsDoNotPerturb: enabling the futures knobs only
// stamps tags — the emitted orders themselves are byte-identical to a
// plain stream with the same seed, because the verdict draws come from
// per-order sub-streams, never from the client entropy streams.
func TestStreamFuturesTagsDoNotPerturb(t *testing.T) {
	base := StreamConfig{Seed: 11, Clients: 4, EpochOrders: 64}
	tagged := base
	tagged.FuturesFraction = 0.5
	tagged.DemandShock = 0.3
	tagged.SupplyShock = 0.2
	a := NewStream(base).Emit(600)
	b := NewStream(tagged).Emit(600)
	fwd, fails := 0, 0
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("emission %d diverged: %s vs %s", i, a[i].ID(), b[i].ID())
		}
		if a[i].Request != nil {
			ar, br := a[i].Request, b[i].Request
			if ar.Bid != br.Bid || ar.Start != br.Start || ar.End != br.End ||
				ar.Duration != br.Duration || !ar.Resources.Equal(br.Resources) {
				t.Fatalf("emission %d request perturbed by futures knobs", i)
			}
		} else {
			ao, bo := a[i].Offer, b[i].Offer
			if ao.Bid != bo.Bid || ao.Start != bo.Start || ao.End != bo.End ||
				!ao.Resources.Equal(bo.Resources) {
				t.Fatalf("emission %d offer perturbed by futures knobs", i)
			}
		}
		if a[i].Forward || a[i].Fails {
			t.Fatalf("emission %d tagged with FuturesFraction 0", i)
		}
		if b[i].Forward {
			fwd++
		}
		if b[i].Fails {
			if !b[i].Forward {
				t.Fatalf("emission %d fails without being forward", i)
			}
			fails++
		}
	}
	if fwd < 150 || fwd > 450 {
		t.Fatalf("forward tag count %d implausible for fraction 0.5 over 600", fwd)
	}
	if fails == 0 {
		t.Fatal("no divergence verdicts despite positive shocks")
	}
}

// TestStreamFuturesTagsInterleavingIndependent: the same order carries
// the same Forward/Fails verdict whether drained round-robin or one
// client at a time.
func TestStreamFuturesTagsInterleavingIndependent(t *testing.T) {
	cfg := StreamConfig{Seed: 13, Clients: 3, EpochOrders: 30,
		FuturesFraction: 0.6, DemandShock: 0.4, SupplyShock: 0.4}
	rr := NewStream(cfg)
	perClient := make(map[int][]StreamOrder)
	for _, so := range rr.Emit(300) {
		perClient[so.Client] = append(perClient[so.Client], so)
	}
	solo := NewStream(cfg)
	for c := 0; c < 3; c++ {
		for j, want := range perClient[c] {
			got := solo.NextFor(c)
			if got.Forward != want.Forward || got.Fails != want.Fails {
				t.Fatalf("client %d emission %d (%s): tags diverged under interleaving", c, j, got.ID())
			}
		}
	}
}

// TestCollectTwoStage: the stage split partitions the drain exactly and
// the verdict maps cover precisely the failing forward orders.
func TestCollectTwoStage(t *testing.T) {
	cfg := StreamConfig{Seed: 17, Clients: 4, EpochOrders: 64,
		FuturesFraction: 0.5, DemandShock: 0.3, SupplyShock: 0.3}
	tm := CollectTwoStage(NewStream(cfg), 400)
	total := len(tm.Fwd.Requests) + len(tm.Fwd.Offers) + len(tm.Spot.Requests) + len(tm.Spot.Offers)
	if total != 400 {
		t.Fatalf("split lost orders: %d != 400", total)
	}
	if len(tm.Fwd.Requests) == 0 || len(tm.Fwd.Offers) == 0 || len(tm.Spot.Requests) == 0 {
		t.Fatalf("degenerate split fwd=%d+%d spot=%d+%d",
			len(tm.Fwd.Requests), len(tm.Fwd.Offers), len(tm.Spot.Requests), len(tm.Spot.Offers))
	}
	for id := range tm.NoShows {
		found := false
		for _, r := range tm.Fwd.Requests {
			if r.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("no-show verdict %s not a forward request", id)
		}
	}
	for id := range tm.Defaults {
		found := false
		for _, o := range tm.Fwd.Offers {
			if o.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("default verdict %s not a forward offer", id)
		}
	}
	if len(tm.NoShows) == 0 || len(tm.Defaults) == 0 {
		t.Fatal("no divergence verdicts collected despite positive shocks")
	}
}
