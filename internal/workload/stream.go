package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"decloud/internal/bidding"
	"decloud/internal/geo"
	"decloud/internal/resource"
	"decloud/internal/stats"
	"decloud/internal/trace"
)

// StreamConfig describes an unbounded, epoch-structured order stream —
// the load-generation counterpart of Generate. Where Generate builds one
// dense batch market (and pays an O(requests × offers) valuation pass),
// a Stream emits orders one at a time with windows confined to epochs:
// every order of epoch e lives inside [e·EpochSec, (e+1)·EpochSec), so a
// block holding many epochs stays cheap to clear — the match index
// rejects cross-epoch pairs on the first availability-window compare —
// and million-order rounds become tractable on one core.
type StreamConfig struct {
	// Seed makes the whole stream deterministic. Every virtual client
	// draws from its own sub-stream derived from (Seed, client index), so
	// client c's j-th order is the same no matter how emissions from
	// different clients interleave.
	Seed int64
	// Clients is the number of virtual clients emission round-robins over
	// (default 8). Each client emits both requests and offers.
	Clients int
	// OfferFraction is the fraction of each epoch's emissions that are
	// offers (default 0.25, the paper's 1:3 supply:demand shape). Offers
	// lead each epoch so the supply a request needs is already in the
	// block when the request arrives.
	OfferFraction float64
	// EpochOrders is the number of orders per epoch (default 512).
	EpochOrders int
	// EpochSec is the epoch length in seconds (default 3600). Offers span
	// their whole epoch; request windows nest inside it.
	EpochSec int64
	// StartEpoch offsets the first emission's epoch — a restarted emitter
	// can rejoin the market at the epoch its peers have reached.
	StartEpoch int64
	// Flexibility applies to every request (0 = inflexible).
	Flexibility float64
	// ValuationLow/High bound the uniform valuation coefficient
	// (defaults 0.5 and 2.0, the paper's range).
	ValuationLow, ValuationHigh float64
	// IDPrefix namespaces order IDs (default "s"): many independent
	// streams can feed one market without ID collisions.
	IDPrefix string
	// GeoRadius, when positive, scatters the virtual clients over the
	// unit square — each client draws one fixed home location from its
	// sub-stream — and stamps every emitted order with its client's
	// location; requests additionally get MaxDistance = GeoRadius. This
	// is the location the metro federation homes orders by, so a geo
	// stream feeds a federated market the way Generate's GeoRadius feeds
	// a batch one.
	GeoRadius float64
	// GeoMetros, when ≥ 2 (and GeoRadius > 0), steers the client homes
	// toward metro exchanges: each client draws a target metro and its
	// home location is resampled until metro.Home agrees, so the stream's
	// arrival mix across exchanges is controlled rather than incidental.
	GeoMetros int
	// GeoMix weights the per-metro client assignment (len GeoMetros;
	// nil/short = uniform). Weights need not sum to 1.
	GeoMix []float64
	// FuturesFraction, when positive, marks that fraction of emitted
	// orders as FORWARD orders (StreamOrder.Forward): bids for delivery
	// ReserveHorizon rounds ahead, cleared by the futures reservation
	// stage (internal/futures) instead of the spot auction. The mark is
	// derived from (Seed, order ID) alone — never from the client's
	// entropy stream — so enabling it perturbs no existing emission and
	// stays interleaving-independent.
	FuturesFraction float64
	// DemandShock and SupplyShock model demand divergence between
	// reservation and delivery: each forward REQUEST fails to show up
	// with probability DemandShock and each forward OFFER's capacity
	// fails to materialize with probability SupplyShock
	// (StreamOrder.Fails). Like FuturesFraction, the verdicts are keyed
	// on (Seed, order ID) and do not touch the emission streams. Only
	// read when FuturesFraction > 0.
	DemandShock float64
	SupplyShock float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.OfferFraction <= 0 || c.OfferFraction >= 1 {
		c.OfferFraction = 0.25
	}
	if c.EpochOrders <= 0 {
		c.EpochOrders = 512
	}
	if c.EpochSec <= 0 {
		c.EpochSec = 3600
	}
	if c.ValuationLow == 0 && c.ValuationHigh == 0 {
		c.ValuationLow, c.ValuationHigh = 0.5, 2.0
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "s"
	}
	return c
}

// StreamOrder is one emitted order: exactly one of Request and Offer is
// non-nil. Client is the index of the virtual client that emitted it.
// Forward marks a futures-stage order and Fails its divergence verdict
// (a forward request that will no-show, or a forward offer that will
// default, at delivery); both are always false when
// StreamConfig.FuturesFraction is 0.
type StreamOrder struct {
	Client  int
	Request *bidding.Request
	Offer   *bidding.Offer
	Forward bool
	Fails   bool
}

// ID returns the order's namespaced identifier.
func (so StreamOrder) ID() bidding.OrderID {
	if so.Request != nil {
		return so.Request.ID
	}
	return so.Offer.ID
}

// Stream emits a deterministic, epoch-structured order sequence. Not
// safe for concurrent use; wrap in a mutex or shard one stream per
// goroutine via distinct StreamConfig seeds.
type Stream struct {
	cfg   StreamConfig
	seed  [8]byte // big-endian Seed, the futures-tag derivation key
	gens  []*trace.Generator
	rnds  []*rand.Rand
	locs  []bidding.Location // per-client home (GeoRadius > 0 only)
	local []int              // per-client emission count
	seq   int                // global round-robin position
}

// NewStream builds a stream from the config.
func NewStream(cfg StreamConfig) *Stream {
	cfg = cfg.withDefaults()
	s := &Stream{
		cfg:   cfg,
		gens:  make([]*trace.Generator, cfg.Clients),
		rnds:  make([]*rand.Rand, cfg.Clients),
		local: make([]int, cfg.Clients),
	}
	var seedBytes [8]byte
	binary.BigEndian.PutUint64(seedBytes[:], uint64(cfg.Seed))
	s.seed = seedBytes
	if cfg.GeoRadius > 0 {
		s.locs = make([]bidding.Location, cfg.Clients)
	}
	for c := 0; c < cfg.Clients; c++ {
		sub := stats.SubRand(seedBytes[:], fmt.Sprintf("workload/stream/client/%d", c))
		s.gens[c] = trace.NewGenerator(sub.Int63())
		s.rnds[c] = sub
		if s.locs != nil {
			s.locs[c] = bidding.Location{X: sub.Float64(), Y: sub.Float64()}
			if cfg.GeoMetros > 1 {
				target := pickMetro(cfg, sub.Float64())
				// Rejection-sample the unit square until the home metro
				// matches. Expected tries ≈ GeoMetros; a fixed cap keeps a
				// pathological cell layout from spinning (the last draw
				// then stands, slightly diluting the mix, never blocking).
				for try := 0; try < 64*cfg.GeoMetros; try++ {
					if geo.Home(s.locs[c], geo.DefaultCellSize, cfg.GeoMetros) == target {
						break
					}
					s.locs[c] = bidding.Location{X: sub.Float64(), Y: sub.Float64()}
				}
			}
		}
	}
	return s
}

// Next emits the next order, round-robining over the virtual clients.
func (s *Stream) Next() StreamOrder {
	c := s.seq % s.cfg.Clients
	s.seq++
	return s.emit(c)
}

// NextFor emits client c's next order out of round-robin order — the
// devnet's per-process emitters each own one client index. The order
// depends only on (Seed, c, emission count of c), never on interleaving.
func (s *Stream) NextFor(c int) StreamOrder {
	return s.emit(c % s.cfg.Clients)
}

// Emit returns the next n round-robin orders.
func (s *Stream) Emit(n int) []StreamOrder {
	out := make([]StreamOrder, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Next())
	}
	return out
}

// emit draws client c's next order. The epoch derives from the client's
// own emission count so that per-client sequences are interleaving-
// independent; with strict round-robin the global position j·C+c walks
// epochs in emission order.
func (s *Stream) emit(c int) StreamOrder {
	cfg := s.cfg
	j := s.local[c]
	s.local[c]++
	global := int64(j*cfg.Clients + c)
	epoch := cfg.StartEpoch + global/int64(cfg.EpochOrders)
	within := int(global % int64(cfg.EpochOrders))
	epochStart := epoch * cfg.EpochSec
	epochEnd := epochStart + cfg.EpochSec
	submitted := cfg.StartEpoch*int64(cfg.EpochOrders) + global

	rnd := s.rnds[c]
	offerLead := int(cfg.OfferFraction * float64(cfg.EpochOrders))
	if offerLead < 1 {
		offerLead = 1
	}
	catalog := trace.M5Catalog()
	epochHours := float64(cfg.EpochSec) / 3600

	if within < offerLead {
		// Offers lead the epoch and span all of it; private costs spread
		// ±30% around the EC2 list price as in Generate.
		it := catalog[rnd.Intn(len(catalog))]
		cost := it.CostFor(epochHours) * (0.7 + 0.6*rnd.Float64())
		o := &bidding.Offer{
			ID:        bidding.OrderID(fmt.Sprintf("%s-c%02d-o%07d", cfg.IDPrefix, c, j)),
			Provider:  bidding.ParticipantID(fmt.Sprintf("%s-c%02d", cfg.IDPrefix, c)),
			Submitted: submitted,
			Resources: it.Resources(),
			Start:     epochStart,
			End:       epochEnd,
			Bid:       cost,
			TrueCost:  cost,
		}
		if s.locs != nil {
			o.Location = s.locs[c]
		}
		so := StreamOrder{Client: c, Offer: o}
		s.tagFutures(&so)
		return so
	}

	// Requests: Google-trace task shapes scaled onto the M5 reference
	// anchor, with an execution window nested inside the epoch so every
	// in-epoch offer passes the availability constraints.
	task := s.gens[c].Sample()
	reference := catalog[len(catalog)-1]
	dur := task.DurationSec
	if dur > cfg.EpochSec/2 {
		dur = cfg.EpochSec / 2
	}
	if dur < 1 {
		dur = 1
	}
	slack := 1 + 2*rnd.Float64()
	window := int64(float64(dur) * slack)
	if window > cfg.EpochSec {
		window = cfg.EpochSec
	}
	start := epochStart + rnd.Int63n(cfg.EpochSec-window+1)
	r := &bidding.Request{
		ID:        bidding.OrderID(fmt.Sprintf("%s-c%02d-r%07d", cfg.IDPrefix, c, j)),
		Client:    bidding.ParticipantID(fmt.Sprintf("%s-c%02d", cfg.IDPrefix, c)),
		Submitted: submitted,
		Resources: resource.Vector{
			resource.CPU:  task.CPU * reference.VCPU,
			resource.RAM:  task.RAM * reference.MemGiB,
			resource.Disk: task.Disk * reference.StorageGiB,
		},
		Start:       start,
		End:         start + window,
		Duration:    dur,
		Flexibility: cfg.Flexibility,
	}
	if s.locs != nil {
		r.Location = s.locs[c]
		r.MaxDistance = cfg.GeoRadius
	}
	// Valuation: cost of the smallest catalog machine that covers the
	// request, times the paper's uniform coefficient. Anchoring on the
	// catalog instead of ranking live offers keeps emission O(1) per
	// order — the stream never scans the market it feeds.
	base := catalog[len(catalog)-1].CostFor(epochHours)
	for _, it := range catalog {
		if it.VCPU >= r.Resources[resource.CPU] && it.MemGiB >= r.Resources[resource.RAM] {
			base = it.CostFor(epochHours)
			break
		}
	}
	coeff := cfg.ValuationLow + rnd.Float64()*(cfg.ValuationHigh-cfg.ValuationLow)
	r.Bid = base * coeff
	r.TrueValue = r.Bid
	so := StreamOrder{Client: c, Request: r}
	s.tagFutures(&so)
	return so
}

// tagFutures stamps the forward/divergence marks. The draws are keyed
// on (Seed, order ID) via the stats sub-stream derivation, so the same
// order gets the same verdict no matter how emissions interleave, and
// the per-client entropy streams stay untouched (a stream with
// FuturesFraction 0 emits bit-identical orders).
func (s *Stream) tagFutures(so *StreamOrder) {
	if s.cfg.FuturesFraction <= 0 {
		return
	}
	so.Forward, so.Fails = futuresVerdict(s.seed, so.ID(), so.Offer != nil,
		s.cfg.FuturesFraction, s.cfg.DemandShock, s.cfg.SupplyShock)
}

// futuresVerdict draws one order's forward mark and divergence verdict
// from the (seed, order ID) sub-stream — the single derivation both the
// stream tagger and SplitTwoStage use.
func futuresVerdict(seed [8]byte, id bidding.OrderID, isOffer bool, frac, demandShock, supplyShock float64) (forward, fails bool) {
	sub := stats.SubRand(seed[:], "workload/stream/futures/"+string(id))
	if sub.Float64() >= frac {
		return false, false
	}
	shock := demandShock
	if isOffer {
		shock = supplyShock
	}
	return true, shock > 0 && sub.Float64() < shock
}

// pickMetro maps one uniform draw onto the GeoMix weight vector
// (missing/non-positive entries fall back to uniform weighting).
func pickMetro(cfg StreamConfig, u float64) int {
	weights := make([]float64, cfg.GeoMetros)
	var total float64
	for m := range weights {
		w := 1.0
		if m < len(cfg.GeoMix) && cfg.GeoMix[m] > 0 {
			w = cfg.GeoMix[m]
		} else if len(cfg.GeoMix) > m {
			w = 0
		}
		weights[m] = w
		total += w
	}
	if total <= 0 {
		return 0
	}
	acc := 0.0
	for m, w := range weights {
		acc += w / total
		if u < acc {
			return m
		}
	}
	return cfg.GeoMetros - 1
}

// CollectMarket drains n orders from the stream into a batch Market —
// the bridge from streaming emission to the batch APIs (sim rounds,
// mechanism benchmarks).
func CollectMarket(s *Stream, n int) *Market {
	m := &Market{}
	for _, so := range s.Emit(n) {
		if so.Request != nil {
			m.Requests = append(m.Requests, so.Request)
		} else {
			m.Offers = append(m.Offers, so.Offer)
		}
	}
	return m
}

// TwoStageMarket splits one drained batch by stage for the futures
// exchange: Fwd holds the forward-tagged orders (reservation stage),
// Spot the rest, and NoShows/Defaults carry the divergence verdicts of
// the forward orders that fail at delivery. With FuturesFraction 0 every
// order lands in Spot and the verdict maps are empty.
type TwoStageMarket struct {
	Fwd, Spot *Market
	NoShows   map[bidding.OrderID]bool // forward requests that won't show
	Defaults  map[bidding.OrderID]bool // forward offers that won't materialize
}

// SplitTwoStage stage-splits a batch market the way a tagged stream
// would: every order's forward mark and divergence verdict comes from
// the same (seed, order ID) derivation the stream tagger uses, so batch
// (Generate) and streaming simulations share one divergence model.
func SplitTwoStage(m *Market, seed int64, frac, demandShock, supplyShock float64) *TwoStageMarket {
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seed))
	tm := &TwoStageMarket{
		Fwd:      &Market{},
		Spot:     &Market{},
		NoShows:  make(map[bidding.OrderID]bool),
		Defaults: make(map[bidding.OrderID]bool),
	}
	for _, r := range m.Requests {
		fwd, fails := futuresVerdict(sb, r.ID, false, frac, demandShock, supplyShock)
		if fwd {
			tm.Fwd.Requests = append(tm.Fwd.Requests, r)
			if fails {
				tm.NoShows[r.ID] = true
			}
		} else {
			tm.Spot.Requests = append(tm.Spot.Requests, r)
		}
	}
	for _, o := range m.Offers {
		fwd, fails := futuresVerdict(sb, o.ID, true, frac, demandShock, supplyShock)
		if fwd {
			tm.Fwd.Offers = append(tm.Fwd.Offers, o)
			if fails {
				tm.Defaults[o.ID] = true
			}
		} else {
			tm.Spot.Offers = append(tm.Spot.Offers, o)
		}
	}
	return tm
}

// CollectTwoStage drains n orders into a stage-split batch — the
// futures counterpart of CollectMarket.
func CollectTwoStage(s *Stream, n int) *TwoStageMarket {
	tm := &TwoStageMarket{
		Fwd:      &Market{},
		Spot:     &Market{},
		NoShows:  make(map[bidding.OrderID]bool),
		Defaults: make(map[bidding.OrderID]bool),
	}
	for _, so := range s.Emit(n) {
		m := tm.Spot
		if so.Forward {
			m = tm.Fwd
			if so.Fails {
				if so.Request != nil {
					tm.NoShows[so.ID()] = true
				} else {
					tm.Defaults[so.ID()] = true
				}
			}
		}
		if so.Request != nil {
			m.Requests = append(m.Requests, so.Request)
		} else {
			m.Offers = append(m.Offers, so.Offer)
		}
	}
	return tm
}
