package workload

import (
	"math"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/resource"
	"decloud/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Requests: 30}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Requests) != len(b.Requests) || len(a.Offers) != len(b.Offers) {
		t.Fatal("nondeterministic sizes")
	}
	for i := range a.Requests {
		if a.Requests[i].Bid != b.Requests[i].Bid || !a.Requests[i].Resources.Equal(b.Requests[i].Resources) {
			t.Fatalf("request %d differs", i)
		}
	}
	for j := range a.Offers {
		if a.Offers[j].Bid != b.Offers[j].Bid {
			t.Fatalf("offer %d differs", j)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	m := Generate(Config{Seed: 1, Requests: 30})
	if len(m.Requests) != 30 {
		t.Fatalf("requests = %d", len(m.Requests))
	}
	if len(m.Offers) != 10 { // Requests/3 rounded up
		t.Fatalf("default providers = %d, want 10", len(m.Offers))
	}
	for _, r := range m.Requests {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid request: %v", err)
		}
		if r.Bid != r.TrueValue {
			t.Fatal("bids must be truthful")
		}
		if r.Start < 0 || r.End > 6*3600 || r.End <= r.Start {
			t.Fatalf("request window outside default horizon: [%d, %d]", r.Start, r.End)
		}
	}
	for _, o := range m.Offers {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid offer: %v", err)
		}
		if o.Bid != o.TrueCost {
			t.Fatal("offers must be truthful")
		}
		// Offer shapes come from the M5 catalog: 2–16 cores, RAM = 4×cores.
		cpu := o.Resources[resource.CPU]
		if cpu < 2 || cpu > 16 || o.Resources[resource.RAM] != cpu*4 {
			t.Fatalf("offer shape not M5: %v", o.Resources)
		}
	}
}

func TestGenerateRequestShapes(t *testing.T) {
	m := Generate(Config{Seed: 2, Requests: 200})
	within := 0
	for _, r := range m.Requests {
		cpu := r.Resources[resource.CPU]
		if cpu <= 0 || cpu > 16 {
			t.Fatalf("request cpu out of range: %v", cpu)
		}
		if r.Duration <= 0 || r.Duration > r.End-r.Start {
			t.Fatalf("bad duration: %d", r.Duration)
		}
		if cpu <= 4 {
			within++
		}
	}
	// Google-trace shape: most requests are small fractions of a machine.
	if frac := float64(within) / float64(len(m.Requests)); frac < 0.6 {
		t.Fatalf("small-request fraction = %v", frac)
	}
}

func TestValuationRule(t *testing.T) {
	// Valuations must be positive and, for servable requests, anchored at
	// the best-match cost share (coefficient within [0.5, 2]).
	m := Generate(Config{Seed: 3, Requests: 60})
	positive := 0
	for _, r := range m.Requests {
		if r.TrueValue <= 0 {
			t.Fatalf("non-positive valuation for %s", r.ID)
		}
		positive++
	}
	if positive == 0 {
		t.Fatal("no valuations assigned")
	}
}

func TestGeneratedMarketTrades(t *testing.T) {
	// The whole point: generated markets must actually produce trades
	// through the mechanism.
	m := Generate(Config{Seed: 4, Requests: 100})
	out := auction.Run(m.Requests, m.Offers, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Fatal("generated market produced no trades")
	}
	if out.Welfare() <= 0 {
		t.Fatalf("welfare = %v", out.Welfare())
	}
}

func TestFlexibilityApplied(t *testing.T) {
	m := Generate(Config{Seed: 6, Requests: 10, Flexibility: 0.8})
	for _, r := range m.Requests {
		if r.Flexibility != 0.8 {
			t.Fatalf("flexibility not applied: %v", r.Flexibility)
		}
	}
}

func TestGenerateDivergentSimilarityMonotone(t *testing.T) {
	base := Config{Seed: 11, Requests: 300, Providers: 100}
	var prev float64 = 2
	for _, skew := range []float64{0, 0.3, 0.6, 0.9} {
		_, sim := GenerateDivergent(DivergentConfig{Config: base, Skew: skew})
		if sim > prev+0.05 {
			t.Fatalf("similarity should fall with skew: skew=%v sim=%v prev=%v", skew, sim, prev)
		}
		prev = sim
	}
	_, simLow := GenerateDivergent(DivergentConfig{Config: base, Skew: 0})
	_, simHigh := GenerateDivergent(DivergentConfig{Config: base, Skew: 0.9})
	if simLow < 0.9 {
		t.Fatalf("zero skew should be near-identical distributions: sim=%v", simLow)
	}
	if simHigh > simLow-0.1 {
		t.Fatalf("high skew should diverge: %v vs %v", simHigh, simLow)
	}
}

func TestGenerateDivergentValidOrders(t *testing.T) {
	m, sim := GenerateDivergent(DivergentConfig{
		Config: Config{Seed: 12, Requests: 50, Flexibility: 0.8},
		Skew:   0.5,
	})
	// Similarity is 1 − KLD: at most 1, and possibly negative for small
	// samples with genuinely divergent class histograms.
	if sim > 1 || math.IsNaN(sim) || math.IsInf(sim, 0) {
		t.Fatalf("similarity out of range: %v", sim)
	}
	for _, r := range m.Requests {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.Flexibility != 0.8 {
			t.Fatal("flexibility lost")
		}
	}
	for _, o := range m.Offers {
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDivergentFlexibilityImprovesSatisfaction(t *testing.T) {
	// The core claim of Figures 5d–5e: under divergent supply/demand,
	// flexible requests achieve higher satisfaction than inflexible ones.
	cfgI := DivergentConfig{Config: Config{Seed: 13, Requests: 120, Providers: 60}, Skew: 0.7}
	mI, _ := GenerateDivergent(cfgI)
	outI := auction.Run(mI.Requests, mI.Offers, auction.DefaultConfig())

	cfgF := cfgI
	cfgF.Flexibility = 0.5
	mF, _ := GenerateDivergent(cfgF)
	outF := auction.Run(mF.Requests, mF.Offers, auction.DefaultConfig())

	si := outI.Satisfaction(len(mI.Requests))
	sf := outF.Satisfaction(len(mF.Requests))
	if sf < si {
		t.Fatalf("flexibility should not hurt satisfaction: flexible=%v inflexible=%v", sf, si)
	}
}

func TestGeoRadiusCreatesLocalMarkets(t *testing.T) {
	base := Config{Seed: 21, Requests: 120, Providers: 40}
	global := Generate(base)

	geo := base
	geo.GeoRadius = 0.2
	local := Generate(geo)
	for _, r := range local.Requests {
		if r.MaxDistance != 0.2 {
			t.Fatalf("locality not applied: %v", r.MaxDistance)
		}
	}
	outG := auction.Run(global.Requests, global.Offers, auction.DefaultConfig())
	outL := auction.Run(local.Requests, local.Offers, auction.DefaultConfig())
	if outL.Clusters == 0 || len(outL.Matches) == 0 {
		t.Fatal("local market should still trade")
	}
	// A tight radius costs satisfaction: fewer reachable machines.
	if outL.Satisfaction(len(local.Requests)) > outG.Satisfaction(len(global.Requests)) {
		t.Fatal("tight locality should not beat an unconstrained market")
	}
	// Every match respects the constraint.
	for _, m := range outL.Matches {
		if m.Request.Location.Distance(m.Offer.Location) > 0.2+1e-9 {
			t.Fatalf("match violates locality: %v away", m.Request.Location.Distance(m.Offer.Location))
		}
	}
}

func TestRequestsPerClientGrouping(t *testing.T) {
	m := Generate(Config{Seed: 8, Requests: 12, RequestsPerClient: 3})
	clients := map[string]int{}
	for _, r := range m.Requests {
		clients[string(r.Client)]++
	}
	if len(clients) != 4 {
		t.Fatalf("clients = %d, want 4", len(clients))
	}
	for c, n := range clients {
		if n != 3 {
			t.Fatalf("client %s has %d requests, want 3", c, n)
		}
	}
}

func TestGenerateFromTasks(t *testing.T) {
	tasks := []trace.Task{
		{CPU: 0.1, RAM: 0.05, Disk: 0.01, DurationSec: 600},
		{CPU: 0.5, RAM: 0.25, Disk: 0.02, DurationSec: 1200},
		{CPU: 0.02, RAM: 0.01, Disk: 0.005, DurationSec: 300},
	}
	m := GenerateFromTasks(Config{Seed: 9}, tasks)
	if len(m.Requests) != 3 {
		t.Fatalf("requests = %d, want one per task", len(m.Requests))
	}
	// First task: 0.1 × 16 cores = 1.6.
	if got := m.Requests[0].Resources[resource.CPU]; math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("cpu = %v, want 1.6", got)
	}
	for _, r := range m.Requests {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Offers) < 2 {
		t.Fatalf("providers defaulted to %d", len(m.Offers))
	}
	// Equivalence: Generate == GenerateFromTasks(generator samples).
	direct := Generate(Config{Seed: 14, Requests: 10})
	viaTasks := GenerateFromTasks(Config{Seed: 14}, trace.NewGenerator(15).SampleN(10))
	if len(direct.Requests) != len(viaTasks.Requests) {
		t.Fatal("size mismatch")
	}
	for i := range direct.Requests {
		if !direct.Requests[i].Resources.Equal(viaTasks.Requests[i].Resources) {
			t.Fatalf("request %d differs between Generate and GenerateFromTasks", i)
		}
	}
}

func TestGenerateFromTrace(t *testing.T) {
	tasks := trace.NewGenerator(3).SampleN(20)
	machines := []trace.Machine{
		{ID: 1, CPU: 1, RAM: 1},     // the cell's largest machine
		{ID: 2, CPU: 0.5, RAM: 0.5}, // half-size
		{ID: 3, CPU: 0.5, RAM: 0.25},
	}
	m := GenerateFromTrace(Config{Seed: 5}, tasks, machines)
	if len(m.Offers) != 3 {
		t.Fatalf("offers = %d, want one per machine", len(m.Offers))
	}
	if got := m.Offers[0].Resources[resource.CPU]; got != 16 {
		t.Fatalf("largest machine cores = %v, want 16", got)
	}
	if got := m.Offers[1].Resources[resource.CPU]; got != 8 {
		t.Fatalf("half machine cores = %v, want 8", got)
	}
	for _, o := range m.Offers {
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.Bid <= 0 {
			t.Fatal("machine offers must have positive costs")
		}
	}
	// End to end: trace-sourced market trades through the mechanism.
	out := auction.Run(m.Requests, m.Offers, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Fatal("trace-sourced market produced no trades")
	}
}
