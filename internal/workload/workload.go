// Package workload synthesizes the markets of the paper's evaluation
// (Section V): client requests shaped by the Google cluster-usage trace,
// provider offers drawn from the EC2 M5 catalog (2–16 vCPUs, 8–64 GB),
// valuations set to the cost of the best-matching offer times a uniform
// coefficient in [0.5, 2], and — for the flexibility experiments — supply
// and demand distributions with a controllable Kullback–Leibler
// divergence.
package workload

import (
	"fmt"
	"math/rand"

	"decloud/internal/bidding"
	"decloud/internal/match"
	"decloud/internal/resource"
	"decloud/internal/trace"
)

// Config describes one generated market (one block's worth of orders).
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Requests is the number of client requests.
	Requests int
	// Providers is the number of single-offer providers. Zero defaults to
	// Requests/3 (rounded up, min 2): markets in the paper grow supply
	// with demand.
	Providers int
	// HorizonSec is the block's time horizon; offers span all of it.
	// Zero defaults to 6 hours.
	HorizonSec int64
	// ValuationLow/High bound the uniform valuation coefficient
	// (defaults 0.5 and 2.0, the paper's range).
	ValuationLow, ValuationHigh float64
	// Flexibility applies to every request (0 → inflexible, the paper's
	// first scenario).
	Flexibility float64
	// MatchCfg configures the best-match search used for valuations.
	// Zero value falls back to match.DefaultConfig().
	MatchCfg match.Config
	// GeoRadius, when positive, scatters participants over the unit
	// square and gives every request a locality constraint
	// MaxDistance = GeoRadius — the edge-computing scenario where a
	// service must run near its users. Smaller radii fragment the market
	// into local neighborhoods.
	GeoRadius float64
	// RequestsPerClient groups consecutive requests under shared client
	// identities (default 1 = every request its own client). With more
	// than one, trade reduction's "exclude ALL orders of the price
	// setter's client" has real bite (Section IV-C).
	RequestsPerClient int
}

func (c Config) withDefaults() Config {
	if c.Providers == 0 {
		c.Providers = (c.Requests + 2) / 3
		if c.Providers < 2 {
			c.Providers = 2
		}
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = 6 * 3600
	}
	if c.ValuationLow == 0 && c.ValuationHigh == 0 {
		c.ValuationLow, c.ValuationHigh = 0.5, 2.0
	}
	if c.MatchCfg.QualityBand == 0 {
		c.MatchCfg = match.DefaultConfig()
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 1
	}
	return c
}

// Market is one block's worth of orders with truthful bids.
type Market struct {
	Requests []*bidding.Request
	Offers   []*bidding.Offer
}

// Generate builds a trace-driven market. Requests mirror Google-trace
// task shapes scaled onto the M5 reference machine; offers are M5
// instances with EC2 on-demand costs (±10% private-cost noise);
// valuations follow the paper's best-match-cost × U[low, high] rule.
func Generate(cfg Config) *Market {
	gen := trace.NewGenerator(cfg.withDefaults().Seed + 1)
	return GenerateFromTasks(cfg, gen.SampleN(cfg.Requests))
}

// GenerateFromTasks builds a market from concrete trace tasks — use this
// with trace.LoadTaskEventsCSV to run the evaluation on the REAL Google
// cluster-usage trace instead of the synthetic generator. cfg.Requests is
// ignored; one request is created per task (tasks repeat cyclically if a
// larger market is wanted, trim the slice otherwise).
func GenerateFromTasks(cfg Config, tasks []trace.Task) *Market {
	return GenerateFromTrace(cfg, tasks, nil)
}

// GenerateFromTrace builds a market where BOTH sides come from trace
// data: one request per task, and — when machines is non-empty — one
// offer per machine (capacities scaled onto the M5 reference anchor,
// costs pro-rated from M5 per-core pricing). With machines nil the
// supply side falls back to the EC2 M5 catalog.
func GenerateFromTrace(cfg Config, tasks []trace.Task, machines []trace.Machine) *Market {
	cfg.Requests = len(tasks)
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	catalog := trace.M5Catalog()
	reference := catalog[len(catalog)-1] // largest machine: normalization anchor

	m := &Market{}
	horizonHours := float64(cfg.HorizonSec) / 3600

	// M5 per-core-hour rate, used to price trace machines consistently
	// with the catalog (all M5 sizes share it).
	corePrice := catalog[0].PricePerHour / catalog[0].VCPU

	if len(machines) > 0 {
		for j, mach := range machines {
			cores := mach.CPU * reference.VCPU
			ram := mach.RAM * reference.MemGiB
			if cores <= 0 || ram <= 0 {
				continue
			}
			cost := corePrice * cores * horizonHours * (0.7 + 0.6*rnd.Float64())
			start := rnd.Int63n(cfg.HorizonSec/4 + 1)
			end := cfg.HorizonSec - rnd.Int63n(cfg.HorizonSec/4+1)
			m.Offers = append(m.Offers, &bidding.Offer{
				ID:        bidding.OrderID(fmt.Sprintf("o%04d", j)),
				Provider:  bidding.ParticipantID(fmt.Sprintf("provider-%04d", j)),
				Submitted: int64(j),
				Resources: resource.Vector{
					resource.CPU:  cores,
					resource.RAM:  ram,
					resource.Disk: reference.StorageGiB * mach.CPU, // trace has no disk capacity
				},
				Start:    start,
				End:      end,
				Bid:      cost * float64(end-start) / float64(cfg.HorizonSec),
				TrueCost: cost * float64(end-start) / float64(cfg.HorizonSec),
			})
		}
	}
	for j := len(m.Offers); j < cfg.Providers && len(machines) == 0; j++ {
		it := catalog[rnd.Intn(len(catalog))]
		// Private costs spread ±30% around the EC2 list price: edge
		// providers differ in electricity, amortization, and opportunity
		// cost. This dispersion is what trade reduction prices against.
		cost := it.CostFor(horizonHours) * (0.7 + 0.6*rnd.Float64())
		// Availability windows vary: devices come and go at the edge.
		// Every offer still covers at least half the horizon.
		start := rnd.Int63n(cfg.HorizonSec/4 + 1)
		end := cfg.HorizonSec - rnd.Int63n(cfg.HorizonSec/4+1)
		o := &bidding.Offer{
			ID:        bidding.OrderID(fmt.Sprintf("o%04d", j)),
			Provider:  bidding.ParticipantID(fmt.Sprintf("provider-%04d", j)),
			Submitted: int64(j),
			Resources: it.Resources(),
			Start:     start,
			End:       end,
			Bid:       cost * float64(end-start) / float64(cfg.HorizonSec),
			TrueCost:  cost * float64(end-start) / float64(cfg.HorizonSec),
		}
		if cfg.GeoRadius > 0 {
			o.Location = bidding.Location{X: rnd.Float64(), Y: rnd.Float64()}
		}
		m.Offers = append(m.Offers, o)
	}

	for i := 0; i < cfg.Requests; i++ {
		task := tasks[i]
		dur := task.DurationSec
		if dur > cfg.HorizonSec/2 {
			dur = cfg.HorizonSec / 2
		}
		// Tasks arrive throughout the horizon with 1–3× slack in their
		// execution window. Time diversity is what differentiates the
		// requests' best-offer sets and thus drives clustering.
		slack := 1 + 2*rnd.Float64()
		window := int64(float64(dur) * slack)
		if window > cfg.HorizonSec {
			window = cfg.HorizonSec
		}
		start := rnd.Int63n(cfg.HorizonSec - window + 1)
		r := &bidding.Request{
			ID:        bidding.OrderID(fmt.Sprintf("r%04d", i)),
			Client:    bidding.ParticipantID(fmt.Sprintf("client-%04d", i/cfg.RequestsPerClient)),
			Submitted: int64(cfg.Providers + i),
			Resources: resource.Vector{
				resource.CPU:  task.CPU * reference.VCPU,
				resource.RAM:  task.RAM * reference.MemGiB,
				resource.Disk: task.Disk * reference.StorageGiB,
			},
			Start:       start,
			End:         start + window,
			Duration:    dur,
			Flexibility: cfg.Flexibility,
		}
		if cfg.GeoRadius > 0 {
			r.Location = bidding.Location{X: rnd.Float64(), Y: rnd.Float64()}
			r.MaxDistance = cfg.GeoRadius
		}
		m.Requests = append(m.Requests, r)
	}
	assignValuations(m, cfg, rnd)
	return m
}

// assignValuations implements the paper's rule literally: "the valuation
// of each request is calculated as a cost of its best match offer
// multiplied by a random uniform coefficient in the range of [0.5, 2]".
// The base is the best-matching offer's full cost — clients anchor their
// willingness to pay at the market rate of the machine class they want.
func assignValuations(m *Market, cfg Config, rnd *rand.Rand) {
	scale := match.BlockScale(m.Requests, m.Offers)
	for _, r := range m.Requests {
		ranked := match.RankOffers(r, m.Offers, scale)
		var baseCost float64
		if len(ranked) > 0 {
			baseCost = ranked[0].Offer.Bid
		}
		if baseCost <= 0 {
			// Unservable request: give it a nominal value so it remains a
			// well-formed (if hopeless) order.
			baseCost = 0.01
		}
		coeff := cfg.ValuationLow + rnd.Float64()*(cfg.ValuationHigh-cfg.ValuationLow)
		v := baseCost * coeff
		r.Bid = v
		r.TrueValue = v
	}
}
