package workload

import (
	"fmt"
	"math/rand"

	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/stats"
	"decloud/internal/trace"
)

// DivergentConfig generates the markets of the flexibility experiments
// (Figures 5d–5f): supply and demand concentrate on different machine
// classes, with Skew controlling how far apart the distributions are —
// "e.g., when clients want mostly 8 cores CPUs, the majority of offered
// CPUs have only 2 cores" (Section V).
type DivergentConfig struct {
	Config
	// Skew ∈ [0, 1]: 0 makes demand mirror the supply's class
	// distribution (similarity ≈ 1); 1 concentrates demand on the class
	// the supply has least of (high divergence).
	Skew float64
}

// supplyClassDist is the probability of each M5 class among offers:
// plenty of small machines, few big ones (the typical edge fleet).
var supplyClassDist = []float64{0.4, 0.3, 0.2, 0.1}

// GenerateDivergent builds a market with controlled supply/demand
// divergence. It returns the market and the realized similarity
// 1 − KLD(demand ‖ supply) over machine-class histograms — the x-axis of
// Figures 5d–5f.
func GenerateDivergent(cfg DivergentConfig) (*Market, float64) {
	base := cfg.Config.withDefaults()
	rnd := rand.New(rand.NewSource(base.Seed))
	catalog := trace.M5Catalog()
	horizonHours := float64(base.HorizonSec) / 3600

	// Demand distribution: interpolate between the supply distribution
	// and a demand profile concentrated on the classes the supply has
	// least of. The target keeps some mass everywhere so the divergence
	// stays in a realistic range (similarity ∈ ~[0.25, 1]).
	divergedDemand := []float64{0.05, 0.15, 0.3, 0.5}
	demandDist := make([]float64, len(supplyClassDist))
	for i, p := range supplyClassDist {
		demandDist[i] = (1-cfg.Skew)*p + cfg.Skew*divergedDemand[i]
	}

	m := &Market{}
	offerClasses := make([]float64, 0, base.Providers)
	for j := 0; j < base.Providers; j++ {
		ci := sampleClass(rnd, supplyClassDist)
		it := catalog[ci]
		offerClasses = append(offerClasses, float64(ci))
		cost := it.CostFor(horizonHours) * (0.7 + 0.6*rnd.Float64())
		start := rnd.Int63n(base.HorizonSec/8 + 1)
		end := base.HorizonSec - rnd.Int63n(base.HorizonSec/8+1)
		m.Offers = append(m.Offers, &bidding.Offer{
			ID:        bidding.OrderID(fmt.Sprintf("o%04d", j)),
			Provider:  bidding.ParticipantID(fmt.Sprintf("provider-%04d", j)),
			Submitted: int64(j),
			Resources: it.Resources(),
			Start:     start,
			End:       end,
			Bid:       cost * float64(end-start) / float64(base.HorizonSec),
			TrueCost:  cost * float64(end-start) / float64(base.HorizonSec),
		})
	}

	reqClasses := make([]float64, 0, base.Requests)
	for i := 0; i < base.Requests; i++ {
		ci := sampleClass(rnd, demandDist)
		it := catalog[ci]
		reqClasses = append(reqClasses, float64(ci))
		// The client wants a machine of roughly its class. The wide
		// utilization jitter makes sizes continuous across class
		// boundaries, so partial flexibility genuinely unlocks the next
		// machine class down (classes are 2× apart).
		util := 0.5 + 0.3*rnd.Float64()
		dur := base.HorizonSec/4 + rnd.Int63n(base.HorizonSec/4)
		window := dur + rnd.Int63n(base.HorizonSec/4)
		start := rnd.Int63n(base.HorizonSec - window + 1)
		m.Requests = append(m.Requests, &bidding.Request{
			ID:        bidding.OrderID(fmt.Sprintf("r%04d", i)),
			Client:    bidding.ParticipantID(fmt.Sprintf("client-%04d", i)),
			Submitted: int64(base.Providers + i),
			Resources: resource.Vector{
				resource.CPU:  it.VCPU * util,
				resource.RAM:  it.MemGiB * util,
				resource.Disk: it.StorageGiB * util * 0.2,
			},
			Start:       start,
			End:         start + window,
			Duration:    dur,
			Flexibility: cfg.Flexibility,
		})
	}
	assignValuations(m, base, rnd)

	similarity := 1 - stats.HistogramKLD(reqClasses, offerClasses, len(catalog))
	return m, similarity
}

func sampleClass(rnd *rand.Rand, dist []float64) int {
	u := rnd.Float64()
	var acc float64
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}
