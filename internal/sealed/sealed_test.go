package sealed

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// detRand is a deterministic entropy source for tests.
type detRand struct{ state [32]byte }

func newDetRand(seed string) *detRand {
	d := &detRand{}
	d.state = sha256.Sum256([]byte(seed))
	return d
}

func (d *detRand) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		d.state = sha256.Sum256(d.state[:])
		c := copy(p[n:], d.state[:])
		n += c
	}
	return n, nil
}

var _ io.Reader = (*detRand)(nil)

func testIdentity(t *testing.T, seed string) *Identity {
	t.Helper()
	id, err := NewIdentityFrom(newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIdentityFingerprint(t *testing.T) {
	a := testIdentity(t, "alice")
	b := testIdentity(t, "bob")
	if a.ParticipantID() == b.ParticipantID() {
		t.Fatal("distinct identities share a fingerprint")
	}
	if len(a.ParticipantID()) != 32 { // 16 bytes hex
		t.Fatalf("fingerprint length = %d", len(a.ParticipantID()))
	}
	if a.ParticipantID() != FingerprintOf(a.Public()) {
		t.Fatal("FingerprintOf mismatch")
	}
}

func TestSignVerify(t *testing.T) {
	id := testIdentity(t, "signer")
	msg := []byte("hello decloud")
	sig := id.Sign(msg)
	if !Verify(id.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(id.Public(), []byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	if Verify(nil, msg, sig) {
		t.Fatal("nil key accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key, err := NewTempKeyFrom(newDetRand("key"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sealed order bytes")
	env, err := Seal(payload, key, newDetRand("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := env.Open(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	k1, _ := NewTempKeyFrom(newDetRand("k1"))
	k2, _ := NewTempKeyFrom(newDetRand("k2"))
	env, err := Seal([]byte("secret"), k1, newDetRand("n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Open(k2); !errors.Is(err, ErrOpenFailed) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestSealRejectsBadKey(t *testing.T) {
	if _, err := Seal([]byte("x"), []byte("short"), newDetRand("n")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("short key accepted: %v", err)
	}
	var env Envelope = []byte("tiny")
	if _, err := env.Open(make([]byte, KeySize)); !errors.Is(err, ErrShortData) {
		t.Fatalf("short envelope: %v", err)
	}
}

func TestEnvelopeTamperDetected(t *testing.T) {
	key, _ := NewTempKeyFrom(newDetRand("k"))
	env, err := Seal([]byte("payload"), key, newDetRand("n"))
	if err != nil {
		t.Fatal(err)
	}
	env[len(env)-1] ^= 0xff
	if _, err := env.Open(key); !errors.Is(err, ErrOpenFailed) {
		t.Fatalf("tampered envelope accepted: %v", err)
	}
}

func testOrderBytes(t *testing.T, owner bidding.ParticipantID) []byte {
	t.Helper()
	r := &bidding.Request{
		ID: "r1", Client: owner,
		Resources: resource.Vector{resource.CPU: 2},
		Start:     0, End: 100, Duration: 50, Bid: 3,
	}
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSealBidAndVerify(t *testing.T) {
	id := testIdentity(t, "alice")
	key, _ := NewTempKeyFrom(newDetRand("k"))
	orderBytes := testOrderBytes(t, id.ParticipantID())
	bid, err := SealBid(id, orderBytes, key, newDetRand("n"))
	if err != nil {
		t.Fatal(err)
	}
	if !bid.VerifySignature() {
		t.Fatal("valid bid signature rejected")
	}
	if bid.SenderID() != id.ParticipantID() {
		t.Fatal("sender fingerprint mismatch")
	}
	// Decrypt and confirm the order survived.
	plain, err := bid.Envelope.Open(key)
	if err != nil {
		t.Fatal(err)
	}
	req, _, err := bidding.DecodeOrder(plain)
	if err != nil || req == nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Client != id.ParticipantID() {
		t.Fatal("owner mismatch after round trip")
	}
	// Tamper with the envelope: signature must break.
	bid.Envelope[0] ^= 1
	if bid.VerifySignature() {
		t.Fatal("tampered bid passes signature check")
	}
}

func TestKeyReveal(t *testing.T) {
	alice := testIdentity(t, "alice")
	mallory := testIdentity(t, "mallory")
	key, _ := NewTempKeyFrom(newDetRand("k"))
	bid, err := SealBid(alice, testOrderBytes(t, alice.ParticipantID()), key, newDetRand("n"))
	if err != nil {
		t.Fatal(err)
	}
	reveal := NewKeyReveal(alice, bid, key)
	if err := reveal.Verify(bid); err != nil {
		t.Fatalf("valid reveal rejected: %v", err)
	}
	// A non-owner cannot reveal.
	fake := NewKeyReveal(mallory, bid, key)
	if err := fake.Verify(bid); err == nil {
		t.Fatal("non-owner reveal accepted")
	}
	// Tampered key breaks the signature.
	reveal.Key[0] ^= 1
	if err := reveal.Verify(bid); err == nil {
		t.Fatal("tampered reveal accepted")
	}
}

func TestNewIdentityAndKeyFromSystemRand(t *testing.T) {
	if _, err := NewIdentity(); err != nil {
		t.Fatal(err)
	}
	key, err := NewTempKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != KeySize {
		t.Fatalf("key size = %d", len(key))
	}
}

// TestOpenNeverPanicsOnGarbage: adversarial envelope bytes must fail
// cleanly, never panic.
func TestOpenNeverPanicsOnGarbage(t *testing.T) {
	key := make([]byte, KeySize)
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Open panicked: %v", r)
			}
		}()
		_, _ = Envelope(data).Open(key)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestSealOpenProperty: arbitrary payloads round-trip under arbitrary keys.
func TestSealOpenProperty(t *testing.T) {
	f := func(payload []byte, keySeed string) bool {
		key, err := NewTempKeyFrom(newDetRand("k" + keySeed))
		if err != nil {
			return false
		}
		env, err := Seal(payload, key, newDetRand("n"+keySeed))
		if err != nil {
			return false
		}
		got, err := env.Open(key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
