package sealed

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// fuzzEntropy derives a deterministic entropy stream from a label so
// the fuzzer controls every input bit and failures replay exactly.
type fuzzEntropy struct {
	state [32]byte
	off   int
}

func newFuzzEntropy(seed []byte) *fuzzEntropy {
	return &fuzzEntropy{state: sha256.Sum256(seed)}
}

func (f *fuzzEntropy) Read(p []byte) (int, error) {
	for i := range p {
		if f.off == len(f.state) {
			f.state = sha256.Sum256(f.state[:])
			f.off = 0
		}
		p[i] = f.state[f.off]
		f.off++
	}
	return len(p), nil
}

// FuzzSealedRoundTrip exercises the sealed-bid envelope both ways: any
// payload sealed under a key must open to the identical bytes under
// that key, must NOT open under a different key, and must not open
// after ciphertext corruption — and Open must never panic, whatever
// junk arrives as an envelope off the wire.
func FuzzSealedRoundTrip(f *testing.F) {
	f.Add([]byte("order-bytes"), []byte("key-seed"), byte(0))
	f.Add([]byte{}, []byte{}, byte(7))
	f.Add(bytes.Repeat([]byte{0xaa}, 300), []byte("long"), byte(255))

	f.Fuzz(func(t *testing.T, payload, keySeed []byte, flip byte) {
		key := sha256.Sum256(append([]byte("k1:"), keySeed...))
		env, err := Seal(payload, key[:], newFuzzEntropy(append([]byte("n:"), keySeed...)))
		if err != nil {
			t.Fatalf("seal failed: %v", err)
		}

		plain, err := env.Open(key[:])
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(plain, payload) {
			t.Fatalf("payload drift: sealed %x, opened %x", payload, plain)
		}

		wrong := sha256.Sum256(append([]byte("k2:"), keySeed...))
		if _, err := env.Open(wrong[:]); err == nil {
			t.Fatal("envelope opened under the wrong key")
		}
		if _, err := env.Open(key[:KeySize-1]); err == nil {
			t.Fatal("envelope opened under a short key")
		}

		// Flip one byte anywhere in the envelope (nonce or ciphertext):
		// GCM authentication must reject it.
		corrupt := append(Envelope(nil), env...)
		corrupt[int(flip)%len(corrupt)] ^= 0x01
		if _, err := corrupt.Open(key[:]); err == nil {
			t.Fatal("corrupted envelope opened cleanly")
		}

		// Treat the raw fuzz payload itself as an envelope: must error
		// (or at worst succeed on a forged-by-chance input), never panic.
		_, _ = Envelope(payload).Open(key[:])
	})
}
