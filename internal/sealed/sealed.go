// Package sealed implements the cryptography of the two-phase bid
// exposure protocol (Section III): participant identities (ed25519),
// sealed-bid envelopes (AES-256-GCM under single-use temporary keys), and
// the signed wrapper that goes into a block's preamble. Bids stay
// unreadable until their temporary keys are broadcast after the
// proof-of-work is fixed.
package sealed

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"decloud/internal/bidding"
)

// KeySize is the AES-256 temporary key length.
const KeySize = 32

// Errors surfaced by the package.
var (
	ErrBadKey       = errors.New("sealed: temporary key must be 32 bytes")
	ErrOpenFailed   = errors.New("sealed: envelope authentication failed")
	ErrBadSignature = errors.New("sealed: signature verification failed")
	ErrShortData    = errors.New("sealed: envelope data too short")
)

// Identity is a participant's signing keypair. Its fingerprint doubles as
// the ParticipantID used in orders, binding bids to keys.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates an identity from crypto/rand.
func NewIdentity() (*Identity, error) {
	return NewIdentityFrom(rand.Reader)
}

// NewIdentityFrom generates an identity from the given entropy source
// (tests pass a deterministic reader).
func NewIdentityFrom(r io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("sealed: generate identity: %w", err)
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// Public returns the public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// ParticipantID returns the hex fingerprint (SHA-256 of the public key,
// truncated to 16 bytes) used as the on-ledger participant identity.
func (id *Identity) ParticipantID() bidding.ParticipantID {
	return FingerprintOf(id.pub)
}

// FingerprintOf computes the participant fingerprint of a public key.
func FingerprintOf(pub ed25519.PublicKey) bidding.ParticipantID {
	sum := sha256.Sum256(pub)
	return bidding.ParticipantID(hex.EncodeToString(sum[:16]))
}

// Sign signs a message with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// Verify checks an ed25519 signature.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// NewTempKey draws a fresh 32-byte temporary key.
func NewTempKey() ([]byte, error) {
	return NewTempKeyFrom(rand.Reader)
}

// NewTempKeyFrom draws a temporary key from the given entropy source.
func NewTempKeyFrom(r io.Reader) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("sealed: temp key: %w", err)
	}
	return key, nil
}

// Envelope is an AES-256-GCM sealed payload: nonce ‖ ciphertext.
type Envelope []byte

// Seal encrypts payload under a 32-byte temporary key.
func Seal(payload, key []byte, entropy io.Reader) (Envelope, error) {
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sealed: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sealed: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(entropy, nonce); err != nil {
		return nil, fmt.Errorf("sealed: nonce: %w", err)
	}
	return Envelope(append(nonce, gcm.Seal(nil, nonce, payload, nil)...)), nil
}

// Open decrypts the envelope with the temporary key.
func (e Envelope) Open(key []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sealed: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sealed: gcm: %w", err)
	}
	if len(e) < gcm.NonceSize() {
		return nil, ErrShortData
	}
	plain, err := gcm.Open(nil, e[:gcm.NonceSize()], e[gcm.NonceSize():], nil)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return plain, nil
}

// Bid is a sealed, signed order as it appears in a block preamble: the
// sender's public key, the encrypted order, and a signature over the
// envelope. The plaintext order inside must name the sender's
// fingerprint as its owner, which miners enforce after decryption.
type Bid struct {
	Sender    []byte   `json:"sender"` // ed25519 public key
	Envelope  Envelope `json:"envelope"`
	Signature []byte   `json:"signature"`
}

// SealBid encrypts and signs canonical order bytes.
func SealBid(id *Identity, orderBytes, tempKey []byte, entropy io.Reader) (*Bid, error) {
	env, err := Seal(orderBytes, tempKey, entropy)
	if err != nil {
		return nil, err
	}
	return &Bid{
		Sender:    append([]byte(nil), id.Public()...),
		Envelope:  env,
		Signature: id.Sign(env),
	}, nil
}

// VerifySignature checks the bid's signature over its envelope.
func (b *Bid) VerifySignature() bool {
	return Verify(ed25519.PublicKey(b.Sender), b.Envelope, b.Signature)
}

// SenderID returns the sender's participant fingerprint.
func (b *Bid) SenderID() bidding.ParticipantID {
	return FingerprintOf(ed25519.PublicKey(b.Sender))
}

// Digest identifies the bid (hash of the envelope); participants use it
// to find their bids in a preamble and to address key reveals.
func (b *Bid) Digest() [32]byte { return sha256.Sum256(b.Envelope) }

// KeyReveal is a participant's broadcast of its temporary key after the
// preamble is public, signed so only the bid's owner can reveal it.
type KeyReveal struct {
	BidDigest [32]byte `json:"bid_digest"`
	Key       []byte   `json:"key"`
	Sender    []byte   `json:"sender"`
	Signature []byte   `json:"signature"`
}

// NewKeyReveal builds a signed reveal for a bid.
func NewKeyReveal(id *Identity, bid *Bid, tempKey []byte) *KeyReveal {
	d := bid.Digest()
	msg := append(append([]byte{}, d[:]...), tempKey...)
	return &KeyReveal{
		BidDigest: d,
		Key:       append([]byte(nil), tempKey...),
		Sender:    append([]byte(nil), id.Public()...),
		Signature: id.Sign(msg),
	}
}

// Verify checks the reveal's signature and that the revealer is the bid's
// sender.
func (kr *KeyReveal) Verify(bid *Bid) error {
	if kr.BidDigest != bid.Digest() {
		return fmt.Errorf("sealed: reveal digest mismatch")
	}
	if FingerprintOf(ed25519.PublicKey(kr.Sender)) != bid.SenderID() {
		return fmt.Errorf("sealed: reveal from non-owner")
	}
	msg := append(append([]byte{}, kr.BidDigest[:]...), kr.Key...)
	if !Verify(ed25519.PublicKey(kr.Sender), msg, kr.Signature) {
		return ErrBadSignature
	}
	return nil
}
