package book_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/auction/paralleltest"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/book/booktest"
	"decloud/internal/resource"
	"decloud/internal/workload"
)

// TestBookDifferentialTraces is the tentpole proof: ≥50 randomized
// multi-epoch mutation traces, each replayed incrementally against the
// rebuild-from-scratch oracle across shards K ∈ {1,4} × workers {1,4},
// byte-identical outcomes at every clearing round. Run under -race by
// scripts/ci.sh.
func TestBookDifferentialTraces(t *testing.T) {
	traces := 52
	if testing.Short() {
		traces = 12
	}
	pool := booktest.NewPool(41, 90)
	rng := rand.New(rand.NewSource(1207))
	for i := 0; i < traces; i++ {
		raw := make([]byte, 60+rng.Intn(240))
		rng.Read(raw)
		ops := booktest.Decode(raw)
		maxCarry := 1 + rng.Intn(3)
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				cfg := auction.DefaultConfig()
				cfg.Workers = workers
				cfg.Shards = shards
				// Shards=1 still routes through the partitioner; also
				// exercise the fully unsharded path on a subset.
				if shards == 1 && i%2 == 0 {
					cfg.Shards = 0
				}
				if err := booktest.Replay(pool, ops, cfg, maxCarry); err != nil {
					t.Fatalf("trace %d (K=%d workers=%d carry=%d): %v", i, shards, workers, maxCarry, err)
				}
			}
		}
	}
}

// TestComponentReuseDifferentialTraces is the differential guard of
// component-granular cluster reuse: randomized mutation traces over a
// geo-fragmented market (several independent shares-a-best-offer
// components) replay byte-identically against the from-scratch oracle,
// while across the whole set the reuse path demonstrably fires.
func TestComponentReuseDifferentialTraces(t *testing.T) {
	traces := 24
	if testing.Short() {
		traces = 8
	}
	pool := booktest.NewGeoPool(43, 80, 0.25)
	rng := rand.New(rand.NewSource(2903))
	for i := 0; i < traces; i++ {
		raw := make([]byte, 60+rng.Intn(240))
		rng.Read(raw)
		cfg := auction.DefaultConfig()
		cfg.Workers = 1 + i%4
		if err := booktest.Replay(pool, booktest.Decode(raw), cfg, 1+rng.Intn(3)); err != nil {
			t.Fatalf("geo trace %d: %v", i, err)
		}
	}
}

// TestComponentReuseFires pins the reuse mechanics down concretely: a
// market with an isolated no-trade neighborhood (locality-constrained
// orders whose prices never cross) and a normal trading one. After the
// warm-up clear, the isolated component is never touched again, so
// every further clear must reuse it — and outcomes must stay identical
// to the from-scratch mechanism throughout.
func TestComponentReuseFires(t *testing.T) {
	cfg := auction.DefaultConfig()
	cfg.Workers = 1
	bk := book.New(cfg)
	bk.MaxCarry = 50 // no carry-outs during the test window

	m := workload.Generate(workload.Config{Seed: 11, Requests: 24})

	// The isolated neighborhood: far outside the unit square, reachable
	// only by its own offers, request bids far below offer costs so no
	// mini-auction ever crosses.
	var isoReqs []bidding.OrderID
	for i := 0; i < 3; i++ {
		r := *m.Requests[i]
		r.ID = bidding.OrderID(fmt.Sprintf("iso-req-%d", i))
		r.Location = bidding.Location{X: 100, Y: 100}
		r.MaxDistance = 1
		r.Bid = 0.0001
		r.TrueValue = r.Bid
		isoReqs = append(isoReqs, r.ID)
		if !bk.InsertRequest(&r) {
			t.Fatalf("isolated request %d rejected", i)
		}
	}
	for i := 0; i < 2; i++ {
		o := *m.Offers[i]
		o.ID = bidding.OrderID(fmt.Sprintf("iso-off-%d", i))
		o.Location = bidding.Location{X: 100, Y: 100}
		o.Bid *= 1000
		o.TrueCost = o.Bid
		if !bk.InsertOffer(&o) {
			t.Fatalf("isolated offer %d rejected", i)
		}
	}
	// The trading neighborhood: the stock workload market.
	for _, r := range m.Requests {
		bk.InsertRequest(r)
	}
	for _, o := range m.Offers {
		bk.InsertOffer(o)
	}

	clearAndCheck := func(tag string) {
		liveR, liveO := bk.LiveRequests(), bk.LiveOffers()
		ocfg := cfg
		ocfg.Evidence = []byte(tag)
		want, err := paralleltest.MarshalOutcome(auction.Run(liveR, liveO, ocfg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := paralleltest.MarshalOutcome(bk.Clear([]byte(tag)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: reuse-path outcome diverges from from-scratch mechanism:\nwant %s\ngot  %s", tag, want, got)
		}
	}

	clearAndCheck("warm")
	warm := bk.Stats()
	if warm.ComponentsRebuilt == 0 {
		t.Fatal("warm clear built no components")
	}
	if warm.ComponentsReused != 0 {
		t.Fatal("warm clear cannot reuse")
	}
	for round := 0; round < 3; round++ {
		clearAndCheck(fmt.Sprintf("steady-%d", round))
	}
	st := bk.Stats()
	if st.ComponentsReused == 0 {
		t.Fatalf("isolated component never reused: %+v", st)
	}
	// The isolated neighborhood must still be live (nothing crossed).
	for _, id := range isoReqs {
		found := false
		for _, r := range bk.LiveRequests() {
			if r.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("isolated request %s left the book", id)
		}
	}
}

// TestBookCarryAcrossEpochs pins the carry semantics down concretely:
// an unmatched order stays live for exactly MaxCarry+1 clears, then
// leaves as carried-out.
func TestBookCarryAcrossEpochs(t *testing.T) {
	cfg := auction.DefaultConfig()
	bk := book.New(cfg)
	bk.MaxCarry = 2

	m := workload.Generate(workload.Config{Seed: 7, Requests: 8})
	// A lone request with no supply side can never match.
	if !bk.InsertRequest(m.Requests[0]) {
		t.Fatal("insert rejected")
	}
	for round := 0; round < 3; round++ {
		if got := len(bk.LiveRequests()); got != 1 {
			t.Fatalf("round %d: want 1 live request, got %d", round, got)
		}
		out := bk.Clear([]byte(fmt.Sprintf("carry-%d", round)))
		if len(out.Matches) != 0 {
			t.Fatalf("round %d: unexpected match", round)
		}
	}
	if got := len(bk.LiveRequests()); got != 0 {
		t.Fatalf("want carried-out after MaxCarry+1 clears, got %d live", got)
	}
	st := bk.Stats()
	if st.CarriedOutRequests != 1 || st.InsertedRequests != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBookRejectsAndDuplicates: invalid orders and live duplicates are
// rejected, and rejection is visible in the stats but never fatal.
func TestBookRejectsAndDuplicates(t *testing.T) {
	bk := book.New(auction.DefaultConfig())
	m := workload.Generate(workload.Config{Seed: 3, Requests: 4})

	if !bk.InsertRequest(m.Requests[0]) {
		t.Fatal("valid insert rejected")
	}
	if bk.InsertRequest(m.Requests[0]) {
		t.Fatal("live duplicate admitted")
	}
	bad := *m.Requests[1]
	bad.Start, bad.End = 100, 50
	if bk.InsertRequest(&bad) {
		t.Fatal("invalid order admitted")
	}
	st := bk.Stats()
	if st.InsertedRequests != 1 || st.RejectedRequests != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBookPreviewIsSideEffectFree: a Preview must leave the live set,
// the stats, and future outcomes untouched.
func TestBookPreviewIsSideEffectFree(t *testing.T) {
	cfg := auction.DefaultConfig()
	m := workload.Generate(workload.Config{Seed: 11, Requests: 30})
	half := len(m.Requests) / 2

	seed := func() *book.Book {
		bk := book.New(cfg)
		for _, r := range m.Requests[:half] {
			bk.InsertRequest(r)
		}
		for _, o := range m.Offers {
			bk.InsertOffer(o)
		}
		bk.Clear([]byte("warm"))
		return bk
	}

	plain := seed()
	previewed := seed()
	pre := previewed.Stats()
	previewed.Preview(m.Requests[half:], nil, []byte("spec"))
	got := previewed.Stats()
	// A preview performs a trial clear, so the work diagnostics advance;
	// the conservation ledger must not.
	pre.Clears, got.Clears = 0, 0
	pre.Rescored, got.Rescored = 0, 0
	pre.FullRescores, got.FullRescores = 0, 0
	pre.ComponentsReused, got.ComponentsReused = 0, 0
	pre.ComponentsRebuilt, got.ComponentsRebuilt = 0, 0
	if got != pre {
		t.Fatalf("Preview mutated ledger stats: %+v -> %+v", pre, got)
	}

	a := plain.Clear([]byte("after"))
	b := previewed.Clear([]byte("after"))
	aj, _ := paralleltest.MarshalOutcome(a)
	bj, _ := paralleltest.MarshalOutcome(b)
	if !bytes.Equal(aj, bj) {
		t.Fatal("Preview leaked into a later clear")
	}
}

// TestBookIDReuseFlushesCaches: re-using an order ID with different
// contents must not let stale cached economics leak into the outcome —
// the replay oracle would catch a divergence, so here it is enough
// that the same-ID-different-bid sequence clears identically to a
// fresh book.
func TestBookIDReuseFlushesCaches(t *testing.T) {
	cfg := auction.DefaultConfig()
	m := workload.Generate(workload.Config{Seed: 23, Requests: 20})
	variant := *m.Requests[0]
	variant.Bid *= 2
	variant.TrueValue = variant.Bid

	bk := book.New(cfg)
	for _, r := range m.Requests {
		bk.InsertRequest(r)
	}
	for _, o := range m.Offers {
		bk.InsertOffer(o)
	}
	bk.Clear([]byte("e0"))
	bk.CancelRequest(m.Requests[0].ID) // no-op if it matched in e0
	bk.InsertRequest(&variant)
	got := bk.Clear([]byte("e1"))

	// The differential harness covers the general divergence case; here
	// assert directly that the variant's doubled bid is what cleared.
	for _, match := range got.Matches {
		if match.Request.ID == variant.ID && match.Request.Bid != variant.Bid {
			t.Fatalf("stale request contents cleared: bid %v, want %v", match.Request.Bid, variant.Bid)
		}
	}
}

// TestBookEconomicPropertiesOverCarriedOrders re-runs the mechanism's
// economic guarantees in the multi-epoch setting: with orders carried
// across clears, every epoch's outcome must still be strongly
// budget-balanced and individually rational, and no carried client can
// profit by shading its bid in a later epoch (DSIC re-checked against
// the carried market).
func TestBookEconomicPropertiesOverCarriedOrders(t *testing.T) {
	cfg := auction.DefaultConfig()
	m := workload.Generate(workload.Config{Seed: 67, Requests: 40})

	bk := book.New(cfg)
	bk.MaxCarry = 4
	for _, r := range m.Requests {
		bk.InsertRequest(r)
	}
	// Thin supply: only a third of the offers, so plenty of orders carry.
	for i, o := range m.Offers {
		if i%3 == 0 {
			bk.InsertOffer(o)
		}
	}

	for epoch := 0; epoch < 3; epoch++ {
		liveR, liveO := bk.LiveRequests(), bk.LiveOffers()
		evidence := []byte(fmt.Sprintf("carry-econ-%d", epoch))
		out := bk.Clear(evidence)

		// Strong budget balance: payments equal revenues per epoch.
		var pay, rev float64
		for _, p := range out.Payments {
			pay += p
		}
		for _, r := range out.Revenues {
			rev += r
		}
		if diff := pay - rev; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("epoch %d: budget not balanced: payments %v != revenues %v", epoch, pay, rev)
		}
		// Individual rationality against reported bids.
		for _, match := range out.Matches {
			if match.Payment > match.Request.Bid+1e-6 {
				t.Fatalf("epoch %d: client IR broken: pays %v above bid %v", epoch, match.Payment, match.Request.Bid)
			}
			if match.Payment < -1e-6 {
				t.Fatalf("epoch %d: negative payment %v", epoch, match.Payment)
			}
		}

		// DSIC over the carried market: a carried client shading or
		// inflating its bid in THIS epoch must not gain utility in it.
		// (The carried market is just another market; the mechanism's
		// per-epoch guarantee must survive the carry composition.)
		ocfg := cfg
		ocfg.Evidence = evidence
		checkEpochDSIC(t, epoch, liveR, liveO, out, ocfg)

		if len(bk.LiveRequests()) == 0 {
			break
		}
	}
}

func checkEpochDSIC(t *testing.T, epoch int, reqs []*bidding.Request, offs []*bidding.Offer, base *auction.Outcome, cfg auction.Config) {
	t.Helper()
	util := func(out *auction.Outcome, client bidding.ParticipantID) float64 {
		var u float64
		for _, m := range out.Matches {
			if m.Request.Client == client {
				u += m.Request.TrueValue - m.Payment
			}
		}
		return u
	}
	// Sample a handful of carried clients; full grids live in
	// internal/auction's property suite.
	for i := 0; i < len(reqs) && i < 5; i++ {
		truthful := util(base, reqs[i].Client)
		for _, dev := range []float64{0.5, 1.5} {
			mod := make([]*bidding.Request, len(reqs))
			for j, r := range reqs {
				cp := *r
				mod[j] = &cp
			}
			mod[i].Bid = reqs[i].TrueValue * dev
			out := auction.Run(mod, offs, cfg)
			// The paper's mechanism is approximately DSIC on
			// heterogeneous markets (exact on homogeneous ones); allow
			// the measured epsilon envelope used by the auction suite.
			if u := util(out, reqs[i].Client); u > truthful+0.05*(1+truthful) {
				t.Fatalf("epoch %d: carried client %s gains by deviating ×%v: %v > %v",
					epoch, reqs[i].Client, dev, u, truthful)
			}
		}
	}
}

// TestExpireByWatermarkConservation drives the round-loop expiry rule
// end to end: orders from an old epoch are applied, then a new epoch's
// arrivals advance the market clock (book.ArrivalWatermark) and
// ExpireBefore removes the stale survivors. The Stats conservation
// invariant — inserted = matched + cancelled + expired + carried-out +
// live, per side — must hold at every step, and the expired orders must
// be accounted as expired, not carried out.
func TestExpireByWatermarkConservation(t *testing.T) {
	cfg := auction.DefaultConfig()
	bk := book.New(cfg)
	bk.MaxCarry = 100 // carry must not race expiry in this test

	conserve := func(step string) {
		st := bk.Stats()
		if got := st.MatchedRequests + st.CancelledRequests + st.ExpiredRequests +
			st.CarriedOutRequests + st.LiveRequests; got != st.InsertedRequests {
			t.Fatalf("%s: request conservation broken: %+v", step, st)
		}
		if got := st.MatchedOffers + st.CancelledOffers + st.ExpiredOffers +
			st.CarriedOutOffers + st.LiveOffers; got != st.InsertedOffers {
			t.Fatalf("%s: offer conservation broken: %+v", step, st)
		}
	}

	mkReq := func(id string, start, end int64) *bidding.Request {
		return &bidding.Request{
			ID: bidding.OrderID(id), Client: "c",
			Resources: map[resource.Kind]float64{resource.CPU: 4},
			Start:     start, End: end, Duration: (end - start) / 2, Bid: 50,
		}
	}
	mkOff := func(id string, start, end int64) *bidding.Offer {
		return &bidding.Offer{
			ID: bidding.OrderID(id), Provider: "p",
			Resources: map[resource.Kind]float64{resource.CPU: 2},
			Start:     start, End: end, Bid: 1,
		}
	}

	// Epoch 0: an unmatchable request (no supply covers it) plus a lone
	// offer; both survive the clear as carried orders.
	epoch0 := bk.Apply([]*bidding.Request{mkReq("r-old", 0, 100)},
		[]*bidding.Offer{mkOff("o-old", 0, 90)}, []byte("e0"))
	if len(epoch0.Matches) != 0 {
		t.Fatalf("epoch 0: unexpected match")
	}
	conserve("epoch 0")
	if got := len(bk.LiveRequests()) + len(bk.LiveOffers()); got != 2 {
		t.Fatalf("epoch 0: want 2 carried orders, got %d", got)
	}

	// Epoch 1: arrivals start at t=200 — the watermark rule must expire
	// both stale survivors (End < 200), exactly as the round loops do.
	reqs := []*bidding.Request{mkReq("r-new", 200, 300)}
	offs := []*bidding.Offer{mkOff("o-new", 200, 310)}
	bk.Apply(reqs, offs, []byte("e1"))
	now, ok := book.ArrivalWatermark(reqs, offs)
	if !ok || now != 200 {
		t.Fatalf("watermark = %d, %v; want 200, true", now, ok)
	}
	if n := bk.ExpireBefore(now); n != 2 {
		t.Fatalf("expired %d orders, want 2", n)
	}
	conserve("epoch 1 expiry")
	st := bk.Stats()
	if st.ExpiredRequests != 1 || st.ExpiredOffers != 1 {
		t.Fatalf("expiry not attributed: %+v", st)
	}
	if st.CarriedOutRequests != 0 || st.CarriedOutOffers != 0 {
		t.Fatalf("expired orders leaked into carry-out: %+v", st)
	}

	// The next clear runs over the pruned live set and stays conserved.
	bk.Clear([]byte("e2"))
	conserve("epoch 2")
}

// TestArrivalWatermark pins the clock rule: minimum Start across both
// sides, false on an empty batch.
func TestArrivalWatermark(t *testing.T) {
	if _, ok := book.ArrivalWatermark(nil, nil); ok {
		t.Fatal("empty batch should not advance the clock")
	}
	r := &bidding.Request{Start: 50}
	o := &bidding.Offer{Start: 20}
	if now, ok := book.ArrivalWatermark([]*bidding.Request{r}, []*bidding.Offer{o}); !ok || now != 20 {
		t.Fatalf("watermark = %d, %v; want 20, true", now, ok)
	}
	if now, _ := book.ArrivalWatermark([]*bidding.Request{r}, nil); now != 50 {
		t.Fatalf("request-only watermark = %d; want 50", now)
	}
}

// TestArenaReuseVsFreshByteIdentical is the named determinism guard for
// the arena scratch layer (DESIGN.md §14): a long-lived book whose
// IndexScratch and cluster.Builder slabs are reused across epochs
// (arena ON) must produce outcomes byte-identical to auction.Run over
// the same union live set (arena OFF — a fresh index and builder with
// plain heap allocation every round), across workers {1,4} × shards
// {0,4}. Any stale bit leaking through a slab reset, any aliasing
// between epochs, and the bytes diverge.
func TestArenaReuseVsFreshByteIdentical(t *testing.T) {
	for _, shards := range []int{0, 4} {
		for _, workers := range []int{1, 4} {
			cfg := auction.DefaultConfig()
			cfg.Workers = workers
			cfg.Shards = shards
			bk := book.New(cfg)
			bk.MaxCarry = 2
			for epoch := 0; epoch < 4; epoch++ {
				m := workload.Generate(workload.Config{Seed: int64(100 + epoch), Requests: 40})
				ev := []byte(fmt.Sprintf("arena-guard-%d", epoch))

				prev, unionR, unionO := bk.Preview(m.Requests, m.Offers, ev)
				got := bk.Apply(m.Requests, m.Offers, ev)

				oracleCfg := cfg
				oracleCfg.Evidence = ev
				want := auction.Run(unionR, unionO, oracleCfg)

				pj, _ := paralleltest.MarshalOutcome(prev)
				gj, _ := paralleltest.MarshalOutcome(got)
				wj, _ := paralleltest.MarshalOutcome(want)
				if !bytes.Equal(pj, gj) {
					t.Fatalf("K=%d W=%d epoch %d: Preview and Apply disagree", shards, workers, epoch)
				}
				if !bytes.Equal(gj, wj) {
					t.Fatalf("K=%d W=%d epoch %d: arena-backed clear diverges from fresh auction.Run", shards, workers, epoch)
				}
				if len(got.Matches) == 0 {
					t.Fatalf("K=%d W=%d epoch %d: degenerate epoch, nothing matched", shards, workers, epoch)
				}
			}
		}
	}
}
