package book_test

import (
	"testing"

	"decloud/internal/auction"
	"decloud/internal/book/booktest"
)

// FuzzBookMutations feeds arbitrary byte strings through the trace
// decoder and replays them differentially against the from-scratch
// oracle. Any byte string is a valid trace (Decode is total), so the
// fuzzer explores mutation interleavings — insert/cancel/expire/clear
// in both direct and block mode — that the fixed random suite may
// miss. A crash or divergence here is a consensus bug.
func FuzzBookMutations(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 0, 2, 6, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 1, 4, 0, 9, 5, 0, 0, 6, 0, 0})
	f.Add([]byte{2, 0, 0, 3, 0, 1, 6, 0, 0, 0, 0, 2, 5, 0, 0})
	f.Add([]byte("booktest seed: mixed ops and clears"))

	pool := booktest.NewPool(97, 40)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 400 {
			data = data[:400] // bound per-exec cost
		}
		ops := booktest.Decode(data)
		// Derive shard/worker shape from the trace so the fuzzer also
		// mutates the execution configuration.
		cfg := auction.DefaultConfig()
		cfg.Workers = 1
		cfg.Shards = 0
		if len(data) > 0 {
			switch data[0] % 3 {
			case 1:
				cfg.Shards = 4
			case 2:
				cfg.Workers = 4
			}
		}
		maxCarry := 2
		if err := booktest.Replay(pool, ops, cfg, maxCarry); err != nil {
			t.Fatal(err)
		}
	})
}
