// Package book implements DeCloud's long-lived streaming order book:
// the mutation-friendly layer over match.Index and cluster.Builder that
// turns the per-block batch auction into a continuous market. Orders
// are inserted, cancelled, and expired between clears; unmatched orders
// carry across epochs (promoting the simulator's resubmission loop into
// the market itself); and each clear re-derives only the state that the
// mutations since the previous clear could have touched.
//
// # What is incremental, and why it is safe
//
// The dominant cost of a from-scratch block execution is the
// per-request best-offer scan (O(requests × offers)) plus the
// per-cluster economics pre-pass. Both are cached here:
//
//   - Each live request caches its best-offer set from the last clear
//     and is rescanned only when dirty. The dirty rules are exact:
//     a request is dirtied when it is inserted, when an offer feasible
//     for it (match.Feasible — scale-independent) is inserted, when an
//     offer belonging to any cluster that contained the request is
//     removed, or when the block normalization scale changes (scale
//     changes invalidate every quality score, so everything is
//     dirtied). Removing an offer that was in no cluster cannot have
//     been in any best set — cluster.Builder.Update places every best
//     offer of r into the exact best-set cluster containing r — and
//     removing a request never changes another request's best set.
//
//   - Per-cluster pre-pass economics are cached in an
//     auction.PrepassCache keyed by exact membership, flushed on scale
//     changes and order-ID reuse (see below).
//
// Cluster formation and mini-auction execution are NOT cached: cluster
// identity is order-dependent global state (intersection clusters
// depend on creation order), and the mini-auction lotteries are keyed
// by the block evidence, which changes every round. Both re-run from
// the cached/rescanned best sets in the index's canonical request
// order, which is what makes the outcome byte-identical to the
// from-scratch oracle — the booktest differential harness replays
// randomized multi-epoch mutation traces against auction.Run and
// asserts byte equality at every clear.
//
// # Concurrency
//
// All methods are safe for concurrent use; the book is a single
// mutex-guarded replica. Chain-driven replicas (miner.Miner.Book) are
// additionally serialized by the miner's sync loop so blocks apply in
// height order.
package book

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/match"
	"decloud/internal/par"
	"decloud/internal/resource"
)

// DefaultMaxCarry is the number of additional clears an unmatched order
// participates in after its first — mirroring the simulator's historic
// MaxResubmits default of 3.
const DefaultMaxCarry = 3

// Stats counts every order the book has ever admitted, partitioned by
// fate. Per side, the conservation invariant holds at every instant:
//
//	Inserted == Matched + Cancelled + Expired + CarriedOut + live
//
// (Rejected orders were never admitted and are tracked separately.)
type Stats struct {
	InsertedRequests, InsertedOffers     int
	RejectedRequests, RejectedOffers     int
	MatchedRequests, MatchedOffers       int
	CancelledRequests, CancelledOffers   int
	ExpiredRequests, ExpiredOffers       int // time-window expiry
	CarriedOutRequests, CarriedOutOffers int // carry budget exhausted
	LiveRequests, LiveOffers             int

	// Clears counts clearing rounds; Rescored counts per-request
	// best-offer rescans across them (the work the dirty-tracking
	// saves); FullRescores counts clears that ran all-dirty.
	Clears, Rescored, FullRescores int

	// ComponentsReused counts connected components of the
	// shares-a-best-offer graph whose cluster lists were taken from the
	// previous clear without re-running the builder; ComponentsRebuilt
	// counts components that went through it.
	ComponentsReused, ComponentsRebuilt int
}

// compClusters is one cached component: its member entries in canonical
// order, their best-offer slices (validated by pointer identity), and
// the cluster list their Updates produced.
type compClusters struct {
	entries  []*reqEntry
	best     [][]*bidding.Offer
	clusters []*cluster.Cluster
}

type reqEntry struct {
	r     *bidding.Request
	pos   int  // slot in Book.reqs (kept exact by compactLocked)
	left  int  // clears remaining before carry-out
	dirty bool // best-offer set must be rescanned
	best  []*bidding.Offer
}

type offEntry struct {
	o    *bidding.Offer
	pos  int
	left int
	// watch lists the request sets of every cluster that contained
	// this offer at the last clear; removing the offer dirties them
	// all. The slices are shared with the clusters (read-only).
	watch [][]*bidding.Request
}

// Book is the streaming order book. Create with New; the zero value is
// not usable.
type Book struct {
	mu  sync.Mutex
	cfg auction.Config

	// MaxCarry is the carry budget of newly inserted orders; set it
	// before the first insert (New initializes it to DefaultMaxCarry).
	MaxCarry int

	reqs    []*reqEntry // insertion order, nil holes compacted on clear
	offs    []*offEntry
	reqByID map[bidding.OrderID]*reqEntry
	offByID map[bidding.OrderID]*offEntry

	// prevMax is the per-kind maxima of the last clear's normalization
	// scale; a mismatch invalidates every cached quality score.
	prevMax  resource.Vector
	allDirty bool
	cleared  bool

	// fingerprints of every order ID ever admitted: re-using an ID with
	// different contents silently invalidates caches keyed by ID, so it
	// triggers a full flush instead (re-use with identical contents is
	// benign and common — Preview inserts and rolls back block orders
	// that Apply then re-inserts).
	seenReq map[bidding.OrderID]uint64
	seenOff map[bidding.OrderID]uint64

	cache   *auction.PrepassCache
	scratch []*match.Scratch

	// ixScratch and builder are the epoch-scoped arenas of the clearing
	// hot path: the block index's dense rows/masks and the cluster
	// builder's maps and mask slab are reused across clears instead of
	// reallocated. Both are reset at the START of the next clear, so
	// everything built from them stays valid through commit and outcome
	// marshalling. Guarded by mu like the rest of the book.
	ixScratch *match.IndexScratch
	builder   *cluster.Builder

	// compCache holds the per-component cluster lists of the last
	// clear, keyed by the component's first canonical request entry.
	// Cluster formation factorizes over connected components of the
	// shares-a-best-offer graph, so a component whose members and best
	// sets are unchanged (validated by pointer identity — BestOffers
	// allocates fresh slices, so a rescored request can never alias its
	// cached set) reuses its cluster list without re-running the
	// builder. Rebuilt fresh-keyed every clear; see clearLocked.
	compCache map[*reqEntry]*compClusters

	// memo carries the outcome of the latest Preview to a matching
	// Apply so the block's clear runs once, not twice. Any mutation in
	// between invalidates it (gen).
	gen  uint64
	memo *previewMemo

	blocks int // chain blocks applied (Apply calls); see Blocks
	stats  Stats

	// removals, when tracking is on (SetTrackRemovals), accumulates the
	// orders that left the book involuntarily — carry budget exhausted
	// or time-window expiry — since the last TakeRemovals call. The
	// metro federation reads it to decide which requests spill to a
	// neighbor exchange; everything else leaves it off, so the hot path
	// pays one boolean test.
	trackRemovals bool
	removals      Removals
}

// Removals lists the orders that left the book involuntarily since the
// last TakeRemovals: carried-out orders exhausted their carry budget at
// a commit; expired orders fell behind the market clock (ExpireBefore).
// Matched and cancelled orders are not removals — their fates are
// already visible to the caller. Slices follow the book's deterministic
// commit/expiry iteration order.
type Removals struct {
	CarriedRequests []*bidding.Request
	CarriedOffers   []*bidding.Offer
	ExpiredRequests []bidding.OrderID
	ExpiredOffers   []bidding.OrderID
}

// Empty reports whether the removal log holds nothing.
func (r Removals) Empty() bool {
	return len(r.CarriedRequests) == 0 && len(r.CarriedOffers) == 0 &&
		len(r.ExpiredRequests) == 0 && len(r.ExpiredOffers) == 0
}

// SetTrackRemovals switches involuntary-removal tracking on or off.
// Turning it off drops anything accumulated.
func (b *Book) SetTrackRemovals(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trackRemovals = on
	if !on {
		b.removals = Removals{}
	}
}

// TakeRemovals returns the involuntary removals accumulated since the
// last call and resets the log.
func (b *Book) TakeRemovals() Removals {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.removals
	b.removals = Removals{}
	return out
}

type previewMemo struct {
	gen uint64
	key string
	out *auction.Outcome
}

// New creates an empty book executing cfg at every clear. The
// reference matcher is unsupported (it exists to bypass exactly the
// index this book is built on); cfg.Match.Reference is ignored.
func New(cfg auction.Config) *Book {
	cfg.Match.Reference = false
	return &Book{
		cfg:      cfg,
		MaxCarry: DefaultMaxCarry,
		reqByID:  make(map[bidding.OrderID]*reqEntry),
		offByID:  make(map[bidding.OrderID]*offEntry),
		seenReq:  make(map[bidding.OrderID]uint64),
		seenOff:  make(map[bidding.OrderID]uint64),
		cache:    &auction.PrepassCache{},
	}
}

// fingerprint hashes an order's canonical JSON encoding (struct field
// order is fixed and map keys are sorted, so the bytes are stable).
func fingerprint(v any) uint64 {
	data, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// InsertRequest admits a request. Invalid orders and IDs already live
// in the book are rejected (counted, not fatal — a miner must process
// whatever a block contains). Returns whether the order was admitted.
func (b *Book) InsertRequest(r *bidding.Request) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.insertRequestLocked(r, true)
}

// InsertOffer admits an offer; same contract as InsertRequest.
func (b *Book) InsertOffer(o *bidding.Offer) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.insertOfferLocked(o, true)
}

func (b *Book) insertRequestLocked(r *bidding.Request, record bool) bool {
	b.gen++
	if r.Validate() != nil || b.reqByID[r.ID] != nil {
		if record {
			b.stats.RejectedRequests++
		}
		return false
	}
	fp := fingerprint(r)
	if prev, ok := b.seenReq[r.ID]; ok && prev != fp {
		b.flushCachesLocked()
	}
	b.seenReq[r.ID] = fp
	e := &reqEntry{r: r, pos: len(b.reqs), left: b.MaxCarry + 1, dirty: true}
	b.reqs = append(b.reqs, e)
	b.reqByID[r.ID] = e
	if record {
		b.stats.InsertedRequests++
	}
	return true
}

func (b *Book) insertOfferLocked(o *bidding.Offer, record bool) bool {
	b.gen++
	if o.Validate() != nil || b.offByID[o.ID] != nil {
		if record {
			b.stats.RejectedOffers++
		}
		return false
	}
	fp := fingerprint(o)
	if prev, ok := b.seenOff[o.ID]; ok && prev != fp {
		b.flushCachesLocked()
	}
	b.seenOff[o.ID] = fp
	e := &offEntry{o: o, pos: len(b.offs), left: b.MaxCarry + 1}
	b.offs = append(b.offs, e)
	b.offByID[o.ID] = e
	// A fresh offer can enter the best set of any request it is
	// feasible for; feasibility is scale-independent, so this is exact.
	for _, re := range b.reqs {
		if re != nil && !re.dirty && match.Feasible(re.r, o) {
			re.dirty = true
		}
	}
	if record {
		b.stats.InsertedOffers++
	}
	return true
}

// flushCachesLocked drops every cross-clear cache: an order ID was
// re-used with different contents, so membership-keyed state is no
// longer trustworthy.
func (b *Book) flushCachesLocked() {
	b.allDirty = true
	b.cache.Flush()
	b.compCache = nil
}

// CancelRequest removes a live request. Reports whether it was live.
func (b *Book) CancelRequest(id bidding.OrderID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.reqByID[id]
	if e == nil {
		return false
	}
	b.gen++
	b.removeRequestLocked(e)
	b.stats.CancelledRequests++
	return true
}

// CancelOffer removes a live offer. Reports whether it was live.
func (b *Book) CancelOffer(id bidding.OrderID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.offByID[id]
	if e == nil {
		return false
	}
	b.gen++
	b.removeOfferLocked(e)
	b.stats.CancelledOffers++
	return true
}

// ArrivalWatermark derives a market clock from a batch of arriving
// orders: the earliest window start among them. Orders whose windows end
// before that point predate everything the market will see from now on;
// the round loops (miner.SyncBook, sim's incremental rounds) feed it to
// ExpireBefore after each applied block. The watermark is a pure
// function of the block's bid time fields, so every consensus replica
// expires identically. ok is false for an empty batch (no clock
// advance).
func ArrivalWatermark(reqs []*bidding.Request, offs []*bidding.Offer) (now int64, ok bool) {
	for _, r := range reqs {
		if !ok || r.Start < now {
			now, ok = r.Start, true
		}
	}
	for _, o := range offs {
		if !ok || o.Start < now {
			now, ok = o.Start, true
		}
	}
	return now, ok
}

// ExpireBefore removes every order whose time window ends before now —
// it can no longer be scheduled (Const. 10–11). Returns the number of
// orders removed.
func (b *Book) ExpireBefore(now int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gen++
	n := 0
	for _, e := range b.reqs {
		if e != nil && e.r.End < now {
			b.removeRequestLocked(e)
			b.stats.ExpiredRequests++
			if b.trackRemovals {
				b.removals.ExpiredRequests = append(b.removals.ExpiredRequests, e.r.ID)
			}
			n++
		}
	}
	for _, e := range b.offs {
		if e != nil && e.o.End < now {
			b.removeOfferLocked(e)
			b.stats.ExpiredOffers++
			if b.trackRemovals {
				b.removals.ExpiredOffers = append(b.removals.ExpiredOffers, e.o.ID)
			}
			n++
		}
	}
	return n
}

// removeRequestLocked unlinks a request entry. Removing a request never
// changes another request's best-offer set, so nothing is dirtied.
func (b *Book) removeRequestLocked(e *reqEntry) {
	delete(b.reqByID, e.r.ID)
	b.reqs[e.pos] = nil
}

// removeOfferLocked unlinks an offer entry and dirties every request of
// every cluster that contained the offer at the last clear. That set
// covers every request whose cached best set can contain the offer
// (Builder.Update puts each best offer of r into r's exact best-set
// cluster), and removing an offer outside a request's returned best
// set never changes that set: the top-k scan's non-returned candidates
// all score below the band cut, so the set is insensitive to them.
func (b *Book) removeOfferLocked(e *offEntry) {
	delete(b.offByID, e.o.ID)
	b.offs[e.pos] = nil
	for _, rs := range e.watch {
		for _, r := range rs {
			if re := b.reqByID[r.ID]; re != nil {
				re.dirty = true
			}
		}
	}
}

// compactLocked drops removal holes, preserving insertion order.
func (b *Book) compactLocked() {
	reqs := b.reqs[:0]
	for _, e := range b.reqs {
		if e != nil {
			e.pos = len(reqs)
			reqs = append(reqs, e)
		}
	}
	b.reqs = reqs
	offs := b.offs[:0]
	for _, e := range b.offs {
		if e != nil {
			e.pos = len(offs)
			offs = append(offs, e)
		}
	}
	b.offs = offs
}

// LiveRequests returns the live requests in insertion order.
func (b *Book) LiveRequests() []*bidding.Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.compactLocked()
	out := make([]*bidding.Request, len(b.reqs))
	for i, e := range b.reqs {
		out[i] = e.r
	}
	return out
}

// LiveOffers returns the live offers in insertion order.
func (b *Book) LiveOffers() []*bidding.Offer {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.compactLocked()
	out := make([]*bidding.Offer, len(b.offs))
	for i, e := range b.offs {
		out[i] = e.o
	}
	return out
}

// Stats returns a snapshot of the book's conservation counters.
func (b *Book) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.LiveRequests, st.LiveOffers = 0, 0
	for _, e := range b.reqs {
		if e != nil {
			st.LiveRequests++
		}
	}
	for _, e := range b.offs {
		if e != nil {
			st.LiveOffers++
		}
	}
	return st
}

// Blocks returns how many chain blocks have been applied (Apply calls);
// chain-driven replicas use it as the next height to apply.
func (b *Book) Blocks() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.blocks
}

// Clear runs one clearing round over the live book under the given
// evidence and commits it: matched orders leave the book, every
// unmatched survivor spends one unit of carry budget and leaves when
// exhausted. The returned outcome is byte-identical to
// auction.Run(LiveRequests(), LiveOffers(), cfg) with cfg.Evidence set
// to evidence.
func (b *Book) Clear(evidence []byte) *auction.Outcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gen++
	out := b.clearLocked(evidence)
	b.commitLocked(out)
	return out
}

// clearLocked executes the incremental clear: rescore dirty requests,
// rebuild clusters from cached + fresh best sets in canonical order,
// and run the post-clustering mechanism. It refreshes every cache and
// resets all dirt; it does not commit (carry/removal) effects.
func (b *Book) clearLocked(evidence []byte) *auction.Outcome {
	b.compactLocked()
	reqs := make([]*bidding.Request, len(b.reqs))
	for i, e := range b.reqs {
		reqs[i] = e.r
	}
	offs := make([]*bidding.Offer, len(b.offs))
	for i, e := range b.offs {
		offs[i] = e.o
	}

	scale := match.BlockScale(reqs, offs)
	if !b.cleared || !scale.MaxVector().Equal(b.prevMax) {
		b.allDirty = true
		b.cache.Flush()
	}

	if b.ixScratch == nil {
		b.ixScratch = match.NewIndexScratch()
	}
	b.ixScratch.Reset()
	ix := match.NewIndexWith(reqs, offs, scale, b.ixScratch)
	ordered := ix.Requests() // canonical (Submitted, ID) order
	best := make([][]*bidding.Offer, len(ordered))
	entries := make([]*reqEntry, len(ordered))
	var dirtyIdx []int
	for i, r := range ordered {
		e := b.reqByID[r.ID]
		entries[i] = e
		if b.allDirty || e.dirty || e.best == nil {
			dirtyIdx = append(dirtyIdx, i)
		} else {
			best[i] = e.best
		}
	}

	workers := b.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if len(b.scratch) < workers {
		b.scratch = make([]*match.Scratch, workers)
		for i := range b.scratch {
			b.scratch[i] = match.NewScratch()
		}
	}
	cfg := b.cfg
	cfg.Evidence = evidence
	par.ForEachWorker(workers, len(dirtyIdx), func(w, j int) {
		i := dirtyIdx[j]
		best[i] = ix.BestOffers(i, cfg.Match, b.scratch[w])
	})

	clusters := b.buildClustersLocked(ordered, entries, best)

	out := auction.RunPrepared(reqs, offs, ix, clusters, cfg, b.cache)

	// Refresh caches: best sets and dirt on requests, cluster watch
	// lists on offers, and the scale fingerprint.
	for i, e := range entries {
		e.best = best[i]
		e.dirty = false
	}
	for _, e := range b.offs {
		e.watch = e.watch[:0]
	}
	for _, cl := range clusters {
		for _, o := range cl.Offers {
			if e := b.offByID[o.ID]; e != nil {
				e.watch = append(e.watch, cl.Requests)
			}
		}
	}
	b.prevMax = scale.MaxVector()
	b.cleared = true
	b.allDirty = false
	b.stats.Clears++
	b.stats.Rescored += len(dirtyIdx)
	if len(dirtyIdx) == len(ordered) {
		b.stats.FullRescores++
	}
	return out
}

// buildClustersLocked produces the clear's cluster list, exactly equal
// to a from-scratch cluster.BuildIndex run over (ordered, best) —
// cluster formation is order-dependent global state, but it factorizes
// over connected components of the shares-a-best-offer graph: two
// requests interact in Algorithm 2 only through subset/superset/
// intersection tests on their best-offer masks, all of which are vacuous
// for disjoint offer sets. So components whose members and best sets
// are unchanged since the previous clear (pointer-identical entries and
// best slices — rescoring always allocates fresh slices) reuse their
// cached cluster lists, only dirty components re-run the builder, and
// the merged list is restored to monolithic creation order by the
// clusters' creation tags (cluster.SortByCreation).
func (b *Book) buildClustersLocked(ordered []*bidding.Request, entries []*reqEntry, best [][]*bidding.Offer) []*cluster.Cluster {
	// Union-find over request indices: requests sharing any best-set
	// offer join one component. Union by smaller root keeps each root
	// the component's first canonical member.
	parent := make([]int, len(ordered))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := make(map[*bidding.Offer]int, len(b.offs))
	for i := range ordered {
		for _, o := range best[i] {
			j, ok := owner[o]
			if !ok {
				owner[o] = i
				continue
			}
			ri, rj := find(i), find(j)
			if ri != rj {
				if rj < ri {
					ri, rj = rj, ri
				}
				parent[rj] = ri
			}
		}
	}

	// Group members per root in canonical order. Requests with empty
	// best sets create no clusters and belong to no component.
	members := make(map[int][]int)
	var roots []int
	for i := range ordered {
		if len(best[i]) == 0 {
			continue
		}
		r := find(i)
		if members[r] == nil {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}

	nextCache := make(map[*reqEntry]*compClusters, len(roots))
	var clusters []*cluster.Cluster
	var dirtyIdx []int   // indices needing a builder run, canonical order
	var dirtyRoots []int // their components
	for _, root := range roots {
		mem := members[root]
		cached := b.compCache[entries[mem[0]]]
		valid := cached != nil && len(cached.entries) == len(mem)
		if valid {
			for k, i := range mem {
				if cached.entries[k] != entries[i] || !sameSlice(cached.best[k], best[i]) {
					valid = false
					break
				}
			}
		}
		if valid {
			nextCache[entries[mem[0]]] = cached
			clusters = append(clusters, cached.clusters...)
			b.stats.ComponentsReused++
			continue
		}
		dirtyIdx = append(dirtyIdx, mem...)
		dirtyRoots = append(dirtyRoots, root)
		b.stats.ComponentsRebuilt++
	}

	if len(dirtyIdx) > 0 {
		sort.Ints(dirtyIdx)
		// One builder pass over all dirty components at once, in
		// canonical order: cross-component Updates cannot interact, so
		// this equals per-component runs while sharing one slab. The
		// builder is persistent: Reset/Reserve recycle its maps and
		// mask slab, and Clusters() severs the returned clusters from
		// that memory (the prepass cache retains them across clears).
		if b.builder == nil {
			b.builder = cluster.NewBuilder()
		}
		builder := b.builder
		builder.Reset()
		builder.Reserve(len(ordered))
		for _, i := range dirtyIdx {
			builder.Update(ordered[i], best[i])
		}
		rebuilt := builder.Clusters()

		// Split the rebuilt clusters back into their creators'
		// components and cache each component's list.
		rootOf := make(map[bidding.OrderID]int, len(dirtyIdx))
		for _, i := range dirtyIdx {
			rootOf[ordered[i].ID] = find(i)
		}
		byRoot := make(map[int][]*cluster.Cluster, len(dirtyRoots))
		for _, cl := range rebuilt {
			r := rootOf[cl.Creator()]
			byRoot[r] = append(byRoot[r], cl)
		}
		for _, root := range dirtyRoots {
			mem := members[root]
			cc := &compClusters{
				entries:  make([]*reqEntry, len(mem)),
				best:     make([][]*bidding.Offer, len(mem)),
				clusters: byRoot[root],
			}
			for k, i := range mem {
				cc.entries[k] = entries[i]
				cc.best[k] = best[i]
			}
			nextCache[entries[mem[0]]] = cc
		}
		clusters = append(clusters, rebuilt...)
	}

	b.compCache = nextCache
	cluster.SortByCreation(clusters)
	return clusters
}

// sameSlice reports whether two slices are the identical view of the
// same backing array.
func sameSlice(a, b []*bidding.Offer) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// commitLocked applies a clear's outcome to the book: matched orders
// are consumed, every unmatched survivor spends one carry unit and is
// carried out at zero.
func (b *Book) commitLocked(out *auction.Outcome) {
	matchedReq := make(map[bidding.OrderID]bool, len(out.Matches))
	matchedOff := make(map[bidding.OrderID]bool, len(out.Matches))
	for i := range out.Matches {
		matchedReq[out.Matches[i].Request.ID] = true
		matchedOff[out.Matches[i].Offer.ID] = true
	}
	for _, e := range b.reqs {
		if e == nil {
			continue
		}
		if matchedReq[e.r.ID] {
			b.removeRequestLocked(e)
			b.stats.MatchedRequests++
			continue
		}
		e.left--
		if e.left <= 0 {
			b.removeRequestLocked(e)
			b.stats.CarriedOutRequests++
			if b.trackRemovals {
				b.removals.CarriedRequests = append(b.removals.CarriedRequests, e.r)
			}
		}
	}
	for _, e := range b.offs {
		if e == nil {
			continue
		}
		if matchedOff[e.o.ID] {
			b.removeOfferLocked(e)
			b.stats.MatchedOffers++
			continue
		}
		e.left--
		if e.left <= 0 {
			b.removeOfferLocked(e)
			b.stats.CarriedOutOffers++
			if b.trackRemovals {
				b.removals.CarriedOffers = append(b.removals.CarriedOffers, e.o)
			}
		}
	}
	b.memo = nil
}

// previewKey identifies a block's worth of admitted orders under an
// evidence value, for Preview→Apply memoization. Order contents (not
// just IDs) are hashed, so an Apply whose orders differ from the
// Preview's in any field re-clears instead of reusing the memo.
func previewKey(evidence []byte, reqs []*bidding.Request, offs []*bidding.Offer) string {
	h := fnv.New64a()
	h.Write(evidence)
	for _, r := range reqs {
		fmt.Fprintf(h, "\x00%s/%x", r.ID, fingerprint(r))
	}
	for _, o := range offs {
		fmt.Fprintf(h, "\x01%s/%x", o.ID, fingerprint(o))
	}
	return fmt.Sprintf("%x/%d/%d", h.Sum64(), len(reqs), len(offs))
}

// admit partitions a block's orders: news whose ID is already live are
// dropped (both producer and verifier replicas drop them identically),
// invalid orders are recorded as rejected, the rest are admitted.
func (b *Book) admitBlock(newReqs []*bidding.Request, newOffs []*bidding.Offer, record bool) (addedR []*bidding.Request, addedO []*bidding.Offer, rejR, rejO []bidding.OrderID) {
	for _, r := range newReqs {
		if b.reqByID[r.ID] != nil {
			continue // already live: the carried copy stays authoritative
		}
		if b.insertRequestLocked(r, record) {
			addedR = append(addedR, r)
		} else {
			rejR = append(rejR, r.ID)
		}
	}
	for _, o := range newOffs {
		if b.offByID[o.ID] != nil {
			continue
		}
		if b.insertOfferLocked(o, record) {
			addedO = append(addedO, o)
		} else {
			rejO = append(rejO, o.ID)
		}
	}
	return addedR, addedO, rejR, rejO
}

// Preview computes the outcome a block with the given orders would
// commit, without mutating the book's live set: the orders are
// admitted temporarily, a clear runs, and the admissions are rolled
// back (rollback dirt makes the caches exact again). The returned
// request/offer slices are the full order set the outcome was computed
// over — carried live orders plus the block's admitted ones — which is
// what a verifier must hand to the audit layer.
//
// The outcome is memoized: an Apply with the same orders and evidence,
// with no intervening mutation, reuses it without a second clear.
func (b *Book) Preview(newReqs []*bidding.Request, newOffs []*bidding.Offer, evidence []byte) (*auction.Outcome, []*bidding.Request, []*bidding.Offer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	addedR, addedO, rejR, rejO := b.admitBlock(newReqs, newOffs, false)
	out := b.clearLocked(evidence)
	out.RejectedRequests = append(out.RejectedRequests, rejR...)
	out.RejectedOffers = append(out.RejectedOffers, rejO...)

	b.compactLocked()
	allReqs := make([]*bidding.Request, len(b.reqs))
	for i, e := range b.reqs {
		allReqs[i] = e.r
	}
	allOffs := make([]*bidding.Offer, len(b.offs))
	for i, e := range b.offs {
		allOffs[i] = e.o
	}

	// Roll back the temporary admissions. Offer removal dirties the
	// requests whose fresh best sets saw the block's offers, restoring
	// the invariant that every clean request's cached best set is its
	// best set over the live market.
	for _, r := range addedR {
		b.removeRequestLocked(b.reqByID[r.ID])
	}
	for _, o := range addedO {
		b.removeOfferLocked(b.offByID[o.ID])
	}
	b.gen++
	b.memo = &previewMemo{gen: b.gen, key: previewKey(evidence, addedR, addedO), out: out}
	return out, allReqs, allOffs
}

// Apply commits a block to the book: its orders are admitted
// permanently, the clear runs (or is reused from a matching Preview),
// and the outcome's commit effects — matched-order consumption and
// carry decay — are applied. This is the only operation that advances
// Blocks().
func (b *Book) Apply(newReqs []*bidding.Request, newOffs []*bidding.Offer, evidence []byte) *auction.Outcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	memo := b.memo
	// The memo is valid only when nothing mutated the book since the
	// Preview that wrote it (every mutation bumps gen without touching
	// the memo).
	reuse := memo != nil && memo.gen == b.gen
	addedR, addedO, rejR, rejO := b.admitBlock(newReqs, newOffs, true)
	var out *auction.Outcome
	if reuse && memo.key == previewKey(evidence, addedR, addedO) {
		out = memo.out
	} else {
		out = b.clearLocked(evidence)
		out.RejectedRequests = append(out.RejectedRequests, rejR...)
		out.RejectedOffers = append(out.RejectedOffers, rejO...)
	}
	b.commitLocked(out)
	b.blocks++
	b.gen++
	return out
}
