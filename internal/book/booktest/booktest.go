// Package booktest is the differential-oracle harness of the streaming
// order book: it replays randomized multi-epoch mutation traces —
// inserts, cancels, time expiry, and carry, interleaved with clears —
// simultaneously against the incremental book and an independent
// from-scratch mirror, asserting byte-identical outcomes at every
// clearing round plus the conservation invariant
//
//	inserted == matched + carried(live) + expired + cancelled + carried-out
//
// per epoch. Traces are encoded as plain bytes (3 bytes per op), so the
// same decoder serves the property tests and FuzzBookMutations.
package booktest

import (
	"bytes"
	"fmt"

	"decloud/internal/auction"
	"decloud/internal/auction/paralleltest"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/workload"
)

// Horizon is the pool's time horizon (the workload default, 6 hours);
// the trace clock wraps inside it so expiry stays meaningful.
const Horizon int64 = 6 * 60 * 60

// Pool is the fixed order universe a trace draws from: every op
// references pool slots, so arbitrary trace bytes decode to valid
// operations. Besides the generated market it carries crafted edge
// orders — invalid windows and ID collisions with different contents —
// so traces exercise the book's rejection and cache-flush paths.
type Pool struct {
	Reqs []*bidding.Request
	Offs []*bidding.Offer
}

// NewPool builds a deterministic pool of roughly n requests and the
// workload's matching supply side.
func NewPool(seed int64, n int) *Pool {
	m := workload.Generate(workload.Config{Seed: seed, Requests: n})
	p := &Pool{Reqs: m.Requests, Offs: m.Offers}

	// Invalid orders: inverted time windows fail Validate.
	badR := *m.Requests[0]
	badR.ID, badR.Start, badR.End = "booktest-bad-req", 100, 50
	p.Reqs = append(p.Reqs, &badR)
	badO := *m.Offers[0]
	badO.ID, badO.Start, badO.End = "booktest-bad-off", 100, 50
	p.Offs = append(p.Offs, &badO)

	// ID re-use with different contents: inserting one of these after
	// the other has lived and left must flush the book's caches.
	varR := *m.Requests[1]
	varR.Bid *= 1.5
	varR.TrueValue = varR.Bid
	p.Reqs = append(p.Reqs, &varR)
	varO := *m.Offers[1]
	varO.Bid *= 1.5
	varO.TrueCost = varO.Bid
	p.Offs = append(p.Offs, &varO)
	return p
}

// NewGeoPool builds a pool over a geo-fragmented market: participants
// scatter across the unit square and every request carries a
// MaxDistance = radius locality constraint, so the shares-a-best-offer
// graph splits into several connected components. Traces over this pool
// are the differential guard of the book's component-granular cluster
// reuse — reuse must fire without moving a single outcome byte.
func NewGeoPool(seed int64, n int, radius float64) *Pool {
	m := workload.Generate(workload.Config{Seed: seed, Requests: n, GeoRadius: radius})
	return &Pool{Reqs: m.Requests, Offs: m.Offers}
}

// Op is one decoded trace operation.
type Op struct {
	Kind byte // one of the Op* constants
	Arg  int
}

// Trace opcodes. InsertReq/InsertOff stage a pool order into the
// pending batch; ClearDirect flushes the batch through InsertRequest/
// InsertOffer + Clear, ClearBlock through the miner-path Preview +
// Apply pair (asserting the two agree); Cancel removes a live order;
// Expire advances the wrapped trace clock and expires stale windows.
const (
	OpInsertReq byte = iota
	OpInsertOff
	OpCancelReq
	OpCancelOff
	OpExpire
	OpClearDirect
	OpClearBlock
	opCount
)

// Decode turns arbitrary bytes into a trace: 3 bytes per op — opcode
// mod opCount, then a big-endian 16-bit argument. Total by
// construction; any fuzz input is a valid trace.
func Decode(data []byte) []Op {
	ops := make([]Op, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		ops = append(ops, Op{
			Kind: data[i] % opCount,
			Arg:  int(data[i+1])<<8 | int(data[i+2]),
		})
	}
	return ops
}

// mirror is the independent from-scratch model the book is compared
// against: plain slices and maps, no caching, no index reuse — its
// clears call auction.Run on the full live market every time.
type mirror struct {
	reqs    []*bidding.Request
	offs    []*bidding.Offer
	reqLeft map[bidding.OrderID]int
	offLeft map[bidding.OrderID]int
}

func (m *mirror) liveReq(id bidding.OrderID) bool { _, ok := m.reqLeft[id]; return ok }
func (m *mirror) liveOff(id bidding.OrderID) bool { _, ok := m.offLeft[id]; return ok }

func (m *mirror) removeReq(id bidding.OrderID) {
	delete(m.reqLeft, id)
	for i, r := range m.reqs {
		if r.ID == id {
			m.reqs = append(m.reqs[:i], m.reqs[i+1:]...)
			return
		}
	}
}

func (m *mirror) removeOff(id bidding.OrderID) {
	delete(m.offLeft, id)
	for i, o := range m.offs {
		if o.ID == id {
			m.offs = append(m.offs[:i], m.offs[i+1:]...)
			return
		}
	}
}

// Replay runs one trace through a fresh book and the mirror under cfg,
// returning an error at the first divergence. maxCarry sets the carry
// budget of both models.
func Replay(pool *Pool, ops []Op, cfg auction.Config, maxCarry int) error {
	bk := book.New(cfg)
	bk.MaxCarry = maxCarry
	mir := &mirror{
		reqLeft: make(map[bidding.OrderID]int),
		offLeft: make(map[bidding.OrderID]int),
	}
	var pendR []*bidding.Request
	var pendO []*bidding.Offer
	pendingID := make(map[bidding.OrderID]bool)
	var now int64
	clears := 0

	clear := func(block bool) error {
		// Split the batch exactly as the book's admission will: live
		// duplicates are dropped, invalid orders are rejected, the rest
		// become live with a fresh carry budget.
		var admitR, oracleR []*bidding.Request
		for _, r := range pendR {
			if mir.liveReq(r.ID) {
				continue
			}
			oracleR = append(oracleR, r)
			if r.Validate() == nil {
				admitR = append(admitR, r)
			}
		}
		var admitO, oracleO []*bidding.Offer
		for _, o := range pendO {
			if mir.liveOff(o.ID) {
				continue
			}
			oracleO = append(oracleO, o)
			if o.Validate() == nil {
				admitO = append(admitO, o)
			}
		}

		evidence := []byte(fmt.Sprintf("booktest-evidence-%d", clears))
		clears++

		// Oracle: rebuild from scratch over the union market. In direct
		// mode the invalid orders were rejected at insert time and never
		// reach the clear, matching an oracle input of live orders only.
		oracleCfg := cfg
		oracleCfg.Evidence = evidence
		unionR := append(append([]*bidding.Request{}, mir.reqs...), oracleR...)
		unionO := append(append([]*bidding.Offer{}, mir.offs...), oracleO...)
		if !block {
			unionR = append(append([]*bidding.Request{}, mir.reqs...), admitR...)
			unionO = append(append([]*bidding.Offer{}, mir.offs...), admitO...)
		}
		want := auction.Run(unionR, unionO, oracleCfg)
		wantJSON, err := paralleltest.MarshalOutcome(want)
		if err != nil {
			return err
		}

		// Book: miner path (Preview + Apply) or direct inserts + Clear.
		var got *auction.Outcome
		if block {
			preview, _, _ := bk.Preview(pendR, pendO, evidence)
			got = bk.Apply(pendR, pendO, evidence)
			prevJSON, err := paralleltest.MarshalOutcome(preview)
			if err != nil {
				return err
			}
			gotJSON, err := paralleltest.MarshalOutcome(got)
			if err != nil {
				return err
			}
			if !bytes.Equal(prevJSON, gotJSON) {
				return fmt.Errorf("clear %d: Preview and Apply disagree", clears-1)
			}
		} else {
			for _, r := range pendR {
				bk.InsertRequest(r)
			}
			for _, o := range pendO {
				bk.InsertOffer(o)
			}
			got = bk.Clear(evidence)
		}
		gotJSON, err := paralleltest.MarshalOutcome(got)
		if err != nil {
			return err
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			return fmt.Errorf("clear %d (block=%v): incremental outcome diverges from rebuild oracle:\nwant %s\ngot  %s",
				clears-1, block, wantJSON, gotJSON)
		}

		// Advance the mirror with the oracle outcome: matched orders are
		// consumed, unmatched survivors spend one carry unit.
		for _, r := range admitR {
			mir.reqs = append(mir.reqs, r)
			mir.reqLeft[r.ID] = maxCarry + 1
		}
		for _, o := range admitO {
			mir.offs = append(mir.offs, o)
			mir.offLeft[o.ID] = maxCarry + 1
		}
		matchedR := make(map[bidding.OrderID]bool)
		matchedO := make(map[bidding.OrderID]bool)
		for i := range want.Matches {
			matchedR[want.Matches[i].Request.ID] = true
			matchedO[want.Matches[i].Offer.ID] = true
		}
		for _, r := range append([]*bidding.Request{}, mir.reqs...) {
			if matchedR[r.ID] {
				mir.removeReq(r.ID)
				continue
			}
			if mir.reqLeft[r.ID]--; mir.reqLeft[r.ID] <= 0 {
				mir.removeReq(r.ID)
			}
		}
		for _, o := range append([]*bidding.Offer{}, mir.offs...) {
			if matchedO[o.ID] {
				mir.removeOff(o.ID)
				continue
			}
			if mir.offLeft[o.ID]--; mir.offLeft[o.ID] <= 0 {
				mir.removeOff(o.ID)
			}
		}

		pendR, pendO = nil, nil
		pendingID = make(map[bidding.OrderID]bool)
		return compareState(bk, mir)
	}

	for _, op := range ops {
		switch op.Kind {
		case OpInsertReq:
			r := pool.Reqs[op.Arg%len(pool.Reqs)]
			// One copy of an ID per batch and never a live duplicate:
			// keeps the book/oracle admission rules aligned (the book
			// silently drops live duplicates, the screen does not).
			if !pendingID[r.ID] && !mir.liveReq(r.ID) {
				pendingID[r.ID] = true
				pendR = append(pendR, r)
			}
		case OpInsertOff:
			o := pool.Offs[op.Arg%len(pool.Offs)]
			if !pendingID[o.ID] && !mir.liveOff(o.ID) {
				pendingID[o.ID] = true
				pendO = append(pendO, o)
			}
		case OpCancelReq:
			id := pool.Reqs[op.Arg%len(pool.Reqs)].ID
			if mir.liveReq(id) {
				if !bk.CancelRequest(id) {
					return fmt.Errorf("cancel request %s: live in mirror, not in book", id)
				}
				mir.removeReq(id)
			}
		case OpCancelOff:
			id := pool.Offs[op.Arg%len(pool.Offs)].ID
			if mir.liveOff(id) {
				if !bk.CancelOffer(id) {
					return fmt.Errorf("cancel offer %s: live in mirror, not in book", id)
				}
				mir.removeOff(id)
			}
		case OpExpire:
			now = (now + 1 + int64(op.Arg)%600) % Horizon
			bk.ExpireBefore(now)
			for _, r := range append([]*bidding.Request{}, mir.reqs...) {
				if r.End < now {
					mir.removeReq(r.ID)
				}
			}
			for _, o := range append([]*bidding.Offer{}, mir.offs...) {
				if o.End < now {
					mir.removeOff(o.ID)
				}
			}
		case OpClearDirect:
			if err := clear(false); err != nil {
				return err
			}
		case OpClearBlock:
			if err := clear(true); err != nil {
				return err
			}
		}
	}
	// Always finish with a clear so every trace exercises at least one
	// differential comparison.
	return clear(len(ops)%2 == 0)
}

// compareState checks the book's live set against the mirror's and the
// book's conservation counters against themselves.
func compareState(bk *book.Book, mir *mirror) error {
	liveR := bk.LiveRequests()
	if len(liveR) != len(mir.reqs) {
		return fmt.Errorf("live requests: book %d, mirror %d", len(liveR), len(mir.reqs))
	}
	for i, r := range liveR {
		if r.ID != mir.reqs[i].ID {
			return fmt.Errorf("live request %d: book %s, mirror %s", i, r.ID, mir.reqs[i].ID)
		}
	}
	liveO := bk.LiveOffers()
	if len(liveO) != len(mir.offs) {
		return fmt.Errorf("live offers: book %d, mirror %d", len(liveO), len(mir.offs))
	}
	for i, o := range liveO {
		if o.ID != mir.offs[i].ID {
			return fmt.Errorf("live offer %d: book %s, mirror %s", i, o.ID, mir.offs[i].ID)
		}
	}

	st := bk.Stats()
	if got := st.MatchedRequests + st.CancelledRequests + st.ExpiredRequests +
		st.CarriedOutRequests + st.LiveRequests; got != st.InsertedRequests {
		return fmt.Errorf("request conservation broken: matched %d + cancelled %d + expired %d + carried-out %d + live %d != inserted %d",
			st.MatchedRequests, st.CancelledRequests, st.ExpiredRequests,
			st.CarriedOutRequests, st.LiveRequests, st.InsertedRequests)
	}
	if got := st.MatchedOffers + st.CancelledOffers + st.ExpiredOffers +
		st.CarriedOutOffers + st.LiveOffers; got != st.InsertedOffers {
		return fmt.Errorf("offer conservation broken: matched %d + cancelled %d + expired %d + carried-out %d + live %d != inserted %d",
			st.MatchedOffers, st.CancelledOffers, st.ExpiredOffers,
			st.CarriedOutOffers, st.LiveOffers, st.InsertedOffers)
	}
	return nil
}
