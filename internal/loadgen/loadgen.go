// Package loadgen is the open-loop load generator for networked DeCloud
// markets. It drives a live market node over real TCP: a deterministic
// arrival schedule (uniform or Poisson) paces order emission from the
// epoch-structured workload stream, a p2p.LoadClient multiplexes
// thousands of sealed-bid identities over one gossip connection, and the
// report folds per-bid submit→commit latencies into percentile summaries
// via internal/obs.
//
// Open loop means the schedule never slows down to match the market's
// service rate: if the system under test falls behind, orders queue and
// later arrivals fire on time (or immediately once overdue), exposing
// real saturation behavior instead of coordinated-omission flattery.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"decloud/internal/auction"
	"decloud/internal/futures"
	"decloud/internal/obs"
	"decloud/internal/p2p"
	"decloud/internal/workload"
)

// Arrival selects the inter-arrival process of the open-loop schedule.
type Arrival string

const (
	// ArrivalUniform spaces orders exactly 1/Rate apart.
	ArrivalUniform Arrival = "uniform"
	// ArrivalPoisson draws exponential inter-arrival gaps with mean
	// 1/Rate — bursty, memoryless traffic.
	ArrivalPoisson Arrival = "poisson"
)

// DefaultLatencyBounds cover submit→commit latencies from 10 ms to two
// minutes — block production at load-test scale is seconds, not millis.
var DefaultLatencyBounds = []float64{
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 15, 20, 30, 45, 60, 90, 120,
}

// Config parameterizes one load run.
type Config struct {
	// Addr is the market node to drive (host:port).
	Addr string
	// Orders is the total number of orders to emit.
	Orders int
	// Rate is the target arrival rate in orders/second. 0 emits as fast
	// as the workers can seal and write.
	Rate float64
	// Arrival selects the inter-arrival process (default uniform).
	Arrival Arrival
	// Workers is the number of concurrent submit workers (default 4).
	// Virtual clients are sharded across workers, so one worker owns
	// each identity's entropy stream.
	Workers int
	// Conns is the number of TCP connections submissions shard over
	// (default 1). Each worker pins connection w%Conns, so at
	// Conns >= Workers no two workers share a socket's write path.
	Conns int
	// Seed makes the schedule and the order stream deterministic.
	Seed int64
	// Stream shapes the emitted orders; its Seed defaults to Seed and
	// its Clients default to Workers (one identity per worker) when
	// unset.
	Stream workload.StreamConfig
	// DrainTimeout bounds the wait for outstanding commits after the
	// last order is emitted (default 90 s).
	DrainTimeout time.Duration
	// LatencyBounds are the histogram bucket bounds in seconds
	// (default DefaultLatencyBounds).
	LatencyBounds []float64
	// Registry optionally receives the latency histogram (and lets a
	// caller scrape it live); nil uses a private registry.
	Registry *obs.Registry
	// Futures, when enabled, puts an in-process RESERVATION DESK in
	// front of submission: forward-tagged stream orders (see
	// Stream.FuturesFraction) are intercepted before the wire. A forward
	// offer banks OverbookRatio × its declared resource·time capacity at
	// the desk and is withheld from the spot node; a forward request that
	// fits the banked pool is reserved (withheld, counted in the report),
	// and one that does not falls through to normal spot submission. The
	// desk models the client-side reservation stage of the two-stage
	// market (internal/futures) without needing a futures-aware node.
	Futures auction.FuturesConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalUniform
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 90 * time.Second
	}
	if len(c.LatencyBounds) == 0 {
		c.LatencyBounds = DefaultLatencyBounds
	}
	if c.Stream.Seed == 0 {
		c.Stream.Seed = c.Seed
	}
	if c.Stream.Clients <= 0 {
		c.Stream.Clients = c.Workers
	}
	return c
}

// Report is the outcome of one load run.
type Report struct {
	Submitted int64 `json:"submitted"`
	Committed int64 `json:"committed"`
	Matched   int64 `json:"matched"`
	Errors    int64 `json:"errors"`
	// EmitSeconds is the wall time of the emission phase; DrainSeconds
	// the extra wait for outstanding commits.
	EmitSeconds  float64 `json:"emit_seconds"`
	DrainSeconds float64 `json:"drain_seconds"`
	// AchievedRate is submitted orders per emission second.
	AchievedRate float64 `json:"achieved_rate"`
	// Latency summarizes submit→commit seconds across committed bids.
	Latency obs.LatencySummary `json:"latency"`
	// Reservation-desk extras (Config.Futures enabled only): forward
	// offers banked, forward requests reserved against the banked pool
	// (and their aggregate resource·time), and forward requests that
	// missed the pool and fell through to spot submission.
	ForwardOffers   int64   `json:"forward_offers,omitempty"`
	Reserved        int64   `json:"reserved,omitempty"`
	ReservedLoad    float64 `json:"reserved_load,omitempty"`
	SpotFallthrough int64   `json:"spot_fallthrough,omitempty"`
	// PenaltyRate echoes the configured break penalty for downstream
	// report consumers.
	PenaltyRate float64 `json:"penalty_rate,omitempty"`
}

// reservationDesk is the loadgen's client-side reservation stage: a
// scalar resource·time pool banked from forward offers, drawn down by
// forward requests. Only touched from the single-threaded emission
// loop.
type reservationDesk struct {
	cfg      auction.FuturesConfig
	capacity float64 // remaining overbookable pool
	rep      Report  // desk counters, folded into the run report
}

// intercept routes one stream order through the desk. It reports true
// when the order is absorbed (withheld from spot submission).
func (d *reservationDesk) intercept(so workload.StreamOrder) bool {
	if d == nil || !so.Forward {
		return false
	}
	if so.Offer != nil {
		d.capacity += d.cfg.Ratio() * futures.OfferCapacity(so.Offer)
		d.rep.ForwardOffers++
		return true
	}
	load := futures.RequestLoad(so.Request)
	if load <= d.capacity {
		d.capacity -= load
		d.rep.Reserved++
		d.rep.ReservedLoad += load
		return true
	}
	d.rep.SpotFallthrough++
	return false
}

// Schedule returns n deterministic arrival offsets from run start,
// non-decreasing. rate 0 yields an all-zero schedule (emit at once).
func Schedule(n int, rate float64, arrival Arrival, seed int64) ([]time.Duration, error) {
	out := make([]time.Duration, n)
	if rate <= 0 {
		return out, nil
	}
	switch arrival {
	case ArrivalUniform, "":
		gap := float64(time.Second) / rate
		for i := range out {
			out[i] = time.Duration(float64(i) * gap)
		}
	case ArrivalPoisson:
		rnd := rand.New(rand.NewSource(seed))
		var t float64
		for i := range out {
			t += rnd.ExpFloat64() / rate * float64(time.Second)
			out[i] = time.Duration(t)
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", arrival)
	}
	return out, nil
}

// Engine runs one configured load test.
type Engine struct {
	cfg Config
}

// New builds an engine (defaults applied).
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Run executes the load test: connect, emit on schedule, drain commits,
// report. Cancelling ctx mid-flight stops emission, closes the client,
// and returns the partial report with ctx's error — no goroutine
// survives the call either way.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	cfg := e.cfg
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lat := reg.Histogram("decloud_loadgen_commit_seconds", "submit→commit latency", cfg.LatencyBounds)

	schedule, err := Schedule(cfg.Orders, cfg.Rate, cfg.Arrival, cfg.Seed)
	if err != nil {
		return nil, err
	}
	lc, err := p2p.NewLoadClientConns("loadgen", "127.0.0.1:0", make([]io.Reader, cfg.Stream.Clients), lat, cfg.Conns)
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	if err := lc.Connect(cfg.Addr); err != nil {
		return nil, err
	}

	stream := workload.NewStream(cfg.Stream)
	var desk *reservationDesk
	if cfg.Futures.Enabled() {
		desk = &reservationDesk{cfg: cfg.Futures}
	}

	// One jobs channel per worker: client c always lands on worker
	// c%Workers, so no identity is ever sealed from two goroutines.
	jobs := make([]chan workload.StreamOrder, cfg.Workers)
	for w := range jobs {
		jobs[w] = make(chan workload.StreamOrder, cfg.Orders/cfg.Workers+1)
	}
	var wg sync.WaitGroup
	var errCount int64
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := w % cfg.Conns // per-worker connection affinity
			for so := range jobs[w] {
				var err error
				if so.Request != nil {
					_, err = lc.SubmitRequestOn(conn, so.Client, so.Request)
				} else {
					_, err = lc.SubmitOfferOn(conn, so.Client, so.Offer)
				}
				if err != nil {
					errMu.Lock()
					errCount++
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}(w)
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	cancelled := false
emit:
	for i := 0; i < cfg.Orders; i++ {
		if wait := schedule[i] - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				cancelled = true
				break emit
			}
		} else if ctx.Err() != nil {
			cancelled = true
			break emit
		}
		so := stream.Next()
		if desk.intercept(so) {
			continue
		}
		jobs[so.Client%cfg.Workers] <- so
	}
	for _, ch := range jobs {
		close(ch)
	}
	wg.Wait()
	emitElapsed := time.Since(start)

	rep := &Report{EmitSeconds: emitElapsed.Seconds()}
	if desk != nil {
		rep.ForwardOffers = desk.rep.ForwardOffers
		rep.Reserved = desk.rep.Reserved
		rep.ReservedLoad = desk.rep.ReservedLoad
		rep.SpotFallthrough = desk.rep.SpotFallthrough
		rep.PenaltyRate = cfg.Futures.PenaltyRate
	}
	drainStart := time.Now()
	if !cancelled {
		e.drain(ctx, lc)
	}
	rep.DrainSeconds = time.Since(drainStart).Seconds()
	rep.Submitted, rep.Committed, rep.Matched = lc.Counts()
	errMu.Lock()
	rep.Errors = errCount
	errMu.Unlock()
	if rep.EmitSeconds > 0 {
		rep.AchievedRate = float64(rep.Submitted) / rep.EmitSeconds
	}
	rep.Latency = lat.Snapshot().Summarize()
	if cancelled {
		return rep, ctx.Err()
	}
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return rep, fmt.Errorf("loadgen: %d submissions failed, first: %w", errCount, firstErr)
	}
	return rep, nil
}

// drain waits until every submitted bid is committed, progress stalls
// past DrainTimeout, or ctx is cancelled. The timeout is per-progress:
// each newly committed bid resets it, so a long multi-round run is not
// cut off while blocks are still landing.
func (e *Engine) drain(ctx context.Context, lc *p2p.LoadClient) {
	deadline := time.NewTimer(e.cfg.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	_, last, _ := lc.Counts()
	for {
		select {
		case <-ctx.Done():
			return
		case <-deadline.C:
			return
		case <-tick.C:
			sub, com, _ := lc.Counts()
			if com >= sub {
				return
			}
			if com > last {
				last = com
				deadline.Reset(e.cfg.DrainTimeout)
			}
		}
	}
}
