package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"decloud/internal/p2p"
)

// BenchmarkLoadRound maps the load frontier: each point pools N orders
// on a live TCP market node and commits them in one full auction round
// (seal → submit → pool → preamble PoW → reveal → allocate → block).
// minPool == N gates production, so every point measures exactly
// "N open orders per round". The custom units (orders/round, rounds/sec,
// p50_s/p95_s/p99_s) land in benchparse's Metrics map, versioning the
// frontier in BENCH_PR6.json next to ns/op.
//
// The 100000-order point is the acceptance floor for this harness: a
// sustained round of ≥1e5 open orders over a real socket.
func BenchmarkLoadRound(b *testing.B) {
	for _, orders := range []int{10000, 30000, 100000} {
		b.Run(fmt.Sprintf("orders%d", orders), func(b *testing.B) {
			benchRounds(b, orders)
		})
	}
}

func benchRounds(b *testing.B, orders int) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	// The frontier round must gather up to 1e5 reveals over one
	// connection: generous windows, and retries in case a reveal burst
	// overruns the producer's channel.
	round := p2p.RoundConfig{RevealWindow: 30 * time.Second, RevealRetries: 2}
	mn := startMarket(b, ctx, orders, round)

	var committed, blocks, totalSec, p50, p95, p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h0 := int64(mn.Chain().Len())
		eng := New(Config{
			Addr:         mn.Addr(),
			Orders:       orders,
			Rate:         0, // open the floodgates; the round gates on minPool
			Workers:      8,
			Seed:         42 + int64(i),
			DrainTimeout: 3 * time.Minute,
		})
		rep, err := eng.Run(ctx)
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if rep.Committed != rep.Submitted {
			b.Fatalf("committed %d of %d submitted", rep.Committed, rep.Submitted)
		}
		if rep.Matched == 0 {
			b.Fatal("the round cleared no trades")
		}
		rounds := float64(int64(mn.Chain().Len()) - h0)
		if rounds == 0 {
			b.Fatal("no block was produced")
		}
		committed += float64(rep.Committed)
		blocks += rounds
		totalSec += rep.EmitSeconds + rep.DrainSeconds
		p50 += rep.Latency.P50
		p95 += rep.Latency.P95
		p99 += rep.Latency.P99
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(committed/blocks, "orders/round")
	b.ReportMetric(blocks/totalSec, "rounds/sec")
	b.ReportMetric(p50/n, "p50_s")
	b.ReportMetric(p95/n, "p95_s")
	b.ReportMetric(p99/n, "p99_s")
}
