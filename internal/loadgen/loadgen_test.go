package loadgen

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/p2p"
	"decloud/internal/workload"
)

// TestScheduleDeterminism: same seed → same emission schedule, different
// seed diverges (Poisson), schedules are non-decreasing, and the mean
// Poisson gap tracks 1/rate.
func TestScheduleDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		arrival Arrival
		rate    float64
	}{
		{"uniform", ArrivalUniform, 200},
		{"poisson", ArrivalPoisson, 200},
		{"default is uniform", "", 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Schedule(1000, tc.rate, tc.arrival, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Schedule(1000, tc.rate, tc.arrival, 7)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("offset %d diverged under same seed: %v vs %v", i, a[i], b[i])
				}
				if i > 0 && a[i] < a[i-1] {
					t.Fatalf("schedule decreases at %d: %v after %v", i, a[i], a[i-1])
				}
			}
			mean := a[len(a)-1].Seconds() / float64(len(a)-1)
			want := 1 / tc.rate
			if mean < want*0.8 || mean > want*1.2 {
				t.Fatalf("mean gap %.5fs, want ≈ %.5fs", mean, want)
			}
		})
	}
	p1, _ := Schedule(100, 100, ArrivalPoisson, 1)
	p2, _ := Schedule(100, 100, ArrivalPoisson, 2)
	same := 0
	for i := range p1 {
		if p1[i] == p2[i] {
			same++
		}
	}
	if same == len(p1) {
		t.Fatal("different seeds produced identical Poisson schedules")
	}
}

func TestScheduleEdgeCases(t *testing.T) {
	zero, err := Schedule(10, 0, ArrivalUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range zero {
		if d != 0 {
			t.Fatalf("rate-0 offset %d = %v, want 0", i, d)
		}
	}
	if _, err := Schedule(10, 100, Arrival("weibull"), 1); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

// startMarket runs a producing miner for the engine to drive: it rounds
// whenever the mempool holds at least minPool bids (so a round never
// clears the stream's leading offers without their requests) until ctx
// ends. testing.TB so the frontier benchmarks share the same market as
// the unit tests.
func startMarket(t testing.TB, ctx context.Context, minPool int, cfg p2p.RoundConfig) *p2p.MarketNode {
	return startMarketWith(t, ctx, minPool, cfg, auction.DefaultConfig())
}

// startMarketWith is startMarket with an explicit mechanism config, so
// the drain tests can also run the market over the incremental book.
func startMarketWith(t testing.TB, ctx context.Context, minPool int, cfg p2p.RoundConfig, acfg auction.Config) *p2p.MarketNode {
	t.Helper()
	mn, err := p2p.NewMarketNode("load-m0", "127.0.0.1:0", 8, acfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mn.Close() })
	done := make(chan struct{})
	t.Cleanup(func() { <-done })
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			if mn.MempoolSize() < minPool {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if _, err := mn.ProduceBlockOpts(ctx, cfg); err != nil && ctx.Err() == nil {
				t.Logf("produce: %v", err)
			}
		}
	}()
	return mn
}

// testRound is the round shape the unit tests drive: short windows, two
// retries — tuned for hundreds of bids, not the benchmark frontier.
func testRound() p2p.RoundConfig {
	return p2p.RoundConfig{RevealWindow: 500 * time.Millisecond, RevealRetries: 2}
}

// skipIfStarved converts a wall-budget overrun into a skip instead of a
// failure. The drain tests bound their runs with a context deadline; on
// a loaded 1-CPU runner the market can fall behind the schedule without
// anything being wrong with the protocol. A DeadlineExceeded after the
// budget elapsed is a starved runner; any other error stays fatal at the
// caller.
func skipIfStarved(t *testing.T, err error, start time.Time, budget time.Duration) {
	t.Helper()
	if errors.Is(err, context.DeadlineExceeded) && time.Since(start) >= budget-time.Second {
		t.Skipf("runner too slow: drain did not finish within the %s budget (%v)", budget, err)
	}
}

// TestEngineEndToEnd: a small open-loop run against a live TCP market
// commits every order and yields a populated latency summary.
func TestEngineEndToEnd(t *testing.T) {
	const budget = 60 * time.Second
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	mn := startMarket(t, ctx, 300, testRound())

	eng := New(Config{
		Addr:    mn.Addr(),
		Orders:  300,
		Rate:    0, // as fast as possible
		Workers: 3,
		Conns:   2, // exercise sharded submission: workers pin conn w%2
		Seed:    11,
	})
	rep, err := eng.Run(ctx)
	if err != nil {
		skipIfStarved(t, err, start, budget)
		t.Fatalf("run: %v (report %+v)", err, rep)
	}
	if rep.Submitted != 300 || rep.Errors != 0 {
		t.Fatalf("submitted %d (errors %d), want 300/0", rep.Submitted, rep.Errors)
	}
	if rep.Committed != rep.Submitted {
		t.Fatalf("committed %d of %d", rep.Committed, rep.Submitted)
	}
	if rep.Matched == 0 {
		t.Fatal("no matches: the stream market did not clear over the wire")
	}
	if rep.Latency.Count != rep.Committed {
		t.Fatalf("latency samples %d, want %d", rep.Latency.Count, rep.Committed)
	}
	if !(rep.Latency.P50 > 0 && rep.Latency.P50 <= rep.Latency.P95 && rep.Latency.P95 <= rep.Latency.P99) {
		t.Fatalf("implausible percentiles: %+v", rep.Latency)
	}
	if rep.AchievedRate <= 0 {
		t.Fatalf("achieved rate %v", rep.AchievedRate)
	}
}

// TestEnginePacedRun: with a finite rate the emission phase takes at
// least the scheduled span — the schedule, not the market, sets the pace.
func TestEnginePacedRun(t *testing.T) {
	const budget = 60 * time.Second
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	mn := startMarket(t, ctx, 100, testRound())
	eng := New(Config{
		Addr:    mn.Addr(),
		Orders:  100,
		Rate:    200,
		Arrival: ArrivalPoisson,
		Workers: 2,
		Seed:    3,
	})
	rep, err := eng.Run(ctx)
	if err != nil {
		skipIfStarved(t, err, start, budget)
		t.Fatalf("run: %v", err)
	}
	if rep.Committed != 100 {
		t.Fatalf("committed %d, want 100", rep.Committed)
	}
	sched, _ := Schedule(100, 200, ArrivalPoisson, 3)
	if got, want := rep.EmitSeconds, sched[len(sched)-1].Seconds(); got < want*0.9 {
		t.Fatalf("emission finished in %.3fs, schedule spans %.3fs — not open-loop paced", got, want)
	}
}

// TestEngineIncrementalMarketDrain: the same open-loop drain against a
// market node running over the persistent order book. Every order still
// commits and the stream still clears — the continuous market is a
// drop-in behind the wire protocol.
func TestEngineIncrementalMarketDrain(t *testing.T) {
	const budget = 60 * time.Second
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	acfg := auction.DefaultConfig()
	acfg.Incremental = true
	mn := startMarketWith(t, ctx, 200, testRound(), acfg)

	eng := New(Config{
		Addr:    mn.Addr(),
		Orders:  200,
		Rate:    0,
		Workers: 3,
		Seed:    13,
	})
	rep, err := eng.Run(ctx)
	if err != nil {
		skipIfStarved(t, err, start, budget)
		t.Fatalf("run: %v (report %+v)", err, rep)
	}
	if rep.Submitted != 200 || rep.Errors != 0 {
		t.Fatalf("submitted %d (errors %d), want 200/0", rep.Submitted, rep.Errors)
	}
	if rep.Committed != rep.Submitted {
		t.Fatalf("committed %d of %d", rep.Committed, rep.Submitted)
	}
	if rep.Matched == 0 {
		t.Fatal("no matches: the incremental market did not clear over the wire")
	}
}

// TestEngineShutdownMidFlightLeaksNothing: cancelling mid-run returns
// promptly with a partial report and leaves no goroutine behind.
func TestEngineShutdownMidFlightLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()

	mn, err := p2p.NewMarketNode("leak-m0", "127.0.0.1:0", 8, auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(Config{
		Addr:    mn.Addr(),
		Orders:  100000,
		Rate:    50, // slow: the run would take ~30 min; we cancel after a moment
		Workers: 2,
		Seed:    5,
	})
	errc := make(chan error, 1)
	repc := make(chan *Report, 1)
	go func() {
		rep, err := eng.Run(ctx)
		repc <- rep
		errc <- err
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	rep := <-repc
	if rep == nil || rep.Submitted >= 100000 {
		t.Fatalf("expected a partial report, got %+v", rep)
	}
	mn.Close()

	// Give readers/timers a beat to unwind, then require the goroutine
	// count back at (or below) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestReservationDesk: forward offers bank overbooked capacity, forward
// requests draw it down, and the pool never goes negative; spot orders
// pass through untouched.
func TestReservationDesk(t *testing.T) {
	stream := workload.NewStream(workload.StreamConfig{
		Seed: 5, Clients: 4, EpochOrders: 64,
		FuturesFraction: 0.5,
	})
	desk := &reservationDesk{cfg: auction.FuturesConfig{
		OverbookRatio: 1.5, PenaltyRate: 0.2, ReserveHorizon: 1,
	}}
	var withheld, passed int
	for i := 0; i < 600; i++ {
		so := stream.Next()
		if desk.intercept(so) {
			withheld++
			if !so.Forward {
				t.Fatal("desk absorbed a spot order")
			}
		} else {
			passed++
			if so.Forward && so.Offer != nil {
				t.Fatal("desk passed a forward offer to spot")
			}
		}
		if desk.capacity < 0 {
			t.Fatalf("desk pool went negative at emission %d", i)
		}
	}
	if desk.rep.ForwardOffers == 0 {
		t.Fatal("no forward offers banked")
	}
	if desk.rep.Reserved == 0 {
		t.Fatal("no forward requests reserved")
	}
	if desk.rep.ReservedLoad <= 0 {
		t.Fatal("reserved load not accounted")
	}
	if withheld != int(desk.rep.ForwardOffers+desk.rep.Reserved) {
		t.Fatalf("withheld %d != banked %d + reserved %d",
			withheld, desk.rep.ForwardOffers, desk.rep.Reserved)
	}
	if passed == 0 {
		t.Fatal("nothing passed through to spot")
	}
	// A nil desk is the identity.
	var off *reservationDesk
	if off.intercept(workload.StreamOrder{Forward: true, Offer: &bidding.Offer{}}) {
		t.Fatal("nil desk must intercept nothing")
	}
}
