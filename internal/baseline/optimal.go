// Package baseline provides the exact welfare optimum for small blocks:
// a branch-and-bound solver for the paper's welfare-maximization program
// (Eqs. 4–14). The paper uses the non-truthful greedy benchmark
// (auction.RunGreedy) for its evaluation because the exact optimum is
// intractable at scale; this solver exists to validate the greedy
// benchmark and the mechanism on small instances, where
//
//	mechanism welfare ≤ greedy benchmark welfare ≤ exact optimum.
package baseline

import (
	"sort"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/match"
	"decloud/internal/resource"
)

// Pair is one assignment in an optimal solution.
type Pair struct {
	Request *bidding.Request
	Offer   *bidding.Offer
	Granted resource.Vector
	Welfare float64 // v_r − φ_{(r,o)}·c_o for this pair
}

// Solution is the result of the exact solver.
type Solution struct {
	Pairs   []Pair
	Welfare float64
	// Explored counts search nodes, as a tractability diagnostic.
	Explored int
}

// MaxRequests bounds the instance size the solver accepts; beyond it the
// search space (offers+1)^n is no longer exact-solvable in reasonable
// time.
const MaxRequests = 18

// Solve computes the welfare-maximal feasible assignment of requests to
// offers using TRUE valuations and costs. It respects the same capacity
// semantics as the mechanism (resource·time plus instantaneous caps,
// Const. 7–8), time windows (Const. 10–11), flexibility floors, and
// non-negative pair welfare (a welfare maximizer never executes a
// lossmaking trade; Const. 9). Instances larger than MaxRequests return
// a greedy fallback solution (still feasible, possibly suboptimal, with
// Explored = 0).
func Solve(requests []*bidding.Request, offers []*bidding.Offer) Solution {
	reqs := append([]*bidding.Request(nil), requests...)
	// Branch on high-value requests first: tighter early bounds.
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].TrueValue != reqs[j].TrueValue {
			return reqs[i].TrueValue > reqs[j].TrueValue
		}
		return reqs[i].ID < reqs[j].ID
	})
	offs := append([]*bidding.Offer(nil), offers...)
	sort.Slice(offs, func(i, j int) bool { return offs[i].ID < offs[j].ID })

	if len(reqs) > MaxRequests {
		return greedyFallback(reqs, offs)
	}

	// Static per-request optimistic bound: the best pair welfare over all
	// offers at full capacity.
	best := make([]float64, len(reqs))
	for i, r := range reqs {
		for _, o := range offs {
			if w, ok := pairWelfare(r, o, auction.NewTracker()); ok && w > best[i] {
				best[i] = w
			}
		}
	}
	// Suffix sums of optimistic bounds for pruning.
	suffix := make([]float64, len(reqs)+1)
	for i := len(reqs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + best[i]
	}

	s := &solver{reqs: reqs, offs: offs, suffix: suffix}
	s.dfs(0, 0, auction.NewTracker(), nil)
	return Solution{Pairs: s.bestPairs, Welfare: s.bestWelfare, Explored: s.explored}
}

type solver struct {
	reqs        []*bidding.Request
	offs        []*bidding.Offer
	suffix      []float64
	bestWelfare float64
	bestPairs   []Pair
	explored    int
}

func (s *solver) dfs(i int, welfare float64, tr *auction.Tracker, chosen []Pair) {
	s.explored++
	if welfare > s.bestWelfare {
		s.bestWelfare = welfare
		s.bestPairs = append([]Pair(nil), chosen...)
	}
	if i == len(s.reqs) {
		return
	}
	if welfare+s.suffix[i] <= s.bestWelfare {
		return // even the optimistic completion cannot beat the incumbent
	}
	r := s.reqs[i]
	for _, o := range s.offs {
		w, ok := pairWelfare(r, o, tr)
		if !ok || w <= 0 {
			continue
		}
		granted := tr.TryGrant(r, o)
		branch := tr.Clone()
		branch.Commit(o, granted, r.Duration)
		s.dfs(i+1, welfare+w, branch, append(chosen, Pair{
			Request: r, Offer: o, Granted: granted, Welfare: w,
		}))
	}
	// Branch: leave request i unallocated.
	s.dfs(i+1, welfare, tr, chosen)
}

// pairWelfare evaluates assigning r to o under the tracker's remaining
// capacity: true-value welfare and feasibility.
func pairWelfare(r *bidding.Request, o *bidding.Offer, tr *auction.Tracker) (float64, bool) {
	if !match.Feasible(r, o) {
		return 0, false
	}
	granted := tr.TryGrant(r, o)
	if granted == nil {
		return 0, false
	}
	phi := auction.Fraction(granted, r, o)
	return r.TrueValue - phi*o.TrueCost, true
}

// greedyFallback assigns requests in value order to their cheapest
// feasible positive-welfare offer — feasible but not necessarily optimal.
func greedyFallback(reqs []*bidding.Request, offs []*bidding.Offer) Solution {
	tr := auction.NewTracker()
	var sol Solution
	for _, r := range reqs {
		bestW := 0.0
		var bestOff *bidding.Offer
		var bestGrant resource.Vector
		for _, o := range offs {
			w, ok := pairWelfare(r, o, tr)
			if !ok || w <= bestW {
				continue
			}
			g := tr.TryGrant(r, o)
			if g == nil {
				continue
			}
			bestW, bestOff, bestGrant = w, o, g
		}
		if bestOff == nil {
			continue
		}
		tr.Commit(bestOff, bestGrant, r.Duration)
		sol.Pairs = append(sol.Pairs, Pair{Request: r, Offer: bestOff, Granted: bestGrant, Welfare: bestW})
		sol.Welfare += bestW
	}
	return sol
}
