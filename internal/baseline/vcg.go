package baseline

import (
	"decloud/internal/auction"
	"decloud/internal/bidding"
)

// VCG implements the Vickrey–Clarke–Groves double auction on top of the
// exact welfare maximizer: allocation is welfare-optimal and the
// mechanism is DSIC, but — per Myerson–Satterthwaite — it cannot also be
// budget balanced: the auctioneer typically runs a DEFICIT (sellers
// receive more than buyers pay). DeCloud gives up optimal welfare (trade
// reduction) to get strong budget balance instead; this baseline
// quantifies the other corner of that tradeoff.
//
// Payments follow the pivot rule. For participant a with welfare
// contribution w_a in the optimum W*:
//
//	transfer_a = W*_{-a} − (W* − w_a)
//
// where W*_{-a} is the optimal welfare with a's orders removed. A
// client's payment is its transfer; a provider's revenue is −transfer
// (it is paid). Because each evaluation solves the NP-hard welfare
// program, VCG is restricted to the same instance sizes as Solve.
type VCGOutcome struct {
	Pairs []Pair
	// Welfare is the optimal welfare W*.
	Welfare float64
	// Payments maps client → total payment (≥ 0 under IR).
	Payments map[bidding.ParticipantID]float64
	// Revenues maps provider → total amount received.
	Revenues map[bidding.ParticipantID]float64
	// Deficit = Σ revenues − Σ payments: what the auctioneer must inject
	// when positive. In thin (bilateral-trade-like) markets VCG runs a
	// deficit — Myerson–Satterthwaite's impossibility in action; in thick
	// markets with heavy competition the pivot payments can flip it to a
	// surplus. Either way it is generally nonzero, which is exactly what
	// DeCloud's strongly-budget-balanced design avoids.
	Deficit float64
}

// RunVCG computes the VCG outcome. TRUE valuations and costs are read
// from the orders' bids (under VCG truthful bidding is dominant, so
// bids are taken at face value, like the mechanism does).
func RunVCG(requests []*bidding.Request, offers []*bidding.Offer) *VCGOutcome {
	// The solver maximizes TrueValue-welfare; mirror bids into the
	// private fields on copies so reported values drive the optimum.
	reqs := make([]*bidding.Request, len(requests))
	for i, r := range requests {
		c := *r
		c.TrueValue = c.Bid
		reqs[i] = &c
	}
	offs := make([]*bidding.Offer, len(offers))
	for j, o := range offers {
		c := *o
		c.TrueCost = c.Bid
		offs[j] = &c
	}

	opt := Solve(reqs, offs)
	out := &VCGOutcome{
		Pairs:    opt.Pairs,
		Welfare:  opt.Welfare,
		Payments: make(map[bidding.ParticipantID]float64),
		Revenues: make(map[bidding.ParticipantID]float64),
	}

	// Welfare contribution per participant in the optimum.
	clientShare := make(map[bidding.ParticipantID]float64)
	providerShare := make(map[bidding.ParticipantID]float64)
	for _, p := range opt.Pairs {
		phi := auction.Fraction(p.Granted, p.Request, p.Offer)
		clientShare[p.Request.Client] += p.Request.Bid
		providerShare[p.Offer.Provider] -= phi * p.Offer.Bid
	}

	// Pivot payments: one counterfactual solve per distinct participant.
	for client, share := range clientShare {
		without := Solve(dropRequests(reqs, client), offs)
		payment := without.Welfare - (opt.Welfare - share)
		if payment < 0 {
			payment = 0 // numerical guard; pivot payments are ≥ 0 under IR
		}
		out.Payments[client] = payment
	}
	for provider, share := range providerShare {
		without := Solve(reqs, dropOffers(offs, provider))
		// share is negative (cost); the provider's transfer is negative
		// (it is paid): revenue = (W* − share) − W*_{-provider}.
		revenue := (opt.Welfare - share) - without.Welfare
		if revenue < 0 {
			revenue = 0
		}
		out.Revenues[provider] = revenue
	}

	var paid, received float64
	for _, p := range out.Payments {
		paid += p
	}
	for _, r := range out.Revenues {
		received += r
	}
	out.Deficit = received - paid
	return out
}

func dropRequests(reqs []*bidding.Request, client bidding.ParticipantID) []*bidding.Request {
	out := make([]*bidding.Request, 0, len(reqs))
	for _, r := range reqs {
		if r.Client != client {
			out = append(out, r)
		}
	}
	return out
}

func dropOffers(offs []*bidding.Offer, provider bidding.ParticipantID) []*bidding.Offer {
	out := make([]*bidding.Offer, 0, len(offs))
	for _, o := range offs {
		if o.Provider != provider {
			out = append(out, o)
		}
	}
	return out
}
