package baseline

import (
	"math"
	"math/rand"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
)

func TestVCGSimpleMarket(t *testing.T) {
	reqs := []*bidding.Request{
		req("r1", "alice", 4, 10),
		req("r2", "bob", 4, 7),
	}
	offs := []*bidding.Offer{
		off("o1", "p1", 4, 2),
		off("o2", "p2", 4, 3),
	}
	out := RunVCG(reqs, offs)
	if len(out.Pairs) != 2 {
		t.Fatalf("optimal allocation should serve both: %d", len(out.Pairs))
	}
	// W* = (10−2)+(7−3) = 12 (alice on the cheap machine).
	if math.Abs(out.Welfare-12) > 1e-9 {
		t.Fatalf("welfare = %v, want 12", out.Welfare)
	}
	// Alice's pivot: without her, bob takes o1: W_{-alice} = 7−2 = 5.
	// p_alice = 5 − (12 − 10) = 3.
	if got := out.Payments["alice"]; math.Abs(got-3) > 1e-9 {
		t.Fatalf("alice pays %v, want 3", got)
	}
	// Bob's pivot: without him W = 8; p_bob = 8 − (12 − 7) = 3.
	if got := out.Payments["bob"]; math.Abs(got-3) > 1e-9 {
		t.Fatalf("bob pays %v, want 3", got)
	}
	// p1's pivot: without o1, both run on... only o2 (4 cores) hosts one.
	// W_{-p1} = 10−3 = 7. revenue = (12+2) − 7 = 7.
	if got := out.Revenues["p1"]; math.Abs(got-7) > 1e-9 {
		t.Fatalf("p1 receives %v, want 7", got)
	}
	// p2: W_{-p2} = 10−2 = 8. revenue = (12+3) − 8 = 7.
	if got := out.Revenues["p2"]; math.Abs(got-7) > 1e-9 {
		t.Fatalf("p2 receives %v, want 7", got)
	}
	// Deficit: sellers receive 14, buyers pay 6 → auctioneer injects 8.
	if math.Abs(out.Deficit-8) > 1e-9 {
		t.Fatalf("deficit = %v, want 8", out.Deficit)
	}
}

// The Myerson–Satterthwaite corner: VCG welfare dominates DeCloud, but
// DeCloud never runs a deficit while VCG usually does.
func TestVCGVersusDeCloudTradeoff(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	imbalanced := 0
	deficits := 0
	for trial := 0; trial < 12; trial++ {
		reqs, offs := smallRandomMarket(rnd, 3+rnd.Intn(6), 2+rnd.Intn(3))
		vcg := RunVCG(reqs, offs)
		mech := auction.Run(reqs, offs, auction.DefaultConfig())

		if mech.Welfare() > vcg.Welfare+1e-6 {
			t.Fatalf("trial %d: DeCloud welfare %v beats the optimum %v",
				trial, mech.Welfare(), vcg.Welfare)
		}
		if math.Abs(mech.TotalPayments()-mech.TotalRevenues()) > 1e-9 {
			t.Fatalf("trial %d: DeCloud budget imbalance", trial)
		}
		if math.Abs(vcg.Deficit) > 1e-9 {
			imbalanced++
		}
		if vcg.Deficit > 1e-9 {
			deficits++
		}
	}
	// VCG is generally NOT budget balanced (deficit in thin markets,
	// sometimes surplus in thick ones); DeCloud is exactly balanced above.
	if imbalanced == 0 {
		t.Fatal("VCG was budget balanced on every market — implausible")
	}
	if deficits == 0 {
		t.Fatal("VCG never ran a deficit across 12 markets — implausible")
	}
}

// VCG is DSIC: no unilateral bid deviation improves utility (utility
// computed against true values; payments from the mechanism run on
// reported bids).
func TestVCGTruthful(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		reqs, offs := smallRandomMarket(rnd, 2+rnd.Intn(4), 2)
		base := RunVCG(reqs, offs)
		baseU := make(map[bidding.ParticipantID]float64)
		for _, p := range base.Pairs {
			baseU[p.Request.Client] += p.Request.TrueValue
		}
		for c, pay := range base.Payments {
			baseU[c] -= pay
		}
		for i := range reqs {
			truth := reqs[i].Bid
			for _, dev := range []float64{0.5, 1.5} {
				mod := make([]*bidding.Request, len(reqs))
				for j, r := range reqs {
					c := *r
					mod[j] = &c
				}
				mod[i].Bid = truth * dev
				out := RunVCG(mod, offs)
				var u float64
				for _, p := range out.Pairs {
					if p.Request.Client == reqs[i].Client {
						u += reqs[i].TrueValue // true value, not the distorted bid
					}
				}
				u -= out.Payments[reqs[i].Client]
				if u > baseU[reqs[i].Client]+1e-9 {
					t.Fatalf("trial %d: client %s gains %v > %v by bidding ×%v",
						trial, reqs[i].Client, u, baseU[reqs[i].Client], dev)
				}
			}
		}
	}
}

func TestVCGEmptyMarket(t *testing.T) {
	out := RunVCG(nil, nil)
	if out.Welfare != 0 || out.Deficit != 0 || len(out.Pairs) != 0 {
		t.Fatalf("empty VCG: %+v", out)
	}
}
