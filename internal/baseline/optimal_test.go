package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

func req(id, client string, cpu, value float64) *bidding.Request {
	return &bidding.Request{
		ID: bidding.OrderID(id), Client: bidding.ParticipantID(client),
		Resources: resource.Vector{resource.CPU: cpu, resource.RAM: cpu * 4},
		Start:     0, End: 100, Duration: 100,
		Bid: value, TrueValue: value,
	}
}

func off(id, provider string, cpu, cost float64) *bidding.Offer {
	return &bidding.Offer{
		ID: bidding.OrderID(id), Provider: bidding.ParticipantID(provider),
		Resources: resource.Vector{resource.CPU: cpu, resource.RAM: cpu * 4},
		Start:     0, End: 100,
		Bid: cost, TrueCost: cost,
	}
}

func TestSolveEmpty(t *testing.T) {
	sol := Solve(nil, nil)
	if sol.Welfare != 0 || len(sol.Pairs) != 0 {
		t.Fatalf("empty solve: %+v", sol)
	}
}

func TestSolveSinglePair(t *testing.T) {
	r := req("r1", "a", 4, 10)
	o := off("o1", "p", 4, 2)
	sol := Solve([]*bidding.Request{r}, []*bidding.Offer{o})
	if len(sol.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(sol.Pairs))
	}
	// φ = 1 (full machine, full window), welfare = 10 − 2 = 8.
	if math.Abs(sol.Welfare-8) > 1e-9 {
		t.Fatalf("welfare = %v, want 8", sol.Welfare)
	}
}

func TestSolveSkipsLossmakingTrade(t *testing.T) {
	r := req("r1", "a", 4, 1)
	o := off("o1", "p", 4, 100)
	sol := Solve([]*bidding.Request{r}, []*bidding.Offer{o})
	if len(sol.Pairs) != 0 || sol.Welfare != 0 {
		t.Fatalf("lossmaking trade executed: %+v", sol)
	}
}

func TestSolvePicksBestAssignmentUnderContention(t *testing.T) {
	// One machine, two requests that both fill it: the optimum takes the
	// higher-welfare one.
	r1 := req("r1", "a", 4, 10)
	r2 := req("r2", "b", 4, 7)
	o := off("o1", "p", 4, 1)
	sol := Solve([]*bidding.Request{r1, r2}, []*bidding.Offer{o})
	if len(sol.Pairs) != 1 || sol.Pairs[0].Request.ID != "r1" {
		t.Fatalf("wrong winner: %+v", sol.Pairs)
	}
	if math.Abs(sol.Welfare-9) > 1e-9 {
		t.Fatalf("welfare = %v, want 9", sol.Welfare)
	}
}

func TestSolveBeatsNaiveGreedyTrap(t *testing.T) {
	// Greedy-by-value puts r1 (value 10) on the only machine able to host
	// r2, losing r2's trade. The optimum hosts r1 on the big machine and
	// r2 on the small one.
	r1 := req("r1", "a", 2, 10) // fits both machines
	r2 := req("r2", "b", 4, 9)  // fits only the big machine
	small := off("small", "p1", 2, 1)
	big := off("big", "p2", 4, 1)
	sol := Solve([]*bidding.Request{r1, r2}, []*bidding.Offer{small, big})
	if len(sol.Pairs) != 2 {
		t.Fatalf("optimum should host both: %+v", sol.Pairs)
	}
	for _, p := range sol.Pairs {
		if p.Request.ID == "r2" && p.Offer.ID != "big" {
			t.Fatalf("r2 must land on the big machine: %+v", p)
		}
	}
}

func TestSolveDominatesGreedyBenchmarkAndMechanism(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	cfg := auction.DefaultConfig()
	for trial := 0; trial < 15; trial++ {
		reqs, offs := smallRandomMarket(rnd, 2+rnd.Intn(8), 2+rnd.Intn(4))
		opt := Solve(reqs, offs)
		bench := auction.RunGreedy(reqs, offs, cfg)
		mech := auction.Run(reqs, offs, cfg)
		if bench.Welfare() > opt.Welfare+1e-6 {
			t.Fatalf("trial %d: greedy %v beats optimum %v", trial, bench.Welfare(), opt.Welfare)
		}
		if mech.Welfare() > opt.Welfare+1e-6 {
			t.Fatalf("trial %d: mechanism %v beats optimum %v", trial, mech.Welfare(), opt.Welfare)
		}
	}
}

func TestSolveMatchesBruteForceTiny(t *testing.T) {
	// Exhaustive check on tiny instances: every request→(offer|none) map.
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		reqs, offs := smallRandomMarket(rnd, 1+rnd.Intn(4), 1+rnd.Intn(3))
		opt := Solve(reqs, offs)
		brute := bruteForce(reqs, offs)
		if math.Abs(opt.Welfare-brute) > 1e-9 {
			t.Fatalf("trial %d: solver %v != brute force %v", trial, opt.Welfare, brute)
		}
	}
}

func TestSolveFallbackOnLargeInstance(t *testing.T) {
	var reqs []*bidding.Request
	for i := 0; i < MaxRequests+5; i++ {
		reqs = append(reqs, req(fmt.Sprintf("r%02d", i), fmt.Sprintf("c%02d", i), 2, 5))
	}
	offs := []*bidding.Offer{off("o1", "p", 16, 1)}
	sol := Solve(reqs, offs)
	if sol.Explored != 0 {
		t.Fatal("large instance should use the greedy fallback")
	}
	if len(sol.Pairs) == 0 {
		t.Fatal("fallback should still allocate")
	}
}

func TestSolutionFeasible(t *testing.T) {
	rnd := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		reqs, offs := smallRandomMarket(rnd, 2+rnd.Intn(8), 2+rnd.Intn(4))
		sol := Solve(reqs, offs)
		used := make(map[bidding.OrderID]resource.Vector)
		seen := make(map[bidding.OrderID]bool)
		for _, p := range sol.Pairs {
			if seen[p.Request.ID] {
				t.Fatal("request assigned twice")
			}
			seen[p.Request.ID] = true
			if !bidding.TimeCompatible(p.Request, p.Offer) {
				t.Fatal("time window violated")
			}
			prev := used[p.Offer.ID]
			if prev == nil {
				prev = make(resource.Vector)
			}
			used[p.Offer.ID] = prev.Add(p.Granted.Scale(float64(p.Request.Duration)))
		}
		for _, o := range offs {
			cap := o.Resources.Scale(float64(o.Window()))
			for k, u := range used[o.ID] {
				if u > cap[k]+1e-6 {
					t.Fatalf("capacity violated on %s/%s", o.ID, k)
				}
			}
		}
	}
}

// bruteForce enumerates every assignment for tiny instances.
func bruteForce(reqs []*bidding.Request, offs []*bidding.Offer) float64 {
	n := len(reqs)
	m := len(offs)
	bestW := 0.0
	choice := make([]int, n) // m means unassigned
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			tr := auction.NewTracker()
			var w float64
			for j, c := range choice {
				if c == m {
					continue
				}
				pw, ok := pairWelfare(reqs[j], offs[c], tr)
				if !ok || pw <= 0 {
					return // infeasible or lossmaking assignment: skip combo
				}
				g := tr.TryGrant(reqs[j], offs[c])
				tr.Commit(offs[c], g, reqs[j].Duration)
				w += pw
			}
			if w > bestW {
				bestW = w
			}
			return
		}
		for c := 0; c <= m; c++ {
			choice[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return bestW
}

func smallRandomMarket(rnd *rand.Rand, n, m int) ([]*bidding.Request, []*bidding.Offer) {
	offs := make([]*bidding.Offer, m)
	for j := 0; j < m; j++ {
		cores := float64(int(2) << rnd.Intn(3))
		offs[j] = off(fmt.Sprintf("o%02d", j), fmt.Sprintf("p%02d", j), cores, cores*(0.3+rnd.Float64()*0.5))
	}
	reqs := make([]*bidding.Request, n)
	for i := 0; i < n; i++ {
		cores := float64(1 + rnd.Intn(4))
		r := req(fmt.Sprintf("r%02d", i), fmt.Sprintf("c%02d", i), cores, cores*(0.2+rnd.Float64()*1.5))
		r.Duration = int64(20 + rnd.Intn(80))
		reqs[i] = r
	}
	return reqs, offs
}
