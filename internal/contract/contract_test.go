package contract

import (
	"errors"
	"testing"

	"decloud/internal/ledger"
	"decloud/internal/reputation"
)

func records() []ledger.AllocationRecord {
	return []ledger.AllocationRecord{
		{RequestID: "r1", OfferID: "o1", Client: "alice", Provider: "p1", Payment: 5},
		{RequestID: "r2", OfferID: "o1", Client: "bob", Provider: "p1", Payment: 3},
	}
}

func TestProposeFromBlock(t *testing.T) {
	reg := NewRegistry(nil)
	ids := reg.ProposeFromBlock(7, records())
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	a, err := reg.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != Proposed || a.BlockHeight != 7 || a.Client() != "alice" || a.Provider() != "p1" {
		t.Fatalf("agreement = %+v", a)
	}
}

func TestAcceptFlow(t *testing.T) {
	reg := NewRegistry(nil)
	ids := reg.ProposeFromBlock(1, records())
	if err := reg.Accept(ids[0], "alice"); err != nil {
		t.Fatalf("accept: %v", err)
	}
	a, _ := reg.Get(ids[0])
	if a.Status != Agreed {
		t.Fatalf("status = %v", a.Status)
	}
	// Accepting twice fails.
	if err := reg.Accept(ids[0], "alice"); !errors.Is(err, ErrAlreadyDecided) {
		t.Fatalf("double accept: %v", err)
	}
}

func TestDenyFlowNotifiesProviderAndPenalizes(t *testing.T) {
	rep := reputation.NewStore()
	reg := NewRegistry(rep)
	ids := reg.ProposeFromBlock(1, records())
	provider, err := reg.Deny(ids[1], "bob")
	if err != nil {
		t.Fatal(err)
	}
	if provider != "p1" {
		t.Fatalf("provider to notify = %s", provider)
	}
	if rep.Score("bob") >= reputation.Initial {
		t.Fatal("denial should cost reputation")
	}
	a, _ := reg.Get(ids[1])
	if a.Status != Denied {
		t.Fatalf("status = %v", a.Status)
	}
}

func TestOnlyClientMayDecide(t *testing.T) {
	reg := NewRegistry(nil)
	ids := reg.ProposeFromBlock(1, records())
	if err := reg.Accept(ids[0], "mallory"); !errors.Is(err, ErrNotClient) {
		t.Fatalf("foreign accept: %v", err)
	}
	if _, err := reg.Deny(ids[0], "p1"); !errors.Is(err, ErrNotClient) {
		t.Fatalf("provider deny: %v", err)
	}
}

func TestUnknownAgreement(t *testing.T) {
	reg := NewRegistry(nil)
	if err := reg.Accept("9/ghost", "alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost accept: %v", err)
	}
	if _, err := reg.Get("9/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost get: %v", err)
	}
}

func TestPendingFor(t *testing.T) {
	reg := NewRegistry(nil)
	ids := reg.ProposeFromBlock(1, records())
	reg.ProposeFromBlock(2, []ledger.AllocationRecord{
		{RequestID: "r9", OfferID: "o2", Client: "alice", Provider: "p2", Payment: 1},
	})
	pend := reg.PendingFor("alice")
	if len(pend) != 2 {
		t.Fatalf("pending = %d", len(pend))
	}
	if err := reg.Accept(ids[0], "alice"); err != nil {
		t.Fatal(err)
	}
	if got := reg.PendingFor("alice"); len(got) != 1 {
		t.Fatalf("pending after accept = %d", len(got))
	}
}

func TestCountByStatus(t *testing.T) {
	reg := NewRegistry(nil)
	ids := reg.ProposeFromBlock(1, records())
	_ = reg.Accept(ids[0], "alice")
	if _, err := reg.Deny(ids[1], "bob"); err != nil {
		t.Fatal(err)
	}
	counts := reg.CountByStatus()
	if counts[Agreed] != 1 || counts[Denied] != 1 || counts[Proposed] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{Proposed: "proposed", Agreed: "agreed", Denied: "denied", Status(9): "status(9)"} {
		if s.String() != want {
			t.Fatalf("String(%d) = %s", int(s), s)
		}
	}
}
