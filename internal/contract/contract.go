// Package contract simulates the smart contract through which DeCloud
// participants enter agreements (Section III-B). After a block's
// allocation is accepted by the miner network, each match becomes a
// proposed Agreement; the client calls Accept to bind it or Deny to
// refuse (triggering a reputational penalty and freeing the provider to
// resubmit its offer). The contract checks — as the paper's smart
// contract does — that the allocation exists in the referenced block and
// that the caller is the client named in it.
package contract

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"decloud/internal/bidding"
	"decloud/internal/ledger"
	"decloud/internal/reputation"
)

// Status is the lifecycle state of an agreement.
type Status int

// Agreement lifecycle: Proposed → Agreed | Denied.
const (
	Proposed Status = iota
	Agreed
	Denied
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Proposed:
		return "proposed"
	case Agreed:
		return "agreed"
	case Denied:
		return "denied"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// AgreementID identifies an agreement: block height + request ID.
type AgreementID string

// Agreement is one proposed client↔provider engagement.
type Agreement struct {
	ID          AgreementID
	BlockHeight int64
	Record      ledger.AllocationRecord
	Status      Status
}

// Client returns the client party.
func (a *Agreement) Client() bidding.ParticipantID {
	return bidding.ParticipantID(a.Record.Client)
}

// Provider returns the provider party.
func (a *Agreement) Provider() bidding.ParticipantID {
	return bidding.ParticipantID(a.Record.Provider)
}

// Errors returned by contract methods.
var (
	ErrNotFound       = errors.New("contract: agreement not found")
	ErrNotClient      = errors.New("contract: caller is not the client of this agreement")
	ErrNotProvider    = errors.New("contract: caller is not the provider of this agreement")
	ErrAlreadyDecided = errors.New("contract: agreement already decided")
)

// Registry is the contract state: all agreements, indexed, plus the
// reputation store penalizing denials. Safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	agreements map[AgreementID]*Agreement
	reputation *reputation.Store
}

// NewRegistry creates a registry backed by the given reputation store
// (nil creates a private one).
func NewRegistry(rep *reputation.Store) *Registry {
	if rep == nil {
		rep = reputation.NewStore()
	}
	return &Registry{
		agreements: make(map[AgreementID]*Agreement),
		reputation: rep,
	}
}

// Reputation exposes the backing reputation store.
func (r *Registry) Reputation() *reputation.Store { return r.reputation }

// agreementID derives the canonical ID.
func agreementID(height int64, requestID string) AgreementID {
	return AgreementID(fmt.Sprintf("%d/%s", height, requestID))
}

// ProposeFromBlock registers every allocation record of a block as a
// proposed agreement and returns the new IDs in record order.
func (r *Registry) ProposeFromBlock(height int64, records []ledger.AllocationRecord) []AgreementID {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]AgreementID, 0, len(records))
	for _, rec := range records {
		id := agreementID(height, rec.RequestID)
		r.agreements[id] = &Agreement{
			ID:          id,
			BlockHeight: height,
			Record:      rec,
			Status:      Proposed,
		}
		ids = append(ids, id)
	}
	return ids
}

// Get returns a copy of the agreement.
func (r *Registry) Get(id AgreementID) (Agreement, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.agreements[id]
	if !ok {
		return Agreement{}, ErrNotFound
	}
	return *a, nil
}

// Accept is the contract's accept method: the named client binds the
// agreement. The caller must be the client recorded in the allocation.
func (r *Registry) Accept(id AgreementID, caller bidding.ParticipantID) error {
	if err := r.decide(id, caller, clientParty, Agreed); err != nil {
		return err
	}
	r.reputation.RecordAccept(caller)
	return nil
}

// Deny is the contract's deny method: the client refuses the allocation.
// It returns the provider that must be notified to resubmit its offer
// (Section III-B) and applies the reputational penalty.
func (r *Registry) Deny(id AgreementID, caller bidding.ParticipantID) (bidding.ParticipantID, error) {
	return r.DenyInto(id, caller, r.reputation)
}

// DenyInto is Deny with the reputational penalty recorded in an
// explicit store (nil falls back to the registry's own). A federation
// routes the penalty of a denied SPILLED match here: the agreement
// settles on the metro that cleared it, but the client's standing must
// decay on its ORIGIN metro — the exchange its future requests home to.
func (r *Registry) DenyInto(id AgreementID, caller bidding.ParticipantID, rep *reputation.Store) (bidding.ParticipantID, error) {
	if err := r.decide(id, caller, clientParty, Denied); err != nil {
		return "", err
	}
	if rep == nil {
		rep = r.reputation
	}
	rep.RecordDeny(caller)
	a, _ := r.Get(id)
	return a.Provider(), nil
}

// DenyByProvider is the provider-side break: the provider named in the
// allocation repudiates it (futures: reserved capacity that never
// materialized, or an overbooked reservation bumped at delivery). The
// penalty lands on the PROVIDER's reputation; the returned client is
// the party to notify (its request re-enters the spot market).
func (r *Registry) DenyByProvider(id AgreementID, caller bidding.ParticipantID) (bidding.ParticipantID, error) {
	if err := r.decide(id, caller, providerParty, Denied); err != nil {
		return "", err
	}
	r.reputation.RecordDeny(caller)
	a, _ := r.Get(id)
	return a.Client(), nil
}

// party selects which side of an agreement a decide call authenticates.
type party int

const (
	clientParty party = iota
	providerParty
)

func (r *Registry) decide(id AgreementID, caller bidding.ParticipantID, p party, status Status) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.agreements[id]
	if !ok {
		return ErrNotFound
	}
	switch p {
	case clientParty:
		if a.Client() != caller {
			return ErrNotClient
		}
	case providerParty:
		if a.Provider() != caller {
			return ErrNotProvider
		}
	}
	if a.Status != Proposed {
		return ErrAlreadyDecided
	}
	a.Status = status
	return nil
}

// PendingFor lists the proposed agreements awaiting a client's decision,
// sorted by ID.
func (r *Registry) PendingFor(client bidding.ParticipantID) []Agreement {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Agreement
	for _, a := range r.agreements {
		if a.Status == Proposed && a.Client() == client {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountByStatus tallies agreements per status.
func (r *Registry) CountByStatus() map[Status]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[Status]int)
	for _, a := range r.agreements {
		out[a.Status]++
	}
	return out
}
