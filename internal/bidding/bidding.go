// Package bidding implements DeCloud's extensible bidding language
// (Sections II-C and IV of the paper): client requests (Eq. 1) and
// provider offers (Eq. 2) over heterogeneous resource vectors, with
// per-resource significance weights, time windows, durations, locations,
// and sealed monetary bids.
package bidding

import (
	"errors"
	"fmt"
	"math"

	"decloud/internal/resource"
)

// ParticipantID identifies a client or provider. In ledger mode it is the
// fingerprint of the participant's public key; in simulation it is any
// unique string.
type ParticipantID string

// OrderID identifies a single request or offer.
type OrderID string

// Location tags an order with where the client wants its edge service to
// run, or where the provider's machine is. The paper allows "either
// geo-location or a network address"; we model both a coordinate (for
// distance-based latency resources) and a symbolic zone.
type Location struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Zone string  `json:"zone,omitempty"`
}

// Distance returns the Euclidean distance between two locations.
func (l Location) Distance(m Location) float64 {
	dx, dy := l.X-m.X, l.Y-m.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Request is a client's sealed order for running one container (Eq. 1):
//
//	r := <t_r, [ρ_{r,k}], [σ_{r,k}], t_r⁻, t_r⁺, d_r, b_r, ℓ_r>
//
// Bid is the reported valuation b_r; TrueValue is the private valuation
// v_r. The mechanism reads only Bid — TrueValue exists so that the
// simulator and the truthfulness tests can compute utilities and welfare
// against ground truth. Under DSIC bidding, Bid == TrueValue.
type Request struct {
	ID        OrderID         `json:"id"`
	Client    ParticipantID   `json:"client"`
	Submitted int64           `json:"submitted"` // t_r: submission time (logical or unix)
	Resources resource.Vector `json:"resources"` // ρ_{r,k}: required quantities

	// Weights holds the significance σ_{r,k} ∈ (0,1] of each requested
	// resource kind. A kind absent from Weights defaults to significance 1
	// (strictly required). Kinds present in Weights but not in Resources
	// are ignored.
	Weights map[resource.Kind]float64 `json:"weights,omitempty"`

	Start    int64    `json:"start"`    // t_r⁻: earliest start
	End      int64    `json:"end"`      // t_r⁺: latest finish
	Duration int64    `json:"duration"` // d_r: continuous runtime needed, ≤ End−Start
	Bid      float64  `json:"bid"`      // b_r: reported valuation for the whole duration
	Location Location `json:"location"`

	// Flexibility f ∈ (0,1]: the request accepts offers covering at least
	// f·ρ_{r,k} of every required resource. 1 (or 0, the zero value) means
	// inflexible — the client always gets 100% of requested resources
	// (the paper's first evaluation scenario).
	Flexibility float64 `json:"flexibility,omitempty"`

	// MaxDistance restricts matching to offers whose Location is within
	// this Euclidean distance of the request's Location (0 = anywhere).
	// This is the hard form of the paper's locality preference ℓ_r: an
	// edge service that must run near its users.
	MaxDistance float64 `json:"max_distance,omitempty"`

	// TrueValue is v_r, the client's private valuation. Not part of the
	// wire format in ledger mode.
	TrueValue float64 `json:"-"`
}

// Offer is a provider's sealed order for one computational device (Eq. 2):
//
//	o := <t_o, [ρ_{o,k}], t_o⁻, t_o⁺, b_o, ℓ_o>
//
// Bid is the reported cost b_o; TrueCost is the private cost c_o. The
// mechanism reads only Bid.
type Offer struct {
	ID        OrderID         `json:"id"`
	Provider  ParticipantID   `json:"provider"`
	Submitted int64           `json:"submitted"` // t_o
	Resources resource.Vector `json:"resources"` // ρ_{o,k}: offered capacities
	Start     int64           `json:"start"`     // t_o⁻: availability start
	End       int64           `json:"end"`       // t_o⁺: availability end
	Bid       float64         `json:"bid"`       // b_o: reported cost for the full window
	Location  Location        `json:"location"`

	// MinReputation is the lowest client reputation this provider
	// accepts, in [0, 1]. Zero accepts everyone. Section III-B: providers
	// "may set a threshold for the reputation of the clients that they
	// accept".
	MinReputation float64 `json:"min_reputation,omitempty"`

	// TrueCost is c_o, the provider's private cost. Not on the wire.
	TrueCost float64 `json:"-"`
}

// Errors returned by Validate.
var (
	ErrNoID           = errors.New("bidding: order has no ID")
	ErrNoOwner        = errors.New("bidding: order has no owner")
	ErrNoResources    = errors.New("bidding: order requests/offers no resources")
	ErrBadWindow      = errors.New("bidding: time window is empty or inverted")
	ErrBadDuration    = errors.New("bidding: duration is non-positive or exceeds window")
	ErrNegativeBid    = errors.New("bidding: bid must be a non-negative finite number")
	ErrBadWeight      = errors.New("bidding: significance weights must lie in (0, 1]")
	ErrBadFlexibility = errors.New("bidding: flexibility must lie in (0, 1]")
	ErrBadReputation  = errors.New("bidding: reputation threshold must lie in [0, 1]")
	ErrBadDistance    = errors.New("bidding: max distance must be non-negative")
)

// Validate checks structural well-formedness of a request (Const. 12 and
// the definitional constraints of Eq. 1).
func (r *Request) Validate() error {
	if r.ID == "" {
		return ErrNoID
	}
	if r.Client == "" {
		return ErrNoOwner
	}
	if err := r.Resources.Validate(); err != nil {
		return fmt.Errorf("request %s: %w", r.ID, err)
	}
	if r.Resources.IsZero() {
		return fmt.Errorf("request %s: %w", r.ID, ErrNoResources)
	}
	if r.End <= r.Start {
		return fmt.Errorf("request %s: %w", r.ID, ErrBadWindow)
	}
	if r.Duration <= 0 || r.Duration > r.End-r.Start {
		return fmt.Errorf("request %s: %w", r.ID, ErrBadDuration)
	}
	if r.Bid < 0 || math.IsNaN(r.Bid) || math.IsInf(r.Bid, 0) {
		return fmt.Errorf("request %s: %w", r.ID, ErrNegativeBid)
	}
	for k, w := range r.Weights {
		if w <= 0 || w > 1 || math.IsNaN(w) {
			return fmt.Errorf("request %s, kind %s: %w", r.ID, k, ErrBadWeight)
		}
	}
	if f := r.Flexibility; f != 0 && (f <= 0 || f > 1 || math.IsNaN(f)) {
		return fmt.Errorf("request %s: %w", r.ID, ErrBadFlexibility)
	}
	if r.MaxDistance < 0 || math.IsNaN(r.MaxDistance) {
		return fmt.Errorf("request %s: %w", r.ID, ErrBadDistance)
	}
	return nil
}

// WithinReach reports whether offer o satisfies the request's locality
// constraint: either the request has none, or the offer's location lies
// within MaxDistance.
func (r *Request) WithinReach(o *Offer) bool {
	if r.MaxDistance <= 0 {
		return true
	}
	return r.Location.Distance(o.Location) <= r.MaxDistance
}

// Validate checks structural well-formedness of an offer (Const. 13 and
// the definitional constraints of Eq. 2).
func (o *Offer) Validate() error {
	if o.ID == "" {
		return ErrNoID
	}
	if o.Provider == "" {
		return ErrNoOwner
	}
	if err := o.Resources.Validate(); err != nil {
		return fmt.Errorf("offer %s: %w", o.ID, err)
	}
	if o.Resources.IsZero() {
		return fmt.Errorf("offer %s: %w", o.ID, ErrNoResources)
	}
	if o.End <= o.Start {
		return fmt.Errorf("offer %s: %w", o.ID, ErrBadWindow)
	}
	if o.Bid < 0 || math.IsNaN(o.Bid) || math.IsInf(o.Bid, 0) {
		return fmt.Errorf("offer %s: %w", o.ID, ErrNegativeBid)
	}
	if o.MinReputation < 0 || o.MinReputation > 1 || math.IsNaN(o.MinReputation) {
		return fmt.Errorf("offer %s: %w", o.ID, ErrBadReputation)
	}
	return nil
}

// Weight returns σ_{r,k}: the declared weight, defaulting to 1 for any
// requested kind without an explicit entry.
func (r *Request) Weight(k resource.Kind) float64 {
	if w, ok := r.Weights[k]; ok {
		return w
	}
	return 1
}

// Flex returns the effective flexibility: 1 when unset.
func (r *Request) Flex() float64 {
	if r.Flexibility == 0 {
		return 1
	}
	return r.Flexibility
}

// Window returns t_r⁺ − t_r⁻.
func (r *Request) Window() int64 { return r.End - r.Start }

// Window returns t_o⁺ − t_o⁻, the offered availability span.
func (o *Offer) Window() int64 { return o.End - o.Start }

// TimeCompatible reports whether offer o can host request r for its whole
// window: t_o⁻ ≤ t_r⁻ and t_o⁺ ≥ t_r⁺ (Const. 10 and 11).
func TimeCompatible(r *Request, o *Offer) bool {
	return o.Start <= r.Start && o.End >= r.End
}

// ResourceFraction computes φ_{(r,o)} (Eq. 6): the fraction of offer o
// consumed by request r, averaged over the common resource kinds and
// scaled by the ratio of the request's duration to the offer's window.
// Returns 0 when the orders share no resource kind or the offer's window
// is empty.
func ResourceFraction(r *Request, o *Offer) float64 {
	common := r.Resources.CommonKinds(o.Resources)
	if len(common) == 0 || o.Window() <= 0 {
		return 0
	}
	var sum float64
	for _, k := range common {
		sum += r.Resources[k] / o.Resources[k]
	}
	timeShare := float64(r.Duration) / float64(o.Window())
	return timeShare * sum / float64(len(common))
}
