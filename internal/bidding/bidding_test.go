package bidding

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"decloud/internal/resource"
)

func validRequest() *Request {
	return &Request{
		ID:        "r1",
		Client:    "alice",
		Submitted: 10,
		Resources: resource.Vector{resource.CPU: 2, resource.RAM: 8},
		Weights:   map[resource.Kind]float64{resource.RAM: 0.5},
		Start:     0,
		End:       100,
		Duration:  50,
		Bid:       3.5,
		TrueValue: 3.5,
	}
}

func validOffer() *Offer {
	return &Offer{
		ID:        "o1",
		Provider:  "bob",
		Submitted: 5,
		Resources: resource.Vector{resource.CPU: 8, resource.RAM: 32},
		Start:     0,
		End:       200,
		Bid:       10,
		TrueCost:  10,
	}
}

func TestRequestValidate(t *testing.T) {
	if err := validRequest().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Request)
		want   error
	}{
		{"no id", func(r *Request) { r.ID = "" }, ErrNoID},
		{"no client", func(r *Request) { r.Client = "" }, ErrNoOwner},
		{"no resources", func(r *Request) { r.Resources = nil }, ErrNoResources},
		{"zero resources", func(r *Request) { r.Resources = resource.Vector{resource.CPU: 0} }, ErrNoResources},
		{"inverted window", func(r *Request) { r.Start, r.End = 100, 0 }, ErrBadWindow},
		{"zero duration", func(r *Request) { r.Duration = 0 }, ErrBadDuration},
		{"duration over window", func(r *Request) { r.Duration = 1000 }, ErrBadDuration},
		{"negative bid", func(r *Request) { r.Bid = -1 }, ErrNegativeBid},
		{"nan bid", func(r *Request) { r.Bid = math.NaN() }, ErrNegativeBid},
		{"weight zero", func(r *Request) { r.Weights[resource.RAM] = 0 }, ErrBadWeight},
		{"weight above one", func(r *Request) { r.Weights[resource.RAM] = 1.5 }, ErrBadWeight},
		{"flexibility above one", func(r *Request) { r.Flexibility = 1.1 }, ErrBadFlexibility},
		{"negative resource", func(r *Request) { r.Resources[resource.CPU] = -1 }, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validRequest()
			tt.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("got %v, want %v", err, tt.want)
			}
		})
	}
}

func TestOfferValidate(t *testing.T) {
	if err := validOffer().Validate(); err != nil {
		t.Fatalf("valid offer rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Offer)
		want   error
	}{
		{"no id", func(o *Offer) { o.ID = "" }, ErrNoID},
		{"no provider", func(o *Offer) { o.Provider = "" }, ErrNoOwner},
		{"no resources", func(o *Offer) { o.Resources = nil }, ErrNoResources},
		{"inverted window", func(o *Offer) { o.Start, o.End = 10, 10 }, ErrBadWindow},
		{"negative bid", func(o *Offer) { o.Bid = -0.1 }, ErrNegativeBid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validOffer()
			tt.mutate(o)
			err := o.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("got %v, want %v", err, tt.want)
			}
		})
	}
}

func TestWeightDefaultsToOne(t *testing.T) {
	r := validRequest()
	if got := r.Weight(resource.RAM); got != 0.5 {
		t.Fatalf("explicit weight = %v, want 0.5", got)
	}
	if got := r.Weight(resource.CPU); got != 1 {
		t.Fatalf("default weight = %v, want 1", got)
	}
}

func TestFlexDefault(t *testing.T) {
	r := validRequest()
	if r.Flex() != 1 {
		t.Fatalf("unset flexibility should read as 1, got %v", r.Flex())
	}
	r.Flexibility = 0.8
	if r.Flex() != 0.8 {
		t.Fatalf("Flex() = %v, want 0.8", r.Flex())
	}
}

func TestTimeCompatible(t *testing.T) {
	r := validRequest() // window [0,100]
	tests := []struct {
		name       string
		start, end int64
		want       bool
	}{
		{"covers exactly", 0, 100, true},
		{"covers loosely", -10, 150, true},
		{"starts late", 10, 150, false},
		{"ends early", 0, 90, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validOffer()
			o.Start, o.End = tt.start, tt.end
			if got := TimeCompatible(r, o); got != tt.want {
				t.Fatalf("TimeCompatible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestResourceFraction(t *testing.T) {
	r := validRequest() // cpu=2 ram=8, duration 50
	o := validOffer()   // cpu=8 ram=32, window 200
	// φ = (50/200) · ((2/8 + 8/32)/2) = 0.25 · 0.25 = 0.0625
	if got, want := ResourceFraction(r, o), 0.0625; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ResourceFraction = %v, want %v", got, want)
	}
}

func TestResourceFractionNoCommonKinds(t *testing.T) {
	r := validRequest()
	o := validOffer()
	o.Resources = resource.Vector{resource.GPU: 1}
	if got := ResourceFraction(r, o); got != 0 {
		t.Fatalf("disjoint kinds should give fraction 0, got %v", got)
	}
}

func TestLocationDistance(t *testing.T) {
	a := Location{X: 0, Y: 0}
	b := Location{X: 3, Y: 4}
	if got := a.Distance(b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Distance = %v, want 5", got)
	}
}

func TestRequestBinaryRoundTrip(t *testing.T) {
	r := validRequest()
	r.Location = Location{X: 1.5, Y: -2.5, Zone: "eu-north"}
	r.Flexibility = 0.8
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	got.TrueValue = r.TrueValue // private field, not on the wire
	if got.ID != r.ID || got.Client != r.Client || got.Submitted != r.Submitted ||
		got.Start != r.Start || got.End != r.End || got.Duration != r.Duration ||
		got.Bid != r.Bid || got.Location != r.Location || got.Flexibility != r.Flexibility {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, *r)
	}
	if !got.Resources.Equal(r.Resources) {
		t.Fatalf("resources mismatch: %v vs %v", got.Resources, r.Resources)
	}
	if got.Weights[resource.RAM] != 0.5 {
		t.Fatalf("weights mismatch: %v", got.Weights)
	}
}

func TestOfferBinaryRoundTrip(t *testing.T) {
	o := validOffer()
	o.Location = Location{Zone: "edge-7"}
	data, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Offer
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.ID != o.ID || got.Provider != o.Provider || got.Bid != o.Bid ||
		got.Start != o.Start || got.End != o.End || got.Location != o.Location {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, *o)
	}
	if !got.Resources.Equal(o.Resources) {
		t.Fatalf("resources mismatch: %v vs %v", got.Resources, o.Resources)
	}
}

func TestEncodingDeterministic(t *testing.T) {
	r := validRequest()
	r.Resources = resource.Vector{resource.RAM: 8, resource.CPU: 2, resource.Disk: 10}
	a, _ := r.MarshalBinary()
	b, _ := r.MarshalBinary()
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeOrderDispatch(t *testing.T) {
	rdata, _ := validRequest().MarshalBinary()
	odata, _ := validOffer().MarshalBinary()
	r, o, err := DecodeOrder(rdata)
	if err != nil || r == nil || o != nil {
		t.Fatalf("request dispatch: r=%v o=%v err=%v", r, o, err)
	}
	r, o, err = DecodeOrder(odata)
	if err != nil || r != nil || o == nil {
		t.Fatalf("offer dispatch: r=%v o=%v err=%v", r, o, err)
	}
	if _, _, err := DecodeOrder(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty decode: %v", err)
	}
	if _, _, err := DecodeOrder([]byte{0x7f}); err == nil {
		t.Fatal("unknown tag should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	data, _ := validRequest().MarshalBinary()
	for _, cut := range []int{1, 2, 5, len(data) / 2, len(data) - 1} {
		var r Request
		if err := r.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	var o Offer
	if err := o.UnmarshalBinary(data); err == nil {
		t.Fatal("request bytes decoded as offer")
	}
}

func TestDecodeHostileLength(t *testing.T) {
	// A length prefix far larger than the remaining data must not panic
	// or allocate unboundedly.
	data := []byte{tagRequest, 0xff, 0xff, 0xff, 0xff}
	var r Request
	if err := r.UnmarshalBinary(data); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestMaxDistanceValidatedAndOnWire(t *testing.T) {
	r := validRequest()
	r.MaxDistance = -1
	if err := r.Validate(); !errors.Is(err, ErrBadDistance) {
		t.Fatalf("negative distance accepted: %v", err)
	}
	r.MaxDistance = 12.5
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.MaxDistance != 12.5 {
		t.Fatalf("MaxDistance lost on the wire: %v", got.MaxDistance)
	}
}

func TestWithinReach(t *testing.T) {
	r := validRequest()
	o := validOffer()
	o.Location = Location{X: 6, Y: 8} // distance 10 from origin
	if !r.WithinReach(o) {
		t.Fatal("unconstrained request should reach anywhere")
	}
	r.MaxDistance = 9
	if r.WithinReach(o) {
		t.Fatal("offer beyond MaxDistance accepted")
	}
	r.MaxDistance = 10
	if !r.WithinReach(o) {
		t.Fatal("offer at exactly MaxDistance rejected")
	}
}

// TestDecodeOrderNeverPanics feeds adversarial bytes to the decoder: any
// outcome but a panic is acceptable.
func TestDecodeOrderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("DecodeOrder panicked on %x: %v", data, r)
			}
		}()
		_, _, _ = DecodeOrder(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also fuzz with a valid tag prefix so the body decoders get exercised.
	g := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("UnmarshalBinary panicked: %v", r)
			}
		}()
		var req Request
		_ = req.UnmarshalBinary(append([]byte{0x01}, data...))
		var off Offer
		_ = off.UnmarshalBinary(append([]byte{0x02}, data...))
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRequestRoundTripProperty: every valid generated request survives
// the wire bit-exactly.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(cpu, ram uint8, bid uint16, dur uint8, flex uint8) bool {
		r := &Request{
			ID:        "r",
			Client:    "c",
			Resources: resource.Vector{resource.CPU: float64(cpu%16) + 1, resource.RAM: float64(ram) + 1},
			Start:     0,
			End:       int64(dur%100) + 2,
			Duration:  1,
			Bid:       float64(bid) / 100,
		}
		if flex%4 != 0 {
			r.Flexibility = float64(flex%4) * 0.25
		}
		data, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var got Request
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.ID == r.ID && got.Bid == r.Bid && got.Flexibility == r.Flexibility &&
			got.Resources.Equal(r.Resources)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
