package bidding

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"decloud/internal/resource"
)

// Canonical binary encoding for orders. The two-phase bid exposure
// protocol hashes and signs orders, so the encoding must be deterministic:
// fixed field order, big-endian integers, IEEE-754 bits for floats, and
// resource kinds sorted lexicographically.

// Order tags distinguish the two order types on the wire.
const (
	tagRequest byte = 0x01
	tagOffer   byte = 0x02
)

// ErrTruncated is returned when decoding runs out of bytes.
var ErrTruncated = errors.New("bidding: truncated order encoding")

type encoder struct{ buf bytes.Buffer }

func (e *encoder) str(s string) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	e.buf.Write(n[:])
	e.buf.WriteString(s)
}

func (e *encoder) u64(v uint64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	e.buf.Write(n[:])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) vector(v resource.Vector) {
	kinds := make([]string, 0, len(v))
	for k := range v {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	e.u64(uint64(len(kinds)))
	for _, k := range kinds {
		e.str(k)
		e.f64(v[resource.Kind(k)])
	}
}

func (e *encoder) weights(w map[resource.Kind]float64) {
	kinds := make([]string, 0, len(w))
	for k := range w {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	e.u64(uint64(len(kinds)))
	for _, k := range kinds {
		e.str(k)
		e.f64(w[resource.Kind(k)])
	}
}

func (e *encoder) location(l Location) {
	e.f64(l.X)
	e.f64(l.Y)
	e.str(l.Zone)
}

type decoder struct{ r *bytes.Reader }

func (d *decoder) str() (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(d.r, n[:]); err != nil {
		return "", ErrTruncated
	}
	length := binary.BigEndian.Uint32(n[:])
	if uint32(d.r.Len()) < length {
		return "", ErrTruncated
	}
	b := make([]byte, length)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", ErrTruncated
	}
	return string(b), nil
}

func (d *decoder) u64() (uint64, error) {
	var n [8]byte
	if _, err := io.ReadFull(d.r, n[:]); err != nil {
		return 0, ErrTruncated
	}
	return binary.BigEndian.Uint64(n[:]), nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) vector() (resource.Vector, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Every entry costs at least 12 wire bytes (4-byte kind length +
	// 8-byte quantity), so a count larger than the remaining input is a
	// forged header — reject it before sizing the map, or a 20-byte
	// message could demand a multi-gigabyte allocation.
	if n > uint64(d.r.Len())/12 {
		return nil, ErrTruncated
	}
	v := make(resource.Vector, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		q, err := d.f64()
		if err != nil {
			return nil, err
		}
		v[resource.Kind(k)] = q
	}
	return v, nil
}

func (d *decoder) weights() (map[resource.Kind]float64, error) {
	v, err := d.vector()
	if err != nil || v == nil {
		return nil, err
	}
	return map[resource.Kind]float64(v), nil
}

func (d *decoder) location() (Location, error) {
	var l Location
	var err error
	if l.X, err = d.f64(); err != nil {
		return l, err
	}
	if l.Y, err = d.f64(); err != nil {
		return l, err
	}
	l.Zone, err = d.str()
	return l, err
}

// MarshalBinary encodes the request canonically. TrueValue is private and
// never leaves the client, so it is not encoded.
func (r *Request) MarshalBinary() ([]byte, error) {
	var e encoder
	e.buf.WriteByte(tagRequest)
	e.str(string(r.ID))
	e.str(string(r.Client))
	e.i64(r.Submitted)
	e.vector(r.Resources)
	e.weights(r.Weights)
	e.i64(r.Start)
	e.i64(r.End)
	e.i64(r.Duration)
	e.f64(r.Bid)
	e.location(r.Location)
	e.f64(r.Flexibility)
	e.f64(r.MaxDistance)
	return e.buf.Bytes(), nil
}

// UnmarshalBinary decodes a request encoded by MarshalBinary.
func (r *Request) UnmarshalBinary(data []byte) error {
	d := decoder{r: bytes.NewReader(data)}
	tag, err := d.r.ReadByte()
	if err != nil {
		return ErrTruncated
	}
	if tag != tagRequest {
		return fmt.Errorf("bidding: expected request tag, got %#x", tag)
	}
	id, err := d.str()
	if err != nil {
		return err
	}
	client, err := d.str()
	if err != nil {
		return err
	}
	r.ID, r.Client = OrderID(id), ParticipantID(client)
	if r.Submitted, err = d.i64(); err != nil {
		return err
	}
	if r.Resources, err = d.vector(); err != nil {
		return err
	}
	if r.Weights, err = d.weights(); err != nil {
		return err
	}
	if r.Start, err = d.i64(); err != nil {
		return err
	}
	if r.End, err = d.i64(); err != nil {
		return err
	}
	if r.Duration, err = d.i64(); err != nil {
		return err
	}
	if r.Bid, err = d.f64(); err != nil {
		return err
	}
	if r.Location, err = d.location(); err != nil {
		return err
	}
	if r.Flexibility, err = d.f64(); err != nil {
		return err
	}
	if r.MaxDistance, err = d.f64(); err != nil {
		return err
	}
	return nil
}

// MarshalBinary encodes the offer canonically. TrueCost is never encoded.
func (o *Offer) MarshalBinary() ([]byte, error) {
	var e encoder
	e.buf.WriteByte(tagOffer)
	e.str(string(o.ID))
	e.str(string(o.Provider))
	e.i64(o.Submitted)
	e.vector(o.Resources)
	e.i64(o.Start)
	e.i64(o.End)
	e.f64(o.Bid)
	e.location(o.Location)
	e.f64(o.MinReputation)
	return e.buf.Bytes(), nil
}

// UnmarshalBinary decodes an offer encoded by MarshalBinary.
func (o *Offer) UnmarshalBinary(data []byte) error {
	d := decoder{r: bytes.NewReader(data)}
	tag, err := d.r.ReadByte()
	if err != nil {
		return ErrTruncated
	}
	if tag != tagOffer {
		return fmt.Errorf("bidding: expected offer tag, got %#x", tag)
	}
	id, err := d.str()
	if err != nil {
		return err
	}
	provider, err := d.str()
	if err != nil {
		return err
	}
	o.ID, o.Provider = OrderID(id), ParticipantID(provider)
	if o.Submitted, err = d.i64(); err != nil {
		return err
	}
	if o.Resources, err = d.vector(); err != nil {
		return err
	}
	if o.Start, err = d.i64(); err != nil {
		return err
	}
	if o.End, err = d.i64(); err != nil {
		return err
	}
	if o.Bid, err = d.f64(); err != nil {
		return err
	}
	if o.Location, err = d.location(); err != nil {
		return err
	}
	if o.MinReputation, err = d.f64(); err != nil {
		return err
	}
	return nil
}

// DecodeOrder decodes either order type based on the leading tag and
// returns exactly one non-nil result.
func DecodeOrder(data []byte) (*Request, *Offer, error) {
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	switch data[0] {
	case tagRequest:
		var r Request
		if err := r.UnmarshalBinary(data); err != nil {
			return nil, nil, err
		}
		return &r, nil, nil
	case tagOffer:
		var o Offer
		if err := o.UnmarshalBinary(data); err != nil {
			return nil, nil, err
		}
		return nil, &o, nil
	default:
		return nil, nil, fmt.Errorf("bidding: unknown order tag %#x", data[0])
	}
}
