package bidding

import (
	"bytes"
	"testing"

	"decloud/internal/resource"
)

// fuzzSeedOrders builds the seed corpus: canonical encodings of both
// order types, with and without optional fields, so the fuzzer starts
// from structurally valid inputs and mutates toward the edge cases.
func fuzzSeedOrders(tb testing.TB) [][]byte {
	tb.Helper()
	req := &Request{
		ID:        "req-fuzz-1",
		Client:    "client-a",
		Submitted: 42,
		Resources: resource.Vector{"cpu": 4, "ram": 16},
		Weights:   map[resource.Kind]float64{"cpu": 0.7, "ram": 0.3},
		Start:     100, End: 500, Duration: 60,
		Bid:         12.5,
		Location:    Location{X: 0.25, Y: -0.5, Zone: "eu-west"},
		Flexibility: 0.8,
		MaxDistance: 0.4,
	}
	bare := &Request{
		ID: "r", Client: "c",
		Resources: resource.Vector{"cpu": 1},
		Start:     0, End: 10, Duration: 5, Bid: 1,
	}
	off := &Offer{
		ID:        "off-fuzz-1",
		Provider:  "prov-b",
		Submitted: 7,
		Resources: resource.Vector{"cpu": 32, "ram": 128, "disk": 500},
		Start:     0, End: 1000,
		Bid:           2.25,
		Location:      Location{X: -1, Y: 1, Zone: ""},
		MinReputation: 0.9,
	}
	var seeds [][]byte
	for _, m := range []interface{ MarshalBinary() ([]byte, error) }{req, bare, off} {
		data, err := m.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	return seeds
}

// FuzzDecodeBid throws arbitrary bytes at the wire decoder every peer
// runs on unauthenticated gossip. DecodeOrder must never panic, and any
// input it accepts must re-encode to a canonical fixpoint: decoding the
// re-encoding yields the same bytes again. (Byte-level comparison
// rather than DeepEqual so NaN bids — representable on the wire via
// Float64bits — don't produce false mismatches.)
func FuzzDecodeBid(f *testing.F) {
	for _, seed := range fuzzSeedOrders(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02})
	f.Add([]byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, off, err := DecodeOrder(data)
		if err != nil {
			if req != nil || off != nil {
				t.Fatalf("error %v but non-nil order returned", err)
			}
			return
		}
		if (req == nil) == (off == nil) {
			t.Fatal("DecodeOrder must return exactly one non-nil order")
		}
		var enc []byte
		if req != nil {
			enc, err = req.MarshalBinary()
		} else {
			enc, err = off.MarshalBinary()
		}
		if err != nil {
			t.Fatalf("re-encode of accepted order failed: %v", err)
		}
		req2, off2, err := DecodeOrder(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		var enc2 []byte
		if req2 != nil {
			enc2, err = req2.MarshalBinary()
		} else {
			enc2, err = off2.MarshalBinary()
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixpoint:\n first: %x\nsecond: %x", enc, enc2)
		}
	})
}
