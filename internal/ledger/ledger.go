// Package ledger implements the blockchain substrate of the two-phase
// bid exposure protocol (Sections II-A and III): blocks made of a mined
// preamble (previous-block reference, proof-of-work, sealed bids) and a
// body (revealed temporary keys plus the allocation suggestion), chained
// and verified. The preamble's PoW hash doubles as the public random
// evidence that seeds the mechanism's verifiable randomized exclusions.
package ledger

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"decloud/internal/auction"
	"decloud/internal/sealed"
)

// Errors returned by chain operations.
var (
	ErrBadLinkage    = errors.New("ledger: previous-hash linkage broken")
	ErrBadPoW        = errors.New("ledger: proof-of-work invalid")
	ErrBadBidsHash   = errors.New("ledger: sealed-bids hash mismatch")
	ErrNoBody        = errors.New("ledger: block has no body")
	ErrBadAllocation = errors.New("ledger: allocation hash mismatch")
)

// Preamble is the first part of a block, shared right after the PoW is
// solved and before any bid is readable.
type Preamble struct {
	Height     int64    `json:"height"`
	PrevHash   [32]byte `json:"prev_hash"`
	Timestamp  int64    `json:"timestamp"`
	Difficulty int      `json:"difficulty"` // required leading zero bits
	Nonce      uint64   `json:"nonce"`
	BidsHash   [32]byte `json:"bids_hash"`
}

// Hash computes the preamble's canonical SHA-256 hash.
func (p *Preamble) Hash() [32]byte {
	buf := make([]byte, 0, 8*4+32*2)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(p.Height))
	buf = append(buf, n[:]...)
	buf = append(buf, p.PrevHash[:]...)
	binary.BigEndian.PutUint64(n[:], uint64(p.Timestamp))
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], uint64(p.Difficulty))
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], p.Nonce)
	buf = append(buf, n[:]...)
	buf = append(buf, p.BidsHash[:]...)
	return sha256.Sum256(buf)
}

// ValidPoW reports whether the preamble hash has the required number of
// leading zero bits.
func (p *Preamble) ValidPoW() bool {
	return leadingZeroBits(p.Hash()) >= p.Difficulty
}

func leadingZeroBits(h [32]byte) int {
	total := 0
	for _, b := range h {
		if b == 0 {
			total += 8
			continue
		}
		total += bits.LeadingZeros8(b)
		break
	}
	return total
}

// Mine searches for a nonce satisfying the difficulty, checking ctx
// between attempts so racing miners can be cancelled. Returns false if
// cancelled or maxIter exhausted.
func Mine(ctx context.Context, p *Preamble, maxIter uint64) bool {
	for i := uint64(0); maxIter == 0 || i < maxIter; i++ {
		select {
		case <-ctx.Done():
			return false
		default:
		}
		if p.ValidPoW() {
			return true
		}
		p.Nonce++
	}
	return false
}

// HashBids computes the canonical hash of a sealed-bid set. Order matters:
// the mining miner fixes the order when assembling the preamble.
func HashBids(bids []*sealed.Bid) [32]byte {
	h := sha256.New()
	for _, b := range bids {
		d := b.Digest()
		h.Write(d[:])
		h.Write(b.Sender)
		h.Write(b.Signature)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// AllocationRecord is one match as recorded on-chain.
type AllocationRecord struct {
	RequestID string             `json:"request_id"`
	OfferID   string             `json:"offer_id"`
	Client    string             `json:"client"`
	Provider  string             `json:"provider"`
	Payment   float64            `json:"payment"`
	UnitPrice float64            `json:"unit_price"`
	Granted   map[string]float64 `json:"granted"`
}

// EncodeAllocation serializes an outcome's matches deterministically
// (Outcome.Matches is already deterministically ordered).
func EncodeAllocation(out *auction.Outcome) ([]byte, error) {
	records := make([]AllocationRecord, 0, len(out.Matches))
	for _, m := range out.Matches {
		granted := make(map[string]float64, len(m.Granted))
		for k, q := range m.Granted {
			granted[string(k)] = q
		}
		records = append(records, AllocationRecord{
			RequestID: string(m.Request.ID),
			OfferID:   string(m.Offer.ID),
			Client:    string(m.Request.Client),
			Provider:  string(m.Offer.Provider),
			Payment:   m.Payment,
			UnitPrice: m.UnitPrice,
			Granted:   granted,
		})
	}
	data, err := json.Marshal(records)
	if err != nil {
		return nil, fmt.Errorf("ledger: encode allocation: %w", err)
	}
	return data, nil
}

// DecodeAllocation parses on-chain allocation records.
func DecodeAllocation(data []byte) ([]AllocationRecord, error) {
	var records []AllocationRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("ledger: decode allocation: %w", err)
	}
	return records, nil
}

// Body is the block's second part, broadcast after key reveal and
// allocation computation.
type Body struct {
	Reveals        []*sealed.KeyReveal `json:"reveals"`
	Allocation     []byte              `json:"allocation"`
	AllocationHash [32]byte            `json:"allocation_hash"`
}

// NewBody assembles a body, hashing the allocation bytes.
func NewBody(reveals []*sealed.KeyReveal, allocation []byte) *Body {
	return &Body{
		Reveals:        reveals,
		Allocation:     allocation,
		AllocationHash: sha256.Sum256(allocation),
	}
}

// Block is a full block: mined preamble, the sealed bids it commits to,
// and (after the execution phase) the body.
type Block struct {
	Preamble Preamble      `json:"preamble"`
	Bids     []*sealed.Bid `json:"bids"`
	Body     *Body         `json:"body,omitempty"`
}

// Evidence returns the block's public randomness: the preamble hash,
// fixed by PoW before any bid was readable — so neither the miner nor
// any participant could grind it against bid contents.
func (b *Block) Evidence() []byte {
	h := b.Preamble.Hash()
	return h[:]
}

// Validate checks the block's self-consistency: PoW, bids hash, body
// presence, and allocation hash.
func (b *Block) Validate() error {
	if !b.Preamble.ValidPoW() {
		return ErrBadPoW
	}
	if HashBids(b.Bids) != b.Preamble.BidsHash {
		return ErrBadBidsHash
	}
	if b.Body == nil {
		return ErrNoBody
	}
	if sha256.Sum256(b.Body.Allocation) != b.Body.AllocationHash {
		return ErrBadAllocation
	}
	return nil
}

// Chain is an append-only sequence of validated blocks. The zero-height
// genesis block is implicit: the first appended block must reference the
// all-zero hash. Chain is safe for concurrent use: every accessor takes
// the RWMutex, and Append holds the write lock across validation and
// the verify callback so linkage is checked against a stable head (this
// deliberately serializes appends — re-executing an allocation under
// the lock is the price of a consistent replica). Head and BlockAt
// return pointers into the chain without copying, so appended blocks
// are shared: callers must treat a *Block as immutable once it has been
// appended anywhere.
type Chain struct {
	mu     sync.RWMutex
	blocks []*Block
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// Len returns the number of blocks.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// Head returns the latest block, or nil for an empty chain.
func (c *Chain) Head() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return nil
	}
	return c.blocks[len(c.blocks)-1]
}

// HeadHash returns the hash the next block must reference.
func (c *Chain) HeadHash() [32]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return [32]byte{}
	}
	return c.blocks[len(c.blocks)-1].Preamble.Hash()
}

// BlockAt returns the i-th block (nil when out of range).
func (c *Chain) BlockAt(i int) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i < 0 || i >= len(c.blocks) {
		return nil
	}
	return c.blocks[i]
}

// Append validates and appends a block. The optional verify callback lets
// callers add semantic validation (miners re-executing the allocation).
func (c *Chain) Append(b *Block, verify func(*Block) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var prev [32]byte
	var height int64
	if len(c.blocks) > 0 {
		head := c.blocks[len(c.blocks)-1]
		prev = head.Preamble.Hash()
		height = head.Preamble.Height + 1
	}
	if b.Preamble.PrevHash != prev || b.Preamble.Height != height {
		return ErrBadLinkage
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if verify != nil {
		if err := verify(b); err != nil {
			return fmt.Errorf("ledger: block verification: %w", err)
		}
	}
	c.blocks = append(c.blocks, b)
	return nil
}
