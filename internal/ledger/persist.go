package ledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Chain persistence: blocks are stored as JSON lines (one block per
// line), replayed through the normal Append validation on load — a
// corrupted or tampered file fails exactly like a bad block from the
// network would.

// ErrCorruptChainFile wraps decode failures on load.
var ErrCorruptChainFile = errors.New("ledger: corrupt chain file")

// Save writes the chain to w as JSON lines.
func (c *Chain) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, b := range c.blocks {
		if err := enc.Encode(b); err != nil {
			return fmt.Errorf("ledger: save block %d: %w", b.Preamble.Height, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the chain to a file (0644), replacing any existing
// content atomically via a temp file in the same directory.
func (c *Chain) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: save: %w", err)
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a chain from r, re-validating every block (linkage, PoW,
// bids hash, body integrity) plus the caller's semantic verify callback.
func Load(r io.Reader, verify func(*Block) error) (*Chain, error) {
	c := NewChain()
	dec := json.NewDecoder(r)
	for {
		var b Block
		if err := dec.Decode(&b); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptChainFile, err)
		}
		if err := c.Append(&b, verify); err != nil {
			return nil, fmt.Errorf("ledger: load block %d: %w", b.Preamble.Height, err)
		}
	}
	return c, nil
}

// LoadFile reads a chain from a file.
func LoadFile(path string, verify func(*Block) error) (*Chain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: load: %w", err)
	}
	defer f.Close()
	return Load(f, verify)
}
