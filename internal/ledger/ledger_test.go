package ledger

import (
	"context"
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/sealed"
)

const testDifficulty = 8 // cheap enough for unit tests

func testBid(t *testing.T, seed string) (*sealed.Bid, *sealed.Identity, []byte) {
	t.Helper()
	id, err := sealed.NewIdentityFrom(sha256Reader(seed))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sealed.NewTempKeyFrom(sha256Reader(seed + "-key"))
	if err != nil {
		t.Fatal(err)
	}
	r := &bidding.Request{
		ID: bidding.OrderID("r-" + seed), Client: id.ParticipantID(),
		Resources: resource.Vector{resource.CPU: 2},
		Start:     0, End: 100, Duration: 50, Bid: 3,
	}
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bid, err := sealed.SealBid(id, data, key, sha256Reader(seed+"-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	return bid, id, key
}

// sha256Reader yields a deterministic byte stream.
type chainReader struct{ state [32]byte }

func sha256Reader(seed string) *chainReader {
	c := &chainReader{}
	c.state = sha256.Sum256([]byte(seed))
	return c
}

func (c *chainReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		c.state = sha256.Sum256(c.state[:])
		n += copy(p[n:], c.state[:])
	}
	return n, nil
}

func minedBlock(t *testing.T, prev [32]byte, height int64, bids []*sealed.Bid, body *Body) *Block {
	t.Helper()
	b := &Block{
		Preamble: Preamble{
			Height:     height,
			PrevHash:   prev,
			Timestamp:  time.Now().Unix(),
			Difficulty: testDifficulty,
			BidsHash:   HashBids(bids),
		},
		Bids: bids,
		Body: body,
	}
	if !Mine(context.Background(), &b.Preamble, 0) {
		t.Fatal("mining failed")
	}
	return b
}

func TestPoWMineAndValidate(t *testing.T) {
	p := Preamble{Difficulty: testDifficulty}
	if p.ValidPoW() && p.Nonce == 0 {
		t.Skip("improbable: zero nonce already valid")
	}
	if !Mine(context.Background(), &p, 0) {
		t.Fatal("mining failed")
	}
	if !p.ValidPoW() {
		t.Fatal("mined preamble invalid")
	}
	p.Nonce++
	if p.ValidPoW() {
		t.Fatal("nonce perturbation should (almost surely) break PoW")
	}
}

func TestMineRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Preamble{Difficulty: 255} // unreachable
	if Mine(ctx, &p, 0) {
		t.Fatal("cancelled mining succeeded")
	}
}

func TestMineMaxIter(t *testing.T) {
	p := Preamble{Difficulty: 255}
	if Mine(context.Background(), &p, 100) {
		t.Fatal("impossible difficulty satisfied")
	}
}

func TestHashBidsOrderSensitive(t *testing.T) {
	b1, _, _ := testBid(t, "one")
	b2, _, _ := testBid(t, "two")
	if HashBids([]*sealed.Bid{b1, b2}) == HashBids([]*sealed.Bid{b2, b1}) {
		t.Fatal("bid order must be committed by the hash")
	}
}

func TestBlockValidate(t *testing.T) {
	bid, id, key := testBid(t, "v")
	reveal := sealed.NewKeyReveal(id, bid, key)
	body := NewBody([]*sealed.KeyReveal{reveal}, []byte(`[]`))
	b := minedBlock(t, [32]byte{}, 0, []*sealed.Bid{bid}, body)
	if err := b.Validate(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}

	// Tampered allocation.
	b.Body.Allocation = []byte(`[{"forged":true}]`)
	if err := b.Validate(); !errors.Is(err, ErrBadAllocation) {
		t.Fatalf("tampered allocation: %v", err)
	}
	b.Body = nil
	if err := b.Validate(); !errors.Is(err, ErrNoBody) {
		t.Fatalf("missing body: %v", err)
	}
}

func TestChainAppendAndLinkage(t *testing.T) {
	c := NewChain()
	if c.Head() != nil || c.Len() != 0 {
		t.Fatal("fresh chain not empty")
	}
	bid, id, key := testBid(t, "a")
	body := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id, bid, key)}, []byte(`[]`))
	b0 := minedBlock(t, [32]byte{}, 0, []*sealed.Bid{bid}, body)
	if err := c.Append(b0, nil); err != nil {
		t.Fatalf("append genesis: %v", err)
	}
	if c.Len() != 1 || c.Head() != b0 || c.BlockAt(0) != b0 {
		t.Fatal("chain state wrong after append")
	}

	// Second block must link.
	bid2, id2, key2 := testBid(t, "b")
	body2 := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id2, bid2, key2)}, []byte(`[]`))
	wrong := minedBlock(t, [32]byte{0xde, 0xad}, 1, []*sealed.Bid{bid2}, body2)
	if err := c.Append(wrong, nil); !errors.Is(err, ErrBadLinkage) {
		t.Fatalf("bad linkage accepted: %v", err)
	}
	right := minedBlock(t, c.HeadHash(), 1, []*sealed.Bid{bid2}, body2)
	if err := c.Append(right, nil); err != nil {
		t.Fatalf("append second: %v", err)
	}
	if c.BlockAt(5) != nil || c.BlockAt(-1) != nil {
		t.Fatal("out-of-range BlockAt should be nil")
	}
}

func TestChainRejectsBadPoW(t *testing.T) {
	c := NewChain()
	bid, id, key := testBid(t, "pow")
	body := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id, bid, key)}, []byte(`[]`))
	b := &Block{
		Preamble: Preamble{Difficulty: 255, BidsHash: HashBids([]*sealed.Bid{bid})},
		Bids:     []*sealed.Bid{bid},
		Body:     body,
	}
	if err := c.Append(b, nil); !errors.Is(err, ErrBadPoW) {
		t.Fatalf("bad PoW accepted: %v", err)
	}
}

func TestChainVerifyCallback(t *testing.T) {
	c := NewChain()
	bid, id, key := testBid(t, "cb")
	body := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id, bid, key)}, []byte(`[]`))
	b := minedBlock(t, [32]byte{}, 0, []*sealed.Bid{bid}, body)
	boom := errors.New("allocation disagreement")
	err := c.Append(b, func(*Block) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("verify callback ignored: %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("rejected block was appended")
	}
}

func TestEvidenceFixedByPoW(t *testing.T) {
	bid, id, key := testBid(t, "ev")
	body := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id, bid, key)}, []byte(`[]`))
	b := minedBlock(t, [32]byte{}, 0, []*sealed.Bid{bid}, body)
	ev1 := b.Evidence()
	// Evidence is a pure function of the preamble: same block → same bytes.
	ev2 := b.Evidence()
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatal("evidence not stable")
		}
	}
	if len(ev1) != 32 {
		t.Fatalf("evidence length = %d", len(ev1))
	}
}

func TestAllocationEncodeDecode(t *testing.T) {
	r := &bidding.Request{
		ID: "r1", Client: "alice",
		Resources: resource.Vector{resource.CPU: 2},
		Start:     0, End: 100, Duration: 100, Bid: 10, TrueValue: 10,
	}
	setter := &bidding.Request{
		ID: "r2", Client: "zed",
		Resources: resource.Vector{resource.CPU: 2},
		Start:     0, End: 100, Duration: 100, Bid: 2, TrueValue: 2,
	}
	o := &bidding.Offer{
		ID: "o1", Provider: "p1",
		Resources: resource.Vector{resource.CPU: 8},
		Start:     0, End: 100, Bid: 1, TrueCost: 1,
	}
	out := auction.Run([]*bidding.Request{r, setter}, []*bidding.Offer{o}, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Fatal("expected a trade")
	}
	data, err := EncodeAllocation(out)
	if err != nil {
		t.Fatal(err)
	}
	records, err := DecodeAllocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(out.Matches) {
		t.Fatalf("records = %d, matches = %d", len(records), len(out.Matches))
	}
	if records[0].RequestID != "r1" || records[0].OfferID != "o1" {
		t.Fatalf("record content: %+v", records[0])
	}
	if records[0].Payment != out.Matches[0].Payment {
		t.Fatal("payment mismatch")
	}
	if _, err := DecodeAllocation([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}
