package ledger

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"decloud/internal/sealed"
)

func buildChain(t *testing.T, n int) *Chain {
	t.Helper()
	c := NewChain()
	for i := 0; i < n; i++ {
		bid, id, key := testBid(t, string(rune('a'+i)))
		body := NewBody([]*sealed.KeyReveal{sealed.NewKeyReveal(id, bid, key)}, []byte(`[]`))
		b := minedBlock(t, c.HeadHash(), int64(i), []*sealed.Bid{bid}, body)
		if err := c.Append(b, nil); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := buildChain(t, 3)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("loaded %d blocks", loaded.Len())
	}
	for i := 0; i < 3; i++ {
		if loaded.BlockAt(i).Preamble.Hash() != c.BlockAt(i).Preamble.Hash() {
			t.Fatalf("block %d hash mismatch after round trip", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := buildChain(t, 2)
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d blocks", loaded.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadRejectsTamperedBlock(t *testing.T) {
	c := buildChain(t, 2)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored nonce of the second block: PoW breaks.
	text := buf.String()
	tampered := strings.Replace(text, `"nonce":`, `"nonce":9`, 2)
	if tampered == text {
		t.Skip("nonce field not found to tamper")
	}
	if _, err := Load(strings.NewReader(tampered), nil); err == nil {
		t.Fatal("tampered chain file loaded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json at all"), nil); !errors.Is(err, ErrCorruptChainFile) {
		t.Fatalf("garbage load: %v", err)
	}
}

func TestLoadRunsVerifyCallback(t *testing.T) {
	c := buildChain(t, 1)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("semantic check failed")
	if _, err := Load(&buf, func(*Block) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("verify callback skipped: %v", err)
	}
}

func TestLoadEmpty(t *testing.T) {
	c, err := Load(strings.NewReader(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("empty input should give empty chain")
	}
}
