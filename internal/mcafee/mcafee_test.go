package mcafee

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func bids(prices ...float64) []Bid {
	out := make([]Bid, len(prices))
	for i, p := range prices {
		out[i] = Bid{ID: fmt.Sprintf("x%02d", i), Price: p}
	}
	return out
}

// Fig. 3a of the paper: the (z+1)-th pair's midpoint lies inside
// [c_z, v_z], so everyone trades at that midpoint with no reduction.
func TestMcAfeeInteriorPrice(t *testing.T) {
	buyers := bids(10, 8, 6, 3)
	sellers := bids(2, 4, 5, 9)
	// Pairs: (10,2) (8,4) (6,5) profitable → z=3. p = (3+9)/2 = 6 ∈ [5,6].
	res := McAfee(buyers, sellers)
	if res.Reduced {
		t.Fatal("no reduction expected")
	}
	if res.Trades != 3 {
		t.Fatalf("Trades = %d, want 3", res.Trades)
	}
	if res.BuyerPrice != 6 || res.SellerPrice != 6 {
		t.Fatalf("prices = %v/%v, want 6/6", res.BuyerPrice, res.SellerPrice)
	}
	if res.Surplus != 0 {
		t.Fatalf("interior price should be budget balanced, surplus = %v", res.Surplus)
	}
}

// Fig. 3b of the paper: the midpoint falls outside [c_z, v_z], so pair z
// is excluded; buyers pay v_z, sellers receive c_z, auctioneer keeps the gap.
func TestMcAfeeTradeReduction(t *testing.T) {
	buyers := bids(10, 9, 8)
	sellers := bids(1, 2, 3)
	// z = 3, no (z+1)-th pair → reduction. Buyers pay v_3 = 8, sellers get c_3 = 3.
	res := McAfee(buyers, sellers)
	if !res.Reduced {
		t.Fatal("expected trade reduction")
	}
	if res.Trades != 2 {
		t.Fatalf("Trades = %d, want 2", res.Trades)
	}
	if res.BuyerPrice != 8 || res.SellerPrice != 3 {
		t.Fatalf("prices = %v/%v, want 8/3", res.BuyerPrice, res.SellerPrice)
	}
	if want := 2.0 * (8 - 3); res.Surplus != want {
		t.Fatalf("Surplus = %v, want %v", res.Surplus, want)
	}
}

func TestMcAfeeNoTrade(t *testing.T) {
	res := McAfee(bids(1, 2), bids(5, 6))
	if res.Trades != 0 || res.Reduced {
		t.Fatalf("no profitable pair: %+v", res)
	}
	if r := McAfee(nil, nil); r.Trades != 0 {
		t.Fatalf("empty market: %+v", r)
	}
}

func TestMcAfeeSinglePairReducesToNothing(t *testing.T) {
	res := McAfee(bids(10), bids(1))
	if res.Trades != 0 || !res.Reduced {
		t.Fatalf("single pair must be reduced away: %+v", res)
	}
}

func TestMcAfeeDeterministicUnderPermutation(t *testing.T) {
	buyers := bids(10, 8, 6, 3)
	sellers := bids(2, 4, 5, 9)
	a := McAfee(buyers, sellers)
	b := McAfee([]Bid{buyers[3], buyers[1], buyers[0], buyers[2]},
		[]Bid{sellers[2], sellers[0], sellers[3], sellers[1]})
	if a.Trades != b.Trades || a.BuyerPrice != b.BuyerPrice || a.SellerPrice != b.SellerPrice {
		t.Fatalf("order dependence: %+v vs %+v", a, b)
	}
}

func TestSBBANoReductionCase(t *testing.T) {
	buyers := bids(10, 8, 6, 3)
	sellers := bids(2, 4, 5, 9)
	// z = 3, c_{z+1} = 9 > v_z = 6 → reduction case... check: next=9, v_z=6,
	// 9 > 6 so buyer z sets price p = 6 and is excluded.
	res := SBBA(buyers, sellers, rand.New(rand.NewSource(1)))
	if !res.Reduced {
		t.Fatal("expected buyer-side reduction")
	}
	if res.Trades != 2 || res.BuyerPrice != 6 || res.SellerPrice != 6 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Sellers) != 2 {
		t.Fatalf("seller lottery should pick 2 of 3, got %v", res.Sellers)
	}
}

func TestSBBASellerSetsPrice(t *testing.T) {
	buyers := bids(10, 9, 8)
	sellers := bids(1, 2, 3, 7)
	// z = 3, c_{z+1} = 7 ≤ v_z = 8 → all 3 pairs trade at 7, no reduction.
	res := SBBA(buyers, sellers, rand.New(rand.NewSource(1)))
	if res.Reduced {
		t.Fatal("no reduction expected when an outside seller sets the price")
	}
	if res.Trades != 3 || res.BuyerPrice != 7 || res.SellerPrice != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSBBAStrongBudgetBalance(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nb, ns := 1+rnd.Intn(6), 1+rnd.Intn(6)
		buyers := make([]Bid, nb)
		sellers := make([]Bid, ns)
		for i := range buyers {
			buyers[i] = Bid{ID: fmt.Sprintf("b%d", i), Price: float64(rnd.Intn(20))}
		}
		for i := range sellers {
			sellers[i] = Bid{ID: fmt.Sprintf("s%d", i), Price: float64(rnd.Intn(20))}
		}
		res := SBBA(buyers, sellers, rnd)
		if res.Surplus != 0 {
			t.Fatalf("SBBA surplus = %v on %v/%v", res.Surplus, buyers, sellers)
		}
		if len(res.Buyers) != res.Trades || len(res.Sellers) != res.Trades {
			t.Fatalf("trade count mismatch: %+v", res)
		}
		paid := float64(len(res.Buyers)) * res.BuyerPrice
		recv := float64(len(res.Sellers)) * res.SellerPrice
		if math.Abs(paid-recv) > 1e-9 {
			t.Fatalf("payments %v != revenues %v", paid, recv)
		}
	}
}

// utilityOf computes a trader's utility given the mechanism outcome.
func utilityOf(res Result, id string, truth float64, buyer bool) float64 {
	if buyer {
		for _, b := range res.Buyers {
			if b == id {
				return truth - res.BuyerPrice
			}
		}
		return 0
	}
	for _, s := range res.Sellers {
		if s == id {
			return res.SellerPrice - truth
		}
	}
	return 0
}

// DSIC property: no unilateral misreport by any buyer or seller improves
// utility under McAfee. Prices are drawn from a small grid so break-even
// boundaries are exercised often.
func TestMcAfeeDSICProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		nb, ns := 1+rnd.Intn(5), 1+rnd.Intn(5)
		buyers := make([]Bid, nb)
		sellers := make([]Bid, ns)
		for i := range buyers {
			buyers[i] = Bid{ID: fmt.Sprintf("b%d", i), Price: float64(rnd.Intn(12))}
		}
		for i := range sellers {
			sellers[i] = Bid{ID: fmt.Sprintf("s%d", i), Price: float64(rnd.Intn(12))}
		}
		truthful := McAfee(buyers, sellers)

		// Every buyer tries a deviation.
		for i := range buyers {
			truth := buyers[i].Price
			baseline := utilityOf(truthful, buyers[i].ID, truth, true)
			for _, dev := range []float64{truth - 3, truth - 1, truth + 1, truth + 3} {
				if dev < 0 {
					continue
				}
				mod := append([]Bid(nil), buyers...)
				mod[i] = Bid{ID: buyers[i].ID, Price: dev}
				res := McAfee(mod, sellers)
				if u := utilityOf(res, buyers[i].ID, truth, true); u > baseline+1e-9 {
					t.Fatalf("buyer %s gains by deviating %v→%v: %v > %v\nbuyers=%v sellers=%v",
						buyers[i].ID, truth, dev, u, baseline, buyers, sellers)
				}
			}
		}
		// Every seller tries a deviation.
		for i := range sellers {
			truth := sellers[i].Price
			baseline := utilityOf(truthful, sellers[i].ID, truth, false)
			for _, dev := range []float64{truth - 3, truth - 1, truth + 1, truth + 3} {
				if dev < 0 {
					continue
				}
				mod := append([]Bid(nil), sellers...)
				mod[i] = Bid{ID: sellers[i].ID, Price: dev}
				res := McAfee(buyers, mod)
				if u := utilityOf(res, sellers[i].ID, truth, false); u > baseline+1e-9 {
					t.Fatalf("seller %s gains by deviating %v→%v: %v > %v\nbuyers=%v sellers=%v",
						sellers[i].ID, truth, dev, u, baseline, buyers, sellers)
				}
			}
		}
	}
}

// Individual rationality: no trading buyer pays above its bid; no trading
// seller receives below its ask — for both mechanisms.
func TestIndividualRationalityProperty(t *testing.T) {
	f := func(bseed, sseed uint8, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nb, ns := int(bseed%5)+1, int(sseed%5)+1
		buyers := make([]Bid, nb)
		sellers := make([]Bid, ns)
		for i := range buyers {
			buyers[i] = Bid{ID: fmt.Sprintf("b%d", i), Price: rnd.Float64() * 10}
		}
		for i := range sellers {
			sellers[i] = Bid{ID: fmt.Sprintf("s%d", i), Price: rnd.Float64() * 10}
		}
		check := func(res Result) bool {
			for _, id := range res.Buyers {
				for _, b := range buyers {
					if b.ID == id && b.Price < res.BuyerPrice-1e-9 {
						return false
					}
				}
			}
			for _, id := range res.Sellers {
				for _, s := range sellers {
					if s.ID == id && s.Price > res.SellerPrice+1e-9 {
						return false
					}
				}
			}
			return true
		}
		return check(McAfee(buyers, sellers)) && check(SBBA(buyers, sellers, rnd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// McAfee's welfare is within one trade of optimal: it loses at most the
// z-th (least profitable) pair.
func TestMcAfeeNearOptimalWelfare(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(8)
		buyers := make([]Bid, n)
		sellers := make([]Bid, n)
		for i := 0; i < n; i++ {
			buyers[i] = Bid{ID: fmt.Sprintf("b%d", i), Price: rnd.Float64() * 10}
			sellers[i] = Bid{ID: fmt.Sprintf("s%d", i), Price: rnd.Float64() * 10}
		}
		opt := OptimalWelfare(buyers, sellers)
		res := McAfee(buyers, sellers)
		// Recompute achieved welfare from matched IDs.
		var got float64
		for _, id := range res.Buyers {
			for _, b := range buyers {
				if b.ID == id {
					got += b.Price
				}
			}
		}
		for _, id := range res.Sellers {
			for _, s := range sellers {
				if s.ID == id {
					got -= s.Price
				}
			}
		}
		if got > opt+1e-9 {
			t.Fatalf("achieved welfare %v exceeds optimum %v", got, opt)
		}
		// Losing more than one pair's worth of welfare is impossible.
		if res.Trades > 0 && res.Reduced {
			if res.Trades < breakEvenPairs(buyers, sellers)-1 {
				t.Fatalf("reduced more than one pair: trades=%d", res.Trades)
			}
		}
	}
}

func breakEvenPairs(buyers, sellers []Bid) int {
	b, s := sortOrders(buyers, sellers)
	return breakEven(b, s)
}

func TestOptimalWelfare(t *testing.T) {
	if got := OptimalWelfare(bids(10, 8), bids(2, 4)); got != 12 {
		t.Fatalf("OptimalWelfare = %v, want 12", got)
	}
	if got := OptimalWelfare(bids(1), bids(5)); got != 0 {
		t.Fatalf("OptimalWelfare = %v, want 0", got)
	}
}
