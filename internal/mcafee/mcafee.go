// Package mcafee implements the two classical dominant-strategy
// incentive-compatible (DSIC) double auctions DeCloud builds on:
//
//   - McAfee's 1992 mechanism [18]: single-good, budget balanced (the
//     auctioneer may keep a surplus), with trade reduction (Fig. 3 of the
//     paper).
//   - SBBA (Segal-Halevi et al. 2016 [30]): the strongly budget-balanced
//     variant whose payment rule DeCloud adopts — buyers pay exactly what
//     sellers receive, with a random seller lottery when the price is set
//     by the marginal buyer.
//
// DeCloud's clustered mechanism generalizes these to heterogeneous
// divisible goods; this package keeps the originals both as baselines and
// as oracles for the property tests of the full mechanism.
package mcafee

import (
	"math"
	"math/rand"
	"sort"
)

// Bid is a single-unit order: a buyer's valuation or a seller's cost.
type Bid struct {
	ID    string
	Price float64
}

// Result describes a double-auction outcome for single-unit traders.
type Result struct {
	// Trades is the number of executed buyer–seller trades.
	Trades int
	// BuyerPrice is what every trading buyer pays.
	BuyerPrice float64
	// SellerPrice is what every trading seller receives.
	SellerPrice float64
	// Buyers and Sellers list the IDs that trade.
	Buyers  []string
	Sellers []string
	// Reduced reports whether trade reduction excluded the break-even pair
	// (McAfee) or the price-setting buyer (SBBA).
	Reduced bool
	// Surplus is Σ buyer payments − Σ seller revenues. Zero for SBBA
	// (strong budget balance); non-negative for McAfee.
	Surplus float64
}

// sortOrders sorts buyers by price descending and sellers ascending,
// breaking ties by ID so the outcome never depends on input order.
func sortOrders(buyers, sellers []Bid) ([]Bid, []Bid) {
	b := append([]Bid(nil), buyers...)
	s := append([]Bid(nil), sellers...)
	sort.Slice(b, func(i, j int) bool {
		if b[i].Price != b[j].Price {
			return b[i].Price > b[j].Price
		}
		return b[i].ID < b[j].ID
	})
	sort.Slice(s, func(i, j int) bool {
		if s[i].Price != s[j].Price {
			return s[i].Price < s[j].Price
		}
		return s[i].ID < s[j].ID
	})
	return b, s
}

// breakEven returns z: the number of profitable pairs, i.e. the largest k
// with v_k ≥ c_k after sorting (1-based; 0 means no trade is possible).
func breakEven(b, s []Bid) int {
	z := 0
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i].Price >= s[i].Price {
			z = i + 1
		} else {
			break
		}
	}
	return z
}

func ids(bids []Bid) []string {
	out := make([]string, len(bids))
	for i, b := range bids {
		out[i] = b.ID
	}
	return out
}

// McAfee runs McAfee's 1992 dominant-strategy double auction.
//
// After sorting, let z be the break-even index. If the (z+1)-th pair
// exists and p = (v_{z+1}+c_{z+1})/2 lies in [c_z, v_z], all z pairs
// trade at the single price p (Fig. 3a). Otherwise the z-th pair is
// excluded and the remaining z−1 pairs trade with buyers paying v_z and
// sellers receiving c_z (Fig. 3b); the auctioneer keeps the difference.
func McAfee(buyers, sellers []Bid) Result {
	b, s := sortOrders(buyers, sellers)
	z := breakEven(b, s)
	if z == 0 {
		return Result{}
	}
	if z < len(b) && z < len(s) {
		p := (b[z].Price + s[z].Price) / 2
		if p >= s[z-1].Price && p <= b[z-1].Price {
			return Result{
				Trades:      z,
				BuyerPrice:  p,
				SellerPrice: p,
				Buyers:      ids(b[:z]),
				Sellers:     ids(s[:z]),
			}
		}
	}
	// Trade reduction: pair z is dropped, prices are v_z and c_z.
	if z == 1 {
		return Result{Reduced: true}
	}
	k := z - 1
	return Result{
		Trades:      k,
		BuyerPrice:  b[z-1].Price,
		SellerPrice: s[z-1].Price,
		Buyers:      ids(b[:k]),
		Sellers:     ids(s[:k]),
		Reduced:     true,
		Surplus:     float64(k) * (b[z-1].Price - s[z-1].Price),
	}
}

// SBBA runs the strongly budget-balanced double auction of Segal-Halevi
// et al. The price is p = min(v_z, c_{z+1}) with c_{z+1} = +∞ when there
// is no (z+1)-th seller:
//
//   - p = c_{z+1}: the price is set by a non-trading seller, so all z
//     pairs trade at p with no reduction.
//   - p = v_z: buyer z sets the price and must be excluded. The z−1
//     remaining buyers trade, and a uniform lottery (rnd) picks which
//     z−1 of the z cheapest sellers trade — the "random exclusion" that
//     DeCloud also applies (Section IV-D).
//
// Buyers pay exactly what sellers receive: Surplus is always 0.
func SBBA(buyers, sellers []Bid, rnd *rand.Rand) Result {
	b, s := sortOrders(buyers, sellers)
	z := breakEven(b, s)
	if z == 0 {
		return Result{}
	}
	next := math.Inf(1)
	if z < len(s) {
		next = s[z].Price
	}
	if next <= b[z-1].Price {
		// Price set by seller z+1 (outside the trade): no reduction.
		return Result{
			Trades:      z,
			BuyerPrice:  next,
			SellerPrice: next,
			Buyers:      ids(b[:z]),
			Sellers:     ids(s[:z]),
		}
	}
	// Price set by buyer z, who is excluded.
	p := b[z-1].Price
	if z == 1 {
		return Result{Reduced: true}
	}
	k := z - 1
	pool := append([]Bid(nil), s[:z]...)
	rnd.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	chosen := pool[:k]
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].ID < chosen[j].ID })
	return Result{
		Trades:      k,
		BuyerPrice:  p,
		SellerPrice: p,
		Buyers:      ids(b[:k]),
		Sellers:     ids(chosen),
		Reduced:     true,
	}
}

// OptimalWelfare returns the maximum attainable welfare Σ(v_i − c_i) over
// profitable pairs — the non-strategic benchmark for both mechanisms.
func OptimalWelfare(buyers, sellers []Bid) float64 {
	b, s := sortOrders(buyers, sellers)
	z := breakEven(b, s)
	var w float64
	for i := 0; i < z; i++ {
		w += b[i].Price - s[i].Price
	}
	return w
}
