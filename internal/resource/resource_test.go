package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorClone(t *testing.T) {
	v := Vector{CPU: 4, RAM: 16}
	c := v.Clone()
	c[CPU] = 8
	if v[CPU] != 4 {
		t.Fatalf("Clone aliases original: v[CPU] = %v", v[CPU])
	}
	if Vector(nil).Clone() != nil {
		t.Fatal("Clone of nil vector should be nil")
	}
}

func TestVectorKindsSortedAndPositive(t *testing.T) {
	v := Vector{RAM: 16, CPU: 4, Disk: 0, GPU: -1}
	got := v.Kinds()
	want := []Kind{CPU, RAM}
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
}

func TestVectorNorm2(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"empty", Vector{}, 0},
		{"nil", nil, 0},
		{"single", Vector{CPU: 3}, 3},
		{"pythagorean", Vector{CPU: 3, RAM: 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Norm2(); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Norm2() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{CPU: 4, RAM: 16}
	w := Vector{CPU: 1, Disk: 100}
	sum := v.Add(w)
	if sum[CPU] != 5 || sum[RAM] != 16 || sum[Disk] != 100 {
		t.Fatalf("Add = %v", sum)
	}
	diff := v.Sub(Vector{CPU: 10})
	if diff[CPU] != 0 {
		t.Fatalf("Sub should clamp at zero, got %v", diff[CPU])
	}
	if v[CPU] != 4 {
		t.Fatal("Sub mutated receiver")
	}
	half := v.Scale(0.5)
	if half[CPU] != 2 || half[RAM] != 8 {
		t.Fatalf("Scale = %v", half)
	}
}

func TestVectorCovers(t *testing.T) {
	offer := Vector{CPU: 4, RAM: 16, Disk: 100}
	tests := []struct {
		name string
		need Vector
		frac float64
		want bool
	}{
		{"exact", Vector{CPU: 4, RAM: 16}, 1, true},
		{"under", Vector{CPU: 2}, 1, true},
		{"over", Vector{CPU: 8}, 1, false},
		{"missing kind", Vector{GPU: 1}, 1, false},
		{"flexible covers", Vector{CPU: 5}, 0.8, true},
		{"flexible still over", Vector{CPU: 6}, 0.8, false},
		{"zero need ignored", Vector{GPU: 0, CPU: 1}, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := offer.CoversFraction(tt.need, tt.frac); got != tt.want {
				t.Fatalf("CoversFraction(%v, %v) = %v, want %v", tt.need, tt.frac, got, tt.want)
			}
		})
	}
	if !offer.Covers(Vector{CPU: 4}) {
		t.Fatal("Covers should equal CoversFraction with frac=1")
	}
}

func TestCommonKinds(t *testing.T) {
	v := Vector{CPU: 4, RAM: 16, SGX: 1}
	w := Vector{CPU: 8, SGX: 1, Disk: 10}
	got := v.CommonKinds(w)
	if len(got) != 2 || got[0] != CPU || got[1] != SGX {
		t.Fatalf("CommonKinds = %v", got)
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (Vector{CPU: 4}).Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	bad := []Vector{
		{CPU: -1},
		{CPU: math.NaN()},
		{CPU: math.Inf(1)},
		{"": 1},
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Fatalf("Validate(%v) should fail", v)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{RAM: 16, CPU: 4}
	if got, want := v.String(), "cpu=4 ram=16"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestScaleNormalize(t *testing.T) {
	s := NewScale(Vector{CPU: 8, RAM: 32}, Vector{CPU: 4, Disk: 200})
	if s.Max(CPU) != 8 || s.Max(RAM) != 32 || s.Max(Disk) != 200 {
		t.Fatalf("maxima wrong: %v", s.MaxVector())
	}
	n := s.Normalize(Vector{CPU: 4, RAM: 32, GPU: 2})
	if n[CPU] != 0.5 || n[RAM] != 1 {
		t.Fatalf("Normalize = %v", n)
	}
	if n[GPU] != 0 {
		t.Fatalf("unknown kind should normalize to 0, got %v", n[GPU])
	}
}

func TestScaleExtend(t *testing.T) {
	s := NewScale(Vector{CPU: 2})
	s.Extend(Vector{CPU: 16, RAM: 64})
	if s.Max(CPU) != 16 || s.Max(RAM) != 64 {
		t.Fatalf("Extend failed: %v", s.MaxVector())
	}
}

func TestScaleFraction(t *testing.T) {
	s := NewScale(Vector{CPU: 8, RAM: 32})
	if got := s.Fraction(Vector{CPU: 8, RAM: 32}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full vector fraction = %v, want 1", got)
	}
	if got := s.Fraction(Vector{}); got != 0 {
		t.Fatalf("empty vector fraction = %v, want 0", got)
	}
	// A kind unknown to the scale contributes nothing.
	withGPU := s.Fraction(Vector{CPU: 8, RAM: 32, GPU: 100})
	if math.Abs(withGPU-1) > 1e-12 {
		t.Fatalf("unknown kind should not inflate fraction: %v", withGPU)
	}
	// Oversized vectors clamp to 1.
	if got := s.Fraction(Vector{CPU: 80, RAM: 320}); got != 1 {
		t.Fatalf("oversized fraction = %v, want clamp to 1", got)
	}
	empty := NewScale()
	if got := empty.Fraction(Vector{CPU: 1}); got != 0 {
		t.Fatalf("empty scale fraction = %v, want 0", got)
	}
}

func TestCriticalFraction(t *testing.T) {
	s := NewScale(Vector{CPU: 8, RAM: 32, Disk: 100})
	crit := DefaultCritical()
	v := Vector{CPU: 8, RAM: 8, Disk: 10}
	if got := s.CriticalFraction(v, crit); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CPU-saturating request should have critical fraction 1, got %v", got)
	}
	v2 := Vector{CPU: 2, RAM: 8, Disk: 10}
	if got, want := s.CriticalFraction(v2, crit), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("CriticalFraction = %v, want %v", got, want)
	}
	// Non-critical kinds are ignored.
	v3 := Vector{GPU: 1000}
	if got := s.CriticalFraction(v3, crit); got != 0 {
		t.Fatalf("non-critical kinds should not count, got %v", got)
	}
}

// Property: Fraction is monotone under componentwise growth and always in [0,1].
func TestFractionPropertyMonotone(t *testing.T) {
	f := func(a, b, c uint8, growA, growB uint8) bool {
		s := NewScale(Vector{CPU: 16, RAM: 64, Disk: 500})
		v := Vector{CPU: float64(a % 17), RAM: float64(b % 65), Disk: float64(c)}
		w := v.Add(Vector{CPU: float64(growA % 5), RAM: float64(growB % 5)})
		fv, fw := s.Fraction(v), s.Fraction(w)
		return fv >= 0 && fv <= 1 && fw >= 0 && fw <= 1 && fw >= fv-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize never produces a value outside [0,1] for kinds the
// scale knows, given inputs within the scale.
func TestNormalizePropertyBounded(t *testing.T) {
	f := func(a, b uint8) bool {
		s := NewScale(Vector{CPU: 16, RAM: 64})
		v := Vector{CPU: float64(a % 17), RAM: float64(b % 65)}
		n := s.Normalize(v)
		return n[CPU] >= 0 && n[CPU] <= 1 && n[RAM] >= 0 && n[RAM] <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: v.Add(w).Sub(w) >= v componentwise equal for non-negative inputs.
func TestAddSubProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		v := Vector{CPU: float64(a), RAM: float64(b)}
		w := Vector{CPU: float64(c), RAM: float64(d)}
		back := v.Add(w).Sub(w)
		return back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
