// Package resource defines the typed resource vectors that DeCloud's
// bidding language is built on (Section IV of the paper).
//
// A resource Kind k ∈ K can represent anything a client may care about:
// classic machine capacity (CPU cores, RAM, disk), network properties
// (latency budget, bandwidth), or "generic properties essential for edge
// computing" such as the presence of an SGX enclave or a provider
// reputation floor, which the paper treats as just another resource
// (Section II-C). Quantities are non-negative float64 values.
package resource

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Kind identifies a resource type k ∈ K.
type Kind string

// Well-known resource kinds. The set is open: applications may introduce
// their own kinds, and the mechanism treats all kinds uniformly.
const (
	CPU       Kind = "cpu"       // cores (may be fractional)
	RAM       Kind = "ram"       // GiB
	Disk      Kind = "disk"      // GiB
	Bandwidth Kind = "bandwidth" // Mbit/s
	Latency   Kind = "latency"   // tolerance score: higher = stricter proximity requirement served
	GPU       Kind = "gpu"       // device count
	SGX       Kind = "sgx"       // 1 if a trusted execution environment is present/required
	Repute    Kind = "repute"    // minimum provider reputation, [0,1]
)

// DefaultCritical is the paper's base set of critical resource kinds
// K_CR (Section IV-C): if a request saturates any of these on a machine,
// no other container can realistically share that machine, so the request
// must carry the corresponding share of the clearing price.
func DefaultCritical() map[Kind]bool {
	return map[Kind]bool{CPU: true, RAM: true, Disk: true}
}

// Vector is a sparse resource vector: quantities ρ indexed by Kind.
// The zero value (nil map) is a usable empty vector for reads; use
// make(Vector) or a composite literal before writing.
type Vector map[Kind]float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	for k, q := range v {
		out[k] = q
	}
	return out
}

// Kinds returns the kinds present in v with a strictly positive quantity,
// sorted lexicographically for deterministic iteration.
func (v Vector) Kinds() []Kind {
	return v.AppendKinds(make([]Kind, 0, len(v)))
}

// AppendKinds appends the kinds present in v with a strictly positive
// quantity to buf, sorted lexicographically, and returns the extended
// slice. Hot callers pass a stack buffer (`var b [8]Kind; v.AppendKinds(b[:0])`)
// to iterate deterministically without heap allocation.
func (v Vector) AppendKinds(buf []Kind) []Kind {
	base := len(buf)
	for k, q := range v {
		if q > 0 {
			buf = append(buf, k)
		}
	}
	slices.Sort(buf[base:])
	return buf
}

// Get returns the quantity of kind k (0 when absent).
func (v Vector) Get(k Kind) float64 { return v[k] }

// IsZero reports whether the vector has no positive component.
func (v Vector) IsZero() bool {
	for _, q := range v {
		if q > 0 {
			return false
		}
	}
	return true
}

// Norm2 returns the Euclidean norm ‖v‖₂ of the vector. Components are
// accumulated in sorted kind order: floating-point addition is not
// associative, and consensus-critical callers need bit-identical results
// on every node regardless of map iteration order.
func (v Vector) Norm2() float64 {
	var buf [kindBufCap]Kind
	var sum float64
	for _, k := range v.AppendKinds(buf[:0]) {
		q := v[k]
		sum += q * q
	}
	return math.Sqrt(sum)
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	out := v.Clone()
	if out == nil {
		out = make(Vector, len(w))
	}
	for k, q := range w {
		out[k] += q
	}
	return out
}

// Sub returns v − w as a new vector, clamping each component at zero.
func (v Vector) Sub(w Vector) Vector {
	out := v.Clone()
	if out == nil {
		out = make(Vector)
	}
	for k, q := range w {
		r := out[k] - q
		if r < 0 {
			r = 0
		}
		out[k] = r
	}
	return out
}

// Scale returns s·v as a new vector.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for k, q := range v {
		out[k] = q * s
	}
	return out
}

// SubScaledInPlace mutates v to v − s·w componentwise, clamping each
// touched component at zero. It computes exactly v.Sub(w.Scale(s)) for
// the touched kinds — same multiply, same subtract, same clamp — without
// allocating either intermediate vector. v must be non-nil.
func (v Vector) SubScaledInPlace(w Vector, s float64) {
	for k, q := range w {
		r := v[k] - q*s
		if r < 0 {
			r = 0
		}
		v[k] = r
	}
}

// Covers reports whether v has at least the quantity of every kind
// present in need (Const. 8 of the paper: ρ_{r,k} ≤ ρ_{o,k} ∀k).
func (v Vector) Covers(need Vector) bool {
	return v.CoversFraction(need, 1)
}

// CoversFraction reports whether v covers frac·need componentwise.
// frac < 1 models a flexible request willing to accept a partial match
// (Section V's flexibility experiments).
func (v Vector) CoversFraction(need Vector, frac float64) bool {
	for k, q := range need {
		if q <= 0 {
			continue
		}
		if v[k] < CoverThreshold(q, frac) {
			return false
		}
	}
	return true
}

// CoverThreshold is the exact comparison threshold CoversFraction applies
// to a needed quantity q at flexibility frac: an offer quantity below it
// fails the cover. Exported so the indexed matcher can precompute
// per-request thresholds that reproduce CoversFraction's decisions
// float-for-float — consensus requires the pruned path and the reference
// path to agree on every borderline pair.
func CoverThreshold(q, frac float64) float64 { return q*frac - epsilon }

// CommonKinds returns K_v ∩ K_w: kinds with positive quantity in both
// vectors, sorted for determinism.
func (v Vector) CommonKinds(w Vector) []Kind {
	var kinds []Kind
	for k, q := range v {
		if q > 0 && w[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	slices.Sort(kinds)
	return kinds
}

// Equal reports componentwise equality of positive components within a
// small absolute tolerance.
func (v Vector) Equal(w Vector) bool {
	for k, q := range v {
		if math.Abs(q-w[k]) > epsilon {
			return false
		}
	}
	for k, q := range w {
		if math.Abs(q-v[k]) > epsilon {
			return false
		}
	}
	return true
}

// Validate checks that every component is finite and non-negative.
func (v Vector) Validate() error {
	for k, q := range v {
		if k == "" {
			return fmt.Errorf("resource: empty kind name")
		}
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("resource: kind %q has non-finite quantity %v", k, q)
		}
		if q < 0 {
			return fmt.Errorf("resource: kind %q has negative quantity %v", k, q)
		}
	}
	return nil
}

// String renders the vector deterministically, e.g. "cpu=4 ram=16".
func (v Vector) String() string {
	kinds := make([]Kind, 0, len(v))
	for k := range v {
		kinds = append(kinds, k)
	}
	slices.Sort(kinds)
	var b strings.Builder
	for i, k := range kinds {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%g", k, v[k])
	}
	return b.String()
}

const epsilon = 1e-9

// kindBufCap sizes stack buffers for AppendKinds in hot paths: real
// vectors carry at most the 8 well-known kinds plus a couple of custom
// ones; AppendKinds spills to the heap transparently past this.
const kindBufCap = 16
