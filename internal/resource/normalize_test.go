package resource

import (
	"math"
	"testing"
)

// TestScaleZeroMaxima pins the degenerate-scale behavior the indexed
// matcher's score mask relies on: kinds whose block maximum is zero (or
// unknown) cannot discriminate — they normalize to 0, are absent from
// Kinds(), and contribute nothing to Fraction.
func TestScaleZeroMaxima(t *testing.T) {
	s := NewScale(Vector{CPU: 4, RAM: 0})
	if got := s.Max(RAM); got != 0 {
		t.Fatalf("Max(RAM) = %v, want 0", got)
	}
	if got := s.Max("ghost"); got != 0 {
		t.Fatalf("Max(unknown) = %v, want 0", got)
	}
	if kinds := s.Kinds(); len(kinds) != 1 || kinds[0] != CPU {
		t.Fatalf("Kinds() = %v, want [cpu]", kinds)
	}
	n := s.Normalize(Vector{CPU: 2, RAM: 8, "ghost": 3})
	if n[CPU] != 0.5 || n[RAM] != 0 || n["ghost"] != 0 {
		t.Fatalf("Normalize = %v, want cpu=0.5 and zero elsewhere", n)
	}
	// The RAM component must not leak into the ν sum in either position.
	if got, want := s.Fraction(Vector{CPU: 4, RAM: 100}), 1.0; got != want {
		t.Fatalf("Fraction = %v, want %v (zero-max kind excluded)", got, want)
	}

	empty := NewScale()
	if got := empty.Fraction(Vector{CPU: 4}); got != 0 {
		t.Fatalf("Fraction on empty scale = %v, want 0", got)
	}
	if got := empty.CriticalFraction(Vector{CPU: 4}, map[Kind]bool{CPU: true}); got != 0 {
		t.Fatalf("CriticalFraction on empty scale = %v, want 0", got)
	}
}

// TestFractionRequestOnlyKinds: a kind only requests demand (no offer
// provides it) is outside the cluster's virtual maximum M_CL, so it must
// not inflate ν — and a request exceeding the maxima clamps to 1.
func TestFractionRequestOnlyKinds(t *testing.T) {
	// M_CL built from offers that provide CPU and RAM only.
	s := NewScale(Vector{CPU: 8, RAM: 16})
	withGPU := s.Fraction(Vector{CPU: 4, RAM: 8, GPU: 1000})
	without := s.Fraction(Vector{CPU: 4, RAM: 8})
	if withGPU != without {
		t.Fatalf("request-only kind changed ν: %v != %v", withGPU, without)
	}
	if want := math.Sqrt(4*4+8*8) / math.Sqrt(8*8+16*16); without != want {
		t.Fatalf("Fraction = %v, want %v", without, want)
	}
	if got := s.Fraction(Vector{CPU: 80, RAM: 160}); got != 1 {
		t.Fatalf("oversized request ν = %v, want clamp to 1", got)
	}
}

// TestCriticalFractionEdges covers the skip-and-clamp rules: critical
// kinds with zero or unknown maxima are ignored, absent components count
// as zero, and the share clamps at 1.
func TestCriticalFractionEdges(t *testing.T) {
	s := NewScale(Vector{CPU: 8, RAM: 0})
	crit := map[Kind]bool{CPU: true, RAM: true, "ghost": true}
	if got := s.CriticalFraction(Vector{CPU: 2, RAM: 999, "ghost": 999}, crit); got != 0.25 {
		t.Fatalf("CriticalFraction = %v, want 0.25 (zero/unknown maxima skipped)", got)
	}
	if got := s.CriticalFraction(Vector{RAM: 5}, crit); got != 0 {
		t.Fatalf("CriticalFraction = %v, want 0 (no scalable critical kind demanded)", got)
	}
	if got := s.CriticalFraction(Vector{CPU: 800}, crit); got != 1 {
		t.Fatalf("CriticalFraction = %v, want clamp to 1", got)
	}
}

// TestCoverThresholdBoundary ties CoversFraction to the exported
// CoverThreshold: the indexed matcher precomputes thresholds with it, so
// the two must agree on exact borderline quantities.
func TestCoverThresholdBoundary(t *testing.T) {
	need := Vector{CPU: 10}
	frac := 0.8
	thr := CoverThreshold(10, frac)
	if (Vector{CPU: thr}).CoversFraction(need, frac) != true {
		t.Fatal("quantity exactly at CoverThreshold must cover")
	}
	below := math.Nextafter(thr, 0)
	if (Vector{CPU: below}).CoversFraction(need, frac) {
		t.Fatal("quantity just below CoverThreshold must not cover")
	}
	// Zero-demand components never gate coverage.
	if !(Vector{}).CoversFraction(Vector{CPU: 0}, 1) {
		t.Fatal("zero demand must always be covered")
	}
}
