package resource

import (
	"math"
	"sort"
)

// Scale holds per-kind maxima used to normalize resource quantities into
// [0, 1]. The paper normalizes against "the maximum value of the resource
// from offers or requests of the current block" (Section IV-B), and the
// cluster-level "virtual maximum" M_CL (Section IV-C).
type Scale struct {
	max Vector
}

// NewScale builds a Scale whose per-kind maximum is the componentwise
// maximum over all given vectors. Kinds absent from every vector are
// absent from the scale.
func NewScale(vectors ...Vector) *Scale {
	max := make(Vector)
	for _, v := range vectors {
		for k, q := range v {
			if q > max[k] {
				max[k] = q
			}
		}
	}
	return &Scale{max: max}
}

// Extend folds additional vectors into the scale's maxima.
func (s *Scale) Extend(vectors ...Vector) {
	for _, v := range vectors {
		for k, q := range v {
			if q > s.max[k] {
				s.max[k] = q
			}
		}
	}
}

// Max returns the scale's maximum for kind k (0 when the kind is unknown).
func (s *Scale) Max(k Kind) float64 { return s.max[k] }

// MaxVector returns a copy of the componentwise maxima (the virtual
// maximum M_CL when the scale was built from a cluster's offers).
func (s *Scale) MaxVector() Vector { return s.max.Clone() }

// Kinds returns the kinds known to the scale, sorted.
func (s *Scale) Kinds() []Kind {
	kinds := make([]Kind, 0, len(s.max))
	for k, q := range s.max {
		if q > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Normalize maps v into [0,1] per kind: ρ' = ρ / max_k. Kinds with a zero
// or unknown maximum normalize to 0 (they cannot discriminate anything in
// this block anyway).
func (s *Scale) Normalize(v Vector) Vector {
	out := make(Vector, len(v))
	for k, q := range v {
		m := s.max[k]
		if m <= 0 {
			out[k] = 0
			continue
		}
		out[k] = q / m
	}
	return out
}

// Fraction returns ν = ‖v‖₂ / ‖M‖₂, the fraction of the virtual maximum
// that v represents (Section IV-C). It is clamped to [0, 1] so that
// requests exceeding the virtual maximum in some dimension still yield a
// sane payment share. Returns 0 when the scale is empty.
func (s *Scale) Fraction(v Vector) float64 {
	denom := s.max.Norm2()
	if denom <= 0 {
		return 0
	}
	// Only count kinds the scale knows: a request kind no offer provides
	// contributes nothing to the share of the virtual maximum. Iterate in
	// sorted order for bit-identical sums on every verifying node.
	var sum float64
	for _, k := range v.Kinds() {
		if s.max[k] > 0 {
			q := v[k]
			sum += q * q
		}
	}
	f := math.Sqrt(sum) / denom
	if f > 1 {
		f = 1
	}
	return f
}

// CriticalFraction returns ν_CR = max over critical kinds k of
// ρ_{v,k} / M_CL[k] (Section IV-C): the largest share of any critical
// resource the vector consumes. Kinds absent from the scale are skipped.
// The result is clamped to [0, 1].
func (s *Scale) CriticalFraction(v Vector, critical map[Kind]bool) float64 {
	var frac float64
	for k := range critical {
		m := s.max[k]
		if m <= 0 {
			continue
		}
		if f := v[k] / m; f > frac {
			frac = f
		}
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}
