package match

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

func req(id string, res resource.Vector) *bidding.Request {
	return &bidding.Request{
		ID: bidding.OrderID(id), Client: "c-" + bidding.ParticipantID(id),
		Resources: res, Start: 0, End: 100, Duration: 50, Bid: 1, TrueValue: 1,
	}
}

func off(id string, res resource.Vector) *bidding.Offer {
	return &bidding.Offer{
		ID: bidding.OrderID(id), Provider: "p-" + bidding.ParticipantID(id),
		Resources: res, Start: 0, End: 200, Bid: 1, TrueCost: 1,
	}
}

func TestFeasible(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4, resource.RAM: 8})
	tests := []struct {
		name   string
		mutate func(*bidding.Offer)
		want   bool
	}{
		{"fits", func(o *bidding.Offer) {}, true},
		{"too small", func(o *bidding.Offer) { o.Resources[resource.CPU] = 2 }, false},
		{"time mismatch", func(o *bidding.Offer) { o.Start = 50 }, false},
		{"no common kinds", func(o *bidding.Offer) { o.Resources = resource.Vector{resource.GPU: 4} }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := off("o", resource.Vector{resource.CPU: 8, resource.RAM: 32})
			tt.mutate(o)
			if got := Feasible(r, o); got != tt.want {
				t.Fatalf("Feasible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFeasibleFlexibility(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 8})
	o := off("o", resource.Vector{resource.CPU: 7})
	if Feasible(r, o) {
		t.Fatal("inflexible request should not fit a smaller offer")
	}
	r.Flexibility = 0.8 // accepts ≥ 6.4 cores
	if !Feasible(r, o) {
		t.Fatal("flexible request (f=0.8) should fit a 7-core offer")
	}
	r.Flexibility = 0.9 // needs ≥ 7.2 cores
	if Feasible(r, o) {
		t.Fatal("flexible request (f=0.9) should not fit a 7-core offer")
	}
}

func TestQualityWeightsSteerBetweenNonDominatedOffers(t *testing.T) {
	// Neither offer dominates the other: cpuBox is CPU-heavy, ramBox is
	// RAM-heavy. The request's σ weights decide which one matches better —
	// this is exactly the prioritization the paper says ClassAds lacks.
	r := req("r", resource.Vector{resource.CPU: 8, resource.RAM: 8})
	cpuBox := off("cpu-box", resource.Vector{resource.CPU: 16, resource.RAM: 8})
	ramBox := off("ram-box", resource.Vector{resource.CPU: 8, resource.RAM: 32})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{cpuBox, ramBox})

	r.Weights = map[resource.Kind]float64{resource.RAM: 0.05}
	if Quality(r, cpuBox, scale) <= Quality(r, ramBox, scale) {
		t.Fatal("CPU-weighted request should prefer the CPU-heavy offer")
	}
	r.Weights = map[resource.Kind]float64{resource.CPU: 0.05}
	if Quality(r, ramBox, scale) <= Quality(r, cpuBox, scale) {
		t.Fatal("RAM-weighted request should prefer the RAM-heavy offer")
	}
}

func TestQualityMonotoneInOfferSize(t *testing.T) {
	// Within [0,1] normalized space each Eq. 18 term is increasing in the
	// offered quantity (the "gravity" of larger providers), so a
	// componentwise-larger offer never scores worse.
	r := req("r", resource.Vector{resource.CPU: 4})
	near := off("near", resource.Vector{resource.CPU: 4})
	far := off("far", resource.Vector{resource.CPU: 16})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{near, far})
	if Quality(r, far, scale) < Quality(r, near, scale) {
		t.Fatal("componentwise-larger offer should not score worse")
	}
}

func TestQualityGravityBreaksTiesTowardLargerOffer(t *testing.T) {
	// Two offers equidistant from the request in normalized space: the
	// larger one exerts more "gravity" (the ρ'_{o,k} numerator).
	r := req("r", resource.Vector{resource.CPU: 8})
	small := off("small", resource.Vector{resource.CPU: 8})
	big := off("big", resource.Vector{resource.CPU: 16})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{small, big})
	// d_small = 0, d_big = 0.5 → small: 0.5/1 = 0.5, big: 1/1.25 = 0.8.
	qs := Quality(r, small, scale)
	qb := Quality(r, big, scale)
	if math.Abs(qs-0.5) > 1e-12 || math.Abs(qb-0.8) > 1e-12 {
		t.Fatalf("quality values: small=%v big=%v, want 0.5 and 0.8", qs, qb)
	}
}

func TestQualityRespectsWeights(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4, resource.RAM: 16})
	r.Weights = map[resource.Kind]float64{resource.RAM: 0.1}
	o := off("o", resource.Vector{resource.CPU: 4, resource.RAM: 16})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{o})
	q := Quality(r, o, scale)
	// cpu term: 1·1/(0+1) = 1; ram term: 0.1·1/(0+1) = 0.1.
	if math.Abs(q-1.1) > 1e-12 {
		t.Fatalf("weighted quality = %v, want 1.1", q)
	}
}

func TestQualityIgnoresUncommonKinds(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4, resource.GPU: 2})
	o := off("o", resource.Vector{resource.CPU: 4})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{o})
	q := Quality(r, o, scale)
	if math.Abs(q-1.0) > 1e-12 {
		t.Fatalf("quality = %v, want 1.0 (GPU term absent)", q)
	}
}

func TestRankOffersDeterministicTieBreak(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4})
	a := off("a", resource.Vector{resource.CPU: 4})
	b := off("b", resource.Vector{resource.CPU: 4})
	a.Submitted, b.Submitted = 10, 5
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{a, b})

	for _, offers := range [][]*bidding.Offer{{a, b}, {b, a}} {
		ranked := RankOffers(r, offers, scale)
		if len(ranked) != 2 {
			t.Fatalf("ranked %d offers", len(ranked))
		}
		if ranked[0].Offer.ID != "b" {
			t.Fatalf("earlier submission should rank first, got %s", ranked[0].Offer.ID)
		}
	}
}

func TestRankOffersFiltersInfeasible(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 8})
	good := off("good", resource.Vector{resource.CPU: 8})
	small := off("small", resource.Vector{resource.CPU: 2})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{good, small})
	ranked := RankOffers(r, []*bidding.Offer{good, small}, scale)
	if len(ranked) != 1 || ranked[0].Offer.ID != "good" {
		t.Fatalf("ranked = %+v", ranked)
	}
}

func TestBestOffersBandAndCap(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 8})
	var offers []*bidding.Offer
	// One exact match and a spread of increasingly oversized machines.
	for i := 0; i < 12; i++ {
		offers = append(offers, off(fmt.Sprintf("o%02d", i), resource.Vector{resource.CPU: float64(8 + 8*i)}))
	}
	scale := BlockScale([]*bidding.Request{r}, offers)

	tight := BestOffers(r, offers, scale, Config{QualityBand: 1.0, MaxBestOffers: 8})
	if len(tight) != 1 {
		t.Fatalf("band=1.0 should keep only the best offer, got %d", len(tight))
	}
	loose := BestOffers(r, offers, scale, Config{QualityBand: 0.5, MaxBestOffers: 4})
	if len(loose) > 4 {
		t.Fatalf("cap violated: %d", len(loose))
	}
	if len(loose) < 2 {
		t.Fatalf("band=0.5 should admit several offers, got %d", len(loose))
	}
	if BestOffers(req("r2", resource.Vector{resource.GPU: 1}), offers, scale, DefaultConfig()) != nil {
		t.Fatal("unservable request should get nil best-offer set")
	}
}

func TestBestOffersZeroConfigUsesDefaults(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 8})
	o := off("o", resource.Vector{resource.CPU: 8})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{o})
	best := BestOffers(r, []*bidding.Offer{o}, scale, Config{})
	if len(best) != 1 {
		t.Fatalf("zero config should fall back to defaults, got %d offers", len(best))
	}
}

func TestBlockScaleCoversRequestsAndOffers(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 32}) // request larger than any offer
	o := off("o", resource.Vector{resource.CPU: 8, resource.RAM: 64})
	scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{o})
	if scale.Max(resource.CPU) != 32 || scale.Max(resource.RAM) != 64 {
		t.Fatalf("scale maxima: cpu=%v ram=%v", scale.Max(resource.CPU), scale.Max(resource.RAM))
	}
}

// Property: quality is non-negative and bounded by the number of common
// kinds (each term is at most σ ≤ 1 times ρ'_o/(d²+1) ≤ 1).
func TestQualityBoundsProperty(t *testing.T) {
	f := func(rc, oc uint8) bool {
		r := req("r", resource.Vector{resource.CPU: float64(rc%16) + 1})
		o := off("o", resource.Vector{resource.CPU: float64(oc%16) + 1})
		if !Feasible(r, o) {
			return true
		}
		scale := BlockScale([]*bidding.Request{r}, []*bidding.Offer{o})
		q := Quality(r, o, scale)
		return q >= 0 && q <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing a request's flexibility never shrinks its feasible set.
func TestFlexibilityMonotoneProperty(t *testing.T) {
	f := func(need, have uint8, f1, f2 uint8) bool {
		lo := 0.5 + float64(f1%50)/100 // [0.5, 1.0)
		hi := lo + float64(f2%25)/100  // lo..lo+0.25
		if hi > 1 {
			hi = 1
		}
		r := req("r", resource.Vector{resource.CPU: float64(need%16) + 1})
		o := off("o", resource.Vector{resource.CPU: float64(have%16) + 1})
		r.Flexibility = hi
		feasHi := Feasible(r, o)
		r.Flexibility = lo
		feasLo := Feasible(r, o)
		// lower flexibility value = more flexible = weakly larger feasible set
		return !feasHi || feasLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleLocality(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4})
	r.Location = bidding.Location{X: 0, Y: 0}
	r.MaxDistance = 10
	near := off("near", resource.Vector{resource.CPU: 8})
	near.Location = bidding.Location{X: 3, Y: 4} // distance 5
	far := off("far", resource.Vector{resource.CPU: 8})
	far.Location = bidding.Location{X: 30, Y: 40} // distance 50
	if !Feasible(r, near) {
		t.Fatal("offer within reach rejected")
	}
	if Feasible(r, far) {
		t.Fatal("offer out of reach accepted")
	}
	r.MaxDistance = 0 // no constraint
	if !Feasible(r, far) {
		t.Fatal("unconstrained request should reach any offer")
	}
}
