package match

import (
	"decloud/internal/bidding"
	"decloud/internal/par"
)

// BestOffersAll computes every request's best-offer set from the block
// index, fanning the per-request scoring across at most workers
// goroutines. Each request's set is a pure function of the index and
// cfg — no shared mutable state beyond per-worker scratch buffers, and
// every goroutine writes only its own result slot — so the output is
// exactly what a sequential loop over Index.BestOffers would produce,
// at any worker count.
//
// With cfg.Reference set, the brute-force scan-sort matcher runs
// instead; the indexed and reference paths return identical sets (the
// paralleltest harness proves byte-equality of whole-block outcomes).
func BestOffersAll(ix *Index, cfg Config, workers int) [][]*bidding.Offer {
	reqs := ix.Requests()
	out := make([][]*bidding.Offer, len(reqs))
	if cfg.Reference {
		offers, scale := ix.Offers(), ix.Scale()
		par.ForEach(workers, len(reqs), func(i int) {
			out[i] = BestOffers(reqs[i], offers, scale, cfg)
		})
		return out
	}
	if workers < 1 {
		workers = 1
	}
	scratch := make([]Scratch, workers)
	par.ForEachWorker(workers, len(reqs), func(w, i int) {
		out[i] = ix.BestOffers(i, cfg, &scratch[w])
	})
	return out
}
