package match

import (
	"decloud/internal/bidding"
	"decloud/internal/par"
	"decloud/internal/resource"
)

// BestOffersAll computes every request's best-offer set, fanning the
// per-request feasibility filtering and quality scoring across at most
// workers goroutines. Each request's ranking is a pure function of the
// request, the offers, and the block scale — no shared mutable state —
// and every goroutine writes only its own result slot, so the output is
// exactly what a sequential loop over BestOffers would produce.
func BestOffersAll(requests []*bidding.Request, offers []*bidding.Offer, scale *resource.Scale, cfg Config, workers int) [][]*bidding.Offer {
	out := make([][]*bidding.Offer, len(requests))
	par.ForEach(workers, len(requests), func(i int) {
		out[i] = BestOffers(requests[i], offers, scale, cfg)
	})
	return out
}
