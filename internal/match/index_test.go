package match

import (
	"fmt"
	"math/rand"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// randomBlock builds a deterministic pseudo-random market that exercises
// every pruning axis of the index: overlapping time windows, partial
// kind overlap, flexibility, locality radii, significance weights, and
// colliding submission times (to hit the tie-break path).
func randomBlock(seed int64, nr, no int) ([]*bidding.Request, []*bidding.Offer) {
	rng := rand.New(rand.NewSource(seed))
	kinds := []resource.Kind{resource.CPU, resource.RAM, resource.Disk, resource.GPU, "net", "fpga"}
	vec := func(scale float64) resource.Vector {
		v := make(resource.Vector)
		n := 1 + rng.Intn(len(kinds)-1)
		for _, i := range rng.Perm(len(kinds))[:n] {
			v[kinds[i]] = scale * (0.5 + rng.Float64()*4)
		}
		return v
	}
	reqs := make([]*bidding.Request, nr)
	for i := range reqs {
		start := int64(rng.Intn(50))
		end := start + 20 + int64(rng.Intn(80))
		r := &bidding.Request{
			ID:        bidding.OrderID(fmt.Sprintf("r%03d", i)),
			Client:    bidding.ParticipantID(fmt.Sprintf("c%03d", i)),
			Resources: vec(1),
			Start:     start, End: end,
			Duration:  (end - start) / 2,
			Bid:       1 + rng.Float64()*10,
			Submitted: int64(rng.Intn(8)), // collisions on purpose
			Location:  bidding.Location{X: rng.Float64(), Y: rng.Float64()},
		}
		if rng.Intn(3) == 0 {
			r.Flexibility = 0.6 + rng.Float64()*0.4
		}
		if rng.Intn(4) == 0 {
			r.MaxDistance = 0.2 + rng.Float64()*0.5
		}
		if rng.Intn(3) == 0 {
			r.Weights = map[resource.Kind]float64{kinds[rng.Intn(len(kinds))]: 0.05 + rng.Float64()*0.9}
		}
		reqs[i] = r
	}
	offs := make([]*bidding.Offer, no)
	for i := range offs {
		start := int64(rng.Intn(60))
		offs[i] = &bidding.Offer{
			ID:        bidding.OrderID(fmt.Sprintf("o%03d", i)),
			Provider:  bidding.ParticipantID(fmt.Sprintf("p%03d", i)),
			Resources: vec(2),
			Start:     start, End: start + 40 + int64(rng.Intn(120)),
			Bid:       rng.Float64() * 5,
			Submitted: int64(rng.Intn(8)),
			Location:  bidding.Location{X: rng.Float64(), Y: rng.Float64()},
		}
	}
	return reqs, offs
}

func offerIDs(offers []*bidding.Offer) []string {
	ids := make([]string, len(offers))
	for i, o := range offers {
		ids[i] = string(o.ID)
	}
	return ids
}

// TestIndexBestOffersMatchesNaive cross-checks the indexed engine against
// the brute-force reference per request, over randomized blocks and
// config variants, with one Scratch reused across every request (the
// production access pattern).
func TestIndexBestOffersMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		reqs, offs := randomBlock(seed, 30+int(seed)*3, 40+int(seed)*5)
		scale := BlockScale(reqs, offs)
		ix := NewIndex(reqs, offs, scale)
		cfg := DefaultConfig()
		switch seed % 3 {
		case 1:
			cfg.QualityBand = 0.9
		case 2:
			cfg.MaxBestOffers = 3
		}
		var s Scratch
		for ri, r := range ix.Requests() {
			want := BestOffers(r, offs, scale, cfg)
			got := ix.BestOffers(ri, cfg, &s)
			if fmt.Sprint(offerIDs(want)) != fmt.Sprint(offerIDs(got)) {
				t.Fatalf("seed %d request %s: indexed %v != naive %v", seed, r.ID, offerIDs(got), offerIDs(want))
			}
		}
	}
}

// TestTopKTieBreaking pins the deterministic tie order on a block of
// equal-quality offers: identical resources mean identical Eq. 18
// scores, so rank order must fall back to (Submitted, ID) — and must be
// invariant under any permutation of the input offer slice, or verifying
// miners holding differently-ordered mempools would disagree.
func TestTopKTieBreaking(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4, resource.RAM: 8})
	res := resource.Vector{resource.CPU: 8, resource.RAM: 16}
	mk := func(id string, submitted int64) *bidding.Offer {
		o := off(id, res.Clone())
		o.Submitted = submitted
		return o
	}
	// Wanted order: Submitted ascending, then ID ascending.
	offers := []*bidding.Offer{
		mk("o-b", 1), mk("o-d", 1), mk("o-a", 2), mk("o-c", 2), mk("o-e", 5),
	}
	want := []string{"o-b", "o-d", "o-a", "o-c", "o-e"}

	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		perm := make([]*bidding.Offer, len(offers))
		for i, j := range rng.Perm(len(offers)) {
			perm[i] = offers[j]
		}
		scale := BlockScale([]*bidding.Request{r}, perm)

		naive := offerIDs(BestOffers(r, perm, scale, cfg))
		ix := NewIndex([]*bidding.Request{r}, perm, scale)
		indexed := offerIDs(ix.BestOffers(0, cfg, NewScratch()))

		if fmt.Sprint(naive) != fmt.Sprint(want) {
			t.Fatalf("trial %d: naive order %v, want %v", trial, naive, want)
		}
		if fmt.Sprint(indexed) != fmt.Sprint(want) {
			t.Fatalf("trial %d: indexed order %v, want %v", trial, indexed, want)
		}
	}
}

// TestTopKBoundedSelection checks the MaxBestOffers cap interacts with
// ties the same way the full sort does: the k survivors are the first k
// of the total order, not an arbitrary subset of the tied group.
func TestTopKBoundedSelection(t *testing.T) {
	r := req("r", resource.Vector{resource.CPU: 4})
	var offers []*bidding.Offer
	for i := 0; i < 20; i++ {
		o := off(fmt.Sprintf("o-%02d", 19-i), resource.Vector{resource.CPU: 8})
		o.Submitted = 3 // all tied on time AND quality: ID decides
		offers = append(offers, o)
	}
	cfg := DefaultConfig()
	cfg.MaxBestOffers = 4
	scale := BlockScale([]*bidding.Request{r}, offers)
	ix := NewIndex([]*bidding.Request{r}, offers, scale)

	want := []string{"o-00", "o-01", "o-02", "o-03"}
	if got := offerIDs(ix.BestOffers(0, cfg, NewScratch())); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("indexed top-k = %v, want %v", got, want)
	}
	if got := offerIDs(BestOffers(r, offers, scale, cfg)); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("naive top-k = %v, want %v", got, want)
	}
}

// wideBlock builds a deterministic market with more than 64 distinct
// resource kinds and multi-kind orders that straddle the 64-bit word
// boundary, so the multi-word mask specialization (nw ≥ 2) is exercised
// with cross-word intersections, not just one bit per order.
func wideBlock(seed int64, nr, no, nk int) ([]*bidding.Request, []*bidding.Offer) {
	rng := rand.New(rand.NewSource(seed))
	kinds := make([]resource.Kind, nk)
	for i := range kinds {
		kinds[i] = resource.Kind(fmt.Sprintf("kind-%03d", i))
	}
	vec := func(scale float64) resource.Vector {
		v := make(resource.Vector)
		n := 2 + rng.Intn(6)
		for _, i := range rng.Perm(len(kinds))[:n] {
			v[kinds[i]] = scale * (0.5 + rng.Float64()*4)
		}
		// Guarantee word-straddling masks now and then.
		if rng.Intn(2) == 0 {
			v[kinds[rng.Intn(64)]] = scale
			v[kinds[64+rng.Intn(nk-64)]] = scale
		}
		return v
	}
	reqs := make([]*bidding.Request, nr)
	for i := range reqs {
		start := int64(rng.Intn(50))
		end := start + 20 + int64(rng.Intn(80))
		r := &bidding.Request{
			ID:        bidding.OrderID(fmt.Sprintf("r%03d", i)),
			Client:    bidding.ParticipantID(fmt.Sprintf("c%03d", i)),
			Resources: vec(1),
			Start:     start, End: end,
			Duration:  (end - start) / 2,
			Bid:       1 + rng.Float64()*10,
			Submitted: int64(rng.Intn(8)),
			Location:  bidding.Location{X: rng.Float64(), Y: rng.Float64()},
		}
		if rng.Intn(3) == 0 {
			r.Flexibility = 0.6 + rng.Float64()*0.4
		}
		reqs[i] = r
	}
	offs := make([]*bidding.Offer, no)
	for i := range offs {
		start := int64(rng.Intn(60))
		offs[i] = &bidding.Offer{
			ID:        bidding.OrderID(fmt.Sprintf("o%03d", i)),
			Provider:  bidding.ParticipantID(fmt.Sprintf("p%03d", i)),
			Resources: vec(2),
			Start:     start, End: start + 40 + int64(rng.Intn(120)),
			Bid:       rng.Float64() * 5,
			Submitted: int64(rng.Intn(8)),
			Location:  bidding.Location{X: rng.Float64(), Y: rng.Float64()},
		}
	}
	return reqs, offs
}

// TestIndexWideBlock drives blocks past 64 distinct resource kinds: the
// multi-word mask specialization must produce exactly the reference
// best-offer sets — same membership, same order — with no fallback.
func TestIndexWideBlock(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		reqs, offs := wideBlock(seed, 40, 60, 100)
		scale := BlockScale(reqs, offs)
		ix := NewIndex(reqs, offs, scale)
		if len(ix.Kinds()) <= 64 {
			t.Fatalf("seed %d: block should exceed 64 kinds, got %d", seed, len(ix.Kinds()))
		}
		if ix.MaskWords() < 2 {
			t.Fatalf("seed %d: wide block should use multi-word masks, nw=%d", seed, ix.MaskWords())
		}
		cfg := DefaultConfig()
		if seed%2 == 1 {
			cfg.MaxBestOffers = 3
		}
		var s Scratch
		for ri, r := range ix.Requests() {
			want := offerIDs(BestOffers(r, offs, scale, cfg))
			got := offerIDs(ix.BestOffers(ri, cfg, &s))
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("seed %d: wide path diverges for %s: %v != %v", seed, r.ID, got, want)
			}
		}
	}
}

// TestIndexScratchReuse builds different blocks through one reused
// IndexScratch and cross-checks each against a freshly allocated index:
// arena-backed construction must be invisible to the results, across
// epochs, for both narrow and wide blocks.
func TestIndexScratchReuse(t *testing.T) {
	scratch := NewIndexScratch()
	cfg := DefaultConfig()
	for epoch := int64(0); epoch < 6; epoch++ {
		var reqs []*bidding.Request
		var offs []*bidding.Offer
		if epoch%2 == 0 {
			reqs, offs = randomBlock(epoch, 30, 45)
		} else {
			reqs, offs = wideBlock(epoch, 25, 35, 80)
		}
		scale := BlockScale(reqs, offs)
		scratch.Reset()
		ix := NewIndexWith(reqs, offs, scale, scratch)
		ref := NewIndex(reqs, offs, scale)
		if fmt.Sprint(ix.Kinds()) != fmt.Sprint(ref.Kinds()) {
			t.Fatalf("epoch %d: kind tables differ", epoch)
		}
		var s Scratch
		for ri := range ix.Requests() {
			want := offerIDs(ref.BestOffers(ri, cfg, NewScratch()))
			got := offerIDs(ix.BestOffers(ri, cfg, &s))
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("epoch %d request %d: scratch-built %v != fresh %v", epoch, ri, got, want)
			}
		}
	}
}

// TestBestOffersAllReferenceAgreesWithIndexed pins the package-level
// entry point both ways across worker counts.
func TestBestOffersAllReferenceAgreesWithIndexed(t *testing.T) {
	reqs, offs := randomBlock(7, 60, 80)
	ix := NewIndex(reqs, offs, BlockScale(reqs, offs))
	cfg := DefaultConfig()
	refCfg := cfg
	refCfg.Reference = true
	want := BestOffersAll(ix, refCfg, 1)
	for _, workers := range []int{1, 2, 4} {
		got := BestOffersAll(ix, cfg, workers)
		for i := range want {
			if fmt.Sprint(offerIDs(want[i])) != fmt.Sprint(offerIDs(got[i])) {
				t.Fatalf("workers=%d request %d: %v != %v", workers, i, offerIDs(got[i]), offerIDs(want[i]))
			}
		}
	}
}

// The hot-path microbenchmarks: the naive scan-sort matcher vs the
// indexed engine on the same block. The allocs/op column is the payoff
// of the fused feasibility+quality intersection and the scratch-buffer
// top-k — the indexed path allocates only the result slices.

func benchBlock() ([]*bidding.Request, []*bidding.Offer, *resource.Scale) {
	reqs, offs := randomBlock(1, 200, 300)
	return reqs, offs, BlockScale(reqs, offs)
}

func BenchmarkBestOffersNaive(b *testing.B) {
	reqs, offs, scale := benchBlock()
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			if BestOffers(r, offs, scale, cfg) == nil {
				continue
			}
		}
	}
}

func BenchmarkBestOffersIndexed(b *testing.B) {
	reqs, offs, scale := benchBlock()
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex(reqs, offs, scale)
		var s Scratch
		for ri := range ix.Requests() {
			if ix.BestOffers(ri, cfg, &s) == nil {
				continue
			}
		}
	}
}

// BenchmarkBestOffersIndexedScan isolates the per-request scan cost with
// the index already built (the amortized regime of big blocks).
func BenchmarkBestOffersIndexedScan(b *testing.B) {
	reqs, offs, scale := benchBlock()
	cfg := DefaultConfig()
	ix := NewIndex(reqs, offs, scale)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri := i % len(reqs)
		if ix.BestOffers(ri, cfg, &s) == nil {
			continue
		}
	}
}
