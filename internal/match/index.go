package match

import (
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"

	"decloud/internal/arena"
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Index is the per-block matching engine: every request and offer of the
// block is compiled once into dense, cache-friendly form so the Eq. 18
// best-offer phase — the O(requests × offers) hot path every verifying
// miner re-executes — does no per-pair map lookups, no per-pair
// allocations, and no full sorts.
//
// Precomputed per block:
//
//   - a canonical kind table (every resource kind with a positive
//     quantity anywhere in the block, sorted) assigning each kind a
//     small integer, so sparse resource.Vector maps become dense rows;
//   - a per-order kind bitmask: bit k set iff the order has a positive
//     quantity of kind k. K_r ∩ K_o = AND of mask words, replacing the
//     two map-allocating CommonKinds calls per pair. Masks are nw =
//     ⌈nk/64⌉ words wide, chosen once per block: blocks within 64 kinds
//     (nw == 1, the common case) run single-word scan loops, wider
//     blocks run the multi-word specialization — there is no per-probe
//     width dispatch and no reference fallback;
//   - normalized quantities ρ' = ρ/max_k (offers) and the clamped
//     request-side ρ', significance weights σ, and the exact
//     CoversFraction thresholds, all as dense rows;
//   - a time bucket: offer indexes sorted by availability start, so a
//     request only scans the prefix of offers with t_o⁻ ≤ t_r⁻
//     (Const. 10) and the rest are pruned wholesale; the remaining
//     structural tests (Const. 11, locality, Const. 8) are scalar
//     compares against dense columns.
//
// Exactness: every arithmetic expression reproduces the reference path
// (Feasible + Quality in match.go) operation for operation — same
// divisions, same clamping, same accumulation order (ascending kind
// index = the sorted order CommonKinds yields; multi-word masks iterate
// words ascending, bits ascending, which is the same global kind order)
// — so scores and feasibility verdicts are bit-identical, not merely
// close. The paralleltest harness enforces byte-equality of whole-block
// Outcomes between this engine and the brute-force reference.
type Index struct {
	scale  *resource.Scale
	kinds  []resource.Kind
	kindOf map[resource.Kind]int
	nk     int
	nw     int // mask words per order: ⌈nk/64⌉ (1 when nk == 0)

	// scans counts offers considered by the top-k loop across the whole
	// block — the observability layer's "work done" signal for the
	// pruning. One atomic add per request (not per pair), so the hot
	// loop stays untouched.
	scans atomic.Int64

	// scoreMask has bit k set iff the block scale's maximum for kind k
	// is positive — Quality skips kinds that cannot discriminate.
	// nw words.
	scoreMask []uint64

	requests []*bidding.Request // canonical (Submitted, ID) order
	offers   []*bidding.Offer   // block (input) order

	// Dense request rows: masks nw-strided, quantities nk-strided.
	reqMask []uint64
	reqRaw  []float64 // ρ_{r,k}
	reqNorm []float64 // clamped ρ'_{r,k}
	reqThr  []float64 // resource.CoverThreshold(ρ_{r,k}, f_r)
	reqW    []float64 // σ_{r,k}

	// Dense offer rows, plus scalar columns.
	offMask  []uint64
	offRaw   []float64 // ρ_{o,k}
	offNorm  []float64 // ρ'_{o,k}
	offStart []int64
	offEnd   []int64
	offX     []float64
	offY     []float64

	// Time bucket: byStart lists offer indexes sorted by Start
	// ascending (ties by index); starts is the aligned Start column for
	// binary search.
	byStart []int32
	starts  []int64

	reqPos map[*bidding.Request]int
	offPos map[*bidding.Offer]int
}

// IndexScratch is the reusable backing store for index construction: the
// dense rows, masks, and position maps of one epoch's Index. A long-lived
// clearing loop (the incremental order book) owns one scratch, calls
// Reset at each round boundary, and passes it to NewIndexWith — steady
// state compiles the block with near-zero heap allocation.
//
// The Index returned by NewIndexWith aliases the scratch's memory: it is
// valid until the next Reset, and must not be used after. A scratch must
// never be shared by concurrent builders (per-shard loops own per-shard
// scratches).
type IndexScratch struct {
	a     arena.Arena
	reqs  arena.Slab[*bidding.Request]
	kinds arena.Slab[resource.Kind]

	seen   map[resource.Kind]bool
	kindOf map[resource.Kind]int
	reqPos map[*bidding.Request]int
	offPos map[*bidding.Offer]int
}

// NewIndexScratch returns an empty scratch.
func NewIndexScratch() *IndexScratch {
	return &IndexScratch{
		seen:   make(map[resource.Kind]bool),
		kindOf: make(map[resource.Kind]int),
		reqPos: make(map[*bidding.Request]int),
		offPos: make(map[*bidding.Offer]int),
	}
}

// Reset rewinds the scratch for the next epoch. Every Index built from
// it becomes invalid; the retained chunks and map buckets are reused.
func (s *IndexScratch) Reset() {
	s.a.Reset()
	s.reqs.Reset()
	s.kinds.Reset()
	clear(s.seen)
	clear(s.kindOf)
	clear(s.reqPos)
	clear(s.offPos)
}

// NewIndex compiles a block into an Index with fresh allocations. The
// scale must be the block-wide normalization scale (match.BlockScale).
// Requests are re-ordered canonically by (Submitted, ID) — the order
// Algorithm 2 consumes them in; Offers keep their input order.
func NewIndex(requests []*bidding.Request, offers []*bidding.Offer, scale *resource.Scale) *Index {
	return NewIndexWith(requests, offers, scale, nil)
}

// NewIndexWith is NewIndex drawing every dense row, mask, and position
// map from the given scratch (nil behaves like NewIndex). See
// IndexScratch for the aliasing contract.
func NewIndexWith(requests []*bidding.Request, offers []*bidding.Offer, scale *resource.Scale, s *IndexScratch) *Index {
	ix := &Index{scale: scale, offers: offers}
	var seen map[resource.Kind]bool
	if s != nil {
		ix.requests = s.reqs.Make(len(requests))
		copy(ix.requests, requests)
		ix.kindOf = s.kindOf
		ix.reqPos = s.reqPos
		ix.offPos = s.offPos
		seen = s.seen
	} else {
		ix.requests = append([]*bidding.Request(nil), requests...)
		ix.kindOf = make(map[resource.Kind]int)
		ix.reqPos = make(map[*bidding.Request]int, len(requests))
		ix.offPos = make(map[*bidding.Offer]int, len(offers))
		seen = make(map[resource.Kind]bool)
	}
	slices.SortFunc(ix.requests, func(a, b *bidding.Request) int {
		switch {
		case a.Submitted < b.Submitted:
			return -1
		case a.Submitted > b.Submitted:
			return 1
		}
		// IDs are unique per block, so the order is total and
		// algorithm-independent.
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})

	// Kind table: every kind positive anywhere in the block, sorted so
	// ascending kind index reproduces CommonKinds' sorted iteration.
	for _, r := range ix.requests {
		for k, q := range r.Resources {
			if q > 0 {
				seen[k] = true
			}
		}
	}
	for _, o := range offers {
		for k, q := range o.Resources {
			if q > 0 {
				seen[k] = true
			}
		}
	}
	if s != nil {
		ix.kinds = s.kinds.Make(len(seen))[:0]
	} else {
		ix.kinds = make([]resource.Kind, 0, len(seen))
	}
	for k := range seen {
		ix.kinds = append(ix.kinds, k)
	}
	slices.Sort(ix.kinds)
	ix.nk = len(ix.kinds)
	ix.nw = (ix.nk + 63) / 64
	if ix.nw == 0 {
		ix.nw = 1
	}
	for i, k := range ix.kinds {
		ix.kindOf[k] = i
	}

	nr, no, nk, nw := len(ix.requests), len(offers), ix.nk, ix.nw
	mk64 := func(n int) []uint64 {
		if s != nil {
			return s.a.U64.Make(n)
		}
		return make([]uint64, n)
	}
	mkF := func(n int) []float64 {
		if s != nil {
			return s.a.F64.Make(n)
		}
		return make([]float64, n)
	}
	mkI64 := func(n int) []int64 {
		if s != nil {
			return s.a.I64.Make(n)
		}
		return make([]int64, n)
	}

	ix.scoreMask = mk64(nw)
	for i, k := range ix.kinds {
		if scale.Max(k) > 0 {
			ix.scoreMask[i/64] |= 1 << uint(i%64)
		}
	}

	ix.reqMask = mk64(nr * nw)
	ix.reqRaw = mkF(nr * nk)
	ix.reqNorm = mkF(nr * nk)
	ix.reqThr = mkF(nr * nk)
	ix.reqW = mkF(nr * nk)
	for i, r := range ix.requests {
		ix.reqPos[r] = i
		row := i * nk
		mrow := i * nw
		flex := r.Flex()
		for k, q := range r.Resources {
			if q <= 0 {
				continue
			}
			ki := ix.kindOf[k]
			ix.reqMask[mrow+ki/64] |= 1 << uint(ki%64)
			ix.reqRaw[row+ki] = q
			ix.reqThr[row+ki] = resource.CoverThreshold(q, flex)
			ix.reqW[row+ki] = r.Weight(k)
			if om := scale.Max(k); om > 0 {
				nrm := q / om
				if nrm > 1 {
					nrm = 1
				}
				ix.reqNorm[row+ki] = nrm
			}
		}
	}

	ix.offMask = mk64(no * nw)
	ix.offRaw = mkF(no * nk)
	ix.offNorm = mkF(no * nk)
	ix.offStart = mkI64(no)
	ix.offEnd = mkI64(no)
	ix.offX = mkF(no)
	ix.offY = mkF(no)
	for i, o := range offers {
		ix.offPos[o] = i
		row := i * nk
		mrow := i * nw
		for k, q := range o.Resources {
			if q <= 0 {
				continue
			}
			ki := ix.kindOf[k]
			ix.offMask[mrow+ki/64] |= 1 << uint(ki%64)
			ix.offRaw[row+ki] = q
			if om := scale.Max(k); om > 0 {
				ix.offNorm[row+ki] = q / om
			}
		}
		ix.offStart[i] = o.Start
		ix.offEnd[i] = o.End
		ix.offX[i] = o.Location.X
		ix.offY[i] = o.Location.Y
	}

	if s != nil {
		ix.byStart = s.a.I32.Make(no)
	} else {
		ix.byStart = make([]int32, no)
	}
	for i := range ix.byStart {
		ix.byStart[i] = int32(i)
	}
	slices.SortFunc(ix.byStart, func(a, b int32) int {
		sa, sb := ix.offStart[a], ix.offStart[b]
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return int(a) - int(b)
	})
	ix.starts = mkI64(no)
	for i, oi := range ix.byStart {
		ix.starts[i] = ix.offStart[oi]
	}
	return ix
}

// Requests returns the block's valid requests in canonical
// (Submitted, ID) order — the order BestOffers indexes into.
func (ix *Index) Requests() []*bidding.Request { return ix.requests }

// Offers returns the block's valid offers in input order.
func (ix *Index) Offers() []*bidding.Offer { return ix.offers }

// Scale returns the block-wide normalization scale the index was built
// against.
func (ix *Index) Scale() *resource.Scale { return ix.scale }

// Kinds returns the block's kind table: every kind with a positive
// quantity anywhere, sorted. Kind i of the table corresponds to bit
// i%64 of word i/64 of the masks returned by RequestMaskRow /
// OfferMaskRow.
func (ix *Index) Kinds() []resource.Kind { return ix.kinds }

// MaskWords returns the number of 64-bit words per kind mask: 1 for
// blocks within 64 distinct kinds, ⌈nk/64⌉ beyond.
func (ix *Index) MaskWords() int { return ix.nw }

// Scans reports how many offer candidates the top-k best-offer loop has
// considered so far (after time-bucket pruning, before feasibility).
// Purely observational.
func (ix *Index) Scans() int64 { return ix.scans.Load() }

// RequestMaskRow returns the request's kind bitmask words (MaskWords()
// long; bit i%64 of word i/64 ⇔ positive quantity of Kinds()[i]). The
// slice aliases the index — callers must not mutate it. ok is false
// when the request is not part of the block.
func (ix *Index) RequestMaskRow(r *bidding.Request) (mask []uint64, ok bool) {
	i, ok := ix.reqPos[r]
	if !ok {
		return nil, false
	}
	return ix.reqMask[i*ix.nw : (i+1)*ix.nw], true
}

// OfferMaskRow returns the offer's kind bitmask words; see
// RequestMaskRow.
func (ix *Index) OfferMaskRow(o *bidding.Offer) (mask []uint64, ok bool) {
	i, ok := ix.offPos[o]
	if !ok {
		return nil, false
	}
	return ix.offMask[i*ix.nw : (i+1)*ix.nw], true
}

// OfferRow returns the offer's dense quantity row, aligned with Kinds().
// The slice aliases the index — callers must not mutate it. ok is false
// when the offer is unknown.
func (ix *Index) OfferRow(o *bidding.Offer) (row []float64, ok bool) {
	i, ok := ix.offPos[o]
	if !ok {
		return nil, false
	}
	return ix.offRaw[i*ix.nk : (i+1)*ix.nk], true
}

// RequestRow returns the request's dense quantity row ρ_{r,k}, aligned
// with Kinds(); see OfferRow.
func (ix *Index) RequestRow(r *bidding.Request) (row []float64, ok bool) {
	i, ok := ix.reqPos[r]
	if !ok {
		return nil, false
	}
	return ix.reqRaw[i*ix.nk : (i+1)*ix.nk], true
}

// scored is a top-k slot: an offer index with its Eq. 18 quality.
type scored struct {
	oi int32
	q  float64
}

// Scratch holds the per-worker reusable state of the scoring loop: the
// bounded top-k buffer. One Scratch must not be shared by concurrent
// goroutines; par.ForEachWorker's slot discipline guarantees that.
type Scratch struct {
	top []scored
}

// NewScratch returns an empty scratch buffer.
func NewScratch() *Scratch { return &Scratch{} }

// better reports whether a ranks strictly before b under the
// deterministic tie order of RankOffers: quality descending, then
// Submitted ascending, then ID ascending. The final offer-index tiebreak
// only fires for byte-identical duplicate orders; it makes the top-k
// result independent of scan order, which lets the time bucket reorder
// the offer scan freely.
func (ix *Index) better(a, b scored) bool {
	if a.q != b.q {
		return a.q > b.q
	}
	oa, ob := ix.offers[a.oi], ix.offers[b.oi]
	if oa.Submitted != ob.Submitted {
		return oa.Submitted < ob.Submitted
	}
	if oa.ID != ob.ID {
		return oa.ID < ob.ID
	}
	return a.oi < b.oi
}

// feasible1 is the single-word feasibility test (nw == 1), reproducing
// Feasible's verdicts exactly. The time test (Const. 10: t_o⁻ ≤ t_r⁻) is
// already guaranteed by the byStart prefix the caller scans, so only the
// remaining constraints are checked here.
func (ix *Index) feasible1(ri, oi int, r *bidding.Request) bool {
	if ix.offEnd[oi] < r.End { // Const. 11: t_o⁺ ≥ t_r⁺
		return false
	}
	if r.MaxDistance > 0 {
		dx, dy := r.Location.X-ix.offX[oi], r.Location.Y-ix.offY[oi]
		if math.Sqrt(dx*dx+dy*dy) > r.MaxDistance {
			return false
		}
	}
	rm := ix.reqMask[ri]
	if rm&ix.offMask[oi] == 0 { // K_r ∩ K_o = ∅
		return false
	}
	// Const. 8 relaxed by flexibility: each demanded kind against the
	// precomputed CoverThreshold.
	row := oi * ix.nk
	thr := ix.reqThr[ri*ix.nk:]
	for m := rm; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		if ix.offRaw[row+k] < thr[k] {
			return false
		}
	}
	return true
}

// quality1 computes q_{(r,o)} per Eq. 18 from the dense rows (nw == 1),
// summing in ascending kind index order — the same sorted order the
// reference Quality iterates CommonKinds in, so the float result is
// bit-identical.
func (ix *Index) quality1(ri, oi int) float64 {
	var q float64
	rrow, orow := ri*ix.nk, oi*ix.nk
	for m := ix.reqMask[ri] & ix.offMask[oi] & ix.scoreMask[0]; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		no := ix.offNorm[orow+k]
		d := no - ix.reqNorm[rrow+k]
		q += ix.reqW[rrow+k] * no / (d*d + 1)
	}
	return q
}

// feasibleW is feasible1 generalized to multi-word masks (wide blocks:
// more than 64 distinct kinds).
func (ix *Index) feasibleW(ri, oi int, r *bidding.Request) bool {
	if ix.offEnd[oi] < r.End {
		return false
	}
	if r.MaxDistance > 0 {
		dx, dy := r.Location.X-ix.offX[oi], r.Location.Y-ix.offY[oi]
		if math.Sqrt(dx*dx+dy*dy) > r.MaxDistance {
			return false
		}
	}
	nw := ix.nw
	rm := ix.reqMask[ri*nw : ri*nw+nw]
	om := ix.offMask[oi*nw : oi*nw+nw]
	overlap := false
	for w := range rm {
		if rm[w]&om[w] != 0 {
			overlap = true
			break
		}
	}
	if !overlap {
		return false
	}
	row := oi * ix.nk
	thr := ix.reqThr[ri*ix.nk:]
	for w, m := range rm {
		base := w * 64
		for ; m != 0; m &= m - 1 {
			k := base + bits.TrailingZeros64(m)
			if ix.offRaw[row+k] < thr[k] {
				return false
			}
		}
	}
	return true
}

// qualityW is quality1 generalized to multi-word masks. Words iterate
// ascending and bits ascending within each word — globally ascending
// kind index, the reference's sorted accumulation order.
func (ix *Index) qualityW(ri, oi int) float64 {
	var q float64
	rrow, orow := ri*ix.nk, oi*ix.nk
	nw := ix.nw
	for w := 0; w < nw; w++ {
		base := w * 64
		for m := ix.reqMask[ri*nw+w] & ix.offMask[oi*nw+w] & ix.scoreMask[w]; m != 0; m &= m - 1 {
			k := base + bits.TrailingZeros64(m)
			no := ix.offNorm[orow+k]
			d := no - ix.reqNorm[rrow+k]
			q += ix.reqW[rrow+k] * no / (d*d + 1)
		}
	}
	return q
}

// BestOffers computes the best-offer set of request ri (an index into
// Requests()) — the same set BestOffers(r, offers, scale, cfg) returns,
// via feasibility pruning and bounded top-k selection instead of a full
// scan-sort. Only the result slice is allocated; all intermediate state
// lives in s. The mask width specializes the scan once per call, not
// per probe.
func (ix *Index) BestOffers(ri int, cfg Config, s *Scratch) []*bidding.Offer {
	r := ix.requests[ri]
	band := cfg.QualityBand
	if band <= 0 || band > 1 {
		band = DefaultConfig().QualityBand
	}
	limit := cfg.MaxBestOffers
	if limit <= 0 {
		limit = DefaultConfig().MaxBestOffers
	}

	if cap(s.top) < limit {
		s.top = make([]scored, 0, limit)
	}
	top := s.top[:0]

	// Const. 10 prune: only offers with t_o⁻ ≤ t_r⁻ can host r, and
	// byStart puts exactly those in a prefix.
	prefix := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > r.Start })
	ix.scans.Add(int64(prefix))
	if ix.nw == 1 {
		for _, oi32 := range ix.byStart[:prefix] {
			oi := int(oi32)
			if !ix.feasible1(ri, oi, r) {
				continue
			}
			top = ix.insertTop(top, scored{oi: oi32, q: ix.quality1(ri, oi)}, limit)
		}
	} else {
		for _, oi32 := range ix.byStart[:prefix] {
			oi := int(oi32)
			if !ix.feasibleW(ri, oi, r) {
				continue
			}
			top = ix.insertTop(top, scored{oi: oi32, q: ix.qualityW(ri, oi)}, limit)
		}
	}
	s.top = top
	if len(top) == 0 {
		return nil
	}

	cut := top[0].q * band
	best := make([]*bidding.Offer, 0, limit)
	for _, sc := range top {
		if sc.q < cut && len(best) > 0 {
			break
		}
		best = append(best, ix.offers[sc.oi])
		if len(best) == limit {
			break
		}
	}
	return best
}

// insertTop inserts candidate c into the bounded, better-first top
// buffer.
func (ix *Index) insertTop(top []scored, c scored, limit int) []scored {
	if len(top) == limit {
		if !ix.better(c, top[limit-1]) {
			return top
		}
	} else {
		top = append(top, scored{})
	}
	i := len(top) - 1
	for i > 0 && ix.better(c, top[i-1]) {
		top[i] = top[i-1]
		i--
	}
	top[i] = c
	return top
}
