package match

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Index is the per-block matching engine: every request and offer of the
// block is compiled once into dense, cache-friendly form so the Eq. 18
// best-offer phase — the O(requests × offers) hot path every verifying
// miner re-executes — does no per-pair map lookups, no per-pair
// allocations, and no full sorts.
//
// Precomputed per block:
//
//   - a canonical kind table (every resource kind with a positive
//     quantity anywhere in the block, sorted) assigning each kind a
//     small integer, so sparse resource.Vector maps become dense rows;
//   - a per-order kind bitmask: bit k set iff the order has a positive
//     quantity of kind k. K_r ∩ K_o = AND of two words, replacing the
//     two map-allocating CommonKinds calls per pair;
//   - normalized quantities ρ' = ρ/max_k (offers) and the clamped
//     request-side ρ', significance weights σ, and the exact
//     CoversFraction thresholds, all as dense rows;
//   - a time bucket: offer indexes sorted by availability start, so a
//     request only scans the prefix of offers with t_o⁻ ≤ t_r⁻
//     (Const. 10) and the rest are pruned wholesale; the remaining
//     structural tests (Const. 11, locality, Const. 8) are scalar
//     compares against dense columns.
//
// Exactness: every arithmetic expression reproduces the reference path
// (Feasible + Quality in match.go) operation for operation — same
// divisions, same clamping, same accumulation order (ascending kind
// index = the sorted order CommonKinds yields) — so scores and
// feasibility verdicts are bit-identical, not merely close. The
// paralleltest harness enforces byte-equality of whole-block Outcomes
// between this engine and the brute-force reference.
//
// Blocks with more than 64 distinct resource kinds exceed one mask word;
// the index then falls back to the reference per-pair functions (wide
// mode) — still deterministic and identical, just not pruned.
type Index struct {
	scale  *resource.Scale
	kinds  []resource.Kind
	kindOf map[resource.Kind]int
	nk     int
	wide   bool

	// scans counts offers considered by the top-k loop across the whole
	// block — the observability layer's "work done" signal for the
	// pruning. One atomic add per request (not per pair), so the hot
	// loop stays untouched.
	scans atomic.Int64

	// scoreMask has bit k set iff the block scale's maximum for kind k
	// is positive — Quality skips kinds that cannot discriminate.
	scoreMask uint64

	requests []*bidding.Request // canonical (Submitted, ID) order
	offers   []*bidding.Offer   // block (input) order

	// Dense request rows, nk-strided.
	reqMask []uint64
	reqRaw  []float64 // ρ_{r,k}
	reqNorm []float64 // clamped ρ'_{r,k}
	reqThr  []float64 // resource.CoverThreshold(ρ_{r,k}, f_r)
	reqW    []float64 // σ_{r,k}

	// Dense offer rows, nk-strided, plus scalar columns.
	offMask  []uint64
	offRaw   []float64 // ρ_{o,k}
	offNorm  []float64 // ρ'_{o,k}
	offStart []int64
	offEnd   []int64
	offX     []float64
	offY     []float64

	// Time bucket: byStart lists offer indexes sorted by Start
	// ascending (ties by index); starts is the aligned Start column for
	// binary search.
	byStart []int32
	starts  []int64

	reqPos map[*bidding.Request]int
	offPos map[*bidding.Offer]int
}

// NewIndex compiles a block into an Index. The scale must be the
// block-wide normalization scale (match.BlockScale). Requests are
// re-ordered canonically by (Submitted, ID) — the order Algorithm 2
// consumes them in; Offers keep their input order.
func NewIndex(requests []*bidding.Request, offers []*bidding.Offer, scale *resource.Scale) *Index {
	ix := &Index{
		scale:    scale,
		kindOf:   make(map[resource.Kind]int),
		requests: append([]*bidding.Request(nil), requests...),
		offers:   offers,
		reqPos:   make(map[*bidding.Request]int, len(requests)),
		offPos:   make(map[*bidding.Offer]int, len(offers)),
	}
	sort.Slice(ix.requests, func(i, j int) bool {
		if ix.requests[i].Submitted != ix.requests[j].Submitted {
			return ix.requests[i].Submitted < ix.requests[j].Submitted
		}
		return ix.requests[i].ID < ix.requests[j].ID
	})

	// Kind table: every kind positive anywhere in the block, sorted so
	// ascending kind index reproduces CommonKinds' sorted iteration.
	seen := make(map[resource.Kind]bool)
	for _, r := range ix.requests {
		for k, q := range r.Resources {
			if q > 0 {
				seen[k] = true
			}
		}
	}
	for _, o := range offers {
		for k, q := range o.Resources {
			if q > 0 {
				seen[k] = true
			}
		}
	}
	ix.kinds = make([]resource.Kind, 0, len(seen))
	for k := range seen {
		ix.kinds = append(ix.kinds, k)
	}
	sort.Slice(ix.kinds, func(i, j int) bool { return ix.kinds[i] < ix.kinds[j] })
	ix.nk = len(ix.kinds)
	for i, k := range ix.kinds {
		ix.kindOf[k] = i
	}
	if ix.nk > 64 {
		ix.wide = true
		for i, r := range ix.requests {
			ix.reqPos[r] = i
		}
		for i, o := range offers {
			ix.offPos[o] = i
		}
		return ix
	}
	for i, k := range ix.kinds {
		if scale.Max(k) > 0 {
			ix.scoreMask |= 1 << uint(i)
		}
	}

	nr, no, nk := len(ix.requests), len(offers), ix.nk
	ix.reqMask = make([]uint64, nr)
	ix.reqRaw = make([]float64, nr*nk)
	ix.reqNorm = make([]float64, nr*nk)
	ix.reqThr = make([]float64, nr*nk)
	ix.reqW = make([]float64, nr*nk)
	for i, r := range ix.requests {
		ix.reqPos[r] = i
		row := i * nk
		flex := r.Flex()
		for k, q := range r.Resources {
			if q <= 0 {
				continue
			}
			ki := ix.kindOf[k]
			ix.reqMask[i] |= 1 << uint(ki)
			ix.reqRaw[row+ki] = q
			ix.reqThr[row+ki] = resource.CoverThreshold(q, flex)
			ix.reqW[row+ki] = r.Weight(k)
			if om := scale.Max(k); om > 0 {
				nrm := q / om
				if nrm > 1 {
					nrm = 1
				}
				ix.reqNorm[row+ki] = nrm
			}
		}
	}

	ix.offMask = make([]uint64, no)
	ix.offRaw = make([]float64, no*nk)
	ix.offNorm = make([]float64, no*nk)
	ix.offStart = make([]int64, no)
	ix.offEnd = make([]int64, no)
	ix.offX = make([]float64, no)
	ix.offY = make([]float64, no)
	for i, o := range offers {
		ix.offPos[o] = i
		row := i * nk
		for k, q := range o.Resources {
			if q <= 0 {
				continue
			}
			ki := ix.kindOf[k]
			ix.offMask[i] |= 1 << uint(ki)
			ix.offRaw[row+ki] = q
			if om := scale.Max(k); om > 0 {
				ix.offNorm[row+ki] = q / om
			}
		}
		ix.offStart[i] = o.Start
		ix.offEnd[i] = o.End
		ix.offX[i] = o.Location.X
		ix.offY[i] = o.Location.Y
	}

	ix.byStart = make([]int32, no)
	for i := range ix.byStart {
		ix.byStart[i] = int32(i)
	}
	sort.Slice(ix.byStart, func(a, b int) bool {
		ia, ib := ix.byStart[a], ix.byStart[b]
		if ix.offStart[ia] != ix.offStart[ib] {
			return ix.offStart[ia] < ix.offStart[ib]
		}
		return ia < ib
	})
	ix.starts = make([]int64, no)
	for i, oi := range ix.byStart {
		ix.starts[i] = ix.offStart[oi]
	}
	return ix
}

// Requests returns the block's valid requests in canonical
// (Submitted, ID) order — the order BestOffers indexes into.
func (ix *Index) Requests() []*bidding.Request { return ix.requests }

// Offers returns the block's valid offers in input order.
func (ix *Index) Offers() []*bidding.Offer { return ix.offers }

// Scale returns the block-wide normalization scale the index was built
// against.
func (ix *Index) Scale() *resource.Scale { return ix.scale }

// Kinds returns the block's kind table: every kind with a positive
// quantity anywhere, sorted. Kind i of the table corresponds to bit i of
// the masks returned by RequestMask / OfferMask.
func (ix *Index) Kinds() []resource.Kind { return ix.kinds }

// Wide reports whether the block exceeded 64 distinct resource kinds,
// disabling the bitmask fast paths.
func (ix *Index) Wide() bool { return ix.wide }

// Scans reports how many offer candidates the top-k best-offer loop has
// considered so far (after time-bucket pruning, before feasibility).
// Purely observational.
func (ix *Index) Scans() int64 { return ix.scans.Load() }

// RequestMask returns the request's kind bitmask (bit i ⇔ positive
// quantity of Kinds()[i]). ok is false when the request is not part of
// the block or the index is wide.
func (ix *Index) RequestMask(r *bidding.Request) (mask uint64, ok bool) {
	if ix.wide {
		return 0, false
	}
	i, ok := ix.reqPos[r]
	if !ok {
		return 0, false
	}
	return ix.reqMask[i], true
}

// OfferMask returns the offer's kind bitmask; see RequestMask.
func (ix *Index) OfferMask(o *bidding.Offer) (mask uint64, ok bool) {
	if ix.wide {
		return 0, false
	}
	i, ok := ix.offPos[o]
	if !ok {
		return 0, false
	}
	return ix.offMask[i], true
}

// OfferRow returns the offer's dense quantity row, aligned with Kinds().
// The slice aliases the index — callers must not mutate it. ok is false
// when the offer is unknown or the index is wide.
func (ix *Index) OfferRow(o *bidding.Offer) (row []float64, ok bool) {
	if ix.wide {
		return nil, false
	}
	i, ok := ix.offPos[o]
	if !ok {
		return nil, false
	}
	return ix.offRaw[i*ix.nk : (i+1)*ix.nk], true
}

// RequestRow returns the request's dense quantity row ρ_{r,k}, aligned
// with Kinds(); see OfferRow.
func (ix *Index) RequestRow(r *bidding.Request) (row []float64, ok bool) {
	if ix.wide {
		return nil, false
	}
	i, ok := ix.reqPos[r]
	if !ok {
		return nil, false
	}
	return ix.reqRaw[i*ix.nk : (i+1)*ix.nk], true
}

// scored is a top-k slot: an offer index with its Eq. 18 quality.
type scored struct {
	oi int32
	q  float64
}

// Scratch holds the per-worker reusable state of the scoring loop: the
// bounded top-k buffer. One Scratch must not be shared by concurrent
// goroutines; par.ForEachWorker's slot discipline guarantees that.
type Scratch struct {
	top []scored
}

// NewScratch returns an empty scratch buffer.
func NewScratch() *Scratch { return &Scratch{} }

// better reports whether a ranks strictly before b under the
// deterministic tie order of RankOffers: quality descending, then
// Submitted ascending, then ID ascending. The final offer-index tiebreak
// only fires for byte-identical duplicate orders; it makes the top-k
// result independent of scan order, which lets the time bucket reorder
// the offer scan freely.
func (ix *Index) better(a, b scored) bool {
	if a.q != b.q {
		return a.q > b.q
	}
	oa, ob := ix.offers[a.oi], ix.offers[b.oi]
	if oa.Submitted != ob.Submitted {
		return oa.Submitted < ob.Submitted
	}
	if oa.ID != ob.ID {
		return oa.ID < ob.ID
	}
	return a.oi < b.oi
}

// feasible reports whether offer oi can structurally host request ri,
// reproducing Feasible's verdicts exactly. The time test (Const. 10:
// t_o⁻ ≤ t_r⁻) is already guaranteed by the byStart prefix the caller
// scans, so only the remaining constraints are checked here.
func (ix *Index) feasible(ri, oi int, r *bidding.Request) bool {
	if ix.offEnd[oi] < r.End { // Const. 11: t_o⁺ ≥ t_r⁺
		return false
	}
	if r.MaxDistance > 0 {
		dx, dy := r.Location.X-ix.offX[oi], r.Location.Y-ix.offY[oi]
		if math.Sqrt(dx*dx+dy*dy) > r.MaxDistance {
			return false
		}
	}
	rm := ix.reqMask[ri]
	if rm&ix.offMask[oi] == 0 { // K_r ∩ K_o = ∅
		return false
	}
	// Const. 8 relaxed by flexibility: each demanded kind against the
	// precomputed CoverThreshold.
	row := oi * ix.nk
	thr := ix.reqThr[ri*ix.nk:]
	for m := rm; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		if ix.offRaw[row+k] < thr[k] {
			return false
		}
	}
	return true
}

// quality computes q_{(r,o)} per Eq. 18 from the dense rows, summing in
// ascending kind index order — the same sorted order the reference
// Quality iterates CommonKinds in, so the float result is bit-identical.
func (ix *Index) quality(ri, oi int) float64 {
	var q float64
	rrow, orow := ri*ix.nk, oi*ix.nk
	for m := ix.reqMask[ri] & ix.offMask[oi] & ix.scoreMask; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		no := ix.offNorm[orow+k]
		d := no - ix.reqNorm[rrow+k]
		q += ix.reqW[rrow+k] * no / (d*d + 1)
	}
	return q
}

// BestOffers computes the best-offer set of request ri (an index into
// Requests()) — the same set BestOffers(r, offers, scale, cfg) returns,
// via feasibility pruning and bounded top-k selection instead of a full
// scan-sort. Only the result slice is allocated; all intermediate state
// lives in s.
func (ix *Index) BestOffers(ri int, cfg Config, s *Scratch) []*bidding.Offer {
	r := ix.requests[ri]
	band := cfg.QualityBand
	if band <= 0 || band > 1 {
		band = DefaultConfig().QualityBand
	}
	limit := cfg.MaxBestOffers
	if limit <= 0 {
		limit = DefaultConfig().MaxBestOffers
	}

	if ix.wide {
		ix.scans.Add(int64(len(ix.offers)))
		return bestFromRanked(RankOffers(r, ix.offers, ix.scale), band, limit)
	}

	if cap(s.top) < limit {
		s.top = make([]scored, 0, limit)
	}
	top := s.top[:0]

	// Const. 10 prune: only offers with t_o⁻ ≤ t_r⁻ can host r, and
	// byStart puts exactly those in a prefix.
	prefix := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > r.Start })
	ix.scans.Add(int64(prefix))
	for _, oi32 := range ix.byStart[:prefix] {
		oi := int(oi32)
		if !ix.feasible(ri, oi, r) {
			continue
		}
		c := scored{oi: oi32, q: ix.quality(ri, oi)}
		if len(top) == limit {
			if !ix.better(c, top[limit-1]) {
				continue
			}
		} else {
			top = append(top, scored{})
		}
		i := len(top) - 1
		for i > 0 && ix.better(c, top[i-1]) {
			top[i] = top[i-1]
			i--
		}
		top[i] = c
	}
	s.top = top
	if len(top) == 0 {
		return nil
	}

	cut := top[0].q * band
	best := make([]*bidding.Offer, 0, limit)
	for _, sc := range top {
		if sc.q < cut && len(best) > 0 {
			break
		}
		best = append(best, ix.offers[sc.oi])
		if len(best) == limit {
			break
		}
	}
	return best
}

// bestFromRanked applies the quality-band cut and cap to a full ranking
// — the reference selection BestOffers uses, shared by the wide-mode
// fallback.
func bestFromRanked(ranked []Ranked, band float64, limit int) []*bidding.Offer {
	if len(ranked) == 0 {
		return nil
	}
	cut := ranked[0].Quality * band
	best := make([]*bidding.Offer, 0, limit)
	for _, rk := range ranked {
		if rk.Quality < cut && len(best) > 0 {
			break
		}
		best = append(best, rk.Offer)
		if len(best) == limit {
			break
		}
	}
	return best
}
