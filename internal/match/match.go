// Package match implements DeCloud's matching heuristic (Section IV-B):
// the quality-of-match score of Eq. 18, structural feasibility filtering
// (Const. 8, 10, 11), and the selection of a request's best-offer set
// that seeds the clustering of Algorithm 2.
package match

import (
	"slices"

	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Config tunes the matching heuristic. The zero value is not usable;
// call DefaultConfig.
type Config struct {
	// QualityBand ∈ (0, 1]: offers whose quality is at least
	// QualityBand × (best quality) belong to the request's best-offer
	// set. 1 keeps only ties with the single best offer.
	QualityBand float64

	// MaxBestOffers caps the size of the best-offer set so that cluster
	// offer-sets stay small and comparable.
	MaxBestOffers int

	// Reference forces the brute-force scan-and-sort matcher instead of
	// the indexed engine (index.go). Outcomes are identical by
	// construction — the paralleltest harness proves it on every CI run
	// — so this exists only as the test oracle for that proof and for
	// debugging suspected index bugs. Never set it in production paths.
	Reference bool
}

// DefaultConfig returns the tuning used throughout the evaluation. The
// band is deliberately generous: feasibility (including the request's
// flexibility) already filters offers, so the band's job is only to drop
// clearly inferior matches — a tight band would exclude exactly the
// lower-class machines that a flexible request wants as fallbacks.
func DefaultConfig() Config {
	return Config{QualityBand: 0.5, MaxBestOffers: 12}
}

// Feasible reports whether offer o can structurally host request r:
// the offer's availability covers the request's window (Const. 10–11),
// the offer lies within the request's locality constraint ℓ_r, the
// orders share at least one resource kind, and the offer has enough of
// every requested resource after applying the request's flexibility
// (Const. 8, relaxed by f).
func Feasible(r *bidding.Request, o *bidding.Offer) bool {
	_, ok := feasibleCommon(r, o)
	return ok
}

// feasibleCommon is Feasible with the K_r ∩ K_o intersection it already
// had to compute handed back, so the Feasible→Quality call chain does
// one CommonKinds per pair instead of two.
func feasibleCommon(r *bidding.Request, o *bidding.Offer) ([]resource.Kind, bool) {
	if !bidding.TimeCompatible(r, o) {
		return nil, false
	}
	if !r.WithinReach(o) {
		return nil, false
	}
	common := r.Resources.CommonKinds(o.Resources)
	if len(common) == 0 {
		return nil, false
	}
	if !o.Resources.CoversFraction(r.Resources, r.Flex()) {
		return nil, false
	}
	return common, true
}

// Quality computes q_{(r,o)} per Eq. 18:
//
//	q = Σ_{k ∈ K_r ∩ K_o} σ_{r,k} · ρ'_{o,k} / (|ρ'_{o,k} − ρ'_{r,k}|² + 1)
//
// where ρ' are quantities normalized by scale (the block-wide maxima).
// Offers exert a "gravity-like force": bigger offers score higher, but
// the quadratic distance term pulls the score toward offers resembling
// the request, and σ lets clients weight which dimensions matter.
func Quality(r *bidding.Request, o *bidding.Offer, scale *resource.Scale) float64 {
	return qualityKinds(r, o, scale, r.Resources.CommonKinds(o.Resources))
}

// qualityKinds is Quality over a precomputed K_r ∩ K_o (sorted, as
// CommonKinds returns it — the accumulation order is consensus-
// critical).
func qualityKinds(r *bidding.Request, o *bidding.Offer, scale *resource.Scale, common []resource.Kind) float64 {
	var q float64
	for _, k := range common {
		om := scale.Max(k)
		if om <= 0 {
			continue
		}
		no := o.Resources[k] / om
		nr := r.Resources[k] / om
		if nr > 1 {
			nr = 1
		}
		d := no - nr
		q += r.Weight(k) * no / (d*d + 1)
	}
	return q
}

// Ranked pairs an offer with its quality score for a particular request.
type Ranked struct {
	Offer   *bidding.Offer
	Quality float64
}

// RankOffers filters the offers feasible for r and ranks them by quality
// descending. Ties break toward the earlier-submitted offer and then the
// smaller ID, making the ranking fully deterministic — ties must not
// depend on input order, or verifying miners would disagree.
func RankOffers(r *bidding.Request, offers []*bidding.Offer, scale *resource.Scale) []Ranked {
	ranked := make([]Ranked, 0, len(offers))
	for _, o := range offers {
		common, ok := feasibleCommon(r, o)
		if !ok {
			continue
		}
		ranked = append(ranked, Ranked{Offer: o, Quality: qualityKinds(r, o, scale, common)})
	}
	// Total order (IDs are unique), so unstable sorting cannot differ.
	slices.SortFunc(ranked, func(a, b Ranked) int {
		switch {
		case a.Quality > b.Quality:
			return -1
		case a.Quality < b.Quality:
			return 1
		}
		switch {
		case a.Offer.Submitted < b.Offer.Submitted:
			return -1
		case a.Offer.Submitted > b.Offer.Submitted:
			return 1
		}
		switch {
		case a.Offer.ID < b.Offer.ID:
			return -1
		case a.Offer.ID > b.Offer.ID:
			return 1
		}
		return 0
	})
	return ranked
}

// BestOffers returns the request's best-offer set: all feasible offers
// within cfg.QualityBand of the top quality, capped at cfg.MaxBestOffers,
// in rank order. An empty result means the request cannot be served this
// block.
//
// This is the brute-force reference selection — O(offers) scan plus a
// full sort. Block execution goes through Index.BestOffers, which
// produces the identical set with feasibility pruning and bounded top-k
// selection; this function remains as the equivalence oracle and for
// one-off callers without an index.
func BestOffers(r *bidding.Request, offers []*bidding.Offer, scale *resource.Scale, cfg Config) []*bidding.Offer {
	band := cfg.QualityBand
	if band <= 0 || band > 1 {
		band = DefaultConfig().QualityBand
	}
	limit := cfg.MaxBestOffers
	if limit <= 0 {
		limit = DefaultConfig().MaxBestOffers
	}
	return bestFromRanked(RankOffers(r, offers, scale), band, limit)
}

// bestFromRanked applies the quality-band cut and cap to a full ranking
// — the reference selection BestOffers uses.
func bestFromRanked(ranked []Ranked, band float64, limit int) []*bidding.Offer {
	if len(ranked) == 0 {
		return nil
	}
	cut := ranked[0].Quality * band
	best := make([]*bidding.Offer, 0, limit)
	for _, rk := range ranked {
		if rk.Quality < cut && len(best) > 0 {
			break
		}
		best = append(best, rk.Offer)
		if len(best) == limit {
			break
		}
	}
	return best
}

// BlockScale builds the per-block normalization scale from every request
// and offer in the block, per Section IV-B: "we take the maximum value of
// the resource from offers or requests of the current block".
func BlockScale(requests []*bidding.Request, offers []*bidding.Offer) *resource.Scale {
	scale := resource.NewScale()
	for _, r := range requests {
		scale.Extend(r.Resources)
	}
	for _, o := range offers {
		scale.Extend(o.Resources)
	}
	return scale
}
