package metro

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"decloud/internal/bidding"
)

func TestCellQuantization(t *testing.T) {
	t.Parallel()
	cases := []struct {
		loc    bidding.Location
		cx, cy int64
	}{
		{bidding.Location{X: 0, Y: 0}, 0, 0},
		{bidding.Location{X: 0.24, Y: 0.24}, 0, 0},
		{bidding.Location{X: 0.25, Y: 0}, 1, 0},
		{bidding.Location{X: -0.01, Y: 0.9}, -1, 3},
		{bidding.Location{X: math.NaN(), Y: math.Inf(1)}, 0, 0},
	}
	for _, c := range cases {
		cx, cy := Cell(c.loc, DefaultCellSize)
		if cx != c.cx || cy != c.cy {
			t.Errorf("Cell(%v) = (%d,%d), want (%d,%d)", c.loc, cx, cy, c.cx, c.cy)
		}
	}
	// Huge coordinates clamp instead of overflowing.
	cx, _ := Cell(bidding.Location{X: 1e300}, DefaultCellSize)
	if cx != 1<<40 {
		t.Errorf("huge X: cell %d, want clamp %d", cx, int64(1)<<40)
	}
	// Invalid cell sizes fall back to the default.
	cx, _ = Cell(bidding.Location{X: 0.3}, 0)
	if cx != 1 {
		t.Errorf("cellSize 0 should fall back to default: got %d", cx)
	}
}

func TestHomeTotalAndStable(t *testing.T) {
	t.Parallel()
	for m := 1; m <= 8; m++ {
		for x := -2.0; x < 2.0; x += 0.13 {
			loc := bidding.Location{X: x, Y: -x}
			h := Home(loc, DefaultCellSize, m)
			if h < 0 || h >= m {
				t.Fatalf("Home(%v, m=%d) = %d out of range", loc, m, h)
			}
			if h2 := Home(loc, DefaultCellSize, m); h2 != h {
				t.Fatalf("Home not deterministic: %d vs %d", h, h2)
			}
		}
	}
	if Home(bidding.Location{X: 5, Y: 5}, DefaultCellSize, 0) != 0 {
		t.Error("metros<1 must home to 0")
	}
}

func TestHomeSpreadsCells(t *testing.T) {
	t.Parallel()
	// Over a 16-cell unit-square grid and 4 metros, homing must not
	// collapse to fewer than 3 distinct metros (a linear fold would,
	// when the grid width shares a factor with the metro count).
	used := map[int]bool{}
	for x := 0.125; x < 1; x += 0.25 {
		for y := 0.125; y < 1; y += 0.25 {
			used[Home(bidding.Location{X: x, Y: y}, DefaultCellSize, 4)] = true
		}
	}
	if len(used) < 3 {
		t.Errorf("16 cells landed on only %d of 4 metros", len(used))
	}
}

func TestMetroEvidence(t *testing.T) {
	t.Parallel()
	ev := []byte("round-7-evidence")
	if got := MetroEvidence(ev, 0, 1); string(got) != string(ev) {
		t.Error("single-metro evidence must pass through unchanged")
	}
	a, b := MetroEvidence(ev, 0, 4), MetroEvidence(ev, 1, 4)
	if string(a) == string(b) {
		t.Error("sibling metros must not share an evidence stream")
	}
	if string(a) == string(ev) {
		t.Error("federated evidence must be domain-separated from the raw evidence")
	}
}

func TestLatencyMatrixValidate(t *testing.T) {
	t.Parallel()
	if err := (&LatencyMatrix{}).Validate(); err == nil {
		t.Error("empty matrix must not validate")
	}
	if err := (&LatencyMatrix{MS: [][]float64{{0, 1}, {1}}}).Validate(); err == nil {
		t.Error("ragged matrix must not validate")
	}
	if err := (&LatencyMatrix{MS: [][]float64{{1}}}).Validate(); err == nil {
		t.Error("non-zero diagonal must not validate")
	}
	if err := (&LatencyMatrix{MS: [][]float64{{0, -1}, {1, 0}}}).Validate(); err == nil {
		t.Error("negative latency must not validate")
	}
	if err := (&LatencyMatrix{MS: [][]float64{{0, math.NaN()}, {1, 0}}}).Validate(); err == nil {
		t.Error("NaN latency must not validate")
	}
	if err := DefaultMatrix(5).Validate(); err != nil {
		t.Errorf("DefaultMatrix(5): %v", err)
	}
	if err := UniformMatrix(3, 12).Validate(); err != nil {
		t.Errorf("UniformMatrix(3,12): %v", err)
	}
}

func TestLatencyMatrixNeighbors(t *testing.T) {
	t.Parallel()
	m := &LatencyMatrix{MS: [][]float64{
		{0, 30, 10, 30},
		{30, 0, 20, 5},
		{10, 20, 0, 40},
		{30, 5, 40, 0},
	}}
	got := m.Neighbors(0)
	want := []int{2, 1, 3} // 10ms, then the 30ms tie broken by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
	if m.Neighbors(-1) != nil || m.Neighbors(4) != nil {
		t.Error("out-of-range Neighbors must be nil")
	}
	if !math.IsInf(m.Latency(0, 9), 1) {
		t.Error("out-of-range Latency must be +Inf")
	}
}

func TestLoadMatrixJSON(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "latency.json")
	doc := map[string]any{"latency_ms": [][]float64{{0, 15}, {12, 0}}}
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metros() != 2 || m.Latency(0, 1) != 15 || m.Latency(1, 0) != 12 {
		t.Errorf("loaded matrix wrong: %+v", m.MS)
	}
	if _, err := LoadMatrix(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	if _, err := ParseMatrix([]byte(`{"latency_ms": [[0,1]]}`)); err == nil {
		t.Error("ragged JSON matrix must error")
	}
	if f1, f2 := m.Fingerprint(), UniformMatrix(2, 15).Fingerprint(); f1 == f2 {
		t.Error("different matrices must not share a fingerprint")
	}
}

func TestNewFederationValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{Metros: 65}); err == nil {
		t.Error("65 metros must exceed the visited-mask limit")
	}
	if _, err := New(Config{Metros: 4, Latency: UniformMatrix(3, 5)}); err == nil {
		t.Error("matrix dimension mismatch must error")
	}
	if _, err := New(Config{Metros: 2, Latency: &LatencyMatrix{MS: [][]float64{{0, -1}, {1, 0}}}}); err == nil {
		t.Error("invalid matrix must error")
	}
	f, err := New(Config{})
	if err != nil || f.Metros() != 1 {
		t.Fatalf("zero config must build a single-metro federation: %v", err)
	}
	// Heads are seeded distinctly per metro and federation shape.
	f2, _ := New(Config{Metros: 2})
	if f2.Heads()[0] == f2.Heads()[1] {
		t.Error("sibling exchanges must not share a genesis head")
	}
	if f.Heads()[0] == f2.Heads()[0] {
		t.Error("different federation shapes must not share a genesis head")
	}
}
