// Package metro is the geography-aware federation layer: the market is
// split into metro exchanges, one per metro cell, each owning its own
// streaming order book (internal/book) and a lightweight outcome chain.
// Where internal/shard homes union-find components by SHA-256(evidence)
// mod K — a load-balancing partition with no physical meaning — metro
// homing derives from the bid location fields: the unit square is cut
// into CellSize×CellSize grid cells and every cell maps to exactly one
// metro, so all orders of one neighborhood clear on the same exchange
// (the hub-and-spoke shape of the DoubleZero DZX RFC: one exchange per
// metro instead of a full mesh of peers).
//
// Orders no local exchange can fill do not die locally: once a
// request's carry budget is exhausted it spills to the lowest-latency
// neighbor metro chosen by a pluggable LatencyMatrix, crossing at most
// MaxHops metros before expiring. Offers never spill — they describe
// machines that physically sit in their metro. The federation's
// cross-settlement round (Federation.Round) is deterministic end to
// end: homing is a pure function of the location fields, per-metro
// clears are the book's (proven byte-identical to the from-scratch
// mechanism by book/booktest), and spill routing depends only on the
// latency matrix and the order's visited set. A single-metro federation
// is byte-identical to one monolithic book — enforced by
// metro/metrotest's differential harness.
package metro

import (
	"crypto/sha256"
	"encoding/binary"

	"decloud/internal/bidding"
	"decloud/internal/geo"
)

// DefaultCellSize is re-exported from internal/geo, where the homing
// primitives live so workload generators can steer client homes without
// importing the federation itself.
const DefaultCellSize = geo.DefaultCellSize

// evidenceDomain separates per-metro evidence derivation from every
// other use of the block evidence (the shard partitioner uses
// "decloud/shard/v1"). geo.Home hashes under the "/home" suffix of the
// same domain — the two packages share one consensus namespace.
const evidenceDomain = "decloud/metro/v1"

// Cell quantizes a location to its integer grid cell; see geo.Cell for
// the totality and stability guarantees FuzzMetroHoming asserts.
func Cell(loc bidding.Location, cellSize float64) (int64, int64) {
	return geo.Cell(loc, cellSize)
}

// Home maps a location to its metro exchange in [0, metros); see
// geo.Home. It is a pure function of the location's grid cell, so it is
// total, deterministic across processes, and stable under intra-cell
// jitter.
func Home(loc bidding.Location, cellSize float64, metros int) int {
	return geo.Home(loc, cellSize, metros)
}

// MetroEvidence derives the evidence an exchange seeds its lotteries
// with. A single-metro federation passes the round evidence through
// unchanged — that is what makes M=1 byte-identical to a monolithic
// book — while a real federation domain-separates per metro so sibling
// exchanges never share a lottery stream.
func MetroEvidence(evidence []byte, m, metros int) []byte {
	if metros <= 1 {
		return evidence
	}
	h := sha256.New()
	h.Write([]byte(evidenceDomain))
	h.Write(evidence)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(m))
	h.Write(buf[:])
	return h.Sum(nil)
}
