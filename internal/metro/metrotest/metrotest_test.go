package metrotest

import (
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/audit"
	"decloud/internal/bidding"
	"decloud/internal/metro"
)

func baseConfig() metro.Config {
	acfg := auction.DefaultConfig()
	acfg.Workers = 1
	return metro.Config{
		Auction:       acfg,
		MaxCarry:      2,
		MaxHops:       2,
		DistancePerMS: 0.002,
	}
}

// TestSingleMetroByteIdentity is the headline differential guarantee: a
// Metros=1 federation is byte-identical, round by round, to one
// monolithic book (and, transitively, to the from-scratch mechanism).
func TestSingleMetroByteIdentity(t *testing.T) {
	t.Parallel()
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for s := 0; s < seeds; s++ {
		tr := NewTrace(int64(s)+1, 40, 4)
		if err := CheckSingleMetroIdentity(baseConfig(), tr); err != nil {
			t.Fatalf("seed %d: %v", s+1, err)
		}
	}
}

// TestFederatedTopologies replays ≥40 seeded topologies through metros
// {1,2,4} × workers {1,4}: conservation must hold after every round,
// and for each (seed, metros) the outcome bytes, chain heads, and stats
// must be identical at every worker count.
func TestFederatedTopologies(t *testing.T) {
	t.Parallel()
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for _, metros := range []int{1, 2, 4} {
		metros := metros
		t.Run(fmt.Sprintf("M%d", metros), func(t *testing.T) {
			t.Parallel()
			for s := 0; s < seeds; s++ {
				tr := NewTrace(int64(s)+100, 36, 3)
				var ref *Result
				for _, workers := range []int{1, 4} {
					cfg := baseConfig()
					cfg.Metros = metros
					cfg.Workers = workers
					res, err := Replay(cfg, tr, nil)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", s, workers, err)
					}
					if ref == nil {
						ref = res
					} else if err := ref.Equal(res); err != nil {
						t.Fatalf("seed %d: workers 1 vs %d: %v", s, workers, err)
					}
				}
			}
		})
	}
}

// TestZeroLatencyFederation replays under a zero-latency matrix — the
// degenerate geography where spilling is free — and checks conservation
// plus that spilled requests actually settle remotely on at least one
// topology (the spill path is exercised, not just compiled).
func TestZeroLatencyFederation(t *testing.T) {
	t.Parallel()
	spillMatched := 0
	spills := 0
	for s := 0; s < 10; s++ {
		cfg := baseConfig()
		cfg.Metros = 4
		cfg.Latency = metro.UniformMatrix(4, 0)
		tr := NewTrace(int64(s)+500, 48, 4)
		res, err := Replay(cfg, tr, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		spillMatched += res.Stats.MatchedSpill
		spills += res.Stats.Spills
	}
	if spills == 0 {
		t.Fatal("no spills across 10 zero-latency topologies: spill path not exercised")
	}
	if spillMatched == 0 {
		t.Fatal("no spilled request ever matched remotely across 10 zero-latency topologies")
	}
}

// TestLatencyMonotoneWelfare: raising the uniform inter-metro latency
// (with MaxSpillLatencyMS fixed) can only shrink the set of feasible
// spills, so total spills must be non-increasing in latency.
func TestLatencyMonotoneSpills(t *testing.T) {
	t.Parallel()
	tr := NewTrace(4242, 60, 4)
	var prev *metro.Stats
	for _, ms := range []float64{0, 20, 60} {
		cfg := baseConfig()
		cfg.Metros = 4
		cfg.Latency = metro.UniformMatrix(4, ms)
		cfg.MaxSpillLatencyMS = 50
		res, err := Replay(cfg, tr, nil)
		if err != nil {
			t.Fatalf("latency %v: %v", ms, err)
		}
		if prev != nil && res.Stats.Spills > prev.Spills {
			t.Fatalf("spills grew with latency: %d at lower latency, %d at %vms", prev.Spills, res.Stats.Spills, ms)
		}
		st := res.Stats
		prev = &st
	}
	if prev.Spills != 0 {
		t.Fatalf("60ms > 50ms cap should forbid every spill, got %d", prev.Spills)
	}
}

// TestPropertiesPerMetro re-runs the DSIC/IR/budget-balance audit on
// every metro's outcome of every cross-settlement round, against the
// exact order set that outcome was computed over.
func TestPropertiesPerMetro(t *testing.T) {
	t.Parallel()
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for _, metros := range []int{2, 4} {
		for s := 0; s < seeds; s++ {
			cfg := baseConfig()
			cfg.Metros = metros
			tr := NewTrace(int64(s)+900, 40, 3)
			_, err := Replay(cfg, tr, func(round, m int, reqs []*bidding.Request, offs []*bidding.Offer, out *auction.Outcome) error {
				if vs := audit.Outcome(reqs, offs, out); len(vs) > 0 {
					return fmt.Errorf("audit violations: %v", vs)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("metros %d seed %d: %v", metros, s, err)
			}
		}
	}
}

// TestNoDoubleSettle asserts the federation-level uniqueness invariant
// directly from the outcomes: across all rounds and metros, no request
// ID appears in two matches of different metros, and no request matches
// twice anywhere.
func TestNoDoubleSettle(t *testing.T) {
	t.Parallel()
	for s := 0; s < 10; s++ {
		cfg := baseConfig()
		cfg.Metros = 4
		cfg.Latency = metro.UniformMatrix(4, 5)
		tr := NewTrace(int64(s)+1300, 48, 4)
		settled := make(map[bidding.OrderID]int)
		_, err := Replay(cfg, tr, func(round, m int, reqs []*bidding.Request, offs []*bidding.Offer, out *auction.Outcome) error {
			for i := range out.Matches {
				id := out.Matches[i].Request.ID
				if prev, dup := settled[id]; dup {
					return fmt.Errorf("request %s settled in metro %d and again in metro %d", id, prev, m)
				}
				settled[id] = m
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
	}
}
