// Package metrotest is the differential harness of the geo-federation
// layer (internal/metro), mirroring book/booktest one level up: seeded
// multi-round arrival traces over a geo-scattered workload replay
// simultaneously through a federation and through reference models, and
// every divergence is an error.
//
// Three guarantees are enforced:
//
//  1. Single-metro identity — a Metros=1 federation must be
//     byte-identical, round by round, to one monolithic book.Book fed
//     the same batches (which booktest in turn proves byte-identical to
//     the from-scratch mechanism), and the harness additionally
//     cross-checks each round against auction.Run over the exact union
//     market.
//  2. Worker independence — the per-metro clearing fan-out must not
//     change a single outcome byte at any worker count.
//  3. Conservation — after every cross-settlement round, across all
//     exchanges: submitted == rejected + matched (local + after-spill)
//     + expired + live, and no order is live in (or settled by) two
//     metros.
package metrotest

import (
	"bytes"
	"fmt"
	"math/rand"

	"decloud/internal/auction"
	"decloud/internal/auction/paralleltest"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/metro"
	"decloud/internal/workload"
)

// RoundInput is one cross-settlement round's arrivals.
type RoundInput struct {
	Reqs     []*bidding.Request
	Offs     []*bidding.Offer
	Evidence []byte
}

// Trace is a seeded multi-round arrival sequence over a geo workload.
type Trace struct {
	Seed   int64
	Rounds []RoundInput
}

// NewTrace generates a deterministic trace: a geo-scattered market of
// roughly n requests (GeoRadius locality constraints included, so
// spilled requests' MaxDistance tightening has bite) split across the
// given number of rounds by a seeded shuffle. Every order appears
// exactly once.
func NewTrace(seed int64, n, rounds int) *Trace {
	if rounds < 1 {
		rounds = 1
	}
	// Vary the market shape with the seed: flexibility and locality
	// radius sweep the paper's Fig. 5 axes so traces cover tight and
	// loose markets alike.
	m := workload.Generate(workload.Config{
		Seed:        seed,
		Requests:    n,
		Flexibility: float64(seed%4) * 0.25,
		GeoRadius:   0.3 + float64(seed%5)*0.15,
	})
	rng := rand.New(rand.NewSource(seed ^ 0x6d6574726f)) // "metro"
	rng.Shuffle(len(m.Requests), func(i, j int) {
		m.Requests[i], m.Requests[j] = m.Requests[j], m.Requests[i]
	})
	rng.Shuffle(len(m.Offers), func(i, j int) {
		m.Offers[i], m.Offers[j] = m.Offers[j], m.Offers[i]
	})
	tr := &Trace{Seed: seed, Rounds: make([]RoundInput, rounds)}
	for i := range tr.Rounds {
		tr.Rounds[i].Evidence = []byte(fmt.Sprintf("metrotest-%d-%d", seed, i))
	}
	// Offers front-loaded slightly (first round gets the remainder) so
	// early rounds have supply to clear against.
	for i, r := range m.Requests {
		tr.Rounds[i%rounds].Reqs = append(tr.Rounds[i%rounds].Reqs, r)
	}
	for i, o := range m.Offers {
		tr.Rounds[i%rounds].Offs = append(tr.Rounds[i%rounds].Offs, o)
	}
	return tr
}

// Result is one replay's observable behavior: the canonical encoding of
// every per-metro outcome, the final chain heads, and the final
// federation stats. Two replays of the same trace under configs that
// must not change behavior (worker count) must produce equal Results.
type Result struct {
	// OutcomeJSON[round][metro] is the canonical outcome encoding.
	OutcomeJSON [][][]byte
	Heads       [][32]byte
	Stats       metro.Stats
}

// Equal reports whether two results are byte-identical.
func (r *Result) Equal(o *Result) error {
	if len(r.OutcomeJSON) != len(o.OutcomeJSON) {
		return fmt.Errorf("round counts differ: %d vs %d", len(r.OutcomeJSON), len(o.OutcomeJSON))
	}
	for i := range r.OutcomeJSON {
		if len(r.OutcomeJSON[i]) != len(o.OutcomeJSON[i]) {
			return fmt.Errorf("round %d: metro counts differ", i)
		}
		for m := range r.OutcomeJSON[i] {
			if !bytes.Equal(r.OutcomeJSON[i][m], o.OutcomeJSON[i][m]) {
				return fmt.Errorf("round %d metro %d: outcomes differ:\n%s\nvs\n%s",
					i, m, r.OutcomeJSON[i][m], o.OutcomeJSON[i][m])
			}
		}
	}
	if len(r.Heads) != len(o.Heads) {
		return fmt.Errorf("head counts differ: %d vs %d", len(r.Heads), len(o.Heads))
	}
	for m := range r.Heads {
		if r.Heads[m] != o.Heads[m] {
			return fmt.Errorf("metro %d: chain heads differ: %x vs %x", m, r.Heads[m], o.Heads[m])
		}
	}
	if r.Stats != o.Stats {
		return fmt.Errorf("stats differ: %+v vs %+v", r.Stats, o.Stats)
	}
	return nil
}

// Replay runs a trace through a federation under cfg, checking
// conservation after every round, and returns the observable Result.
// When audit is non-nil it is called once per (round, metro) with the
// exact order set the outcome was computed over — the property-test
// hook (cfg.CaptureUnions is forced on).
func Replay(cfg metro.Config, tr *Trace, audit func(round, m int, reqs []*bidding.Request, offs []*bidding.Offer, out *auction.Outcome) error) (*Result, error) {
	if audit != nil {
		cfg.CaptureUnions = true
	}
	f, err := metro.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for i, round := range tr.Rounds {
		rr, err := f.Round(round.Reqs, round.Offs, round.Evidence)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", i, err)
		}
		enc := make([][]byte, len(rr.Outcomes))
		for m, out := range rr.Outcomes {
			if enc[m], err = paralleltest.MarshalOutcome(out); err != nil {
				return nil, fmt.Errorf("round %d metro %d: %w", i, m, err)
			}
			if audit != nil {
				if err := audit(i, m, rr.UnionRequests[m], rr.UnionOffers[m], out); err != nil {
					return nil, fmt.Errorf("round %d metro %d: %w", i, m, err)
				}
			}
		}
		res.OutcomeJSON = append(res.OutcomeJSON, enc)
		if err := f.CheckConservation(); err != nil {
			return nil, fmt.Errorf("after round %d: %w", i, err)
		}
	}
	res.Heads = f.Heads()
	res.Stats = f.Stats()
	return res, nil
}

// CheckSingleMetroIdentity replays a trace through a Metros=1
// federation and through a monolithic book.Book oracle fed the same
// batches, requiring byte-identical outcomes every round plus identical
// live sets at the end. It also re-derives each round's outcome with
// from-scratch auction.Run over the oracle's union market, closing the
// loop federation == book == mechanism on this trace.
func CheckSingleMetroIdentity(cfg metro.Config, tr *Trace) error {
	cfg.Metros = 1
	cfg.Latency = nil
	f, err := metro.New(cfg)
	if err != nil {
		return err
	}
	oracle := book.New(cfg.Auction)
	if cfg.MaxCarry > 0 {
		oracle.MaxCarry = cfg.MaxCarry
	}

	for i, round := range tr.Rounds {
		// From-scratch reference over the union the oracle book will
		// clear: carried live orders plus the valid new arrivals.
		liveR := oracle.LiveRequests()
		liveO := oracle.LiveOffers()
		var admitR []*bidding.Request
		for _, r := range round.Reqs {
			if r.Validate() == nil {
				admitR = append(admitR, r)
			}
		}
		var admitO []*bidding.Offer
		for _, o := range round.Offs {
			if o.Validate() == nil {
				admitO = append(admitO, o)
			}
		}
		scratchCfg := cfg.Auction
		scratchCfg.Evidence = round.Evidence
		scratch := auction.Run(append(liveR, admitR...), append(liveO, admitO...), scratchCfg)
		scratchJSON, err := paralleltest.MarshalOutcome(scratch)
		if err != nil {
			return err
		}

		rr, err := f.Round(round.Reqs, round.Offs, round.Evidence)
		if err != nil {
			return fmt.Errorf("round %d: %w", i, err)
		}
		fedJSON, err := paralleltest.MarshalOutcome(rr.Outcomes[0])
		if err != nil {
			return err
		}

		want := oracle.Apply(round.Reqs, round.Offs, round.Evidence)
		if now, ok := book.ArrivalWatermark(round.Reqs, round.Offs); ok {
			oracle.ExpireBefore(now)
		}
		wantJSON, err := paralleltest.MarshalOutcome(want)
		if err != nil {
			return err
		}

		if !bytes.Equal(fedJSON, wantJSON) {
			return fmt.Errorf("round %d: single-metro federation diverges from monolithic book:\nfed  %s\nbook %s", i, fedJSON, wantJSON)
		}
		// The book adds intake rejections to the outcome that the
		// from-scratch run never sees (Run is handed only valid
		// orders), so scratch comparison is on the match set: strip
		// rejections before comparing.
		wantStripped := *want
		wantStripped.RejectedRequests = nil
		wantStripped.RejectedOffers = nil
		strippedJSON, err := paralleltest.MarshalOutcome(&wantStripped)
		if err != nil {
			return err
		}
		if !bytes.Equal(strippedJSON, scratchJSON) {
			return fmt.Errorf("round %d: monolithic book diverges from from-scratch mechanism:\nbook    %s\nscratch %s", i, strippedJSON, scratchJSON)
		}
		if err := f.CheckConservation(); err != nil {
			return fmt.Errorf("after round %d: %w", i, err)
		}
	}

	// Final live sets must agree element-wise.
	fedR := f.Exchange(0).Book.LiveRequests()
	oraR := oracle.LiveRequests()
	if len(fedR) != len(oraR) {
		return fmt.Errorf("final live requests: federation %d, oracle %d", len(fedR), len(oraR))
	}
	for i := range fedR {
		if fedR[i].ID != oraR[i].ID {
			return fmt.Errorf("final live request %d: federation %s, oracle %s", i, fedR[i].ID, oraR[i].ID)
		}
	}
	fedO := f.Exchange(0).Book.LiveOffers()
	oraO := oracle.LiveOffers()
	if len(fedO) != len(oraO) {
		return fmt.Errorf("final live offers: federation %d, oracle %d", len(fedO), len(oraO))
	}
	for i := range fedO {
		if fedO[i].ID != oraO[i].ID {
			return fmt.Errorf("final live offer %d: federation %s, oracle %s", i, fedO[i].ID, oraO[i].ID)
		}
	}
	return nil
}
