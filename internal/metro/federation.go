package metro

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/ledger"
	"decloud/internal/obs"
	"decloud/internal/par"
)

func sha256sum(data []byte) [32]byte { return sha256.Sum256(data) }

// Config parameterizes a federation of metro exchanges.
type Config struct {
	// Metros is the exchange count M. Must be in [1, 64] (the visited
	// set of a spilled order is a 64-bit mask).
	Metros int

	// CellSize is the homing grid granularity; 0 means DefaultCellSize.
	CellSize float64

	// Latency is the inter-metro latency model. nil means
	// DefaultMatrix(Metros). Its dimension must equal Metros.
	Latency *LatencyMatrix

	// MaxHops bounds how many metros a spilled request may visit beyond
	// its home (the spill budget); 0 means DefaultMaxHops. A request
	// that exhausts its carry budget after MaxHops spills expires.
	MaxHops int

	// MaxSpillLatencyMS, when > 0, additionally expires a request whose
	// cumulative spill-path latency would exceed this cap.
	MaxSpillLatencyMS float64

	// DistancePerMS couples the latency matrix into the Eq. 18 locality
	// term: a spilled request with a MaxDistance constraint has it
	// tightened by DistancePerMS × path-latency, so a far metro sees a
	// strictly pickier request and the locality penalty of distance
	// survives federation. 0 disables the coupling.
	DistancePerMS float64

	// SettleEvery is the cross-settlement period in rounds: spill
	// inboxes flush into their target books every SettleEvery-th round.
	// 0 means 1 (every round).
	SettleEvery int

	// MaxCarry overrides the books' carry budget when > 0.
	MaxCarry int

	// Auction configures each exchange's book. Metros/Shards overrides
	// inside it are ignored; the federation is the partitioner.
	Auction auction.Config

	// Workers bounds the parallelism of the per-metro clearing fan-out;
	// 0 means 1. Outcomes are byte-identical at any worker count.
	Workers int

	// Obs, when non-nil, receives federation metrics.
	Obs *obs.MetroMetrics

	// CaptureUnions, when true, records each round's per-metro cleared
	// order sets (live ∪ admitted) in the RoundResult so property tests
	// can re-audit every metro's outcome against the exact order set it
	// was computed over. Costs O(live) copies per round; off in
	// production paths.
	CaptureUnions bool
}

// DefaultMaxHops is the spill budget: a request visits at most its home
// plus two neighbor metros before expiring.
const DefaultMaxHops = 2

// orderState tracks one order's lifecycle across the federation for the
// conservation audit: where it was first homed, where it is now, how
// far it has spilled, and how it left the market (if it has).
type orderState struct {
	origin  int    // home metro at submission
	metro   int    // current metro
	hops    int    // spills taken so far
	visited uint64 // bitmask of metros this order's book has held it in
	pathMS  float64
	fate    int8 // live | matched | expired | rejected
}

const (
	fateLive int8 = iota
	fateMatched
	fateExpired
	fateRejected
)

// spilled is a request in flight between two exchanges: removed from
// the origin book (carry budget exhausted), waiting in the target
// metro's inbox for the next cross-settlement flush.
type spilled struct {
	r      *bidding.Request
	from   int
	latMS  float64 // latency of this hop
	pathMS float64 // cumulative path latency including this hop
}

// Exchange is one metro's market: a streaming order book plus the head
// hash of its outcome chain.
type Exchange struct {
	Metro int
	Book  *book.Book

	head  [32]byte
	inbox []spilled // requests spilled here, pending the next flush
}

// Head returns the exchange's current chain head hash.
func (e *Exchange) Head() [32]byte { return e.head }

// Federation runs M metro exchanges through deterministic
// cross-settlement rounds. Not safe for concurrent use; one Round at a
// time (the round itself parallelizes internally).
type Federation struct {
	cfg       Config
	exchanges []*Exchange
	round     int

	reqState map[bidding.OrderID]*orderState
	offState map[bidding.OrderID]*orderState

	stats Stats
}

// Stats are the federation's conservation counters, aggregated across
// exchanges. Conservation (CheckConservation) holds per side:
//
//	Submitted == Rejected + MatchedLocal + MatchedSpill + Expired + Live
//
// where Live counts orders sitting in books or spill inboxes.
type Stats struct {
	Rounds int

	SubmittedRequests int
	RejectedRequests  int
	MatchedLocal      int // requests matched in their home metro
	MatchedSpill      int // requests matched after ≥1 spill
	ExpiredRequests   int // time-window, carry, hop, or latency expiry
	Spills            int // request hops taken
	SpillExpired      int // requests that died with no spill candidate

	SubmittedOffers int
	RejectedOffers  int
	MatchedOffers   int
	ExpiredOffers   int // offers never spill: carry-out == expiry
}

// RoundResult is one cross-settlement round's output.
type RoundResult struct {
	Round int
	// Outcomes[m] is metro m's clearing outcome this round.
	Outcomes []*auction.Outcome
	// Spilled counts request hops initiated this round; SpillExpired
	// counts requests that exhausted their budget with no viable
	// neighbor.
	Spilled      int
	SpillExpired int
	// UnionRequests/UnionOffers (CaptureUnions only) are the exact
	// order sets metro m's outcome was computed over.
	UnionRequests [][]*bidding.Request
	UnionOffers   [][]*bidding.Offer
}

// New builds a federation. The config is validated: M ∈ [1, 64] and the
// latency matrix (when given) must be M×M.
func New(cfg Config) (*Federation, error) {
	if cfg.Metros < 1 {
		cfg.Metros = 1
	}
	if cfg.Metros > 64 {
		return nil, fmt.Errorf("metro: %d metros exceeds the 64-metro visited-mask limit", cfg.Metros)
	}
	if cfg.Latency == nil {
		cfg.Latency = DefaultMatrix(cfg.Metros)
	}
	if err := cfg.Latency.Validate(); err != nil {
		return nil, err
	}
	if got := cfg.Latency.Metros(); got != cfg.Metros {
		return nil, fmt.Errorf("metro: latency matrix is %d×%d, want %d×%d", got, got, cfg.Metros, cfg.Metros)
	}
	if !(cfg.CellSize > 0) {
		cfg.CellSize = DefaultCellSize
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if cfg.SettleEvery <= 0 {
		cfg.SettleEvery = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	// Each exchange owns its whole metro: no nested sharding, and the
	// book drives incremental clearing itself.
	bcfg := cfg.Auction
	bcfg.Shards = 0
	bcfg.Incremental = false
	bcfg.Metros = 0

	f := &Federation{
		cfg:      cfg,
		reqState: make(map[bidding.OrderID]*orderState),
		offState: make(map[bidding.OrderID]*orderState),
	}
	fp := cfg.Latency.Fingerprint()
	for m := 0; m < cfg.Metros; m++ {
		b := book.New(bcfg)
		if cfg.MaxCarry > 0 {
			b.MaxCarry = cfg.MaxCarry
		}
		b.SetTrackRemovals(true)
		ex := &Exchange{Metro: m, Book: b}
		// Seed each chain head with the federation shape and the
		// latency matrix so two exchanges disagreeing on either can
		// never converge to the same chain.
		h := sha256.New()
		h.Write([]byte(evidenceDomain + "/head"))
		h.Write(fp[:])
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], uint64(m))
		binary.BigEndian.PutUint64(buf[8:16], uint64(cfg.Metros))
		h.Write(buf[:])
		copy(ex.head[:], h.Sum(nil))
		f.exchanges = append(f.exchanges, ex)
	}
	return f, nil
}

// Metros returns the exchange count.
func (f *Federation) Metros() int { return len(f.exchanges) }

// Exchange returns metro m's exchange.
func (f *Federation) Exchange(m int) *Exchange { return f.exchanges[m] }

// Heads returns every exchange's chain head hash, indexed by metro.
func (f *Federation) Heads() [][32]byte {
	out := make([][32]byte, len(f.exchanges))
	for i, ex := range f.exchanges {
		out[i] = ex.head
	}
	return out
}

// Home maps a location to its metro under this federation's config.
func (f *Federation) Home(loc bidding.Location) int {
	return Home(loc, f.cfg.CellSize, len(f.exchanges))
}

// SettledIn reports where a request ended up: the metro it matched in
// and true, or -1 and false while it is live or after it expired.
func (f *Federation) SettledIn(id bidding.OrderID) (int, bool) {
	if st := f.reqState[id]; st != nil && st.fate == fateMatched {
		return st.metro, true
	}
	return -1, false
}

// Round executes one deterministic cross-settlement round: home the
// arrivals, flush due spill inboxes, clear every metro's book in
// parallel, then harvest fates and route carried-out requests to their
// next metro. Outcomes are byte-identical for a fixed (arrivals,
// evidence) sequence at any worker count.
func (f *Federation) Round(reqs []*bidding.Request, offs []*bidding.Offer, evidence []byte) (*RoundResult, error) {
	M := len(f.exchanges)
	f.round++
	f.stats.Rounds++

	// 1. Home arrivals. An ID already tracked by the federation is a
	// duplicate submission: dropped here (counted rejected) so it can
	// never fork into two metros' books.
	reqBatch := make([][]*bidding.Request, M)
	offBatch := make([][]*bidding.Offer, M)
	for _, r := range reqs {
		if f.reqState[r.ID] != nil {
			f.stats.SubmittedRequests++
			f.stats.RejectedRequests++
			continue
		}
		m := f.Home(r.Location)
		reqBatch[m] = append(reqBatch[m], r)
		f.reqState[r.ID] = &orderState{origin: m, metro: m, visited: 1 << uint(m)}
		f.stats.SubmittedRequests++
	}
	for _, o := range offs {
		if f.offState[o.ID] != nil {
			f.stats.SubmittedOffers++
			f.stats.RejectedOffers++
			continue
		}
		m := f.Home(o.Location)
		offBatch[m] = append(offBatch[m], o)
		f.offState[o.ID] = &orderState{origin: m, metro: m, visited: 1 << uint(m)}
		f.stats.SubmittedOffers++
	}

	// 2. Flush due spill inboxes into their target batches, in a
	// canonical order so the target book's insertion order — which the
	// mechanism's tie-breaks see — is independent of harvest order.
	if f.round%f.cfg.SettleEvery == 0 {
		for m, ex := range f.exchanges {
			if len(ex.inbox) == 0 {
				continue
			}
			sort.Slice(ex.inbox, func(a, b int) bool {
				sa, sb := ex.inbox[a], ex.inbox[b]
				if sa.from != sb.from {
					return sa.from < sb.from
				}
				return sa.r.ID < sb.r.ID
			})
			for _, sp := range ex.inbox {
				reqBatch[m] = append(reqBatch[m], sp.r)
				st := f.reqState[sp.r.ID]
				st.metro = m
				st.visited |= 1 << uint(m)
				st.pathMS = sp.pathMS
			}
			ex.inbox = ex.inbox[:0]
		}
	}

	// 3. Clear every metro in parallel. Each exchange's work is
	// self-contained (own book, own evidence stream), so the fan-out
	// cannot affect outcome bytes.
	res := &RoundResult{Round: f.round, Outcomes: make([]*auction.Outcome, M)}
	matchedLocal0, matchedSpill0 := f.stats.MatchedLocal, f.stats.MatchedSpill
	if f.cfg.CaptureUnions {
		res.UnionRequests = make([][]*bidding.Request, M)
		res.UnionOffers = make([][]*bidding.Offer, M)
	}
	removals := make([]book.Removals, M)
	par.ForEachWorker(f.cfg.Workers, M, func(_, m int) {
		ex := f.exchanges[m]
		ev := MetroEvidence(evidence, m, M)
		if f.cfg.CaptureUnions {
			// Union = carried live set ∪ this batch, in book order:
			// lives first (insertion order), then the batch.
			res.UnionRequests[m] = append(ex.Book.LiveRequests(), reqBatch[m]...)
			res.UnionOffers[m] = append(ex.Book.LiveOffers(), offBatch[m]...)
		}
		out := ex.Book.Apply(reqBatch[m], offBatch[m], ev)
		if now, ok := book.ArrivalWatermark(reqBatch[m], offBatch[m]); ok {
			ex.Book.ExpireBefore(now)
		}
		removals[m] = ex.Book.TakeRemovals()
		res.Outcomes[m] = out
	})

	// 4. Harvest serially in metro order: record fates, advance heads,
	// and route carried-out requests. Serial so spill routing — which
	// appends to sibling inboxes — is deterministic.
	for m, ex := range f.exchanges {
		out := res.Outcomes[m]
		for _, id := range out.RejectedRequests {
			// A rejection can only hit a fresh arrival (spilled orders
			// were already validated at first admission).
			if st := f.reqState[id]; st != nil && st.fate == fateLive {
				st.fate = fateRejected
				f.stats.RejectedRequests++
			}
		}
		for _, id := range out.RejectedOffers {
			if st := f.offState[id]; st != nil && st.fate == fateLive {
				st.fate = fateRejected
				f.stats.RejectedOffers++
			}
		}
		for i := range out.Matches {
			mt := &out.Matches[i]
			if st := f.reqState[mt.Request.ID]; st != nil && st.fate == fateLive {
				st.fate = fateMatched
				st.metro = m
				if st.hops == 0 {
					f.stats.MatchedLocal++
				} else {
					f.stats.MatchedSpill++
				}
			}
			if st := f.offState[mt.Offer.ID]; st != nil && st.fate != fateMatched {
				// Offers are divisible across matches; count once.
				st.fate = fateMatched
				f.stats.MatchedOffers++
			}
		}

		rem := removals[m]
		for _, id := range rem.ExpiredRequests {
			if st := f.reqState[id]; st != nil && st.fate == fateLive {
				st.fate = fateExpired
				f.stats.ExpiredRequests++
			}
		}
		for _, id := range rem.ExpiredOffers {
			if st := f.offState[id]; st != nil && st.fate == fateLive {
				st.fate = fateExpired
				f.stats.ExpiredOffers++
			}
		}
		// Offers never spill: the machines they describe are bolted to
		// their metro. Carry-out is terminal.
		for _, o := range rem.CarriedOffers {
			if st := f.offState[o.ID]; st != nil && st.fate == fateLive {
				st.fate = fateExpired
				f.stats.ExpiredOffers++
			}
		}
		// Carried-out requests spill: the local exchange could not fill
		// them within the carry budget, so they try the lowest-latency
		// unvisited neighbor — unless the hop or latency budget is
		// spent, in which case they expire here.
		for _, r := range rem.CarriedRequests {
			st := f.reqState[r.ID]
			if st == nil || st.fate != fateLive {
				continue
			}
			f.spillOrExpire(r, st, m, res)
		}

		// Advance the chain head over the canonical outcome encoding.
		enc, err := ledger.EncodeAllocation(out)
		if err != nil {
			return nil, fmt.Errorf("metro %d: encode outcome: %w", m, err)
		}
		h := sha256.New()
		h.Write(ex.head[:])
		h.Write(enc)
		copy(ex.head[:], h.Sum(nil))

		if mm := f.cfg.Obs; mm != nil {
			mm.Welfare[m].Set(out.BidWelfare())
			st := ex.Book.Stats()
			mm.LiveOrders[m].Set(float64(st.LiveRequests + st.LiveOffers))
		}
	}

	f.stats.Spills += res.Spilled
	f.stats.SpillExpired += res.SpillExpired
	if mm := f.cfg.Obs; mm != nil {
		mm.Rounds.Inc()
		mm.Spills.Add(int64(res.Spilled))
		mm.SpillExpired.Add(int64(res.SpillExpired))
		mm.MatchedLocal.Add(int64(f.stats.MatchedLocal - matchedLocal0))
		mm.MatchedSpill.Add(int64(f.stats.MatchedSpill - matchedSpill0))
	}
	return res, nil
}

// spillOrExpire routes one carried-out request to its next metro, or
// expires it when no viable neighbor exists. The candidate order is the
// latency matrix's neighbor preference (ascending latency, index
// tie-break) filtered by the visited mask; budgets are checked against
// the best candidate only — latency tightening is monotone in the
// neighbor's latency, so if the nearest unvisited metro fails a budget,
// every farther one does too.
func (f *Federation) spillOrExpire(r *bidding.Request, st *orderState, from int, res *RoundResult) {
	expire := func() {
		st.fate = fateExpired
		f.stats.ExpiredRequests++
		res.SpillExpired++
	}
	if st.hops >= f.cfg.MaxHops {
		expire()
		return
	}
	for _, to := range f.cfg.Latency.Neighbors(from) {
		if st.visited&(1<<uint(to)) != 0 {
			continue
		}
		lat := f.cfg.Latency.Latency(from, to)
		pathMS := st.pathMS + lat
		if f.cfg.MaxSpillLatencyMS > 0 && pathMS > f.cfg.MaxSpillLatencyMS {
			break // monotone: every later candidate is farther
		}
		rr := *r
		if f.cfg.DistancePerMS > 0 && rr.MaxDistance > 0 {
			// Eq. 18 locality coupling: the path latency consumes part
			// of the request's distance tolerance. A request whose
			// tolerance is fully spent cannot be served remotely at
			// all — expire instead of admitting an unmatchable order.
			rr.MaxDistance -= f.cfg.DistancePerMS * pathMS
			if rr.MaxDistance <= 0 {
				break // monotone: farther candidates only tighten more
			}
		}
		st.hops++
		st.pathMS = pathMS
		f.exchanges[to].inbox = append(f.exchanges[to].inbox, spilled{
			r: &rr, from: from, latMS: lat, pathMS: pathMS,
		})
		res.Spilled++
		if mm := f.cfg.Obs; mm != nil {
			mm.SpillMS[from].Set(pathMS)
		}
		return
	}
	expire()
}

// Stats returns the federation's conservation counters with Live
// recomputed from the actual books and inboxes (ground truth, not the
// state machine).
func (f *Federation) Stats() Stats {
	s := f.stats
	return s
}

// LiveRequests / LiveOffers count orders currently held by a book or a
// spill inbox.
func (f *Federation) liveCounts() (liveR, liveO int) {
	for _, ex := range f.exchanges {
		st := ex.Book.Stats()
		liveR += st.LiveRequests
		liveO += st.LiveOffers
		liveR += len(ex.inbox)
	}
	return liveR, liveO
}

// CheckConservation verifies the federation-wide conservation
// invariant on both sides of the market:
//
//	Submitted == Rejected + Matched(local+spill) + Expired + Live
//
// with Live counted from the actual books and inboxes, and
// cross-checks it against the per-order state machine (each tracked
// order has exactly one terminal fate; no order is live in two books).
func (f *Federation) CheckConservation() error {
	liveR, liveO := f.liveCounts()
	s := f.stats
	if got, want := s.RejectedRequests+s.MatchedLocal+s.MatchedSpill+s.ExpiredRequests+liveR, s.SubmittedRequests; got != want {
		return fmt.Errorf("metro: request conservation: rejected %d + matched %d+%d + expired %d + live %d = %d, want submitted %d",
			s.RejectedRequests, s.MatchedLocal, s.MatchedSpill, s.ExpiredRequests, liveR, got, want)
	}
	if got, want := s.RejectedOffers+s.MatchedOffers+s.ExpiredOffers+liveO, s.SubmittedOffers; got != want {
		return fmt.Errorf("metro: offer conservation: rejected %d + matched %d + expired %d + live %d = %d, want submitted %d",
			s.RejectedOffers, s.MatchedOffers, s.ExpiredOffers, liveO, got, want)
	}

	// Cross-check the state machine against the counters.
	var mr, ms, er, rr, lr int
	for _, st := range f.reqState {
		switch st.fate {
		case fateMatched:
			if st.hops == 0 {
				mr++
			} else {
				ms++
			}
		case fateExpired:
			er++
		case fateRejected:
			rr++
		case fateLive:
			lr++
		}
	}
	if mr != s.MatchedLocal || ms != s.MatchedSpill || er != s.ExpiredRequests || lr != liveR {
		return fmt.Errorf("metro: request state machine (local %d spill %d expired %d live %d) disagrees with counters (local %d spill %d expired %d live %d)",
			mr, ms, er, lr, s.MatchedLocal, s.MatchedSpill, s.ExpiredRequests, liveR)
	}
	// Duplicate-submission rejections never enter the state machine, so
	// rr only lower-bounds the counter.
	if rr > s.RejectedRequests {
		return fmt.Errorf("metro: %d rejected request states exceed counter %d", rr, s.RejectedRequests)
	}

	// No order may be live in two books: every live ID resolves to
	// exactly one exchange, and its tracked metro agrees.
	seen := make(map[bidding.OrderID]int)
	for m, ex := range f.exchanges {
		for _, r := range ex.Book.LiveRequests() {
			if prev, dup := seen[r.ID]; dup {
				return fmt.Errorf("metro: request %s live in metros %d and %d", r.ID, prev, m)
			}
			seen[r.ID] = m
			if st := f.reqState[r.ID]; st == nil || st.fate != fateLive {
				return fmt.Errorf("metro: request %s live in metro %d but tracked fate is not live", r.ID, m)
			}
		}
		for _, sp := range ex.inbox {
			if prev, dup := seen[sp.r.ID]; dup {
				return fmt.Errorf("metro: request %s in metro %d inbox but also live in metro %d", sp.r.ID, m, prev)
			}
			seen[sp.r.ID] = m
		}
	}
	return nil
}

// TotalWelfare sums realized welfare over a round's outcomes.
func (r *RoundResult) TotalWelfare() float64 {
	var w float64
	for _, out := range r.Outcomes {
		if out != nil {
			w += out.Welfare()
		}
	}
	return w
}

// Matched counts trades across a round's outcomes.
func (r *RoundResult) Matched() int {
	n := 0
	for _, out := range r.Outcomes {
		if out != nil {
			n += len(out.Matches)
		}
	}
	return n
}
