package metro_test

import (
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/metro"
	"decloud/internal/workload"
)

// BenchmarkMetroFederated1000M4 clears a 1000-order geo workload through
// a 4-metro federation, 100 orders per cross-settlement round — the
// full federated hot path: homing, per-metro incremental clearing,
// carry-out harvest, and spill routing. Recorded by scripts/bench.sh as
// a trajectory point (warn-only; not in the ci.sh hard gate — the
// federated round fans out over books whose cost the book and mechanism
// gates already bound).
func BenchmarkMetroFederated1000M4(b *testing.B) {
	m := workload.Generate(workload.Config{Seed: 1, Requests: 1000, GeoRadius: 0.5})
	const rounds = 10
	rPer := (len(m.Requests) + rounds - 1) / rounds
	oPer := (len(m.Offers) + rounds - 1) / rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fed, err := metro.New(metro.Config{
			Metros:  4,
			Auction: auction.DefaultConfig(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for r := 0; r < rounds; r++ {
			reqs := m.Requests[min(r*rPer, len(m.Requests)):min((r+1)*rPer, len(m.Requests))]
			offs := m.Offers[min(r*oPer, len(m.Offers)):min((r+1)*oPer, len(m.Offers))]
			if _, err := fed.Round(reqs, offs, []byte(fmt.Sprintf("bench-%d", r))); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
