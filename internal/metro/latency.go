package metro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// LatencyMatrix is the pluggable inter-metro latency model: MS[i][j] is
// the one-way latency in milliseconds from metro i to metro j. It
// drives two things: spill routing (an exhausted order goes to the
// lowest-latency unvisited neighbor) and the Eq. 18 locality coupling
// (Config.DistancePerMS tightens a spilled request's MaxDistance by the
// path latency, so far-away metros see a strictly pickier request).
//
// Matrices load from JSON — the same shape doublezero's
// internet-latency-collector emits per metro pair — or synthesize from
// a ring default. The matrix is consensus state in a federation: every
// exchange must run the same one, so Fingerprint() is part of the
// federation's head-hash seed.
type LatencyMatrix struct {
	// MS[i][j] is the latency from metro i to metro j in milliseconds.
	// The diagonal must be 0; off-diagonal entries must be finite and
	// non-negative. The matrix need not be symmetric.
	MS [][]float64 `json:"latency_ms"`
}

// DefaultMatrix synthesizes a ring topology over n metros: hop distance
// around the ring times 10 ms — neighbors at 10 ms, the far side at
// n/2·10 ms. A deterministic stand-in when no measured matrix is given.
func DefaultMatrix(n int) *LatencyMatrix {
	if n < 1 {
		n = 1
	}
	ms := make([][]float64, n)
	for i := range ms {
		ms[i] = make([]float64, n)
		for j := range ms[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			ms[i][j] = float64(d) * 10
		}
	}
	return &LatencyMatrix{MS: ms}
}

// UniformMatrix builds an n×n matrix with every off-diagonal entry set
// to ms — the zero-latency (ms=0) input of the differential harness and
// the single knob of the welfare-vs-latency experiment axis.
func UniformMatrix(n int, ms float64) *LatencyMatrix {
	if n < 1 {
		n = 1
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = ms
			}
		}
	}
	return &LatencyMatrix{MS: out}
}

// ParseMatrix decodes and validates a JSON latency matrix.
func ParseMatrix(data []byte) (*LatencyMatrix, error) {
	var m LatencyMatrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metro: parse latency matrix: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadMatrix reads a JSON latency matrix from a file.
func LoadMatrix(path string) (*LatencyMatrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metro: load latency matrix: %w", err)
	}
	return ParseMatrix(data)
}

// Metros returns the matrix dimension.
func (m *LatencyMatrix) Metros() int { return len(m.MS) }

// Validate checks the matrix is square with a zero diagonal and finite,
// non-negative entries.
func (m *LatencyMatrix) Validate() error {
	n := len(m.MS)
	if n == 0 {
		return fmt.Errorf("metro: latency matrix is empty")
	}
	for i, row := range m.MS {
		if len(row) != n {
			return fmt.Errorf("metro: latency matrix row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("metro: latency[%d][%d] = %v is not a finite non-negative latency", i, j, v)
			}
			if i == j && v != 0 {
				return fmt.Errorf("metro: latency[%d][%d] = %v, diagonal must be 0", i, j, v)
			}
		}
	}
	return nil
}

// Latency returns MS[from][to], or +Inf when either index is out of
// range (an unreachable metro never attracts a spill).
func (m *LatencyMatrix) Latency(from, to int) float64 {
	if from < 0 || from >= len(m.MS) || to < 0 || to >= len(m.MS) {
		return math.Inf(1)
	}
	return m.MS[from][to]
}

// Neighbors returns every other metro ordered by ascending latency from
// m, ties broken by metro index — the deterministic spill preference
// order.
func (m *LatencyMatrix) Neighbors(from int) []int {
	n := len(m.MS)
	if from < 0 || from >= n {
		return nil
	}
	out := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != from {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		la, lb := m.MS[from][out[a]], m.MS[from][out[b]]
		if la != lb {
			return la < lb
		}
		return out[a] < out[b]
	})
	return out
}

// Fingerprint hashes the matrix into the federation's head-hash seed,
// so two exchanges running different matrices can never agree on a
// chain.
func (m *LatencyMatrix) Fingerprint() [32]byte {
	data, _ := json.Marshal(m.MS)
	return sha256sum(data)
}
