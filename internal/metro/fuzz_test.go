package metro

import (
	"encoding/binary"
	"math"
	"testing"

	"decloud/internal/bidding"
)

// FuzzMetroHoming asserts the three homing invariants on arbitrary
// inputs: totality (any float64 pair, including NaN/Inf, homes into
// [0, metros)), determinism (same input, same metro), and cell
// stability (jitter that keeps a coordinate inside its grid cell never
// changes the metro).
func FuzzMetroHoming(f *testing.F) {
	f.Add(float64(0.1), float64(0.7), uint8(4), float64(0.01))
	f.Add(float64(-3.2), float64(12.5), uint8(1), float64(0.2))
	f.Add(math.NaN(), math.Inf(1), uint8(64), float64(0))
	f.Add(float64(1e308), float64(-1e308), uint8(7), float64(0.24))
	f.Fuzz(func(t *testing.T, x, y float64, metrosRaw uint8, jitter float64) {
		metros := int(metrosRaw%64) + 1
		loc := bidding.Location{X: x, Y: y}

		h := Home(loc, DefaultCellSize, metros)
		if h < 0 || h >= metros {
			t.Fatalf("Home(%v, %d) = %d out of range", loc, metros, h)
		}
		if h2 := Home(loc, DefaultCellSize, metros); h2 != h {
			t.Fatalf("Home not deterministic: %d then %d", h, h2)
		}

		// Cell stability: jitter the coordinates and, when the jittered
		// point still quantizes to the same cell, require the same
		// metro. (The premise is checked via Cell, so the property is
		// exactly "homing factors through the cell".)
		j := math.Mod(math.Abs(jitter), DefaultCellSize)
		jloc := bidding.Location{X: x + j, Y: y - j}
		cx, cy := Cell(loc, DefaultCellSize)
		jcx, jcy := Cell(jloc, DefaultCellSize)
		if cx == jcx && cy == jcy {
			if jh := Home(jloc, DefaultCellSize, metros); jh != h {
				t.Fatalf("intra-cell jitter moved metro: %d → %d (loc %v → %v)", h, jh, loc, jloc)
			}
		}

		// Homing must agree with an independent recomputation from the
		// cell, i.e. it never reads the raw coordinates directly.
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], uint64(cx))
		binary.BigEndian.PutUint64(buf[8:16], uint64(cy))
		same := bidding.Location{X: float64(cx) * DefaultCellSize, Y: float64(cy) * DefaultCellSize}
		scx, scy := Cell(same, DefaultCellSize)
		if scx == cx && scy == cy && metros > 1 {
			if sh := Home(same, DefaultCellSize, metros); sh != h {
				t.Fatalf("cell-representative location homes to %d, original to %d", sh, h)
			}
		}
	})
}
