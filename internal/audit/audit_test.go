package audit

import (
	"fmt"
	"math/rand"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/workload"
)

func market(seed int64, n int) ([]*bidding.Request, []*bidding.Offer) {
	m := workload.Generate(workload.Config{Seed: seed, Requests: n})
	return m.Requests, m.Offers
}

func TestCleanOutcomesPassAudit(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		reqs, offs := market(int64(trial), 20+rnd.Intn(80))
		cfg := auction.DefaultConfig()
		cfg.Evidence = []byte(fmt.Sprintf("audit-%d", trial))
		if trial%2 == 0 {
			cfg.StrictReduction = true
		}
		out := auction.Run(reqs, offs, cfg)
		if vs := Outcome(reqs, offs, out); len(vs) != 0 {
			t.Fatalf("trial %d: clean outcome flagged: %v", trial, vs)
		}
	}
}

func TestAuditCatchesDoubleMatch(t *testing.T) {
	reqs, offs := market(1, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches to duplicate")
	}
	out.Matches = append(out.Matches, out.Matches[0])
	if !has(Outcome(reqs, offs, out), "const5") {
		t.Fatal("duplicated match not caught")
	}
}

func TestAuditCatchesInflatedPayment(t *testing.T) {
	reqs, offs := market(2, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	out.Matches[0].Payment = out.Matches[0].Request.Bid * 10
	vs := Outcome(reqs, offs, out)
	if !has(vs, "client-ir") {
		t.Fatalf("inflated payment not caught: %v", vs)
	}
	if !has(vs, "books") {
		t.Fatalf("books mismatch not caught: %v", vs)
	}
}

func TestAuditCatchesGhostOrders(t *testing.T) {
	reqs, offs := market(3, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	ghost := *out.Matches[0].Request
	ghost.ID = "ghost"
	out.Matches[0].Request = &ghost
	if !has(Outcome(reqs, offs, out), "ghost-request") {
		t.Fatal("ghost request not caught")
	}
}

func TestAuditCatchesMutatedBid(t *testing.T) {
	reqs, offs := market(4, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	mutated := *out.Matches[0].Request
	mutated.Bid *= 2
	out.Matches[0].Request = &mutated
	if !has(Outcome(reqs, offs, out), "mutated-request") {
		t.Fatal("mutated bid not caught")
	}
}

func TestAuditCatchesOverGrant(t *testing.T) {
	reqs, offs := market(5, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	m := &out.Matches[0]
	m.Granted = m.Granted.Clone()
	m.Granted[resource.CPU] = m.Offer.Resources[resource.CPU] * 100
	vs := Outcome(reqs, offs, out)
	if !has(vs, "const8") {
		t.Fatalf("capacity violation not caught: %v", vs)
	}
}

func TestAuditCatchesTimeViolation(t *testing.T) {
	reqs, offs := market(6, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	forged := *out.Matches[0].Offer
	forged.End = forged.Start + 1 // window no longer covers the request
	// Also plant the forged offer in the submitted set so the order-identity
	// check doesn't fire first.
	for i, o := range offs {
		if o.ID == forged.ID {
			offs[i] = &forged
		}
	}
	out.Matches[0].Offer = &forged
	if !has(Outcome(reqs, offs, out), "const10-11") {
		t.Fatal("time violation not caught")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Code: "x", Detail: "y"}
	if v.String() != "x: y" {
		t.Fatalf("String = %q", v.String())
	}
}

func has(vs []Violation, code string) bool {
	for _, v := range vs {
		if v.Code == code {
			return true
		}
	}
	return false
}
