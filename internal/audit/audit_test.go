package audit

import (
	"fmt"
	"math/rand"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
	"decloud/internal/workload"
)

func market(seed int64, n int) ([]*bidding.Request, []*bidding.Offer) {
	m := workload.Generate(workload.Config{Seed: seed, Requests: n})
	return m.Requests, m.Offers
}

func TestCleanOutcomesPassAudit(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		reqs, offs := market(int64(trial), 20+rnd.Intn(80))
		cfg := auction.DefaultConfig()
		cfg.Evidence = []byte(fmt.Sprintf("audit-%d", trial))
		if trial%2 == 0 {
			cfg.StrictReduction = true
		}
		out := auction.Run(reqs, offs, cfg)
		if vs := Outcome(reqs, offs, out); len(vs) != 0 {
			t.Fatalf("trial %d: clean outcome flagged: %v", trial, vs)
		}
	}
}

func TestAuditCatchesDoubleMatch(t *testing.T) {
	reqs, offs := market(1, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches to duplicate")
	}
	out.Matches = append(out.Matches, out.Matches[0])
	if !has(Outcome(reqs, offs, out), "const5") {
		t.Fatal("duplicated match not caught")
	}
}

func TestAuditCatchesInflatedPayment(t *testing.T) {
	reqs, offs := market(2, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	out.Matches[0].Payment = out.Matches[0].Request.Bid * 10
	vs := Outcome(reqs, offs, out)
	if !has(vs, "client-ir") {
		t.Fatalf("inflated payment not caught: %v", vs)
	}
	if !has(vs, "books") {
		t.Fatalf("books mismatch not caught: %v", vs)
	}
}

func TestAuditCatchesGhostOrders(t *testing.T) {
	reqs, offs := market(3, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	ghost := *out.Matches[0].Request
	ghost.ID = "ghost"
	out.Matches[0].Request = &ghost
	if !has(Outcome(reqs, offs, out), "ghost-request") {
		t.Fatal("ghost request not caught")
	}
}

func TestAuditCatchesMutatedBid(t *testing.T) {
	reqs, offs := market(4, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	mutated := *out.Matches[0].Request
	mutated.Bid *= 2
	out.Matches[0].Request = &mutated
	if !has(Outcome(reqs, offs, out), "mutated-request") {
		t.Fatal("mutated bid not caught")
	}
}

func TestAuditCatchesOverGrant(t *testing.T) {
	reqs, offs := market(5, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	m := &out.Matches[0]
	m.Granted = m.Granted.Clone()
	m.Granted[resource.CPU] = m.Offer.Resources[resource.CPU] * 100
	vs := Outcome(reqs, offs, out)
	if !has(vs, "const8") {
		t.Fatalf("capacity violation not caught: %v", vs)
	}
}

func TestAuditCatchesTimeViolation(t *testing.T) {
	reqs, offs := market(6, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	forged := *out.Matches[0].Offer
	forged.End = forged.Start + 1 // window no longer covers the request
	// Also plant the forged offer in the submitted set so the order-identity
	// check doesn't fire first.
	for i, o := range offs {
		if o.ID == forged.ID {
			offs[i] = &forged
		}
	}
	out.Matches[0].Offer = &forged
	if !has(Outcome(reqs, offs, out), "const10-11") {
		t.Fatal("time violation not caught")
	}
}

func TestAuditCatchesGhostOffer(t *testing.T) {
	reqs, offs := market(7, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	ghost := *out.Matches[0].Offer
	ghost.ID = "ghost-offer"
	out.Matches[0].Offer = &ghost
	if !has(Outcome(reqs, offs, out), "ghost-offer") {
		t.Fatal("ghost offer not caught")
	}
}

func TestAuditCatchesMutatedOffer(t *testing.T) {
	reqs, offs := market(8, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	mutated := *out.Matches[0].Offer
	mutated.Bid /= 2
	out.Matches[0].Offer = &mutated
	if !has(Outcome(reqs, offs, out), "mutated-offer") {
		t.Fatal("mutated offer bid not caught")
	}
}

func TestAuditCatchesLocalityViolation(t *testing.T) {
	reqs, offs := market(9, 60)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	// Find a match with a strictly positive client↔provider distance and
	// shrink the request's radius under it. MaxDistance is not part of the
	// audited order identity (only bid and resources are), so the
	// violation surfaces as a locality breach, not a mutation.
	for i := range out.Matches {
		m := &out.Matches[i]
		if d := m.Request.Location.Distance(m.Offer.Location); d > 0 {
			m.Request.MaxDistance = d / 2
			if !has(Outcome(reqs, offs, out), "locality") {
				t.Fatal("out-of-reach offer not caught")
			}
			return
		}
	}
	t.Skip("no match with positive distance")
}

func TestAuditSkipsZeroNeedKinds(t *testing.T) {
	reqs, offs := market(10, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	// A zero-valued resource entry demands nothing, so the flexibility
	// floor must not apply to it.
	out.Matches[0].Request.Resources["phantom-kind"] = 0
	if vs := Outcome(reqs, offs, out); len(vs) != 0 {
		t.Fatalf("zero-need kind flagged: %v", vs)
	}
}

func TestAuditCatchesFlexFloorViolation(t *testing.T) {
	reqs, offs := market(11, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	m := &out.Matches[0]
	m.Granted = m.Granted.Clone()
	for k, need := range m.Request.Resources {
		if need > 0 {
			m.Granted[k] = 0
			break
		}
	}
	if !has(Outcome(reqs, offs, out), "flex-floor") {
		t.Fatal("starved grant not caught by the flexibility floor")
	}
}

func TestAuditCatchesPhiOutOfRange(t *testing.T) {
	reqs, offs := market(12, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	m := &out.Matches[0]
	// φ = duration/window · mean(granted/cap), so granting twice the
	// window-to-duration ratio of every capacity forces φ = 2 (alongside
	// the capacity violations it also causes).
	scale := 2 * float64(m.Offer.Window()) / float64(m.Request.Duration)
	m.Granted = m.Offer.Resources.Scale(scale)
	vs := Outcome(reqs, offs, out)
	if !has(vs, "const6-7") {
		t.Fatalf("φ > 1 not caught: %v", vs)
	}
}

func TestAuditCatchesNegativePayment(t *testing.T) {
	reqs, offs := market(13, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Matches) == 0 {
		t.Skip("no matches")
	}
	out.Matches[0].Payment = -1
	vs := Outcome(reqs, offs, out)
	if !has(vs, "negative-payment") {
		t.Fatalf("negative payment not caught: %v", vs)
	}
}

func TestAuditCatchesTamperedBooks(t *testing.T) {
	reqs, offs := market(14, 30)
	out := auction.Run(reqs, offs, auction.DefaultConfig())
	if len(out.Payments) == 0 || len(out.Revenues) == 0 {
		t.Skip("no payments")
	}
	for id := range out.Payments {
		out.Payments[id] += 5
		break
	}
	if vs := Outcome(reqs, offs, out); !has(vs, "books") {
		t.Fatalf("tampered payments map not caught: %v", vs)
	}
	out = auction.Run(reqs, offs, auction.DefaultConfig())
	for id := range out.Revenues {
		out.Revenues[id] -= 5
		break
	}
	if vs := Outcome(reqs, offs, out); !has(vs, "books") {
		t.Fatalf("tampered revenues map not caught: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Code: "x", Detail: "y"}
	if v.String() != "x: y" {
		t.Fatalf("String = %q", v.String())
	}
}

func has(vs []Violation, code string) bool {
	for _, v := range vs {
		if v.Code == code {
			return true
		}
	}
	return false
}
