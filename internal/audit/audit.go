// Package audit re-verifies a block allocation against every constraint
// of the paper's market model (Eqs. 5–14) plus the mechanism's economic
// guarantees (strong budget balance, client individual rationality).
// Verifying miners compare allocations byte-for-byte; auditing is the
// defense-in-depth layer on top — it catches a miscomputed allocation
// even if every replica miscomputed it the same way, and gives tests a
// single shared oracle for feasibility.
package audit

import (
	"fmt"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// Violation is one broken constraint.
type Violation struct {
	// Code identifies the constraint, e.g. "const5", "budget-balance".
	Code string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string { return v.Code + ": " + v.Detail }

const tolerance = 1e-6

// Outcome audits a mechanism outcome against the orders it was computed
// from. It returns every violation found (empty = clean).
func Outcome(requests []*bidding.Request, offers []*bidding.Offer, out *auction.Outcome) []Violation {
	var violations []Violation
	report := func(code, format string, args ...any) {
		violations = append(violations, Violation{Code: code, Detail: fmt.Sprintf(format, args...)})
	}

	reqByID := make(map[bidding.OrderID]*bidding.Request, len(requests))
	for _, r := range requests {
		reqByID[r.ID] = r
	}
	offByID := make(map[bidding.OrderID]*bidding.Offer, len(offers))
	for _, o := range offers {
		offByID[o.ID] = o
	}

	seen := make(map[bidding.OrderID]bool)
	used := make(map[bidding.OrderID]resource.Vector)
	var payments, revenues float64

	for i := range out.Matches {
		m := &out.Matches[i]
		r, o := m.Request, m.Offer

		// The matched orders must exist in the submitted set.
		if orig, ok := reqByID[r.ID]; !ok {
			report("ghost-request", "match %d references unknown request %s", i, r.ID)
			continue
		} else if orig.Bid != r.Bid || !orig.Resources.Equal(r.Resources) {
			report("mutated-request", "request %s differs from the submitted order", r.ID)
		}
		if orig, ok := offByID[o.ID]; !ok {
			report("ghost-offer", "match %d references unknown offer %s", i, o.ID)
			continue
		} else if orig.Bid != o.Bid || !orig.Resources.Equal(o.Resources) {
			report("mutated-offer", "offer %s differs from the submitted order", o.ID)
		}

		// Const. 5: one offer per request.
		if seen[r.ID] {
			report("const5", "request %s matched more than once", r.ID)
		}
		seen[r.ID] = true

		// Const. 10–11: time windows.
		if !bidding.TimeCompatible(r, o) {
			report("const10-11", "offer %s window does not cover request %s", o.ID, r.ID)
		}
		// Locality (ℓ_r as a hard radius).
		if !r.WithinReach(o) {
			report("locality", "offer %s is out of request %s's reach", o.ID, r.ID)
		}

		// Const. 8 + flexibility floor + no over-grant.
		for k, g := range m.Granted {
			if g > o.Resources[k]+tolerance {
				report("const8", "grant of %s on %s exceeds capacity: %v > %v", k, o.ID, g, o.Resources[k])
			}
			if g > r.Resources[k]+tolerance {
				report("over-grant", "grant of %s to %s exceeds the request: %v > %v", k, r.ID, g, r.Resources[k])
			}
		}
		for k, need := range r.Resources {
			if need <= 0 {
				continue
			}
			if m.Granted[k] < need*r.Flex()-tolerance {
				report("flex-floor", "grant of %s to %s below the flexibility floor: %v < %v·%v",
					k, r.ID, m.Granted[k], r.Flex(), need)
			}
		}

		// φ and payment consistency.
		if phi := auction.Fraction(m.Granted, r, o); phi < 0 || phi > 1+tolerance {
			report("const6-7", "φ out of range for %s→%s: %v", r.ID, o.ID, phi)
		}
		// Client IR: never pay above the bid.
		if m.Payment > r.Bid+tolerance {
			report("client-ir", "request %s pays %v above its bid %v", r.ID, m.Payment, r.Bid)
		}
		if m.Payment < -tolerance {
			report("negative-payment", "request %s has negative payment %v", r.ID, m.Payment)
		}

		prev := used[o.ID]
		if prev == nil {
			prev = make(resource.Vector)
		}
		used[o.ID] = prev.Add(m.Granted.Scale(float64(r.Duration)))
		payments += m.Payment
		revenues += m.Payment
	}

	// Const. 7: aggregate resource·time per offer.
	for id, u := range used {
		o := offByID[id]
		if o == nil {
			continue // already reported as ghost-offer
		}
		cap := o.Resources.Scale(float64(o.Window()))
		for _, k := range u.Kinds() {
			if u[k] > cap[k]+tolerance {
				report("const7", "offer %s kind %s overcommitted: %v > %v", id, k, u[k], cap[k])
			}
		}
	}

	// Strong budget balance against the outcome's own books.
	var mapPayments, mapRevenues float64
	for _, p := range out.Payments {
		mapPayments += p
	}
	for _, r := range out.Revenues {
		mapRevenues += r
	}
	if diff := mapPayments - payments; diff > tolerance || diff < -tolerance {
		report("books", "payments map (%v) disagrees with matches (%v)", mapPayments, payments)
	}
	if diff := mapRevenues - revenues; diff > tolerance || diff < -tolerance {
		report("books", "revenues map (%v) disagrees with matches (%v)", mapRevenues, revenues)
	}
	if diff := out.TotalPayments() - out.TotalRevenues(); diff > tolerance || diff < -tolerance {
		report("budget-balance", "payments %v != revenues %v", out.TotalPayments(), out.TotalRevenues())
	}
	return violations
}
