package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/miniauction"
)

// synthMarket builds a synthetic block: orders, clusters over them, and
// one mini-auction per cluster group. Clusters are plain literals — the
// partitioner reads only exported membership and offer geometry, so it
// must work on any cluster shape the builder can produce.
type synthMarket struct {
	reqs     []*bidding.Request
	offs     []*bidding.Offer
	clusters []*cluster.Cluster
	auctions []miniauction.Auction
}

// synth derives a market from a seed: nClusters clusters, each with its
// own offers and requests, some sharing requests with the next cluster
// (intersection-style coupling) so multi-cluster components occur.
func synth(seed int64, nClusters int) *synthMarket {
	rnd := rand.New(rand.NewSource(seed))
	m := &synthMarket{}
	var ri, oi int
	for c := 0; c < nClusters; c++ {
		loc := bidding.Location{X: rnd.Float64() * 2, Y: rnd.Float64() * 2}
		var cl cluster.Cluster
		for k := 0; k < 1+rnd.Intn(3); k++ {
			o := &bidding.Offer{
				ID:       bidding.OrderID(fmt.Sprintf("o%03d", oi)),
				Start:    int64(rnd.Intn(200) - 50),
				Location: bidding.Location{X: loc.X + rnd.Float64()*0.1, Y: loc.Y + rnd.Float64()*0.1},
			}
			oi++
			m.offs = append(m.offs, o)
			cl.Offers = append(cl.Offers, o)
		}
		for k := 0; k < 1+rnd.Intn(4); k++ {
			r := &bidding.Request{ID: bidding.OrderID(fmt.Sprintf("r%03d", ri))}
			ri++
			m.reqs = append(m.reqs, r)
			cl.Requests = append(cl.Requests, r)
		}
		// Couple ~every third cluster to its predecessor through a
		// shared request, forming multi-cluster components.
		if c > 0 && rnd.Intn(3) == 0 {
			prev := m.clusters[c-1]
			cl.Requests = append(cl.Requests, prev.Requests[0])
		}
		m.clusters = append(m.clusters, &cl)
	}
	// One auction per cluster, plus pooled auctions over adjacent pairs
	// every fourth cluster — auctions sharing a cluster must stay in
	// one component.
	for c := range m.clusters {
		m.auctions = append(m.auctions, miniauction.Auction{Clusters: []int{c}})
		if c > 0 && rnd.Intn(4) == 0 {
			m.auctions = append(m.auctions, miniauction.Auction{Clusters: []int{c - 1, c}})
		}
	}
	// A few orders outside any cluster: the unclustered remainder.
	for k := 0; k < 3; k++ {
		m.reqs = append(m.reqs, &bidding.Request{ID: bidding.OrderID(fmt.Sprintf("r-un%d", k))})
	}
	return m
}

// checkConservation asserts the partition's central invariant: every
// submitted order is homed exactly once — on one shard, the residual,
// or the unclustered remainder — and the counts add up.
func checkConservation(t testing.TB, m *synthMarket, plan *Plan) {
	t.Helper()
	if want := len(m.reqs) + len(m.offs); plan.TotalOrders != want {
		t.Fatalf("TotalOrders = %d, want %d", plan.TotalOrders, want)
	}
	sum := plan.ResidualOrders + plan.UnclusteredOrders
	for _, n := range plan.ShardOrders {
		sum += n
	}
	if sum != plan.TotalOrders {
		t.Fatalf("order accounting leak: sites sum to %d, total %d", sum, plan.TotalOrders)
	}
	seen := make(map[bidding.OrderID]bool)
	check := func(id bidding.OrderID) {
		if seen[id] {
			t.Fatalf("order %s submitted twice in the synthetic market", id)
		}
		seen[id] = true
		site, ok := plan.Home[id]
		if !ok {
			t.Fatalf("order %s lost: no home", id)
		}
		if site >= plan.K || (site < 0 && site != HomeResidual && site != HomeUnclustered) {
			t.Fatalf("order %s homed at invalid site %d (K=%d)", id, site, plan.K)
		}
	}
	for _, r := range m.reqs {
		check(r.ID)
	}
	for _, o := range m.offs {
		check(o.ID)
	}
	if len(plan.Home) != plan.TotalOrders {
		t.Fatalf("Home has %d entries beyond the %d submitted orders", len(plan.Home), plan.TotalOrders)
	}

	// Every auction lands in exactly one execution site, in ascending
	// order within each site.
	assigned := make(map[int]int)
	sites := append([][]int{plan.Residual}, plan.Shards...)
	for _, ais := range sites {
		for i, ai := range ais {
			assigned[ai]++
			if i > 0 && ais[i-1] >= ai {
				t.Fatalf("site auction list not ascending: %v", ais)
			}
		}
	}
	if len(assigned) != len(m.auctions) {
		t.Fatalf("%d of %d auctions assigned", len(assigned), len(m.auctions))
	}
	for ai, n := range assigned {
		if n != 1 {
			t.Fatalf("auction %d assigned %d times", ai, n)
		}
	}

	// Orders of one auction's clusters must share a single site: an
	// auction whose state straddled sites could not execute.
	for _, ais := range sites {
		for _, ai := range ais {
			var site *int
			for _, ci := range m.auctions[ai].Clusters {
				for _, id := range clusterOrderIDs(m.clusters[ci]) {
					s := plan.Home[bidding.OrderID(id)]
					if site == nil {
						site = &s
					} else if *site != s {
						t.Fatalf("auction %d spans sites %d and %d", ai, *site, s)
					}
				}
			}
		}
	}
}

func TestPartitionConservation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, k := range []int{1, 2, 3, 4, 8, 17} {
			m := synth(seed, 6+int(seed%9))
			plan := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte(fmt.Sprintf("ev-%d", seed)), k)
			if plan.K != k {
				t.Fatalf("plan.K = %d, want %d", plan.K, k)
			}
			checkConservation(t, m, plan)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	m := synth(42, 12)
	a := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte("digest"), 4)
	b := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte("digest"), 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs produced different plans")
	}
}

func TestPartitionEvidenceReseeds(t *testing.T) {
	// The block digest seeds the cell→shard map; across enough digests
	// at least one cluster must move shards, or locality hot-spots
	// would pin to one shard forever.
	m := synth(3, 10)
	base := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte("digest-0"), 4)
	for i := 1; i < 32; i++ {
		p := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte(fmt.Sprintf("digest-%d", i)), 4)
		if !reflect.DeepEqual(base.Shards, p.Shards) {
			return
		}
	}
	t.Fatal("32 distinct digests never moved any component between shards")
}

func TestPartitionSingleShard(t *testing.T) {
	m := synth(7, 8)
	for _, k := range []int{0, -3, 1} {
		plan := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte("one"), k)
		if plan.K != 1 {
			t.Fatalf("K=%d normalized to %d, want 1", k, plan.K)
		}
		if len(plan.Residual) != 0 {
			t.Fatalf("K=1 produced a residual: %v — a single shard has no boundaries", plan.Residual)
		}
		if plan.ResidualOrders != 0 || plan.SpilloverRate() != 0 {
			t.Fatalf("K=1 reported spillover: %d orders, rate %v", plan.ResidualOrders, plan.SpilloverRate())
		}
		if got := len(plan.Shards[0]); got != len(m.auctions) {
			t.Fatalf("shard 0 holds %d of %d auctions", got, len(m.auctions))
		}
	}
}

func TestPartitionExercisesBothPaths(t *testing.T) {
	// Across the sweep both genuine outcomes must occur: components
	// homed on shards AND components spilled to the residual —
	// otherwise the suite would never exercise the spillover pass.
	var homed, spilled bool
	for seed := int64(0); seed < 40 && !(homed && spilled); seed++ {
		m := synth(seed, 10)
		plan := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte{byte(seed)}, 8)
		for _, s := range plan.Shards {
			if len(s) > 0 {
				homed = true
			}
		}
		if len(plan.Residual) > 0 {
			spilled = true
		}
	}
	if !homed {
		t.Error("no component was ever homed on a shard")
	}
	if !spilled {
		t.Error("no component ever spilled to the residual — widen the synthetic geography")
	}
}

func TestSpilloverRate(t *testing.T) {
	p := &Plan{TotalOrders: 10, UnclusteredOrders: 2, ResidualOrders: 4}
	if got := p.SpilloverRate(); got != 0.5 {
		t.Fatalf("SpilloverRate = %v, want 0.5", got)
	}
	empty := &Plan{TotalOrders: 3, UnclusteredOrders: 3}
	if got := empty.SpilloverRate(); got != 0 {
		t.Fatalf("all-unclustered SpilloverRate = %v, want 0", got)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{35, 16, 2}, {0, 16, 0}, {-1, 16, -1}, {-16, 16, -1}, {-17, 16, -2}, {16, 16, 1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Fatalf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
