package shard

import (
	"fmt"
	"reflect"
	"testing"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/miniauction"
)

// FuzzShardPartition feeds arbitrary order-book shapes and block
// digests to the partitioner and asserts its two contracts, mirroring
// what the bidding-layer fuzzers do for the wire format:
//
//   - conservation: no submitted order is ever lost or homed twice,
//     whatever the cluster topology, auction pooling, or K;
//   - determinism: the same (book, digest, K) partitions identically
//     on every call — the partition may depend only on its inputs.
//
// The corpus drives the generator, not raw structs: every byte of fuzz
// input perturbs cluster count, coupling, geometry, and K, so the
// fuzzer explores topology space instead of JSON syntax.
func FuzzShardPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3}, int64(1), uint8(2))
	f.Add([]byte{}, int64(99), uint8(1))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x13}, int64(-5), uint8(8))
	f.Add([]byte("block-digest"), int64(7), uint8(200))
	f.Fuzz(func(t *testing.T, digest []byte, seed int64, kRaw uint8) {
		k := int(kRaw % 12)
		m := synth(seed, 1+int(uint64(seed)%14))
		if len(digest) > 64 {
			digest = digest[:64]
		}

		plan := Partition(m.reqs, m.offs, m.clusters, m.auctions, digest, k)
		checkConservation(t, m, plan)

		again := Partition(m.reqs, m.offs, m.clusters, m.auctions, digest, k)
		if !reflect.DeepEqual(plan, again) {
			t.Fatal("partition is not deterministic for identical inputs")
		}
	})
}

// FuzzShardPartitionSharedOffers drives the partitioner over books
// where one offer belongs to many clusters (intersection clusters) —
// the topology most likely to produce an order with conflicting homes
// if component detection under-merged.
func FuzzShardPartitionSharedOffers(f *testing.F) {
	f.Add(uint8(3), uint8(4))
	f.Add(uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8) {
		n := 1 + int(nRaw%10)
		k := int(kRaw % 9)
		shared := &bidding.Offer{ID: "o-shared", Location: bidding.Location{X: 0.5, Y: 0.5}}
		m := &synthMarket{offs: []*bidding.Offer{shared}}
		for c := 0; c < n; c++ {
			own := &bidding.Offer{
				ID:       bidding.OrderID(fmt.Sprintf("o%d", c)),
				Location: bidding.Location{X: float64(c), Y: float64(c) / 2},
				Start:    int64(c * 40),
			}
			r := &bidding.Request{ID: bidding.OrderID(fmt.Sprintf("r%d", c))}
			m.offs = append(m.offs, own)
			m.reqs = append(m.reqs, r)
			m.clusters = append(m.clusters, &cluster.Cluster{
				Offers:   []*bidding.Offer{shared, own},
				Requests: []*bidding.Request{r},
			})
			m.auctions = append(m.auctions, miniauction.Auction{Clusters: []int{c}})
		}
		plan := Partition(m.reqs, m.offs, m.clusters, m.auctions, []byte{nRaw, kRaw}, k)
		checkConservation(t, m, plan)
		// Everything is coupled through the shared offer: one component,
		// so exactly one site hosts every auction.
		used := 0
		for _, s := range plan.Shards {
			if len(s) > 0 {
				used++
			}
		}
		if len(plan.Residual) > 0 {
			used++
		}
		if used > 1 {
			t.Fatalf("one shared-offer component landed on %d sites", used)
		}
	})
}
