// Package shard partitions one block's order book into K independent
// shards for parallel clearing, following the decomposition literature
// on large-scale double auctions (Gao et al.'s locality partitioning,
// Zhao et al.'s carry-forward of boundary orders): orders are grouped
// by locality and time bucket, each group clears independently, and
// orders whose market structure straddles groups are carried into a
// residual clearing round.
//
// DeCloud's mechanism gives the decomposition a precise, loss-free
// grain: after clustering (Algorithm 2) and mini-auction formation
// (Algorithm 3), all cross-auction coupling flows through order-ID-keyed
// state, so the union-find components of order-disjoint mini-auctions
// (miniauction.IndependentGroups) can be executed in ANY grouping
// without changing a single byte of the outcome, provided auctions run
// in global index order against per-group state and results merge
// canonically (see internal/auction/parallel.go for the commutation
// argument). Partition therefore assigns each component a shard:
// every member cluster hashes its locality cell and time bucket with
// the block digest to a home shard, components whose clusters agree
// land on that shard, and components whose clusters straddle two or
// more shards — the boundary orders, whose best-offer sets span
// localities — spill into the residual round.
//
// Because the shards and the residual are pairwise order-disjoint by
// construction, the sharded execution is byte-identical to the
// monolithic one at ANY K and for ANY choice of cell size or time
// bucket: the partition parameters tune load balance and spillover
// rate, never consensus. This is the property the
// internal/auction/paralleltest harness (CheckShardedVsMonolithic) and
// FuzzShardPartition enforce.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"decloud/internal/bidding"
	"decloud/internal/cluster"
	"decloud/internal/miniauction"
)

// Partition parameters. They shape WHERE components execute, not what
// they produce, so unlike cluster keys or lottery labels they are not
// consensus-critical — still, they are fixed constants so the same
// block partitions identically on every node and in every test rerun.
const (
	// CellSize is the locality grid pitch: clusters whose offer
	// centroid falls in the same CellSize×CellSize cell share a
	// locality key. Workload coordinates live in the unit square, so
	// 0.25 yields a 4×4 grid.
	CellSize = 0.25
	// TimeBucketWidth groups clusters by the earliest offer
	// availability, in the workload's logical time units.
	TimeBucketWidth = 16
)

// Home sentinel values in Plan.Home: non-negative entries name a shard.
const (
	// HomeResidual marks orders of boundary components — their
	// best-offer structure straddles shards, so they clear in the
	// residual round.
	HomeResidual = -1
	// HomeUnclustered marks screened orders that belong to no active
	// mini-auction: nothing clears them under any partition, monolithic
	// included.
	HomeUnclustered = -2
)

// Plan is the deterministic partition of one block's mini-auctions
// across K shards plus the residual round, with full conservation
// accounting: every submitted order appears in exactly one of a shard,
// the residual, or the unclustered remainder.
type Plan struct {
	// K is the shard count the plan was built for (≥ 1).
	K int
	// Shards lists, per shard, the mini-auction indexes assigned to it
	// in ascending (global auction index) order — the execution order
	// that keeps the merge canonical.
	Shards [][]int
	// Residual lists the auction indexes of boundary components,
	// ascending. They clear after the shard fan-out, against their own
	// state.
	Residual []int
	// Home maps every submitted order ID to its execution site: a
	// shard index, HomeResidual, or HomeUnclustered. Exactly-once
	// membership is the conservation invariant the property tests and
	// FuzzShardPartition assert.
	Home map[bidding.OrderID]int
	// ShardOrders counts the distinct orders homed on each shard.
	ShardOrders []int
	// ResidualOrders counts the distinct boundary orders carried into
	// the residual round.
	ResidualOrders int
	// UnclusteredOrders counts submitted orders outside every active
	// mini-auction.
	UnclusteredOrders int
	// TotalOrders is len(Home): every screened request and offer.
	TotalOrders int
}

// SpilloverRate is the fraction of clusterable orders carried into the
// residual round — the load the partition failed to localize. Zero when
// nothing is clustered.
func (p *Plan) SpilloverRate() float64 {
	clustered := p.TotalOrders - p.UnclusteredOrders
	if clustered <= 0 {
		return 0
	}
	return float64(p.ResidualOrders) / float64(clustered)
}

// Partition assigns the block's mini-auctions to K shards plus a
// residual. clusters indexes must match the cluster IDs referenced by
// auctions[i].Clusters (i.e. the block's cluster list in build order);
// evidence is the block digest seeding the shard hash; reqs and offs
// are the screened orders, enumerated so the plan accounts for every
// one of them. K below 1 is treated as 1.
func Partition(reqs []*bidding.Request, offs []*bidding.Offer, clusters []*cluster.Cluster, auctions []miniauction.Auction, evidence []byte, k int) *Plan {
	if k < 1 {
		k = 1
	}
	plan := &Plan{
		K:           k,
		Shards:      make([][]int, k),
		Home:        make(map[bidding.OrderID]int, len(reqs)+len(offs)),
		ShardOrders: make([]int, k),
	}

	// Order-disjoint components of mini-auctions: the finest grain at
	// which execution can move between shards without changing bytes.
	components := miniauction.IndependentGroups(auctions, func(ci int) []string {
		return clusterOrderIDs(clusters[ci])
	})

	// Home shard per cluster, computed once: clusters are shared
	// between auctions of one component but never across components.
	homes := make(map[int]int)
	clusterHome := func(ci int) int {
		h, ok := homes[ci]
		if !ok {
			h = homeShard(evidence, clusters[ci], k)
			homes[ci] = h
		}
		return h
	}

	for _, comp := range components {
		// A component executes on a shard iff every member cluster
		// calls that shard home; disagreement means the component's
		// best-offer structure straddles shards → residual.
		home, straddles := -1, false
		for _, ai := range comp {
			for _, ci := range auctions[ai].Clusters {
				h := clusterHome(ci)
				if home == -1 {
					home = h
				} else if h != home {
					straddles = true
				}
			}
		}
		site := home
		if straddles {
			site = HomeResidual
			plan.Residual = append(plan.Residual, comp...)
		} else {
			plan.Shards[home] = append(plan.Shards[home], comp...)
		}
		for _, ai := range comp {
			for _, ci := range auctions[ai].Clusters {
				for _, id := range clusterOrderIDs(clusters[ci]) {
					plan.Home[bidding.OrderID(id)] = site
				}
			}
		}
	}

	// Components arrive ordered by smallest member, but a shard pooling
	// several components needs its union re-sorted: execution within
	// one state must follow global auction-index order for the merge to
	// be canonical.
	for si := range plan.Shards {
		sortInts(plan.Shards[si])
	}
	sortInts(plan.Residual)

	// Conservation accounting over every screened order.
	for _, r := range reqs {
		countHome(plan, r.ID)
	}
	for _, o := range offs {
		countHome(plan, o.ID)
	}
	return plan
}

// countHome folds one submitted order into the plan's accounting,
// defaulting unseen orders to the unclustered remainder.
func countHome(plan *Plan, id bidding.OrderID) {
	site, ok := plan.Home[id]
	if !ok {
		site = HomeUnclustered
		plan.Home[id] = site
	}
	plan.TotalOrders++
	switch site {
	case HomeResidual:
		plan.ResidualOrders++
	case HomeUnclustered:
		plan.UnclusteredOrders++
	default:
		plan.ShardOrders[site]++
	}
}

// clusterOrderIDs lists every order ID in the cluster's raw membership —
// the same footprint parallel execution unions components over, so the
// plan's disjointness matches the executor's.
func clusterOrderIDs(cl *cluster.Cluster) []string {
	ids := make([]string, 0, len(cl.Requests)+len(cl.Offers))
	for _, r := range cl.Requests {
		ids = append(ids, string(r.ID))
	}
	for _, o := range cl.Offers {
		ids = append(ids, string(o.ID))
	}
	return ids
}

// homeShard keys a cluster to its shard: the centroid of its offer
// locations names a locality cell, the earliest offer availability a
// time bucket, and SHA-256(evidence ‖ cell ‖ bucket) draws the shard.
// Seeding by the block digest re-randomizes the cell→shard map every
// block, so no locality is permanently hot-spotted onto one shard.
func homeShard(evidence []byte, cl *cluster.Cluster, k int) int {
	if k <= 1 {
		return 0
	}
	var sx, sy float64
	minStart := int64(math.MaxInt64)
	for _, o := range cl.Offers {
		sx += o.Location.X
		sy += o.Location.Y
		if o.Start < minStart {
			minStart = o.Start
		}
	}
	var cellX, cellY int64
	if n := float64(len(cl.Offers)); n > 0 {
		cellX = int64(math.Floor(sx / n / CellSize))
		cellY = int64(math.Floor(sy / n / CellSize))
	}
	bucket := floorDiv(minStart, TimeBucketWidth)

	h := sha256.New()
	h.Write(evidence)
	h.Write([]byte("decloud/shard/v1"))
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(cellX))
	binary.BigEndian.PutUint64(buf[8:16], uint64(cellY))
	binary.BigEndian.PutUint64(buf[16:24], uint64(bucket))
	h.Write(buf[:])
	sum := h.Sum(nil)
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(k))
}

// floorDiv is integer division rounding toward negative infinity, so
// negative timestamps bucket consistently with positive ones.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// sortInts is an insertion sort: shard auction lists are short unions
// of already-sorted component runs, where insertion sort is near-linear
// and dependency-free.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
