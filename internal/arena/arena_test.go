package arena

import (
	"sync"
	"testing"
)

func TestMakeZeroedAndPinned(t *testing.T) {
	var s Slab[int]
	a := s.Make(8)
	if len(a) != 8 || cap(a) != 8 {
		t.Fatalf("Make(8): len=%d cap=%d, want 8/8", len(a), cap(a))
	}
	for i := range a {
		if a[i] != 0 {
			t.Fatalf("Make returned non-zero memory at %d: %d", i, a[i])
		}
		a[i] = i + 1
	}
	b := s.Make(8)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("second Make sees dirty memory at %d: %d", i, b[i])
		}
	}
	// Appending to a must not bleed into b (capacity pinned).
	a = append(a, 99)
	if b[0] != 0 {
		t.Fatalf("append on earlier slice clobbered later allocation: b[0]=%d", b[0])
	}
}

func TestResetRezeroesAndReuses(t *testing.T) {
	var s Slab[float64]
	a := s.Make(16)
	for i := range a {
		a[i] = 3.14
	}
	capBefore := s.Cap()
	s.Reset()
	if s.Cap() != capBefore {
		t.Fatalf("Reset dropped chunks: cap %d -> %d", capBefore, s.Cap())
	}
	b := s.Make(16)
	if &a[0] != &b[0] {
		t.Fatalf("Reset+Make did not reuse the same memory")
	}
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("Reset left dirty memory at %d: %g", i, b[i])
		}
	}
}

func TestOversizedAllocation(t *testing.T) {
	var s Slab[uint64]
	small := s.Make(4)
	small[0] = 7
	big := s.Make(chunkSize + 100)
	if len(big) != chunkSize+100 {
		t.Fatalf("oversized Make: len=%d", len(big))
	}
	for _, v := range big {
		if v != 0 {
			t.Fatalf("oversized Make returned dirty memory")
		}
	}
	// The bump chunk must still be usable after an oversized insert.
	next := s.Make(4)
	if next[0] != 0 {
		t.Fatalf("post-oversized Make dirty")
	}
	next[0] = 9
	if small[0] != 7 {
		t.Fatalf("oversized insert corrupted earlier allocation: %d", small[0])
	}
	s.Reset()
	again := s.Make(4)
	for _, v := range again {
		if v != 0 {
			t.Fatalf("Reset after oversized left dirty memory")
		}
	}
}

func TestChunkBoundarySpill(t *testing.T) {
	var s Slab[int]
	// Fill most of the first chunk, then request more than the remainder:
	// the slab must spill to a fresh chunk, never split an allocation.
	a := s.Make(chunkSize - 3)
	b := s.Make(10)
	if len(b) != 10 {
		t.Fatalf("spill Make: len=%d", len(b))
	}
	a[len(a)-1] = 1
	b[0] = 2
	if s.Cap() < 2*chunkSize {
		t.Fatalf("expected a second chunk, cap=%d", s.Cap())
	}
}

// TestNoAliasingAcrossEpochs drives two epochs with different allocation
// patterns and checks that epoch-2 slices never observe epoch-1 values,
// even though they reuse the same chunks.
func TestNoAliasingAcrossEpochs(t *testing.T) {
	var a Arena
	sizes := []int{1, 7, 64, 300, 4096, 5000}
	for _, n := range sizes {
		f := a.F64.Make(n)
		for i := range f {
			f[i] = 1e9
		}
		u := a.U64.Make(n)
		for i := range u {
			u[i] = ^uint64(0)
		}
	}
	a.Reset()
	// Different pattern on epoch 2.
	for _, n := range []int{5000, 3, 4096, 11, 120} {
		for i, v := range a.F64.Make(n) {
			if v != 0 {
				t.Fatalf("epoch-2 F64[%d] aliased epoch-1 data: %g", i, v)
			}
		}
		for i, v := range a.U64.Make(n) {
			if v != 0 {
				t.Fatalf("epoch-2 U64[%d] aliased epoch-1 data: %d", i, v)
			}
		}
	}
}

// TestPerShardIsolation exercises one Arena per goroutine concurrently
// (the sharded-execution discipline) under -race: distinct arenas must
// never share memory, and each shard's view must stay consistent.
func TestPerShardIsolation(t *testing.T) {
	const shards = 8
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var a Arena
			for epoch := 0; epoch < 50; epoch++ {
				f := a.F64.Make(257)
				for i := range f {
					f[i] = float64(shard*1000 + epoch)
				}
				for i := range f {
					if f[i] != float64(shard*1000+epoch) {
						t.Errorf("shard %d epoch %d: corrupted value %g", shard, epoch, f[i])
						return
					}
				}
				a.Reset()
			}
		}(s)
	}
	wg.Wait()
}

// TestSteadyStateAllocFree proves the point of the package: after warmup,
// a Make/Reset cycle performs zero heap allocations.
func TestSteadyStateAllocFree(t *testing.T) {
	var a Arena
	cycle := func() {
		a.F64.Make(1000)
		a.U64.Make(100)
		a.Int.Make(500)
		a.Reset()
	}
	cycle() // warmup grows the chunks
	avg := testing.AllocsPerRun(100, cycle)
	if avg != 0 {
		t.Fatalf("steady-state cycle allocates %.1f objects/op, want 0", avg)
	}
}
