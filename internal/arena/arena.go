// Package arena provides epoch-scoped slab allocation for the clearing
// hot path.
//
// A clear (one auction.Run, one book Preview/Apply) allocates hundreds
// of thousands of short-lived scratch objects — dense kind rows, bitmask
// words, top-k buffers, per-cluster component scratch — all of which die
// together at the end of the epoch. A Slab hands out sub-slices of large
// retained chunks instead: Make is a bump pointer, Reset rewinds it and
// keeps the chunks, so steady-state clears allocate nothing.
//
// Determinism contract: slabs hand out memory, never values. Every
// sub-slice returned by Make is zeroed before it is returned, so a
// computation over arena memory is bit-identical to the same computation
// over fresh make() memory — reuse cannot leak state across epochs.
// Slabs are NOT safe for concurrent use; concurrent shards must each own
// their own Arena (per-shard arenas, reset at round boundaries), exactly
// as each owns its own blockState.
package arena

// chunkSize is the element count of newly grown chunks. Requests larger
// than this get a dedicated exact-size chunk.
const chunkSize = 4096

// Slab is a typed bump allocator over retained chunks.
// The zero value is ready to use.
type Slab[T any] struct {
	chunks [][]T
	cur    int // index of the chunk being bumped
	off    int // next free element in chunks[cur]
}

// Make returns a zeroed slice of length and capacity n carved from the
// slab. The capacity is pinned to n so an append on the result cannot
// bleed into a neighbouring allocation.
func (s *Slab[T]) Make(n int) []T {
	if n == 0 {
		return nil
	}
	if n > chunkSize {
		// Oversized: dedicated chunk, fully consumed.
		c := make([]T, n)
		// Insert before the bump chunk so cur keeps pointing at a
		// chunk with free space.
		s.chunks = append(s.chunks, nil)
		copy(s.chunks[s.cur+1:], s.chunks[s.cur:])
		s.chunks[s.cur] = c
		s.cur++
		return c[0:n:n]
	}
	for s.cur < len(s.chunks) && s.off+n > len(s.chunks[s.cur]) {
		s.cur++
		s.off = 0
	}
	if s.cur == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, chunkSize))
	}
	c := s.chunks[s.cur]
	out := c[s.off : s.off+n : s.off+n]
	s.off += n
	// Chunks are zeroed when grown and re-zeroed by Reset, but an
	// explicit clear keeps the contract local and costs nothing when
	// already zero.
	clear(out)
	return out
}

// Reset rewinds the slab to empty, retaining chunks for reuse. All
// previously returned slices become invalid; the next epoch's Make calls
// return the same memory, re-zeroed.
func (s *Slab[T]) Reset() {
	for i := 0; i <= s.cur && i < len(s.chunks); i++ {
		clear(s.chunks[i][:])
	}
	s.cur = 0
	s.off = 0
}

// Cap returns the total retained element capacity (for tests/metrics).
func (s *Slab[T]) Cap() int {
	n := 0
	for _, c := range s.chunks {
		n += len(c)
	}
	return n
}

// Arena bundles the scalar slabs the clearing path needs. One Arena
// serves one epoch on one goroutine; reset it at round boundaries.
type Arena struct {
	F64 Slab[float64]
	U64 Slab[uint64]
	I64 Slab[int64]
	I32 Slab[int32]
	Int Slab[int]
}

// Reset rewinds every slab, retaining capacity.
func (a *Arena) Reset() {
	a.F64.Reset()
	a.U64.Reset()
	a.I64.Reset()
	a.I32.Reset()
	a.Int.Reset()
}
