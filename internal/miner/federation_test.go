package miner

import (
	"context"
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/contract"
	"decloud/internal/ledger"
	"decloud/internal/metro"
	"decloud/internal/reputation"
)

// fedNetwork builds a proof-of-stake federation for tests.
func fedNetwork(t *testing.T, metros int, lat *metro.LatencyMatrix) *FederatedNetwork {
	t.Helper()
	fed, err := NewFederatedNetwork(metros, 2, 0, incrementalConfig(), lat)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < fed.Metros(); m++ {
		fed.Net(m).Consensus = ProofOfStake
	}
	t.Cleanup(fed.Close)
	return fed
}

// TestFederatedNetworkValidation: the constructor rejects configurations
// the spill machinery cannot serve.
func TestFederatedNetworkValidation(t *testing.T) {
	if _, err := NewFederatedNetwork(0, 1, 0, incrementalConfig(), nil); err == nil {
		t.Fatal("want error for 0 metros")
	}
	if _, err := NewFederatedNetwork(2, 1, 0, auction.DefaultConfig(), nil); err == nil {
		t.Fatal("want error for non-incremental config (spill reads carry-outs)")
	}
	if _, err := NewFederatedNetwork(3, 1, 0, incrementalConfig(), metro.DefaultMatrix(2)); err == nil {
		t.Fatal("want error for 2×2 matrix with 3 metros")
	}
}

// TestFederatedSpillSettlesOnNeighborChain drives the full ledger-mode
// spill path: a request with no supply on its home exchange exhausts its
// carry budget there, the relay participant re-seals it on the neighbor
// metro, and it settles on the neighbor's chain — exactly once
// federation-wide.
func TestFederatedSpillSettlesOnNeighborChain(t *testing.T) {
	fed := fedNetwork(t, 2, nil)
	ctx := context.Background()

	alice := testParticipant(t, "alice")
	prov := testParticipant(t, "prov")

	submit := func(m int, p *Participant, r *bidding.Request, o *bidding.Offer) {
		t.Helper()
		if r != nil {
			bid, err := p.SubmitRequest(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
		if o != nil {
			bid, err := p.SubmitOffer(o)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: the doomed request enters metro 0, which never has supply.
	submit(0, alice, request("r-spill", 2, 10), nil)
	if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
		t.Fatal(err)
	}

	// Rounds 2..MaxCarry+1: filler bids keep metro 0 clearing so the
	// carry budget of r-spill drains; each filler is priced to never
	// match anything.
	for i := 0; i < 3; i++ {
		filler := request(fmt.Sprintf("r-fill-%d", i), 1, 0.001)
		submit(0, alice, filler, nil)
		if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fed.Stats().Spills; got < 1 {
		t.Fatalf("after carry-budget exhaustion want >=1 spill, got %d", got)
	}

	// Next round: metro 1 finally has supply, plus a lower-bid local
	// request to absorb the trade reduction so the spilled request's
	// trade survives.
	setter := testParticipant(t, "setter")
	submit(1, prov, nil, offer("o-b", 8, 1))
	submit(1, setter, request("r-setter", 2, 5), nil)
	results, err := fed.RunFederatedRound(ctx, [][]*Participant{nil, {prov, setter}})
	if err != nil {
		t.Fatal(err)
	}
	if results[1] == nil || results[1].Outcome == nil {
		t.Fatal("metro 1 round did not run")
	}
	matched := false
	for _, mt := range results[1].Outcome.Matches {
		if mt.Request.ID == "r-spill" {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("spilled request did not match on neighbor metro; outcome %+v", results[1].Outcome)
	}

	// The settlement must appear on metro 1's chain — and nowhere else.
	if err := fed.CheckNoDoubleSettle(); err != nil {
		t.Fatal(err)
	}
	found := false
	chain := fed.Net(1).Chain()
	for h := 0; h < chain.Len(); h++ {
		blk := chain.BlockAt(h)
		if blk == nil || blk.Body == nil {
			continue
		}
		records, err := ledger.DecodeAllocation(blk.Body.Allocation)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records {
			if rec.RequestID == "r-spill" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("spilled request settled nowhere on metro 1's chain")
	}
}

// TestFederatedSpillExpiresAtHopBudget: with a single hop allowed and no
// supply anywhere, a carried-out request dies after visiting its one
// neighbor rather than ping-ponging.
func TestFederatedSpillExpiresAtHopBudget(t *testing.T) {
	fed := fedNetwork(t, 2, nil)
	fed.SetMaxHops(1)
	ctx := context.Background()
	alice := testParticipant(t, "alice")

	sub := func(m int, r *bidding.Request) {
		t.Helper()
		bid, err := alice.SubmitRequest(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.Net(m).SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
	}

	sub(0, request("r-doomed", 2, 10))
	parts := [][]*Participant{{alice}, nil}
	if _, err := fed.RunFederatedRound(ctx, parts); err != nil {
		t.Fatal(err)
	}
	// Drain carry budget on metro 0, then on metro 1 after the spill.
	// 3 fillers exhaust metro 0; the spill lands on metro 1, where 4
	// more fillers exhaust it again with no unvisited neighbor left.
	for i := 0; i < 3; i++ {
		sub(0, request(fmt.Sprintf("r-f0-%d", i), 1, 0.001))
		if _, err := fed.RunFederatedRound(ctx, parts); err != nil {
			t.Fatal(err)
		}
	}
	if fed.Stats().Spills != 1 {
		t.Fatalf("want exactly 1 spill, got %d", fed.Stats().Spills)
	}
	// Metro-1 fillers are offers — too small for r-doomed and absurdly
	// priced — because offers never spill and so cannot pollute the
	// spill counter the way filler requests would.
	for i := 0; i < 4; i++ {
		bid, err := alice.SubmitOffer(offer(fmt.Sprintf("o-f1-%d", i), 1, 999))
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.Net(1).SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
		if _, err := fed.RunFederatedRound(ctx, [][]*Participant{nil, {alice}}); err != nil {
			t.Fatal(err)
		}
	}
	st := fed.Stats()
	if st.Spills != 1 {
		t.Fatalf("hop budget exceeded: want 1 spill total, got %d", st.Spills)
	}
	if st.SpillExpired < 1 {
		t.Fatalf("want the request to expire after its single hop, got SpillExpired=%d", st.SpillExpired)
	}
	if err := fed.CheckNoDoubleSettle(); err != nil {
		t.Fatal(err)
	}
}

// TestFederatedDenyRoutesPenaltyToOriginMetro closes the spill loop: a
// request that spilled from metro 0 and matched on metro 1 is denied by
// its client. The agreement must settle (Denied) on metro 1 — the chain
// that cleared it — but the reputational penalty must land on metro 0,
// the client's home exchange, leaving metro 1's store untouched.
func TestFederatedDenyRoutesPenaltyToOriginMetro(t *testing.T) {
	fed := fedNetwork(t, 2, nil)
	ctx := context.Background()

	alice := testParticipant(t, "alice")
	prov := testParticipant(t, "prov")

	submit := func(m int, p *Participant, r *bidding.Request, o *bidding.Offer) {
		t.Helper()
		if r != nil {
			bid, err := p.SubmitRequest(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
		if o != nil {
			bid, err := p.SubmitOffer(o)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Same drive as TestFederatedSpillSettlesOnNeighborChain: starve
	// r-spill on metro 0 until it spills, then give metro 1 supply.
	submit(0, alice, request("r-spill", 2, 10), nil)
	if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		submit(0, alice, request(fmt.Sprintf("r-fill-%d", i), 1, 0.001), nil)
		if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
			t.Fatal(err)
		}
	}
	setter := testParticipant(t, "setter")
	submit(1, prov, nil, offer("o-b", 8, 1))
	submit(1, setter, request("r-setter", 2, 5), nil)
	results, err := fed.RunFederatedRound(ctx, [][]*Participant{nil, {prov, setter}})
	if err != nil {
		t.Fatal(err)
	}
	if results[1] == nil {
		t.Fatal("metro 1 round did not run")
	}

	// Locate r-spill's agreement on metro 1.
	reg := fed.Net(1).Contracts()
	var spillAgr *contract.Agreement
	for _, id := range results[1].Agreements {
		a, err := reg.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Record.RequestID == "r-spill" {
			spillAgr = &a
		}
	}
	if spillAgr == nil {
		t.Fatalf("spilled request produced no agreement on metro 1: %v", results[1].Agreements)
	}
	if origin, ok := fed.SpillOrigin("r-spill"); !ok || origin != 0 {
		t.Fatalf("SpillOrigin(r-spill) = %d,%v, want 0,true", origin, ok)
	}

	client := spillAgr.Client()
	if _, err := fed.Deny(1, spillAgr.ID, client); err != nil {
		t.Fatal(err)
	}

	// The agreement settles Denied on the clearing metro...
	a, err := reg.Get(spillAgr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != contract.Denied {
		t.Fatalf("agreement status = %v, want denied on the clearing metro", a.Status)
	}
	// ...but the penalty decays the client's standing on its ORIGIN
	// metro only.
	if got := fed.Net(0).Contracts().Reputation().Score(client); got >= reputation.Initial {
		t.Fatalf("origin metro score = %g, want decayed below %g", got, reputation.Initial)
	}
	if got := fed.Net(1).Contracts().Reputation().Score(client); got != reputation.Initial {
		t.Fatalf("clearing metro score = %g, want untouched %g", got, reputation.Initial)
	}
	// A second deny on the same agreement must fail, and the federation
	// still settles every order exactly once.
	if _, err := fed.Deny(1, spillAgr.ID, client); err == nil {
		t.Fatal("double deny succeeded")
	}
	if err := fed.CheckNoDoubleSettle(); err != nil {
		t.Fatal(err)
	}
}
