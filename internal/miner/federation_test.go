package miner

import (
	"context"
	"fmt"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/ledger"
	"decloud/internal/metro"
)

// fedNetwork builds a proof-of-stake federation for tests.
func fedNetwork(t *testing.T, metros int, lat *metro.LatencyMatrix) *FederatedNetwork {
	t.Helper()
	fed, err := NewFederatedNetwork(metros, 2, 0, incrementalConfig(), lat)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < fed.Metros(); m++ {
		fed.Net(m).Consensus = ProofOfStake
	}
	t.Cleanup(fed.Close)
	return fed
}

// TestFederatedNetworkValidation: the constructor rejects configurations
// the spill machinery cannot serve.
func TestFederatedNetworkValidation(t *testing.T) {
	if _, err := NewFederatedNetwork(0, 1, 0, incrementalConfig(), nil); err == nil {
		t.Fatal("want error for 0 metros")
	}
	if _, err := NewFederatedNetwork(2, 1, 0, auction.DefaultConfig(), nil); err == nil {
		t.Fatal("want error for non-incremental config (spill reads carry-outs)")
	}
	if _, err := NewFederatedNetwork(3, 1, 0, incrementalConfig(), metro.DefaultMatrix(2)); err == nil {
		t.Fatal("want error for 2×2 matrix with 3 metros")
	}
}

// TestFederatedSpillSettlesOnNeighborChain drives the full ledger-mode
// spill path: a request with no supply on its home exchange exhausts its
// carry budget there, the relay participant re-seals it on the neighbor
// metro, and it settles on the neighbor's chain — exactly once
// federation-wide.
func TestFederatedSpillSettlesOnNeighborChain(t *testing.T) {
	fed := fedNetwork(t, 2, nil)
	ctx := context.Background()

	alice := testParticipant(t, "alice")
	prov := testParticipant(t, "prov")

	submit := func(m int, p *Participant, r *bidding.Request, o *bidding.Offer) {
		t.Helper()
		if r != nil {
			bid, err := p.SubmitRequest(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
		if o != nil {
			bid, err := p.SubmitOffer(o)
			if err != nil {
				t.Fatal(err)
			}
			if err := fed.Net(m).SubmitBid(bid); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: the doomed request enters metro 0, which never has supply.
	submit(0, alice, request("r-spill", 2, 10), nil)
	if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
		t.Fatal(err)
	}

	// Rounds 2..MaxCarry+1: filler bids keep metro 0 clearing so the
	// carry budget of r-spill drains; each filler is priced to never
	// match anything.
	for i := 0; i < 3; i++ {
		filler := request(fmt.Sprintf("r-fill-%d", i), 1, 0.001)
		submit(0, alice, filler, nil)
		if _, err := fed.RunFederatedRound(ctx, [][]*Participant{{alice}, nil}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fed.Stats().Spills; got < 1 {
		t.Fatalf("after carry-budget exhaustion want >=1 spill, got %d", got)
	}

	// Next round: metro 1 finally has supply, plus a lower-bid local
	// request to absorb the trade reduction so the spilled request's
	// trade survives.
	setter := testParticipant(t, "setter")
	submit(1, prov, nil, offer("o-b", 8, 1))
	submit(1, setter, request("r-setter", 2, 5), nil)
	results, err := fed.RunFederatedRound(ctx, [][]*Participant{nil, {prov, setter}})
	if err != nil {
		t.Fatal(err)
	}
	if results[1] == nil || results[1].Outcome == nil {
		t.Fatal("metro 1 round did not run")
	}
	matched := false
	for _, mt := range results[1].Outcome.Matches {
		if mt.Request.ID == "r-spill" {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("spilled request did not match on neighbor metro; outcome %+v", results[1].Outcome)
	}

	// The settlement must appear on metro 1's chain — and nowhere else.
	if err := fed.CheckNoDoubleSettle(); err != nil {
		t.Fatal(err)
	}
	found := false
	chain := fed.Net(1).Chain()
	for h := 0; h < chain.Len(); h++ {
		blk := chain.BlockAt(h)
		if blk == nil || blk.Body == nil {
			continue
		}
		records, err := ledger.DecodeAllocation(blk.Body.Allocation)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records {
			if rec.RequestID == "r-spill" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("spilled request settled nowhere on metro 1's chain")
	}
}

// TestFederatedSpillExpiresAtHopBudget: with a single hop allowed and no
// supply anywhere, a carried-out request dies after visiting its one
// neighbor rather than ping-ponging.
func TestFederatedSpillExpiresAtHopBudget(t *testing.T) {
	fed := fedNetwork(t, 2, nil)
	fed.SetMaxHops(1)
	ctx := context.Background()
	alice := testParticipant(t, "alice")

	sub := func(m int, r *bidding.Request) {
		t.Helper()
		bid, err := alice.SubmitRequest(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.Net(m).SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
	}

	sub(0, request("r-doomed", 2, 10))
	parts := [][]*Participant{{alice}, nil}
	if _, err := fed.RunFederatedRound(ctx, parts); err != nil {
		t.Fatal(err)
	}
	// Drain carry budget on metro 0, then on metro 1 after the spill.
	// 3 fillers exhaust metro 0; the spill lands on metro 1, where 4
	// more fillers exhaust it again with no unvisited neighbor left.
	for i := 0; i < 3; i++ {
		sub(0, request(fmt.Sprintf("r-f0-%d", i), 1, 0.001))
		if _, err := fed.RunFederatedRound(ctx, parts); err != nil {
			t.Fatal(err)
		}
	}
	if fed.Stats().Spills != 1 {
		t.Fatalf("want exactly 1 spill, got %d", fed.Stats().Spills)
	}
	// Metro-1 fillers are offers — too small for r-doomed and absurdly
	// priced — because offers never spill and so cannot pollute the
	// spill counter the way filler requests would.
	for i := 0; i < 4; i++ {
		bid, err := alice.SubmitOffer(offer(fmt.Sprintf("o-f1-%d", i), 1, 999))
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.Net(1).SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
		if _, err := fed.RunFederatedRound(ctx, [][]*Participant{nil, {alice}}); err != nil {
			t.Fatal(err)
		}
	}
	st := fed.Stats()
	if st.Spills != 1 {
		t.Fatalf("hop budget exceeded: want 1 spill total, got %d", st.Spills)
	}
	if st.SpillExpired < 1 {
		t.Fatalf("want the request to expire after its single hop, got SpillExpired=%d", st.SpillExpired)
	}
	if err := fed.CheckNoDoubleSettle(); err != nil {
		t.Fatal(err)
	}
}
