package miner

import (
	"bytes"
	"fmt"

	"decloud/internal/auction"
	"decloud/internal/audit"
	"decloud/internal/book"
	"decloud/internal/ledger"
	"decloud/internal/sealed"
)

// This file wires the continuous order book (internal/book) into the
// miner's produce/verify duties. When Miner.Book is non-nil the miner
// runs in incremental mode: instead of clearing each block's bids in
// isolation, orders join a long-lived book, unmatched orders carry
// across blocks, and each clear re-scores only the state the block's
// mutations dirtied. The book's differential harness (book/booktest)
// proves the incremental outcome byte-identical to the from-scratch
// mechanism over the same live set, so incremental and rebuild miners
// agree on every block body.
//
// Lock order: Miner.bookMu → ledger.Chain read locks → book.Book.mu.
// SyncBook must therefore never run inside a chain.Append verify
// callback (Append holds the chain lock for its whole duration and the
// chain mutex is not reentrant) — callers sync BEFORE appending and,
// on a verify-driven rejection, resync and retry.

// computeBodyIncremental is ComputeBody's book path: the block's
// decrypted orders are previewed against the live book — carried
// orders compete with the new arrivals — and the speculative outcome
// becomes the body. The book itself is not advanced; that happens when
// the appended block is synced (SyncBook), which reuses the preview's
// memoized outcome when nothing changed in between.
func (m *Miner) computeBodyIncremental(b *ledger.Block, reveals []*sealed.KeyReveal) (*auction.Outcome, error) {
	res := DecryptOrders(b.Bids, reveals)
	out, _, _ := m.Book.Preview(res.Requests, res.Offers, b.Evidence())
	alloc, err := ledger.EncodeAllocation(out)
	if err != nil {
		return nil, err
	}
	b.Body = ledger.NewBody(reveals, alloc)
	return out, nil
}

// SyncBook replays every chain block the miner's book has not yet
// absorbed, in height order. Each block's orders are decrypted with the
// body's reveals and applied as one mutation batch under the block's
// evidence; the resulting outcome must re-encode to the committed
// allocation bytes, otherwise the local book has diverged from
// consensus and the error says at which height.
func (m *Miner) SyncBook(chain *ledger.Chain) error {
	if m.Book == nil {
		return nil
	}
	m.bookMu.Lock()
	defer m.bookMu.Unlock()
	for h := m.Book.Blocks(); h < chain.Len(); h++ {
		blk := chain.BlockAt(h)
		if blk == nil || blk.Body == nil {
			return fmt.Errorf("miner %s: sync book: no body at height %d", m.Name, h)
		}
		res := DecryptOrders(blk.Bids, blk.Body.Reveals)
		out := m.Book.Apply(res.Requests, res.Offers, blk.Evidence())
		alloc, err := ledger.EncodeAllocation(out)
		if err != nil {
			return fmt.Errorf("miner %s: sync book at height %d: %w", m.Name, h, err)
		}
		if !bytes.Equal(alloc, blk.Body.Allocation) {
			return fmt.Errorf("miner %s: book diverged from chain at height %d: %w", m.Name, h, ErrAllocationMismatch)
		}
		// Advance the market clock: orders whose windows ended before
		// this block's earliest arrival can never be scheduled again
		// (Const. 10–11) and would otherwise haunt the live set until
		// their carry budget ran out. The watermark is derived from the
		// block's bid time fields, so every replica expires the same
		// set at the same height — expiry runs AFTER the apply, never
		// between a preview and its apply.
		if now, ok := book.ArrivalWatermark(res.Requests, res.Offers); ok {
			m.Book.ExpireBefore(now)
		}
	}
	return nil
}

// verifyBlockIncremental re-executes a block against the verifier's own
// book replica: preview the block's orders over the live set, compare
// allocations byte for byte, and audit the recomputed outcome against
// the market model over the UNION of carried and newly revealed orders
// (a carried match references an order that is not among this block's
// bids — the union is the market the clear actually ran over).
func (m *Miner) verifyBlockIncremental(b *ledger.Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	res := DecryptOrders(b.Bids, b.Body.Reveals)
	out, unionReqs, unionOffs := m.Book.Preview(res.Requests, res.Offers, b.Evidence())
	alloc, err := ledger.EncodeAllocation(out)
	if err != nil {
		return err
	}
	if !bytes.Equal(alloc, b.Body.Allocation) {
		return fmt.Errorf("%w (miner %s, incremental)", ErrAllocationMismatch, m.Name)
	}
	if violations := audit.Outcome(unionReqs, unionOffs, out); len(violations) > 0 {
		return fmt.Errorf("miner %s: allocation violates the market model: %v", m.Name, violations[0])
	}
	return nil
}
