package miner

import (
	"context"
	"fmt"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/contract"
	"decloud/internal/ledger"
	"decloud/internal/metro"
)

// FederatedNetwork is the ledger-mode federation: M independent miner
// networks — one per metro exchange, each with its own chain, miner
// cluster, and incremental book replicas — joined by cross-metro spill.
// After every federated round, requests that exhausted their carry
// budget on their home exchange are re-submitted (sealed and signed by
// the exchange's relay participant, the hub-and-spoke broker of the DZX
// model) to the lowest-latency unvisited neighbor metro, up to MaxHops
// hops, with the latency matrix tightening their MaxDistance via
// DistancePerMS exactly as in metro.Federation.
//
// The fast-mode counterpart (metro.Federation) proves the routing's
// determinism byte-for-byte; this type carries the same semantics into
// the full sealed-bid / reveal / verify protocol.
type FederatedNetwork struct {
	nets     []*Network
	lat      *metro.LatencyMatrix
	cellSize float64
	maxHops  int
	distMS   float64
	spillers []*Participant

	inbox [][]*bidding.Request
	state map[bidding.OrderID]*fedSpillState

	stats FederationStats
}

type fedSpillState struct {
	hops    int
	visited uint64
	pathMS  float64
	// origin is the metro the request FIRST carried out of — its home
	// exchange. A deny on a spilled match routes its reputational
	// penalty back here: the exchange the client's future requests home
	// to is the one that must remember the break.
	origin int
}

// FederationStats counts cross-metro routing events.
type FederationStats struct {
	Rounds       int
	Spills       int
	SpillExpired int
}

// NewFederatedNetwork builds M metro networks of minersPerMetro miners
// each. cfg.Incremental must be set — spill detection reads carry-out
// removals from the networks' book replicas. lat nil defaults to
// metro.DefaultMatrix(metros).
func NewFederatedNetwork(metros, minersPerMetro, difficulty int, cfg auction.Config, lat *metro.LatencyMatrix) (*FederatedNetwork, error) {
	if metros < 1 || metros > 64 {
		return nil, fmt.Errorf("miner: federation needs 1..64 metros, got %d", metros)
	}
	if !cfg.Incremental {
		return nil, fmt.Errorf("miner: federation requires incremental mode (spill reads book carry-outs)")
	}
	if lat == nil {
		lat = metro.DefaultMatrix(metros)
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if lat.Metros() != metros {
		return nil, fmt.Errorf("miner: latency matrix is %d×%d, want %d", lat.Metros(), lat.Metros(), metros)
	}
	cfg.Metros = metros
	f := &FederatedNetwork{
		lat:      lat,
		cellSize: metro.DefaultCellSize,
		maxHops:  metro.DefaultMaxHops,
		inbox:    make([][]*bidding.Request, metros),
		state:    make(map[bidding.OrderID]*fedSpillState),
	}
	for m := 0; m < metros; m++ {
		net := NewNetwork(minersPerMetro, difficulty, cfg)
		if bk := net.Book(); bk != nil {
			bk.SetTrackRemovals(true)
		}
		sp, err := NewParticipant(nil)
		if err != nil {
			return nil, err
		}
		f.nets = append(f.nets, net)
		f.spillers = append(f.spillers, sp)
	}
	return f, nil
}

// SetMaxHops overrides the spill budget (default metro.DefaultMaxHops).
func (f *FederatedNetwork) SetMaxHops(h int) {
	if h > 0 {
		f.maxHops = h
	}
}

// SetDistancePerMS sets the Eq. 18 locality coupling for spilled
// requests (0 disables it).
func (f *FederatedNetwork) SetDistancePerMS(d float64) { f.distMS = d }

// Metros returns the exchange count.
func (f *FederatedNetwork) Metros() int { return len(f.nets) }

// Net returns metro m's network.
func (f *FederatedNetwork) Net(m int) *Network { return f.nets[m] }

// Stats returns the routing counters.
func (f *FederatedNetwork) Stats() FederationStats { return f.stats }

// Home maps a location to its metro exchange.
func (f *FederatedNetwork) Home(loc bidding.Location) int {
	return metro.Home(loc, f.cellSize, len(f.nets))
}

// Close shuts every metro network down.
func (f *FederatedNetwork) Close() {
	for _, n := range f.nets {
		n.Close()
	}
}

// RunFederatedRound executes one cross-settlement round: pending spills
// are sealed by each metro's relay participant and injected into its
// mempool alongside the round's own submissions, every metro runs a
// full protocol round, and carry-out removals are harvested into the
// next round's spill inboxes. participants[m] must hold the
// participants that submitted bids to metro m this round. Metros with
// an empty mempool and no pending spills are skipped (nil result slot).
func (f *FederatedNetwork) RunFederatedRound(ctx context.Context, participants [][]*Participant) ([]*RoundResult, error) {
	if len(participants) != len(f.nets) {
		return nil, fmt.Errorf("miner: federation has %d metros, got %d participant groups", len(f.nets), len(participants))
	}
	f.stats.Rounds++
	results := make([]*RoundResult, len(f.nets))
	for m, net := range f.nets {
		parts := participants[m]
		if len(f.inbox[m]) > 0 {
			for _, r := range f.inbox[m] {
				bid, err := f.spillers[m].SubmitRequest(r)
				if err != nil {
					return nil, fmt.Errorf("miner: metro %d: seal spilled request %s: %w", m, r.ID, err)
				}
				if err := net.SubmitBid(bid); err != nil {
					return nil, fmt.Errorf("miner: metro %d: submit spilled request %s: %w", m, r.ID, err)
				}
			}
			parts = append(append([]*Participant{}, parts...), f.spillers[m])
			f.inbox[m] = nil
		}
		if net.MempoolSize() == 0 {
			continue
		}
		res, err := net.RunRound(ctx, parts)
		if err != nil {
			return nil, fmt.Errorf("miner: metro %d round: %w", m, err)
		}
		results[m] = res
	}

	// Harvest carry-outs in metro order — the same serial discipline as
	// metro.Federation.Round, so routing is deterministic given the
	// per-metro chains.
	for m, net := range f.nets {
		bk := net.Book()
		if bk == nil {
			continue
		}
		rem := bk.TakeRemovals()
		for _, r := range rem.CarriedRequests {
			f.spillOrDrop(r, m)
		}
	}
	return results, nil
}

// spillOrDrop routes one carried-out request to the lowest-latency
// unvisited neighbor within the hop budget, mirroring
// metro.Federation's spill rule.
func (f *FederatedNetwork) spillOrDrop(r *bidding.Request, from int) {
	st := f.state[r.ID]
	if st == nil {
		st = &fedSpillState{visited: 1 << uint(from), origin: from}
		f.state[r.ID] = st
	}
	st.visited |= 1 << uint(from)
	if st.hops >= f.maxHops {
		f.stats.SpillExpired++
		return
	}
	for _, to := range f.lat.Neighbors(from) {
		if st.visited&(1<<uint(to)) != 0 {
			continue
		}
		pathMS := st.pathMS + f.lat.Latency(from, to)
		rr := *r
		rr.Resources = r.Resources.Clone()
		if f.distMS > 0 && rr.MaxDistance > 0 {
			rr.MaxDistance -= f.distMS * pathMS
			if rr.MaxDistance <= 0 {
				break // monotone in latency: farther candidates only tighten more
			}
		}
		st.hops++
		st.pathMS = pathMS
		st.visited |= 1 << uint(to)
		f.inbox[to] = append(f.inbox[to], &rr)
		f.stats.Spills++
		return
	}
	f.stats.SpillExpired++
}

// SpillOrigin reports the home metro a spilled request originally
// carried out of; ok is false for requests that never spilled.
func (f *FederatedNetwork) SpillOrigin(id bidding.OrderID) (origin int, ok bool) {
	st := f.state[id]
	if st == nil {
		return 0, false
	}
	return st.origin, true
}

// Deny refuses an agreement settled on metro m, with federation-aware
// penalty routing: when the underlying request spilled in from another
// exchange, the agreement still settles (Denied) on metro m's registry
// — the chain that cleared it — but the reputational penalty is
// recorded in the ORIGIN metro's store via contract.DenyInto, so the
// client's standing decays where its future requests will be scored.
// Local (never-spilled) requests behave exactly as Registry.Deny.
func (f *FederatedNetwork) Deny(m int, id contract.AgreementID, caller bidding.ParticipantID) (bidding.ParticipantID, error) {
	if m < 0 || m >= len(f.nets) {
		return "", fmt.Errorf("miner: deny on metro %d of %d", m, len(f.nets))
	}
	reg := f.nets[m].Contracts()
	a, err := reg.Get(id)
	if err != nil {
		return "", err
	}
	rep := reg.Reputation()
	if origin, ok := f.SpillOrigin(bidding.OrderID(a.Record.RequestID)); ok && origin != m {
		rep = f.nets[origin].Contracts().Reputation()
	}
	return reg.DenyInto(id, caller, rep)
}

// CheckNoDoubleSettle audits the federation-wide uniqueness invariant
// across all metro chains: no request ID (after stripping nothing — IDs
// are preserved across spills) appears in the allocations of two
// different metros, and none is allocated twice within one.
func (f *FederatedNetwork) CheckNoDoubleSettle() error {
	settled := make(map[bidding.OrderID]int)
	for m, net := range f.nets {
		chain := net.Chain()
		for h := 0; h < chain.Len(); h++ {
			blk := chain.BlockAt(h)
			if blk == nil || blk.Body == nil {
				continue
			}
			records, err := ledger.DecodeAllocation(blk.Body.Allocation)
			if err != nil {
				return fmt.Errorf("miner: metro %d height %d: %w", m, h, err)
			}
			for _, rec := range records {
				id := bidding.OrderID(rec.RequestID)
				if prev, dup := settled[id]; dup {
					if prev != m {
						return fmt.Errorf("miner: request %s settled in metro %d and metro %d", id, prev, m)
					}
					return fmt.Errorf("miner: request %s settled twice in metro %d", id, m)
				}
				settled[id] = m
			}
		}
	}
	return nil
}
