package miner

import (
	"fmt"
	"sort"

	"decloud/internal/stats"
)

// Consensus selects how a round's block producer is chosen.
type Consensus int

// Consensus modes.
const (
	// ProofOfWork races all miners on the PoW puzzle (the default, as in
	// the paper's base design).
	ProofOfWork Consensus = iota
	// ProofOfStake elects a stake-weighted leader deterministically from
	// the previous block hash — the "green" alternative the paper's
	// Section VI anticipates (Casper/Sawtooth). Blocks carry difficulty 0.
	//
	// Caveat (documented, inherent to simple chained PoS): without a VRF
	// the leader is predictable one round ahead, and the block's
	// randomness is not grind-proof the way PoW evidence is.
	ProofOfStake
)

// String names the consensus mode for logs and round traces.
func (c Consensus) String() string {
	switch c {
	case ProofOfStake:
		return "pos"
	default:
		return "pow"
	}
}

// VerifyPolicy selects how non-producing miners check a block.
type VerifyPolicy int

// Verification policies.
const (
	// VerifyAll has every other miner re-execute every block (the
	// paper's base protocol).
	VerifyAll VerifyPolicy = iota
	// VerifySampled has each miner re-execute with probability
	// SampleProb, drawn deterministically from (block evidence, miner
	// name). If any sampler detects a mismatch it raises a challenge and
	// the whole network verifies — TrueBit's answer to the verifier's
	// dilemma that Section VI proposes adopting. With SampleProb 0 the
	// dilemma is realized: nobody checks, and a cheating producer wins.
	VerifySampled
)

// SelectLeader picks the proof-of-stake leader: a deterministic
// stake-weighted draw seeded by the previous block hash and height, so
// every node computes the same leader. Stakes must be positive; zero or
// missing stakes mean equal weight.
func SelectLeader(prevHash [32]byte, height int64, names []string, stakes map[string]float64) int {
	if len(names) == 0 {
		return -1
	}
	ordered := append([]string(nil), names...)
	sort.Strings(ordered)
	weights := make([]float64, len(ordered))
	var total float64
	for i, name := range ordered {
		w := stakes[name]
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	seed := append(append([]byte{}, prevHash[:]...), byte(height), byte(height>>8), byte(height>>16))
	rnd := stats.SubRand(seed, "pos-leader")
	x := rnd.Float64() * total
	choice := ordered[len(ordered)-1]
	for i, w := range weights {
		if x < w {
			choice = ordered[i]
			break
		}
		x -= w
	}
	for i, name := range names {
		if name == choice {
			return i
		}
	}
	return 0
}

// DefaultBlockReward is the per-block cryptotoken emission.
const DefaultBlockReward = 1.0

// Challenge records a sampled verifier's dispute of a block.
type Challenge struct {
	Height     int64
	Challenger string
	Err        string
}

func (c Challenge) String() string {
	return fmt.Sprintf("block %d challenged by %s: %s", c.Height, c.Challenger, c.Err)
}

// shouldSample decides deterministically whether a miner samples a block
// for verification: keyed by evidence and the miner's name so that no
// miner can predict another's draw, yet the decision is reproducible in
// tests.
func shouldSample(evidence []byte, name string, prob float64) bool {
	if prob >= 1 {
		return true
	}
	if prob <= 0 {
		return false
	}
	return stats.SubRand(evidence, "sample/"+name).Float64() < prob
}
