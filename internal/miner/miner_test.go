package miner

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/contract"
	"decloud/internal/ledger"
	"decloud/internal/resource"
	"decloud/internal/sealed"
)

const testDifficulty = 8

// detReader yields a deterministic byte stream for reproducible identities.
type detReader struct{ state [32]byte }

func newDetReader(seed string) *detReader {
	r := &detReader{}
	r.state = sha256.Sum256([]byte(seed))
	return r
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		r.state = sha256.Sum256(r.state[:])
		n += copy(p[n:], r.state[:])
	}
	return n, nil
}

func testParticipant(t *testing.T, seed string) *Participant {
	t.Helper()
	p, err := NewParticipant(newDetReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func request(id string, cpu, value float64) *bidding.Request {
	return &bidding.Request{
		ID:        bidding.OrderID(id),
		Resources: resource.Vector{resource.CPU: cpu, resource.RAM: cpu * 4},
		Start:     0, End: 100, Duration: 100,
		Bid: value, TrueValue: value,
	}
}

func offer(id string, cpu, cost float64) *bidding.Offer {
	return &bidding.Offer{
		ID:        bidding.OrderID(id),
		Resources: resource.Vector{resource.CPU: cpu, resource.RAM: cpu * 4},
		Start:     0, End: 100,
		Bid: cost, TrueCost: cost,
	}
}

// marketRound seeds a network with a standard tradable market: three
// clients (one will be the price setter), one provider.
func marketRound(t *testing.T, net *Network) []*Participant {
	t.Helper()
	alice := testParticipant(t, "alice")
	bob := testParticipant(t, "bob")
	zed := testParticipant(t, "zed")
	prov := testParticipant(t, "prov")

	submissions := []struct {
		p   *Participant
		req *bidding.Request
		off *bidding.Offer
	}{
		{p: alice, req: request("r-alice", 2, 10)},
		{p: bob, req: request("r-bob", 2, 8)},
		{p: zed, req: request("r-zed", 2, 2)}, // the marginal price setter
		{p: prov, off: offer("o-prov", 8, 1)},
	}
	for _, s := range submissions {
		var bid *sealed.Bid
		var err error
		if s.req != nil {
			bid, err = s.p.SubmitRequest(s.req)
		} else {
			bid, err = s.p.SubmitOffer(s.off)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
	}
	return []*Participant{alice, bob, zed, prov}
}

func TestFullProtocolRound(t *testing.T) {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)

	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if res.Winner == "" {
		t.Fatal("no winning miner")
	}
	if net.Chain().Len() != 1 {
		t.Fatalf("chain length = %d", net.Chain().Len())
	}
	if len(res.Outcome.Matches) == 0 {
		t.Fatal("no trades on chain")
	}
	if res.Unrevealed != 0 || res.RejectedBids != 0 {
		t.Fatalf("unexpected drops: unrevealed=%d rejected=%d", res.Unrevealed, res.RejectedBids)
	}
	// The block is fully valid and carries the allocation.
	block := net.Chain().Head()
	if err := block.Validate(); err != nil {
		t.Fatal(err)
	}
	records, err := ledger.DecodeAllocation(block.Body.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.Outcome.Matches) {
		t.Fatal("allocation records do not match outcome")
	}
	// Agreements proposed for every match.
	if len(res.Agreements) != len(res.Outcome.Matches) {
		t.Fatalf("agreements = %d, matches = %d", len(res.Agreements), len(res.Outcome.Matches))
	}
}

func TestClientsAcceptAgreements(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatal(err)
	}
	reg := net.Contracts()
	for _, id := range res.Agreements {
		a, err := reg.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Accept(id, a.Client()); err != nil {
			t.Fatalf("accept %s: %v", id, err)
		}
	}
	counts := reg.CountByStatus()
	if counts[contract.Agreed] != len(res.Agreements) {
		t.Fatalf("agreed = %d", counts[contract.Agreed])
	}
}

func TestClientDenyTriggersPenalty(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatal(err)
	}
	reg := net.Contracts()
	a, err := reg.Get(res.Agreements[0])
	if err != nil {
		t.Fatal(err)
	}
	provider, err := reg.Deny(a.ID, a.Client())
	if err != nil {
		t.Fatal(err)
	}
	if provider == "" {
		t.Fatal("deny must name the provider to notify")
	}
	if reg.Reputation().Score(a.Client()) >= 1 {
		t.Fatal("denial should cost reputation")
	}
}

func TestCheatingMinerRejected(t *testing.T) {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	// The winning miner inflates the first payment before broadcast.
	net.TamperBody = func(_ string, b *ledger.Body) {
		records, err := ledger.DecodeAllocation(b.Allocation)
		if err != nil || len(records) == 0 {
			return
		}
		records[0].Payment *= 10
		forged, _ := encodeRecords(records)
		*b = *ledger.NewBody(b.Reveals, forged)
	}
	_, err := net.RunRound(context.Background(), participants)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("tampered block should be rejected by verifiers, got %v", err)
	}
	if net.Chain().Len() != 0 {
		t.Fatal("tampered block reached the chain")
	}
}

func TestTamperedAllocationHashRejected(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	// Tamper with allocation bytes but not the hash: structural check fails.
	net.TamperBody = func(_ string, b *ledger.Body) {
		b.Allocation = append(b.Allocation, ' ')
	}
	_, err := net.RunRound(context.Background(), participants)
	if err == nil {
		t.Fatal("hash-inconsistent body accepted")
	}
	if net.Chain().Len() != 0 {
		t.Fatal("invalid block on chain")
	}
}

func TestUnrevealedBidExcluded(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	// A fifth participant submits but never reveals (not passed to RunRound).
	ghost := testParticipant(t, "ghost")
	bid, err := ghost.SubmitRequest(request("r-ghost", 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SubmitBid(bid); err != nil {
		t.Fatal(err)
	}
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unrevealed != 1 {
		t.Fatalf("unrevealed = %d, want 1", res.Unrevealed)
	}
	// The ghost's request must not appear in the allocation.
	records, _ := ledger.DecodeAllocation(net.Chain().Head().Body.Allocation)
	for _, rec := range records {
		if rec.RequestID == "r-ghost" {
			t.Fatal("unrevealed bid traded")
		}
	}
}

func TestForgedBidRejectedAtSubmission(t *testing.T) {
	net := NewNetwork(1, testDifficulty, auction.DefaultConfig())
	p := testParticipant(t, "p")
	bid, err := p.SubmitRequest(request("r", 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	bid.Envelope[0] ^= 1 // break the signature binding
	if err := net.SubmitBid(bid); !errors.Is(err, ErrBadBid) {
		t.Fatalf("forged bid accepted: %v", err)
	}
}

func TestImpersonatedOrderDropped(t *testing.T) {
	// An order claiming another participant's identity decrypts fine but
	// must be rejected because the owner field does not match the signer.
	mallory := testParticipant(t, "mallory")
	victim := testParticipant(t, "victim")

	r := request("r-fake", 2, 5)
	r.Client = victim.ID() // forged owner
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sealed.NewTempKeyFrom(newDetReader("k"))
	bid, err := sealed.SealBid(mallory.identity, data, key, newDetReader("n"))
	if err != nil {
		t.Fatal(err)
	}
	reveal := sealed.NewKeyReveal(mallory.identity, bid, key)
	res := DecryptOrders([]*sealed.Bid{bid}, []*sealed.KeyReveal{reveal})
	if res.Rejected != 1 || len(res.Requests) != 0 {
		t.Fatalf("impersonated order not dropped: %+v", res)
	}
}

func TestEmptyMempoolRound(t *testing.T) {
	net := NewNetwork(1, testDifficulty, auction.DefaultConfig())
	if _, err := net.RunRound(context.Background(), nil); !errors.Is(err, ErrEmptyMempool) {
		t.Fatalf("empty round: %v", err)
	}
}

func TestMultipleRoundsChainGrowth(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	for round := 0; round < 3; round++ {
		participants := marketRound(t, net)
		res, err := net.RunRound(context.Background(), participants)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Block.Preamble.Height != int64(round) {
			t.Fatalf("height = %d, want %d", res.Block.Preamble.Height, round)
		}
	}
	if net.Chain().Len() != 3 {
		t.Fatalf("chain length = %d", net.Chain().Len())
	}
	// Linkage is intact.
	for i := 1; i < 3; i++ {
		prev := net.Chain().BlockAt(i - 1).Preamble.Hash()
		if net.Chain().BlockAt(i).Preamble.PrevHash != prev {
			t.Fatalf("linkage broken at %d", i)
		}
	}
}

func TestVerifierIndependentRecompute(t *testing.T) {
	// A fresh miner that saw none of the round can verify the block from
	// its contents alone.
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	participants := marketRound(t, net)
	if _, err := net.RunRound(context.Background(), participants); err != nil {
		t.Fatal(err)
	}
	outsider := &Miner{Name: "outsider", Difficulty: testDifficulty, AuctionCfg: auction.DefaultConfig()}
	if err := outsider.VerifyBlock(net.Chain().Head()); err != nil {
		t.Fatalf("outsider verification failed: %v", err)
	}
}

func encodeRecords(records []ledger.AllocationRecord) ([]byte, error) {
	return json.Marshal(records)
}
