package miner

import (
	"context"
	"errors"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/chaos"
	"decloud/internal/ledger"
	"decloud/internal/obs"
)

// crashAll builds a plan that keeps every named miner crashed for the
// first rounds of the network's logical clock.
func crashAll(t *testing.T, names []string) *chaos.Plan {
	t.Helper()
	p := &chaos.Plan{}
	for _, name := range names {
		p.Crashes = append(p.Crashes, chaos.Crash{
			Window: chaos.Window{From: 0, Until: 10},
			Node:   name,
		})
	}
	return p
}

// TestByzantineProducerMatrix exercises graceful degradation against a
// Byzantine block producer across every Consensus × VerifyPolicy
// combination and two attack bodies:
//
//   - corrupt-body: the allocation bytes are mutated without re-hashing,
//     so Block.Validate fails structurally under any policy;
//   - forged-allocation: the allocation is re-encoded with an inflated
//     payment and a matching hash, so only independent re-execution by
//     the verifiers (full or challenge-escalated sampling) catches it.
//
// In every cell the round must converge on an honest producer, slash the
// offender exactly once, keep it off the reward, and leave a single
// verified block on the chain.
func TestByzantineProducerMatrix(t *testing.T) {
	attacks := []struct {
		name   string
		mutate func(t *testing.T, b *ledger.Body)
	}{
		{"corrupt-body", func(t *testing.T, b *ledger.Body) {
			b.Allocation = append(b.Allocation, ' ')
		}},
		{"forged-allocation", func(t *testing.T, b *ledger.Body) {
			records, err := ledger.DecodeAllocation(b.Allocation)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) == 0 {
				t.Fatal("no allocation to forge")
			}
			records[0].Payment *= 10
			forged, err := encodeRecords(records)
			if err != nil {
				t.Fatal(err)
			}
			*b = *ledger.NewBody(b.Reveals, forged)
		}},
	}
	consensuses := []struct {
		name string
		c    Consensus
	}{
		{"pow", ProofOfWork},
		{"pos", ProofOfStake},
	}
	policies := []struct {
		name string
		p    VerifyPolicy
		prob float64
	}{
		{"verify-all", VerifyAll, 0},
		{"sampled", VerifySampled, 1},
	}

	for _, cons := range consensuses {
		for _, pol := range policies {
			for _, atk := range attacks {
				t.Run(cons.name+"/"+pol.name+"/"+atk.name, func(t *testing.T) {
					net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
					net.Consensus = cons.c
					net.Policy = pol.p
					net.SampleProb = pol.prob
					reg := obs.NewRegistry()
					net.Obs = obs.NewMinerMetrics(reg)
					// The first producer to win the round turns Byzantine;
					// re-elected producers stay honest.
					var offender string
					net.TamperBody = func(producer string, b *ledger.Body) {
						if offender == "" {
							offender = producer
						}
						if producer == offender {
							atk.mutate(t, b)
						}
					}
					parts := marketRound(t, net)
					res, err := net.RunRound(context.Background(), parts)
					if err != nil {
						t.Fatalf("round did not converge past the Byzantine producer: %v", err)
					}
					if res.Winner == offender {
						t.Fatalf("Byzantine producer %s won the round", offender)
					}
					if len(res.Offenders) != 1 || res.Offenders[0] != offender {
						t.Fatalf("Offenders = %v, want [%s]", res.Offenders, offender)
					}
					if got := net.Slashed[offender]; got != 1 {
						t.Fatalf("offender slashed %d times, want exactly 1", got)
					}
					if got := reg.CounterValue("decloud_miner_slashes_total"); got != 1 {
						t.Fatalf("slashes_total metric = %d, want exactly 1", got)
					}
					if got := reg.CounterValue("decloud_miner_rejected_bids_total"); got != 0 {
						t.Fatalf("rejected_bids_total = %d on an honest re-election, want 0", got)
					}
					if got := net.Balances[offender]; got != 0 {
						t.Fatalf("offender earned %v despite rejection", got)
					}
					if net.Chain().Len() != 1 {
						t.Fatalf("chain length %d, want 1", net.Chain().Len())
					}
					if len(res.Outcome.Matches) == 0 {
						t.Fatal("converged round produced no trades")
					}
					if pol.p == VerifySampled && atk.name == "forged-allocation" && len(net.Challenges) == 0 {
						t.Fatal("sampled verifiers raised no challenge against a forged allocation")
					}
				})
			}
		}
	}
}

// TestStalePreambleReplayRejected replays an already-final block into the
// chain: linkage validation must reject it without touching the replica.
func TestStalePreambleReplayRejected(t *testing.T) {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	parts := marketRound(t, net)
	if _, err := net.RunRound(context.Background(), parts); err != nil {
		t.Fatal(err)
	}
	head := net.Chain().Head()
	if err := net.Chain().Append(head, nil); !errors.Is(err, ledger.ErrBadLinkage) {
		t.Fatalf("replayed block: err = %v, want ErrBadLinkage", err)
	}
	if net.Chain().Len() != 1 {
		t.Fatalf("replay changed the chain: length %d", net.Chain().Len())
	}
}

// TestAllMinersCrashedFailsCleanly pins the error path when the fault
// plan takes every miner offline for the round.
func TestAllMinersCrashedFailsCleanly(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	net.Faults = crashAll(t, []string{"miner-00", "miner-01"})
	parts := marketRound(t, net)
	_, err := net.RunRound(context.Background(), parts)
	if !errors.Is(err, ErrAllCrashed) {
		t.Fatalf("err = %v, want ErrAllCrashed", err)
	}
	if net.Chain().Len() != 0 {
		t.Fatal("crashed network appended a block")
	}
}
