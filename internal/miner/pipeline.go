package miner

import (
	"context"
	"fmt"
	"time"

	"decloud/internal/ledger"
	"decloud/internal/obs"
	"decloud/internal/sealed"
)

// This file implements the epoch pipeline: overlapping round n+1's
// bidding phase (mempool drain, leader election / PoW race, key-reveal
// collection) with round n's execution phase (allocation, verification,
// append). The overlap is sound because a block's identity is fixed by
// its preamble alone — Chain.HeadHash is the head *preamble* hash — so
// round n+1 can be produced against block n the moment n's production
// finishes, while n's body is still being computed and verified.
//
// The pipeline is speculative, never optimistic about consensus: if the
// committed head turns out to differ from the speculated parent (a
// Byzantine producer was rejected and the round re-mined under PoW, or
// the previous round failed outright), the in-flight production is
// flushed and redone against the real head. Reveal verdicts are keyed
// on (round, attempt, producer, digest), so a redo collects exactly the
// reveals a sequential round would have — pipelining can change wall
// clock, never bytes.

// PipelinedRound is one round's (result, error) pair — exactly what a
// sequential loop over RunRound would have produced for that round.
type PipelinedRound struct {
	Round  int
	Result *RoundResult
	Err    error
}

// pipelineStage carries one round's state across the two stages.
type pipelineStage struct {
	round        int
	bids         []*sealed.Bid
	timestamp    int64
	participants []*Participant
	crashed      map[int]bool
	tr           *obs.RoundTrace
	roundStart   time.Time

	// Filled by produceStage.
	winnerIdx int
	block     *ledger.Block
	reveals   []*sealed.KeyReveal
	excluded  [][32]byte
	attempts  int
}

// RunPipelined executes rounds protocol rounds as a bounded two-stage
// pipeline. feed is called at the top of each round to submit that
// round's sealed bids and return the reveal endpoints; it must not
// depend on the previous round's commit (which may still be in flight).
// Rounds that fail (empty mempool, every miner crashed, no producer
// converging) record their error and the pipeline moves on, like a
// sequential driver that logs RunRound errors and continues. Results
// are returned in round order.
func (n *Network) RunPipelined(ctx context.Context, rounds int, feed func(round int) []*Participant) ([]*PipelinedRound, error) {
	if len(n.miners) == 0 {
		return nil, ErrNoMiners
	}
	results := make([]*PipelinedRound, 0, rounds)

	type commitOut struct {
		round int
		res   *RoundResult
		err   error
	}
	var pending chan commitOut
	join := func() {
		if pending == nil {
			return
		}
		out := <-pending
		pending = nil
		results = append(results, &PipelinedRound{Round: out.round, Result: out.res, Err: out.err})
	}

	// The speculated parent: the preamble hash and next height of the
	// newest *produced* block, whether or not it has committed yet.
	specPrev := n.chain.HeadHash()
	var specHeight int64
	if head := n.chain.Head(); head != nil {
		specHeight = head.Preamble.Height + 1
	}

	for r := 0; r < rounds; r++ {
		var participants []*Participant
		if feed != nil {
			participants = feed(r)
		}
		n.mu.Lock()
		bids := n.mempool
		n.mempool = nil
		n.clock++
		timestamp := n.clock
		n.mu.Unlock()
		if len(bids) == 0 {
			join()
			results = append(results, &PipelinedRound{Round: r, Err: ErrEmptyMempool})
			continue
		}

		tr := n.Tracer.StartRound(timestamp)
		roundStart := obsNow(n.Obs)
		if n.Obs != nil {
			n.Obs.Rounds.Inc()
		}
		crashed := make(map[int]bool)
		for i, m := range n.miners {
			if n.Faults.Crashed(timestamp, m.Name) {
				crashed[i] = true
			}
		}
		st := &pipelineStage{
			round: r, bids: bids, timestamp: timestamp,
			participants: participants, crashed: crashed,
			tr: tr, roundStart: roundStart,
		}

		// Stage 1 against the speculated parent, overlapping the
		// previous round's in-flight commit.
		produceStart := obsNow(n.Obs)
		err := n.produceStage(ctx, st, specPrev, specHeight, nil)
		if n.Obs != nil {
			n.Obs.ProduceSeconds.Observe(time.Since(produceStart).Seconds())
		}

		// Join the previous commit; its final head decides whether the
		// speculation held.
		join()
		if err != nil {
			tr.End()
			results = append(results, &PipelinedRound{Round: r, Err: err})
			specPrev = n.chain.HeadHash()
			if head := n.chain.Head(); head != nil {
				specHeight = head.Preamble.Height + 1
			}
			continue
		}
		if realPrev := n.chain.HeadHash(); st.block.Preamble.PrevHash != realPrev {
			// The chain diverged from the speculation — a Byzantine
			// rejection re-mined the parent, or the parent round failed.
			// Flush the in-flight production and redo it on the real head.
			if n.Obs != nil {
				n.Obs.PipelineFlushes.Inc()
			}
			var realHeight int64
			if head := n.chain.Head(); head != nil {
				realHeight = head.Preamble.Height + 1
			}
			tr.Event("pipeline_flushed", map[string]any{
				"speculated_height": st.block.Preamble.Height, "height": realHeight,
			})
			if err := n.produceStage(ctx, st, realPrev, realHeight, nil); err != nil {
				tr.End()
				results = append(results, &PipelinedRound{Round: r, Err: err})
				specPrev, specHeight = realPrev, realHeight
				continue
			}
		}
		specPrev = st.block.Preamble.Hash()
		specHeight = st.block.Preamble.Height + 1

		ch := make(chan commitOut, 1)
		pending = ch
		commit := func(st *pipelineStage) {
			commitStart := obsNow(n.Obs)
			res, err := n.commitStage(ctx, st)
			if n.Obs != nil {
				n.Obs.CommitSeconds.Observe(time.Since(commitStart).Seconds())
			}
			st.tr.End()
			ch <- commitOut{round: st.round, res: res, err: err}
		}
		if n.track() {
			go func(st *pipelineStage) {
				defer n.wg.Done()
				commit(st)
			}(st)
		} else {
			commit(st) // network closing: finish the round inline
		}
	}
	join()
	return results, nil
}

// produceStage runs one round's bidding phase against an explicit
// parent: elect or race among the non-crashed, non-barred miners, then
// collect key reveals for the produced block.
func (n *Network) produceStage(ctx context.Context, st *pipelineStage, prevHash [32]byte, height int64, barred map[int]bool) error {
	var eligible []int
	for i := range n.miners {
		if !st.crashed[i] && !barred[i] {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return ErrAllCrashed
	}
	var err error
	switch n.Consensus {
	case ProofOfStake:
		st.winnerIdx, st.block = n.electLeaderAt(prevHash, height, eligible, st.bids, st.timestamp)
	default:
		st.winnerIdx, st.block, err = n.raceAt(ctx, prevHash, height, eligible, st.bids, st.timestamp)
		if err != nil {
			return err
		}
	}
	winner := n.miners[st.winnerIdx]
	st.tr.Event("preamble_sealed", map[string]any{
		"producer": winner.Name, "height": st.block.Preamble.Height, "bids": len(st.block.Bids),
	})
	st.tr.Event("consensus_decided", map[string]any{
		"consensus": n.Consensus.String(), "producer": winner.Name,
	})
	st.reveals, st.excluded, st.attempts = n.revealStage(st.block, st.participants, st.timestamp, winner.Name, st.tr)
	return nil
}

// revealStage wraps collectReveals with the same observability RunRound
// records, so pipelined and sequential rounds emit identical metrics.
func (n *Network) revealStage(block *ledger.Block, participants []*Participant, round int64, producer string, tr *obs.RoundTrace) ([]*sealed.KeyReveal, [][32]byte, int) {
	revealStart := obsNow(n.Obs)
	reveals, excluded, attempts := n.collectReveals(block, participants, round, producer)
	if n.Obs != nil {
		n.Obs.RevealSeconds.Observe(time.Since(revealStart).Seconds())
		n.Obs.RevealAttempts.Add(int64(attempts))
		n.Obs.RevealRetries.Add(int64(attempts - 1))
		n.Obs.ExcludedBids.Add(int64(len(excluded)))
	}
	tr.Event("reveals_collected", map[string]any{
		"attempts": attempts, "retries": attempts - 1,
		"revealed": len(reveals), "excluded": len(excluded),
	})
	return reveals, excluded, attempts
}

// commitStage runs one round's execution phase: compute the body,
// verify by policy, append, and on rejection slash, bar, and re-elect —
// the same Byzantine-degradation loop as RunRound, now against the
// round's fixed parent (the previous round has fully committed before a
// commit starts, so re-elections here never chase a moving head).
func (n *Network) commitStage(ctx context.Context, st *pipelineStage) (*RoundResult, error) {
	// Commits run strictly one at a time (the pipeline joins the previous
	// commit before launching the next), so the books advance in block
	// order even though production overlaps.
	if err := n.syncBooks(); err != nil {
		return nil, fmt.Errorf("miner: pre-commit book sync: %w", err)
	}
	var offenders []string
	var lastErr error
	barred := make(map[int]bool)
	winnerIdx, block := st.winnerIdx, st.block
	reveals, excluded, attempts := st.reveals, st.excluded, st.attempts
	var verifiers []int
	for i := range n.miners {
		if !st.crashed[i] {
			verifiers = append(verifiers, i)
		}
	}
	for {
		winner := n.miners[winnerIdx]
		computeStart := obsNow(n.Obs)
		outcome, err := winner.ComputeBody(block, reveals)
		if err != nil {
			return nil, fmt.Errorf("miner: compute body: %w", err)
		}
		dec := DecryptOrders(block.Bids, reveals)
		if n.Obs != nil {
			n.Obs.ComputeSeconds.Observe(time.Since(computeStart).Seconds())
			n.Obs.UnrevealedBids.Add(int64(dec.Unrevealed))
			n.Obs.RejectedBids.Add(int64(dec.Rejected))
		}
		st.tr.Event("allocation_computed", map[string]any{
			"matches": len(outcome.Matches), "unrevealed": dec.Unrevealed, "rejected": dec.Rejected,
		})

		if n.TamperBody != nil {
			n.TamperBody(winner.Name, block.Body)
		}

		verifyStart := obsNow(n.Obs)
		err = n.chain.Append(block, func(b *ledger.Block) error {
			return n.verifyByPolicy(b, winnerIdx, verifiers)
		})
		if n.Obs != nil {
			n.Obs.VerifySeconds.Observe(time.Since(verifyStart).Seconds())
		}
		if err != nil {
			n.Slashed[winner.Name]++
			offenders = append(offenders, winner.Name)
			barred[winnerIdx] = true
			lastErr = err
			if n.Obs != nil {
				n.Obs.Slashes.Inc()
			}
			st.tr.Event("denied", map[string]any{"producer": winner.Name, "error": err.Error()})
			st.tr.Event("slashed", map[string]any{"producer": winner.Name})

			var eligible []int
			for _, i := range verifiers {
				if !barred[i] {
					eligible = append(eligible, i)
				}
			}
			if len(eligible) == 0 {
				return nil, fmt.Errorf("miner: no producer converged after %d rejection(s): %w", len(offenders), lastErr)
			}
			prev, height := block.Preamble.PrevHash, block.Preamble.Height
			switch n.Consensus {
			case ProofOfStake:
				winnerIdx, block = n.electLeaderAt(prev, height, eligible, st.bids, st.timestamp)
			default:
				winnerIdx, block, err = n.raceAt(ctx, prev, height, eligible, st.bids, st.timestamp)
				if err != nil {
					return nil, err
				}
			}
			reveals, excluded, attempts = n.revealStage(block, st.participants, st.timestamp, n.miners[winnerIdx].Name, st.tr)
			continue
		}
		st.tr.Event("verified", map[string]any{"producer": winner.Name, "verifiers": len(verifiers) - 1})

		if err := n.syncBooks(); err != nil {
			return nil, fmt.Errorf("miner: post-append book sync: %w", err)
		}

		n.Balances[winner.Name] += n.BlockReward
		if n.Obs != nil {
			n.Obs.BlocksAccepted.Inc()
			n.Obs.RoundSeconds.Observe(time.Since(st.roundStart).Seconds())
		}

		ids := n.registry.ProposeFromBlock(block.Preamble.Height, mustDecode(block.Body.Allocation))
		return &RoundResult{
			Block:           block,
			Outcome:         outcome,
			Winner:          winner.Name,
			Agreements:      ids,
			Unrevealed:      dec.Unrevealed,
			RejectedBids:    dec.Rejected,
			ExcludedDigests: excluded,
			RevealAttempts:  attempts,
			Offenders:       offenders,
		}, nil
	}
}
