package miner

import (
	"bytes"
	"context"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/ledger"
)

func incrementalConfig() auction.Config {
	cfg := auction.DefaultConfig()
	cfg.Incremental = true
	return cfg
}

// TestIncrementalFirstBlockMatchesFromScratch: over an empty book the
// incremental clear IS the from-scratch mechanism, so the first block
// body must be byte-identical between an incremental network and a
// plain one fed the same bids. Proof-of-stake keeps the block preamble
// (and with it the PoW evidence) deterministic across both networks.
func TestIncrementalFirstBlockMatchesFromScratch(t *testing.T) {
	run := func(cfg auction.Config) []byte {
		net := NewNetwork(3, 0, cfg)
		net.Consensus = ProofOfStake
		participants := marketRound(t, net)
		if _, err := net.RunRound(context.Background(), participants); err != nil {
			t.Fatalf("round failed: %v", err)
		}
		return net.Chain().Head().Body.Allocation
	}
	plain := run(auction.DefaultConfig())
	incr := run(incrementalConfig())
	if !bytes.Equal(plain, incr) {
		t.Fatal("incremental first block diverges from the from-scratch body")
	}
}

// TestIncrementalCarryAcrossBlocks: a request that finds no supply in
// block 1 stays in every miner's book and matches in block 2 against an
// offer revealed only then — the resubmission loop the simulator used
// to run is now protocol state, and all verifiers accept the block even
// though the matched request is not among its bids.
func TestIncrementalCarryAcrossBlocks(t *testing.T) {
	net := NewNetwork(3, 0, incrementalConfig())
	net.Consensus = ProofOfStake

	alice := testParticipant(t, "alice")
	bob := testParticipant(t, "bob")
	zed := testParticipant(t, "zed")
	prov := testParticipant(t, "prov")

	// Round 1: demand only — a full tradable demand side (zed is the
	// marginal price setter trade reduction drops), but no supply.
	for _, s := range []struct {
		p   *Participant
		req *bidding.Request
	}{
		{alice, request("r-alice", 2, 10)},
		{bob, request("r-bob", 2, 8)},
		{zed, request("r-zed", 2, 2)},
	} {
		bid, err := s.p.SubmitRequest(s.req)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
	}
	res1, err := net.RunRound(context.Background(), []*Participant{alice, bob, zed})
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if len(res1.Outcome.Matches) != 0 {
		t.Fatal("round 1 should not match: no offers")
	}

	// Round 2: supply only — the carried requests must clear even though
	// none of their bids is in block 2.
	bid, err := prov.SubmitOffer(offer("o-late", 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SubmitBid(bid); err != nil {
		t.Fatal(err)
	}
	res2, err := net.RunRound(context.Background(), []*Participant{prov})
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if len(res2.Outcome.Matches) == 0 {
		t.Fatal("round 2: carried requests did not clear against the late offer")
	}
	for _, m := range res2.Outcome.Matches {
		if m.Request.ID != "r-alice" && m.Request.ID != "r-bob" {
			t.Fatalf("round 2 matched unexpected request %s", m.Request.ID)
		}
	}
	if net.Chain().Len() != 2 {
		t.Fatalf("chain length = %d", net.Chain().Len())
	}
}

// TestIncrementalCheaterRejected: a tampered body in incremental mode
// is caught by the verifiers' own book previews, the producer is
// slashed, and the re-elected round converges — the trial previews must
// roll back cleanly or the books would diverge and poison the round.
func TestIncrementalCheaterRejected(t *testing.T) {
	net := NewNetwork(3, testDifficulty, incrementalConfig())
	participants := marketRound(t, net)

	// Only the first producer cheats; the re-elected one is honest.
	tampered := false
	net.TamperBody = func(_ string, b *ledger.Body) {
		if tampered {
			return
		}
		tampered = true
		records, err := ledger.DecodeAllocation(b.Allocation)
		if err != nil || len(records) == 0 {
			return
		}
		records[0].Payment *= 10
		forged, _ := encodeRecords(records)
		*b = *ledger.NewBody(b.Reveals, forged)
	}
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatalf("round should converge after re-election: %v", err)
	}
	if len(res.Offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly the cheater", res.Offenders)
	}
	if net.Chain().Len() != 1 {
		t.Fatalf("chain length = %d", net.Chain().Len())
	}
	if len(res.Outcome.Matches) == 0 {
		t.Fatal("honest re-election produced no trades")
	}
}
