package miner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/chaos"
	"decloud/internal/ledger"
	"decloud/internal/obs"
)

// pipelineRounds is the epoch count each pipelined schedule runs.
const pipelineRounds = 6

// seqRound mirrors what PipelinedRound records, produced by a plain
// sequential RunRound loop — the oracle the pipeline is compared to.
type seqRound struct {
	winner   string
	errText  string
	excluded [][32]byte
	attempts int
}

func roundSnapshot(res *RoundResult, err error) seqRound {
	s := seqRound{}
	if err != nil {
		s.errText = err.Error()
	}
	if res != nil {
		s.winner = res.Winner
		s.excluded = res.ExcludedDigests
		s.attempts = res.RevealAttempts
	}
	return s
}

// chainDigests marshals every block of the chain to canonical JSON — the
// bytes a verifying peer would compare.
func chainDigests(t *testing.T, net *Network) []string {
	t.Helper()
	var out []string
	for i := 0; i < net.Chain().Len(); i++ {
		data, err := json.Marshal(net.Chain().BlockAt(i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(data))
	}
	return out
}

// tamperFirstByte corrupts every allocation the target miner produces —
// a persistent Byzantine producer.
func tamperFirstByte(target string) func(string, *ledger.Body) {
	return func(producer string, b *ledger.Body) {
		if producer == target && len(b.Allocation) > 0 {
			b.Allocation[0] ^= 0xff
		}
	}
}

// tamperOnce corrupts only the first body produced across the whole run.
func tamperOnce(flag *bool) func(string, *ledger.Body) {
	return func(producer string, b *ledger.Body) {
		if !*flag && len(b.Allocation) > 0 {
			*flag = true
			b.Allocation[0] ^= 0xff
		}
	}
}

// newPipelineTestNet builds one PoS soak network; when tamper is set,
// every body produced by miner-00 is corrupted, forcing the Byzantine
// re-election loop inside the pipeline's commit stage.
func newPipelineTestNet(seed int64, tamper bool) *Network {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.Faults = chaos.SoakPlan(seed, soakMinerNames)
	if tamper {
		net.TamperBody = tamperFirstByte("miner-00")
	}
	return net
}

// TestPipelinedEquivalenceSoak sweeps chaos schedules through multi-round
// markets twice — once as a sequential RunRound loop, once through the
// two-stage epoch pipeline — and asserts the chains are byte-identical
// block for block and every round reports the same (winner, error,
// excluded set, attempts). Pipelining may only change wall clock, never
// bytes: this is the pipeline's acceptance property.
func TestPipelinedEquivalenceSoak(t *testing.T) {
	schedules := soakSchedules(t, 14, 5)
	before := runtime.NumGoroutine()
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			tamper := seed%3 == 0

			seqNet := newPipelineTestNet(seed, tamper)
			var seq []seqRound
			for r := 0; r < pipelineRounds; r++ {
				parts := soakMarket(t, seqNet, seed*100+int64(r))
				res, err := seqNet.RunRound(context.Background(), parts)
				seq = append(seq, roundSnapshot(res, err))
			}

			pipNet := newPipelineTestNet(seed, tamper)
			rounds, err := pipNet.RunPipelined(context.Background(), pipelineRounds, func(r int) []*Participant {
				return soakMarket(t, pipNet, seed*100+int64(r))
			})
			if err != nil {
				t.Fatalf("pipelined run failed outright: %v", err)
			}
			pipNet.Close()

			if len(rounds) != len(seq) {
				t.Fatalf("pipeline returned %d rounds, sequential ran %d", len(rounds), len(seq))
			}
			for r := range seq {
				got := roundSnapshot(rounds[r].Result, rounds[r].Err)
				if got.winner != seq[r].winner {
					t.Fatalf("round %d: winner %q, sequential elected %q", r, got.winner, seq[r].winner)
				}
				if got.errText != seq[r].errText {
					t.Fatalf("round %d: error %q, sequential %q", r, got.errText, seq[r].errText)
				}
				if !equalDigests(got.excluded, seq[r].excluded) {
					t.Fatalf("round %d: pipelined excluded %x, sequential %x", r, got.excluded, seq[r].excluded)
				}
				if got.attempts != seq[r].attempts {
					t.Fatalf("round %d: %d reveal attempts, sequential %d", r, got.attempts, seq[r].attempts)
				}
			}
			seqChain, pipChain := chainDigests(t, seqNet), chainDigests(t, pipNet)
			if len(seqChain) != len(pipChain) {
				t.Fatalf("chain lengths diverge: %d vs %d", len(seqChain), len(pipChain))
			}
			for i := range seqChain {
				if seqChain[i] != pipChain[i] {
					t.Fatalf("block %d bytes diverge between sequential and pipelined runs", i)
				}
			}
			// Cross-verification: an outsider accepts the pipelined head by
			// independent re-execution.
			if head := pipNet.Chain().Head(); head != nil {
				cfg := auction.DefaultConfig()
				cfg.Reputation = seqNet.Contracts().Reputation()
				outsider := &Miner{Name: "outsider", Difficulty: testDifficulty, AuctionCfg: cfg}
				if err := outsider.VerifyBlock(head); err != nil {
					t.Fatalf("outsider rejects the pipelined head: %v", err)
				}
			}
		})
	}
	checkGoroutineLeaks(t, before)
}

// TestPipelinedFlushOnReElection forces a mid-pipeline re-election under
// proof-of-work: round 0's first body is corrupted, the verifiers reject
// it, and the honest re-mine lands in a different nonce region (the
// original producer is barred and regions are per-miner), so the head
// hash no longer matches the parent round 1 speculated on. The pipeline
// must flush the in-flight stage, redo it against the real head, and
// still converge to a fully linked chain.
func TestPipelinedFlushOnReElection(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Obs = obs.NewMinerMetrics(reg)
	var tampered bool
	net.TamperBody = tamperOnce(&tampered)

	rounds, err := net.RunPipelined(context.Background(), 3, func(r int) []*Participant {
		return soakMarket(t, net, 7000+int64(r))
	})
	if err != nil {
		t.Fatalf("pipelined PoW run failed: %v", err)
	}
	net.Close()

	for r, pr := range rounds {
		if pr.Err != nil {
			t.Fatalf("round %d failed: %v", r, pr.Err)
		}
	}
	if net.Chain().Len() != 3 {
		t.Fatalf("chain holds %d blocks, want 3", net.Chain().Len())
	}
	if rounds[0].Result == nil || len(rounds[0].Result.Offenders) == 0 {
		t.Fatal("round 0 never saw the Byzantine rejection the test injected")
	}
	if got := reg.CounterValue("decloud_miner_pipeline_flushes_total"); got < 1 {
		t.Fatalf("pipeline_flushes_total = %d: the re-mined parent must have flushed round 1's speculation", got)
	}
	// Linkage: each block references its predecessor's preamble hash.
	for i := 1; i < net.Chain().Len(); i++ {
		prev := net.Chain().BlockAt(i - 1).Preamble.Hash()
		if net.Chain().BlockAt(i).Preamble.PrevHash != prev {
			t.Fatalf("block %d does not link to its parent", i)
		}
	}
	checkGoroutineLeaks(t, before)
}

// TestCloseAbortsRevealBackoff pins the shutdown fix: a round sleeping
// in the reveal retry backoff must be woken by Close instead of holding
// the network open for the full backoff (mirroring the p2p reconnect
// timer fix). The blocked reveal forces retries; with a 30s backoff the
// round would otherwise take ≥ 90s.
func TestCloseAbortsRevealBackoff(t *testing.T) {
	before := runtime.NumGoroutine()
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.RevealBackoff = 30 * time.Second

	parts := soakMarket(t, net, 4242)
	net.mu.Lock()
	blockedDigest := net.mempool[0].Digest()
	net.mu.Unlock()
	net.Faults = &chaos.Plan{BlockedReveals: map[[32]byte]bool{blockedDigest: true}}

	done := make(chan struct{})
	var res *RoundResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = net.RunRound(context.Background(), parts)
	}()

	time.Sleep(50 * time.Millisecond) // let the round reach the backoff
	start := time.Now()
	net.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("round still running 5s after Close — the backoff timer leaked")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Close took %v — it must abort the backoff, not wait it out", waited)
	}
	if runErr != nil {
		t.Fatalf("aborted round errored: %v", runErr)
	}
	if len(res.ExcludedDigests) != 1 || res.ExcludedDigests[0] != blockedDigest {
		t.Fatalf("the blocked bid must be excluded on shutdown, got %x", res.ExcludedDigests)
	}
	checkGoroutineLeaks(t, before)
}

// TestRevealBackoffWaitsWhenOpen: with the network open, the backoff is
// honored between attempts — a blocked reveal with a measurable backoff
// makes the round take at least retries × backoff.
func TestRevealBackoffWaitsWhenOpen(t *testing.T) {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.RevealBackoff = 30 * time.Millisecond
	net.RevealRetries = 2

	parts := soakMarket(t, net, 4243)
	net.mu.Lock()
	blockedDigest := net.mempool[0].Digest()
	net.mu.Unlock()
	net.Faults = &chaos.Plan{BlockedReveals: map[[32]byte]bool{blockedDigest: true}}

	start := time.Now()
	res, err := net.RunRound(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*30*time.Millisecond {
		t.Fatalf("round took %v, expected ≥ 60ms of backoff between 3 attempts", elapsed)
	}
	if res.RevealAttempts != 3 {
		t.Fatalf("RevealAttempts = %d, want 3", res.RevealAttempts)
	}
	net.Close()
}

// TestPipelinedEmptyRounds: rounds whose feed submits nothing record
// ErrEmptyMempool and the pipeline keeps going — matching a sequential
// driver that logs the error and continues.
func TestPipelinedEmptyRounds(t *testing.T) {
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	rounds, err := net.RunPipelined(context.Background(), 3, func(r int) []*Participant {
		if r == 1 {
			return nil // submit nothing
		}
		return soakMarket(t, net, 8800+int64(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	if !errors.Is(rounds[1].Err, ErrEmptyMempool) {
		t.Fatalf("round 1 error = %v, want ErrEmptyMempool", rounds[1].Err)
	}
	if rounds[0].Err != nil || rounds[2].Err != nil {
		t.Fatalf("non-empty rounds failed: %v, %v", rounds[0].Err, rounds[2].Err)
	}
	if net.Chain().Len() != 2 {
		t.Fatalf("chain holds %d blocks, want 2", net.Chain().Len())
	}
}
