package miner

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"decloud/internal/auction"
	"decloud/internal/contract"
	"decloud/internal/ledger"
	"decloud/internal/sealed"
)

// Errors surfaced by the network.
var (
	ErrNoMiners     = errors.New("miner: network has no miners")
	ErrEmptyMempool = errors.New("miner: no sealed bids to include")
	ErrBadBid       = errors.New("miner: sealed bid failed signature verification")
	ErrNoQuorum     = errors.New("miner: verifier quorum rejected the block")
)

// Network is the in-process miner overlay: a shared mempool of sealed
// bids, a set of racing miners, the canonical chain, and the contract
// registry where accepted allocations become agreements.
type Network struct {
	miners   []*Miner
	chain    *ledger.Chain
	registry *contract.Registry

	mu      sync.Mutex
	mempool []*sealed.Bid

	// Consensus selects the block producer: ProofOfWork (default) races
	// on the puzzle; ProofOfStake elects a stake-weighted leader.
	Consensus Consensus
	// Stakes weights proof-of-stake leader election by miner name
	// (missing or non-positive entries count as weight 1).
	Stakes map[string]float64

	// Policy selects block verification: VerifyAll (default) or
	// VerifySampled with SampleProb (TrueBit-style challengers).
	Policy     VerifyPolicy
	SampleProb float64
	// Challenges accumulates disputes raised by sampled verifiers.
	Challenges []Challenge
	// Slashed counts upheld challenges per producing miner — the penalty
	// hook a staking deployment would burn deposits through.
	Slashed map[string]int

	// BlockReward is the cryptotoken emission credited to the producer of
	// every accepted block — the paper's miner incentive ("miners
	// responsible for the algorithm execution are rewarded by cryptotokens
	// emission", Section IV-C), which is why the auction itself can be
	// strongly budget balanced. Defaults to DefaultBlockReward.
	BlockReward float64
	// Balances accumulates each miner's earned emission.
	Balances map[string]float64

	// TamperBody, when set, mutates the winning block's body before it is
	// broadcast — a test hook simulating a cheating miner.
	TamperBody func(*ledger.Body)

	clock int64
}

// NewNetwork creates a network of n miners at the given PoW difficulty.
// Every miner shares the network's contract registry as its reputation
// source, so provider-side reputation thresholds (Section III-B) are
// enforced consistently: reputation is ledger state, identical on every
// verifying node.
func NewNetwork(n int, difficulty int, cfg auction.Config) *Network {
	net := &Network{
		chain:       ledger.NewChain(),
		registry:    contract.NewRegistry(nil),
		Slashed:     make(map[string]int),
		BlockReward: DefaultBlockReward,
		Balances:    make(map[string]float64),
	}
	cfg.Reputation = net.registry.Reputation()
	for i := 0; i < n; i++ {
		net.miners = append(net.miners, &Miner{
			Name:       fmt.Sprintf("miner-%02d", i),
			Difficulty: difficulty,
			AuctionCfg: cfg,
		})
	}
	return net
}

// Chain exposes the canonical chain.
func (n *Network) Chain() *ledger.Chain { return n.chain }

// Contracts exposes the agreement registry.
func (n *Network) Contracts() *contract.Registry { return n.registry }

// SubmitBid gossips a sealed bid into the mempool. Bids with invalid
// signatures are rejected at the door, as any real node would.
func (n *Network) SubmitBid(b *sealed.Bid) error {
	if !b.VerifySignature() {
		return ErrBadBid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mempool = append(n.mempool, b)
	return nil
}

// MempoolSize reports the number of pending sealed bids.
func (n *Network) MempoolSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mempool)
}

// RoundResult summarizes one completed protocol round.
type RoundResult struct {
	Block      *ledger.Block
	Outcome    *auction.Outcome
	Winner     string
	Agreements []contract.AgreementID
	// Unrevealed and RejectedBids count bids dropped during decryption.
	Unrevealed   int
	RejectedBids int
}

// RunRound executes one full two-phase round (Fig. 2 of the paper):
//
//  1. Bidding phase: the mempool is drained into a block; miners race on
//     proof-of-work; the winner's preamble is broadcast.
//  2. Participants see their bids committed and broadcast key reveals.
//  3. Execution phase: the winner decrypts, computes the allocation
//     (seeded by the PoW evidence), and broadcasts the body.
//  4. Every other miner independently re-executes and must agree before
//     the block is appended; the matches become proposed agreements.
//
// The participants argument lists the endpoints to ask for key reveals —
// in a real deployment this is a broadcast, here it is a direct call.
func (n *Network) RunRound(ctx context.Context, participants []*Participant) (*RoundResult, error) {
	if len(n.miners) == 0 {
		return nil, ErrNoMiners
	}
	n.mu.Lock()
	bids := n.mempool
	n.mempool = nil
	n.clock++
	timestamp := n.clock
	n.mu.Unlock()
	if len(bids) == 0 {
		return nil, ErrEmptyMempool
	}

	// Phase 1: block production. Under proof-of-work every miner
	// assembles the same canonical block and searches a disjoint nonce
	// region; first valid PoW wins and cancels the rest. Under
	// proof-of-stake the stake-weighted leader for this height produces
	// the block directly.
	var winnerIdx int
	var block *ledger.Block
	var err error
	switch n.Consensus {
	case ProofOfStake:
		winnerIdx, block = n.electLeader(bids, timestamp)
	default:
		winnerIdx, block, err = n.race(ctx, bids, timestamp)
		if err != nil {
			return nil, err
		}
	}
	winner := n.miners[winnerIdx]

	// Phase 1→2 boundary: participants validate the preamble and reveal
	// keys for their committed bids.
	var reveals []*sealed.KeyReveal
	if block.Preamble.ValidPoW() {
		for _, p := range participants {
			reveals = append(reveals, p.RevealsFor(block.Bids)...)
		}
	}

	// Phase 2: the winner decrypts and computes the allocation.
	outcome, err := winner.ComputeBody(block, reveals)
	if err != nil {
		return nil, fmt.Errorf("miner: compute body: %w", err)
	}
	dec := DecryptOrders(block.Bids, reveals)

	if n.TamperBody != nil {
		n.TamperBody(block.Body)
	}

	// Phase 2: other miners verify the block before acceptance. Under
	// VerifyAll everyone re-executes; under VerifySampled each miner
	// checks with probability SampleProb and any detected mismatch
	// becomes a challenge that triggers full verification and slashes
	// the producer (TrueBit's escape from the verifier's dilemma).
	err = n.chain.Append(block, func(b *ledger.Block) error {
		return n.verifyByPolicy(b, winnerIdx, winner.Name)
	})
	if err != nil {
		return nil, err
	}

	n.Balances[winner.Name] += n.BlockReward

	ids := n.registry.ProposeFromBlock(block.Preamble.Height, mustDecode(block.Body.Allocation))
	return &RoundResult{
		Block:        block,
		Outcome:      outcome,
		Winner:       winner.Name,
		Agreements:   ids,
		Unrevealed:   dec.Unrevealed,
		RejectedBids: dec.Rejected,
	}, nil
}

func mustDecode(alloc []byte) []ledger.AllocationRecord {
	records, err := ledger.DecodeAllocation(alloc)
	if err != nil {
		// The body was just encoded by this process; failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("miner: decode own allocation: %v", err))
	}
	return records
}

// electLeader produces a block under proof-of-stake: the stake-weighted
// leader assembles it with difficulty 0 (no puzzle to solve).
func (n *Network) electLeader(bids []*sealed.Bid, timestamp int64) (int, *ledger.Block) {
	names := make([]string, len(n.miners))
	for i, m := range n.miners {
		names[i] = m.Name
	}
	var height int64
	if head := n.chain.Head(); head != nil {
		height = head.Preamble.Height + 1
	}
	idx := SelectLeader(n.chain.HeadHash(), height, names, n.Stakes)
	block := n.miners[idx].AssembleBlock(n.chain, bids, timestamp)
	block.Preamble.Difficulty = 0
	return idx, block
}

// verifyByPolicy applies the network's verification policy to a block.
func (n *Network) verifyByPolicy(b *ledger.Block, producerIdx int, producer string) error {
	switch n.Policy {
	case VerifySampled:
		challenged := false
		for i, m := range n.miners {
			if i == producerIdx {
				continue
			}
			if !shouldSample(b.Evidence(), m.Name, n.SampleProb) {
				continue
			}
			if err := m.VerifyBlock(b); err != nil {
				n.Challenges = append(n.Challenges, Challenge{
					Height: b.Preamble.Height, Challenger: m.Name, Err: err.Error(),
				})
				challenged = true
			}
		}
		if !challenged {
			// Nobody sampled a problem: the block stands. With
			// SampleProb 0 this IS the verifier's dilemma — a cheating
			// producer goes unchecked.
			return nil
		}
		// A challenge escalates to full verification; an upheld challenge
		// slashes the producer.
		for i, m := range n.miners {
			if i == producerIdx {
				continue
			}
			if err := m.VerifyBlock(b); err != nil {
				n.Slashed[producer]++
				return fmt.Errorf("%w: %v", ErrNoQuorum, err)
			}
		}
		return nil
	default: // VerifyAll
		for i, m := range n.miners {
			if i == producerIdx {
				continue
			}
			if err := m.VerifyBlock(b); err != nil {
				return fmt.Errorf("%w: %v", ErrNoQuorum, err)
			}
		}
		return nil
	}
}

// race runs the PoW competition and returns the winning miner's index
// and its mined block.
func (n *Network) race(ctx context.Context, bids []*sealed.Bid, timestamp int64) (int, *ledger.Block, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type win struct {
		idx   int
		block *ledger.Block
	}
	results := make(chan win, len(n.miners))
	var wg sync.WaitGroup
	for i, m := range n.miners {
		wg.Add(1)
		go func(idx int, m *Miner) {
			defer wg.Done()
			b := m.AssembleBlock(n.chain, bids, timestamp)
			// Disjoint nonce regions keep the race fair and deterministic
			// enough for tests while still genuinely concurrent.
			start := uint64(idx) << 48
			if err := m.Mine(raceCtx, b, start); err == nil {
				select {
				case results <- win{idx: idx, block: b}:
				default:
				}
			}
		}(i, m)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	first, ok := <-results
	if !ok {
		return 0, nil, ErrMiningFailed
	}
	cancel()
	// Drain the channel so no goroutine blocks (buffered, but be tidy).
	for range results {
	}
	return first.idx, first.block, nil
}
