package miner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"decloud/internal/auction"
	"decloud/internal/book"
	"decloud/internal/chaos"
	"decloud/internal/contract"
	"decloud/internal/ledger"
	"decloud/internal/obs"
	"decloud/internal/sealed"
)

// Errors surfaced by the network.
var (
	ErrNoMiners     = errors.New("miner: network has no miners")
	ErrEmptyMempool = errors.New("miner: no sealed bids to include")
	ErrBadBid       = errors.New("miner: sealed bid failed signature verification")
	ErrNoQuorum     = errors.New("miner: verifier quorum rejected the block")
	ErrAllCrashed   = errors.New("miner: every miner is crashed this round")
)

// DefaultRevealRetries is how many extra delivery attempts the reveal
// phase makes for missing key reveals before the round deterministically
// excludes the still-unrevealed bids and moves on.
const DefaultRevealRetries = 3

// Network is the in-process miner overlay: a shared mempool of sealed
// bids, a set of racing miners, the canonical chain, and the contract
// registry where accepted allocations become agreements.
type Network struct {
	miners   []*Miner
	chain    *ledger.Chain
	registry *contract.Registry

	mu      sync.Mutex
	mempool []*sealed.Bid
	closed  bool

	// stop is closed by Close; in-flight backoff waits and pipelined
	// commits select on it so shutdown never blocks on a sleeping timer.
	stop chan struct{}
	wg   sync.WaitGroup

	// Consensus selects the block producer: ProofOfWork (default) races
	// on the puzzle; ProofOfStake elects a stake-weighted leader.
	Consensus Consensus
	// Stakes weights proof-of-stake leader election by miner name
	// (missing or non-positive entries count as weight 1).
	Stakes map[string]float64

	// Policy selects block verification: VerifyAll (default) or
	// VerifySampled with SampleProb (TrueBit-style challengers).
	Policy     VerifyPolicy
	SampleProb float64
	// Challenges accumulates disputes raised by sampled verifiers.
	Challenges []Challenge
	// Slashed counts rejected blocks per producing miner — the penalty
	// hook a staking deployment would burn deposits through. Under every
	// policy a producer whose block the verifiers reject is slashed once
	// per rejected block, and the round re-elects without it.
	Slashed map[string]int

	// BlockReward is the cryptotoken emission credited to the producer of
	// every accepted block — the paper's miner incentive ("miners
	// responsible for the algorithm execution are rewarded by cryptotokens
	// emission", Section IV-C), which is why the auction itself can be
	// strongly budget balanced. Defaults to DefaultBlockReward.
	BlockReward float64
	// Balances accumulates each miner's earned emission.
	Balances map[string]float64

	// Faults, when set, injects deterministic transport faults into the
	// round: lost/delayed key reveals (retried up to RevealRetries times,
	// then excluded — identically on every honest miner, because the
	// verdicts depend only on the plan seed and the bid digest) and
	// crash-restart windows that take miners out of production and
	// verification for the rounds they cover.
	Faults *chaos.Plan
	// RevealRetries caps the reveal phase's delivery attempts (0 means
	// DefaultRevealRetries; negative means no retries). The in-process
	// transport retries instantly by default; set RevealBackoff to wait
	// between attempts. The TCP layer (p2p.MarketNode) backs off
	// exponentially between attempts.
	RevealRetries int
	// RevealBackoff is the wait between reveal delivery attempts. The
	// wait is wg-tracked and aborts on Close, so a network shutting down
	// mid-round never leaks a sleeping timer (the same bug class as the
	// p2p reconnect backoff fixed in the chaos PR).
	RevealBackoff time.Duration

	// TamperBody, when set, mutates the named producer's body before it
	// is broadcast — a test hook simulating a Byzantine miner.
	TamperBody func(producer string, b *ledger.Body)

	// Obs, when set, records round observability (reveal retries,
	// exclusions, Byzantine rejections, per-phase wall times). Tracer,
	// when set, emits one structured timeline per round. Both are purely
	// observational: nothing in the round ever reads them back, so block
	// outcomes stay byte-identical with observability on or off.
	Obs    *obs.MinerMetrics
	Tracer *obs.Tracer

	clock int64
}

// NewNetwork creates a network of n miners at the given PoW difficulty.
// Every miner shares the network's contract registry as its reputation
// source, so provider-side reputation thresholds (Section III-B) are
// enforced consistently: reputation is ledger state, identical on every
// verifying node.
func NewNetwork(n int, difficulty int, cfg auction.Config) *Network {
	net := &Network{
		chain:       ledger.NewChain(),
		registry:    contract.NewRegistry(nil),
		stop:        make(chan struct{}),
		Slashed:     make(map[string]int),
		BlockReward: DefaultBlockReward,
		Balances:    make(map[string]float64),
	}
	cfg.Reputation = net.registry.Reputation()
	for i := 0; i < n; i++ {
		m := &Miner{
			Name:       fmt.Sprintf("miner-%02d", i),
			Difficulty: difficulty,
			AuctionCfg: cfg,
		}
		if cfg.Incremental {
			// Each miner keeps its own book replica — replicas are
			// independent state machines driven by the same chain, which
			// is exactly the property incremental verification tests.
			m.Book = book.New(cfg)
		}
		net.miners = append(net.miners, m)
	}
	return net
}

// syncBooks catches every miner's book replica up to the canonical
// chain. A no-op outside incremental mode. Books must be current before
// a round's verify phase (verifiers preview blocks against their own
// live set) and are advanced again once the block lands — the producer
// and verifiers just previewed the same mutation batch, so the apply
// reuses their memoized outcome.
func (n *Network) syncBooks() error {
	for _, m := range n.miners {
		if err := m.SyncBook(n.chain); err != nil {
			return err
		}
	}
	return nil
}

// Chain exposes the canonical chain.
func (n *Network) Chain() *ledger.Chain { return n.chain }

// Book returns the first miner's order-book replica, or nil outside
// incremental mode. All replicas are driven by the same chain and are
// byte-identical after every round, so one replica is a faithful view
// of the network's carried market — the federation layer reads it to
// harvest carry-out removals for cross-metro spill.
func (n *Network) Book() *book.Book {
	if len(n.miners) == 0 {
		return nil
	}
	return n.miners[0].Book
}

// Contracts exposes the agreement registry.
func (n *Network) Contracts() *contract.Registry { return n.registry }

// Close shuts the network down: it wakes every in-flight backoff wait
// and blocks until all wg-tracked work (reveal backoffs, pipelined
// commits) has drained. Safe to call more than once.
func (n *Network) Close() {
	n.mu.Lock()
	if !n.closed {
		n.closed = true
		if n.stop != nil {
			close(n.stop)
		}
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// track registers one unit of in-flight work with the shutdown
// WaitGroup, refusing once Close has begun (an Add racing Wait is
// undefined). The caller must call n.wg.Done() iff track returns true.
func (n *Network) track() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.wg.Add(1)
	return true
}

// sleepBackoff waits d, returning early (false) when the network is
// closed. The wait counts as in-flight work so Close cannot return
// while a round is mid-backoff.
func (n *Network) sleepBackoff(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if !n.track() {
		return false
	}
	defer n.wg.Done()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-n.stop:
		return false
	}
}

// SubmitBid gossips a sealed bid into the mempool. Bids with invalid
// signatures are rejected at the door, as any real node would.
func (n *Network) SubmitBid(b *sealed.Bid) error {
	if !b.VerifySignature() {
		return ErrBadBid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mempool = append(n.mempool, b)
	return nil
}

// MempoolSize reports the number of pending sealed bids.
func (n *Network) MempoolSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mempool)
}

// RoundResult summarizes one completed protocol round.
type RoundResult struct {
	Block      *ledger.Block
	Outcome    *auction.Outcome
	Winner     string
	Agreements []contract.AgreementID
	// Unrevealed and RejectedBids count bids dropped during decryption.
	Unrevealed   int
	RejectedBids int
	// ExcludedDigests lists the sealed bids whose key reveals never
	// arrived within the retry budget, in digest order. The list is a
	// pure function of the fault plan and the committed bids, so every
	// honest miner excludes exactly this set.
	ExcludedDigests [][32]byte
	// RevealAttempts is how many delivery attempts the reveal phase used
	// (1 when everything arrived first try).
	RevealAttempts int
	// Offenders lists producers whose blocks were rejected and slashed
	// before the round converged, in re-election order.
	Offenders []string
}

// RunRound executes one full two-phase round (Fig. 2 of the paper):
//
//  1. Bidding phase: the mempool is drained into a block; miners race on
//     proof-of-work; the winner's preamble is broadcast.
//  2. Participants see their bids committed and broadcast key reveals.
//     Reveals lost in transit are re-requested up to RevealRetries
//     times; bids still unrevealed at the deadline are excluded — the
//     same exclusion on every honest miner — instead of stalling the
//     round.
//  3. Execution phase: the winner decrypts, computes the allocation
//     (seeded by the PoW evidence), and broadcasts the body.
//  4. Every other live miner independently re-executes and must agree
//     before the block is appended; the matches become proposed
//     agreements. A producer whose body fails verification is slashed
//     and barred, and the round re-elects among the remaining miners
//     until an honest block converges (graceful Byzantine degradation).
//
// The participants argument lists the endpoints to ask for key reveals —
// in a real deployment this is a broadcast, here it is a direct call.
func (n *Network) RunRound(ctx context.Context, participants []*Participant) (*RoundResult, error) {
	if len(n.miners) == 0 {
		return nil, ErrNoMiners
	}
	n.mu.Lock()
	bids := n.mempool
	n.mempool = nil
	n.clock++
	timestamp := n.clock
	n.mu.Unlock()
	if len(bids) == 0 {
		return nil, ErrEmptyMempool
	}
	// Incremental mode: every replica's book must reflect the current
	// chain before producers preview against it and verifiers re-execute.
	if err := n.syncBooks(); err != nil {
		return nil, fmt.Errorf("miner: pre-round book sync: %w", err)
	}

	tr := n.Tracer.StartRound(timestamp)
	defer tr.End()
	roundStart := obsNow(n.Obs)
	if n.Obs != nil {
		n.Obs.Rounds.Inc()
	}

	// crashed miners sit the whole round out; miners slashed during this
	// round's re-elections are barred from producing but keep verifying —
	// a Byzantine producer must not escape scrutiny just because its
	// accusers were themselves rejected earlier.
	crashed := make(map[int]bool)
	for i, m := range n.miners {
		if n.Faults.Crashed(timestamp, m.Name) {
			crashed[i] = true
		}
	}
	barred := make(map[int]bool)

	var offenders []string
	var lastErr error
	for {
		var eligible, verifiers []int
		for i := range n.miners {
			if crashed[i] {
				continue
			}
			verifiers = append(verifiers, i)
			if !barred[i] {
				eligible = append(eligible, i)
			}
		}
		if len(eligible) == 0 {
			if lastErr != nil {
				return nil, fmt.Errorf("miner: no producer converged after %d rejection(s): %w", len(offenders), lastErr)
			}
			return nil, ErrAllCrashed
		}

		// Phase 1: block production among the eligible miners. Under
		// proof-of-work every one assembles the same canonical block and
		// searches a disjoint nonce region; first valid PoW wins and
		// cancels the rest. Under proof-of-stake the stake-weighted
		// leader for this height produces the block directly.
		var winnerIdx int
		var block *ledger.Block
		var err error
		switch n.Consensus {
		case ProofOfStake:
			winnerIdx, block = n.electLeader(eligible, bids, timestamp)
		default:
			winnerIdx, block, err = n.race(ctx, eligible, bids, timestamp)
			if err != nil {
				return nil, err
			}
		}
		winner := n.miners[winnerIdx]
		tr.Event("preamble_sealed", map[string]any{
			"producer": winner.Name, "height": block.Preamble.Height, "bids": len(block.Bids),
		})
		tr.Event("consensus_decided", map[string]any{
			"consensus": n.Consensus.String(), "producer": winner.Name,
		})

		// Phase 1→2 boundary: participants validate the preamble and
		// reveal keys for their committed bids; lost reveals are retried,
		// then excluded.
		revealStart := obsNow(n.Obs)
		reveals, excluded, attempts := n.collectReveals(block, participants, timestamp, winner.Name)
		if n.Obs != nil {
			n.Obs.RevealSeconds.Observe(time.Since(revealStart).Seconds())
			n.Obs.RevealAttempts.Add(int64(attempts))
			n.Obs.RevealRetries.Add(int64(attempts - 1))
			n.Obs.ExcludedBids.Add(int64(len(excluded)))
		}
		tr.Event("reveals_collected", map[string]any{
			"attempts": attempts, "retries": attempts - 1,
			"revealed": len(reveals), "excluded": len(excluded),
		})

		// Phase 2: the winner decrypts and computes the allocation.
		computeStart := obsNow(n.Obs)
		outcome, err := winner.ComputeBody(block, reveals)
		if err != nil {
			return nil, fmt.Errorf("miner: compute body: %w", err)
		}
		dec := DecryptOrders(block.Bids, reveals)
		if n.Obs != nil {
			n.Obs.ComputeSeconds.Observe(time.Since(computeStart).Seconds())
			n.Obs.UnrevealedBids.Add(int64(dec.Unrevealed))
			n.Obs.RejectedBids.Add(int64(dec.Rejected))
		}
		tr.Event("allocation_computed", map[string]any{
			"matches": len(outcome.Matches), "unrevealed": dec.Unrevealed, "rejected": dec.Rejected,
		})

		if n.TamperBody != nil {
			n.TamperBody(winner.Name, block.Body)
		}

		// Phase 2: the other live miners verify the block before
		// acceptance. Under VerifyAll everyone re-executes; under
		// VerifySampled each miner checks with probability SampleProb and
		// any detected mismatch becomes a challenge that triggers full
		// verification (TrueBit's escape from the verifier's dilemma).
		verifyStart := obsNow(n.Obs)
		err = n.chain.Append(block, func(b *ledger.Block) error {
			return n.verifyByPolicy(b, winnerIdx, verifiers)
		})
		if n.Obs != nil {
			n.Obs.VerifySeconds.Observe(time.Since(verifyStart).Seconds())
		}
		if err != nil {
			// The verifiers rejected the producer's block: slash it, bar
			// it, and re-elect among the remaining miners. The bids are
			// untouched — the next producer re-runs the same round.
			n.Slashed[winner.Name]++
			offenders = append(offenders, winner.Name)
			barred[winnerIdx] = true
			lastErr = err
			if n.Obs != nil {
				n.Obs.Slashes.Inc()
			}
			tr.Event("denied", map[string]any{"producer": winner.Name, "error": err.Error()})
			tr.Event("slashed", map[string]any{"producer": winner.Name})
			continue
		}
		tr.Event("verified", map[string]any{"producer": winner.Name, "verifiers": len(verifiers) - 1})

		// The block is canonical: advance every book replica so callers
		// observing the network between rounds see the post-block market.
		if err := n.syncBooks(); err != nil {
			return nil, fmt.Errorf("miner: post-append book sync: %w", err)
		}

		n.Balances[winner.Name] += n.BlockReward
		if n.Obs != nil {
			n.Obs.BlocksAccepted.Inc()
			n.Obs.RoundSeconds.Observe(time.Since(roundStart).Seconds())
		}

		ids := n.registry.ProposeFromBlock(block.Preamble.Height, mustDecode(block.Body.Allocation))
		return &RoundResult{
			Block:           block,
			Outcome:         outcome,
			Winner:          winner.Name,
			Agreements:      ids,
			Unrevealed:      dec.Unrevealed,
			RejectedBids:    dec.Rejected,
			ExcludedDigests: excluded,
			RevealAttempts:  attempts,
			Offenders:       offenders,
		}, nil
	}
}

// collectReveals runs the reveal phase with a retry budget: participants
// produce reveals for the committed bids, the fault plan decides which
// deliveries are lost per attempt, and lost reveals are re-requested
// until they arrive or the budget is spent. Bids whose reveals never
// arrive are excluded; the verdicts depend only on (plan seed, round,
// attempt, bid digest), so the excluded set is identical on every honest
// miner regardless of which one produces the block. Returned reveals
// follow the block's canonical bid order, keeping the body bytes
// deterministic.
func (n *Network) collectReveals(block *ledger.Block, participants []*Participant, round int64, producer string) ([]*sealed.KeyReveal, [][32]byte, int) {
	if !block.Preamble.ValidPoW() {
		return nil, nil, 0
	}
	produced := make(map[[32]byte]*sealed.KeyReveal)
	for _, p := range participants {
		for _, kr := range p.RevealsFor(block.Bids) {
			produced[kr.BidDigest] = kr
		}
	}

	retries := n.RevealRetries
	if retries == 0 {
		retries = DefaultRevealRetries
	}
	if retries < 0 {
		retries = 0
	}
	delivered := make(map[[32]byte]bool, len(produced))
	attempts := 0
	for attempt := 0; attempt <= retries; attempt++ {
		attempts++
		missing := false
		for _, b := range block.Bids {
			d := b.Digest()
			if delivered[d] {
				continue
			}
			if _, ok := produced[d]; !ok {
				missing = true // never produced; retries cannot help, but the
				continue       // silent sender may still be partitioned, not gone
			}
			if n.Faults.RevealLost(round, attempt, producer, string(b.SenderID()), d) {
				if n.Obs != nil {
					n.Obs.RevealLosses.Inc()
				}
				missing = true
				continue
			}
			delivered[d] = true
		}
		if !missing {
			break
		}
		// Back off before re-requesting, unless the network is closing —
		// then stop retrying and let the deterministic exclusion below
		// take whatever has not arrived (the node is going away anyway).
		if attempt < retries && !n.sleepBackoff(n.RevealBackoff) {
			break
		}
	}

	var reveals []*sealed.KeyReveal
	var excluded [][32]byte
	for _, b := range block.Bids { // block bids are digest-sorted: canonical order
		d := b.Digest()
		if delivered[d] {
			reveals = append(reveals, produced[d])
		} else {
			excluded = append(excluded, d)
		}
	}
	return reveals, excluded, attempts
}

// obsNow reads the wall clock only when metrics are enabled, so the
// uninstrumented round makes zero time syscalls for observability.
func obsNow(m *obs.MinerMetrics) (t time.Time) {
	if m != nil {
		t = time.Now()
	}
	return
}

func mustDecode(alloc []byte) []ledger.AllocationRecord {
	records, err := ledger.DecodeAllocation(alloc)
	if err != nil {
		// The body was just encoded by this process; failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("miner: decode own allocation: %v", err))
	}
	return records
}

// electLeader produces a block under proof-of-stake: the stake-weighted
// leader among the eligible miners assembles it with difficulty 0 (no
// puzzle to solve).
func (n *Network) electLeader(eligible []int, bids []*sealed.Bid, timestamp int64) (int, *ledger.Block) {
	var height int64
	if head := n.chain.Head(); head != nil {
		height = head.Preamble.Height + 1
	}
	return n.electLeaderAt(n.chain.HeadHash(), height, eligible, bids, timestamp)
}

// electLeaderAt elects and assembles against an explicit parent, so the
// epoch pipeline can elect round n+1's leader from block n's preamble
// hash before n's body has committed.
func (n *Network) electLeaderAt(prevHash [32]byte, height int64, eligible []int, bids []*sealed.Bid, timestamp int64) (int, *ledger.Block) {
	names := make([]string, len(eligible))
	for i, idx := range eligible {
		names[i] = n.miners[idx].Name
	}
	idx := eligible[SelectLeader(prevHash, height, names, n.Stakes)]
	block := n.miners[idx].AssembleBlockAt(prevHash, height, bids, timestamp)
	block.Preamble.Difficulty = 0
	return idx, block
}

// verifyByPolicy applies the network's verification policy to a block.
// verifiers lists the live (non-crashed) miners; everyone but the
// producer checks, including miners barred from producing. Slashing on
// rejection is the caller's job, so a rejected block costs its producer
// exactly one slash under any policy.
func (n *Network) verifyByPolicy(b *ledger.Block, producerIdx int, verifiers []int) error {
	producer := n.miners[producerIdx].Name
	switch n.Policy {
	case VerifySampled:
		challenged := false
		for _, i := range verifiers {
			if i == producerIdx {
				continue
			}
			m := n.miners[i]
			if !shouldSample(b.Evidence(), m.Name, n.SampleProb) {
				continue
			}
			if err := m.VerifyBlock(b); err != nil {
				n.Challenges = append(n.Challenges, Challenge{
					Height: b.Preamble.Height, Challenger: m.Name, Err: err.Error(),
				})
				challenged = true
			}
		}
		if !challenged {
			// Nobody sampled a problem: the block stands. With
			// SampleProb 0 this IS the verifier's dilemma — a cheating
			// producer goes unchecked.
			return nil
		}
		// A challenge escalates to full verification.
		for _, i := range verifiers {
			if i == producerIdx {
				continue
			}
			if err := n.miners[i].VerifyBlock(b); err != nil {
				return fmt.Errorf("%w (producer %s): %v", ErrNoQuorum, producer, err)
			}
		}
		return nil
	default: // VerifyAll
		for _, i := range verifiers {
			if i == producerIdx {
				continue
			}
			if err := n.miners[i].VerifyBlock(b); err != nil {
				return fmt.Errorf("%w (producer %s): %v", ErrNoQuorum, producer, err)
			}
		}
		return nil
	}
}

// race runs the PoW competition among the eligible miners and returns the
// winning miner's index and its mined block.
func (n *Network) race(ctx context.Context, eligible []int, bids []*sealed.Bid, timestamp int64) (int, *ledger.Block, error) {
	var height int64
	if head := n.chain.Head(); head != nil {
		height = head.Preamble.Height + 1
	}
	return n.raceAt(ctx, n.chain.HeadHash(), height, eligible, bids, timestamp)
}

// raceAt runs the PoW competition against an explicit parent — the
// pipelined counterpart of race, mining on a speculated head.
func (n *Network) raceAt(ctx context.Context, prevHash [32]byte, height int64, eligible []int, bids []*sealed.Bid, timestamp int64) (int, *ledger.Block, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type win struct {
		idx   int
		block *ledger.Block
	}
	results := make(chan win, len(eligible))
	var wg sync.WaitGroup
	for _, idx := range eligible {
		wg.Add(1)
		go func(idx int, m *Miner) {
			defer wg.Done()
			b := m.AssembleBlockAt(prevHash, height, bids, timestamp)
			// Disjoint nonce regions keep the race fair and deterministic
			// enough for tests while still genuinely concurrent.
			start := uint64(idx) << 48
			if err := m.Mine(raceCtx, b, start); err == nil {
				select {
				case results <- win{idx: idx, block: b}:
				default:
				}
			}
		}(idx, n.miners[idx])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	first, ok := <-results
	if !ok {
		return 0, nil, ErrMiningFailed
	}
	cancel()
	// Drain the channel so no goroutine blocks (buffered, but be tidy).
	for range results {
	}
	return first.idx, first.block, nil
}
