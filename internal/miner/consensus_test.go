package miner

import (
	"context"
	"errors"
	"testing"

	"decloud/internal/auction"
	"decloud/internal/ledger"
)

func TestSelectLeaderDeterministicAndWeighted(t *testing.T) {
	names := []string{"a", "b", "c"}
	prev := [32]byte{1, 2, 3}
	i1 := SelectLeader(prev, 5, names, nil)
	i2 := SelectLeader(prev, 5, names, nil)
	if i1 != i2 {
		t.Fatal("leader election not deterministic")
	}
	if i1 < 0 || i1 >= len(names) {
		t.Fatalf("leader index out of range: %d", i1)
	}
	// Different height → (usually) different leader over many heights.
	counts := map[int]int{}
	for h := int64(0); h < 300; h++ {
		counts[SelectLeader(prev, h, names, nil)]++
	}
	for i := range names {
		if counts[i] == 0 {
			t.Fatalf("miner %d never elected over 300 heights: %v", i, counts)
		}
	}
	// Heavy stake dominates.
	heavy := map[string]float64{"a": 100, "b": 1, "c": 1}
	wins := 0
	for h := int64(0); h < 300; h++ {
		if names[SelectLeader(prev, h, names, heavy)] == "a" {
			wins++
		}
	}
	if wins < 250 {
		t.Fatalf("heavy staker won only %d/300 elections", wins)
	}
	if SelectLeader(prev, 0, nil, nil) != -1 {
		t.Fatal("no miners should yield -1")
	}
}

func TestSelectLeaderOrderInvariant(t *testing.T) {
	prev := [32]byte{9}
	a := SelectLeader(prev, 7, []string{"x", "y", "z"}, nil)
	b := SelectLeader(prev, 7, []string{"z", "x", "y"}, nil)
	// The same logical leader must win regardless of slice order.
	namesA := []string{"x", "y", "z"}
	namesB := []string{"z", "x", "y"}
	if namesA[a] != namesB[b] {
		t.Fatalf("leader depends on input order: %s vs %s", namesA[a], namesB[b])
	}
}

func TestProofOfStakeRound(t *testing.T) {
	net := NewNetwork(3, 30 /* difficulty irrelevant under PoS */, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.Stakes = map[string]float64{"miner-00": 5, "miner-01": 1, "miner-02": 1}
	participants := marketRound(t, net)
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.Preamble.Difficulty != 0 {
		t.Fatalf("PoS block has difficulty %d", res.Block.Preamble.Difficulty)
	}
	if net.Chain().Len() != 1 {
		t.Fatal("PoS block not appended")
	}
	if len(res.Outcome.Matches) == 0 {
		t.Fatal("PoS round produced no trades")
	}
}

func TestProofOfStakeCheaterStillCaught(t *testing.T) {
	net := NewNetwork(3, 30, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.TamperBody = func(_ string, b *ledger.Body) {
		records, err := ledger.DecodeAllocation(b.Allocation)
		if err != nil || len(records) == 0 {
			return
		}
		records[0].Payment *= 2
		forged, _ := encodeRecords(records)
		*b = *ledger.NewBody(b.Reveals, forged)
	}
	participants := marketRound(t, net)
	if _, err := net.RunRound(context.Background(), participants); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("tampered PoS block accepted: %v", err)
	}
}

func TestSampledVerificationCatchesCheater(t *testing.T) {
	net := NewNetwork(4, testDifficulty, auction.DefaultConfig())
	net.Policy = VerifySampled
	net.SampleProb = 1.0 // every miner samples: challenge guaranteed
	net.TamperBody = func(_ string, b *ledger.Body) {
		records, err := ledger.DecodeAllocation(b.Allocation)
		if err != nil || len(records) == 0 {
			return
		}
		records[0].Payment *= 3
		forged, _ := encodeRecords(records)
		*b = *ledger.NewBody(b.Reveals, forged)
	}
	participants := marketRound(t, net)
	_, err := net.RunRound(context.Background(), participants)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("challenged block accepted: %v", err)
	}
	if len(net.Challenges) == 0 {
		t.Fatal("no challenge recorded")
	}
	slashedTotal := 0
	for _, c := range net.Slashed {
		slashedTotal += c
	}
	if slashedTotal == 0 {
		t.Fatal("producer not slashed")
	}
	if net.Challenges[0].String() == "" {
		t.Fatal("challenge stringer empty")
	}
}

func TestVerifierDilemmaWithZeroSampling(t *testing.T) {
	// SampleProb 0 realizes the verifier's dilemma the paper discusses
	// (Section VI): nobody checks, so a cheating producer's block lands
	// on the chain unchallenged.
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Policy = VerifySampled
	net.SampleProb = 0
	net.TamperBody = func(_ string, b *ledger.Body) {
		records, err := ledger.DecodeAllocation(b.Allocation)
		if err != nil || len(records) == 0 {
			return
		}
		records[0].Payment *= 3
		forged, _ := encodeRecords(records)
		*b = *ledger.NewBody(b.Reveals, forged)
	}
	participants := marketRound(t, net)
	if _, err := net.RunRound(context.Background(), participants); err != nil {
		t.Fatalf("unsampled block should pass structurally: %v", err)
	}
	if net.Chain().Len() != 1 {
		t.Fatal("block missing")
	}
	if len(net.Challenges) != 0 {
		t.Fatal("challenge raised despite zero sampling")
	}
}

func TestSampledVerificationHonestProducer(t *testing.T) {
	net := NewNetwork(4, testDifficulty, auction.DefaultConfig())
	net.Policy = VerifySampled
	net.SampleProb = 0.5
	participants := marketRound(t, net)
	if _, err := net.RunRound(context.Background(), participants); err != nil {
		t.Fatalf("honest block rejected: %v", err)
	}
	if len(net.Challenges) != 0 {
		t.Fatalf("spurious challenges: %v", net.Challenges)
	}
	if len(net.Slashed) != 0 {
		t.Fatalf("spurious slashing: %v", net.Slashed)
	}
}

func TestBlockRewardEmission(t *testing.T) {
	net := NewNetwork(2, testDifficulty, auction.DefaultConfig())
	for round := 0; round < 3; round++ {
		participants := marketRound(t, net)
		res, err := net.RunRound(context.Background(), participants)
		if err != nil {
			t.Fatal(err)
		}
		if net.Balances[res.Winner] <= 0 {
			t.Fatalf("winner %s earned no emission", res.Winner)
		}
	}
	var total float64
	for _, b := range net.Balances {
		total += b
	}
	if total != 3*DefaultBlockReward {
		t.Fatalf("total emission = %v, want %v", total, 3*DefaultBlockReward)
	}
}
