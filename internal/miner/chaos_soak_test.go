package miner

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/chaos"
	"decloud/internal/obs"
)

// soakMinerNames matches NewNetwork's naming for a 3-miner network.
var soakMinerNames = []string{"miner-00", "miner-01", "miner-02"}

// soakSchedules reads the sweep width from DECLOUD_CHAOS_SCHEDULES,
// defaulting to def (or short in -short mode).
func soakSchedules(t *testing.T, def, short int) int {
	t.Helper()
	if s := os.Getenv("DECLOUD_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad DECLOUD_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	if testing.Short() {
		return short
	}
	return def
}

// soakMarket seeds a network with a seed-specific tradable market — four
// clients at descending valuations and one provider — and returns the
// participants. Identities and sealing keys come from deterministic
// entropy, so the same seed always submits byte-identical sealed bids.
func soakMarket(t *testing.T, net *Network, seed int64) []*Participant {
	t.Helper()
	var parts []*Participant
	for i := 0; i < 4; i++ {
		p := testParticipant(t, fmt.Sprintf("soak-client-%d-%d", seed, i))
		bid, err := p.SubmitRequest(request(fmt.Sprintf("r-%d-%d", seed, i), 2, float64(10-2*i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SubmitBid(bid); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	prov := testParticipant(t, fmt.Sprintf("soak-prov-%d", seed))
	bid, err := prov.SubmitOffer(offer(fmt.Sprintf("o-%d", seed), 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SubmitBid(bid); err != nil {
		t.Fatal(err)
	}
	return append(parts, prov)
}

// runSoakRound runs one proof-of-stake round of the seed's market under
// the given fault plan and returns the result plus the hash of the full
// head-block bytes (preamble, bids, reveals, allocation). A non-nil reg
// wires full observability through the round — the soak sweep uses this
// to prove metrics cannot perturb the chain bytes.
func runSoakRound(t *testing.T, seed int64, plan *chaos.Plan, reg *obs.Registry) (*RoundResult, [32]byte) {
	t.Helper()
	net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
	net.Consensus = ProofOfStake
	net.Faults = plan
	net.Obs = obs.NewMinerMetrics(reg)
	parts := soakMarket(t, net, seed)
	res, err := net.RunRound(context.Background(), parts)
	if err != nil {
		t.Fatalf("seed %d: round failed: %v", seed, err)
	}
	data, err := json.Marshal(net.Chain().Head())
	if err != nil {
		t.Fatal(err)
	}
	return res, sha256.Sum256(data)
}

// soakMetricInvariants checks the recorded round metrics against the
// round result they describe. Every reveal in the soak market is
// produced, so a retry can only mean the chaos layer lost a delivery
// (reveal_losses ≥ retries), and an excluded bid means the loss repeated
// on every attempt (reveal_losses ≥ excluded × attempts).
func soakMetricInvariants(t *testing.T, reg *obs.Registry, res *RoundResult) {
	t.Helper()
	if got := reg.CounterValue("decloud_miner_rounds_total"); got != 1 {
		t.Fatalf("rounds_total = %d, want 1", got)
	}
	if got := reg.CounterValue("decloud_miner_blocks_accepted_total"); got != 1 {
		t.Fatalf("blocks_accepted_total = %d, want 1", got)
	}
	if got := reg.CounterValue("decloud_miner_slashes_total"); got != 0 {
		t.Fatalf("slashes_total = %d, want 0 — chaos faults must never be treated as Byzantine", got)
	}
	attempts := reg.CounterValue("decloud_miner_reveal_attempts_total")
	if attempts != int64(res.RevealAttempts) {
		t.Fatalf("reveal_attempts_total = %d, want %d", attempts, res.RevealAttempts)
	}
	retries := reg.CounterValue("decloud_miner_reveal_retries_total")
	if retries != attempts-1 {
		t.Fatalf("reveal_retries_total = %d, want attempts-1 = %d", retries, attempts-1)
	}
	excluded := reg.CounterValue("decloud_miner_excluded_bids_total")
	if excluded != int64(len(res.ExcludedDigests)) {
		t.Fatalf("excluded_bids_total = %d, want the deterministic exclusion set size %d",
			excluded, len(res.ExcludedDigests))
	}
	losses := reg.CounterValue("decloud_miner_reveal_losses_total")
	if losses < retries {
		t.Fatalf("reveal_losses_total = %d < retries %d: a retry without a lost delivery", losses, retries)
	}
	if losses < excluded*attempts {
		t.Fatalf("reveal_losses_total = %d < excluded×attempts = %d: an exclusion without repeated losses",
			losses, excluded*attempts)
	}
}

func equalDigests(a, b [][32]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkGoroutineLeaks fails the test if the goroutine count has not
// settled back near its starting point (allowing slack for the runtime's
// own background goroutines).
func checkGoroutineLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}

// TestChaosSoakDeterministicConvergence sweeps seeded fault schedules —
// reveal drops, delays, duplicates, crash windows — through full
// proof-of-stake rounds and asserts the protocol's two central chaos
// properties:
//
//  1. Determinism: the same seed produces byte-identical chains and
//     identical excluded-bid sets on every run.
//  2. Exclusion equivalence: a chaotic round equals a fault-free round in
//     which exactly the excluded reveals are withheld — faults change
//     *which* bids trade, never *how* the survivors trade.
func TestChaosSoakDeterministicConvergence(t *testing.T) {
	schedules := soakSchedules(t, 50, 12)
	before := runtime.NumGoroutine()
	sawExclusion, sawRetryRecovery := false, false
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			plan := func() *chaos.Plan { return chaos.SoakPlan(seed, soakMinerNames) }
			// Run A is uninstrumented, run B carries a full metrics
			// registry: hash equality below therefore also proves the
			// observability layer cannot perturb consensus bytes.
			reg := obs.NewRegistry()
			resA, hashA := runSoakRound(t, seed, plan(), nil)
			resB, hashB := runSoakRound(t, seed, plan(), reg)
			if hashA != hashB {
				t.Fatal("same seed produced different chain bytes")
			}
			if !equalDigests(resA.ExcludedDigests, resB.ExcludedDigests) {
				t.Fatalf("same seed excluded different bids: %x vs %x", resA.ExcludedDigests, resB.ExcludedDigests)
			}
			if resA.RevealAttempts != resB.RevealAttempts {
				t.Fatalf("same seed used %d vs %d reveal attempts", resA.RevealAttempts, resB.RevealAttempts)
			}
			soakMetricInvariants(t, reg, resB)
			if len(resA.ExcludedDigests) > 0 {
				sawExclusion = true
			}
			if resA.RevealAttempts > 1 && len(resA.ExcludedDigests) == 0 {
				sawRetryRecovery = true
			}

			// Replay fault-free, blocking exactly the excluded reveals: the
			// chain must come out byte-identical to the chaotic run.
			blocked := make(map[[32]byte]bool, len(resA.ExcludedDigests))
			for _, d := range resA.ExcludedDigests {
				blocked[d] = true
			}
			_, hashC := runSoakRound(t, seed, &chaos.Plan{BlockedReveals: blocked}, nil)
			if hashC != hashA {
				t.Fatal("chaotic round differs from fault-free round modulo excluded reveals")
			}
		})
	}
	if schedules >= 10 {
		if !sawExclusion {
			t.Error("soak sweep never exercised the exclusion path — widen the fault bands")
		}
		if !sawRetryRecovery {
			t.Error("soak sweep never recovered a lost reveal via retry — widen the fault bands")
		}
	}
	checkGoroutineLeaks(t, before)
}

// TestChaosSoakProofOfWorkConverges runs a smaller sweep under real
// proof-of-work. Block bytes are not reproducible there (the race winner
// and nonce vary), so the assertions are the ones PoW can honor: the
// round converges despite the faults, an outsider miner accepts the
// block by independent re-execution, and the excluded-bid set — which is
// producer-independent by construction — is stable across runs.
func TestChaosSoakProofOfWorkConverges(t *testing.T) {
	schedules := soakSchedules(t, 8, 3)
	before := runtime.NumGoroutine()
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			run := func() (*Network, *RoundResult) {
				net := NewNetwork(3, testDifficulty, auction.DefaultConfig())
				net.Faults = chaos.SoakPlan(seed, soakMinerNames)
				parts := soakMarket(t, net, seed)
				res, err := net.RunRound(context.Background(), parts)
				if err != nil {
					t.Fatalf("seed %d: PoW round failed: %v", seed, err)
				}
				return net, res
			}
			netA, resA := run()
			_, resB := run()
			if !equalDigests(resA.ExcludedDigests, resB.ExcludedDigests) {
				t.Fatalf("excluded set depends on the PoW race: %x vs %x",
					resA.ExcludedDigests, resB.ExcludedDigests)
			}
			cfg := auction.DefaultConfig()
			cfg.Reputation = netA.Contracts().Reputation()
			outsider := &Miner{Name: "outsider", Difficulty: testDifficulty, AuctionCfg: cfg}
			if err := outsider.VerifyBlock(netA.Chain().Head()); err != nil {
				t.Fatalf("outsider rejects the converged block: %v", err)
			}
		})
	}
	checkGoroutineLeaks(t, before)
}
