package miner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"decloud/internal/auction"
	"decloud/internal/audit"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/ledger"
	"decloud/internal/sealed"
)

// Errors surfaced by miner operations.
var (
	ErrAllocationMismatch = errors.New("miner: recomputed allocation differs from block body")
	ErrMiningFailed       = errors.New("miner: proof-of-work search exhausted")
)

// Miner executes the protocol's mining-side duties: assembling and
// mining preambles, decrypting revealed bids, computing allocations, and
// independently verifying other miners' blocks.
type Miner struct {
	// Name identifies the miner (diagnostics only).
	Name string
	// Difficulty is the PoW difficulty in leading zero bits.
	Difficulty int
	// AuctionCfg configures the allocation mechanism. The Evidence field
	// is overwritten per block with the preamble hash.
	AuctionCfg auction.Config
	// Book, when non-nil, switches the miner to incremental mode
	// (AuctionCfg.Incremental): orders live in a continuous book,
	// unmatched ones carry across blocks, and each block's body is the
	// book's incremental clear rather than a from-scratch run over the
	// block's bids alone. Keep it synced with SyncBook.
	Book *book.Book

	// bookMu serializes SyncBook's multi-block catch-up loop. It is
	// never taken inside a chain.Append verify callback — see book.go
	// for the lock order.
	bookMu sync.Mutex
}

// AssembleBlock fixes the sealed-bid order (sorted by digest — a
// canonical order no miner can game) and builds the unmined preamble
// referencing the current chain head.
func (m *Miner) AssembleBlock(chain *ledger.Chain, bids []*sealed.Bid, timestamp int64) *ledger.Block {
	var height int64
	if head := chain.Head(); head != nil {
		height = head.Preamble.Height + 1
	}
	return m.AssembleBlockAt(chain.HeadHash(), height, bids, timestamp)
}

// AssembleBlockAt builds the unmined preamble against an explicit parent
// instead of the chain head. The epoch pipeline uses this to assemble
// block n+1 against block n's preamble hash while n's body is still
// being verified — the parent hash depends only on the preamble, so it
// is known as soon as production finishes.
func (m *Miner) AssembleBlockAt(prevHash [32]byte, height int64, bids []*sealed.Bid, timestamp int64) *ledger.Block {
	ordered := append([]*sealed.Bid(nil), bids...)
	sort.Slice(ordered, func(i, j int) bool {
		di, dj := ordered[i].Digest(), ordered[j].Digest()
		return bytes.Compare(di[:], dj[:]) < 0
	})
	return &ledger.Block{
		Preamble: ledger.Preamble{
			Height:     height,
			PrevHash:   prevHash,
			Timestamp:  timestamp,
			Difficulty: m.Difficulty,
			BidsHash:   ledger.HashBids(ordered),
		},
		Bids: ordered,
	}
}

// Mine searches the preamble nonce space, honoring ctx cancellation (the
// network cancels losers once one miner wins the race).
func (m *Miner) Mine(ctx context.Context, b *ledger.Block, startNonce uint64) error {
	b.Preamble.Nonce = startNonce
	if !ledger.Mine(ctx, &b.Preamble, 0) {
		return ErrMiningFailed
	}
	return nil
}

// DecryptResult is the outcome of opening a block's sealed bids with the
// revealed keys.
type DecryptResult struct {
	Requests []*bidding.Request
	Offers   []*bidding.Offer
	// Unrevealed counts bids whose temporary key never arrived — they are
	// excluded from the round (their senders can resubmit).
	Unrevealed int
	// Rejected counts bids dropped for integrity reasons: bad reveal
	// signatures, undecryptable envelopes, malformed orders, or orders
	// whose owner does not match the signing key.
	Rejected int
}

// DecryptOrders opens the block's bids using the key reveals. Every rule
// the paper's verification step implies is enforced here:
//
//   - the reveal must be signed by the bid's sender over (digest ‖ key);
//   - the envelope must authenticate under the revealed key;
//   - the decoded order's owner must equal the sender's fingerprint, so
//     nobody can submit orders on someone else's behalf.
func DecryptOrders(bids []*sealed.Bid, reveals []*sealed.KeyReveal) DecryptResult {
	byDigest := make(map[[32]byte]*sealed.KeyReveal, len(reveals))
	for _, kr := range reveals {
		byDigest[kr.BidDigest] = kr
	}
	var res DecryptResult
	for _, b := range bids {
		if !b.VerifySignature() {
			res.Rejected++
			continue
		}
		kr, ok := byDigest[b.Digest()]
		if !ok {
			res.Unrevealed++
			continue
		}
		if err := kr.Verify(b); err != nil {
			res.Rejected++
			continue
		}
		plain, err := b.Envelope.Open(kr.Key)
		if err != nil {
			res.Rejected++
			continue
		}
		req, off, err := bidding.DecodeOrder(plain)
		if err != nil {
			res.Rejected++
			continue
		}
		switch {
		case req != nil:
			if req.Client != b.SenderID() {
				res.Rejected++
				continue
			}
			res.Requests = append(res.Requests, req)
		case off != nil:
			if off.Provider != b.SenderID() {
				res.Rejected++
				continue
			}
			res.Offers = append(res.Offers, off)
		}
	}
	return res
}

// ComputeBody decrypts the block's bids, runs the allocation mechanism
// seeded with the block's PoW evidence, and attaches the resulting body.
// It returns the outcome so the caller can propose agreements.
func (m *Miner) ComputeBody(b *ledger.Block, reveals []*sealed.KeyReveal) (*auction.Outcome, error) {
	if m.Book != nil {
		return m.computeBodyIncremental(b, reveals)
	}
	res := DecryptOrders(b.Bids, reveals)
	cfg := m.AuctionCfg
	cfg.Evidence = b.Evidence()
	out := auction.Run(res.Requests, res.Offers, cfg)
	alloc, err := ledger.EncodeAllocation(out)
	if err != nil {
		return nil, err
	}
	b.Body = ledger.NewBody(reveals, alloc)
	return out, nil
}

// VerifyBlock is the independent re-execution every other miner performs
// before accepting a block (Section III-B): decrypt the same bids with
// the body's reveals, re-run the deterministic allocation with the same
// evidence, and compare allocations byte for byte. It also re-checks the
// block's structural validity and audits the recomputed outcome against
// the market-model constraints (defense in depth: a bug that corrupted
// every replica identically would still be caught here).
func (m *Miner) VerifyBlock(b *ledger.Block) error {
	if m.Book != nil {
		return m.verifyBlockIncremental(b)
	}
	if err := b.Validate(); err != nil {
		return err
	}
	res := DecryptOrders(b.Bids, b.Body.Reveals)
	cfg := m.AuctionCfg
	cfg.Evidence = b.Evidence()
	out := auction.Run(res.Requests, res.Offers, cfg)
	alloc, err := ledger.EncodeAllocation(out)
	if err != nil {
		return err
	}
	if !bytes.Equal(alloc, b.Body.Allocation) {
		return fmt.Errorf("%w (miner %s)", ErrAllocationMismatch, m.Name)
	}
	if violations := audit.Outcome(res.Requests, res.Offers, out); len(violations) > 0 {
		return fmt.Errorf("miner %s: allocation violates the market model: %v", m.Name, violations[0])
	}
	return nil
}
