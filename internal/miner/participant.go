// Package miner implements the actors of the two-phase bid exposure
// protocol (Section III): participants who seal and later reveal their
// bids, miners who race on proof-of-work, compute the allocation, and
// verify each other's blocks, and the Network that orchestrates one
// protocol round end to end.
package miner

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"decloud/internal/bidding"
	"decloud/internal/sealed"
)

// Participant is a client or provider endpoint: it owns an identity,
// seals orders under fresh temporary keys, and reveals those keys once it
// sees its bids committed in a valid preamble.
type Participant struct {
	identity *sealed.Identity
	entropy  io.Reader

	mu      sync.Mutex
	pending map[[32]byte]pendingBid // bid digest → retained key
}

type pendingBid struct {
	bid *sealed.Bid
	key []byte
}

// NewParticipant creates a participant with a fresh identity. A nil
// entropy reader defaults to crypto/rand; tests pass a deterministic one.
func NewParticipant(entropy io.Reader) (*Participant, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	id, err := sealed.NewIdentityFrom(entropy)
	if err != nil {
		return nil, err
	}
	return &Participant{
		identity: id,
		entropy:  entropy,
		pending:  make(map[[32]byte]pendingBid),
	}, nil
}

// ID returns the participant's on-ledger fingerprint.
func (p *Participant) ID() bidding.ParticipantID { return p.identity.ParticipantID() }

// SubmitRequest seals a request under a fresh temporary key. The
// request's Client field is overwritten with the participant's
// fingerprint — orders are bound to the signing key, and miners enforce
// this binding after decryption.
func (p *Participant) SubmitRequest(r *bidding.Request) (*sealed.Bid, error) {
	r.Client = p.ID()
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("miner: refusing to seal invalid request: %w", err)
	}
	data, err := r.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return p.seal(data)
}

// SubmitOffer seals an offer under a fresh temporary key, binding its
// Provider field to the participant's fingerprint.
func (p *Participant) SubmitOffer(o *bidding.Offer) (*sealed.Bid, error) {
	o.Provider = p.ID()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("miner: refusing to seal invalid offer: %w", err)
	}
	data, err := o.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return p.seal(data)
}

func (p *Participant) seal(orderBytes []byte) (*sealed.Bid, error) {
	key, err := sealed.NewTempKeyFrom(p.entropy)
	if err != nil {
		return nil, err
	}
	bid, err := sealed.SealBid(p.identity, orderBytes, key, p.entropy)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.pending[bid.Digest()] = pendingBid{bid: bid, key: key}
	p.mu.Unlock()
	return bid, nil
}

// RevealsFor inspects a preamble's committed bids and broadcasts signed
// key reveals for every pending bid of this participant found there.
// Revealed bids leave the pending set.
func (p *Participant) RevealsFor(committed []*sealed.Bid) []*sealed.KeyReveal {
	p.mu.Lock()
	defer p.mu.Unlock()
	var reveals []*sealed.KeyReveal
	for _, b := range committed {
		if pb, ok := p.pending[b.Digest()]; ok {
			reveals = append(reveals, sealed.NewKeyReveal(p.identity, pb.bid, pb.key))
			delete(p.pending, b.Digest())
		}
	}
	return reveals
}

// PendingCount reports how many sealed bids await a preamble.
func (p *Participant) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}
