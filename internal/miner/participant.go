// Package miner implements the actors of the two-phase bid exposure
// protocol (Section III): participants who seal and later reveal their
// bids, miners who race on proof-of-work, compute the allocation, and
// verify each other's blocks, and the Network that orchestrates one
// protocol round end to end.
package miner

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"decloud/internal/bidding"
	"decloud/internal/sealed"
)

// Participant is a client or provider endpoint: it owns an identity,
// seals orders under fresh temporary keys, and reveals those keys once it
// sees its bids committed in a valid preamble.
type Participant struct {
	identity *sealed.Identity
	entropy  io.Reader

	mu      sync.Mutex
	pending map[[32]byte]pendingBid // bid digest → retained key
}

type pendingBid struct {
	bid      *sealed.Bid
	key      []byte
	revealed bool
}

// NewParticipant creates a participant with a fresh identity. A nil
// entropy reader defaults to crypto/rand; tests pass a deterministic one.
func NewParticipant(entropy io.Reader) (*Participant, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	id, err := sealed.NewIdentityFrom(entropy)
	if err != nil {
		return nil, err
	}
	return &Participant{
		identity: id,
		entropy:  entropy,
		pending:  make(map[[32]byte]pendingBid),
	}, nil
}

// ID returns the participant's on-ledger fingerprint.
func (p *Participant) ID() bidding.ParticipantID { return p.identity.ParticipantID() }

// SubmitRequest seals a request under a fresh temporary key. The
// request's Client field is overwritten with the participant's
// fingerprint — orders are bound to the signing key, and miners enforce
// this binding after decryption.
func (p *Participant) SubmitRequest(r *bidding.Request) (*sealed.Bid, error) {
	r.Client = p.ID()
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("miner: refusing to seal invalid request: %w", err)
	}
	data, err := r.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return p.seal(data)
}

// SubmitOffer seals an offer under a fresh temporary key, binding its
// Provider field to the participant's fingerprint.
func (p *Participant) SubmitOffer(o *bidding.Offer) (*sealed.Bid, error) {
	o.Provider = p.ID()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("miner: refusing to seal invalid offer: %w", err)
	}
	data, err := o.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return p.seal(data)
}

func (p *Participant) seal(orderBytes []byte) (*sealed.Bid, error) {
	key, err := sealed.NewTempKeyFrom(p.entropy)
	if err != nil {
		return nil, err
	}
	bid, err := sealed.SealBid(p.identity, orderBytes, key, p.entropy)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.pending[bid.Digest()] = pendingBid{bid: bid, key: key}
	p.mu.Unlock()
	return bid, nil
}

// RevealsFor inspects a preamble's committed bids and returns signed key
// reveals for every retained bid of this participant found there. The
// call is idempotent: re-asking for the same committed bid yields a fresh
// (byte-identical, ed25519 signing is deterministic) reveal rather than
// nothing, because reveal messages can be lost in transit and the retry
// path — re-broadcast preambles, re-requested reveals — depends on
// participants answering again. Keys therefore stay retained until the
// caller Forgets them, typically once the block is final on-chain.
func (p *Participant) RevealsFor(committed []*sealed.Bid) []*sealed.KeyReveal {
	p.mu.Lock()
	defer p.mu.Unlock()
	var reveals []*sealed.KeyReveal
	for _, b := range committed {
		if pb, ok := p.pending[b.Digest()]; ok {
			reveals = append(reveals, sealed.NewKeyReveal(p.identity, pb.bid, pb.key))
			pb.revealed = true
			p.pending[b.Digest()] = pb
		}
	}
	return reveals
}

// Forget drops the retained keys for the given bid digests — called once
// the bids' block is final and no further reveal can be requested.
func (p *Participant) Forget(digests [][32]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range digests {
		delete(p.pending, d)
	}
}

// PendingCount reports how many sealed bids still await a first preamble
// (bids already revealed at least once are not counted, even though their
// keys stay retained for retries).
func (p *Participant) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pb := range p.pending {
		if !pb.revealed {
			n++
		}
	}
	return n
}
