package miniauction

import (
	"reflect"
	"testing"
)

func TestIndependentGroups(t *testing.T) {
	// Cluster footprints: 0 and 1 share order "b" transitively through
	// auction membership below; 2 and 3 are isolated; 4 shares "x" with 2.
	foot := map[int][]string{
		0: {"a", "b"},
		1: {"b", "c"},
		2: {"x"},
		3: {"y"},
		4: {"x", "z"},
	}
	lookup := func(ci int) []string { return foot[ci] }

	tests := []struct {
		name     string
		auctions []Auction
		want     [][]int
	}{
		{
			name: "disjoint auctions stay separate",
			auctions: []Auction{
				{Clusters: []int{0}},
				{Clusters: []int{3}},
			},
			want: [][]int{{0}, {1}},
		},
		{
			name: "shared order id merges",
			auctions: []Auction{
				{Clusters: []int{0}},
				{Clusters: []int{1}}, // shares "b" with auction 0
				{Clusters: []int{3}},
			},
			want: [][]int{{0, 1}, {2}},
		},
		{
			name: "shared cluster on two paths merges",
			auctions: []Auction{
				{Clusters: []int{2}},
				{Clusters: []int{2, 3}}, // cluster 2 on both paths
			},
			want: [][]int{{0, 1}},
		},
		{
			name: "transitive merge through third auction",
			auctions: []Auction{
				{Clusters: []int{2}},
				{Clusters: []int{3}},
				{Clusters: []int{4}}, // "x" links it to auction 0
			},
			want: [][]int{{0, 2}, {1}},
		},
		{
			name:     "empty",
			auctions: nil,
			want:     nil,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := IndependentGroups(tc.auctions, lookup)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("groups = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestIndependentGroupsPartition: on any input the result must be a
// partition of the auction indexes with ascending members and groups
// ordered by smallest member — the canonical order the parallel merge
// depends on.
func TestIndependentGroupsPartition(t *testing.T) {
	auctions := []Auction{
		{Clusters: []int{0, 1}},
		{Clusters: []int{2}},
		{Clusters: []int{3}},
		{Clusters: []int{4}},
		{Clusters: []int{1, 3}},
	}
	foot := func(ci int) []string { return []string{string(rune('a' + ci))} }
	groups := IndependentGroups(auctions, foot)
	seen := make(map[int]bool)
	lastFirst := -1
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		if g[0] <= lastFirst {
			t.Fatalf("groups not ordered by smallest member: %v", groups)
		}
		lastFirst = g[0]
		for i, ai := range g {
			if i > 0 && ai <= g[i-1] {
				t.Fatalf("group members not ascending: %v", g)
			}
			if seen[ai] {
				t.Fatalf("auction %d in two groups: %v", ai, groups)
			}
			seen[ai] = true
		}
	}
	if len(seen) != len(auctions) {
		t.Fatalf("partition covers %d of %d auctions", len(seen), len(auctions))
	}
}
