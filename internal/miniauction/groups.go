package miniauction

// IndependentGroups partitions mini-auctions into groups that share no
// footprint key, for parallel execution. footprint(clusterID) must
// return the keys (e.g. order IDs) a member cluster can read or write
// during execution; two auctions whose footprints intersect — including
// via a cluster that appears on both root-to-leaf paths — are placed in
// the same group and must be executed sequentially in auction-index
// order. Auctions in different groups touch disjoint state by
// construction, so executing groups concurrently (each against its own
// capacity and bookkeeping state) and merging results in auction-index
// order reproduces the sequential execution exactly.
//
// The returned groups list auction indexes ascending within each group,
// and groups are ordered by their smallest member index, so the
// partition itself is deterministic.
func IndependentGroups(auctions []Auction, footprint func(clusterID int) []string) [][]int {
	if len(auctions) == 0 {
		return nil
	}
	uf := newUnionFind(len(auctions))
	owner := make(map[string]int)
	seen := make(map[int][]string) // cluster ID → footprint, computed once
	for ai, auc := range auctions {
		for _, ci := range auc.Clusters {
			keys, ok := seen[ci]
			if !ok {
				keys = footprint(ci)
				seen[ci] = keys
			}
			for _, key := range keys {
				if prev, claimed := owner[key]; claimed {
					uf.union(prev, ai)
				} else {
					owner[key] = ai
				}
			}
		}
	}
	byRoot := make(map[int][]int)
	var order []int
	for ai := range auctions {
		root := uf.find(ai)
		if _, ok := byRoot[root]; !ok {
			order = append(order, root)
		}
		byRoot[root] = append(byRoot[root], ai)
	}
	groups := make([][]int, 0, len(order))
	for _, root := range order {
		groups = append(groups, byRoot[root])
	}
	return groups
}

// unionFind is a minimal disjoint-set forest with path compression.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, keeping the smaller root so that
// group ordering by smallest member index stays stable.
func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
}
