package miniauction

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompatible(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"overlapping", Interval{Lo: 1, Hi: 5}, Interval{Lo: 3, Hi: 8}, true},
		{"nested", Interval{Lo: 1, Hi: 10}, Interval{Lo: 3, Hi: 4}, true},
		{"disjoint", Interval{Lo: 1, Hi: 2}, Interval{Lo: 3, Hi: 4}, false},
		{"touching endpoints", Interval{Lo: 1, Hi: 3}, Interval{Lo: 3, Hi: 4}, false},
		{"identical", Interval{Lo: 2, Hi: 6}, Interval{Lo: 2, Hi: 6}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compatible(tt.a, tt.b); got != tt.want {
				t.Fatalf("Compatible = %v, want %v", got, tt.want)
			}
			if got := Compatible(tt.b, tt.a); got != tt.want {
				t.Fatalf("Compatible not symmetric")
			}
		})
	}
}

func TestFormEmpty(t *testing.T) {
	if got := Form(nil); got != nil {
		t.Fatalf("Form(nil) = %v", got)
	}
}

func TestFormSingleton(t *testing.T) {
	got := Form([]Interval{{ID: 7, Lo: 1, Hi: 2, Weight: 5}})
	if len(got) != 1 || len(got[0].Clusters) != 1 || got[0].Clusters[0] != 7 {
		t.Fatalf("Form = %+v", got)
	}
	if got[0].Weight != 5 {
		t.Fatalf("Weight = %v, want 5", got[0].Weight)
	}
}

func TestFormCompatibleClustersShareAuction(t *testing.T) {
	// Three mutually overlapping intervals: one root, the others chain
	// under it — a single path (Fig. 4's three-cluster mini-auction).
	ivs := []Interval{
		{ID: 0, Lo: 1, Hi: 10, Weight: 10},
		{ID: 1, Lo: 2, Hi: 9, Weight: 5},
		{ID: 2, Lo: 3, Hi: 8, Weight: 3},
	}
	auctions := Form(ivs)
	if len(auctions) != 1 {
		t.Fatalf("want one mini-auction, got %+v", auctions)
	}
	if len(auctions[0].Clusters) != 3 {
		t.Fatalf("auction should contain all three clusters: %+v", auctions[0])
	}
	if auctions[0].Weight != 18 {
		t.Fatalf("Weight = %v, want 18", auctions[0].Weight)
	}
}

func TestFormDisjointClustersSeparateAuctions(t *testing.T) {
	ivs := []Interval{
		{ID: 0, Lo: 1, Hi: 2, Weight: 1},
		{ID: 1, Lo: 5, Hi: 6, Weight: 2},
		{ID: 2, Lo: 10, Hi: 11, Weight: 3},
	}
	auctions := Form(ivs)
	if len(auctions) != 3 {
		t.Fatalf("disjoint clusters must stay separate: %+v", auctions)
	}
	// Sorted by weight descending.
	if auctions[0].Weight < auctions[1].Weight || auctions[1].Weight < auctions[2].Weight {
		t.Fatalf("not sorted by weight: %+v", auctions)
	}
}

func TestFormRootsMaximizeWeight(t *testing.T) {
	// A heavy wide interval overlaps two light narrow ones that are
	// disjoint from each other. Roots must pick the two narrow ones if
	// their combined weight wins, else the wide one.
	wide := Interval{ID: 0, Lo: 0, Hi: 10, Weight: 5}
	left := Interval{ID: 1, Lo: 0, Hi: 4, Weight: 3}
	right := Interval{ID: 2, Lo: 6, Hi: 10, Weight: 3}
	roots := selectRoots([]Interval{wide, left, right})
	if len(roots) != 2 {
		t.Fatalf("roots = %+v, want the two narrow intervals", roots)
	}
	for _, r := range roots {
		if r.ID == 0 {
			t.Fatalf("wide interval should lose: %+v", roots)
		}
	}
	// Now make the wide interval dominant.
	wide.Weight = 10
	roots = selectRoots([]Interval{wide, left, right})
	if len(roots) != 1 || roots[0].ID != 0 {
		t.Fatalf("heavy wide interval should win: %+v", roots)
	}
}

func TestFormEveryClusterAppears(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rnd.Intn(20)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rnd.Float64() * 10
			ivs[i] = Interval{ID: i, Lo: lo, Hi: lo + 0.1 + rnd.Float64()*5, Weight: rnd.Float64() * 10}
		}
		auctions := Form(ivs)
		seen := make(map[int]bool)
		for _, a := range auctions {
			for _, id := range a.Clusters {
				seen[id] = true
			}
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Fatalf("cluster %d missing from all auctions (n=%d)", i, n)
			}
		}
	}
}

func TestFormPathsArePairwiseChainCompatible(t *testing.T) {
	// Along any root-to-leaf path, each child was attached under a node it
	// is compatible with; verify parent-child compatibility holds.
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rnd.Intn(15)
		ivs := make([]Interval, n)
		byID := make(map[int]Interval, n)
		for i := range ivs {
			lo := rnd.Float64() * 6
			ivs[i] = Interval{ID: i, Lo: lo, Hi: lo + 0.5 + rnd.Float64()*4, Weight: 1 + rnd.Float64()*9}
			byID[i] = ivs[i]
		}
		for _, a := range Form(ivs) {
			for i := 1; i < len(a.Clusters); i++ {
				parent := byID[a.Clusters[i-1]]
				child := byID[a.Clusters[i]]
				if !Compatible(parent, child) {
					t.Fatalf("path %v has incompatible adjacent clusters %v and %v",
						a.Clusters, parent, child)
				}
			}
		}
	}
}

func TestFormDeterministic(t *testing.T) {
	ivs := []Interval{
		{ID: 0, Lo: 1, Hi: 4, Weight: 2},
		{ID: 1, Lo: 2, Hi: 5, Weight: 2},
		{ID: 2, Lo: 3, Hi: 6, Weight: 2},
		{ID: 3, Lo: 7, Hi: 9, Weight: 1},
	}
	a := Form(ivs)
	// Permute input order.
	perm := []Interval{ivs[2], ivs[0], ivs[3], ivs[1]}
	b := Form(perm)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count: %+v vs %+v", a, b)
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || len(a[i].Clusters) != len(b[i].Clusters) {
			t.Fatalf("nondeterministic shapes: %+v vs %+v", a, b)
		}
		for j := range a[i].Clusters {
			if a[i].Clusters[j] != b[i].Clusters[j] {
				t.Fatalf("nondeterministic paths: %+v vs %+v", a, b)
			}
		}
	}
}

// Property: selectRoots always returns pairwise non-overlapping intervals
// and never a worse total weight than the best singleton.
func TestSelectRootsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 1
		ivs := make([]Interval, n)
		best := 0.0
		for i := range ivs {
			lo := rnd.Float64() * 8
			ivs[i] = Interval{ID: i, Lo: lo, Hi: lo + 0.1 + rnd.Float64()*4, Weight: rnd.Float64() * 10}
			if ivs[i].Weight > best {
				best = ivs[i].Weight
			}
		}
		roots := selectRoots(ivs)
		var total float64
		for i, a := range roots {
			total += a.Weight
			for _, b := range roots[i+1:] {
				if Compatible(a, b) {
					return false // overlapping roots
				}
			}
		}
		return total >= best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPathsShareCommonPriceRange: along every root-to-leaf path (one
// mini-auction) the intersection of member intervals must be non-empty —
// a single clearing price exists that every member cluster can live with.
func TestPathsShareCommonPriceRange(t *testing.T) {
	rnd := rand.New(rand.NewSource(19))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rnd.Intn(25)
		ivs := make([]Interval, n)
		byID := make(map[int]Interval, n)
		for i := range ivs {
			lo := rnd.Float64() * 10
			ivs[i] = Interval{ID: i, Lo: lo, Hi: lo + 0.05 + rnd.Float64()*6, Weight: rnd.Float64() * 5}
			byID[i] = ivs[i]
		}
		for _, a := range Form(ivs) {
			lo := 0.0
			hi := 1e18
			for _, id := range a.Clusters {
				iv := byID[id]
				if iv.Lo > lo {
					lo = iv.Lo
				}
				if iv.Hi < hi {
					hi = iv.Hi
				}
			}
			if hi <= lo {
				t.Fatalf("trial %d: path %v has empty common range [%v, %v]",
					trial, a.Clusters, lo, hi)
			}
		}
	}
}
