// Package miniauction implements Algorithm 3 of the DeCloud paper:
// grouping price-compatible clusters into mini-auctions so that a single
// trade reduction can serve many clusters at once, minimizing the welfare
// lost to the DSIC guarantee.
//
// Each cluster is abstracted as a price interval [Lo, Hi] = [ĉ_{z'}, v̂_z]
// with a welfare weight. The algorithm:
//
//  1. chooses roots — a maximum-weight set of non-overlapping intervals
//     (weighted interval scheduling via dynamic programming, the
//     "minimal non-overlapping ranges" of the paper);
//  2. attaches every remaining cluster to the deepest compatible node of
//     a compatible root's tree (two clusters are compatible when each
//     side's marginal valuation exceeds the other's marginal cost:
//     Hi_a > Lo_b and Hi_b > Lo_a, i.e. their intervals overlap);
//  3. yields each root-to-leaf path as one mini-auction.
package miniauction

import "slices"

// Interval is a cluster's price range and welfare weight.
type Interval struct {
	// ID identifies the cluster to the caller (e.g. an index).
	ID int
	// Lo is ĉ_{z'}: the marginal (highest) allocated normalized cost.
	Lo float64
	// Hi is v̂_z: the marginal (lowest) allocated normalized valuation.
	Hi float64
	// Weight is the cluster's estimated welfare; roots maximize total
	// weight, and mini-auctions are executed in descending weight order.
	Weight float64
}

// Compatible reports the paper's price compatibility between clusters a
// and b: v̂_{z,a} > ĉ_{z',b} and v̂_{z,b} > ĉ_{z',a}.
func Compatible(a, b Interval) bool {
	return a.Hi > b.Lo && b.Hi > a.Lo
}

// Auction is one mini-auction: the cluster IDs along a root-to-leaf path.
type Auction struct {
	// Clusters lists member cluster IDs, root first.
	Clusters []int
	// Weight is the summed welfare weight of the member clusters.
	Weight float64
}

type node struct {
	iv       Interval
	children []*node
	// lo/hi is the running intersection of intervals along the path from
	// the root to this node. A mini-auction clears at ONE price common to
	// all member clusters, so every cluster on a path must share a
	// non-empty price range — attaching by pairwise compatibility alone
	// would chain together clusters whose common range is empty and force
	// the pooled price below some members' costs.
	lo, hi float64
}

// Form groups the given cluster intervals into mini-auctions. Every input
// interval appears in at least one auction (an isolated cluster becomes a
// singleton auction). The result is ordered by descending weight with
// deterministic tie-breaking, ready for Algorithm 1's execution loop.
func Form(intervals []Interval) []Auction {
	if len(intervals) == 0 {
		return nil
	}
	roots := selectRoots(intervals)
	isRoot := make(map[int]bool, len(roots))
	trees := make([]*node, 0, len(roots))
	for _, r := range roots {
		trees = append(trees, &node{iv: r, lo: r.Lo, hi: r.Hi})
		isRoot[r.ID] = true
	}

	// Attach non-root clusters to the first compatible tree, walking down
	// to the deepest compatible node (Algorithm 3's preorder insertion).
	// Heavier clusters attach first so they end up closer to the root.
	rest := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		if !isRoot[iv.ID] {
			rest = append(rest, iv)
		}
	}
	// (Weight desc, ID) is a total order — cluster IDs are unique.
	slices.SortFunc(rest, func(a, b Interval) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		}
		return a.ID - b.ID
	})
	for _, iv := range rest {
		attached := false
		for _, root := range trees {
			if overlaps(iv, root.lo, root.hi) {
				attach(root, iv)
				attached = true
				break
			}
		}
		if !attached {
			trees = append(trees, &node{iv: iv, lo: iv.Lo, hi: iv.Hi})
		}
	}

	weightOf := make(map[int]float64, len(intervals))
	for _, iv := range intervals {
		weightOf[iv.ID] = iv.Weight
	}
	var auctions []Auction
	for _, root := range trees {
		for _, path := range rootToLeafPaths(root, nil) {
			var w float64
			for _, id := range path {
				w += weightOf[id]
			}
			auctions = append(auctions, Auction{Clusters: path, Weight: w})
		}
	}
	// Root-to-leaf paths are distinct ID sequences, so (Weight desc,
	// lexicographic path) is a total order.
	slices.SortFunc(auctions, func(a, b Auction) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		}
		return slices.Compare(a.Clusters, b.Clusters)
	})
	return auctions
}

// overlaps reports whether iv shares a non-empty open range with [lo, hi].
func overlaps(iv Interval, lo, hi float64) bool {
	return iv.Hi > lo && hi > iv.Lo
}

// attach inserts iv below the deepest node whose path intersection still
// admits it, narrowing the common price range as it descends.
func attach(root *node, iv Interval) {
	cur := root
	for {
		var next *node
		for _, ch := range cur.children {
			if overlaps(iv, ch.lo, ch.hi) {
				next = ch
				break
			}
		}
		if next == nil {
			child := &node{
				iv: iv,
				lo: maxf(cur.lo, iv.Lo),
				hi: minf(cur.hi, iv.Hi),
			}
			cur.children = append(cur.children, child)
			return
		}
		cur = next
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// rootToLeafPaths enumerates every root-to-leaf ID path.
func rootToLeafPaths(n *node, prefix []int) [][]int {
	prefix = append(prefix, n.iv.ID)
	if len(n.children) == 0 {
		return [][]int{append([]int(nil), prefix...)}
	}
	var out [][]int
	for _, ch := range n.children {
		out = append(out, rootToLeafPaths(ch, prefix)...)
	}
	return out
}

// selectRoots solves weighted interval scheduling over the cluster
// intervals: a maximum-weight subset of pairwise non-overlapping
// intervals, in O(n log n) via dynamic programming.
func selectRoots(intervals []Interval) []Interval {
	ivs := append([]Interval(nil), intervals...)
	// (Hi, Lo, ID) is a total order — cluster IDs are unique.
	slices.SortFunc(ivs, func(a, b Interval) int {
		switch {
		case a.Hi < b.Hi:
			return -1
		case a.Hi > b.Hi:
			return 1
		}
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		}
		return a.ID - b.ID
	})
	n := len(ivs)
	// p[i] is the rightmost interval j < i whose Hi ≤ Lo_i. Touching
	// endpoints do not overlap under the strict Compatible predicate.
	p := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = -1
		lo, hi := 0, i-1
		for lo <= hi {
			mid := (lo + hi) / 2
			if ivs[mid].Hi <= ivs[i].Lo {
				p[i] = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
	}
	// dp[i]: best weight using the first i intervals.
	dp := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		skip := dp[i-1]
		with := ivs[i-1].Weight
		if p[i-1] >= 0 {
			with += dp[p[i-1]+1]
		}
		if with > skip {
			dp[i] = with
		} else {
			dp[i] = skip
		}
	}
	var roots []Interval
	for i := n; i > 0; {
		if dp[i] == dp[i-1] {
			i--
			continue
		}
		roots = append(roots, ivs[i-1])
		i = p[i-1] + 1
	}
	for l, r := 0, len(roots)-1; l < r; l, r = l+1, r-1 {
		roots[l], roots[r] = roots[r], roots[l]
	}
	return roots
}
