package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: decloud
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMechanism1000 	       3	 955905466 ns/op	268063125 B/op	 5346487 allocs/op
BenchmarkMechanism400-4 	       5	 123456789 ns/op	  1000000 B/op	   20000 allocs/op
BenchmarkFig5a 	       2	 2000000000 ns/op	       271.4 welfare@400req
PASS
ok  	decloud	4.594s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	m := byName(rs)
	r := m["BenchmarkMechanism1000"]
	if r.Iters != 3 || r.NsPerOp != 955905466 || r.BPerOp != 268063125 || r.AllocsOp != 5346487 {
		t.Fatalf("unexpected result: %+v", r)
	}
	if _, ok := m["BenchmarkMechanism400"]; !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	fig := m["BenchmarkFig5a"]
	if fig.Metrics["welfare@400req"] != 271.4 {
		t.Fatalf("custom metric not captured: %+v", fig)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rs, err := Parse(strings.NewReader("BenchmarkBroken abc def\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from garbage, want 0", len(rs))
	}
}

func TestWriteComparison(t *testing.T) {
	old := []Result{{Name: "BenchmarkX", NsPerOp: 200, AllocsOp: 100}}
	new := []Result{{Name: "BenchmarkX", NsPerOp: 100, AllocsOp: 40}, {Name: "BenchmarkOnlyNew", NsPerOp: 5}}
	var sb strings.Builder
	WriteComparison(&sb, old, new)
	got := sb.String()
	if !strings.Contains(got, "BenchmarkX") {
		t.Fatalf("comparison missing benchmark:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkOnlyNew") {
		t.Fatalf("comparison includes benchmark absent from baseline:\n%s", got)
	}
	if !strings.Contains(got, "-50.0%") || !strings.Contains(got, "-60.0%") {
		t.Fatalf("expected -50.0%% ns/op and -60.0%% allocs/op deltas:\n%s", got)
	}
	if !strings.Contains(got, "old allocs/op") || !strings.Contains(got, "old B/op") {
		t.Fatalf("expected a dedicated memory-profile table:\n%s", got)
	}
}

func TestWriteComparisonSkipsMemoryTableWithoutBenchmem(t *testing.T) {
	old := []Result{{Name: "BenchmarkX", NsPerOp: 200}}
	new := []Result{{Name: "BenchmarkX", NsPerOp: 100}}
	var sb strings.Builder
	WriteComparison(&sb, old, new)
	if strings.Contains(sb.String(), "allocs/op") {
		t.Fatalf("memory table printed for a run without -benchmem:\n%s", sb.String())
	}
}

func TestDelta(t *testing.T) {
	if d := Delta(0, 10); d != 0 {
		t.Fatalf("Delta(0,10) = %v, want 0", d)
	}
	if d := Delta(100, 75); d != -25 {
		t.Fatalf("Delta(100,75) = %v, want -25", d)
	}
}

func TestRegressions(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
		{Name: "BenchmarkZeroBase"},
	}
	new := []Result{
		{Name: "BenchmarkA", NsPerOp: 104}, // +4%: inside a 5% gate
		{Name: "BenchmarkB", NsPerOp: 120}, // +20%: regression
		{Name: "BenchmarkOnlyNew", NsPerOp: 999},
		{Name: "BenchmarkZeroBase", NsPerOp: 50}, // no baseline signal
	}
	regs := Regressions(old, new, 5, 0)
	if len(regs) != 1 {
		t.Fatalf("want exactly the +20%% regression, got %v", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkB") || !strings.Contains(regs[0], "+20.0%") {
		t.Fatalf("unexpected regression line: %q", regs[0])
	}
	if regs := Regressions(old, new, 25, 0); len(regs) != 0 {
		t.Fatalf("a 25%% gate must pass, got %v", regs)
	}
}

func TestRegressionsAllocGate(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 1000},
		{Name: "BenchmarkNoAllocs", NsPerOp: 100}, // no allocs baseline: ns-only
	}
	new := []Result{
		{Name: "BenchmarkA", NsPerOp: 118, AllocsOp: 1100},     // ns +18%, allocs +10%
		{Name: "BenchmarkNoAllocs", NsPerOp: 110, AllocsOp: 5}, // ns +10%
	}
	// Loose ns bound absorbs runner drift; the tight alloc bound still
	// catches the +10% allocation growth.
	regs := Regressions(old, new, 30, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op +10.0%") {
		t.Fatalf("want exactly the allocs/op regression, got %v", regs)
	}
	// Both statistics over tolerance → both reported for the same name.
	if regs := Regressions(old, new, 15, 5); len(regs) != 2 {
		t.Fatalf("want A's ns AND alloc regressions, got %v", regs)
	}
	if regs := Regressions(old, new, 0, 15); len(regs) != 0 {
		t.Fatalf("disabled ns gate + 15%% alloc gate must pass, got %v", regs)
	}
}

func TestRatioViolation(t *testing.T) {
	run := []Result{
		{Name: "BenchmarkFast", NsPerOp: 40},
		{Name: "BenchmarkSlow", NsPerOp: 100},
	}
	if v := RatioViolation(run, "BenchmarkFast", "BenchmarkSlow", 0.5); v != "" {
		t.Fatalf("0.4 <= 0.5 must pass, got %q", v)
	}
	v := RatioViolation(run, "BenchmarkFast", "BenchmarkSlow", 0.25)
	if v == "" || !strings.Contains(v, "0.400") {
		t.Fatalf("0.4 > 0.25 must fail with the measured ratio, got %q", v)
	}
	if v := RatioViolation(run, "BenchmarkRenamed", "BenchmarkSlow", 0.5); v == "" {
		t.Fatal("a missing benchmark must be a violation, not a silent pass")
	}
}

func TestBest(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", Iters: 3, NsPerOp: 1200, AllocsOp: 10},
		{Name: "BenchmarkB", Iters: 3, NsPerOp: 500},
		{Name: "BenchmarkA", Iters: 3, NsPerOp: 1000, AllocsOp: 9},
		{Name: "BenchmarkA", Iters: 3, NsPerOp: 1100, AllocsOp: 11},
		{Name: "BenchmarkB", Iters: 3, NsPerOp: 700},
		{Name: "BenchmarkMetricOnly", Metrics: map[string]float64{"orders/round": 100}},
		{Name: "BenchmarkMetricOnly", NsPerOp: 42},
	}
	got := Best(in)
	if len(got) != 3 {
		t.Fatalf("Best collapsed to %d results, want 3: %+v", len(got), got)
	}
	// First-seen order is preserved; each name keeps its fastest run.
	if got[0].Name != "BenchmarkA" || got[0].NsPerOp != 1000 || got[0].AllocsOp != 9 {
		t.Fatalf("BenchmarkA: %+v, want the ns/op=1000 run with its own allocs", got[0])
	}
	if got[1].Name != "BenchmarkB" || got[1].NsPerOp != 500 {
		t.Fatalf("BenchmarkB: %+v, want ns/op=500", got[1])
	}
	// A zero-ns/op entry (metric-only line) is replaced by any timed run.
	if got[2].Name != "BenchmarkMetricOnly" || got[2].NsPerOp != 42 {
		t.Fatalf("BenchmarkMetricOnly: %+v, want the timed run", got[2])
	}

	single := []Result{{Name: "BenchmarkSolo", NsPerOp: 7}}
	if out := Best(single); len(out) != 1 || out[0].Name != "BenchmarkSolo" || out[0].NsPerOp != 7 {
		t.Fatalf("single-run input must pass through unchanged: %+v", out)
	}
	if out := Best(nil); out != nil {
		t.Fatalf("nil input must return nil, got %+v", out)
	}
}
