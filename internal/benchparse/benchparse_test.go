package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: decloud
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMechanism1000 	       3	 955905466 ns/op	268063125 B/op	 5346487 allocs/op
BenchmarkMechanism400-4 	       5	 123456789 ns/op	  1000000 B/op	   20000 allocs/op
BenchmarkFig5a 	       2	 2000000000 ns/op	       271.4 welfare@400req
PASS
ok  	decloud	4.594s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	m := byName(rs)
	r := m["BenchmarkMechanism1000"]
	if r.Iters != 3 || r.NsPerOp != 955905466 || r.BPerOp != 268063125 || r.AllocsOp != 5346487 {
		t.Fatalf("unexpected result: %+v", r)
	}
	if _, ok := m["BenchmarkMechanism400"]; !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	fig := m["BenchmarkFig5a"]
	if fig.Metrics["welfare@400req"] != 271.4 {
		t.Fatalf("custom metric not captured: %+v", fig)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rs, err := Parse(strings.NewReader("BenchmarkBroken abc def\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from garbage, want 0", len(rs))
	}
}

func TestWriteComparison(t *testing.T) {
	old := []Result{{Name: "BenchmarkX", NsPerOp: 200, AllocsOp: 100}}
	new := []Result{{Name: "BenchmarkX", NsPerOp: 100, AllocsOp: 40}, {Name: "BenchmarkOnlyNew", NsPerOp: 5}}
	var sb strings.Builder
	WriteComparison(&sb, old, new)
	got := sb.String()
	if !strings.Contains(got, "BenchmarkX") {
		t.Fatalf("comparison missing benchmark:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkOnlyNew") {
		t.Fatalf("comparison includes benchmark absent from baseline:\n%s", got)
	}
	if !strings.Contains(got, "-50.0%") || !strings.Contains(got, "-60.0%") {
		t.Fatalf("expected -50.0%% ns/op and -60.0%% allocs/op deltas:\n%s", got)
	}
}

func TestDelta(t *testing.T) {
	if d := Delta(0, 10); d != 0 {
		t.Fatalf("Delta(0,10) = %v, want 0", d)
	}
	if d := Delta(100, 75); d != -25 {
		t.Fatalf("Delta(100,75) = %v, want -25", d)
	}
}
