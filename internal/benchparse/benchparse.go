// Package benchparse parses the text output of `go test -bench` into
// structured results and renders benchstat-style comparisons. It exists
// so the perf trajectory of the mechanism can be recorded as JSON
// (BENCH_*.json) and diffed across PRs without external tooling.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Standard units (ns/op, B/op, allocs/op)
// get dedicated fields; every other `value unit` pair — including custom
// b.ReportMetric units such as "welfare@400req" — lands in Metrics, so
// the economics of a run are versioned next to its speed.
type Result struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BPerOp   float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Document is the JSON shape written by cmd/benchjson: the current run,
// optionally the previous run it was compared against.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
	Baseline   []Result `json:"baseline,omitempty"`
}

// Parse extracts benchmark results from go test output. Non-benchmark
// lines (package headers, PASS/ok, test logs) are ignored.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// parseLine parses `BenchmarkName[-P] <iters> <value> <unit> [<value> <unit>]...`.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so runs on different hosts align.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BPerOp = val
		case "allocs/op":
			res.AllocsOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	if res.NsPerOp == 0 && res.BPerOp == 0 && res.AllocsOp == 0 && len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

// Best collapses repeated benchmark names (a `go test -count=N` run
// emits each benchmark N times) to the run with the lowest ns/op.
// Minimum-of-N is the contention-robust statistic for a gate on a
// shared box: external load only ever adds time, so the fastest run is
// the most reproducible measurement of the code itself. Single-run
// input passes through unchanged; first-seen order is preserved.
func Best(rs []Result) []Result {
	best := make(map[string]int, len(rs))
	var out []Result
	for _, r := range rs {
		i, seen := best[r.Name]
		if !seen {
			best[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp > 0 && (out[i].NsPerOp <= 0 || r.NsPerOp < out[i].NsPerOp) {
			out[i] = r
		}
	}
	return out
}

// byName indexes results for comparison.
func byName(rs []Result) map[string]Result {
	m := make(map[string]Result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

// Delta returns (new-old)/old as a percentage; 0 when old is 0.
func Delta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// Regressions returns one line per benchmark present in both runs whose
// ns/op regressed by more than nsTolPct or whose allocs/op regressed by
// more than allocTolPct (e.g. 5 = +5%; 0 disables that check).
// Benchmarks missing from either run are ignored: adding or retiring a
// benchmark is not a regression. An empty slice means the gate passes.
//
// The two tolerances exist because the two statistics have different
// reproducibility on a shared runner: allocs/op is a property of the
// code alone (bit-identical across runs), while min-of-N ns/op still
// drifts with co-tenant load, so it usually gets a looser bound that
// only catches order-of-magnitude blowups.
func Regressions(old, new []Result, nsTolPct, allocTolPct float64) []string {
	oldBy := byName(old)
	var out []string
	names := make([]string, 0, len(new))
	for _, r := range new {
		if _, ok := oldBy[r.Name]; ok {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	newBy := byName(new)
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		if o.NsPerOp <= 0 {
			continue
		}
		if nsTolPct > 0 {
			if d := Delta(o.NsPerOp, n.NsPerOp); d > nsTolPct {
				out = append(out, fmt.Sprintf("%s: ns/op %+.1f%% (%.0f -> %.0f, tolerance %.1f%%)",
					name, d, o.NsPerOp, n.NsPerOp, nsTolPct))
			}
		}
		if allocTolPct > 0 && o.AllocsOp > 0 {
			if d := Delta(o.AllocsOp, n.AllocsOp); d > allocTolPct {
				out = append(out, fmt.Sprintf("%s: allocs/op %+.1f%% (%.0f -> %.0f, tolerance %.1f%%)",
					name, d, o.AllocsOp, n.AllocsOp, allocTolPct))
			}
		}
	}
	return out
}

// RatioViolation checks a same-run invariant: num's ns/op must be at
// most maxRatio × den's ns/op. Comparing two benchmarks from the SAME
// invocation cancels machine-speed drift entirely, so this stays a hard
// gate on shared runners where absolute ns/op wanders ±20%. It returns
// "" when the invariant holds and an explanatory line otherwise — a
// missing benchmark is a violation, not a skip, because a silently
// renamed benchmark must not turn the gate off.
func RatioViolation(results []Result, num, den string, maxRatio float64) string {
	by := byName(results)
	n, okN := by[num]
	d, okD := by[den]
	if !okN || !okD {
		return fmt.Sprintf("ratio %s/%s: benchmark missing from run (have %s=%v, %s=%v)",
			num, den, num, okN, den, okD)
	}
	if d.NsPerOp <= 0 {
		return fmt.Sprintf("ratio %s/%s: denominator ns/op %.0f", num, den, d.NsPerOp)
	}
	if r := n.NsPerOp / d.NsPerOp; r > maxRatio {
		return fmt.Sprintf("ratio %s/%s = %.3f exceeds %.3f (%.0f vs %.0f ns/op)",
			num, den, r, maxRatio, n.NsPerOp, d.NsPerOp)
	}
	return ""
}

// WriteComparison prints benchstat-style before/after tables for the
// benchmarks present in both runs: first speed (ns/op), then the memory
// profile (allocs/op and B/op) for every benchmark that reported it.
// Negative deltas are improvements. The memory table is the one worth
// reading on a shared runner — allocs/op is bit-reproducible, so its
// delta column is signal even when ns/op drowns in co-tenant noise.
func WriteComparison(w io.Writer, old, new []Result) {
	oldBy := byName(old)
	names := make([]string, 0, len(new))
	for _, r := range new {
		if _, ok := oldBy[r.Name]; ok {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "benchjson: no overlapping benchmarks to compare")
		return
	}
	newBy := byName(new)
	fmt.Fprintf(w, "%-40s %15s %15s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %8.1f%%\n",
			name, o.NsPerOp, n.NsPerOp, Delta(o.NsPerOp, n.NsPerOp))
	}
	header := false
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		if o.AllocsOp <= 0 && n.AllocsOp <= 0 {
			continue // no -benchmem data on either side
		}
		if !header {
			header = true
			fmt.Fprintf(w, "\n%-40s %14s %14s %9s %14s %14s %9s\n",
				"benchmark", "old allocs/op", "new allocs/op", "delta", "old B/op", "new B/op", "delta")
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %8.1f%% %14.0f %14.0f %8.1f%%\n",
			name, o.AllocsOp, n.AllocsOp, Delta(o.AllocsOp, n.AllocsOp),
			o.BPerOp, n.BPerOp, Delta(o.BPerOp, n.BPerOp))
	}
}
