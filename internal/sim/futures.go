package sim

import (
	"context"
	"fmt"
	"math/rand"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/contract"
	"decloud/internal/futures"
	"decloud/internal/ledger"
	"decloud/internal/miner"
	"decloud/internal/obs"
	"decloud/internal/workload"
)

// twoStageSource is marketSource's futures counterpart: each round's
// drain arrives pre-split into forward and spot stages with the
// divergence verdicts attached. Stream mode uses the stream's own
// tagging (the sim knobs fill in unset stream knobs); Generate mode
// namespaces IDs per round — the exchange holds orders across rounds,
// so the generator's reused IDs would collide — and then splits with
// the same (seed, order ID) derivation the stream uses.
func twoStageSource(cfg Config) func(round int) *workload.TwoStageMarket {
	if cfg.Stream != nil {
		scfg := *cfg.Stream
		if scfg.FuturesFraction == 0 {
			scfg.FuturesFraction = cfg.FuturesSplit
		}
		if scfg.DemandShock == 0 {
			scfg.DemandShock = cfg.DemandShock
		}
		if scfg.SupplyShock == 0 {
			scfg.SupplyShock = cfg.SupplyShock
		}
		s := workload.NewStream(scfg)
		n := cfg.StreamOrders
		if n <= 0 {
			n = 256
		}
		return func(int) *workload.TwoStageMarket { return workload.CollectTwoStage(s, n) }
	}
	return func(round int) *workload.TwoStageMarket {
		wcfg := cfg.Workload
		wcfg.Seed = cfg.Workload.Seed + int64(round)*1009
		market := workload.Generate(wcfg)
		for i, r := range market.Requests {
			fresh := *r
			fresh.Resources = r.Resources.Clone()
			fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", r.ID, round))
			market.Requests[i] = &fresh
		}
		for i, o := range market.Offers {
			fresh := *o
			fresh.Resources = o.Resources.Clone()
			fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", o.ID, round))
			market.Offers[i] = &fresh
		}
		return workload.SplitTwoStage(market, cfg.Workload.Seed,
			cfg.FuturesSplit, cfg.DemandShock, cfg.SupplyShock)
	}
}

// controlMarket merges a stage-split round back into one spot market for
// the control arm: surviving forward orders submit spot, failing ones
// are withheld (the no-show buyer never bids, the defaulting seller's
// capacity never materializes). Same demand/supply realization as the
// treatment arm, no reservation stage.
func controlMarket(tm *workload.TwoStageMarket) *workload.Market {
	m := &workload.Market{}
	for _, r := range tm.Fwd.Requests {
		if !tm.NoShows[r.ID] {
			m.Requests = append(m.Requests, r)
		}
	}
	m.Requests = append(m.Requests, tm.Spot.Requests...)
	for _, o := range tm.Fwd.Offers {
		if !tm.Defaults[o.ID] {
			m.Offers = append(m.Offers, o)
		}
	}
	m.Offers = append(m.Offers, tm.Spot.Offers...)
	return m
}

// spotUtilization is the control arm's realized-utilization mirror of
// the exchange's: matched resource·time over materialized capacity.
func spotUtilization(out *auction.Outcome, offs []*bidding.Offer) float64 {
	var capacity, used float64
	for _, o := range offs {
		capacity += futures.OfferCapacity(o)
	}
	for i := range out.Matches {
		used += futures.GrantedLoad(&out.Matches[i])
	}
	if capacity <= 0 {
		return 0
	}
	return used / capacity
}

// futuresMetrics folds one two-stage round into the sim's metrics row.
// The greedy benchmark runs over the round's FULL submission set (both
// stages, failures included) — what an omniscient spot matcher with no
// divergence would have cleared — so the welfare ratio prices both the
// truthful design and the divergence risk.
func futuresMetrics(ex *futures.Exchange, fm *obs.FuturesMetrics, res *futures.RoundResult, tm *workload.TwoStageMarket, cfg Config) RoundMetrics {
	allR := append(append([]*bidding.Request{}, tm.Fwd.Requests...), tm.Spot.Requests...)
	allO := append(append([]*bidding.Offer{}, tm.Fwd.Offers...), tm.Spot.Offers...)
	bench := auction.RunGreedy(allR, allO, cfg.Auction)
	m := metricsFrom(res.Spot, bench, len(allR))
	m.Reserved = len(res.Reserved)
	if d := res.Delivery; d != nil {
		m.DeliveredFut = len(d.Delivered)
		m.FutNoShows = len(d.NoShows)
		m.SellerDefaults = len(d.Defaults)
		m.Bumped = len(d.Bumped)
		m.SpotRetries = len(d.RetryRequests)
		m.Matches += m.DeliveredFut
		m.Welfare += d.DeliveredWelfare()
		m.Payments += d.DeliveredPayments()
	}
	m.Utilization = res.Utilization
	m.PenaltyFlow = res.PenaltyCollected
	if m.BenchWelfare > 0 {
		m.WelfareRatio = m.Welfare / m.BenchWelfare
	}
	if len(allR) > 0 {
		m.Satisfaction = float64(m.Matches) / float64(len(allR))
	}
	st := ex.Stats()
	liveR, _ := ex.Live()
	fm.ObserveFuturesRound(m.Reserved, m.DeliveredFut, m.FutNoShows, m.SellerDefaults,
		m.Bumped, m.SpotRetries, res.Utilization, st.PenaltiesCollected, st.PenaltiesCredited, liveR)
	return m
}

// fastFuturesRound runs one in-process two-stage round on the
// persistent exchange.
func fastFuturesRound(ex *futures.Exchange, fm *obs.FuturesMetrics, tm *workload.TwoStageMarket, cfg Config, round int) RoundMetrics {
	res := ex.Run(futures.RoundInput{
		FwdRequests:  tm.Fwd.Requests,
		FwdOffers:    tm.Fwd.Offers,
		SpotRequests: tm.Spot.Requests,
		SpotOffers:   tm.Spot.Offers,
		NoShows:      tm.NoShows,
		Defaults:     tm.Defaults,
		Evidence:     []byte(fmt.Sprintf("sim-fast-%d-%d", cfg.Workload.Seed, round)),
	})
	return futuresMetrics(ex, fm, res, tm, cfg)
}

// fastControlRound is the spot-only control arm: the merged surviving
// market clears through plain auction.Run.
func fastControlRound(tm *workload.TwoStageMarket, cfg Config, round int) RoundMetrics {
	market := controlMarket(tm)
	acfg := cfg.Auction
	acfg.Evidence = []byte(fmt.Sprintf("sim-fast-%d-%d", cfg.Workload.Seed, round))
	out := auction.Run(market.Requests, market.Offers, acfg)
	bench := auction.RunGreedy(market.Requests, market.Offers, cfg.Auction)
	m := metricsFrom(out, bench, len(market.Requests))
	m.Utilization = spotUtilization(out, market.Offers)
	return m
}

// ledgerFuturesRound routes the two-stage round's SPOT stage through the
// full two-phase protocol: the reservation stage clears off-chain (but
// hash-chained) before the round, its delivery fallout joins the sealed
// spot submissions, and the committed block's outcome is what the
// exchange records. Every futures settlement then flows through the
// contract registry — delivered contracts are accepted, no-shows denied
// by the client, seller defaults and bumps denied by the provider — so
// reputation prices forward reliability exactly as it prices spot
// denials. Futures agreements are namespaced under synthetic negative
// block heights (-(round+1)): they settle against reservation state, not
// a chain block.
func ledgerFuturesRound(ex *futures.Exchange, fm *obs.FuturesMetrics, net *miner.Network, roster map[bidding.ParticipantID]*miner.Participant, tm *workload.TwoStageMarket, cfg Config, round int) (RoundMetrics, error) {
	rres := &futures.RoundResult{Round: ex.Round()}
	rres.Reserved = ex.Reserve(futures.RoundInput{
		FwdRequests: tm.Fwd.Requests,
		FwdOffers:   tm.Fwd.Offers,
		NoShows:     tm.NoShows,
		Defaults:    tm.Defaults,
	})
	rres.Delivery = ex.Deliver()
	reqs, offs := ex.SpotMarket(rres.Delivery, tm.Spot.Requests, tm.Spot.Offers)
	market := &workload.Market{Requests: reqs, Offers: offs}
	participants, err := SubmitMarket(net, roster, market)
	if err != nil {
		return RoundMetrics{}, err
	}
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		return RoundMetrics{}, err
	}
	restoreGroundTruth(res.Outcome, market)
	ex.RecordSpot(rres, res.Outcome, reqs, offs)

	metrics := futuresMetrics(ex, fm, rres, tm, cfg)
	metrics.BlockHeight = res.Block.Preamble.Height
	metrics.Winner = res.Winner

	// Spot agreements: the usual client accept/deny dynamics.
	rnd := rand.New(rand.NewSource(cfg.Workload.Seed + int64(round)))
	reg := net.Contracts()
	for _, id := range res.Agreements {
		a, err := reg.Get(id)
		if err != nil {
			return metrics, err
		}
		if rnd.Float64() < cfg.DenyProb {
			if _, err := reg.Deny(id, a.Client()); err != nil {
				return metrics, err
			}
			metrics.Denied++
		} else {
			if err := reg.Accept(id, a.Client()); err != nil {
				return metrics, err
			}
			metrics.Agreed++
		}
	}
	agreed, denied, err := settleFuturesContracts(reg, rres.Delivery, round)
	if err != nil {
		return metrics, err
	}
	metrics.Agreed += agreed
	metrics.Denied += denied
	return metrics, nil
}

// settleFuturesContracts pushes one delivery's settlements through the
// contract registry under a synthetic negative block height. Delivered →
// client Accept (+reputation); NoShow → client Deny (deny penalty on the
// buyer); Defaulted/Bumped → provider-side Deny (penalty on the seller).
func settleFuturesContracts(reg *contract.Registry, d *futures.Delivery, round int) (agreed, denied int, err error) {
	if d == nil {
		return 0, 0, nil
	}
	var list []*futures.Reservation
	list = append(list, d.Delivered...)
	list = append(list, d.NoShows...)
	list = append(list, d.Defaults...)
	list = append(list, d.Bumped...)
	if len(list) == 0 {
		return 0, 0, nil
	}
	recs := make([]ledger.AllocationRecord, 0, len(list))
	for _, r := range list {
		granted := make(map[string]float64, len(r.Request.Resources))
		for k, q := range r.Request.Resources {
			granted[string(k)] = q
		}
		recs = append(recs, ledger.AllocationRecord{
			RequestID: string(r.Request.ID),
			OfferID:   string(r.Offer.ID),
			Client:    string(r.Request.Client),
			Provider:  string(r.Offer.Provider),
			Payment:   r.Payment,
			UnitPrice: r.UnitPrice,
			Granted:   granted,
		})
	}
	ids := reg.ProposeFromBlock(int64(-(round + 1)), recs)
	for i, r := range list {
		id := ids[i]
		switch r.Status {
		case futures.Delivered:
			if err := reg.Accept(id, r.Request.Client); err != nil {
				return agreed, denied, err
			}
			agreed++
		case futures.NoShow:
			if _, err := reg.Deny(id, r.Request.Client); err != nil {
				return agreed, denied, err
			}
			denied++
		default: // Defaulted, Bumped: the seller broke the contract.
			if _, err := reg.DenyByProvider(id, r.Offer.Provider); err != nil {
				return agreed, denied, err
			}
			denied++
		}
	}
	return agreed, denied, nil
}

// ledgerControlRound is the spot-only control arm on the full protocol.
func ledgerControlRound(net *miner.Network, roster map[bidding.ParticipantID]*miner.Participant, tm *workload.TwoStageMarket, cfg Config, round int) (RoundMetrics, error) {
	return ledgerRound(net, roster, controlMarket(tm), cfg, round)
}
