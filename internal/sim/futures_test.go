package sim

import (
	"testing"

	"decloud/internal/auction"
	"decloud/internal/obs"
	"decloud/internal/workload"
)

func futuresConfig(mode Mode, overbook float64) Config {
	cfg := Config{
		Mode:         mode,
		Rounds:       6,
		Workload:     workload.Config{Seed: 21, Requests: 60},
		FuturesSplit: 0.5,
		DemandShock:  0.3,
		SupplyShock:  0.2,
	}
	cfg.Auction = auction.DefaultConfig()
	cfg.Auction.Futures = auction.FuturesConfig{
		OverbookRatio:  overbook,
		PenaltyRate:    0.2,
		ReserveHorizon: 2,
	}
	return cfg
}

// TestFastFuturesSimulation: a fast-mode two-stage run reserves, delivers,
// and keeps the exchange's conservation identity (checked inside Run).
func TestFastFuturesSimulation(t *testing.T) {
	res, err := Run(futuresConfig(Fast, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	var reserved, delivered, noShows int
	var util float64
	for _, m := range res.Rounds {
		reserved += m.Reserved
		delivered += m.DeliveredFut
		noShows += m.FutNoShows
		util += m.Utilization
	}
	if reserved == 0 {
		t.Fatal("no forward contracts made")
	}
	if delivered == 0 {
		t.Fatal("no reservations delivered")
	}
	if noShows == 0 {
		t.Fatal("no no-shows despite DemandShock 0.3")
	}
	if util <= 0 {
		t.Fatal("utilization never positive")
	}
}

// TestFastFuturesDeterministic: two identical runs agree round for round
// on every futures column.
func TestFastFuturesDeterministic(t *testing.T) {
	cfg := futuresConfig(Fast, 1.5)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		am, bm := a.Rounds[i], b.Rounds[i]
		if am.Reserved != bm.Reserved || am.DeliveredFut != bm.DeliveredFut ||
			am.Utilization != bm.Utilization || am.PenaltyFlow != bm.PenaltyFlow ||
			am.Welfare != bm.Welfare {
			t.Fatalf("round %d differs: %+v vs %+v", i, am, bm)
		}
	}
}

// TestFastControlArm: FuturesSplit without Auction.Futures runs the
// spot-only control arm — no reservations, utilization still measured,
// failing forward orders withheld from the market.
func TestFastControlArm(t *testing.T) {
	cfg := futuresConfig(Fast, 1.5)
	cfg.Auction.Futures = auction.FuturesConfig{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawUtil := false
	for _, m := range res.Rounds {
		if m.Reserved != 0 || m.DeliveredFut != 0 || m.PenaltyFlow != 0 {
			t.Fatalf("control arm produced futures activity: %+v", m)
		}
		if m.Utilization > 0 {
			sawUtil = true
		}
		if m.Requests != 60 {
			t.Fatalf("round %d: Requests must count the full submission set, got %d", m.Round, m.Requests)
		}
	}
	if !sawUtil {
		t.Fatal("control arm never measured utilization")
	}
}

// TestLedgerFuturesSimulation: the two-stage market on the full
// protocol — reservations settle through the contract registry, so
// no-shows and seller defaults decay reputation below the accept-only
// baseline of 1.0.
func TestLedgerFuturesSimulation(t *testing.T) {
	cfg := futuresConfig(Ledger, 1.5)
	cfg.Rounds = 5
	cfg.Workload.Requests = 40
	reg := obs.NewRegistry()
	cfg.Obs = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var delivered, noShows, defaults, agreed, denied int
	for _, m := range res.Rounds {
		delivered += m.DeliveredFut
		noShows += m.FutNoShows
		defaults += m.SellerDefaults
		agreed += m.Agreed
		denied += m.Denied
	}
	if delivered == 0 {
		t.Fatal("no reservations delivered on the ledger path")
	}
	if noShows+defaults == 0 {
		t.Fatal("no divergence events despite shocks")
	}
	if denied == 0 {
		t.Fatal("futures breaks did not flow through the contract deny path")
	}
	if agreed == 0 {
		t.Fatal("no agreements settled")
	}
	// Breaks must have decayed someone's standing.
	sawPenalized := false
	for _, ps := range res.Reputation {
		if ps.Score < 1.0 {
			sawPenalized = true
			break
		}
	}
	if !sawPenalized {
		t.Fatal("no participant's reputation decayed despite futures breaks")
	}
	if reg.CounterValue("decloud_futures_rounds_total") != int64(cfg.Rounds) {
		t.Fatalf("futures obs rounds = %d, want %d",
			reg.CounterValue("decloud_futures_rounds_total"), cfg.Rounds)
	}
	if reg.CounterValue("decloud_futures_delivered_total") == 0 {
		t.Fatal("futures obs delivered counter not wired")
	}
}

// TestFuturesConfigRejections: the futures market refuses the config
// combinations it cannot compose with.
func TestFuturesConfigRejections(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"metros":      func(c *Config) { c.Metros = 2 },
		"pipeline":    func(c *Config) { c.Mode = Ledger; c.Pipeline = true },
		"resubmit":    func(c *Config) { c.Resubmit = true },
		"incremental": func(c *Config) { c.Auction.Incremental = true },
	} {
		cfg := futuresConfig(Fast, 1.2)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: expected a config rejection", name)
		}
	}
}

// TestFuturesStreamMode: the two-stage market drains from a continuous
// stream, with the sim knobs filling the stream's futures knobs.
func TestFuturesStreamMode(t *testing.T) {
	cfg := futuresConfig(Fast, 1.5)
	cfg.Stream = &workload.StreamConfig{Seed: 33, Clients: 4, EpochOrders: 128}
	cfg.StreamOrders = 128
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reserved int
	for _, m := range res.Rounds {
		reserved += m.Reserved
	}
	if reserved == 0 {
		t.Fatal("stream-fed futures market made no reservations")
	}
}
