// Package sim drives end-to-end market simulations in two modes: Fast
// (the mechanism runs directly on generated orders, as in the paper's
// evaluation) and Ledger (every order travels through the full two-phase
// bid exposure protocol: sealing, mining, key reveal, allocation,
// independent verification, and contract agreement).
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/book"
	"decloud/internal/futures"
	"decloud/internal/metro"
	"decloud/internal/miner"
	"decloud/internal/obs"
	"decloud/internal/reputation"
	"decloud/internal/workload"
)

// Mode selects the simulation depth.
type Mode int

// Simulation modes.
const (
	// Fast runs the mechanism in-process per round.
	Fast Mode = iota
	// Ledger runs the full two-phase protocol with a miner network.
	Ledger
)

// Config parameterizes a simulation.
type Config struct {
	Mode   Mode
	Rounds int
	// Workload is the per-round market shape; its Seed advances each
	// round so rounds differ but the whole simulation is reproducible.
	Workload workload.Config
	// Stream, when non-nil, sources every round's market from one
	// continuous epoch-structured order stream (workload.Stream) instead
	// of independent Generate calls — the same order flow the load
	// generator and the devnet emit, so batch simulations are comparable
	// point for point with networked load tests. Stream order IDs are
	// globally unique, so ledger mode needs no per-round ID remapping.
	Stream *workload.StreamConfig
	// StreamOrders is the number of stream orders drained per round
	// (default 256). Only read when Stream is set.
	StreamOrders int
	// Miners and Difficulty configure ledger mode (defaults 3 and 8).
	Miners     int
	Difficulty int
	// DenyProb is the per-agreement probability that a client denies the
	// allocation in ledger mode, exercising the reputation system.
	DenyProb float64
	// Resubmit carries unmatched requests over to the next round
	// (Section III-B: "Participants, whose bids were refused, can
	// resubmit their bids"). Carried requests keep their valuations; a
	// request is dropped after MaxResubmits unsuccessful rounds.
	Resubmit     bool
	MaxResubmits int
	// Auction tunes the mechanism (zero value → auction.DefaultConfig()).
	Auction auction.Config
	// Shards, when ≥ 1, routes mini-auction execution through the
	// deterministic shard partitioner (auction.Config.Shards). Applied
	// after the auction defaults, so it composes with a zero Auction.
	Shards int
	// Metros, when ≥ 2, federates the market across that many metro
	// exchanges (internal/metro): every order homes to the exchange owning
	// its location's grid cell, each exchange clears its own book, and
	// requests that exhaust their carry budget spill to the
	// lowest-latency unvisited neighbor. Fast mode runs the deterministic
	// metro.Federation; ledger mode runs one miner network per metro
	// (miner.FederatedNetwork — requires Auction.Incremental).
	Metros int
	// LatencyMatrix is the inter-metro latency model (nil →
	// metro.DefaultMatrix(Metros)). Only read when Metros ≥ 2.
	LatencyMatrix *metro.LatencyMatrix
	// MaxHops bounds a spilled request's metro visits beyond its home
	// (0 → metro.DefaultMaxHops).
	MaxHops int
	// DistancePerMS tightens spilled requests' MaxDistance by this much
	// per millisecond of spill-path latency (Eq. 18 coupling; 0 off).
	DistancePerMS float64
	// FuturesSplit, when positive, routes that fraction of each round's
	// orders into the FORWARD stage of the two-stage futures market
	// (internal/futures), with DemandShock/SupplyShock as the divergence
	// probabilities between reservation and delivery. Two arms share the
	// knob: with Auction.Futures enabled the forward orders clear through
	// the reservation stage (treatment); with it disabled the surviving
	// forward orders are merged into the spot market and the failing ones
	// withheld — the SPOT-ONLY CONTROL arm of the overbooking study, same
	// demand/supply realization, no reservation stage. Incompatible with
	// Metros, Pipeline, Resubmit, and Auction.Incremental.
	FuturesSplit float64
	DemandShock  float64
	SupplyShock  float64
	// Pipeline overlaps round n+1's reveal collection with round n's
	// clearing and verification in ledger mode (miner.Network.RunPipelined).
	// Incompatible with Resubmit and DenyProb > 0: both feed the next
	// round's market from the previous round's committed outcome, which a
	// pipelined feed must not depend on.
	Pipeline bool
	// Obs, when set, is the registry the simulation publishes metrics to:
	// the mechanism, miner, and sim bundles are resolved from it and wired
	// through the whole pipeline. Purely observational — results are
	// byte-identical with Obs nil or set.
	Obs *obs.Registry
	// Tracer, when set, emits one structured JSONL timeline per round.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Miners == 0 {
		c.Miners = 3
	}
	if c.Difficulty == 0 {
		c.Difficulty = 8
	}
	if c.Auction.Match.QualityBand == 0 {
		incremental := c.Auction.Incremental
		fut := c.Auction.Futures
		c.Auction = auction.DefaultConfig()
		c.Auction.Incremental = incremental
		c.Auction.Futures = fut
	}
	if c.Shards > 0 {
		c.Auction.Shards = c.Shards
	}
	if c.Metros > 1 {
		c.Auction.Metros = c.Metros
	}
	return c
}

// RoundMetrics captures one round's market performance.
type RoundMetrics struct {
	Round        int
	Requests     int
	Offers       int
	Matches      int
	Welfare      float64 // DeCloud's realized welfare (true values)
	BenchWelfare float64 // non-truthful greedy benchmark on the same orders
	WelfareRatio float64 // Welfare / BenchWelfare (0 when benchmark is 0)
	// ReducedRate is the fraction of trades lost to the truthful design
	// relative to the benchmark: (bench matches − matches)/bench matches,
	// clamped at 0.
	ReducedRate  float64
	Satisfaction float64 // fraction of requests allocated
	Payments     float64 // total client payments (= provider revenues)
	// Resubmission dynamics (when Config.Resubmit is on).
	CarriedIn  int // requests resubmitted from earlier rounds
	CarriedOut int // unmatched requests carried to the next round
	Expired    int // requests dropped after MaxResubmits attempts
	// Ledger-mode extras.
	BlockHeight int64
	Winner      string
	Agreed      int
	Denied      int
	// Two-stage futures extras (FuturesSplit > 0 only). Utilization is
	// realized utilization — matched resource·time over the capacity that
	// actually materialized this round — and is filled in BOTH arms, so
	// the control arm is comparable point for point.
	Reserved       int
	DeliveredFut   int
	FutNoShows     int
	SellerDefaults int
	Bumped         int
	SpotRetries    int
	Utilization    float64
	PenaltyFlow    float64

	// matchedIDs feeds the resubmission bookkeeping.
	matchedIDs []bidding.OrderID
}

// Result aggregates a full simulation.
type Result struct {
	Rounds []RoundMetrics
	// Reputation is the final reputation snapshot in ledger mode (nil in
	// Fast mode): the deny penalties and accept rewards accumulated by
	// every participant identity across all rounds.
	Reputation []reputation.ParticipantScore
}

// TotalWelfare sums realized welfare over all rounds (Eq. 15).
func (r *Result) TotalWelfare() float64 {
	var w float64
	for _, m := range r.Rounds {
		w += m.Welfare
	}
	return w
}

// MeanWelfareRatio averages the per-round DeCloud/benchmark ratio over
// rounds where the benchmark traded.
func (r *Result) MeanWelfareRatio() float64 {
	var sum float64
	var n int
	for _, m := range r.Rounds {
		if m.BenchWelfare > 0 {
			sum += m.WelfareRatio
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	// Observability wiring: the mechanism bundle rides inside the auction
	// config (so both fast rounds and every ledger miner publish to it),
	// the sim bundle tracks market-level totals.
	sm := obs.NewSimMetrics(cfg.Obs)
	cfg.Auction.Obs = obs.NewMechanismMetrics(cfg.Obs)
	cfg.Auction.ShardObs = obs.NewShardMetrics(cfg.Obs)
	// Ledger mode keeps ONE network and participant set across rounds:
	// the chain grows block by block and reputation persists, as it would
	// in a deployment.
	var net *miner.Network
	var fednet *miner.FederatedNetwork
	var roster map[bidding.ParticipantID]*miner.Participant
	if cfg.Metros > 1 {
		if cfg.Pipeline {
			return nil, fmt.Errorf("sim: pipeline is incompatible with metro federation")
		}
		if cfg.Resubmit {
			return nil, fmt.Errorf("sim: Resubmit is redundant under metro federation — the exchange books carry unmatched orders")
		}
	}
	if cfg.Mode == Ledger {
		if cfg.Metros > 1 {
			var err error
			fednet, err = NewLedgerFederation(cfg)
			if err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			mm := obs.NewMinerMetrics(cfg.Obs)
			for m := 0; m < fednet.Metros(); m++ {
				fednet.Net(m).Obs = mm
			}
			fednet.Net(0).Tracer = cfg.Tracer
		} else {
			net = NewLedgerNetwork(cfg)
			net.Obs = obs.NewMinerMetrics(cfg.Obs)
			net.Tracer = cfg.Tracer
		}
		roster = make(map[bidding.ParticipantID]*miner.Participant)
	}
	var futex *futures.Exchange
	var fm *obs.FuturesMetrics
	var nextTwoStage func(round int) *workload.TwoStageMarket
	if cfg.FuturesSplit > 0 || cfg.Auction.Futures.Enabled() {
		switch {
		case cfg.Metros > 1:
			return nil, fmt.Errorf("sim: futures market is incompatible with metro federation")
		case cfg.Pipeline:
			return nil, fmt.Errorf("sim: futures market is incompatible with the pipelined ledger")
		case cfg.Resubmit:
			return nil, fmt.Errorf("sim: Resubmit is redundant under the futures market — broken reservations retry through the exchange")
		case cfg.Auction.Incremental:
			return nil, fmt.Errorf("sim: futures market requires from-scratch spot rounds (Auction.Incremental off)")
		}
		if cfg.Auction.Futures.Enabled() {
			futex = futures.New(cfg.Auction)
			fm = obs.NewFuturesMetrics(cfg.Obs)
		}
		nextTwoStage = twoStageSource(cfg)
	}
	if cfg.Auction.Incremental && cfg.Resubmit {
		// The order book subsumes the simulator's resubmission loop:
		// carry is protocol state now, and running both would double-carry
		// every unmatched request.
		return nil, fmt.Errorf("sim: Resubmit is redundant in incremental mode — the order book carries unmatched orders")
	}
	if cfg.Pipeline {
		if cfg.Mode != Ledger {
			return nil, fmt.Errorf("sim: pipeline requires ledger mode")
		}
		if cfg.Resubmit || cfg.DenyProb > 0 {
			return nil, fmt.Errorf("sim: pipeline is incompatible with resubmission and denial dynamics")
		}
		return runPipelinedLedger(cfg, net, roster, sm, res)
	}
	// Fast mode with an incremental config keeps ONE persistent book
	// across rounds, mirroring what the ledger-mode miners do per block.
	// Under federation the book is replaced by one persistent federation
	// of M exchange books.
	var bk *book.Book
	var fed *metro.Federation
	if cfg.Mode == Fast && cfg.Metros > 1 {
		var err error
		fed, err = metro.New(metro.Config{
			Metros:        cfg.Metros,
			Latency:       cfg.LatencyMatrix,
			MaxHops:       cfg.MaxHops,
			DistancePerMS: cfg.DistancePerMS,
			Auction:       cfg.Auction,
			Obs:           obs.NewMetroMetrics(cfg.Obs, cfg.Metros),
			// The greedy benchmark needs the exact per-metro union markets.
			CaptureUnions: true,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	} else if cfg.Mode == Fast && cfg.Auction.Incremental {
		bk = book.New(cfg.Auction)
	}
	// carried holds unmatched requests awaiting resubmission, with their
	// remaining attempt budget.
	type carriedReq struct {
		r    *bidding.Request
		left int
	}
	var carried []carriedReq
	maxResubmits := cfg.MaxResubmits
	if maxResubmits <= 0 {
		maxResubmits = 3
	}
	nextMarket := marketSource(cfg)
	for round := 0; round < cfg.Rounds; round++ {
		var market *workload.Market
		var tm *workload.TwoStageMarket
		if nextTwoStage != nil {
			tm = nextTwoStage(round)
			// market carries the round's full submission set for the
			// shared metrics columns; the dispatch below reads tm.
			market = &workload.Market{
				Requests: append(append([]*bidding.Request{}, tm.Fwd.Requests...), tm.Spot.Requests...),
				Offers:   append(append([]*bidding.Offer{}, tm.Fwd.Offers...), tm.Spot.Offers...),
			}
		} else {
			market = nextMarket(round)
		}

		carriedIn := 0
		if cfg.Resubmit && round > 0 {
			for _, c := range carried {
				// Shift the carried request's window into this round's
				// horizon: a resubmitted bid asks for the same service
				// later. The resubmission is a NEW bid, so it gets a new
				// order ID — the generator reuses IDs across rounds, and in
				// ledger mode two live orders with one ID would trip the
				// verifiers' mutation check.
				fresh := *c.r
				fresh.Resources = c.r.Resources.Clone()
				span := fresh.End - fresh.Start
				fresh.Start = 0
				fresh.End = span
				fresh.ID = bidding.OrderID(fmt.Sprintf("%s~%d", c.r.ID, round))
				market.Requests = append(market.Requests, &fresh)
				carriedIn++
			}
		}

		var metrics RoundMetrics
		var err error
		switch cfg.Mode {
		case Fast:
			switch {
			case futex != nil:
				metrics = fastFuturesRound(futex, fm, tm, cfg, round)
			case tm != nil:
				metrics = fastControlRound(tm, cfg, round)
			case fed != nil:
				metrics, err = fastMetroRound(fed, market, cfg, round)
				if err != nil {
					return nil, fmt.Errorf("sim: round %d: %w", round, err)
				}
			case bk != nil:
				metrics = fastBookRound(bk, market, cfg, round)
			default:
				metrics = fastRound(market, cfg)
			}
		case Ledger:
			switch {
			case futex != nil:
				metrics, err = ledgerFuturesRound(futex, fm, net, roster, tm, cfg, round)
			case tm != nil:
				metrics, err = ledgerControlRound(net, roster, tm, cfg, round)
			case fednet != nil:
				metrics, err = ledgerFederatedRound(fednet, roster, market, cfg, round)
			default:
				metrics, err = ledgerRound(net, roster, market, cfg, round)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: round %d: %w", round, err)
			}
		default:
			return nil, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
		}
		metrics.Round = round
		metrics.Requests = len(market.Requests)
		metrics.Offers = len(market.Offers)
		metrics.CarriedIn = carriedIn

		if cfg.Resubmit {
			matched := make(map[bidding.OrderID]bool, metrics.Matches)
			// fastRound/ledgerRound don't return the outcome; re-derive
			// the matched set from the payments the round recorded. To
			// keep this simple and mode-agnostic we rerun matching state
			// via the metrics-free path: requests without a carried
			// marker are regenerated next round anyway, so only track
			// carried/unmatched of THIS round's market.
			for _, id := range metrics.matchedIDs {
				matched[id] = true
			}
			budget := make(map[bidding.OrderID]int, len(carried))
			for _, c := range carried {
				budget[c.r.ID] = c.left
			}
			carried = carried[:0]
			for _, r := range market.Requests {
				if matched[r.ID] {
					continue
				}
				left, wasCarried := budget[r.ID]
				if !wasCarried {
					left = maxResubmits
				}
				if left <= 0 {
					metrics.Expired++
					continue
				}
				carried = append(carried, carriedReq{r: r, left: left - 1})
			}
			metrics.CarriedOut = len(carried)
		}
		if sm != nil {
			sm.Rounds.Inc()
			sm.Requests.Add(int64(metrics.Requests))
			sm.Offers.Add(int64(metrics.Offers))
			sm.Matches.Add(int64(metrics.Matches))
			sm.Agreed.Add(int64(metrics.Agreed))
			sm.Denied.Add(int64(metrics.Denied))
			sm.Carried.Add(int64(metrics.CarriedOut))
			sm.Expired.Add(int64(metrics.Expired))
			sm.WelfareSum.Add(metrics.Welfare)
		}
		if cfg.Mode == Fast && cfg.Tracer != nil {
			// Fast mode has no protocol phases; emit a one-event timeline
			// per round so -trace-out is useful in both modes. (Ledger
			// rounds trace inside miner.Network.RunRound.)
			tr := cfg.Tracer.StartRound(int64(round))
			tr.Event("allocation_computed", map[string]any{
				"matches": metrics.Matches, "requests": metrics.Requests, "offers": metrics.Offers,
			})
			tr.End()
		}
		res.Rounds = append(res.Rounds, metrics)
	}
	if futex != nil {
		// The exchange's conservation identity must hold at every exit:
		// an order that fell through the two-stage lifecycle is a bug,
		// not a metric.
		if err := futex.CheckConservation(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if net != nil {
		res.Reputation = net.Contracts().Reputation().Snapshot()
	}
	if fednet != nil {
		for m := 0; m < fednet.Metros(); m++ {
			res.Reputation = append(res.Reputation, fednet.Net(m).Contracts().Reputation().Snapshot()...)
		}
		if err := fednet.CheckNoDoubleSettle(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return res, nil
}

func fastRound(market *workload.Market, cfg Config) RoundMetrics {
	acfg := cfg.Auction
	acfg.Evidence = []byte(fmt.Sprintf("sim-fast-%d", cfg.Workload.Seed))
	out := auction.Run(market.Requests, market.Offers, acfg)
	bench := auction.RunGreedy(market.Requests, market.Offers, cfg.Auction)
	return metricsFrom(out, bench, len(market.Requests))
}

// fastBookRound clears one round of the persistent order book: the
// round's market joins the carried live set and the book re-scores only
// what the arrivals dirtied. The generator reuses order IDs across
// rounds (same reason the resubmission loop renames them), so arrivals
// are namespaced per round before insertion. The greedy benchmark runs
// over the same union market the book cleared, keeping the welfare
// ratio comparable to from-scratch rounds.
func fastBookRound(bk *book.Book, market *workload.Market, cfg Config, round int) RoundMetrics {
	reqs := make([]*bidding.Request, len(market.Requests))
	for i, r := range market.Requests {
		fresh := *r
		fresh.Resources = r.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", r.ID, round))
		reqs[i] = &fresh
	}
	offs := make([]*bidding.Offer, len(market.Offers))
	for i, o := range market.Offers {
		fresh := *o
		fresh.Resources = o.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", o.ID, round))
		offs[i] = &fresh
	}
	unionR := append(bk.LiveRequests(), reqs...)
	unionO := append(bk.LiveOffers(), offs...)
	out := bk.Apply(reqs, offs, []byte(fmt.Sprintf("sim-fast-%d-%d", cfg.Workload.Seed, round)))
	// Advance the market clock from the round's own bid time fields:
	// survivors whose windows closed before this round's earliest
	// arrival can never match again (Const. 10–11) — drop them now
	// instead of carrying them to budget exhaustion. Mirrors
	// miner.SyncBook's post-apply expiry in ledger mode.
	if now, ok := book.ArrivalWatermark(reqs, offs); ok {
		bk.ExpireBefore(now)
	}
	bench := auction.RunGreedy(unionR, unionO, cfg.Auction)
	return metricsFrom(out, bench, len(unionR))
}

// fastMetroRound drives one cross-settlement round of the persistent
// metro federation. Order IDs are namespaced per round for the same
// reason fastBookRound namespaces them (the generator reuses IDs). The
// greedy benchmark runs over the union of every exchange's cleared
// market — a single global (un-federated) market — so the welfare ratio
// measures what federation costs against an omniscient central matcher.
func fastMetroRound(fed *metro.Federation, market *workload.Market, cfg Config, round int) (RoundMetrics, error) {
	reqs := make([]*bidding.Request, len(market.Requests))
	for i, r := range market.Requests {
		fresh := *r
		fresh.Resources = r.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", r.ID, round))
		reqs[i] = &fresh
	}
	offs := make([]*bidding.Offer, len(market.Offers))
	for i, o := range market.Offers {
		fresh := *o
		fresh.Resources = o.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", o.ID, round))
		offs[i] = &fresh
	}
	res, err := fed.Round(reqs, offs, []byte(fmt.Sprintf("sim-fast-%d-%d", cfg.Workload.Seed, round)))
	if err != nil {
		return RoundMetrics{}, err
	}
	var m RoundMetrics
	var unionR []*bidding.Request
	var unionO []*bidding.Offer
	for i, out := range res.Outcomes {
		if out == nil {
			continue
		}
		m.Matches += len(out.Matches)
		m.Welfare += out.Welfare()
		m.Payments += out.TotalPayments()
		for _, match := range out.Matches {
			m.matchedIDs = append(m.matchedIDs, match.Request.ID)
		}
		unionR = append(unionR, res.UnionRequests[i]...)
		unionO = append(unionO, res.UnionOffers[i]...)
	}
	bench := auction.RunGreedy(unionR, unionO, cfg.Auction)
	m.BenchWelfare = bench.Welfare()
	if m.BenchWelfare > 0 {
		m.WelfareRatio = m.Welfare / m.BenchWelfare
	}
	if nb := len(bench.Matches); nb > m.Matches {
		m.ReducedRate = float64(nb-m.Matches) / float64(nb)
	}
	if len(unionR) > 0 {
		m.Satisfaction = float64(m.Matches) / float64(len(unionR))
	}
	return m, nil
}

func metricsFrom(out, bench *auction.Outcome, totalRequests int) RoundMetrics {
	m := RoundMetrics{
		Matches:      len(out.Matches),
		Welfare:      out.Welfare(),
		BenchWelfare: bench.Welfare(),
		Satisfaction: out.Satisfaction(totalRequests),
		Payments:     out.TotalPayments(),
	}
	if m.BenchWelfare > 0 {
		m.WelfareRatio = m.Welfare / m.BenchWelfare
	}
	if nb := len(bench.Matches); nb > len(out.Matches) {
		m.ReducedRate = float64(nb-len(out.Matches)) / float64(nb)
	}
	for _, match := range out.Matches {
		m.matchedIDs = append(m.matchedIDs, match.Request.ID)
	}
	return m
}

// ledgerRound pushes every order through the two-phase protocol on the
// simulation's persistent network.
func ledgerRound(net *miner.Network, roster map[bidding.ParticipantID]*miner.Participant, market *workload.Market, cfg Config, round int) (RoundMetrics, error) {
	participants, err := SubmitMarket(net, roster, market)
	if err != nil {
		return RoundMetrics{}, err
	}
	res, err := net.RunRound(context.Background(), participants)
	if err != nil {
		return RoundMetrics{}, err
	}
	// Private valuations and costs never travel on the wire, so the
	// decrypted orders inside the outcome carry zero TrueValue/TrueCost.
	// Re-join them from the generator's ground truth so welfare metrics
	// mean the same thing in both modes.
	restoreGroundTruth(res.Outcome, market)
	bench := auction.RunGreedy(market.Requests, market.Offers, cfg.Auction)
	metrics := metricsFrom(res.Outcome, bench, len(market.Requests))
	metrics.Utilization = spotUtilization(res.Outcome, market.Offers)
	metrics.BlockHeight = res.Block.Preamble.Height
	metrics.Winner = res.Winner

	// Clients decide on their agreements. A denied allocation never
	// executes, so its request rejoins the unmatched pool: with Resubmit
	// on it is carried into the next round (and the denying client keeps
	// paying for the churn through its reputation).
	rnd := rand.New(rand.NewSource(cfg.Workload.Seed + int64(round)))
	reg := net.Contracts()
	denied := make(map[bidding.OrderID]bool)
	for _, id := range res.Agreements {
		a, err := reg.Get(id)
		if err != nil {
			return metrics, err
		}
		if rnd.Float64() < cfg.DenyProb {
			if _, err := reg.Deny(id, a.Client()); err != nil {
				return metrics, err
			}
			denied[bidding.OrderID(a.Record.RequestID)] = true
			metrics.Denied++
		} else {
			if err := reg.Accept(id, a.Client()); err != nil {
				return metrics, err
			}
			metrics.Agreed++
		}
	}
	if len(denied) > 0 {
		kept := metrics.matchedIDs[:0]
		for _, rid := range metrics.matchedIDs {
			if !denied[rid] {
				kept = append(kept, rid)
			}
		}
		metrics.matchedIDs = kept
	}
	return metrics, nil
}

// ledgerFederatedRound splits the round's market across the metro
// networks by order location, seals and submits each slice through the
// persistent roster, and runs one federated protocol round. Metrics
// aggregate over every metro that produced a block; the greedy
// benchmark stays global, as in fastMetroRound.
func ledgerFederatedRound(fednet *miner.FederatedNetwork, roster map[bidding.ParticipantID]*miner.Participant, market *workload.Market, cfg Config, round int) (RoundMetrics, error) {
	// The generator reuses order IDs across rounds; the federation's
	// cross-chain audit (and the incremental books that carry orders
	// between rounds) need globally unique IDs, so arrivals are
	// namespaced per round exactly as in fastBookRound.
	renamed := &workload.Market{
		Requests: make([]*bidding.Request, len(market.Requests)),
		Offers:   make([]*bidding.Offer, len(market.Offers)),
	}
	for i, r := range market.Requests {
		fresh := *r
		fresh.Resources = r.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", r.ID, round))
		renamed.Requests[i] = &fresh
	}
	for i, o := range market.Offers {
		fresh := *o
		fresh.Resources = o.Resources.Clone()
		fresh.ID = bidding.OrderID(fmt.Sprintf("%s@r%d", o.ID, round))
		renamed.Offers[i] = &fresh
	}
	market = renamed

	M := fednet.Metros()
	subs := make([]*workload.Market, M)
	for m := range subs {
		subs[m] = &workload.Market{}
	}
	for _, r := range market.Requests {
		m := fednet.Home(r.Location)
		subs[m].Requests = append(subs[m].Requests, r)
	}
	for _, o := range market.Offers {
		m := fednet.Home(o.Location)
		subs[m].Offers = append(subs[m].Offers, o)
	}
	participants := make([][]*miner.Participant, M)
	for m := 0; m < M; m++ {
		parts, err := SubmitMarket(fednet.Net(m), roster, subs[m])
		if err != nil {
			return RoundMetrics{}, err
		}
		participants[m] = parts
	}
	results, err := fednet.RunFederatedRound(context.Background(), participants)
	if err != nil {
		return RoundMetrics{}, err
	}

	var metrics RoundMetrics
	rnd := rand.New(rand.NewSource(cfg.Workload.Seed + int64(round)))
	for m, res := range results {
		if res == nil {
			continue
		}
		restoreGroundTruth(res.Outcome, market)
		metrics.Matches += len(res.Outcome.Matches)
		metrics.Welfare += res.Outcome.Welfare()
		metrics.Payments += res.Outcome.TotalPayments()
		for _, match := range res.Outcome.Matches {
			metrics.matchedIDs = append(metrics.matchedIDs, match.Request.ID)
		}
		if h := res.Block.Preamble.Height; h > metrics.BlockHeight {
			metrics.BlockHeight = h
		}
		if metrics.Winner == "" {
			metrics.Winner = res.Winner
		}
		reg := fednet.Net(m).Contracts()
		for _, id := range res.Agreements {
			a, err := reg.Get(id)
			if err != nil {
				return metrics, err
			}
			if rnd.Float64() < cfg.DenyProb {
				// Federation-aware deny: a spilled match settles here but
				// its reputational penalty routes to the origin metro.
				if _, err := fednet.Deny(m, id, a.Client()); err != nil {
					return metrics, err
				}
				metrics.Denied++
			} else {
				if err := reg.Accept(id, a.Client()); err != nil {
					return metrics, err
				}
				metrics.Agreed++
			}
		}
	}
	bench := auction.RunGreedy(market.Requests, market.Offers, cfg.Auction)
	metrics.BenchWelfare = bench.Welfare()
	if metrics.BenchWelfare > 0 {
		metrics.WelfareRatio = metrics.Welfare / metrics.BenchWelfare
	}
	if nb := len(bench.Matches); nb > metrics.Matches {
		metrics.ReducedRate = float64(nb-metrics.Matches) / float64(nb)
	}
	if len(market.Requests) > 0 {
		metrics.Satisfaction = float64(metrics.Matches) / float64(len(market.Requests))
	}
	return metrics, nil
}

// runPipelinedLedger drives all rounds through the miner network's
// two-stage epoch pipeline: round n+1's market is generated, submitted,
// and its reveals collected while round n's block is still being
// computed and verified. The feed only generates workloads (seeded per
// round, never reading prior outcomes), so the pipelined simulation is
// outcome-equivalent to the sequential ledger loop. Agreement settlement
// (all accepts — denial dynamics are rejected upstream) happens after
// the batch, off the critical path.
func runPipelinedLedger(cfg Config, net *miner.Network, roster map[bidding.ParticipantID]*miner.Participant, sm *obs.SimMetrics, res *Result) (*Result, error) {
	markets := make([]*workload.Market, cfg.Rounds)
	nextMarket := marketSource(cfg)
	var feedErr error
	rounds, err := net.RunPipelined(context.Background(), cfg.Rounds, func(round int) []*miner.Participant {
		markets[round] = nextMarket(round)
		parts, err := SubmitMarket(net, roster, markets[round])
		if err != nil {
			feedErr = err
			return nil
		}
		return parts
	})
	net.Close()
	if feedErr != nil {
		return nil, fmt.Errorf("sim: %w", feedErr)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	reg := net.Contracts()
	for round, pr := range rounds {
		if pr.Err != nil {
			return nil, fmt.Errorf("sim: round %d: %w", round, pr.Err)
		}
		market := markets[round]
		restoreGroundTruth(pr.Result.Outcome, market)
		bench := auction.RunGreedy(market.Requests, market.Offers, cfg.Auction)
		metrics := metricsFrom(pr.Result.Outcome, bench, len(market.Requests))
		metrics.Round = round
		metrics.Requests = len(market.Requests)
		metrics.Offers = len(market.Offers)
		metrics.BlockHeight = pr.Result.Block.Preamble.Height
		metrics.Winner = pr.Result.Winner
		for _, id := range pr.Result.Agreements {
			a, err := reg.Get(id)
			if err != nil {
				return nil, fmt.Errorf("sim: round %d: %w", round, err)
			}
			if err := reg.Accept(id, a.Client()); err != nil {
				return nil, fmt.Errorf("sim: round %d: %w", round, err)
			}
			metrics.Agreed++
		}
		if sm != nil {
			sm.Rounds.Inc()
			sm.Requests.Add(int64(metrics.Requests))
			sm.Offers.Add(int64(metrics.Offers))
			sm.Matches.Add(int64(metrics.Matches))
			sm.Agreed.Add(int64(metrics.Agreed))
			sm.WelfareSum.Add(metrics.Welfare)
		}
		res.Rounds = append(res.Rounds, metrics)
	}
	res.Reputation = reg.Reputation().Snapshot()
	return res, nil
}

// marketSource returns the per-round market generator: a stateful drain
// of one continuous stream when Config.Stream is set (rounds are fed in
// order in both the sequential loop and the pipelined feed, so the drain
// order is well-defined), otherwise the classic per-round seeded
// Generate.
func marketSource(cfg Config) func(round int) *workload.Market {
	if cfg.Stream != nil {
		s := workload.NewStream(*cfg.Stream)
		n := cfg.StreamOrders
		if n <= 0 {
			n = 256
		}
		return func(int) *workload.Market { return workload.CollectMarket(s, n) }
	}
	return func(round int) *workload.Market {
		wcfg := cfg.Workload
		wcfg.Seed = cfg.Workload.Seed + int64(round)*1009
		return workload.Generate(wcfg)
	}
}

// restoreGroundTruth copies TrueValue/TrueCost from the generated market
// onto the decrypted orders referenced by the outcome (joined by order
// ID). Only the simulator can do this — on a real ledger the private
// values stay private.
func restoreGroundTruth(out *auction.Outcome, market *workload.Market) {
	values := make(map[bidding.OrderID]float64, len(market.Requests))
	for _, r := range market.Requests {
		values[r.ID] = r.TrueValue
	}
	costs := make(map[bidding.OrderID]float64, len(market.Offers))
	for _, o := range market.Offers {
		costs[o.ID] = o.TrueCost
	}
	for i := range out.Matches {
		m := &out.Matches[i]
		m.Request.TrueValue = values[m.Request.ID]
		m.Offer.TrueCost = costs[m.Offer.ID]
	}
}

// NewLedgerNetwork builds the miner network for ledger-mode rounds.
func NewLedgerNetwork(cfg Config) *miner.Network {
	cfg = cfg.withDefaults()
	return miner.NewNetwork(cfg.Miners, cfg.Difficulty, cfg.Auction)
}

// NewLedgerFederation builds the per-metro miner networks for federated
// ledger-mode rounds.
func NewLedgerFederation(cfg Config) (*miner.FederatedNetwork, error) {
	cfg = cfg.withDefaults()
	fed, err := miner.NewFederatedNetwork(cfg.Metros, cfg.Miners, cfg.Difficulty, cfg.Auction, cfg.LatencyMatrix)
	if err != nil {
		return nil, err
	}
	if cfg.MaxHops > 0 {
		fed.SetMaxHops(cfg.MaxHops)
	}
	fed.SetDistancePerMS(cfg.DistancePerMS)
	return fed, nil
}

// SubmitMarket seals every order through the roster's participants
// (creating identities on first sight of a logical actor — the roster
// persists across rounds so reputations attach to stable identities) and
// submits the sealed bids to the network. The orders' owner fields are
// rewritten to the participants' key fingerprints.
func SubmitMarket(net *miner.Network, roster map[bidding.ParticipantID]*miner.Participant, market *workload.Market) ([]*miner.Participant, error) {
	if roster == nil {
		roster = make(map[bidding.ParticipantID]*miner.Participant)
	}
	var order []*miner.Participant
	seen := make(map[bidding.ParticipantID]bool)
	get := func(logical bidding.ParticipantID) (*miner.Participant, error) {
		if p, ok := roster[logical]; ok {
			if !seen[logical] {
				seen[logical] = true
				order = append(order, p)
			}
			return p, nil
		}
		p, err := miner.NewParticipant(nil)
		if err != nil {
			return nil, err
		}
		roster[logical] = p
		seen[logical] = true
		order = append(order, p)
		return p, nil
	}
	for _, r := range market.Requests {
		p, err := get(r.Client)
		if err != nil {
			return nil, err
		}
		bid, err := p.SubmitRequest(r)
		if err != nil {
			return nil, err
		}
		if err := net.SubmitBid(bid); err != nil {
			return nil, err
		}
	}
	for _, o := range market.Offers {
		p, err := get(o.Provider)
		if err != nil {
			return nil, err
		}
		bid, err := p.SubmitOffer(o)
		if err != nil {
			return nil, err
		}
		if err := net.SubmitBid(bid); err != nil {
			return nil, err
		}
	}
	return order, nil
}
