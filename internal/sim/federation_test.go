package sim

import (
	"testing"

	"decloud/internal/auction"
	"decloud/internal/metro"
	"decloud/internal/workload"
)

// TestFastFederatedSimulation: a geo-scattered market federated over 4
// metro exchanges still trades every round, stays deterministic, and
// keeps the welfare ratio against the global greedy benchmark in band.
func TestFastFederatedSimulation(t *testing.T) {
	cfg := Config{
		Mode:     Fast,
		Rounds:   4,
		Metros:   4,
		Workload: workload.Config{Seed: 7, Requests: 60, GeoRadius: 0.6},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	total := 0
	for _, m := range res.Rounds {
		total += m.Matches
		if m.WelfareRatio < 0 || m.WelfareRatio > 1.2 {
			t.Fatalf("welfare ratio out of band: %v", m.WelfareRatio)
		}
	}
	if total == 0 {
		t.Fatal("federated simulation produced no trades at all")
	}

	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rounds {
		if res.Rounds[i].Welfare != again.Rounds[i].Welfare || res.Rounds[i].Matches != again.Rounds[i].Matches {
			t.Fatalf("federated round %d not deterministic", i)
		}
	}
}

// TestFastFederatedCustomLatency: a latency matrix above the spill cap
// must pass through config validation and still simulate.
func TestFastFederatedCustomLatency(t *testing.T) {
	res, err := Run(Config{
		Mode:          Fast,
		Rounds:        3,
		Metros:        2,
		LatencyMatrix: metro.UniformMatrix(2, 25),
		DistancePerMS: 0.004,
		Workload:      workload.Config{Seed: 21, Requests: 40, GeoRadius: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
}

// TestFederationRejectsIncompatibleConfigs: pipeline and resubmission
// cannot compose with federation, and federated ledger mode needs the
// incremental book.
func TestFederationRejectsIncompatibleConfigs(t *testing.T) {
	base := Config{Rounds: 1, Metros: 2, Workload: workload.Config{Seed: 3, Requests: 10}}

	cfg := base
	cfg.Mode = Ledger
	cfg.Pipeline = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error for pipeline + federation")
	}

	cfg = base
	cfg.Mode = Fast
	cfg.Resubmit = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error for resubmit + federation")
	}

	cfg = base
	cfg.Mode = Ledger
	cfg.Miners = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error for federated ledger without incremental books")
	}
}

// TestLedgerFederatedSimulation pushes a small geo market through two
// full miner networks joined by spill: blocks must be produced, trades
// agreed, and the cross-chain no-double-settle audit (run by Run itself
// at teardown) must hold.
func TestLedgerFederatedSimulation(t *testing.T) {
	acfg := auction.DefaultConfig()
	acfg.Incremental = true
	res, err := Run(Config{
		Mode:       Ledger,
		Rounds:     2,
		Metros:     2,
		Miners:     2,
		Difficulty: 8,
		Auction:    acfg,
		Workload:   workload.Config{Seed: 13, Requests: 25, GeoRadius: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	matches, agreed := 0, 0
	for _, m := range res.Rounds {
		matches += m.Matches
		agreed += m.Agreed
	}
	if matches == 0 {
		t.Fatal("federated ledger simulation produced no trades")
	}
	if agreed != matches {
		t.Fatalf("agreed = %d, matches = %d", agreed, matches)
	}
	if len(res.Reputation) == 0 {
		t.Fatal("federated ledger run recorded no reputations")
	}
}
