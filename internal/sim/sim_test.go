package sim

import (
	"testing"

	"decloud/internal/workload"
)

func TestFastSimulation(t *testing.T) {
	res, err := Run(Config{
		Mode:     Fast,
		Rounds:   3,
		Workload: workload.Config{Seed: 7, Requests: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for _, m := range res.Rounds {
		if m.Requests != 60 {
			t.Fatalf("requests = %d", m.Requests)
		}
		if m.Matches == 0 {
			t.Fatal("round produced no trades")
		}
		if m.Welfare <= 0 || m.BenchWelfare <= 0 {
			t.Fatalf("welfare: %v / %v", m.Welfare, m.BenchWelfare)
		}
		if m.WelfareRatio <= 0 || m.WelfareRatio > 1.2 {
			t.Fatalf("welfare ratio out of band: %v", m.WelfareRatio)
		}
		if m.Satisfaction <= 0 || m.Satisfaction > 1 {
			t.Fatalf("satisfaction = %v", m.Satisfaction)
		}
	}
	if res.TotalWelfare() <= 0 {
		t.Fatal("total welfare should be positive")
	}
	if r := res.MeanWelfareRatio(); r <= 0 || r > 1.2 {
		t.Fatalf("mean ratio = %v", r)
	}
}

func TestFastSimulationDeterministic(t *testing.T) {
	cfg := Config{Mode: Fast, Rounds: 2, Workload: workload.Config{Seed: 11, Requests: 40}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i].Welfare != b.Rounds[i].Welfare || a.Rounds[i].Matches != b.Rounds[i].Matches {
			t.Fatalf("round %d differs", i)
		}
	}
}

func TestLedgerSimulation(t *testing.T) {
	res, err := Run(Config{
		Mode:       Ledger,
		Rounds:     1,
		Workload:   workload.Config{Seed: 13, Requests: 25},
		Miners:     2,
		Difficulty: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Rounds[0]
	if m.Winner == "" {
		t.Fatal("no winning miner recorded")
	}
	if m.Matches == 0 {
		t.Fatal("ledger round produced no trades")
	}
	if m.Agreed != m.Matches {
		t.Fatalf("agreed = %d, matches = %d", m.Agreed, m.Matches)
	}
	if m.Denied != 0 {
		t.Fatalf("unexpected denials: %d", m.Denied)
	}
}

func TestLedgerSimulationWithDenials(t *testing.T) {
	res, err := Run(Config{
		Mode:       Ledger,
		Rounds:     1,
		Workload:   workload.Config{Seed: 17, Requests: 30},
		Miners:     2,
		Difficulty: 8,
		DenyProb:   1.0, // everyone denies
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Rounds[0]
	if m.Denied != m.Matches || m.Agreed != 0 {
		t.Fatalf("denied = %d, agreed = %d, matches = %d", m.Denied, m.Agreed, m.Matches)
	}
}

func TestLedgerMatchesFastEconomics(t *testing.T) {
	// The protocol must not change the economics: with identical orders,
	// ledger-mode welfare equals fast-mode welfare up to the evidence
	// seed (different lotteries may pick different winners, but both
	// modes clear at mechanism prices). We check the structural
	// invariants rather than exact equality.
	wcfg := workload.Config{Seed: 23, Requests: 30}
	fast, err := Run(Config{Mode: Fast, Rounds: 1, Workload: wcfg})
	if err != nil {
		t.Fatal(err)
	}
	led, err := Run(Config{Mode: Ledger, Rounds: 1, Workload: wcfg, Miners: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, l := fast.Rounds[0], led.Rounds[0]
	if l.Matches == 0 || f.Matches == 0 {
		t.Fatal("both modes should trade")
	}
	// Same benchmark on both sides (deterministic, evidence-free).
	if f.BenchWelfare != l.BenchWelfare {
		t.Fatalf("benchmark differs: %v vs %v", f.BenchWelfare, l.BenchWelfare)
	}
	// Welfare within a loose band of each other (lottery differences).
	lo, hi := f.Welfare*0.5, f.Welfare*1.5
	if l.Welfare < lo || l.Welfare > hi {
		t.Fatalf("ledger welfare %v far from fast welfare %v", l.Welfare, f.Welfare)
	}
}

func TestUnknownMode(t *testing.T) {
	if _, err := Run(Config{Mode: Mode(99), Rounds: 1, Workload: workload.Config{Seed: 1, Requests: 5}}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestResubmissionCarriesUnmatchedRequests(t *testing.T) {
	res, err := Run(Config{
		Mode:         Fast,
		Rounds:       4,
		Workload:     workload.Config{Seed: 9, Requests: 60, Providers: 4}, // tight supply
		Resubmit:     true,
		MaxResubmits: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].CarriedIn != 0 {
		t.Fatal("round 0 cannot carry requests in")
	}
	if res.Rounds[0].CarriedOut == 0 {
		t.Fatal("tight market should leave unmatched requests to carry")
	}
	carriedInTotal := 0
	for _, m := range res.Rounds[1:] {
		carriedInTotal += m.CarriedIn
	}
	if carriedInTotal == 0 {
		t.Fatal("no requests were ever resubmitted")
	}
	// Conservation per round: carried in equals the previous round's
	// carried out.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].CarriedIn != res.Rounds[i-1].CarriedOut {
			t.Fatalf("round %d: carried in %d != previous carried out %d",
				i, res.Rounds[i].CarriedIn, res.Rounds[i-1].CarriedOut)
		}
	}
	// With MaxResubmits=2 and persistent scarcity, some requests expire.
	expired := 0
	for _, m := range res.Rounds {
		expired += m.Expired
	}
	if expired == 0 {
		t.Fatal("no requests expired despite persistent scarcity")
	}
}

func TestResubmissionOffByDefault(t *testing.T) {
	res, err := Run(Config{
		Mode:     Fast,
		Rounds:   2,
		Workload: workload.Config{Seed: 9, Requests: 40, Providers: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Rounds {
		if m.CarriedIn != 0 || m.CarriedOut != 0 || m.Expired != 0 {
			t.Fatalf("resubmission bookkeeping active without Resubmit: %+v", m)
		}
	}
}

func TestLedgerChainGrowsAcrossRounds(t *testing.T) {
	// The persistent network accumulates one block per round; identities
	// and reputation survive between rounds.
	res, err := Run(Config{
		Mode:       Ledger,
		Rounds:     3,
		Workload:   workload.Config{Seed: 41, Requests: 15},
		Miners:     2,
		Difficulty: 8,
		DenyProb:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Rounds {
		if m.BlockHeight != int64(i) {
			t.Fatalf("round %d produced block height %d, want %d", i, m.BlockHeight, i)
		}
	}
	denies := 0
	for _, m := range res.Rounds {
		denies += m.Denied
	}
	if denies == 0 {
		t.Fatal("DenyProb=0.5 over 3 rounds should produce denials")
	}
}

// TestLedgerDenyResubmissionReputationE2E drives the full contract
// failure loop through ledger mode: every allocation is denied at the
// contract stage, so the denied requests rejoin the unmatched pool, are
// resubmitted in later rounds, burn through their resubmission budget,
// and expire — while the denying clients accumulate reputation penalties
// visible in the final snapshot.
func TestLedgerDenyResubmissionReputationE2E(t *testing.T) {
	res, err := Run(Config{
		Mode:         Ledger,
		Rounds:       4,
		Workload:     workload.Config{Seed: 5, Requests: 12},
		Miners:       2,
		Difficulty:   6,
		DenyProb:     1.0, // every agreement is denied
		Resubmit:     true,
		MaxResubmits: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d, want 4", len(res.Rounds))
	}
	r0 := res.Rounds[0]
	if r0.Denied == 0 || r0.Agreed != 0 {
		t.Fatalf("round 0: denied = %d, agreed = %d; want all-deny", r0.Denied, r0.Agreed)
	}
	// Denied allocations never execute: their requests must be carried.
	if r0.CarriedOut < r0.Denied {
		t.Fatalf("round 0 carried out %d requests, but denied %d", r0.CarriedOut, r0.Denied)
	}
	if res.Rounds[1].CarriedIn != r0.CarriedOut {
		t.Fatalf("round 1 carried in %d, round 0 carried out %d",
			res.Rounds[1].CarriedIn, r0.CarriedOut)
	}
	// With every round denying, resubmission budgets run dry.
	expired := 0
	for _, m := range res.Rounds {
		expired += m.Expired
	}
	if expired == 0 {
		t.Fatal("no request expired despite denials in every round")
	}
	// The chain still grows one verified block per round.
	for i, m := range res.Rounds {
		if m.BlockHeight != int64(i) {
			t.Fatalf("round %d block height = %d", i, m.BlockHeight)
		}
	}
	// Denying clients pay in reputation.
	if len(res.Reputation) == 0 {
		t.Fatal("ledger run returned no reputation snapshot")
	}
	penalized := 0
	for _, s := range res.Reputation {
		if s.Score < 1.0 {
			penalized++
		}
	}
	if penalized == 0 {
		t.Fatal("no participant lost reputation despite universal denial")
	}
}

// TestFastModeHasNoReputationSnapshot pins the mode split: reputation is
// ledger state, so Fast mode must not fabricate one.
func TestFastModeHasNoReputationSnapshot(t *testing.T) {
	res, err := Run(Config{Mode: Fast, Rounds: 1, Workload: workload.Config{Seed: 3, Requests: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reputation != nil {
		t.Fatalf("fast mode produced a reputation snapshot: %v", res.Reputation)
	}
}

func TestShardedSimulationMatchesMonolithic(t *testing.T) {
	// -shards must never change what the market decides: the sharded
	// partitioner is byte-identical to monolithic execution, so every
	// per-round metric matches exactly.
	base := Config{Mode: Fast, Rounds: 3, Workload: workload.Config{Seed: 31, Requests: 50}}
	mono, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4} {
		cfg := base
		cfg.Shards = k
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mono.Rounds {
			m, s := mono.Rounds[i], sharded.Rounds[i]
			if m.Welfare != s.Welfare || m.Matches != s.Matches || m.Payments != s.Payments {
				t.Fatalf("K=%d round %d diverges from monolithic: %+v vs %+v", k, i, s, m)
			}
		}
	}
}

func TestPipelinedLedgerMatchesSequential(t *testing.T) {
	// The epoch pipeline only overlaps wall-clock phases. The in-process
	// PoW race is scheduling-dependent (a different miner may win the
	// same round across runs, shifting the evidence lottery), so we
	// compare the winner-invariant surface: round structure, block
	// linkage, benchmark welfare, and welfare bands — exact byte
	// equivalence is proven at the miner layer under proof-of-stake
	// (TestPipelinedEquivalenceSoak).
	base := Config{
		Mode:       Ledger,
		Rounds:     3,
		Workload:   workload.Config{Seed: 37, Requests: 20},
		Miners:     2,
		Difficulty: 8,
	}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pipCfg := base
	pipCfg.Pipeline = true
	pip, err := Run(pipCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pip.Rounds) != len(seq.Rounds) {
		t.Fatalf("pipelined ran %d rounds, sequential %d", len(pip.Rounds), len(seq.Rounds))
	}
	for i := range seq.Rounds {
		s, p := seq.Rounds[i], pip.Rounds[i]
		if p.Matches == 0 || s.Matches == 0 {
			t.Fatalf("round %d: both paths should trade (%d vs %d)", i, p.Matches, s.Matches)
		}
		// The greedy benchmark is deterministic and evidence-free.
		if s.BenchWelfare != p.BenchWelfare {
			t.Fatalf("round %d benchmark diverges: %v vs %v", i, p.BenchWelfare, s.BenchWelfare)
		}
		if s.BlockHeight != p.BlockHeight {
			t.Fatalf("round %d height diverges: %d vs %d", i, p.BlockHeight, s.BlockHeight)
		}
		if p.Winner == "" {
			t.Fatalf("round %d recorded no winner", i)
		}
		if lo, hi := s.Welfare*0.5, s.Welfare*1.5; p.Welfare < lo || p.Welfare > hi {
			t.Fatalf("round %d: pipelined welfare %v far from sequential %v", i, p.Welfare, s.Welfare)
		}
		if p.Agreed != p.Matches {
			t.Fatalf("round %d: agreed %d != matches %d (no denials configured)", i, p.Agreed, p.Matches)
		}
	}
}

func TestPipelineRejectsIncompatibleConfigs(t *testing.T) {
	wcfg := workload.Config{Seed: 41, Requests: 10}
	if _, err := Run(Config{Mode: Fast, Rounds: 1, Workload: wcfg, Pipeline: true}); err == nil {
		t.Fatal("pipeline accepted in fast mode")
	}
	if _, err := Run(Config{Mode: Ledger, Rounds: 1, Workload: wcfg, Pipeline: true, Resubmit: true}); err == nil {
		t.Fatal("pipeline accepted with resubmission")
	}
	if _, err := Run(Config{Mode: Ledger, Rounds: 1, Workload: wcfg, Pipeline: true, DenyProb: 0.5}); err == nil {
		t.Fatal("pipeline accepted with denial dynamics")
	}
}

// TestStreamSourcedRounds: with Config.Stream the simulation draws every
// round's market from one continuous epoch-structured stream — the same
// order flow the load generator emits — deterministically, in both fast
// and ledger mode.
func TestStreamSourcedRounds(t *testing.T) {
	cfg := Config{
		Mode:         Fast,
		Rounds:       3,
		Stream:       &workload.StreamConfig{Seed: 21, Clients: 4, EpochOrders: 32},
		StreamOrders: 96,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(a.Rounds))
	}
	var matches int
	for i, m := range a.Rounds {
		matches += m.Matches
		if m.Requests+m.Offers != 96 {
			t.Fatalf("round %d drained %d orders, want 96", i, m.Requests+m.Offers)
		}
		if m.Welfare != b.Rounds[i].Welfare || m.Matches != b.Rounds[i].Matches {
			t.Fatalf("stream-sourced rounds are not deterministic: %+v vs %+v", m, b.Rounds[i])
		}
	}
	if matches == 0 {
		t.Fatal("the streamed market never cleared a trade")
	}

	cfg.Mode = Ledger
	cfg.Rounds = 2
	led, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Rounds) != 2 || led.Rounds[1].BlockHeight != led.Rounds[0].BlockHeight+1 {
		t.Fatalf("ledger stream rounds: %+v", led.Rounds)
	}
}

func TestFastIncrementalBookSimulation(t *testing.T) {
	cfg := Config{
		Mode:     Fast,
		Rounds:   3,
		Workload: workload.Config{Seed: 7, Requests: 60},
	}
	cfg.Auction.Incremental = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for i, m := range res.Rounds {
		if m.Matches == 0 {
			t.Fatalf("round %d produced no trades", i)
		}
		if m.Welfare <= 0 {
			t.Fatalf("round %d welfare = %v", i, m.Welfare)
		}
	}
	// Later rounds clear the union of carried and fresh orders, so the
	// cleared market must be at least the fresh market size.
	if res.Rounds[1].Requests < 60 {
		t.Fatalf("round 1 cleared %d requests, want >= 60 (carried + fresh)", res.Rounds[1].Requests)
	}
}

func TestIncrementalRejectsResubmit(t *testing.T) {
	cfg := Config{
		Mode:     Fast,
		Rounds:   1,
		Resubmit: true,
		Workload: workload.Config{Seed: 1, Requests: 10},
	}
	cfg.Auction.Incremental = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Resubmit with an incremental book must be rejected")
	}
}
