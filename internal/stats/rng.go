package stats

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"slices"
)

// The mechanism's randomized exclusion (Algorithm 4) must be verifiable:
// every miner has to reproduce it exactly from public data. The paper
// uses "evidence of a block as a random seed so that randomization is
// also verifiable" (Section IV-F). These helpers derive a deterministic
// PRNG from arbitrary evidence bytes.

// SeedFromBytes hashes arbitrary evidence (e.g. a block's proof-of-work)
// into a 64-bit PRNG seed.
func SeedFromBytes(evidence []byte) int64 {
	sum := sha256.Sum256(evidence)
	return int64(binary.BigEndian.Uint64(sum[:8]))
}

// NewRand returns a deterministic *rand.Rand derived from evidence bytes.
// Two verifiers with the same evidence obtain identical streams.
func NewRand(evidence []byte) *rand.Rand {
	return rand.New(rand.NewSource(SeedFromBytes(evidence)))
}

// SubRand derives an independent deterministic generator for a named
// sub-purpose (e.g. one per mini-auction) so that consuming randomness in
// one place does not perturb another.
func SubRand(evidence []byte, label string) *rand.Rand {
	h := sha256.New()
	h.Write(evidence)
	h.Write([]byte{0})
	h.Write([]byte(label))
	return NewRand(h.Sum(nil))
}

// KeyedOrder returns a permutation of [0, len(ids)) where index i sorts
// by SHA-256(evidence ‖ label ‖ ids[i]). The ordering depends only on the
// evidence and the element *identities* — never on their positions in the
// input — so a participant cannot influence its draw by changing a bid
// that reorders the input slice. This is what makes the mechanism's
// randomized exclusion strategyproof.
func KeyedOrder(evidence []byte, label string, ids []string) []int {
	type keyed struct {
		idx int
		key [32]byte
	}
	ks := make([]keyed, len(ids))
	for i, id := range ids {
		h := sha256.New()
		h.Write(evidence)
		h.Write([]byte{0})
		h.Write([]byte(label))
		h.Write([]byte{0})
		h.Write([]byte(id))
		copy(ks[i].key[:], h.Sum(nil))
		ks[i].idx = i
	}
	// Keys are unique whenever ids are (they are order IDs / cluster
	// keys, unique per block); the idx tiebreak only fires on duplicate
	// ids and keeps even that case deterministic.
	slices.SortFunc(ks, func(a, b keyed) int {
		if c := bytes.Compare(a.key[:], b.key[:]); c != 0 {
			return c
		}
		return a.idx - b.idx
	})
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = k.idx
	}
	return out
}
