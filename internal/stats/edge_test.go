package stats

import (
	"math"
	"testing"
)

// TestKeyedOrderIsPermutation: the output must be a permutation of the
// input indices, and empty input yields an empty permutation.
func TestKeyedOrderIsPermutation(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	perm := KeyedOrder([]byte("ev"), "lottery", ids)
	if len(perm) != len(ids) {
		t.Fatalf("permutation length %d, want %d", len(perm), len(ids))
	}
	seen := make(map[int]bool)
	for _, i := range perm {
		if i < 0 || i >= len(ids) || seen[i] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[i] = true
	}
	if got := KeyedOrder([]byte("ev"), "lottery", nil); len(got) != 0 {
		t.Fatalf("empty input gave %v", got)
	}
}

// TestKeyedOrderPositionIndependent pins the strategyproofness property:
// the draw of each identity depends only on the evidence, label, and the
// identity itself — reordering the input slice (what a participant could
// cause by changing an unrelated bid) must not change which identity
// comes out where.
func TestKeyedOrderPositionIndependent(t *testing.T) {
	forward := []string{"r1", "r2", "r3", "r4", "r5", "r6"}
	backward := []string{"r6", "r5", "r4", "r3", "r2", "r1"}
	ev := []byte("block-evidence")
	permF := KeyedOrder(ev, "excl", forward)
	permB := KeyedOrder(ev, "excl", backward)
	for i := range permF {
		if forward[permF[i]] != backward[permB[i]] {
			t.Fatalf("draw order depends on input positions: %v vs %v",
				orderedIDs(forward, permF), orderedIDs(backward, permB))
		}
	}
}

// TestKeyedOrderSensitivity: changing the evidence or the label re-rolls
// the permutation (6! = 720 orderings; both derivations are deterministic,
// so equality would mean the inputs are being ignored).
func TestKeyedOrderSensitivity(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e", "f"}
	base := KeyedOrder([]byte("ev-1"), "lottery", ids)
	if equalPerm(base, KeyedOrder([]byte("ev-2"), "lottery", ids)) {
		t.Fatal("different evidence produced the same permutation")
	}
	if equalPerm(base, KeyedOrder([]byte("ev-1"), "other", ids)) {
		t.Fatal("different label produced the same permutation")
	}
	if !equalPerm(base, KeyedOrder([]byte("ev-1"), "lottery", ids)) {
		t.Fatal("same inputs must reproduce the permutation")
	}
}

func orderedIDs(ids []string, perm []int) []string {
	out := make([]string, len(perm))
	for i, p := range perm {
		out[i] = ids[p]
	}
	return out
}

func equalPerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLoessSinglePoint: a one-observation series is degenerate but legal —
// the neighbor window clamps to the single point and every prediction is
// its y value.
func TestLoessSinglePoint(t *testing.T) {
	l, err := NewLoess([]float64{5}, []float64{7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-100, 5, 100} {
		if got := l.Predict(x); !almostEqual(got, 7, 1e-9) {
			t.Fatalf("Predict(%v) = %v, want 7", x, got)
		}
	}
}

// TestLoessTinySpanClampsWindow: a span selecting fewer than two neighbors
// clamps up to two, which still fits a line exactly on linear data.
func TestLoessTinySpanClampsWindow(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	l, err := NewLoess(xs, ys, 0.05) // ceil(0.05·10) = 1 → clamped to 2
	if err != nil {
		t.Fatal(err)
	}
	// Two-point windows fit the line, but the floored far-neighbor weight
	// makes the system ill-conditioned: expect ~1e-6, not 1e-12, accuracy.
	for _, x := range []float64{0.5, 4.25, 8.5} {
		if got := l.Predict(x); !almostEqual(got, 3*x-2, 1e-4) {
			t.Fatalf("Predict(%v) = %v, want %v", x, got, 3*x-2)
		}
	}
}

// TestLoessEdgeWindows: queries at and beyond the data range force the
// neighbor walk to grow one-sided windows; on linear data the edge fits
// extrapolate the line exactly.
func TestLoessEdgeWindows(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	l, err := NewLoess(xs, ys, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, 0, 4, 6} {
		if got := l.Predict(x); !almostEqual(got, 2*x+1, 1e-9) {
			t.Fatalf("Predict(%v) = %v, want %v", x, got, 2*x+1)
		}
	}
}

// TestPercentileInterpolates covers the fractional-rank path: ranks that
// fall between two order statistics are linearly interpolated.
func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{50, 2.5}, // rank 1.5
		{10, 1.3}, // rank 0.3
		{90, 3.7}, // rank 2.7
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestSummarizeUnsortedInput: Min/Max tracking must work when the extrema
// are not in first position.
func TestSummarizeUnsortedInput(t *testing.T) {
	s := Summarize([]float64{3, -1, 2, 7, 0})
	if s.Min != -1 || s.Max != 7 || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
}

// TestKLDivergenceClampsFloatResidue: for nearly identical distributions
// the floating-point sum can dip a hair below zero; the clamp must return
// exactly 0 rather than a negative divergence.
func TestKLDivergenceClampsFloatResidue(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.5 + 1e-16, 0.5 - 1e-16}
	d := KLDivergence(p, q)
	if d != 0 {
		t.Fatalf("KL of near-identical distributions = %v, want exactly 0", d)
	}
	if math.Signbit(d) {
		t.Fatal("clamped divergence is negative zero")
	}
}
