package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range clamp into the first/last bin, so mass is never silently lost.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics on a non-positive bin count or an empty range —
// both are programming errors, not data errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: non-positive bin count %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: empty histogram range [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records an observation with the given weight.
func (h *Histogram) AddWeighted(x, w float64) {
	h.Counts[h.bin(x)] += w
}

func (h *Histogram) bin(x float64) int {
	n := len(h.Counts)
	idx := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(n)))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// Total returns the summed mass of all bins.
func (h *Histogram) Total() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Probabilities returns the histogram normalized to a probability
// distribution. An empty histogram yields the uniform distribution so
// that divergence computations stay well-defined.
func (h *Histogram) Probabilities() []float64 {
	n := len(h.Counts)
	p := make([]float64, n)
	total := h.Total()
	if total <= 0 {
		for i := range p {
			p[i] = 1 / float64(n)
		}
		return p
	}
	for i, c := range h.Counts {
		p[i] = c / total
	}
	return p
}

// klSmoothing is the additive (Laplace) smoothing mass applied per bin
// before computing KL divergence, keeping it finite when a bin of q is
// empty where p has mass.
const klSmoothing = 1e-6

// KLDivergence computes D_KL(P‖Q) in nats between two probability vectors
// of equal length, applying additive smoothing to both. It panics on
// length mismatch (a programming error).
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL divergence over mismatched lengths %d and %d", len(p), len(q)))
	}
	n := float64(len(p))
	var pt, qt float64
	for i := range p {
		pt += p[i] + klSmoothing
		qt += q[i] + klSmoothing
	}
	_ = n
	var d float64
	for i := range p {
		pi := (p[i] + klSmoothing) / pt
		qi := (q[i] + klSmoothing) / qt
		if pi > 0 {
			d += pi * math.Log(pi/qi)
		}
	}
	if d < 0 {
		// Smoothing can introduce a tiny negative residue.
		d = 0
	}
	return d
}

// HistogramKLD builds equal-bin histograms of two samples over their
// common range and returns D_KL(sampleP‖sampleQ). This is the quantity
// behind the paper's similarity axis: similarity = 1 − KLD(R, O)
// "regarding resources" (Section V).
func HistogramKLD(sampleP, sampleQ []float64, bins int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range sampleP {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	for _, x := range sampleQ {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if !(hi > lo) { // empty or degenerate samples: identical distributions
		return 0
	}
	hp := NewHistogram(lo, hi+1e-12, bins)
	hq := NewHistogram(lo, hi+1e-12, bins)
	for _, x := range sampleP {
		hp.Add(x)
	}
	for _, x := range sampleQ {
		hq.Add(x)
	}
	return KLDivergence(hp.Probabilities(), hq.Probabilities())
}
