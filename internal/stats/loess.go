package stats

import (
	"fmt"
	"math"
	"sort"
)

// Loess performs locally weighted linear regression (LOESS) with tricube
// weights, the smoother behind the trend curves in Figure 5 of the paper.
//
// span ∈ (0, 1] is the fraction of points used in each local fit. For
// each query point the span·n nearest x-neighbors are weighted by
// w = (1 − (d/dmax)³)³ and a weighted least-squares line is fit.
type Loess struct {
	span float64
	xs   []float64
	ys   []float64
}

// NewLoess fits a LOESS smoother over the (x, y) observations. It returns
// an error for mismatched or empty inputs or an out-of-range span.
func NewLoess(xs, ys []float64, span float64) (*Loess, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: loess needs equal-length inputs, got %d and %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: loess needs at least one observation")
	}
	if span <= 0 || span > 1 {
		return nil, fmt.Errorf("stats: loess span %v out of (0, 1]", span)
	}
	// Sort by x for deterministic neighbor selection.
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	l := &Loess{span: span, xs: make([]float64, len(pts)), ys: make([]float64, len(pts))}
	for i, p := range pts {
		l.xs[i], l.ys[i] = p.x, p.y
	}
	return l, nil
}

// Predict evaluates the smoothed curve at x.
func (l *Loess) Predict(x float64) float64 {
	n := len(l.xs)
	k := int(math.Ceil(l.span * float64(n)))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	// Find the k nearest neighbors of x along the sorted xs via a window.
	lo := sort.SearchFloat64s(l.xs, x)
	left, right := lo-1, lo
	take := make([]int, 0, k)
	for len(take) < k {
		switch {
		case left < 0 && right >= n:
			break
		case left < 0:
			take = append(take, right)
			right++
		case right >= n:
			take = append(take, left)
			left--
		case x-l.xs[left] <= l.xs[right]-x:
			take = append(take, left)
			left--
		default:
			take = append(take, right)
			right++
		}
		if left < 0 && right >= n {
			break
		}
	}
	var dmax float64
	for _, i := range take {
		if d := math.Abs(l.xs[i] - x); d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		dmax = 1
	}
	// Weighted linear least squares: minimize Σ w_i (y_i − a − b·x_i)².
	var sw, swx, swy, swxx, swxy float64
	for _, i := range take {
		d := math.Abs(l.xs[i]-x) / dmax
		t := 1 - d*d*d
		w := t * t * t
		if w <= 0 {
			w = 1e-9
		}
		sw += w
		swx += w * l.xs[i]
		swy += w * l.ys[i]
		swxx += w * l.xs[i] * l.xs[i]
		swxy += w * l.xs[i] * l.ys[i]
	}
	denom := sw*swxx - swx*swx
	if math.Abs(denom) < 1e-12 {
		// Degenerate x spread: fall back to the weighted mean.
		return swy / sw
	}
	b := (sw*swxy - swx*swy) / denom
	a := (swy - b*swx) / sw
	return a + b*x
}

// Curve evaluates the smoother at each of the given query points.
func (l *Loess) Curve(query []float64) []float64 {
	out := make([]float64, len(query))
	for i, x := range query {
		out[i] = l.Predict(x)
	}
	return out
}
