// Package stats provides the statistical toolkit the DeCloud evaluation
// needs: summary statistics, histograms with Kullback–Leibler divergence
// (Figures 5d–5f sweep similarity = 1 − KLD), LOESS trend curves (the
// smooth lines in Figure 5), and deterministic RNG helpers seeded from
// block evidence so that the mechanism's randomized exclusions are
// reproducible by every verifier.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two observations).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Percentile returns the p-th percentile (p ∈ [0,100]) of xs using linear
// interpolation between closest ranks. It copies xs before sorting.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics the experiment harness
// reports per sweep point.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CI95: CI95(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders the summary compactly, e.g. "n=30 mean=1.23 ±0.04 [0.9,1.6]".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g,%.4g]", s.N, s.Mean, s.CI95, s.Min, s.Max)
}
