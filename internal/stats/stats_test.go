package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.13808993, 1e-6) {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of single value should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5}}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || !almostEqual(s.Mean, 2, 1e-12) {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(x)
	}
	want := []float64{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %v", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range values should clamp: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestProbabilities(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.7)
	p := h.Probabilities()
	if !almostEqual(p[0], 1.0/3, 1e-12) || !almostEqual(p[1], 2.0/3, 1e-12) {
		t.Fatalf("Probabilities = %v", p)
	}
	var sum float64
	for _, x := range p {
		sum += x
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Empty histogram: uniform.
	u := NewHistogram(0, 1, 4).Probabilities()
	for _, x := range u {
		if !almostEqual(x, 0.25, 1e-12) {
			t.Fatalf("uniform fallback = %v", u)
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p); !almostEqual(d, 0, 1e-6) {
		t.Fatalf("KL(p‖p) = %v, want 0", d)
	}
	q := []float64{0.9, 0.1}
	d := KLDivergence(p, q)
	if d <= 0 {
		t.Fatalf("KL(p‖q) = %v, want > 0", d)
	}
	// Asymmetry in general.
	d2 := KLDivergence(q, p)
	if almostEqual(d, d2, 1e-9) {
		t.Fatal("KL divergence should be asymmetric here")
	}
	// Empty q bin stays finite thanks to smoothing.
	d3 := KLDivergence([]float64{1, 0}, []float64{0, 1})
	if math.IsInf(d3, 0) || math.IsNaN(d3) {
		t.Fatalf("smoothed KL should be finite, got %v", d3)
	}
}

func TestKLDivergencePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	KLDivergence([]float64{1}, []float64{0.5, 0.5})
}

func TestHistogramKLD(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if d := HistogramKLD(same, same, 8); !almostEqual(d, 0, 1e-6) {
		t.Fatalf("identical samples KLD = %v", d)
	}
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = float64(i % 4)     // mass at 0..3
		b[i] = float64(i%4) + 4.0 // mass at 4..7
	}
	d := HistogramKLD(a, b, 8)
	if d < 1 {
		t.Fatalf("disjoint samples should have large KLD, got %v", d)
	}
	if HistogramKLD(nil, nil, 4) != 0 {
		t.Fatal("empty samples should give KLD 0")
	}
}

// Property: KL divergence is non-negative (Gibbs' inequality survives smoothing).
func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1}
		q := []float64{float64(c) + 1, float64(d) + 1}
		pt := p[0] + p[1]
		qt := q[0] + q[1]
		p[0], p[1] = p[0]/pt, p[1]/pt
		q[0], q[1] = q[0]/qt, q[1]/qt
		return KLDivergence(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoessRecoversLine(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*float64(i) + 1
	}
	l, err := NewLoess(xs, ys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 10, 25.5, 49} {
		if got := l.Predict(x); !almostEqual(got, 2*x+1, 1e-6) {
			t.Fatalf("Predict(%v) = %v, want %v", x, got, 2*x+1)
		}
	}
}

func TestLoessSmoothsNoise(t *testing.T) {
	// A noisy parabola: the smoother should land near the true curve.
	r := NewRand([]byte("loess-test"))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	truth := func(x float64) float64 { return 0.05*x*x - x + 3 }
	for i := range xs {
		x := float64(i) / float64(n) * 20
		xs[i] = x
		ys[i] = truth(x) + r.NormFloat64()*0.3
	}
	l, err := NewLoess(xs, ys, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{2, 8, 14, 18} {
		got := l.Predict(x)
		if math.Abs(got-truth(x)) > 0.5 {
			t.Fatalf("Predict(%v) = %v, truth %v: too far", x, got, truth(x))
		}
	}
}

func TestLoessErrors(t *testing.T) {
	if _, err := NewLoess([]float64{1}, []float64{1, 2}, 0.5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewLoess(nil, nil, 0.5); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := NewLoess([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("zero span accepted")
	}
	if _, err := NewLoess([]float64{1}, []float64{1}, 1.5); err == nil {
		t.Fatal("span > 1 accepted")
	}
}

func TestLoessDegenerateX(t *testing.T) {
	// All x identical: prediction falls back to the mean.
	l, err := NewLoess([]float64{5, 5, 5}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Predict(5); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("degenerate Predict = %v, want 2", got)
	}
}

func TestLoessCurve(t *testing.T) {
	l, err := NewLoess([]float64{0, 1, 2, 3}, []float64{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := l.Curve([]float64{0.5, 1.5})
	if len(out) != 2 {
		t.Fatalf("Curve length = %d", len(out))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRand([]byte("block-evidence"))
	b := NewRand([]byte("block-evidence"))
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same evidence must give identical streams")
		}
	}
	c := NewRand([]byte("different"))
	same := true
	a2 := NewRand([]byte("block-evidence"))
	for i := 0; i < 10; i++ {
		if a2.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different evidence should give different streams")
	}
}

func TestSubRandIndependence(t *testing.T) {
	evidence := []byte("block-7")
	a := SubRand(evidence, "mini-auction-1")
	b := SubRand(evidence, "mini-auction-2")
	a2 := SubRand(evidence, "mini-auction-1")
	if a.Int63() != a2.Int63() {
		t.Fatal("same label must reproduce")
	}
	diff := false
	a3 := SubRand(evidence, "mini-auction-1")
	for i := 0; i < 10; i++ {
		if a3.Int63() != b.Int63() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different labels should diverge")
	}
}
