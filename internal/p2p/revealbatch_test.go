package p2p

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/resource"
)

// TestBatchedRevealFramesAt10kOrders is the regression gate for reveal
// batching (ROADMAP item 2): with 10k committed orders from one client
// node, the producer must receive O(participant nodes) reveal frames —
// one batched frame per preamble broadcast — not one frame per order.
// The test is time-budget-aware: on a runner that cannot push 10k
// sealed bids through the transport inside the budget it skips rather
// than flakes.
func TestBatchedRevealFramesAt10kOrders(t *testing.T) {
	orders := 10000
	if testing.Short() {
		orders = 1000
	}
	budget := 90 * time.Second
	start := time.Now()

	mn, err := NewMarketNode("rb-m0", "127.0.0.1:0", 0, auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mn.Close() })
	mn.SetLimits(Limits{MaxFrameBytes: 64 * 1024 * 1024})

	lc, err := NewLoadClient("rb-gen", "127.0.0.1:0", make([]io.Reader, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	lc.SetLimits(Limits{MaxFrameBytes: 64 * 1024 * 1024})
	if err := lc.Connect(mn.Addr()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < orders; i++ {
		if i%2 == 0 {
			_, err = lc.SubmitRequest(i, &bidding.Request{
				ID:        bidding.OrderID(fmt.Sprintf("rb-r-%05d", i)),
				Resources: resource.Vector{resource.CPU: 1, resource.RAM: 2},
				Start:     0, End: 100, Duration: 100,
				Bid: 5 + float64(i%7),
			})
		} else {
			_, err = lc.SubmitOffer(i, &bidding.Offer{
				ID:        bidding.OrderID(fmt.Sprintf("rb-o-%05d", i)),
				Resources: resource.Vector{resource.CPU: 4, resource.RAM: 8},
				Start:     0, End: 100,
				Bid: 0.5 + float64(i%3)/10,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%1000 == 0 && time.Since(start) > budget/2 {
			t.Skipf("runner too slow for %d-order reveal batching check (submitted %d in %v)", orders, i, time.Since(start))
		}
	}

	deadline := time.Now().Add(budget / 3)
	for mn.MempoolSize() < orders {
		if time.Now().After(deadline) {
			t.Skipf("runner too slow: %d/%d bids pooled within budget", mn.MempoolSize(), orders)
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	sum, err := mn.ProduceBlockOpts(ctx, RoundConfig{
		Quorum:        0,
		RevealWindow:  10 * time.Second,
		RevealRetries: 2,
	})
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if sum.Unrevealed != 0 {
		t.Fatalf("%d orders unrevealed", sum.Unrevealed)
	}
	if got := len(sum.Block.Bids); got != orders {
		t.Fatalf("committed %d bids, want %d", got, orders)
	}

	// One client node, so one batched frame per preamble attempt — allow
	// the retry budget plus chaos-free duplicates, but nothing anywhere
	// near per-order framing.
	frames := mn.RevealFrames()
	if frames < 1 {
		t.Fatal("no reveal frames counted")
	}
	if frames > int64(8*sum.RevealAttempts) {
		t.Fatalf("reveal frames = %d over %d attempt(s); batching regressed toward per-order frames", frames, sum.RevealAttempts)
	}
}
