// Package p2p provides the networked deployment of the two-phase bid
// exposure protocol: a small TCP gossip transport (JSON-line framing,
// flood routing with deduplication) and a MarketNode that runs the miner
// role over it. The in-process miner.Network is the reference
// implementation; this package carries the same message flow across real
// sockets so that miners and participants can run as separate processes
// (see cmd/decloud-node).
package p2p

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Message is the wire envelope. ID makes flooding idempotent: every node
// relays a message at most once.
type Message struct {
	ID      uint64          `json:"id"`
	From    string          `json:"from"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload"`
}

func (m *Message) key() [32]byte {
	h := sha256.New()
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], m.ID)
	h.Write(id[:])
	h.Write([]byte(m.From))
	h.Write([]byte{0})
	h.Write([]byte(m.Type))
	h.Write([]byte{0})
	h.Write(m.Payload)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Handler consumes a delivered message.
type Handler func(Message)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("p2p: node closed")

// Node is one gossip endpoint: it accepts inbound peers, dials outbound
// peers, and floods messages to all of them, delivering each unique
// message to the local handlers exactly once.
type Node struct {
	name string
	ln   net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]*bufio.Writer
	seen     map[[32]byte]bool
	handlers map[string][]Handler
	closed   bool

	seq uint64
	wg  sync.WaitGroup
}

// Listen starts a node named name on addr (use "127.0.0.1:0" for an
// ephemeral port).
func Listen(name, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	n := &Node{
		name:     name,
		ln:       ln,
		conns:    make(map[net.Conn]*bufio.Writer),
		seen:     make(map[[32]byte]bool),
		handlers: make(map[string][]Handler),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Addr returns the listening address (host:port).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect dials a peer and joins its gossip.
func (n *Node) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("p2p: connect %s: %w", addr, err)
	}
	n.addConn(conn)
	return nil
}

// Handle registers a handler for a message type. Handlers run on reader
// goroutines; they must not block indefinitely.
func (n *Node) Handle(msgType string, fn Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[msgType] = append(n.handlers[msgType], fn)
}

// Broadcast floods a message to every peer. The local node's handlers do
// NOT receive their own broadcasts.
func (n *Node) Broadcast(msgType string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("p2p: marshal %s: %w", msgType, err)
	}
	msg := Message{
		ID:      atomic.AddUint64(&n.seq, 1),
		From:    n.name,
		Type:    msgType,
		Payload: data,
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.seen[msg.key()] = true // never re-deliver our own message
	err = n.relayLocked(msg, nil)
	n.mu.Unlock()
	return err
}

// relayLocked writes the message to every connection except skip.
// Callers hold n.mu.
func (n *Node) relayLocked(msg Message, skip net.Conn) error {
	line, err := json.Marshal(&msg)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	var firstErr error
	for conn, w := range n.conns {
		if conn == skip {
			continue
		}
		if _, err := w.Write(line); err == nil {
			err = w.Flush()
			if err == nil {
				continue
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts the node down, closing every connection.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for conn := range n.conns {
		conn.Close()
	}
	n.conns = map[net.Conn]*bufio.Writer{}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.addConn(conn)
	}
}

func (n *Node) addConn(conn net.Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = bufio.NewWriter(conn)
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(conn)
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		var msg Message
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			continue // drop malformed lines, keep the connection
		}
		n.deliver(msg, conn)
	}
}

// deliver dispatches an inbound message once and relays it onward.
func (n *Node) deliver(msg Message, from net.Conn) {
	key := msg.key()
	n.mu.Lock()
	if n.closed || n.seen[key] {
		n.mu.Unlock()
		return
	}
	n.seen[key] = true
	handlers := append([]Handler(nil), n.handlers[msg.Type]...)
	_ = n.relayLocked(msg, from)
	n.mu.Unlock()
	for _, fn := range handlers {
		fn(msg)
	}
}
