// Package p2p provides the networked deployment of the two-phase bid
// exposure protocol: a small TCP gossip transport (JSON-line framing,
// flood routing with deduplication) and a MarketNode that runs the miner
// role over it. The in-process miner.Network is the reference
// implementation; this package carries the same message flow across real
// sockets so that miners and participants can run as separate processes
// (see cmd/decloud-node).
package p2p

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"decloud/internal/obs"
)

// Message is the wire envelope. ID makes flooding idempotent: every node
// relays a message at most once.
type Message struct {
	ID      uint64          `json:"id"`
	From    string          `json:"from"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload"`
}

func (m *Message) key() [32]byte {
	h := sha256.New()
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], m.ID)
	h.Write(id[:])
	h.Write([]byte(m.From))
	h.Write([]byte{0})
	h.Write([]byte(m.Type))
	h.Write([]byte{0})
	h.Write(m.Payload)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Handler consumes a delivered message.
type Handler func(Message)

// FaultPlan injects transport faults into a node's gossip (chaos
// engineering; chaos.Plan satisfies this). PlanDelivery is consulted once
// per unique message the node sees — node is this endpoint's name, from
// the message's originator — and returns the delivery schedule: nil means
// deliver normally, a non-nil empty slice drops the message at this node,
// and otherwise each entry is one local delivery after that delay (the
// earliest entry also gates the onward relay; later entries are duplicate
// local deliveries, exercising handler idempotency upstream of the
// flooding dedup). Implementations must be safe for concurrent use.
type FaultPlan interface {
	PlanDelivery(node, from, msgType string, key [32]byte) []time.Duration
}

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("p2p: node closed")

// ErrConnLimit is returned by Connect when the node is at its connection
// limit; inbound connections over the limit are silently refused (and
// counted in NetMetrics.Rejected).
var ErrConnLimit = errors.New("p2p: connection limit reached")

// DefaultMaxFrameBytes is the wire-line size cap applied when Limits
// leaves MaxFrameBytes zero. A block carrying ~100k sealed bids
// serializes to well over 16 MiB of JSON, so the default is sized for
// load-test blocks rather than chat traffic.
const DefaultMaxFrameBytes = 256 * 1024 * 1024

// Limits bounds a node's resource use under load. The zero value means
// "no connection cap, default frame cap". Install with SetLimits before
// connecting peers: the frame cap is latched per connection when its
// reader starts, so changing it later only affects new connections.
type Limits struct {
	// MaxConns caps simultaneous connections (inbound + outbound).
	// 0 means unlimited. Inbound connections beyond the cap are closed
	// immediately; Connect returns ErrConnLimit.
	MaxConns int
	// MaxFrameBytes caps a single wire line (one JSON message). A peer
	// that sends a longer line is disconnected. 0 means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
}

// Node is one gossip endpoint: it accepts inbound peers, dials outbound
// peers, and floods messages to all of them, delivering each unique
// message to the local handlers exactly once (unless a FaultPlan says
// otherwise).
type Node struct {
	name string
	ln   net.Listener
	stop chan struct{}

	mu       sync.Mutex
	conns    map[net.Conn]*bufio.Writer
	seen     map[[32]byte]bool
	handlers map[string][]Handler
	faults   FaultPlan
	limits   Limits
	logf     func(format string, args ...any)
	closed   bool

	// metrics is read on every reader goroutine without the node lock;
	// an atomic pointer keeps SetObs race-free against live traffic. A
	// nil bundle (the default) disables all accounting.
	metrics atomic.Pointer[obs.NetMetrics]

	seq uint64
	wg  sync.WaitGroup
}

// Listen starts a node named name on addr (use "127.0.0.1:0" for an
// ephemeral port).
func Listen(name, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	n := &Node{
		name:     name,
		ln:       ln,
		stop:     make(chan struct{}),
		conns:    make(map[net.Conn]*bufio.Writer),
		seen:     make(map[[32]byte]bool),
		handlers: make(map[string][]Handler),
		logf:     func(string, ...any) {},
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Addr returns the listening address (host:port).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetObs installs the transport metrics bundle (nil removes it). Safe to
// call while traffic flows; counters only ever move forward, so a
// mid-stream install simply starts counting from that point.
func (n *Node) SetObs(m *obs.NetMetrics) { n.metrics.Store(m) }

// SetLimits installs resource limits (see Limits). Safe to call while
// traffic flows; the connection cap applies to subsequent accepts and
// dials, the frame cap to subsequently opened connections.
func (n *Node) SetLimits(l Limits) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.limits = l
}

// Limits returns the currently installed limits.
func (n *Node) Limits() Limits {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.limits
}

// SetFaults installs a fault plan (nil removes it). Install before
// connecting peers so every message is planned consistently.
func (n *Node) SetFaults(f FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// SetLogf routes the node's diagnostics (default: discarded). Expected
// shutdown noise — EOF, reset, or closed-connection errors during Close —
// is never logged; only genuinely unexpected read errors reach logf.
func (n *Node) SetLogf(logf func(format string, args ...any)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n.logf = logf
}

// PeerCount reports the number of live connections.
func (n *Node) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// Connect dials a peer and joins its gossip.
func (n *Node) Connect(addr string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("p2p: connect %s: %w", addr, err)
	}
	if !n.addConn(conn) {
		return ErrConnLimit
	}
	return nil
}

// Handle registers a handler for a message type. Handlers run on reader
// goroutines; they must not block indefinitely.
func (n *Node) Handle(msgType string, fn Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[msgType] = append(n.handlers[msgType], fn)
}

// Broadcast floods a message to every peer. The local node's handlers do
// NOT receive their own broadcasts. Under a FaultPlan the broadcast may
// be silently dropped or delayed at the source, as a lossy network would.
func (n *Node) Broadcast(msgType string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("p2p: marshal %s: %w", msgType, err)
	}
	msg := Message{
		ID:      atomic.AddUint64(&n.seq, 1),
		From:    n.name,
		Type:    msgType,
		Payload: data,
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.seen[msg.key()] = true // never re-deliver our own message
	schedule := n.scheduleLocked(msg)
	if len(schedule) == 0 { // dropped at the source
		n.mu.Unlock()
		return nil
	}
	if schedule[0] == 0 {
		err = n.relayLocked(msg, nil)
		n.mu.Unlock()
		return err
	}
	n.mu.Unlock()
	n.after(schedule[0], func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if !n.closed {
			_ = n.relayLocked(msg, nil)
		}
	})
	return nil
}

// scheduleLocked consults the fault plan for a message's delivery
// schedule, sorted ascending. Callers hold n.mu. No plan (or no opinion)
// yields a single immediate delivery.
func (n *Node) scheduleLocked(msg Message) []time.Duration {
	if n.faults == nil {
		return []time.Duration{0}
	}
	s := n.faults.PlanDelivery(n.name, msg.From, msg.Type, msg.key())
	if s == nil {
		return []time.Duration{0}
	}
	s = append([]time.Duration(nil), s...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if m := n.metrics.Load(); m != nil {
		switch {
		case len(s) == 0:
			m.FaultDropped.Inc()
		default:
			if s[0] > 0 {
				m.FaultDelayed.Inc()
			}
			m.FaultDup.Add(int64(len(s) - 1))
		}
	}
	return s
}

// after runs fn on a tracked goroutine once d elapses, unless the node
// closes first — so Close never waits out a pending chaos delay.
func (n *Node) after(d time.Duration, fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			fn()
		case <-n.stop:
		}
	}()
}

// relayLocked writes the message to every connection except skip.
// Callers hold n.mu.
func (n *Node) relayLocked(msg Message, skip net.Conn) error {
	line, err := json.Marshal(&msg)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	m := n.metrics.Load()
	var firstErr error
	for conn, w := range n.conns {
		if conn == skip {
			continue
		}
		if _, err := w.Write(line); err == nil {
			err = w.Flush()
			if err == nil {
				if m != nil {
					m.SentMsgs.Inc()
					m.SentBytes.Add(int64(len(line)))
				}
				continue
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts the node down: no new connections are accepted, every
// existing connection is closed, pending fault-delayed deliveries are
// abandoned, and Close returns only after every reader and timer
// goroutine has exited — nothing is leaked and nothing spurious is
// logged.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	for conn := range n.conns {
		conn.Close()
	}
	n.conns = map[net.Conn]*bufio.Writer{}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// log emits a diagnostic through the current logf under the lock
// discipline (SetLogf may race with reader goroutines otherwise).
func (n *Node) log(format string, args ...any) {
	n.mu.Lock()
	logf := n.logf
	n.mu.Unlock()
	logf(format, args...)
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if !n.isClosed() && !errors.Is(err, net.ErrClosed) {
				n.log("p2p: %s: accept: %v", n.name, err)
			}
			return
		}
		n.addConn(conn)
	}
}

// addConn registers a connection and starts its reader; it reports false
// (closing the connection) when the node is closed or at its connection
// limit.
func (n *Node) addConn(conn net.Conn) bool {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return false
	}
	if max := n.limits.MaxConns; max > 0 && len(n.conns) >= max {
		n.mu.Unlock()
		conn.Close()
		if m := n.metrics.Load(); m != nil {
			m.Rejected.Inc()
		}
		return false
	}
	n.conns[conn] = bufio.NewWriter(conn)
	maxFrame := n.limits.MaxFrameBytes
	n.mu.Unlock()
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	if m := n.metrics.Load(); m != nil {
		m.Conns.Add(1)
	}
	n.wg.Add(1)
	go n.readLoop(conn, maxFrame)
	return true
}

func (n *Node) readLoop(conn net.Conn, maxFrame int) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
		if m := n.metrics.Load(); m != nil {
			m.Conns.Add(-1)
		}
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), maxFrame)
	for scanner.Scan() {
		m := n.metrics.Load()
		if m != nil {
			m.RecvMsgs.Inc()
			m.RecvBytes.Add(int64(len(scanner.Bytes()) + 1)) // +1 for the newline framing
		}
		var msg Message
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			if m != nil {
				m.Malformed.Inc()
			}
			continue // drop malformed lines, keep the connection
		}
		n.deliver(msg, conn)
	}
	if err := scanner.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			if m := n.metrics.Load(); m != nil {
				m.Oversize.Inc()
			}
			n.log("p2p: %s: dropping %s: frame exceeds %d bytes", n.name, conn.RemoteAddr(), maxFrame)
		} else if !n.isClosed() && !expectedDisconnect(err) {
			n.log("p2p: %s: read %s: %v", n.name, conn.RemoteAddr(), err)
		}
	}
}

// expectedDisconnect reports whether a read error is ordinary peer-
// shutdown noise (the peer closed or reset mid-line, or our own Close
// raced the reader) rather than something worth logging.
func expectedDisconnect(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// deliver dispatches an inbound message once (per scheduled delivery) and
// relays it onward.
func (n *Node) deliver(msg Message, from net.Conn) {
	key := msg.key()
	n.mu.Lock()
	if n.closed || n.seen[key] {
		n.mu.Unlock()
		return
	}
	n.seen[key] = true
	handlers := append([]Handler(nil), n.handlers[msg.Type]...)
	schedule := n.scheduleLocked(msg)
	if len(schedule) == 0 { // dropped at this hop: not relayed, not handled
		n.mu.Unlock()
		return
	}
	dispatch := func() {
		for _, fn := range handlers {
			fn(msg)
		}
	}
	// The earliest delivery carries the relay; later entries are local
	// duplicates only (peers would dedup a re-relay anyway).
	if schedule[0] == 0 {
		_ = n.relayLocked(msg, from)
		n.mu.Unlock()
		dispatch()
	} else {
		n.mu.Unlock()
		n.after(schedule[0], func() {
			n.mu.Lock()
			closed := n.closed
			if !closed {
				_ = n.relayLocked(msg, from)
			}
			n.mu.Unlock()
			if !closed {
				dispatch()
			}
		})
	}
	for _, d := range schedule[1:] {
		if d == 0 {
			dispatch()
			continue
		}
		n.after(d, func() {
			if !n.isClosed() {
				dispatch()
			}
		})
	}
}
