package p2p

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/miner"
	"decloud/internal/obs"
	"decloud/internal/resource"
	"decloud/internal/sealed"
)

// TestConnLimitInbound: a node at MaxConns refuses further inbound
// connections — the dialer sees its connection die, the listener's peer
// count holds, and the rejection is counted.
func TestConnLimitInbound(t *testing.T) {
	srv, err := Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := obs.NewRegistry()
	m := obs.NewNetMetrics(reg)
	srv.SetObs(m)
	srv.SetLimits(Limits{MaxConns: 1})

	a, err := Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Connect(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first peer", func() bool { return srv.PeerCount() == 1 })

	b, err := Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Connect(srv.Addr()); err != nil {
		t.Fatal(err) // dial succeeds; the listener closes it after accept
	}
	waitFor(t, "rejection counted", func() bool { return m.Rejected.Value() == 1 })
	if srv.PeerCount() != 1 {
		t.Fatalf("peer count %d, want 1", srv.PeerCount())
	}
	// The survivor still gossips.
	got := make(chan struct{}, 1)
	a.Handle("ping", func(Message) { got <- struct{}{} })
	if err := srv.Broadcast("ping", "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("surviving peer stopped receiving after a rejection")
	}
}

// TestConnLimitOutbound: Connect refuses to exceed the local cap.
func TestConnLimitOutbound(t *testing.T) {
	a, err := Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetLimits(Limits{MaxConns: 1})
	if got := a.Limits().MaxConns; got != 1 {
		t.Fatalf("Limits().MaxConns = %d, want 1", got)
	}
	b, err := Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Listen("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect(c.Addr()); !errors.Is(err, ErrConnLimit) {
		t.Fatalf("second Connect err = %v, want ErrConnLimit", err)
	}
}

// TestFrameLimitDropsPeer: a peer shipping an oversize line is
// disconnected, counted, and the oversize payload is never delivered.
func TestFrameLimitDropsPeer(t *testing.T) {
	srv, err := Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := obs.NewRegistry()
	m := obs.NewNetMetrics(reg)
	srv.SetObs(m)
	srv.SetLimits(Limits{MaxFrameBytes: 4 * 1024})

	peer, err := Listen("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := peer.Connect(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peer connected", func() bool { return srv.PeerCount() == 1 })

	delivered := make(chan int, 4)
	srv.Handle("blob", func(msg Message) { delivered <- len(msg.Payload) })
	if err := peer.Broadcast("blob", strings.Repeat("x", 64*1024)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversize drop", func() bool { return m.Oversize.Value() == 1 })
	waitFor(t, "peer disconnected", func() bool { return srv.PeerCount() == 0 })
	select {
	case n := <-delivered:
		t.Fatalf("oversize payload of %d bytes was delivered", n)
	default:
	}
}

// TestMempoolLimit: bids beyond the cap are refused at SubmitBid and at
// the gossip handler, counted, and never occupy pool slots.
func TestMempoolLimit(t *testing.T) {
	mn, err := NewMarketNode("m", "127.0.0.1:0", testDifficulty, auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	reg := obs.NewRegistry()
	m := obs.NewNetMetrics(reg)
	mn.SetNetObs(m)
	mn.SetMempoolLimit(2)
	if got := mn.PoolLimit(); got != 2 {
		t.Fatalf("PoolLimit() = %d, want 2", got)
	}

	part, err := miner.NewParticipant(newDetReader("mempool-limit"))
	if err != nil {
		t.Fatal(err)
	}
	bids := make([]*sealed.Bid, 3)
	for i := range bids {
		b, err := part.SubmitRequest(&bidding.Request{
			ID:        bidding.OrderID(fmt.Sprintf("r-%d", i)),
			Resources: resource.Vector{resource.CPU: 2, resource.RAM: 8},
			Start:     0, End: 100, Duration: 100,
			Bid: float64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		bids[i] = b
	}
	if err := mn.SubmitBid(bids[0]); err != nil {
		t.Fatal(err)
	}
	if err := mn.SubmitBid(bids[1]); err != nil {
		t.Fatal(err)
	}
	// Duplicate of an admitted bid is absorbed, not refused.
	if err := mn.SubmitBid(bids[1]); err != nil {
		t.Fatalf("duplicate submit err = %v", err)
	}
	if err := mn.SubmitBid(bids[2]); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("over-limit submit err = %v, want ErrPoolFull", err)
	}
	if got := mn.MempoolSize(); got != 2 {
		t.Fatalf("mempool size %d, want 2", got)
	}
	if got := m.PoolDropped.Value(); got != 1 {
		t.Fatalf("PoolDropped = %d, want 1", got)
	}
}
