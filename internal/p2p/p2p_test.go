package p2p

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"decloud/internal/auction"
	"decloud/internal/bidding"
	"decloud/internal/ledger"
	"decloud/internal/resource"
	"decloud/internal/sealed"
)

const testDifficulty = 8

// detReader yields deterministic entropy for reproducible identities.
type detReader struct{ state [32]byte }

func newDetReader(seed string) *detReader {
	r := &detReader{}
	r.state = sha256.Sum256([]byte(seed))
	return r
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		r.state = sha256.Sum256(r.state[:])
		n += copy(p[n:], r.state[:])
	}
	return n, nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestGossipFloodsAcrossLineTopology(t *testing.T) {
	// a — b — c: a message broadcast at a must reach c through b, exactly
	// once.
	a, err := Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Listen("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []string
	c.Handle("ping", func(m Message) {
		var s string
		_ = json.Unmarshal(m.Payload, &s)
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	if err := a.Broadcast("ping", "hello"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flooded message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	time.Sleep(50 * time.Millisecond) // allow any duplicate to arrive
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v, want exactly one hello", got)
	}
}

func TestGossipDedupInCycle(t *testing.T) {
	// a — b, b — c, c — a: flooding in a cycle must not loop forever and
	// must deliver exactly once per node.
	nodes := make([]*Node, 3)
	for i, name := range []string{"a", "b", "c"} {
		n, err := Listen(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	if err := nodes[0].Connect(nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Connect(nodes[2].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].Connect(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	count := make(map[string]int)
	for _, n := range nodes[1:] {
		name := n.Name()
		n.Handle("x", func(Message) {
			mu.Lock()
			count[name]++
			mu.Unlock()
		})
	}
	if err := nodes[0].Broadcast("x", 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cycle delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(count) == 2
	})
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for name, c := range count {
		if c != 1 {
			t.Fatalf("node %s got %d copies", name, c)
		}
	}
}

// marketTopology builds three miner nodes (fully meshed) plus client and
// provider participant endpoints connected to the first miner.
func marketTopology(t *testing.T) (miners []*MarketNode, clients []*ParticipantClient) {
	t.Helper()
	cfg := auction.DefaultConfig()
	for i, name := range []string{"m0", "m1", "m2"} {
		mn, err := NewMarketNode(name, "127.0.0.1:0", testDifficulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mn.Close() })
		miners = append(miners, mn)
		for j := 0; j < i; j++ {
			if err := mn.Connect(miners[j].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range []string{"alice", "bob", "zed", "prov"} {
		pc, err := NewParticipantClient(name, "127.0.0.1:0", newDetReader(name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		if err := pc.Connect(miners[0].Addr()); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, pc)
	}
	return miners, clients
}

func submitTestMarket(t *testing.T, clients []*ParticipantClient) {
	t.Helper()
	mkReq := func(id string, value float64) *bidding.Request {
		return &bidding.Request{
			ID:        bidding.OrderID(id),
			Resources: resource.Vector{resource.CPU: 2, resource.RAM: 8},
			Start:     0, End: 100, Duration: 100,
			Bid: value,
		}
	}
	if err := clients[0].SubmitRequest(mkReq("r-alice", 10)); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].SubmitRequest(mkReq("r-bob", 8)); err != nil {
		t.Fatal(err)
	}
	if err := clients[2].SubmitRequest(mkReq("r-zed", 1)); err != nil {
		t.Fatal(err)
	}
	if err := clients[3].SubmitOffer(&bidding.Offer{
		ID:        "o-prov",
		Resources: resource.Vector{resource.CPU: 8, resource.RAM: 32},
		Start:     0, End: 100,
		Bid: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkedProtocolRound(t *testing.T) {
	miners, clients := marketTopology(t)
	submitTestMarket(t, clients)

	// Bids gossip to every miner's mempool.
	for _, mn := range miners {
		waitFor(t, "mempool sync at "+mn.Name(), func() bool { return mn.MempoolSize() == 4 })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	summary, err := miners[0].ProduceBlock(ctx, 2 /* quorum: both other miners */, 3*time.Second)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if summary.Unrevealed != 0 {
		t.Fatalf("unrevealed bids: %d", summary.Unrevealed)
	}
	if len(summary.Outcome.Matches) == 0 {
		t.Fatal("no trades over the network")
	}
	if summary.OKVotes < 2 || summary.BadVotes != 0 {
		t.Fatalf("votes: ok=%d bad=%d", summary.OKVotes, summary.BadVotes)
	}
	// Every replica holds the same block.
	head := miners[0].Chain().Head().Preamble.Hash()
	for _, mn := range miners[1:] {
		waitFor(t, "chain sync at "+mn.Name(), func() bool { return mn.Chain().Len() == 1 })
		if mn.Chain().Head().Preamble.Hash() != head {
			t.Fatalf("replica %s diverged", mn.Name())
		}
	}
}

func TestNetworkedTamperedBlockVotedDown(t *testing.T) {
	miners, clients := marketTopology(t)
	submitTestMarket(t, clients)
	for _, mn := range miners {
		waitFor(t, "mempool sync", func() bool { return mn.MempoolSize() == 4 })
	}

	// A cheating producer: run the normal phases but corrupt the body
	// before broadcasting the block.
	cheater := miners[0]
	mnNet := cheater.net

	mnNet.Handle(msgVote, func(Message) {}) // votes also counted by voteCh

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Reproduce ProduceBlock's steps manually with a tamper in between.
	cheater.mu.Lock()
	bids := cheater.mempool
	cheater.mempool = nil
	cheater.havePool = map[[32]byte]bool{}
	cheater.mu.Unlock()
	block := cheater.miner.AssembleBlock(cheater.chain, bids, time.Now().Unix())
	if err := cheater.miner.Mine(ctx, block, 0); err != nil {
		t.Fatal(err)
	}
	cheater.openRevealIntake()
	defer cheater.closeRevealIntake()
	if err := mnNet.Broadcast(msgPreamble, block); err != nil {
		t.Fatal(err)
	}
	// Collect all four reveals.
	var reveals []*sealed.KeyReveal
	timer := time.After(3 * time.Second)
	for len(reveals) < 4 {
		select {
		case <-cheater.revealSig:
			reveals = append(reveals, cheater.takeReveals()...)
		case <-timer:
			t.Fatalf("only %d reveals", len(reveals))
		}
	}
	if _, err := cheater.miner.ComputeBody(block, reveals); err != nil {
		t.Fatal(err)
	}
	// Tamper: inflate the first payment, rehash so the block is
	// structurally valid but semantically wrong.
	records, err := ledger.DecodeAllocation(block.Body.Allocation)
	if err != nil || len(records) == 0 {
		t.Fatalf("no records to tamper: %v", err)
	}
	records[0].Payment *= 100
	forged, _ := json.Marshal(records)
	block.Body = ledger.NewBody(block.Body.Reveals, forged)
	if err := mnNet.Broadcast(msgBlock, block); err != nil {
		t.Fatal(err)
	}

	// Both honest miners must vote the block down and refuse to append.
	bad := 0
	voteTimer := time.After(5 * time.Second)
	for bad < 2 {
		select {
		case v := <-cheater.voteCh:
			if v.OK {
				t.Fatalf("honest miner %s accepted a forged block", v.Voter)
			}
			bad++
		case <-voteTimer:
			t.Fatalf("only %d rejections arrived", bad)
		}
	}
	for _, mn := range miners[1:] {
		if mn.Chain().Len() != 0 {
			t.Fatalf("replica %s appended a forged block", mn.Name())
		}
	}
}

func TestBadBidRejectedAtNode(t *testing.T) {
	cfg := auction.DefaultConfig()
	mn, err := NewMarketNode("m", "127.0.0.1:0", testDifficulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	pc, err := NewParticipantClient("p", "127.0.0.1:0", newDetReader("p"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	bid, err := pc.part.SubmitRequest(&bidding.Request{
		ID:        "r",
		Resources: resource.Vector{resource.CPU: 1},
		Start:     0, End: 10, Duration: 10, Bid: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bid.Envelope[0] ^= 1
	if err := mn.SubmitBid(bid); err == nil {
		t.Fatal("forged bid accepted by node")
	}
}

func TestProduceBlockEmptyMempool(t *testing.T) {
	mn, err := NewMarketNode("m", "127.0.0.1:0", testDifficulty, auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	if _, err := mn.ProduceBlock(context.Background(), 0, time.Millisecond); err == nil {
		t.Fatal("empty mempool produced a block")
	}
}

func TestBroadcastAfterClose(t *testing.T) {
	n, err := Listen("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Broadcast("t", 1); err != ErrClosed {
		t.Fatalf("broadcast after close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSilentParticipantTimesOutAndIsExcluded(t *testing.T) {
	miners, clients := marketTopology(t)
	submitTestMarket(t, clients)
	// A ghost submits a bid but its client is closed before the preamble,
	// so no reveal ever arrives.
	ghost, err := NewParticipantClient("ghost", "127.0.0.1:0", newDetReader("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ghost.Connect(miners[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := ghost.SubmitRequest(&bidding.Request{
		ID:        "r-ghost",
		Resources: resource.Vector{resource.CPU: 2, resource.RAM: 8},
		Start:     0, End: 100, Duration: 100,
		Bid: 99,
	}); err != nil {
		t.Fatal(err)
	}
	for _, mn := range miners {
		waitFor(t, "mempool sync", func() bool { return mn.MempoolSize() == 5 })
	}
	ghost.Close() // silent forever

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Short reveal window: the round completes without the ghost.
	summary, err := miners[0].ProduceBlock(ctx, 2, 1500*time.Millisecond)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if summary.Unrevealed != 1 {
		t.Fatalf("unrevealed = %d, want 1", summary.Unrevealed)
	}
	records, err := ledger.DecodeAllocation(summary.Block.Body.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if rec.RequestID == "r-ghost" {
			t.Fatal("unrevealed bid traded")
		}
	}
	if summary.OKVotes < 2 {
		t.Fatalf("verifiers should accept the block without the ghost: %d ok", summary.OKVotes)
	}
}
